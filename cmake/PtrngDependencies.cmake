# Test / bench dependency resolution.
#
# Preference order for GoogleTest:
#   1. An installed CMake package (Debian/Fedora libgtest-dev, vcpkg, ...).
#   2. The distro source tree at /usr/src/googletest (Debian googletest pkg).
#   3. FetchContent from GitHub — requires network; opt out with
#      PTRNG_FETCH_MISSING_DEPS=OFF on offline hosts.
# Google Benchmark follows the same pattern but is optional: with downloads
# disabled (or after GTest resolved another way), a missing Benchmark skips
# the bench targets rather than failing the configure.

option(PTRNG_FETCH_MISSING_DEPS
  "Allow FetchContent downloads for test/bench dependencies not found locally" ON)

include(FetchContent)

# --- GoogleTest -------------------------------------------------------------
if(PTRNG_BUILD_TESTS)
  find_package(GTest QUIET)
  if(NOT GTest_FOUND)
    if(EXISTS "/usr/src/googletest/CMakeLists.txt")
      message(STATUS "ptrng: building GoogleTest from /usr/src/googletest")
      set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
      add_subdirectory(/usr/src/googletest
                       "${CMAKE_BINARY_DIR}/_deps/googletest-build"
                       EXCLUDE_FROM_ALL)
    elseif(PTRNG_FETCH_MISSING_DEPS)
      message(STATUS "ptrng: fetching GoogleTest via FetchContent")
      FetchContent_Declare(googletest
        URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
        DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
      set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
      FetchContent_MakeAvailable(googletest)
    else()
      message(FATAL_ERROR
        "ptrng: GoogleTest not found and downloads are disabled "
        "(PTRNG_FETCH_MISSING_DEPS=OFF). Install libgtest-dev/googletest "
        "or configure with -DPTRNG_BUILD_TESTS=OFF.")
    endif()
    if(NOT TARGET GTest::gtest_main)
      add_library(GTest::gtest_main ALIAS gtest_main)
      add_library(GTest::gtest ALIAS gtest)
    endif()
  endif()
endif()

# --- Google Benchmark -------------------------------------------------------
if(PTRNG_BUILD_BENCH)
  find_package(benchmark QUIET)
  if(NOT benchmark_FOUND AND PTRNG_FETCH_MISSING_DEPS)
    message(STATUS "ptrng: fetching Google Benchmark via FetchContent")
    set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
    set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
    FetchContent_Declare(googlebenchmark
      URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    FetchContent_MakeAvailable(googlebenchmark)
  endif()
  if(NOT TARGET benchmark::benchmark)
    message(WARNING "ptrng: Google Benchmark unavailable; bench targets disabled")
    set(PTRNG_BUILD_BENCH OFF)
  endif()
endif()
