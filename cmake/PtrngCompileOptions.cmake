# Shared compiler hygiene for every ptrng target.
#
# Defines the INTERFACE target `ptrng_compile_options` carrying warning
# flags and (optionally) sanitizer instrumentation, and the helper
# `ptrng_add_module(<name> <sources...>)` used by the per-module
# CMakeLists under src/.

add_library(ptrng_compile_options INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(ptrng_compile_options INTERFACE -Wall -Wextra)
  # Deprecated-shim hygiene (PR 8): in-repo code must not call the PR-7
  # shims (generate(), set_health_engine, gauss_method aliases) except
  # through the explicit PTRNG_SUPPRESS_DEPRECATED_* back-compat tests,
  # so the warning is an unconditional error even when PTRNG_WERROR is
  # off — new callers cannot reintroduce the old API silently.
  target_compile_options(ptrng_compile_options INTERFACE
    -Werror=deprecated-declarations)
elseif(MSVC)
  target_compile_options(ptrng_compile_options INTERFACE /W4)
endif()

# PTRNG_WERROR=ON (the CI default) promotes warnings to errors for every
# ptrng target; third-party code built via FetchContent/add_subdirectory
# keeps its own flags.
option(PTRNG_WERROR "Treat compiler warnings as errors for ptrng targets" OFF)
if(PTRNG_WERROR)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(ptrng_compile_options INTERFACE -Werror)
  elseif(MSVC)
    target_compile_options(ptrng_compile_options INTERFACE /WX)
  endif()
endif()

# common/parallel.cpp needs the platform thread library; every target that
# links the ptrng objects inherits it from here.
find_package(Threads REQUIRED)
target_link_libraries(ptrng_compile_options INTERFACE Threads::Threads)

# PTRNG_SANITIZE=address,undefined (any comma-separated -fsanitize= set).
if(PTRNG_SANITIZE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(ptrng_compile_options INTERFACE
      -fsanitize=${PTRNG_SANITIZE} -fno-omit-frame-pointer)
    target_link_options(ptrng_compile_options INTERFACE
      -fsanitize=${PTRNG_SANITIZE})
    message(STATUS "ptrng: sanitizers enabled: ${PTRNG_SANITIZE}")
  else()
    message(WARNING "PTRNG_SANITIZE is only supported with GCC/Clang")
  endif()
endif()

# ptrng_add_module(<name> <sources...>)
#
# Creates the OBJECT library ptrng_<name>. Objects from every module are
# merged into the single static library `ptrng` by src/CMakeLists.txt;
# the module list is accumulated in the global property PTRNG_MODULES.
function(ptrng_add_module name)
  set(target ptrng_${name})
  add_library(${target} OBJECT ${ARGN})
  target_include_directories(${target} PUBLIC "${PROJECT_SOURCE_DIR}/src")
  target_link_libraries(${target} PUBLIC ptrng_compile_options)
  set_property(GLOBAL APPEND PROPERTY PTRNG_MODULES ${target})
endfunction()
