// ALLAN — the Allan-variance connection of Sec. III-B2: the paper's
// sigma^2_N equals 2*tau^2*sigma_y^2(tau) at tau = N/f0, and Allan theory
// for the two noise types gives
//
//   white FM (thermal): sigma_y^2 = b_th/(f0^2 tau)      (~1/tau)
//   flicker FM:         sigma_y^2 = 4 ln2 b_fl/f0^2      (flat)
//
// The bench measures the overlapping Allan deviation of the simulated
// pair across tau and compares with theory — the classic noise
// identification plot.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "measurement/sn_process.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "stats/allan.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

void print_allan() {
  std::cout << "=== ALLAN: Allan variance vs sigma^2_N (Sec. III-B2) ===\n\n";
  auto pair = paper_pair(0xa11a, 0.0);
  const auto jitter = pair.relative_jitter(6'000'000);
  const auto x = measurement::time_error_from_jitter(jitter);
  const double tau0 = 1.0 / paper::f0;

  const auto ms = log_integer_grid(8, 60'000, 18);
  const auto sweep = stats::allan_sweep(x, tau0, ms);

  TableWriter table({"m (=N)", "tau [s]", "avar measured", "avar theory",
                     "2*tau^2*avar / Eq.11"});
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  for (const auto& pt : sweep) {
    const double theory = stats::allan_theory_thermal_flicker(
        paper::b_th, paper::b_fl, paper::f0, pt.tau);
    const double s2n = stats::sigma2_n_from_allan(pt.avar, pt.tau);
    table.add_row({cell(pt.m), cell_sci(pt.tau, 3), cell_sci(pt.avar, 3),
                   cell_sci(theory, 3),
                   cell(s2n / psd.sigma2_n(static_cast<double>(pt.m)), 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: avar ~ 1/tau (thermal) rolling into a "
               "flat flicker floor at large tau;\nlast column ~ 1 "
               "everywhere (the sigma^2_N <-> Allan identity).\n\n";
}

void bm_allan_point(benchmark::State& state) {
  auto pair = paper_pair(0xa11b, 0.0);
  const auto jitter = pair.relative_jitter(500'000);
  const auto x = measurement::time_error_from_jitter(jitter);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::allan_variance_time_error(
        x, 1.0 / paper::f0, 128));
  }
}
BENCHMARK(bm_allan_point)->Unit(benchmark::kMillisecond);

void bm_hadamard_point(benchmark::State& state) {
  auto pair = paper_pair(0xa11c, 0.0);
  const auto jitter = pair.relative_jitter(300'000);
  const auto x = measurement::time_error_from_jitter(jitter);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::hadamard_variance(x, 1.0 / paper::f0, 128));
  }
}
BENCHMARK(bm_hadamard_point)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_allan();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
