// FLEETCAMPAIGN — the work-stealing scheduler against its fixed-chunk
// ancestor on the fleet campaign's actual workload shape: shard costs
// are wildly SKEWED (an attacked eRO device runs the per-period
// modulation path, ~10x a healthy device) and heavy shards sit
// CONTIGUOUSLY in shard-index order (the attack axis is innermost, so a
// corner's devices are neighbours). Fixed chunking at auto_grain packs
// several heavy shards into one chunk and the fleet waits on it;
// grain-1 work stealing keeps every worker fed.
//
// Rows:
//  * bm_fleet_campaign_serial — one-thread end-to-end campaign cost,
//    the gated row (scheduler-independent);
//  * bm_fleet_campaign_{ws,fixed}/W — end-to-end campaign at pool
//    width W under each scheduler;
//  * bm_skewed_shards_{ws,fixed}/W — the synthetic core of the story:
//    identical skewed busy-work, auto_grain fixed chunks vs grain-1
//    stealing. Read the ws speedup at the width matching the machine.
//
// Thread-scaling rows are runtime-registered: on a single-CPU host the
// W >= 2 rows measure oversubscription noise, not scaling, so they get
// the ":informational" suffix bench_diff.py skips. The preamble
// verifies that both schedulers produce byte-identical campaign
// reports before any timing is trusted.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "model/fleet_campaign.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::model;

CampaignConfig bench_config() {
  CampaignConfig config;
  // First 4 grid cells: ero/180nm/tt/f0 under none/em_weak/em_strong/
  // lock — one light corner, three heavy ones.
  config.corners = 4;
  config.seeds = 4;
  config.bits_per_shard = 2000;
  config.batch_size = 16;  // one batch: pure scheduler comparison
  return config;
}

bool verify_schedulers_agree() {
  auto config = bench_config();
  config.use_work_stealing = true;
  const auto ws = run_campaign(config);
  config.use_work_stealing = false;
  const auto fixed = run_campaign(config);
  return ws.json() == fixed.json();
}

void bm_fleet_campaign_serial(benchmark::State& state) {
  ThreadPool::global().resize(1);
  auto config = bench_config();
  for (auto _ : state) {
    auto report = run_campaign(config);
    benchmark::DoNotOptimize(report.shards_folded);
  }
  ThreadPool::global().resize(0);
}
BENCHMARK(bm_fleet_campaign_serial)->Unit(benchmark::kMillisecond);

void bm_fleet_campaign_sched(benchmark::State& state, bool ws) {
  ThreadPool::global().resize(static_cast<std::size_t>(state.range(0)));
  auto config = bench_config();
  config.use_work_stealing = ws;
  for (auto _ : state) {
    auto report = run_campaign(config);
    benchmark::DoNotOptimize(report.shards_folded);
  }
  ThreadPool::global().resize(0);
}

// Synthetic skewed shards: shard i costs ~10x when its corner is
// "attacked" (3 of every 4 corners, contiguous — the campaign's cost
// profile without the simulator's noise floor).
double skewed_work(std::size_t shard) {
  const std::size_t corner = shard / 4;   // 4 "seeds" per corner
  const bool heavy = (corner % 4) != 0;   // 3 of 4 corners attacked
  const std::size_t iters = heavy ? 60'000 : 6'000;
  double acc = 1.0;
  for (std::size_t k = 0; k < iters; ++k)
    acc += 1.0 / static_cast<double>(2 * k + 1);
  return acc;
}

constexpr std::size_t kSkewedShards = 512;

void bm_skewed_shards(benchmark::State& state, bool ws) {
  ThreadPool::global().resize(static_cast<std::size_t>(state.range(0)));
  std::vector<double> out(kSkewedShards);
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = skewed_work(i);
  };
  for (auto _ : state) {
    if (ws)
      parallel_for_ws(0, kSkewedShards, 1, body);
    else
      parallel_for(0, kSkewedShards, 0, body);  // auto_grain chunks
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSkewedShards));
  ThreadPool::global().resize(0);
}

void register_scaling(const char* base_name, bool single_cpu,
                      void (*fn)(benchmark::State&, bool), bool ws) {
  const std::string name =
      single_cpu ? std::string(base_name) + ":informational" : base_name;
  benchmark::RegisterBenchmark(name.c_str(), fn, ws)
      ->Arg(2)->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->MeasureProcessCPUTime()
      ->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== FLEETCAMPAIGN: work-stealing vs fixed-chunk on skewed "
               "shards ===\n"
            << "hardware concurrency " << std::thread::hardware_concurrency()
            << "\n";
  const bool agree = verify_schedulers_agree();
  std::cout << "scheduler report identity (ws vs fixed-chunk): "
            << (agree ? "OK" : "FAILED") << "\n\n";
  if (!agree) return 1;  // fail bench-smoke, timings untrustworthy
  benchmark::Initialize(&argc, argv);
  const bool single_cpu = std::thread::hardware_concurrency() <= 1;
  register_scaling("bm_fleet_campaign_ws", single_cpu,
                   bm_fleet_campaign_sched, true);
  register_scaling("bm_fleet_campaign_fixed", single_cpu,
                   bm_fleet_campaign_sched, false);
  register_scaling("bm_skewed_shards_ws", single_cpu, bm_skewed_shards,
                   true);
  register_scaling("bm_skewed_shards_fixed", single_cpu, bm_skewed_shards,
                   false);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
