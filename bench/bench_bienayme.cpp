// EQ6 — the Bienayme argument (paper Sec. III-B2 / III-D): under mutual
// independence Var(sum of n jitter terms) == n * Var(J) (Eq. 6). The bench
// prints the ratio sweep for (a) thermal-only jitter — flat at 1 — and
// (b) thermal+flicker jitter — rising with block size, falsifying
// independence exactly as the paper claims.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "oscillator/ring_oscillator.hpp"
#include "stats/bienayme.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

std::vector<double> simulate_jitter(double b_th, double b_fl,
                                    std::size_t samples,
                                    std::uint64_t seed) {
  RingOscillatorConfig cfg;
  cfg.f0 = paper::f0;
  cfg.b_th = b_th;
  cfg.b_fl = b_fl;
  cfg.flicker_floor_ratio = 1e-6;
  cfg.seed = seed;
  RingOscillator osc(cfg);
  std::vector<double> j(samples);
  for (auto& v : j) v = osc.next_period().jitter();
  return j;
}

void print_bienayme() {
  std::cout << "=== EQ6: Bienayme linearity check (paper Sec. III-B2) ===\n"
            << "ratio = Var(sum over n) / (n * Var(J)); 1.0 under mutual "
               "independence\n\n";
  const std::size_t samples = 4'000'000;
  const auto thermal =
      simulate_jitter(paper::b_th, 0.0, samples, 0xb1e1);
  const auto mixed =
      simulate_jitter(paper::b_th, paper::b_fl, samples, 0xb1e2);

  const auto blocks = log_integer_grid(1, 65536, 17);
  const auto sweep_th = stats::bienayme_sweep(thermal, blocks);
  const auto sweep_mx = stats::bienayme_sweep(mixed, blocks);

  TableWriter table({"block n", "ratio (thermal only)",
                     "ratio (thermal+flicker)", "r_N model"});
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  std::size_t i = 0, k = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::string r_th = "-", r_mx = "-";
    if (i < sweep_th.size() && sweep_th[i].block == blocks[b])
      r_th = cell(sweep_th[i++].ratio, 3);
    if (k < sweep_mx.size() && sweep_mx[k].block == blocks[b])
      r_mx = cell(sweep_mx[k++].ratio, 3);
    table.add_row({cell(blocks[b]), r_th, r_mx,
                   cell(psd.thermal_ratio(
                            static_cast<double>(blocks[b])), 3)});
  }
  table.print(std::cout);
  std::cout << "\nverdict: thermal-only stays ~1 (independent); the flicker "
               "component drives the ratio up\n"
            << "— jitter realizations are NOT mutually independent at "
               "large n (paper Sec. III-D).\n\n";
}

void bm_bienayme_sweep(benchmark::State& state) {
  const auto j = simulate_jitter(paper::b_th, paper::b_fl, 200'000, 7);
  const auto blocks = log_integer_grid(1, 4096, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::bienayme_sweep(j, blocks));
  }
}
BENCHMARK(bm_bienayme_sweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_bienayme();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
