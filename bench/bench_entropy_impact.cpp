// ENTROPY — quantifies the paper's security conclusion: models that treat
// the TOTAL measured jitter as independent-white overestimate the entropy
// per raw bit; only the thermal component should count. For a sweep of
// sampling dividers K the bench prints:
//
//   v_naive(K), v_refined(K)  — accumulated phase variance [cycles^2]
//   H_naive, H_refined        — worst-case entropy lower bounds
//   H_empirical               — Markov entropy of actual simulated bits
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "model/legacy_models.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "trng/entropy.hpp"
#include "trng/ero_trng.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

void print_entropy_impact() {
  std::cout << "=== ENTROPY: naive vs refined entropy accounting "
               "(paper conclusion) ===\n\n";
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const auto naive = model::naive_from_psd(psd);
  const model::RefinedThermalModel refined(psd);

  TableWriter table({"K (divider)", "v_naive [cyc^2]", "v_refined [cyc^2]",
                     "H_naive", "H_refined", "H_emp(shannon8)"});
  for (std::uint32_t k : {1000u, 3000u, 10000u, 30000u, 100000u}) {
    const double v_n = naive.accumulated_cycle_variance(k);
    const double v_r = refined.accumulated_cycle_variance(k);
    const double h_n = trng::entropy_lower_bound(v_n);
    const double h_r = trng::entropy_lower_bound(v_r);

    auto gen = trng::paper_trng(k, 0xe47 + k);
    const auto bits = gen.generate_bits(160'000);
    // Block-Shannon catches periodic beat structure that a first-order
    // Markov estimator is blind to.
    const double h_emp = std::min(trng::markov_entropy_rate(bits),
                                  trng::shannon_block_entropy(bits, 8));

    table.add_row({cell(static_cast<std::size_t>(k)), cell_sci(v_n, 3),
                   cell_sci(v_r, 3), cell(h_n, 6), cell(h_r, 6),
                   cell(h_emp, 6)});
  }
  table.print(std::cout);

  std::cout << "\nreading: H_naive >= H_refined everywhere — the naive "
               "model certifies entropy the thermal\nnoise alone does not "
               "deliver. The gap widens with the flicker share "
               "(v_naive/v_refined = "
            << cell(naive.accumulated_cycle_variance(1.0) /
                        refined.accumulated_cycle_variance(1.0),
                    3)
            << ").\n"
            << "H_empirical tracks the refined bound direction: the "
               "flicker excess is correlated,\nnot fresh randomness.\n\n";
}

void bm_bit_generation(benchmark::State& state) {
  auto gen = trng::paper_trng(1000, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next_bit());
  }
}
BENCHMARK(bm_bit_generation)->Unit(benchmark::kMicrosecond);

void bm_entropy_bound(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng::entropy_lower_bound(0.01));
  }
}
BENCHMARK(bm_entropy_bound);

void bm_markov_estimate(benchmark::State& state) {
  auto gen = trng::paper_trng(500, 2);
  const auto bits = gen.generate_bits(100'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng::markov_entropy_rate(bits));
  }
}
BENCHMARK(bm_markov_estimate)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_entropy_impact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
