// RBGSERVICE — end-to-end byte service under concurrent load: N client
// threads each fill 4 KiB buffers from their own RandomByteService
// stream while the producer keeps the conditioned-block ring fed. The
// Arg is the client count (1/8/64/512); each iteration spawns the
// clients, runs a fixed number of fills per client, and is manually
// timed, so bytes/s reads the aggregate service rate and the p50/p99
// counters read the per-fill latency tail under that load (512 clients
// deliberately oversubscribes the cores). The preamble verifies the
// service determinism guarantee — per-consumer bytes are a pure
// function of (source seed, consumer id), independent of pool width —
// before any timing is trusted, matching the bench_multi_ring
// conventions.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "trng/bit_stream.hpp"
#include "trng/continuous_health.hpp"
#include "trng/rbg_service.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

constexpr std::uint64_t kSourceSeed = 0x90b5e7;
constexpr std::size_t kFillBytes = 4096;  // one request per fill
constexpr int kFillsPerClient = 4;        // per timed iteration

/// Ideal iid source: the bench measures the service layer (SHA-256
/// conditioning + DRBG + ring), not oscillator physics.
class XoshiroBitSource final : public BitSource {
 public:
  explicit XoshiroBitSource(std::uint64_t seed) : rng_(seed) {}
  std::uint8_t next_bit() override {
    return static_cast<std::uint8_t>(rng_.next() & 1u);
  }

 private:
  Xoshiro256pp rng_;
};

RbgServiceConfig bench_config() {
  RbgServiceConfig cfg;
  cfg.conditioner.h_min = 0.5;
  cfg.drbg.reseed_interval = 64;  // periodic ring reseeds under load
  cfg.wait_budget = std::chrono::milliseconds(10'000);
  return cfg;
}

bool verify_determinism() {
  // Per-consumer bytes must not depend on the pool width or on how
  // often the producer ran; distinct consumer ids must differ.
  std::vector<std::byte> narrow(kFillBytes), wide(kFillBytes),
      other(kFillBytes);
  for (const std::size_t width : {1u, 4u}) {
    ThreadPool::global().resize(width);
    XoshiroBitSource source(kSourceSeed);
    HealthEngine engine{ContinuousHealthConfig{}};
    RbgServiceConfig cfg = bench_config();
    cfg.drbg.reseed_interval = 1ull << 40;  // pure function of the seed
    RandomByteService service(source, engine, cfg);
    service.start();
    auto stream = service.open_stream(1);
    auto& out = width == 1 ? narrow : wide;
    if (stream.fill(out) != RandomByteService::FillStatus::kOk) return false;
    if (width == 4) {
      auto stream2 = service.open_stream(2);
      if (stream2.fill(other) != RandomByteService::FillStatus::kOk)
        return false;
    }
    service.stop();
  }
  ThreadPool::global().resize(0);
  return narrow == wide && narrow != other;
}

void bm_rbg_service_clients(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  XoshiroBitSource source(kSourceSeed);
  HealthEngine engine{ContinuousHealthConfig{}};
  RandomByteService service(source, engine, bench_config());
  service.start();

  std::mutex latency_mutex;
  std::vector<double> latencies_us;

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto begin = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&service, &latency_mutex, &latencies_us, c] {
        auto stream = service.open_stream(c + 1);
        std::vector<std::byte> buf(kFillBytes);
        std::vector<double> local;
        local.reserve(kFillsPerClient);
        for (int i = 0; i < kFillsPerClient; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          if (stream.fill(buf) != RandomByteService::FillStatus::kOk)
            std::abort();  // timings would be meaningless
          const auto t1 = std::chrono::steady_clock::now();
          local.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          benchmark::DoNotOptimize(buf.data());
        }
        const std::lock_guard<std::mutex> lock(latency_mutex);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
    const auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(end - begin).count());
  }

  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(clients) *
                          kFillsPerClient * kFillBytes);
  std::sort(latencies_us.begin(), latencies_us.end());
  if (!latencies_us.empty()) {
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(latencies_us.size() - 1));
      return latencies_us[idx];
    };
    state.counters["fill_p50_us"] = at(0.50);
    state.counters["fill_p99_us"] = at(0.99);
  }
  state.counters["blocks_produced"] =
      static_cast<double>(service.blocks_produced());
  service.stop();
}
BENCHMARK(bm_rbg_service_clients)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

void bm_hash_drbg_generate(benchmark::State& state) {
  // Single-stream DRBG expansion baseline: the per-core ceiling every
  // client shares (hashgen is ~2 SHA-256 compressions per 32 bytes).
  HashDrbgConfig cfg;
  cfg.reseed_interval = 1ull << 40;
  HashDrbg drbg(cfg);
  std::vector<std::byte> seed(32, std::byte{0x42});
  drbg.instantiate(seed, {});
  std::vector<std::byte> out(kFillBytes);
  for (auto _ : state) {
    if (drbg.generate(out) != HashDrbg::Status::kOk) std::abort();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(bm_hash_drbg_generate);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== RBGSERVICE: concurrent byte service (conditioning + "
               "Hash-DRBG + SPMC ring) ===\n"
            << "fill " << kFillBytes << " B, " << kFillsPerClient
            << " fills/client/iteration, hardware concurrency "
            << configured_thread_count() << "\n";
  const bool deterministic = verify_determinism();
  std::cout << "determinism (pool width 1 vs 4, consumer isolation): "
            << (deterministic ? "OK" : "FAILED") << "\n\n";
  if (!deterministic) return 1;  // fail bench-smoke, timings untrustworthy
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
