// POSTPROC — throughput of the algebraic post-processing stages, both
// through the legacy batch free functions and through the streaming
// BitTransform path feeding block-sized pushes (the Pipeline hot loop).
// Items processed = RAW input bits, so rows are comparable across
// factors and correctors. Closes the ROADMAP postprocess bench gap.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "trng/bit_stream.hpp"
#include "trng/postprocess.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

constexpr std::size_t kBits = 1u << 23;  // 8M raw bits

const std::vector<std::uint8_t>& raw_bits() {
  static const std::vector<std::uint8_t> bits = [] {
    std::vector<std::uint8_t> b(kBits);
    Xoshiro256pp rng(0x9057b1);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next() & 1u);
    return b;
  }();
  return bits;
}

void bm_xor_decimate(benchmark::State& state) {
  const auto& bits = raw_bits();
  const auto factor = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xor_decimate(bits, factor));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(bm_xor_decimate)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void bm_von_neumann(benchmark::State& state) {
  const auto& bits = raw_bits();
  for (auto _ : state) {
    benchmark::DoNotOptimize(von_neumann(bits));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(bm_von_neumann)->Unit(benchmark::kMillisecond);

void bm_transform_streaming_blocks(benchmark::State& state) {
  // The Pipeline hot loop: 4096-bit pushes with carry state across block
  // boundaries (xor/2 then von Neumann chained).
  const auto& bits = raw_bits();
  const std::size_t block = 4096;
  std::vector<std::uint8_t> mid, out;
  for (auto _ : state) {
    XorDecimateTransform x2(2);
    VonNeumannTransform vn;
    out.clear();
    for (std::size_t pos = 0; pos < bits.size(); pos += block) {
      mid.clear();
      x2.push(std::span<const std::uint8_t>(bits).subspan(
                  pos, std::min(block, bits.size() - pos)),
              mid);
      vn.push(mid, out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(bm_transform_streaming_blocks)->Unit(benchmark::kMillisecond);

void bm_bias(benchmark::State& state) {
  const auto& bits = raw_bits();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bias(bits));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(bm_bias)->Unit(benchmark::kMillisecond);

void bm_serial_correlation(benchmark::State& state) {
  const auto& bits = raw_bits();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial_correlation(bits));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(bm_serial_correlation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
