// FFT — throughput of the radix-2 transform backing every spectral
// estimator (ROADMAP bench-coverage gap). Measures the in-place complex
// transform across sizes, the real-input wrapper, and the FFT-based
// autocorrelation, in samples/s.
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/window.hpp"

namespace {

using namespace ptrng;

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  std::vector<double> x(n);
  GaussianSampler gauss(seed);
  for (auto& v : x) v = gauss();
  return x;
}

void bm_fft_transform(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto real = random_signal(n, 0xf37);
  std::vector<std::complex<double>> data(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) data[i] = real[i];
    fft::transform(data, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(bm_fft_transform)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);

void bm_fft_roundtrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto real = random_signal(n, 0xf38);
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = real[i];
  for (auto _ : state) {
    auto spectrum = fft::fft(data);
    benchmark::DoNotOptimize(fft::ifft(std::move(spectrum)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(bm_fft_roundtrip)->Arg(1 << 14);

void bm_rfft_padded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = random_signal(n, 0xf39);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::rfft_padded(x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(bm_rfft_padded)->Arg(1 << 16);

void bm_autocorrelation_raw(benchmark::State& state) {
  const auto x = random_signal(1 << 16, 0xf3a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::autocorrelation_raw(x, 1024));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(bm_autocorrelation_raw);

void bm_make_window(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::make_window(fft::WindowKind::hann, 1 << 14));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(bm_make_window);

}  // namespace

BENCHMARK_MAIN();
