// GEN — ablation of the 1/f generator families the simulator could be
// built on: octave filter bank (production), Kasdin-Walter fractional
// integrator (reference), Voss-McCartney (legacy), RTN superposition
// (physical). Reports in-band PSD slope accuracy, amplitude error against
// the target A/f, the induced sigma^2_N shape, and throughput.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "noise/filter_bank.hpp"
#include "noise/kasdin.hpp"
#include "noise/rtn.hpp"
#include "noise/voss.hpp"
#include "stats/psd.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::noise;

std::unique_ptr<NoiseSource> make_generator(const std::string& name,
                                            double amplitude,
                                            std::uint64_t seed) {
  if (name == "filter_bank") {
    FilterBankFlicker::Config cfg;
    cfg.amplitude = amplitude;
    cfg.fs = 1.0;
    cfg.f_min = 1e-5;
    cfg.f_max = 0.25;
    cfg.seed = seed;
    return std::make_unique<FilterBankFlicker>(cfg);
  }
  if (name == "kasdin") {
    KasdinFlicker::Config cfg;
    cfg.alpha = 1.0;
    cfg.sigma_w = KasdinFlicker::sigma_w_for_amplitude(amplitude);
    cfg.fs = 1.0;
    cfg.seed = seed;
    return std::make_unique<KasdinFlicker>(cfg);
  }
  if (name == "voss") {
    return std::make_unique<VossMcCartney>(18, 1.0, seed);
  }
  RtnSuperposition::Config cfg;
  cfg.traps = 36;
  cfg.lambda_min = 3e-5;
  cfg.lambda_max = 0.8;
  cfg.amplitude = std::sqrt(amplitude);  // per-trap scale heuristic
  cfg.fs = 1.0;
  cfg.seed = seed;
  return std::make_unique<RtnSuperposition>(cfg);
}

void print_ablation() {
  std::cout << "=== GEN: 1/f generator family ablation ===\n"
            << "target two-sided PSD: 1e-3 / f over ~[1e-4, 0.25] (fs=1)\n\n";
  const double amplitude = 1e-3;

  TableWriter table({"generator", "slope [-1]", "PSD err @1e-3 [x]",
                     "s2N(4096)/s2N(64)/64 [N^1 ->1, N^2 ->64]"});
  for (const std::string name :
       {"filter_bank", "kasdin", "voss", "rtn_sum"}) {
    auto gen = make_generator(name, amplitude, 0x9e4 + name.size());
    std::vector<double> x(1 << 19);
    gen->fill(x);
    const auto est = stats::welch(x, 1.0, 1 << 13);
    const double slope = stats::psd_slope(est, 1e-3, 0.1);
    const double level = stats::psd_level(est, 8e-4, 1.25e-3);
    const double target_one_sided = 2.0 * amplitude / 1e-3;
    const double amp_err = level / target_one_sided;

    // sigma^2_N growth exponent probe: pure 1/f per-period jitter should
    // give sigma^2_N ~ N^2 (ratio -> 64); white would give ~N (ratio 1).
    const std::vector<std::size_t> grid{64, 4096};
    const auto sweep = measurement::sigma2_n_sweep(x, grid);
    std::string growth = "-";
    if (sweep.size() == 2) {
      growth = cell(sweep[1].sigma2 / sweep[0].sigma2 / 64.0, 2);
    }
    table.add_row({name, cell(slope, 3), cell(amp_err, 3), growth});
  }
  table.print(std::cout);
  std::cout << "\nreading: filter_bank and kasdin hit slope -1 and the "
               "target amplitude (calibrated);\nvoss approximates the "
               "slope without amplitude control; rtn_sum is 1/f only "
               "inside its\ntrap band. All show the N^2-type sigma^2_N "
               "growth that breaks Eq. 6.\n\n";
}

void bm_filter_bank(benchmark::State& state) {
  auto gen = make_generator("filter_bank", 1e-3, 1);
  for (auto _ : state) benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(bm_filter_bank);

void bm_kasdin(benchmark::State& state) {
  auto gen = make_generator("kasdin", 1e-3, 2);
  for (auto _ : state) benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(bm_kasdin);

void bm_voss(benchmark::State& state) {
  auto gen = make_generator("voss", 1e-3, 3);
  for (auto _ : state) benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(bm_voss);

void bm_rtn_sum(benchmark::State& state) {
  auto gen = make_generator("rtn_sum", 1e-3, 4);
  for (auto _ : state) benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(bm_rtn_sum);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
