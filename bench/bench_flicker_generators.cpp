// GEN — ablation of the 1/f generator families the simulator could be
// built on: octave filter bank (production), Kasdin-Walter fractional
// integrator (reference), Voss-McCartney (legacy), RTN superposition
// (physical). Reports in-band PSD slope accuracy, amplitude error against
// the target A/f, the induced sigma^2_N shape, and throughput.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "noise/filter_bank.hpp"
#include "noise/kasdin.hpp"
#include "noise/rtn.hpp"
#include "noise/voss.hpp"
#include "stats/psd.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::noise;

std::unique_ptr<NoiseSource> make_generator(const std::string& name,
                                            double amplitude,
                                            std::uint64_t seed) {
  if (name == "filter_bank") {
    FilterBankFlicker::Config cfg;
    cfg.amplitude = amplitude;
    cfg.fs = 1.0;
    cfg.f_min = 1e-5;
    cfg.f_max = 0.25;
    cfg.seed = seed;
    return std::make_unique<FilterBankFlicker>(cfg);
  }
  if (name == "kasdin") {
    KasdinFlicker::Config cfg;
    cfg.alpha = 1.0;
    cfg.sigma_w = KasdinFlicker::sigma_w_for_amplitude(amplitude);
    cfg.fs = 1.0;
    cfg.seed = seed;
    return std::make_unique<KasdinFlicker>(cfg);
  }
  if (name == "voss") {
    return std::make_unique<VossMcCartney>(18, 1.0, seed);
  }
  RtnSuperposition::Config cfg;
  cfg.traps = 36;
  cfg.lambda_min = 3e-5;
  cfg.lambda_max = 0.8;
  cfg.amplitude = std::sqrt(amplitude);  // per-trap scale heuristic
  cfg.fs = 1.0;
  cfg.seed = seed;
  return std::make_unique<RtnSuperposition>(cfg);
}

void print_ablation() {
  std::cout << "=== GEN: 1/f generator family ablation ===\n"
            << "target two-sided PSD: 1e-3 / f over ~[1e-4, 0.25] (fs=1)\n\n";
  const double amplitude = 1e-3;

  TableWriter table({"generator", "slope [-1]", "PSD err @1e-3 [x]",
                     "s2N(4096)/s2N(64)/64 [N^1 ->1, N^2 ->64]"});
  for (const std::string name :
       {"filter_bank", "kasdin", "voss", "rtn_sum"}) {
    auto gen = make_generator(name, amplitude, 0x9e4 + name.size());
    std::vector<double> x(1 << 19);
    gen->fill(x);
    const auto est = stats::welch(x, 1.0, 1 << 13);
    const double slope = stats::psd_slope(est, 1e-3, 0.1);
    const double level = stats::psd_level(est, 8e-4, 1.25e-3);
    const double target_one_sided = 2.0 * amplitude / 1e-3;
    const double amp_err = level / target_one_sided;

    // sigma^2_N growth exponent probe: pure 1/f per-period jitter should
    // give sigma^2_N ~ N^2 (ratio -> 64); white would give ~N (ratio 1).
    const std::vector<std::size_t> grid{64, 4096};
    const auto sweep = measurement::sigma2_n_sweep(x, grid);
    std::string growth = "-";
    if (sweep.size() == 2) {
      growth = cell(sweep[1].sigma2 / sweep[0].sigma2 / 64.0, 2);
    }
    table.add_row({name, cell(slope, 3), cell(amp_err, 3), growth});
  }
  table.print(std::cout);
  std::cout << "\nreading: filter_bank and kasdin hit slope -1 and the "
               "target amplitude (calibrated);\nvoss approximates the "
               "slope without amplitude control; rtn_sum is 1/f only "
               "inside its\ntrap band. All show the N^2-type sigma^2_N "
               "growth that breaks Eq. 6.\n\n";
}

// Bit-identity preamble à la bench_multi_ring: the batched fill() must
// reproduce the stepped next() stream exactly — including a mid-block
// re-entry, an advance_sum interleave, at 1 vs 8 pool threads, and with
// the SIMD kernels forced down to the scalar fallback — before any fill
// timing is trusted (docs/ARCHITECTURE.md §5 "SIMD rules").
bool verify_fill_determinism() {
  FilterBankFlicker::Config cfg;
  cfg.amplitude = 1e-3;
  cfg.fs = 1.0;
  cfg.f_min = 1e-5;
  cfg.f_max = 0.25;
  cfg.seed = 0xf111be;
  FilterBankFlicker stepped(cfg), batched(cfg), scalar(cfg);

  std::vector<double> expected(20000);
  for (auto& x : expected) x = stepped.next();
  std::vector<double> got(expected.size());
  ptrng::ThreadPool::global().resize(1);
  batched.fill(std::span<double>(got).subspan(0, 777));  // mid-block cut
  ptrng::ThreadPool::global().resize(8);
  batched.fill(std::span<double>(got).subspan(777));
  ptrng::ThreadPool::global().resize(0);
  for (std::size_t i = 0; i < got.size(); ++i)
    if (got[i] != expected[i]) return false;
  const double adv_ref = stepped.advance_sum(100);
  const double next_ref = stepped.next();
  if (batched.advance_sum(100) != adv_ref) return false;
  if (batched.next() != next_ref) return false;

  // SIMD vs forced-scalar: identical bits, same stream position after.
  std::vector<double> got_scalar(expected.size());
  {
    ptrng::simd::ScopedForceScalar force;
    scalar.fill(got_scalar);
  }
  for (std::size_t i = 0; i < got_scalar.size(); ++i)
    if (got_scalar[i] != expected[i]) return false;
  return scalar.advance_sum(100) == adv_ref && scalar.next() == next_ref;
}

void bm_filter_bank(benchmark::State& state) {
  auto gen = make_generator("filter_bank", 1e-3, 1);
  for (auto _ : state) benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(bm_filter_bank);

// The rows the >= 2x fill-throughput acceptance gate compares: one
// 1M-sample block per iteration, batched fill at pool width = Arg vs the
// stepped next() loop. The per-stage tasks fan out across the pool
// (bench_multi_ring conventions), so read the speedup off the row whose
// width matches the machine; the 1-thread row isolates the serial
// batching gain (inlined pair-at-a-time Gaussian draws, no per-sample
// dispatch).
constexpr std::size_t kFillBlockSamples = 1u << 20;

void bm_filter_bank_fill_1m_threads(benchmark::State& state) {
  ThreadPool::global().resize(static_cast<std::size_t>(state.range(0)));
  auto gen = make_generator("filter_bank", 1e-3, 5);
  std::vector<double> block(kFillBlockSamples);
  for (auto _ : state) {
    gen->fill(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
  ThreadPool::global().resize(0);
}
// Registered at runtime (see main): on a single-CPU host the 2/4/8
// rows measure oversubscription scheduling noise, not scaling, so they
// get the ":informational" name suffix that bench_diff.py skips.

// Same single-thread fill with the vector kernels forced down to the
// scalar fallback — the SIMD speedup is fill_1m_threads/1 over this row.
void bm_filter_bank_fill_1m_scalar(benchmark::State& state) {
  ThreadPool::global().resize(1);
  ptrng::simd::ScopedForceScalar force;
  auto gen = make_generator("filter_bank", 1e-3, 5);
  std::vector<double> block(kFillBlockSamples);
  for (auto _ : state) {
    gen->fill(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
  ThreadPool::global().resize(0);
}
BENCHMARK(bm_filter_bank_fill_1m_scalar)->Unit(benchmark::kMillisecond);

void bm_filter_bank_next_loop_1m(benchmark::State& state) {
  auto gen = make_generator("filter_bank", 1e-3, 5);
  std::vector<double> block(kFillBlockSamples);
  for (auto _ : state) {
    for (auto& x : block) x = gen->next();
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK(bm_filter_bank_next_loop_1m)->Unit(benchmark::kMillisecond);

void bm_kasdin(benchmark::State& state) {
  auto gen = make_generator("kasdin", 1e-3, 2);
  for (auto _ : state) benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(bm_kasdin);

void bm_voss(benchmark::State& state) {
  auto gen = make_generator("voss", 1e-3, 3);
  for (auto _ : state) benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(bm_voss);

void bm_rtn_sum(benchmark::State& state) {
  auto gen = make_generator("rtn_sum", 1e-3, 4);
  for (auto _ : state) benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(bm_rtn_sum);

}  // namespace

int main(int argc, char** argv) {
  const bool deterministic = verify_fill_determinism();
  std::cout << "fill determinism (batch vs stepped next vs forced-scalar "
               "SIMD fallback, mid-block re-entry + advance_sum "
               "interleave): "
            << (deterministic ? "OK" : "FAILED") << "\n\n";
  if (!deterministic) return 1;  // fail bench-smoke, timings untrustworthy
  print_ablation();
  benchmark::Initialize(&argc, argv);
  const bool single_cpu = std::thread::hardware_concurrency() <= 1;
  benchmark::RegisterBenchmark(single_cpu
                                   ? "bm_filter_bank_fill_1m_threads"
                                     ":informational"
                                   : "bm_filter_bank_fill_1m_threads",
                               bm_filter_bank_fill_1m_threads)
      ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->MeasureProcessCPUTime()
      ->UseRealTime();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
