// ATTACK — the paper proposes embedding the thermal-noise measurement as
// a fast AIS31-style online test that "could detect very quickly attacks
// targeting the entropy source". This bench sweeps the frequency-
// injection coupling strength (Markettos-Moore / Bayon models) and
// reports the monitor's detection rate and latency, plus the residual
// entropy of the attacked TRNG.
#include <benchmark/benchmark.h>

#include <iostream>

#include "attacks/injection.hpp"
#include "common/table.hpp"
#include "measurement/counter.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "trng/entropy.hpp"
#include "trng/ero_trng.hpp"
#include "trng/online_test.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

struct DetectionResult {
  double detection_rate = 0.0;
  double decisions_to_first_alarm = 0.0;
};

DetectionResult run_monitor(double coupling, double reference,
                            std::size_t n_cycles, std::uint64_t seed) {
  attacks::InjectionAttack atk;
  atk.coupling = coupling;
  // Frequency pulling scales with the coupled power.
  atk.modulation_depth = 3e-3 * coupling;
  auto c1 = paper_single_config(seed);
  auto c2 = paper_single_config(seed ^ 0xffULL);
  c1.mismatch = +1.5e-3;
  c2.mismatch = -1.5e-3;
  auto osc1 = attacks::make_attacked_oscillator(c1, atk);
  auto osc2 = attacks::make_attacked_oscillator(c2, atk);
  measurement::DifferentialCounter counter(osc1, osc2);

  trng::OnlineTestConfig cfg;
  cfg.n_cycles = n_cycles;
  cfg.windows_per_test = 1024;
  cfg.reference_sigma2 = reference;
  cfg.false_alarm = 1e-4;
  trng::ThermalNoiseMonitor monitor(cfg, paper::f0);

  DetectionResult res;
  std::size_t alarms = 0, decisions = 0, first = 0;
  for (const auto q : counter.count_windows(n_cycles, 1024 * 12 + 1)) {
    trng::OnlineTestDecision d;
    if (monitor.push_count(q, &d)) {
      ++decisions;
      if (d.alarm) {
        ++alarms;
        if (first == 0) first = decisions;
      }
    }
  }
  res.detection_rate =
      decisions ? static_cast<double>(alarms) / static_cast<double>(decisions)
                : 0.0;
  res.decisions_to_first_alarm = first ? static_cast<double>(first) : -1.0;
  return res;
}

void print_attack_detection() {
  std::cout << "=== ATTACK: online thermal-noise test vs injection "
               "attacks (paper conclusion) ===\n\n";
  const std::size_t n_cycles = 20000;

  // Calibration on a healthy device.
  auto h1 = paper_single_config(0xca11);
  auto h2 = paper_single_config(0xca12);
  h1.mismatch = +1.5e-3;
  h2.mismatch = -1.5e-3;
  RingOscillator osc1(h1), osc2(h2);
  measurement::DifferentialCounter cal_counter(osc1, osc2);
  const double reference = cal_counter.sigma2_n(n_cycles, 8192);

  TableWriter table({"coupling", "detect rate", "tests to 1st alarm",
                     "H_refined(thermal)", "H_empirical"});
  for (double coupling : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
    const auto det =
        run_monitor(coupling, reference, n_cycles, 0xa77ac + // per-strength
                    static_cast<std::uint64_t>(coupling * 100));
    // Residual entropy of the attacked TRNG at a divider that is
    // adequate for the healthy device (K = 30000 -> H ~ 1).
    attacks::InjectionAttack atk;
    atk.coupling = coupling;
    auto sampled = paper_single_config(0x77 + static_cast<std::uint64_t>(
        coupling * 10));
    auto sampling = paper_single_config(0x88);
    sampled.mismatch = 1.5e-3;
    trng::EroTrngConfig tcfg;
    tcfg.divider = 30000;
    trng::EroTrng gen(atk.apply(sampled), atk.apply(sampling), tcfg);
    const auto bits = gen.generate_bits(60'000);
    const double h_emp = std::min(trng::markov_entropy_rate(bits),
                                  trng::shannon_block_entropy(bits, 8));
    // Security-relevant entropy: worst-case bound from the SUPPRESSED
    // thermal diffusion only (both rings attacked).
    const double v_thermal =
        30000.0 * (atk.apply(sampled).b_th + atk.apply(sampling).b_th) /
        paper::f0;
    const double h_refined = trng::entropy_lower_bound(v_thermal);

    table.add_row({cell(coupling, 2), cell(det.detection_rate, 3),
                   det.decisions_to_first_alarm < 0
                       ? "none"
                       : cell(det.decisions_to_first_alarm, 0),
                   cell(h_refined, 4), cell(h_emp, 4)});
  }
  table.print(std::cout);
  std::cout << "\nreading: strong coupling -> immediate detection. Note "
               "H_empirical stays ~1 while the\nthermal-only (worst-case) "
               "entropy collapses: the flicker wandering that remains is\n"
               "correlated and adversarially predictable — empirical "
               "black-box estimators cannot see\nthe attack, which is "
               "precisely why the paper's model-based thermal accounting "
               "matters.\nWeak locking (<= 0.4) evades the single-N "
               "variance monitor: its thermal deficit hides\nbelow the "
               "counter quantization floor (the paper's paradox).\n\n";
}

void bm_monitor_decision(benchmark::State& state) {
  trng::OnlineTestConfig cfg;
  cfg.n_cycles = 1000;
  cfg.windows_per_test = 32;
  cfg.reference_sigma2 = 1e-20;
  trng::ThermalNoiseMonitor monitor(cfg, paper::f0);
  std::int64_t q = 0;
  for (auto _ : state) {
    trng::OnlineTestDecision d;
    benchmark::DoNotOptimize(monitor.push_count(++q, &d));
  }
}
BENCHMARK(bm_monitor_decision);

}  // namespace

int main(int argc, char** argv) {
  print_attack_detection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
