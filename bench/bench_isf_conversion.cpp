// ISF — ablation of the Hajimiri conversion stage (the "multilevel" step
// of Fig. 3): how the ISF shape, waveform asymmetry and stage count move
// the (b_th, b_fl) split and hence the independence threshold. The key
// qualitative check: a symmetric ISF (Gamma_dc ~ 0) upconverts no flicker
// -> N* explodes; realistic asymmetry brings it down.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "phase_noise/conversion.hpp"
#include "phase_noise/isf.hpp"
#include "transistor/inverter.hpp"
#include "transistor/technology.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::phase_noise;

void print_isf_ablation() {
  std::cout << "=== ISF: conversion-stage ablation (Hajimiri step of the "
               "multilevel model) ===\n\n";
  const transistor::Inverter inverter(
      transistor::technology_node("130nm"));

  std::cout << "-- ISF asymmetry sweep (5 stages, triangular ISF) --\n";
  TableWriter asym({"asymmetry", "Gamma_dc", "Gamma_rms", "b_th [Hz]",
                    "b_fl [Hz^2]", "N*(95%)"});
  for (double a : {0.0, 0.1, 0.25, 0.5, 0.75}) {
    const auto isf = Isf::ring_triangular(0.42, a);
    const auto res = convert_ring(inverter, 5, isf);
    const auto psd = res.phase_psd();
    asym.add_row({cell(a, 2), cell(isf.dc(), 5), cell(isf.rms(), 4),
                  cell_sci(res.b_th, 3), cell_sci(res.b_fl, 3),
                  cell(psd.independence_threshold(0.95), 1)});
  }
  asym.print(std::cout);

  std::cout << "\n-- stage count sweep (asymmetry 0.25) --\n";
  TableWriter stages({"stages", "f0 [MHz]", "b_th [Hz]", "b_fl [Hz^2]",
                      "sigma_th/T0 [permil]"});
  for (std::size_t n : {3u, 5u, 7u, 11u, 15u, 21u}) {
    const auto isf = Isf::ring_typical(n, 0.25);
    const auto res = convert_ring(inverter, n, isf);
    const auto psd = res.phase_psd();
    stages.add_row({cell(n), cell(res.f0 / 1e6, 1), cell_sci(res.b_th, 3),
                    cell_sci(res.b_fl, 3),
                    cell(psd.jitter_ratio() * 1e3, 4)});
  }
  stages.print(std::cout);

  std::cout << "\n-- idealized sine ISF (zero DC) --\n";
  const auto sine = Isf::sine(0.42);
  const auto res = convert_ring(inverter, 5, sine);
  std::cout << "  b_th = " << cell_sci(res.b_th, 3)
            << " Hz, b_fl = " << cell_sci(res.b_fl, 3)
            << " Hz^2 (no flicker upconversion -> Eq. 6 would hold at all "
               "N; real rings are never symmetric)\n\n";
}

void bm_isf_construction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Isf::ring_triangular(0.4, 0.25, 512));
  }
}
BENCHMARK(bm_isf_construction)->Unit(benchmark::kMicrosecond);

void bm_conversion(benchmark::State& state) {
  const transistor::Inverter inverter(
      transistor::technology_node("130nm"));
  const auto isf = Isf::ring_typical(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(convert_ring(inverter, 5, isf));
  }
}
BENCHMARK(bm_conversion);

}  // namespace

int main(int argc, char** argv) {
  print_isf_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
