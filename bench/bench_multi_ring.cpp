// MULTIRING — thread scaling of the Sunar-style multi-ring TRNG's
// batched path: MultiRingTrng::generate_into fans out one ring per task
// and XOR-reduces the per-ring bit blocks, so an R-ring generator scales
// to min(R, threads). The Arg is the pool width; compare the 1-thread
// row against 2/4/8 to read the speedup on a >= 1M-bit block. The
// preamble verifies the bit-identity guarantees (1 vs 8 threads, and
// batch vs per-bit) before any timing is trusted — matching the
// bench_parallel_sweep conventions.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "trng/multi_ring.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

constexpr std::size_t kRings = 8;
constexpr std::uint32_t kDivider = 200;
constexpr std::size_t kBlockBits = 1u << 20;  // >= 1M bits per iteration
constexpr std::uint64_t kSeed = 0x9a17b1ab;

bool verify_determinism() {
  std::vector<std::uint8_t> one(64'000), eight(one.size());
  ThreadPool::global().resize(1);
  {
    auto gen = paper_multi_ring(kRings, kDivider, kSeed);
    gen.generate_into(one);
  }
  ThreadPool::global().resize(8);
  {
    auto gen = paper_multi_ring(kRings, kDivider, kSeed);
    gen.generate_into(eight);
  }
  ThreadPool::global().resize(0);
  if (one != eight) return false;
  // Batch path == per-bit path on the same stream.
  auto batched = paper_multi_ring(kRings, kDivider, kSeed ^ 1);
  auto stepped = paper_multi_ring(kRings, kDivider, kSeed ^ 1);
  std::vector<std::uint8_t> block(8'000);
  batched.generate_into(block);
  for (const auto b : block)
    if (b != stepped.next_bit()) return false;
  return true;
}

void bm_multi_ring_batch_threads(benchmark::State& state) {
  ThreadPool::global().resize(static_cast<std::size_t>(state.range(0)));
  auto gen = paper_multi_ring(kRings, kDivider, kSeed);
  std::vector<std::uint8_t> block(kBlockBits);
  for (auto _ : state) {
    gen.generate_into(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
  ThreadPool::global().resize(0);
}
// Registered at runtime (see main): on a single-CPU host the 2/4/8
// rows measure oversubscription scheduling noise, not scaling, so they
// get the ":informational" name suffix that bench_diff.py skips.

void bm_multi_ring_next_bit_baseline(benchmark::State& state) {
  auto gen = paper_multi_ring(kRings, kDivider, kSeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next_bit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_multi_ring_next_bit_baseline);

void bm_multi_ring_ring_count(benchmark::State& state) {
  // Area-vs-rate tradeoff at fixed divider: cost is ~linear in R on one
  // thread (each extra ring adds one sampled-bit block).
  ThreadPool::global().resize(1);
  auto gen = paper_multi_ring(static_cast<std::size_t>(state.range(0)),
                              kDivider, kSeed);
  std::vector<std::uint8_t> block(1u << 14);
  for (auto _ : state) {
    gen.generate_into(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
  ThreadPool::global().resize(0);
}
BENCHMARK(bm_multi_ring_ring_count)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== MULTIRING: thread scaling of the batched multi-ring "
               "TRNG ===\n"
            << "rings " << kRings << ", divider " << kDivider << ", block "
            << kBlockBits << " bits, hardware concurrency "
            << configured_thread_count() << "\n";
  const bool deterministic = verify_determinism();
  std::cout << "determinism (1 vs 8 threads, batch vs next_bit): "
            << (deterministic ? "OK" : "FAILED") << "\n\n";
  if (!deterministic) return 1;  // fail bench-smoke, timings untrustworthy
  benchmark::Initialize(&argc, argv);
  const bool single_cpu = std::thread::hardware_concurrency() <= 1;
  benchmark::RegisterBenchmark(single_cpu
                                   ? "bm_multi_ring_batch_threads"
                                     ":informational"
                                   : "bm_multi_ring_batch_threads",
                               bm_multi_ring_batch_threads)
      ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->MeasureProcessCPUTime()
      ->UseRealTime();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
