// CELLARRAY — throughput of the neoTRNG-style cell-array generator:
// the raw batched path (one cell per task, thread-scaled like
// bench_multi_ring) and the full decimated pipeline (von Neumann +
// parity), plus the cost of scaling the cell count. The preamble
// verifies the bit-identity guarantees (1 vs 8 threads, batch vs
// per-bit) before any timing is trusted — matching the
// bench_parallel_sweep conventions.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "trng/cell_array.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

constexpr std::uint64_t kSeed = 0xce11a44a;

/// Jittery fast-clock configuration (the test suite's profile): cheap
/// raw ticks, realistic decimated output.
CellArrayConfig bench_config(std::size_t cells = 3) {
  CellArrayConfig cfg;
  cfg.cells = cells;
  cfg.base_stages = 5;
  cfg.stage_delay = 100e-12;
  cfg.sigma_stage = 30e-12;
  cfg.sample_divider = 8;
  cfg.decimation = 16;
  cfg.seed = kSeed;
  return cfg;
}

bool verify_determinism() {
  std::vector<std::uint8_t> one(32'000), eight(one.size());
  ThreadPool::global().resize(1);
  {
    CellArrayTrng gen(bench_config());
    gen.generate_into(one);
  }
  ThreadPool::global().resize(8);
  {
    CellArrayTrng gen(bench_config());
    gen.generate_into(eight);
  }
  ThreadPool::global().resize(0);
  if (one != eight) return false;
  // Batch path == per-bit path on the same stream.
  CellArrayTrng batched(bench_config()), stepped(bench_config());
  std::vector<std::uint8_t> block(8'000);
  batched.generate_into(block);
  for (const auto b : block)
    if (b != stepped.next_bit()) return false;
  return true;
}

void bm_cell_array_raw_threads(benchmark::State& state) {
  ThreadPool::global().resize(static_cast<std::size_t>(state.range(0)));
  CellArrayTrng gen(bench_config());
  std::vector<std::uint8_t> block(1u << 16);
  for (auto _ : state) {
    gen.generate_into(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
  ThreadPool::global().resize(0);
}
BENCHMARK(bm_cell_array_raw_threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void bm_cell_array_decimated(benchmark::State& state) {
  // Full published architecture: raw XOR stream through the 16x
  // von-Neumann + parity chain; items = DELIVERED (decimated) bits.
  CellArrayTrng gen(bench_config());
  Pipeline pipeline(gen, /*block_bits=*/4096);
  gen.attach_decimation(pipeline);
  std::vector<std::uint8_t> block(4096);
  for (auto _ : state) {
    pipeline.generate_into(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK(bm_cell_array_decimated)->Unit(benchmark::kMillisecond);

void bm_cell_array_cell_count(benchmark::State& state) {
  // Area-vs-rate: raw cost is ~linear in the cell count on one thread.
  CellArrayTrng gen(bench_config(static_cast<std::size_t>(state.range(0))));
  std::vector<std::uint8_t> block(1u << 14);
  for (auto _ : state) {
    gen.generate_into(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK(bm_cell_array_cell_count)
    ->Arg(1)->Arg(3)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== CELLARRAY: neoTRNG-style cell-array throughput ===\n"
            << "cells 3, base stages 5, divider 8, decimation 16, hardware "
               "concurrency "
            << configured_thread_count() << "\n";
  const bool deterministic = verify_determinism();
  std::cout << "determinism (1 vs 8 threads, batch vs next_bit): "
            << (deterministic ? "OK" : "FAILED") << "\n\n";
  if (!deterministic) return 1;  // fail bench-smoke, timings untrustworthy
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
