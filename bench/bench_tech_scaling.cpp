// SCALE — the paper's closing prediction: as transistor technology
// shrinks, flicker noise (PSD ~ 1/(W L^2)) grows relative to thermal
// noise, so the thermal ratio r_N falls and the independence threshold N*
// collapses — the "paradox" that measuring the thermal contribution gets
// harder exactly when it matters most. Forward-predicted per node via the
// multilevel pipeline (technology -> inverter -> ISF -> b_th, b_fl).
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "model/multilevel_model.hpp"
#include "phase_noise/isf.hpp"
#include "transistor/technology.hpp"

namespace {

using namespace ptrng;

void print_scaling() {
  std::cout << "=== SCALE: technology scaling of the independence "
               "threshold (paper conclusion) ===\n"
            << "5-stage ring, typical asymmetric ISF, fanout 10 "
               "(routing-dominated load), per node\n\n";
  const auto isf = phase_noise::Isf::ring_typical(5, 0.25);

  TableWriter table({"node", "f0 [MHz]", "b_th [Hz]", "b_fl [Hz^2]",
                     "sigma_th [ps]", "C=r_N const", "N*(95%)"});
  for (const auto& node : transistor::technology_nodes()) {
    const auto m =
        model::MultilevelModel::from_technology(node, 5, isf, 10.0);
    const auto& psd = m.phase_psd();
    table.add_row({node.name, cell(psd.f0() / 1e6, 1), cell_sci(psd.b_th(), 3),
                   cell_sci(psd.b_fl(), 3),
                   cell(m.thermal_jitter() * 1e12, 3),
                   cell(psd.thermal_ratio_constant(), 0),
                   cell(m.independence_threshold(0.95), 1)});
  }
  table.print(std::cout);
  std::cout << "\nreading: N*(95%) falls monotonically with the node — "
               "fewer and fewer consecutive jitter\nrealizations can be "
               "treated as independent, and the flicker floor swallows the "
               "thermal\nsignal (the paper's paradox).\n\n";
}

void bm_forward_model(benchmark::State& state) {
  const auto isf = phase_noise::Isf::ring_typical(5);
  const auto& node = transistor::technology_node("65nm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::MultilevelModel::from_technology(node, 5, isf));
  }
}
BENCHMARK(bm_forward_model)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
