// RN281 — reproduces the paper's thermal-ratio analysis (Sec. III-E):
//
//   r_N = 5354 / (5354 + N),   r_N > 95%  <=>  N < 281
//
// printed as a curve plus the threshold table for several confidence
// levels, from both the analytic model and a fresh measurement fit.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "measurement/calibration.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "phase_noise/phase_psd.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

void print_rn() {
  std::cout << "=== RN281: thermal ratio r_N and independence threshold "
               "(paper Sec. III-E) ===\n\n";
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);

  TableWriter curve({"N", "r_N (model)", "r_N (paper 5354/(5354+N))"});
  for (std::size_t n : {10u, 50u, 100u, 281u, 500u, 1000u, 5354u, 20000u,
                        100000u}) {
    const double nn = static_cast<double>(n);
    curve.add_row({cell(n), cell(psd.thermal_ratio(nn), 4),
                   cell(5354.0 / (5354.0 + nn), 4)});
  }
  curve.print(std::cout);

  std::cout << "\nindependence thresholds N*(r_min):\n";
  TableWriter th({"r_min", "N* (model)", "note"});
  for (double r : {0.99, 0.95, 0.90, 0.80, 0.50}) {
    std::string note = (r == 0.95) ? "paper: N < 281" : "";
    th.add_row({cell(r, 2), cell(psd.independence_threshold(r), 1), note});
  }
  th.print(std::cout);

  // Cross-check: the same threshold out of a fresh measured fit.
  auto pair = paper_pair(0x281281, 0.0);
  const auto jitter = pair.relative_jitter(4'000'000);
  const auto grid = log_integer_grid(10, 40'000, 24);
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  const auto cal = measurement::fit_sigma2_n(sweep, paper::f0);
  std::cout << "\nmeasured-fit C = " << cell(cal.rn_constant, 0)
            << " (paper 5354), N*(95%) = "
            << cell(cal.independence_threshold(0.95), 1)
            << " (paper 281)\n\n";
}

void bm_threshold_query(benchmark::State& state) {
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psd.independence_threshold(0.95));
  }
}
BENCHMARK(bm_threshold_query);

}  // namespace

int main(int argc, char** argv) {
  print_rn();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
