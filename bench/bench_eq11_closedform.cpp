// EQ11 — validates the paper's closed form (Eq. 11) against the integral
// it was derived from (Eq. 9/17):
//
//   sigma^2_N = 8/(pi^2 f0^2) Int_0^inf S_phi(f) sin^4(pi f N/f0) df
//             = 2 b_th/f0^3 * N + 8 ln2 b_fl/f0^4 * N^2
//
// term-by-term and for the combined PSD, over a wide (b_th, b_fl, N)
// sweep.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "phase_noise/phase_psd.hpp"
#include "phase_noise/sigma2n.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::phase_noise;

void print_eq11() {
  std::cout << "=== EQ11: closed form vs numeric Eq. 9 integral ===\n\n";
  const double f0 = oscillator::paper::f0;
  const double b_th = oscillator::paper::b_th;
  const double b_fl = oscillator::paper::b_fl;
  const PhasePsd psd(b_th, b_fl, f0);

  TableWriter table({"N", "thermal num/closed", "flicker num/closed",
                     "total num/closed"});
  for (double n : {1.0, 10.0, 100.0, 281.0, 1000.0, 5354.0, 100000.0}) {
    const double th_num = sigma2_n_power_law(b_th, -2.0, f0, n);
    const double fl_num = sigma2_n_power_law(b_fl, -3.0, f0, n);
    table.add_row(
        {cell(n, 0), cell(th_num / psd.sigma2_n_thermal(n), 6),
         cell(fl_num / psd.sigma2_n_flicker(n), 6),
         cell((th_num + fl_num) / psd.sigma2_n(n), 6)});
  }
  table.print(std::cout);

  std::cout << "\nparameter sweep (worst relative deviation over N in "
               "{1..1e5}):\n";
  TableWriter sweep({"b_th [Hz]", "b_fl [Hz^2]", "max |num/closed - 1|"});
  for (double bt : {1.0, 276.04, 1e4}) {
    for (double bf : {1e3, 1.9156e6, 1e9}) {
      const PhasePsd p(bt, bf, f0);
      double worst = 0.0;
      for (double n : {1.0, 31.0, 1000.0, 100000.0}) {
        const double num = sigma2_n_power_law(bt, -2.0, f0, n) +
                           sigma2_n_power_law(bf, -3.0, f0, n);
        worst = std::max(worst, std::abs(num / p.sigma2_n(n) - 1.0));
      }
      sweep.add_row({cell_sci(bt, 2), cell_sci(bf, 2), cell_sci(worst, 2)});
    }
  }
  sweep.print(std::cout);
  std::cout << "\n";
}

void bm_numeric_integral(benchmark::State& state) {
  const double f0 = oscillator::paper::f0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sigma2_n_power_law(276.04, -2.0, f0, 281.0));
  }
}
BENCHMARK(bm_numeric_integral)->Unit(benchmark::kMillisecond)->Iterations(5);

void bm_closed_form(benchmark::State& state) {
  const PhasePsd psd(276.04, 1.9e6, oscillator::paper::f0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psd.sigma2_n(281.0));
  }
}
BENCHMARK(bm_closed_form);

}  // namespace

int main(int argc, char** argv) {
  print_eq11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
