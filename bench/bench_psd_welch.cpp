// PSD — Welch / periodogram estimator throughput (ROADMAP bench-coverage
// gap). The estimators run on every calibration and health-monitoring
// path, so their samples/s figure bounds how much raw jitter a deployment
// can audit per second.
#include <benchmark/benchmark.h>

#include <vector>

#include "noise/kasdin.hpp"
#include "noise/white.hpp"
#include "stats/psd.hpp"

namespace {

using namespace ptrng;

// 1M samples of white + 1/f noise: representative of the relative-jitter
// series the estimators see in production.
const std::vector<double>& test_signal() {
  static const std::vector<double> signal = [] {
    std::vector<double> x(1 << 20);
    noise::KasdinFlicker::Config cfg;
    cfg.seed = 0x95d;
    noise::KasdinFlicker flicker(cfg);
    flicker.fill(x);
    noise::WhiteGaussianNoise white(1.0, 1.0, 0x715);
    for (auto& v : x) v += white.next();
    return x;
  }();
  return signal;
}

void bm_welch(benchmark::State& state) {
  const auto& x = test_signal();
  const std::size_t segment = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::welch(x, 1.0, segment));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(bm_welch)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void bm_periodogram(benchmark::State& state) {
  const auto& x = test_signal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::periodogram(x, 1.0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(bm_periodogram)->Unit(benchmark::kMillisecond);

void bm_psd_slope(benchmark::State& state) {
  const auto est = stats::welch(test_signal(), 1.0, 1 << 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::psd_slope(est, 1e-4, 1e-2));
  }
}
BENCHMARK(bm_psd_slope);

}  // namespace

BENCHMARK_MAIN();
