// EQ12 — characterizes the hardware estimator of Fig. 6 / Eq. 12 against
// the oracle jitter-sum estimator (Eq. 4): the counter only sees integer
// counts, so it carries a +-1-count quantization floor ~0.5/f0^2 that
// dominates at small N (a limitation the paper does not discuss; see
// docs/ARCHITECTURE.md §3). The bench maps the N range where Eq. 12 tracks
// theory and the effect of the inter-ring frequency mismatch.
#include <benchmark/benchmark.h>

#include <iostream>
#include <numeric>
#include <optional>
#include <utility>

#include "common/math_utils.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "measurement/counter.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

void print_comparison() {
  std::cout << "=== EQ12: counter estimator vs oracle (Fig. 6 circuit) ===\n"
            << "quantization floor f0^2*s2 ~ 0.5 expected at small N\n\n";
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const double f02 = paper::f0 * paper::f0;

  TableWriter table({"N", "f0^2*s2 (counter)", "f0^2*s2 (oracle)",
                     "f0^2*s2 (Eq.11)", "counter/theory"});
  for (std::size_t n : {100u, 1000u, 10000u, 30000u, 100000u}) {
    // Counter path (fresh oscillators per N to keep windows independent).
    auto c1 = paper_single_config(0xc0 + n);
    auto c2 = paper_single_config(0xd0 + n);
    c1.mismatch = +1.5e-3;
    c2.mismatch = -1.5e-3;
    RingOscillator osc1(c1), osc2(c2);
    measurement::DifferentialCounter counter(osc1, osc2);
    const std::size_t windows = std::max<std::size_t>(60, 4'000'000 / n);
    const double s2_counter = counter.sigma2_n(n, windows);

    // Oracle path.
    auto pair = paper_pair(0xe0 + n, 0.0);
    const auto jitter =
        pair.relative_jitter(std::min<std::size_t>(6'000'000, n * 400));
    const std::vector<std::size_t> grid{n};
    const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
    const double s2_oracle = sweep.empty() ? 0.0 : sweep[0].sigma2;

    const double theory = psd.sigma2_n(static_cast<double>(n));
    table.add_row({cell(n), cell_sci(s2_counter * f02),
                   cell_sci(s2_oracle * f02), cell_sci(theory * f02),
                   cell(s2_counter / theory, 3)});
  }
  table.print(std::cout);
  std::cout << "\nreading: counter/theory >> 1 at small N (quantization "
               "floor), -> 1 once the accumulated\njitter exceeds one "
               "period — use N >= ~3e4 on this device, or the oracle "
               "estimator in simulation.\n\n";
}

// Bit-identity preamble (docs/ARCHITECTURE.md §5 "SIMD rules"): the
// vectorized window loop must produce the same counts as the forced
// scalar fallback — including across a split run (buffered-edge carry)
// — and every realized osc1 period must be accounted for exactly:
// sum(counts) == cycle_count - buffered_edges.
bool verify_counter_determinism() {
  auto counts_run = [](bool force_scalar) {
    auto c1 = paper_single_config(0xa1);
    auto c2 = paper_single_config(0xa2);
    c1.mismatch = 1.5e-3;
    RingOscillator osc1(c1), osc2(c2);
    measurement::DifferentialCounter counter(osc1, osc2);
    std::optional<ptrng::simd::ScopedForceScalar> guard;
    if (force_scalar) guard.emplace();
    auto counts = counter.count_windows(1000, 97);  // part 1
    auto more = counter.count_windows(500, 61);     // re-entry, new N
    counts.insert(counts.end(), more.begin(), more.end());
    const auto total =
        std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
    const bool conserved =
        static_cast<std::uint64_t>(total) + counter.buffered_edges() ==
        osc1.cycle_count();
    return std::pair{counts, conserved};
  };
  const auto [simd_counts, simd_ok] = counts_run(false);
  const auto [scalar_counts, scalar_ok] = counts_run(true);
  return simd_ok && scalar_ok && simd_counts == scalar_counts;
}

void bm_counter_window(benchmark::State& state) {
  auto c1 = paper_single_config(1);
  auto c2 = paper_single_config(2);
  c1.mismatch = 1.5e-3;
  RingOscillator osc1(c1), osc2(c2);
  measurement::DifferentialCounter counter(osc1, osc2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.count_windows(1000, 10));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(bm_counter_window)->Unit(benchmark::kMillisecond);

// Same windows with the vector compare kernel forced down to the scalar
// fallback — the SIMD speedup on the boundary-resolution path is
// bm_counter_window over this row.
void bm_counter_window_scalar(benchmark::State& state) {
  ptrng::simd::ScopedForceScalar force;
  auto c1 = paper_single_config(1);
  auto c2 = paper_single_config(2);
  c1.mismatch = 1.5e-3;
  RingOscillator osc1(c1), osc2(c2);
  measurement::DifferentialCounter counter(osc1, osc2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.count_windows(1000, 10));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(bm_counter_window_scalar)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool deterministic = verify_counter_determinism();
  std::cout << "counter determinism (SIMD vs forced-scalar counts, "
               "buffered-edge carry, exact count conservation): "
            << (deterministic ? "OK" : "FAILED") << "\n\n";
  if (!deterministic) return 1;  // fail bench-smoke, timings untrustworthy
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
