// HEALTH — throughput of the certification-facing health tests (ROADMAP
// bench-coverage gap): AIS 31 procedures A/B, the SP 800-90B min-entropy
// assessment, and the paper's embedded thermal-noise online test. The
// bits/s numbers bound the raw-stream rate a deployment can screen
// continuously.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "trng/ais31.hpp"
#include "trng/online_test.hpp"
#include "trng/sp80090b.hpp"

namespace {

using namespace ptrng;

std::vector<std::uint8_t> ideal_bits(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> bits(n);
  Xoshiro256pp rng(seed);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 64 == 0) word = rng.next();
    bits[i] = static_cast<std::uint8_t>((word >> (i % 64)) & 1u);
  }
  return bits;
}

void bm_ais31_procedure_a(benchmark::State& state) {
  const std::size_t rounds = 8;
  const auto bits = ideal_bits(trng::ais31::procedure_a_bits(rounds), 0xa151);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng::ais31::procedure_a(bits, rounds));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(bm_ais31_procedure_a)->Unit(benchmark::kMillisecond);

void bm_ais31_procedure_b(benchmark::State& state) {
  const auto bits = ideal_bits(trng::ais31::procedure_b_bits(), 0xa152);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng::ais31::procedure_b(bits));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(bm_ais31_procedure_b)->Unit(benchmark::kMillisecond);

void bm_sp80090b_assess(benchmark::State& state) {
  const auto bits = ideal_bits(1 << 20, 0x90b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng::sp80090b::assess(bits));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(bm_sp80090b_assess)->Unit(benchmark::kMillisecond);

void bm_online_test_push(benchmark::State& state) {
  // Synthetic Q^N counts whose dispersion matches the calibrated
  // reference, so the monitor stays in its no-alarm steady state.
  const double f0 = 100e6;
  const double sigma_count = 2.0;
  trng::OnlineTestConfig cfg;
  cfg.reference_sigma2 = 2.0 * sigma_count * sigma_count / (f0 * f0);
  cfg.false_alarm = 1e-9;

  std::vector<std::int64_t> counts(1 << 16);
  GaussianSampler gauss(0x0271);
  for (auto& q : counts)
    q = 200 + static_cast<std::int64_t>(sigma_count * gauss());

  trng::ThermalNoiseMonitor monitor(cfg, f0);
  trng::OnlineTestDecision decision;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.push_count(counts[i], &decision));
    i = (i + 1) % counts.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_online_test_push);

}  // namespace

BENCHMARK_MAIN();
