// PARSWEEP — thread scaling of the parallel execution core on the
// paper's headline computation: the sigma^2_N sweep over a 4M-sample
// relative-jitter series (Fig. 7 input), plus the batched Kasdin fill().
// The Arg is the pool width; compare the 1-thread row against 2/4/8 to
// read the speedup. The preamble verifies the bit-identity guarantee
// (PTRNG_THREADS=1 vs =8 outputs) before any timing is trusted.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "noise/kasdin.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace {

using namespace ptrng;

constexpr std::size_t kSamples = 4'000'000;

const std::vector<double>& jitter_series() {
  static const std::vector<double> jitter =
      oscillator::paper_pair(0x9a2a11e1, 0.0).relative_jitter(kSamples);
  return jitter;
}

const std::vector<std::size_t>& sweep_grid() {
  static const std::vector<std::size_t> grid = log_integer_grid(10, 40'000, 25);
  return grid;
}

bool verify_determinism() {
  ThreadPool::global().resize(1);
  const auto one = measurement::sigma2_n_sweep(jitter_series(), sweep_grid());
  ThreadPool::global().resize(8);
  const auto eight = measurement::sigma2_n_sweep(jitter_series(), sweep_grid());
  ThreadPool::global().resize(0);
  if (one.size() != eight.size()) return false;
  for (std::size_t i = 0; i < one.size(); ++i) {
    if (one[i].sigma2 != eight[i].sigma2 || one[i].ci_lo != eight[i].ci_lo ||
        one[i].ci_hi != eight[i].ci_hi || one[i].samples != eight[i].samples)
      return false;
  }
  return true;
}

void bm_sweep_threads(benchmark::State& state) {
  ThreadPool::global().resize(static_cast<std::size_t>(state.range(0)));
  const auto& jitter = jitter_series();
  const auto& grid = sweep_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(measurement::sigma2_n_sweep(jitter, grid));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jitter.size()));
  ThreadPool::global().resize(0);
}
BENCHMARK(bm_sweep_threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void bm_kasdin_fill_threads(benchmark::State& state) {
  ThreadPool::global().resize(static_cast<std::size_t>(state.range(0)));
  noise::KasdinFlicker::Config cfg;
  cfg.seed = 0x4a5d;
  noise::KasdinFlicker gen(cfg);
  std::vector<double> out(1 << 21);
  for (auto _ : state) {
    gen.fill(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
  ThreadPool::global().resize(0);
}
BENCHMARK(bm_kasdin_fill_threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void bm_kasdin_next_baseline(benchmark::State& state) {
  noise::KasdinFlicker::Config cfg;
  cfg.seed = 0x4a5d;
  noise::KasdinFlicker gen(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_kasdin_next_baseline);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== PARSWEEP: thread scaling of the sigma^2_N sweep ===\n"
            << "series: " << kSamples << " samples, grid "
            << sweep_grid().size() << " points, hardware concurrency "
            << configured_thread_count() << "\n";
  const bool deterministic = verify_determinism();
  std::cout << "determinism (1 vs 8 threads bit-identical): "
            << (deterministic ? "OK" : "FAILED") << "\n\n";
  if (!deterministic) return 1;  // fail bench-smoke, timings are untrustworthy
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
