// RNG — Gaussian sampler engine ablation: Marsaglia polar (the pre-PR-5
// engine) vs the 256-layer ziggurat (the default since PR 5), scalar and
// batched, plus pool-parallel fill over independent chunk_seed streams.
// The PR-5 acceptance gate reads the 1-core comparison off the
// bm_gaussian_fill rows: ziggurat fill() must be >= 2x faster than polar
// fill() (the ziggurat replaces the polar loop's per-draw log/sqrt with
// one table lookup on ~98.8% of draws).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/ziggurat.hpp"

namespace {

using namespace ptrng;

constexpr std::size_t kBlockSamples = 1u << 20;

// Bit-identity preamble (bench_multi_ring conventions): fill() must
// reproduce the scalar stream exactly for BOTH engines, and the
// standalone ZigguratNormal must match the sampler's dispatch, before
// any timing here is trusted.
bool verify_determinism() {
  for (auto method : {GaussianSampler::Method::Ziggurat,
                      GaussianSampler::Method::Polar}) {
    GaussianSampler stepped(0xbe9c, method), batched(0xbe9c, method);
    std::vector<double> expected(10001);
    for (auto& x : expected) x = stepped();
    std::vector<double> got(expected.size());
    batched.fill(std::span<double>(got).subspan(0, 777));
    batched.fill(std::span<double>(got).subspan(777));
    for (std::size_t i = 0; i < got.size(); ++i)
      if (got[i] != expected[i]) return false;
    if (batched() != stepped()) return false;
  }
  ZigguratNormal zig(0xbe9c);
  GaussianSampler dispatch(0xbe9c);
  for (int i = 0; i < 1000; ++i)
    if (zig() != dispatch()) return false;
  return true;
}

void bm_gaussian_scalar(benchmark::State& state,
                        GaussianSampler::Method method) {
  GaussianSampler g(0x9a55, method);
  for (auto _ : state) benchmark::DoNotOptimize(g());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(bm_gaussian_scalar, polar,
                  GaussianSampler::Method::Polar);
BENCHMARK_CAPTURE(bm_gaussian_scalar, ziggurat,
                  GaussianSampler::Method::Ziggurat);

// One 1M-sample block per iteration through the single-stream fill()
// fast path — the pair the >= 2x acceptance gate compares.
void bm_gaussian_fill(benchmark::State& state,
                      GaussianSampler::Method method) {
  GaussianSampler g(0x9a55, method);
  std::vector<double> block(kBlockSamples);
  for (auto _ : state) {
    g.fill(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK_CAPTURE(bm_gaussian_fill, polar, GaussianSampler::Method::Polar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_gaussian_fill, ziggurat,
                  GaussianSampler::Method::Ziggurat)
    ->Unit(benchmark::kMillisecond);

// Pool-parallel fill: 8 fixed, independent chunk_seed streams each fill
// 1/8 of the block one-per-task (§5 batched-noise rules), so the output
// is identical for any pool width; Arg is the pool width. On the 1-core
// CI container the speedup only shows on multi-core hosts (à la
// bench_multi_ring).
void bm_gaussian_fill_threads(benchmark::State& state,
                              GaussianSampler::Method method) {
  ThreadPool::global().resize(static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kTasks = 8;
  constexpr std::size_t kChunk = kBlockSamples / kTasks;
  std::vector<GaussianSampler> streams;
  streams.reserve(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t)
    streams.emplace_back(chunk_seed(0x9a55, t), method);
  std::vector<double> block(kBlockSamples);
  for (auto _ : state) {
    parallel_for(0, kTasks, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t t = begin; t < end; ++t)
        streams[t].fill(std::span<double>(block).subspan(t * kChunk, kChunk));
    });
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
  ThreadPool::global().resize(0);
}
BENCHMARK_CAPTURE(bm_gaussian_fill_threads, polar,
                  GaussianSampler::Method::Polar)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK_CAPTURE(bm_gaussian_fill_threads, ziggurat,
                  GaussianSampler::Method::Ziggurat)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const bool deterministic = verify_determinism();
  std::cout << "sampler determinism (fill vs scalar, both engines; "
               "ZigguratNormal vs GaussianSampler dispatch): "
            << (deterministic ? "OK" : "FAILED") << "\n\n";
  if (!deterministic) return 1;  // fail bench-smoke, timings untrustworthy
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
