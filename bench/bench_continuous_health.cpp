// CONTINUOUS HEALTH — line-rate cost of the SP 800-90B §4.4 taps.
// The engine's word-at-a-time block path must be effectively free next
// to bit generation: the preamble HARD-GATES (exit 1) on
//  * block path != scalar path (bit-exactness, the correctness
//    precondition for trusting the fast-path timings),
//  * the raw tap perturbing pipeline output (pass-through violation),
//  * tapped generate_into costing > 5% over untapped on the paper's
//    eRO pipeline — the production raw stream the tap guards, where
//    physical-source generation (~µs/bit) dwarfs the sub-ns/bit scan.
// The same overhead against a bare-Xoshiro source (~2 ns/bit, the
// worst possible case for RELATIVE tap cost) is printed for the record
// but not gated: no byte-per-bit scanner can stay under 5% of a single
// xoshiro draw.
// Rows: pure engine.process throughput, tapped vs untapped pipeline
// throughput (iid and eRO sources), and per-scenario detection latency
// in bits (reported as a counter; the time column is time-to-detect).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "attacks/injection.hpp"
#include "common/rng.hpp"
#include "trng/bit_stream.hpp"
#include "trng/continuous_health.hpp"
#include "trng/ero_trng.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

constexpr std::size_t kBlockBits = 1u << 20;
constexpr std::uint64_t kSeed = 0x4ea17;

/// Fast iid source: worst case for RELATIVE tap overhead because the
/// per-bit generation cost is minimal.
class RngBitSource final : public BitSource {
 public:
  explicit RngBitSource(std::uint64_t seed) : rng_(seed) {}
  std::uint8_t next_bit() override {
    return static_cast<std::uint8_t>(rng_.next() & 1u);
  }
  void generate_into(std::span<std::uint8_t> out) override {
    for (auto& bit : out)
      bit = static_cast<std::uint8_t>(rng_.next() & 1u);
  }

 private:
  Xoshiro256pp rng_;
};

bool verify_block_path_bit_exact() {
  std::vector<std::uint8_t> bits;
  Xoshiro256pp rng(0xdead);
  while (bits.size() < 60'000) {  // dwell mix stresses fast-path exits
    const std::size_t dwell = 1 + rng.next() % 97;
    const auto v = static_cast<std::uint8_t>(rng.next() & 1u);
    bits.insert(bits.end(), dwell, v);
  }
  HealthEngine block{ContinuousHealthConfig{}};
  block.process(bits);
  HealthEngine scalar{ContinuousHealthConfig{}};
  for (const auto b : bits) scalar.process_bit(b);
  return block.repetition_alarms() == scalar.repetition_alarms() &&
         block.proportion_alarms() == scalar.proportion_alarms() &&
         block.first_alarm_bit() == scalar.first_alarm_bit() &&
         block.state() == scalar.state();
}

bool verify_pass_through() {
  std::vector<std::uint8_t> tapped_out(kBlockBits), plain_out(kBlockBits);
  RngBitSource tapped_src(kSeed), plain_src(kSeed);
  HealthEngine engine{ContinuousHealthConfig{}};
  Pipeline tapped(tapped_src, 1u << 16);
  tapped.attach_tap(engine);
  tapped.generate_into(tapped_out);
  Pipeline plain(plain_src, 1u << 16);
  plain.generate_into(plain_out);
  return tapped_out == plain_out && engine.bits_seen() >= kBlockBits;
}

template <typename MakeSource>
double time_generate_ms(MakeSource make_source, std::size_t block_bits,
                        int reps, bool with_tap) {
  auto source = make_source();
  HealthEngine engine{ContinuousHealthConfig{}};
  Pipeline pipe(source, 1u << 12);
  if (with_tap) pipe.attach_tap(engine);
  std::vector<std::uint8_t> block(block_bits);
  pipe.generate_into(block);  // warm-up pump
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {  // min rejects scheduler noise
    const auto t0 = std::chrono::steady_clock::now();
    pipe.generate_into(block);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
  }
  return best;
}

void bm_engine_process_block(benchmark::State& state) {
  RngBitSource src(kSeed);
  std::vector<std::uint8_t> block(kBlockBits);
  src.generate_into(block);
  HealthEngine engine{ContinuousHealthConfig{}};
  for (auto _ : state) {
    engine.process(block);
    benchmark::DoNotOptimize(engine.bits_seen());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK(bm_engine_process_block);

void bm_iid_pipeline(benchmark::State& state) {
  const bool tap = state.range(0) != 0;
  RngBitSource src(kSeed);
  HealthEngine engine{ContinuousHealthConfig{}};
  Pipeline pipe(src, 1u << 16);
  if (tap) pipe.attach_tap(engine);
  std::vector<std::uint8_t> block(kBlockBits);
  for (auto _ : state) {
    pipe.generate_into(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
  state.SetLabel(tap ? "tapped" : "untapped");
}
BENCHMARK(bm_iid_pipeline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void bm_ero_pipeline(benchmark::State& state) {
  // The physical source: generation dominates, the tap disappears.
  const bool tap = state.range(0) != 0;
  auto source = paper_trng(200, kSeed);
  HealthEngine engine{ContinuousHealthConfig{}};
  Pipeline pipe(source, 4096);
  if (tap) pipe.attach_tap(engine);
  std::vector<std::uint8_t> block(1u << 14);
  for (auto _ : state) {
    pipe.generate_into(block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
  state.SetLabel(tap ? "tapped" : "untapped");
}
BENCHMARK(bm_ero_pipeline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void bm_scenario_detection(benchmark::State& state) {
  // Time-to-detect per injection scenario; the latency_bits counter is
  // the paper-facing number (examples/attack_detection prints it too).
  const auto& sc =
      attacks::injection_scenarios()[static_cast<std::size_t>(
          state.range(0))];
  std::size_t latency = 0;
  for (auto _ : state) {
    auto victim = attacks::make_attacked_trng(sc.attack, sc.divider);
    HealthEngine engine{ContinuousHealthConfig{}};
    const auto lat = measure_detection_latency(victim, engine, 100'000);
    latency = lat.detected ? lat.bits : 0;
    benchmark::DoNotOptimize(latency);
  }
  state.counters["latency_bits"] =
      benchmark::Counter(static_cast<double>(latency));
  state.SetLabel(sc.name);
}
BENCHMARK(bm_scenario_detection)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== CONTINUOUS HEALTH: SP 800-90B 4.4 tap cost ===\n";
  const bool exact = verify_block_path_bit_exact();
  std::cout << "block path == scalar path: " << (exact ? "OK" : "FAILED")
            << "\n";
  const bool pass_through = verify_pass_through();
  std::cout << "tap pass-through: " << (pass_through ? "OK" : "FAILED")
            << "\n";
  const auto make_iid = [] { return RngBitSource(kSeed); };
  const double iid_plain =
      time_generate_ms(make_iid, kBlockBits, 7, false);
  const double iid_tapped = time_generate_ms(make_iid, kBlockBits, 7, true);
  std::cout << "tap overhead, iid worst case (" << kBlockBits
            << " bits, min of 7): " << iid_plain << " ms -> " << iid_tapped
            << " ms (" << (iid_tapped / iid_plain - 1.0) * 100.0
            << "%, informational)\n";
  const auto make_ero = [] { return paper_trng(200, kSeed); };
  constexpr std::size_t kEroBits = 1u << 15;
  const double ero_plain = time_generate_ms(make_ero, kEroBits, 5, false);
  const double ero_tapped = time_generate_ms(make_ero, kEroBits, 5, true);
  const double overhead = ero_tapped / ero_plain - 1.0;
  std::cout << "tap overhead, eRO raw stream (" << kEroBits
            << " bits, min of 5): " << ero_plain << " ms -> " << ero_tapped
            << " ms (" << overhead * 100.0 << "%, budget 5%)\n\n";
  if (!exact || !pass_through || overhead > 0.05)
    return 1;  // fail bench-smoke: tap broken or too expensive
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
