// SEC4B — reproduces the numbers of Section IV-B ("Experimental result"):
//
//   f0 = 103 MHz, f0^2 sigma^2_Nth = 5.36e-6 N
//   b_th = 276.04 Hz
//   sigma = sqrt(b_th/f0^3) ~ 15.89 ps
//   sigma/T0 = sigma*f0 ~ 1.6 permil
//
// by running the full measurement + extraction pipeline on the simulated
// pair, then comparing row by row.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "measurement/calibration.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

measurement::JitterCalibration run_extraction(std::uint64_t seed,
                                              std::size_t samples) {
  auto pair = paper_pair(seed, 0.0);
  const auto jitter = pair.relative_jitter(samples);
  const auto grid = log_integer_grid(10, 40'000, 25);
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  return measurement::fit_sigma2_n(sweep, paper::f0);
}

void print_section4() {
  std::cout << "=== SEC4B: thermal noise extraction (paper Sec. IV-B) ===\n\n";
  const auto cal = run_extraction(0x5ec4b, 6'000'000);

  TableWriter table({"quantity", "paper", "measured", "rel.err"});
  auto rel = [](double measured, double paper_v) {
    return cell((measured - paper_v) / paper_v * 100.0, 2) + "%";
  };
  table.add_row({"f0 [MHz]", "103", cell(cal.f0 / 1e6, 1),
                 rel(cal.f0 / 1e6, 103.0)});
  table.add_row({"lin coeff f0^2*s2Nth/N", "5.36e-06",
                 cell_sci(2.0 * cal.b_th / cal.f0),
                 rel(2.0 * cal.b_th / cal.f0, 5.36e-6)});
  table.add_row({"b_th [Hz]", "276.04", cell(cal.b_th, 2),
                 rel(cal.b_th, 276.04)});
  table.add_row({"sigma_th [ps]", "15.89", cell(cal.sigma_thermal * 1e12, 2),
                 rel(cal.sigma_thermal * 1e12, 15.89)});
  table.add_row({"sigma/T0 [permil]", "1.6", cell(cal.jitter_ratio * 1e3, 3),
                 rel(cal.jitter_ratio * 1e3, 1.6)});
  table.add_row({"r_N constant C", "5354", cell(cal.rn_constant, 0),
                 rel(cal.rn_constant, 5354.0)});
  table.print(std::cout);
  std::cout << "\n(sigma_th is the pair-level relative thermal jitter, as "
               "measured by the paper's differential circuit)\n\n";
}

void bm_full_extraction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_extraction(static_cast<std::uint64_t>(state.iterations()),
                       500'000));
  }
}
BENCHMARK(bm_full_extraction)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_section4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
