// FIG7 — reproduces the paper's Fig. 7: f0^2 * sigma^2_N versus N for the
// simulated 103 MHz oscillator pair, with the Eq. 11 decomposition and the
// weighted fit (Sec. IV-A). The paper's fit: f0^2 sigma^2_N,th = 5.36e-6 N,
// r_N = 5354/(5354+N).
//
// Also registers throughput benchmarks of the simulation + estimation
// kernels used to produce the figure.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "measurement/calibration.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

void print_figure7() {
  std::cout << "=== FIG7: sigma^2_N * f0^2 vs N (paper Fig. 7) ===\n"
            << "setup: two simulated 103 MHz rings, pair coefficients\n"
            << "       b_th = " << paper::b_th
            << " Hz, b_fl = " << paper::b_fl << " Hz^2 (paper fit)\n\n";

  auto pair = paper_pair(0xf160007, 0.0);
  const auto jitter = pair.relative_jitter(6'000'000);
  const auto grid = log_integer_grid(10, 40'000, 25);
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  const auto cal = measurement::fit_sigma2_n(sweep, paper::f0);
  const auto psd = pair.pair_phase_psd();

  const double f02 = paper::f0 * paper::f0;
  TableWriter table({"N", "f0^2*s2N (meas)", "f0^2*s2N (Eq.11)",
                     "thermal part", "flicker part", "r_N"});
  for (const auto& pt : sweep) {
    const double n = static_cast<double>(pt.n);
    table.add_row({cell(pt.n), cell_sci(pt.sigma2 * f02),
                   cell_sci(psd.sigma2_n(n) * f02),
                   cell_sci(psd.sigma2_n_thermal(n) * f02),
                   cell_sci(psd.sigma2_n_flicker(n) * f02),
                   cell(psd.thermal_ratio(n), 4)});
  }
  table.print(std::cout);

  std::cout << "\nfit of the measured sweep (Sec. IV-A):\n"
            << "  linear coeff  (2 b_th/f0):   "
            << cell_sci(2.0 * cal.b_th / paper::f0)
            << "   [paper: 5.3600e-06]\n"
            << "  quadratic coeff (8ln2 b_fl/f0^2): "
            << cell_sci(8.0 * constants::ln2 * cal.b_fl / f02)
            << "   [paper-implied: 1.0012e-09]\n"
            << "  b_th = " << cell(cal.b_th, 2) << " Hz   [paper: 276.04]\n"
            << "  b_fl = " << cell_sci(cal.b_fl) << " Hz^2 [implied: 1.9156e+06]\n"
            << "  fit R^2 = " << cell(cal.r_squared, 6) << "\n\n";
}

void bm_pair_simulation(benchmark::State& state) {
  auto pair = paper_pair(42, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.relative_jitter(10'000));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(bm_pair_simulation)->Unit(benchmark::kMillisecond);

void bm_sigma2n_sweep(benchmark::State& state) {
  auto pair = paper_pair(43, 0.0);
  const auto jitter = pair.relative_jitter(200'000);
  const auto grid = log_integer_grid(10, 10'000, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measurement::sigma2_n_sweep(jitter, grid));
  }
}
BENCHMARK(bm_sigma2n_sweep)->Unit(benchmark::kMillisecond);

void bm_calibration_fit(benchmark::State& state) {
  auto pair = paper_pair(44, 0.0);
  const auto jitter = pair.relative_jitter(400'000);
  const auto grid = log_integer_grid(10, 20'000, 24);
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measurement::fit_sigma2_n(sweep, paper::f0));
  }
}
BENCHMARK(bm_calibration_fit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
