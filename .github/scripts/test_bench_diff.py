#!/usr/bin/env python3
"""Self-test for bench_diff.py (rolling-median baselines, layout
back-compat, regression detection).

Runs under pytest (``pytest test_bench_diff.py``) or standalone
(``python3 test_bench_diff.py``) — CI uses the standalone form so the
bench-smoke job needs no extra dependencies.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import bench_diff  # noqa: E402


def _write_run(run_dir: pathlib.Path, file_name: str,
               benches: dict[str, float], unit: str = "ns",
               run_type: str | None = None) -> None:
    run_dir.mkdir(parents=True, exist_ok=True)
    entries = []
    for name, cpu_time in benches.items():
        entry = {"name": name, "cpu_time": cpu_time, "real_time": cpu_time,
                 "time_unit": unit}
        if run_type is not None:
            entry["run_type"] = run_type
        entries.append(entry)
    (run_dir / file_name).write_text(json.dumps({"benchmarks": entries}))


def test_median_over_history_ignores_one_noisy_run() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        for idx, value in enumerate([1e6, 1e6, 5e6]):  # one noisy outlier
            _write_run(base / f"run-{idx:04d}", "b.json", {"bm": value})
        baseline = bench_diff.collect_baseline(base, history=3,
                                              metric="cpu_time")
        # Median 1e6 survives the 5e6 outlier that a last-run baseline
        # would have used.
        assert baseline["b.json"]["bm"] == 1e6

        new = pathlib.Path(tmp) / "new"
        _write_run(new, "b.json", {"bm": 1.05e6})
        compared, regressions, _ = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time",
            min_time_ns=1e5)
        assert compared == 1
        assert regressions == []


def test_history_window_drops_old_runs() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        # Old fast runs age out of a history-2 window; the recent slower
        # pair becomes the baseline.
        for idx, value in enumerate([1e6, 1e6, 4e6, 4e6]):
            _write_run(base / f"run-{idx:04d}", "b.json", {"bm": value})
        baseline = bench_diff.collect_baseline(base, history=2,
                                              metric="cpu_time")
        assert baseline["b.json"]["bm"] == 4e6


def test_flat_legacy_layout_still_works() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        _write_run(base, "b.json", {"bm": 2e6})
        baseline = bench_diff.collect_baseline(base, history=3,
                                              metric="cpu_time")
        assert baseline["b.json"]["bm"] == 2e6


def test_budget_overrides_threshold_per_bench() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        _write_run(base / "run-0000", "noisy.json", {"bm": 1e6})
        _write_run(base / "run-0000", "tight.json", {"bm": 1e6})
        baseline = bench_diff.collect_baseline(base, history=3,
                                               metric="cpu_time")
        new = pathlib.Path(tmp) / "new"
        # Both slow down 25%: the per-bench 40% budget absorbs it for
        # `noisy`, the default 15% still catches `tight`.
        _write_run(new, "noisy.json", {"bm": 1.25e6})
        _write_run(new, "tight.json", {"bm": 1.25e6})
        budgets = {"benches": {"noisy": {"threshold": 0.40}}}
        compared, regressions, _ = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time",
            min_time_ns=1e5, budgets=budgets)
        assert compared == 2
        assert [r[0] for r in regressions] == ["tight: bm"]
        assert regressions[0][4] == 0.15  # the threshold that fired


def test_budget_row_level_beats_file_level() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        _write_run(base / "run-0000", "b.json", {"loose": 1e6, "tight": 1e6})
        baseline = bench_diff.collect_baseline(base, history=3,
                                               metric="cpu_time")
        new = pathlib.Path(tmp) / "new"
        _write_run(new, "b.json", {"loose": 1.3e6, "tight": 1.3e6})
        budgets = {"benches": {"b": {"threshold": 0.50},
                               "b::tight": {"threshold": 0.10}}}
        _, regressions, _ = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time",
            min_time_ns=1e5, budgets=budgets)
        assert [r[0] for r in regressions] == ["b: tight"]
        assert regressions[0][4] == 0.10


def test_budget_min_time_unskips_fast_bench() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        # 1 µs baseline: below the caller-supplied 0.1 ms floor, so
        # without a budget this row is invisible to the gate.
        _write_run(base / "run-0000", "micro.json", {"bm": 1e3})
        baseline = bench_diff.collect_baseline(base, history=3,
                                               metric="cpu_time")
        new = pathlib.Path(tmp) / "new"
        _write_run(new, "micro.json", {"bm": 3e3})
        compared, regressions, _ = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time",
            min_time_ns=1e5)
        assert (compared, regressions) == (0, [])
        budgets = {"benches": {"micro": {"threshold": 0.50,
                                         "min_time_ns": 0.0}}}
        compared, regressions, _ = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time",
            min_time_ns=1e5, budgets=budgets)
        assert compared == 1
        assert [r[0] for r in regressions] == ["micro: bm"]


def test_budget_default_section_replaces_cli_defaults() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        _write_run(base / "run-0000", "b.json", {"bm": 1e6})
        baseline = bench_diff.collect_baseline(base, history=3,
                                               metric="cpu_time")
        new = pathlib.Path(tmp) / "new"
        _write_run(new, "b.json", {"bm": 1.2e6})  # +20%
        budgets = {"default": {"threshold": 0.25}}
        _, regressions, _ = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time",
            min_time_ns=1e5, budgets=budgets)
        assert regressions == []


def test_budgets_file_validation() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "budgets.json"
        path.write_text(json.dumps(
            {"default": {"threshold": 0.15},
             "benches": {"b": {"min_time_ns": 0.0}}}))
        budgets = bench_diff.load_budgets(path)
        assert budgets["default"]["threshold"] == 0.15

        for bad in [
            {"benches": {"b": {"treshold": 0.2}}},   # typo'd field
            {"unknown_top": {}},                     # unknown section
            {"benches": {"b": {"threshold": -1.0}}}, # negative value
            {"benches": {"b": 0.2}},                 # entry not an object
        ]:
            path.write_text(json.dumps(bad))
            try:
                bench_diff.load_budgets(path)
            except ValueError:
                pass
            else:
                raise AssertionError(f"{bad} should have been rejected")


def test_unmatched_budget_key_warns() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        _write_run(base / "run-0000", "b.json", {"bm": 1e6})
        baseline = bench_diff.collect_baseline(base, history=3,
                                               metric="cpu_time")
        new = pathlib.Path(tmp) / "new"
        _write_run(new, "b.json", {"bm": 1e6})
        budgets = {"benches": {"b": {"threshold": 0.2},       # matches file
                               "b::bm": {"threshold": 0.2},   # matches row
                               "b::renamed_bm": {"threshold": 0.2},  # stale
                               "bench_guassian": {"threshold": 0.2}}}  # typo
        with contextlib.redirect_stdout(io.StringIO()) as out:
            bench_diff.compare(baseline, new, threshold=0.15,
                               metric="cpu_time", min_time_ns=1e5,
                               budgets=budgets)
        text = out.getvalue()
        assert "::warning::budgets entry 'b::renamed_bm'" in text
        assert "::warning::budgets entry 'bench_guassian'" in text
        assert "'b'" not in text.replace("'b::renamed_bm'", "")
        assert "'b::bm'" not in text


def test_min_time_ns_flag_is_retired() -> None:
    # The wholesale --min-time-ns flag is gone: min-time floors live in
    # the budgets file now. argparse must reject the old spelling so a
    # stale CI invocation fails loudly instead of being ignored.
    with tempfile.TemporaryDirectory() as tmp:
        argv_backup = sys.argv
        sys.argv = ["bench_diff.py", tmp, tmp, "--min-time-ns", "1e5"]
        try:
            with contextlib.redirect_stderr(io.StringIO()):
                try:
                    bench_diff.main()
                except SystemExit as err:
                    assert err.code == 2  # argparse usage error
                else:
                    raise AssertionError("--min-time-ns should be rejected")
        finally:
            sys.argv = argv_backup


def test_default_floor_compares_everything() -> None:
    # Without budgets or an explicit floor, even ns-scale rows are
    # compared (the old implicit 0.1 ms skip is gone).
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        _write_run(base / "run-0000", "micro.json", {"bm": 1e3})
        baseline = bench_diff.collect_baseline(base, history=3,
                                               metric="cpu_time")
        new = pathlib.Path(tmp) / "new"
        _write_run(new, "micro.json", {"bm": 3e3})
        compared, regressions, _ = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time")
        assert compared == 1
        assert [r[0] for r in regressions] == ["micro: bm"]


def test_repo_budgets_cover_every_bench() -> None:
    # Retiring --min-time-ns is only safe if EVERY bench binary has its
    # own budgets entry carrying the noise floor; a new bench_*.cpp
    # without one fails here (carry-over from the PR 5 roadmap).
    root = pathlib.Path(__file__).resolve().parent.parent.parent
    stems = sorted(p.stem for p in (root / "bench").glob("bench_*.cpp"))
    assert stems, "bench sources not found — did the layout move?"
    budgets = bench_diff.load_budgets(
        root / ".github" / "bench_budgets.json")
    missing = [s for s in stems if s not in budgets["benches"]]
    assert not missing, f"benches without a budgets entry: {missing}"
    for stem, entry in budgets["benches"].items():
        if "::" not in stem:
            assert "min_time_ns" in entry, f"{stem}: no min_time_ns floor"


def test_repo_budgets_file_parses() -> None:
    # The budgets file the bench-smoke job actually passes must stay
    # loadable, or the gate dies at argument-parsing time. It must NOT
    # grow a "default" section: that would silently shadow the CLI
    # --threshold (CI's BENCH_REGRESSION_THRESHOLD) for every bench.
    repo_budgets = (pathlib.Path(__file__).resolve().parent.parent
                    / "bench_budgets.json")
    budgets = bench_diff.load_budgets(repo_budgets)
    assert "default" not in budgets
    assert budgets["benches"]["bench_gaussian"]["threshold"] > 0


def test_informational_rows_are_skipped() -> None:
    # Rows tagged ":informational" (e.g. thread-scaling rows registered
    # on a single-CPU runner) are measured and archived but never
    # compared — a 3x "regression" there is scheduling noise, not perf.
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        _write_run(base / "run-0000", "b.json",
                   {"bm_scaling:informational/8": 1e6, "bm_real": 1e6})
        baseline = bench_diff.collect_baseline(base, history=3,
                                               metric="cpu_time")
        new = pathlib.Path(tmp) / "new"
        _write_run(new, "b.json",
                   {"bm_scaling:informational/8": 3e6, "bm_real": 3e6})
        compared, regressions, _ = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time",
            min_time_ns=1e5)
        assert compared == 1
        assert [r[0] for r in regressions] == ["b: bm_real"]


def test_regression_detected_and_improvement_counted() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "baseline"
        _write_run(base / "run-0000", "b.json",
                   {"slow": 1e6, "fast": 1e6, "tiny": 1e3})
        baseline = bench_diff.collect_baseline(base, history=3,
                                              metric="cpu_time")
        new = pathlib.Path(tmp) / "new"
        # slow regresses 50%, fast improves 50%, tiny is below the
        # min-time floor and must be skipped even though it "doubled".
        _write_run(new, "b.json", {"slow": 1.5e6, "fast": 0.5e6, "tiny": 2e3})
        compared, regressions, improvements = bench_diff.compare(
            baseline, new, threshold=0.15, metric="cpu_time",
            min_time_ns=1e5)
        assert compared == 2
        assert len(regressions) == 1
        assert regressions[0][0] == "b: slow"
        assert regressions[0][3] == 1.5
        assert improvements == 1


def test_time_unit_scaling_and_aggregate_rows() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        run = pathlib.Path(tmp) / "run"
        _write_run(run, "b.json", {"bm_ms": 2.0}, unit="ms")
        _write_run(run / "agg", "b.json", {"bm_agg": 1.0},
                   run_type="aggregate")
        results = bench_diff.load_results(run / "b.json", "cpu_time")
        assert results["bm_ms"] == 2e6  # 2 ms in ns
        agg = bench_diff.load_results(run / "agg" / "b.json", "cpu_time")
        assert agg == {}  # aggregate rows are skipped


def test_unreadable_json_is_skipped() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        bad = pathlib.Path(tmp) / "b.json"
        bad.write_text("{not json")
        # Swallow the ::warning:: line so the CI step that runs this
        # self-test does not grow a spurious workflow annotation.
        with contextlib.redirect_stdout(io.StringIO()) as out:
            results = bench_diff.load_results(bad, "cpu_time")
        assert results == {}
        assert "::warning::" in out.getvalue()


def main() -> int:
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as err:
                failures += 1
                print(f"FAIL {name}: {err}")
    print(f"{failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
