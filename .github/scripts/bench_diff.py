#!/usr/bin/env python3
"""Diff two directories of Google-Benchmark JSON results and fail on
regressions.

Usage:
    bench_diff.py BASELINE_DIR NEW_DIR [--threshold 0.15]
                  [--metric cpu_time] [--min-time-ns 100000]
                  [--mode fail|warn]

Each directory holds one ``<bench_name>.json`` per bench binary (the
bench-smoke layout). Benchmarks are matched by (file, benchmark name);
entries present on only one side, aggregate rows, and entries faster
than --min-time-ns in the baseline (too noisy at smoke durations) are
skipped. A regression is ``new > old * (1 + threshold)``. Exit status is
1 in fail mode when any regression exceeds the threshold, else 0.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_results(path: pathlib.Path) -> dict[str, float]:
    """Maps benchmark name -> per-iteration time [ns] for one JSON file."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"::warning::skipping unreadable {path}: {err}")
        return {}
    out: dict[str, float] = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev repetitions).
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        value = entry.get(METRIC)
        if name is None or value is None:
            continue
        unit = entry.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            continue
        out[name] = float(value) * scale
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("new", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that fails (default 0.15)")
    parser.add_argument("--metric", default="cpu_time",
                        choices=["cpu_time", "real_time"],
                        help="which benchmark field to compare")
    parser.add_argument("--min-time-ns", type=float, default=1e5,
                        help="ignore baseline entries faster than this "
                             "(smoke timings below ~0.1 ms are noise)")
    parser.add_argument("--mode", default="fail", choices=["fail", "warn"],
                        help="fail: nonzero exit on regression; warn: "
                             "report only")
    args = parser.parse_args()

    global METRIC
    METRIC = args.metric

    if not args.baseline.is_dir():
        print(f"no baseline directory at {args.baseline}; nothing to diff")
        return 0

    compared = 0
    regressions: list[tuple[str, float, float, float]] = []
    improvements = 0
    for new_file in sorted(args.new.glob("*.json")):
        base_file = args.baseline / new_file.name
        if not base_file.exists():
            print(f"::notice::{new_file.name}: new bench, no baseline yet")
            continue
        base = load_results(base_file)
        new = load_results(new_file)
        for name, new_ns in sorted(new.items()):
            old_ns = base.get(name)
            if old_ns is None or old_ns < args.min_time_ns:
                continue
            compared += 1
            ratio = new_ns / old_ns if old_ns > 0 else float("inf")
            if ratio > 1.0 + args.threshold:
                regressions.append(
                    (f"{new_file.stem}: {name}", old_ns, new_ns, ratio))
            elif ratio < 1.0 - args.threshold:
                improvements += 1

    print(f"compared {compared} benchmarks "
          f"(threshold {args.threshold:.0%}, metric {args.metric}); "
          f"{len(regressions)} regressions, {improvements} improvements")
    for name, old_ns, new_ns, ratio in sorted(
            regressions, key=lambda r: -r[3]):
        print(f"::error::perf regression {name}: "
              f"{old_ns / 1e6:.3f} ms -> {new_ns / 1e6:.3f} ms "
              f"({(ratio - 1.0):+.1%})")

    if regressions and args.mode == "fail":
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
