#!/usr/bin/env python3
"""Diff Google-Benchmark JSON results against cached baselines and fail
on regressions.

Usage:
    bench_diff.py BASELINE_DIR NEW_DIR [--threshold 0.15]
                  [--metric cpu_time] [--min-time-ns 100000]
                  [--mode fail|warn] [--history 3]

``NEW_DIR`` holds one ``<bench_name>.json`` per bench binary (the
bench-smoke layout). ``BASELINE_DIR`` holds either:

* ``run-*/`` subdirectories, each a past run in the same per-file
  layout — the baseline per benchmark is the **rolling median over the
  last ``--history`` runs** (sorted by directory name), which cuts
  runner noise that a single-run baseline amplifies; or
* flat ``*.json`` files (the legacy single-run layout), used as-is.

Benchmarks are matched by (file, benchmark name); entries present on
only one side, aggregate rows, and entries whose baseline is faster
than --min-time-ns (too noisy at smoke durations) are skipped. A
regression is ``new > baseline * (1 + threshold)``. Exit status is 1 in
fail mode when any regression exceeds the threshold, else 0.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

#: time_unit scale factors to nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_results(path: pathlib.Path, metric: str) -> dict[str, float]:
    """Maps benchmark name -> per-iteration time [ns] for one JSON file."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"::warning::skipping unreadable {path}: {err}")
        return {}
    out: dict[str, float] = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev repetitions).
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        value = entry.get(metric)
        if name is None or value is None:
            continue
        scale = _UNIT_NS.get(entry.get("time_unit", "ns"))
        if scale is None:
            continue
        out[name] = float(value) * scale
    return out


def baseline_runs(baseline_dir: pathlib.Path,
                  history: int) -> list[pathlib.Path]:
    """The run directories contributing to the rolling baseline, oldest
    first: the last `history` ``run-*`` subdirectories, or the directory
    itself for the legacy flat layout."""
    runs = sorted(p for p in baseline_dir.iterdir()
                  if p.is_dir() and p.name.startswith("run-"))
    if not runs:
        return [baseline_dir]
    return runs[-history:]


def collect_baseline(baseline_dir: pathlib.Path, history: int,
                     metric: str) -> dict[str, dict[str, float]]:
    """Maps file name -> benchmark name -> median baseline time [ns]
    over the contributing runs. A benchmark missing from some runs is
    medianed over the runs that have it."""
    merged: dict[str, dict[str, list[float]]] = {}
    for run in baseline_runs(baseline_dir, history):
        for json_file in sorted(run.glob("*.json")):
            per_file = merged.setdefault(json_file.name, {})
            for name, value in load_results(json_file, metric).items():
                per_file.setdefault(name, []).append(value)
    return {fname: {name: statistics.median(values)
                    for name, values in benches.items()}
            for fname, benches in merged.items()}


def compare(baseline: dict[str, dict[str, float]], new_dir: pathlib.Path,
            threshold: float, metric: str, min_time_ns: float
            ) -> tuple[int, list[tuple[str, float, float, float]], int]:
    """Returns (compared, regressions, improvements); each regression is
    (label, baseline_ns, new_ns, ratio)."""
    compared = 0
    regressions: list[tuple[str, float, float, float]] = []
    improvements = 0
    for new_file in sorted(new_dir.glob("*.json")):
        base = baseline.get(new_file.name)
        if base is None:
            print(f"::notice::{new_file.name}: new bench, no baseline yet")
            continue
        new = load_results(new_file, metric)
        for name, new_ns in sorted(new.items()):
            old_ns = base.get(name)
            if old_ns is None or old_ns < min_time_ns:
                continue
            compared += 1
            ratio = new_ns / old_ns if old_ns > 0 else float("inf")
            if ratio > 1.0 + threshold:
                regressions.append(
                    (f"{new_file.stem}: {name}", old_ns, new_ns, ratio))
            elif ratio < 1.0 - threshold:
                improvements += 1
    return compared, regressions, improvements


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("new", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that fails (default 0.15)")
    parser.add_argument("--metric", default="cpu_time",
                        choices=["cpu_time", "real_time"],
                        help="which benchmark field to compare")
    parser.add_argument("--min-time-ns", type=float, default=1e5,
                        help="ignore baseline entries faster than this "
                             "(smoke timings below ~0.1 ms are noise)")
    parser.add_argument("--mode", default="fail", choices=["fail", "warn"],
                        help="fail: nonzero exit on regression; warn: "
                             "report only")
    parser.add_argument("--history", type=int, default=3,
                        help="how many past runs the rolling-median "
                             "baseline uses (default 3)")
    args = parser.parse_args()

    if args.history < 1:
        parser.error("--history must be >= 1")
    if not args.baseline.is_dir():
        print(f"no baseline directory at {args.baseline}; nothing to diff")
        return 0

    baseline = collect_baseline(args.baseline, args.history, args.metric)
    compared, regressions, improvements = compare(
        baseline, args.new, args.threshold, args.metric, args.min_time_ns)

    print(f"compared {compared} benchmarks "
          f"(threshold {args.threshold:.0%}, metric {args.metric}, "
          f"median over <= {args.history} runs); "
          f"{len(regressions)} regressions, {improvements} improvements")
    for name, old_ns, new_ns, ratio in sorted(
            regressions, key=lambda r: -r[3]):
        print(f"::error::perf regression {name}: "
              f"{old_ns / 1e6:.3f} ms -> {new_ns / 1e6:.3f} ms "
              f"({(ratio - 1.0):+.1%})")

    if regressions and args.mode == "fail":
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
