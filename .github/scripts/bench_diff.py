#!/usr/bin/env python3
"""Diff Google-Benchmark JSON results against cached baselines and fail
on regressions.

Usage:
    bench_diff.py BASELINE_DIR NEW_DIR [--threshold 0.15]
                  [--metric cpu_time] [--mode fail|warn] [--history 3]
                  [--budgets bench_budgets.json]

``NEW_DIR`` holds one ``<bench_name>.json`` per bench binary (the
bench-smoke layout). ``BASELINE_DIR`` holds either:

* ``run-*/`` subdirectories, each a past run in the same per-file
  layout — the baseline per benchmark is the **rolling median over the
  last ``--history`` runs** (sorted by directory name), which cuts
  runner noise that a single-run baseline amplifies; or
* flat ``*.json`` files (the legacy single-run layout), used as-is.

Benchmarks are matched by (file, benchmark name); entries present on
only one side and aggregate rows are skipped. Rows whose name contains
``:informational`` are also skipped: bench binaries use that suffix for
measurements that are real but not comparable on this runner (e.g.
thread-scaling rows registered on a single-CPU host, where widths 2/4/8
measure oversubscription noise rather than scaling). A regression is
``new > baseline * (1 + threshold)``. Exit status is 1 in fail mode
when any regression exceeds its threshold, else 0.

Per-bench budgets (``--budgets``) carry targeted limits; a
``min_time_ns`` floor (baseline entries faster than it are skipped as
smoke noise) now comes ONLY from the budgets file — the old wholesale
``--min-time-ns`` flag is retired, every µs-scale bench has its own
entry. The JSON looks like::

    {
      "default": {"threshold": 0.15, "min_time_ns": 1e5},
      "benches": {
        "bench_fft": {"threshold": 0.25, "min_time_ns": 2e4},
        "bench_fft::bm_fft_pow2/4096": {"threshold": 0.40}
      }
    }

Keys under ``benches`` are the bench file stem (``<name>`` of
``<name>.json``) or ``<stem>::<benchmark name>`` for one row. The most
specific entry wins per field: row > file > budgets ``default`` > CLI
flags. A budget with a lower ``min_time_ns`` therefore *un-skips* a
fast bench (it gets compared with its own, usually looser, threshold
instead of being ignored), and a noisy bench gets a wider band without
loosening the gate for everything else. Note a ``default`` section
shadows the CLI flags for EVERY bench — leave it out (as the repo's
budgets file does) when the CLI flags (e.g. CI's
``BENCH_REGRESSION_THRESHOLD``) should stay the live fallback. Budget
keys that match no benchmark emit a ``::warning::`` so typos and stale
names after a rename do not silently revert a bench to the defaults.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

#: time_unit scale factors to nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_results(path: pathlib.Path, metric: str) -> dict[str, float]:
    """Maps benchmark name -> per-iteration time [ns] for one JSON file."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"::warning::skipping unreadable {path}: {err}")
        return {}
    out: dict[str, float] = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev repetitions).
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        value = entry.get(metric)
        if name is None or value is None:
            continue
        scale = _UNIT_NS.get(entry.get("time_unit", "ns"))
        if scale is None:
            continue
        out[name] = float(value) * scale
    return out


def baseline_runs(baseline_dir: pathlib.Path,
                  history: int) -> list[pathlib.Path]:
    """The run directories contributing to the rolling baseline, oldest
    first: the last `history` ``run-*`` subdirectories, or the directory
    itself for the legacy flat layout."""
    runs = sorted(p for p in baseline_dir.iterdir()
                  if p.is_dir() and p.name.startswith("run-"))
    if not runs:
        return [baseline_dir]
    return runs[-history:]


def collect_baseline(baseline_dir: pathlib.Path, history: int,
                     metric: str) -> dict[str, dict[str, float]]:
    """Maps file name -> benchmark name -> median baseline time [ns]
    over the contributing runs. A benchmark missing from some runs is
    medianed over the runs that have it."""
    merged: dict[str, dict[str, list[float]]] = {}
    for run in baseline_runs(baseline_dir, history):
        for json_file in sorted(run.glob("*.json")):
            per_file = merged.setdefault(json_file.name, {})
            for name, value in load_results(json_file, metric).items():
                per_file.setdefault(name, []).append(value)
    return {fname: {name: statistics.median(values)
                    for name, values in benches.items()}
            for fname, benches in merged.items()}


#: budget entry fields and their validators.
_BUDGET_FIELDS = {"threshold": float, "min_time_ns": float}


def load_budgets(path: pathlib.Path) -> dict:
    """Parses and validates a budgets file (see module docstring).
    Raises ValueError on malformed structure so a typo fails the gate
    loudly instead of silently reverting to defaults."""
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict):
        raise ValueError("budgets root must be an object")
    unknown = set(doc) - {"default", "benches"}
    if unknown:
        raise ValueError(f"unknown top-level budget keys: {sorted(unknown)}")
    entries = [("default", doc.get("default", {}))]
    benches = doc.get("benches", {})
    if not isinstance(benches, dict):
        raise ValueError("budgets 'benches' must be an object")
    entries += list(benches.items())
    for label, entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"budget entry {label!r} must be an object")
        for key, value in entry.items():
            if key not in _BUDGET_FIELDS:
                raise ValueError(f"budget {label!r}: unknown field {key!r}")
            if (not isinstance(value, (int, float))
                    or isinstance(value, bool) or value < 0):
                raise ValueError(
                    f"budget {label!r}: {key} must be a number >= 0")
    return doc


def budget_for(budgets: dict | None, stem: str, name: str,
               cli_threshold: float, cli_min_time_ns: float = 0.0
               ) -> tuple[float, float]:
    """(threshold, min_time_ns) for one benchmark row. Per field, the
    most specific source wins: row > file > budgets default > CLI
    (min_time_ns has no CLI flag anymore; its fallback is 0 = compare
    everything)."""
    threshold, min_time_ns = cli_threshold, cli_min_time_ns
    if budgets is None:
        return threshold, min_time_ns
    layers = [budgets.get("default", {})]
    benches = budgets.get("benches", {})
    layers.append(benches.get(stem, {}))
    layers.append(benches.get(f"{stem}::{name}", {}))
    for layer in layers:
        threshold = layer.get("threshold", threshold)
        min_time_ns = layer.get("min_time_ns", min_time_ns)
    return threshold, min_time_ns


def compare(baseline: dict[str, dict[str, float]], new_dir: pathlib.Path,
            threshold: float, metric: str, min_time_ns: float = 0.0,
            budgets: dict | None = None
            ) -> tuple[int, list[tuple[str, float, float, float, float]],
                       int]:
    """Returns (compared, regressions, improvements); each regression is
    (label, baseline_ns, new_ns, ratio, threshold_used)."""
    compared = 0
    regressions: list[tuple[str, float, float, float, float]] = []
    improvements = 0
    seen_keys: set[str] = set()
    for new_file in sorted(new_dir.glob("*.json")):
        new = load_results(new_file, metric)
        seen_keys.add(new_file.stem)
        seen_keys.update(f"{new_file.stem}::{name}" for name in new)
        base = baseline.get(new_file.name)
        if base is None:
            print(f"::notice::{new_file.name}: new bench, no baseline yet")
            continue
        for name, new_ns in sorted(new.items()):
            if ":informational" in name:
                continue
            old_ns = base.get(name)
            if old_ns is None:
                continue
            row_threshold, row_min_time = budget_for(
                budgets, new_file.stem, name, threshold, min_time_ns)
            if old_ns < row_min_time:
                continue
            compared += 1
            ratio = new_ns / old_ns if old_ns > 0 else float("inf")
            if ratio > 1.0 + row_threshold:
                regressions.append((f"{new_file.stem}: {name}", old_ns,
                                    new_ns, ratio, row_threshold))
            elif ratio < 1.0 - row_threshold:
                improvements += 1
    # A budget key that matches no bench file or row is almost always a
    # typo or a stale name after a rename — the bench it meant to cover
    # silently runs at the defaults, so say so.
    for key in sorted((budgets or {}).get("benches", {})):
        if key not in seen_keys:
            print(f"::warning::budgets entry {key!r} matched no benchmark")
    return compared, regressions, improvements


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("new", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that fails (default 0.15)")
    parser.add_argument("--metric", default="cpu_time",
                        choices=["cpu_time", "real_time"],
                        help="which benchmark field to compare")
    parser.add_argument("--mode", default="fail", choices=["fail", "warn"],
                        help="fail: nonzero exit on regression; warn: "
                             "report only")
    parser.add_argument("--history", type=int, default=3,
                        help="how many past runs the rolling-median "
                             "baseline uses (default 3)")
    parser.add_argument("--budgets", type=pathlib.Path, default=None,
                        help="per-bench budget JSON (see module docstring); "
                             "overrides --threshold/--min-time-ns per bench")
    args = parser.parse_args()

    if args.history < 1:
        parser.error("--history must be >= 1")
    budgets = None
    if args.budgets is not None:
        try:
            budgets = load_budgets(args.budgets)
        except (OSError, json.JSONDecodeError, ValueError) as err:
            parser.error(f"bad budgets file {args.budgets}: {err}")
    if not args.baseline.is_dir():
        print(f"no baseline directory at {args.baseline}; nothing to diff")
        return 0

    baseline = collect_baseline(args.baseline, args.history, args.metric)
    compared, regressions, improvements = compare(
        baseline, args.new, args.threshold, args.metric, budgets=budgets)

    budget_note = f", budgets {args.budgets}" if budgets else ""
    print(f"compared {compared} benchmarks "
          f"(default threshold {args.threshold:.0%}, metric {args.metric}, "
          f"median over <= {args.history} runs{budget_note}); "
          f"{len(regressions)} regressions, {improvements} improvements")
    for name, old_ns, new_ns, ratio, row_threshold in sorted(
            regressions, key=lambda r: -r[3]):
        print(f"::error::perf regression {name}: "
              f"{old_ns / 1e6:.3f} ms -> {new_ns / 1e6:.3f} ms "
              f"({(ratio - 1.0):+.1%}, budget {row_threshold:.0%})")

    if regressions and args.mode == "fail":
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
