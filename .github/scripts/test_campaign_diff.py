#!/usr/bin/env python3
"""Self-test for campaign_diff.py (corner matching, rate-regression
detection, verdict flips, baseline resolution).

Runs under pytest (``pytest test_campaign_diff.py``) or standalone
(``python3 test_campaign_diff.py``) — CI uses the standalone form so
the campaign jobs need no extra dependencies.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import campaign_diff  # noqa: E402


def _corner(name: str, attack: str, ais31: float, alarm: float,
            verdict: str) -> dict:
    return {"name": name, "attack": attack, "shards": 8,
            "ais31_pass_rate": ais31, "alarm_rate": alarm,
            "verdict": verdict}


def _report(corners: list[dict], digest: str = "d" * 64,
            complete: bool = True) -> dict:
    return {"format": "ptrng-fleet-campaign-report", "version": 1,
            "config_digest": digest, "shards_folded": 8 * len(corners),
            "shards_total": 8 * len(corners), "complete": complete,
            "corners": corners}


def _healthy(ais31: float = 1.0, alarm: float = 0.0) -> dict:
    return _corner("ero/180nm/tt/f0/none", "none", ais31, alarm,
                   "pass" if ais31 >= 0.75 and alarm <= 0.25 else "degraded")


def _attacked(alarm: float = 1.0) -> dict:
    return _corner("ero/180nm/tt/f0/lock", "lock", 0.0, alarm,
                   "detected" if alarm >= 0.5 else "missed")


def test_identical_reports_have_no_regressions() -> None:
    base = _report([_healthy(), _attacked()])
    compared, regressions, improvements, _ = campaign_diff.compare(
        base, base, tolerance=0.05)
    assert (compared, regressions, improvements) == (2, [], 0)


def test_pass_rate_drop_beyond_tolerance_regresses() -> None:
    base = _report([_healthy(ais31=1.0)])
    new = _report([_healthy(ais31=0.80)])
    _, regressions, _, _ = campaign_diff.compare(base, new, tolerance=0.05)
    assert len(regressions) == 1
    assert "AIS-31 pass rate fell 1.00 -> 0.80" in regressions[0]
    # The same drop inside a looser tolerance passes.
    _, regressions, _, _ = campaign_diff.compare(base, new, tolerance=0.25)
    assert regressions == []


def test_detection_rate_drop_on_attacked_corner_regresses() -> None:
    base = _report([_attacked(alarm=1.0)])
    new = _report([_attacked(alarm=0.25)])
    _, regressions, _, _ = campaign_diff.compare(base, new, tolerance=0.05)
    # Rate drop AND the detected -> missed verdict flip both fire.
    assert any("detection rate fell" in r for r in regressions)
    assert any("detected -> missed" in r for r in regressions)


def test_false_alarm_rise_on_healthy_corner_regresses() -> None:
    base = _report([_healthy(alarm=0.0)])
    new = _report([_healthy(alarm=0.20)])
    _, regressions, _, _ = campaign_diff.compare(base, new, tolerance=0.05)
    assert len(regressions) == 1
    assert "false-alarm rate rose" in regressions[0]


def test_verdict_flip_pass_to_degraded_regresses() -> None:
    # ais31 drops only 0.04 (inside tolerance) but alarm_rate crosses the
    # verdict boundary: the flip itself must be caught.
    base = _report([_healthy(ais31=0.78, alarm=0.25)])
    new = _report([_corner("ero/180nm/tt/f0/none", "none", 0.76, 0.26,
                           "degraded")])
    _, regressions, _, _ = campaign_diff.compare(base, new, tolerance=0.05)
    assert regressions == ["ero/180nm/tt/f0/none: verdict pass -> degraded"]


def test_improvements_are_counted_not_flagged() -> None:
    base = _report([_healthy(ais31=0.80), _attacked(alarm=0.6)])
    new = _report([_healthy(ais31=1.0), _attacked(alarm=1.0)])
    compared, regressions, improvements, _ = campaign_diff.compare(
        base, new, tolerance=0.05)
    assert (compared, regressions, improvements) == (2, [], 2)


def test_grid_changes_are_notices_not_failures() -> None:
    base = _report([_healthy(), _attacked()], digest="a" * 64)
    new = _report([_healthy(),
                   _corner("multi_ring/90nm/tt/f1/none", "none", 1.0, 0.0,
                           "pass")], digest="b" * 64)
    compared, regressions, _, notices = campaign_diff.compare(
        base, new, tolerance=0.05)
    assert compared == 1  # only the shared corner
    assert regressions == []
    assert any("config digest changed" in n for n in notices)
    assert any("dropped from the grid" in n for n in notices)
    assert any("no baseline" in n for n in notices)


def test_pending_corners_are_skipped() -> None:
    pending = _corner("ero/180nm/tt/f0/none", "none", 0.0, 0.0, "pending")
    base = _report([_healthy()])
    new = _report([pending])
    compared, regressions, _, notices = campaign_diff.compare(
        base, new, tolerance=0.05)
    assert (compared, regressions) == (0, [])
    assert any("pending" in n for n in notices)


def test_baseline_resolution_prefers_newest_run() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cache = pathlib.Path(tmp) / "cache"
        for idx, digest in enumerate(["0" * 64, "1" * 64]):
            run = cache / f"run-{idx:04d}"
            run.mkdir(parents=True)
            (run / "report.json").write_text(
                json.dumps(_report([_healthy()], digest=digest)))
        resolved = campaign_diff.resolve_baseline(cache)
        assert resolved is not None
        doc = campaign_diff.load_report(resolved)
        assert doc["config_digest"] == "1" * 64  # newest run wins
        # A report file resolves to itself; a missing path to None.
        assert campaign_diff.resolve_baseline(
            cache / "run-0000" / "report.json").name == "report.json"
        assert campaign_diff.resolve_baseline(cache / "absent") is None


def test_empty_run_directories_are_skipped() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cache = pathlib.Path(tmp) / "cache"
        good = cache / "run-0000"
        good.mkdir(parents=True)
        (good / "report.json").write_text(json.dumps(_report([_healthy()])))
        (cache / "run-0001").mkdir()  # newest run saved nothing
        resolved = campaign_diff.resolve_baseline(cache)
        assert resolved is not None and resolved.parent.name == "run-0000"


def test_non_report_json_is_rejected() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "b.json"
        for text in ["{not json", json.dumps({"format": "other"}),
                     json.dumps({"format": campaign_diff._FORMAT,
                                 "version": 99})]:
            path.write_text(text)
            with contextlib.redirect_stdout(io.StringIO()) as out:
                assert campaign_diff.load_report(path) is None
            assert "::warning::" in out.getvalue()


def test_main_exit_codes_and_warn_mode() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "base.json").write_text(
            json.dumps(_report([_attacked(alarm=1.0)])))
        (root / "new.json").write_text(
            json.dumps(_report([_attacked(alarm=0.0)])))
        argv_backup = sys.argv
        try:
            sys.argv = ["campaign_diff.py", str(root / "base.json"),
                        str(root / "new.json")]
            with contextlib.redirect_stdout(io.StringIO()) as out:
                assert campaign_diff.main() == 1
            assert "::error::campaign regression" in out.getvalue()
            sys.argv += ["--mode", "warn"]
            with contextlib.redirect_stdout(io.StringIO()):
                assert campaign_diff.main() == 0
            # No baseline at all: clean exit, nothing to diff.
            sys.argv = ["campaign_diff.py", str(root / "absent"),
                        str(root / "new.json")]
            with contextlib.redirect_stdout(io.StringIO()):
                assert campaign_diff.main() == 0
        finally:
            sys.argv = argv_backup


def test_partial_new_report_warns() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "base.json").write_text(json.dumps(_report([_healthy()])))
        (root / "new.json").write_text(
            json.dumps(_report([_healthy()], complete=False)))
        argv_backup = sys.argv
        try:
            sys.argv = ["campaign_diff.py", str(root / "base.json"),
                        str(root / "new.json")]
            with contextlib.redirect_stdout(io.StringIO()) as out:
                assert campaign_diff.main() == 0
            assert "partial report" in out.getvalue()
        finally:
            sys.argv = argv_backup


def main() -> int:
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as err:
                failures += 1
                print(f"FAIL {name}: {err}")
    print(f"{failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
