#!/usr/bin/env python3
"""Diff two fleet-campaign JSON reports and fail on quality regressions.

Usage:
    campaign_diff.py BASELINE NEW [--tolerance 0.05] [--mode fail|warn]

``NEW`` is a ``ptrng-fleet-campaign-report`` JSON file (the
``--report-json`` output of ``example_fleet_campaign``). ``BASELINE``
is either another report file or a directory of past nightlies in the
bench-smoke cache layout (``run-*/`` subdirectories, each holding one
``*.json``) — the newest run is the baseline. The campaign is fully
deterministic for a fixed config, so the previous nightly is an exact
reference: any rate movement is a code-behaviour change, not sampling
noise. The tolerance exists for deliberate small recalibrations, not
for noise.

Corners are matched by name (``generator/node/corner/fN/attack``);
corners present on only one side — a grid change — are reported as
notices, never failures. Per matched corner:

* unattacked (``attack == "none"``): ``ais31_pass_rate`` dropping by
  more than ``--tolerance`` (absolute), ``alarm_rate`` (false alarms)
  rising by more than it, or a ``pass -> degraded`` verdict flip is a
  regression;
* attacked: ``alarm_rate`` (detection rate) dropping by more than the
  tolerance or a ``detected -> missed`` flip is a regression;
* a corner that is ``pending`` (zero shards folded) on either side is
  skipped — partial reports compare only what both runs measured.

Opposite-direction moves beyond the tolerance count as improvements.
Exit status is 1 in fail mode when any regression fired, else 0.
Regressions print ``::error::`` GitHub annotations; grid or config
digest changes print ``::notice::``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_FORMAT = "ptrng-fleet-campaign-report"


def load_report(path: pathlib.Path) -> dict | None:
    """Parses one campaign report; None (with a warning) when the file
    is unreadable or not a campaign report."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"::warning::skipping unreadable {path}: {err}")
        return None
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        print(f"::warning::{path} is not a {_FORMAT} document")
        return None
    if doc.get("version") != 1:
        print(f"::warning::{path}: unsupported report version "
              f"{doc.get('version')!r}")
        return None
    return doc


def resolve_baseline(path: pathlib.Path) -> pathlib.Path | None:
    """The baseline report file: ``path`` itself, or the newest report
    inside the newest ``run-*`` subdirectory of a cache directory."""
    if path.is_file():
        return path
    if not path.is_dir():
        return None
    runs = sorted(p for p in path.iterdir()
                  if p.is_dir() and p.name.startswith("run-"))
    for run in reversed(runs or [path]):
        reports = sorted(run.glob("*.json"))
        if reports:
            return reports[-1]
    return None


def corners_by_name(doc: dict) -> dict[str, dict]:
    return {c["name"]: c for c in doc.get("corners", [])
            if isinstance(c, dict) and "name" in c}


def compare(base: dict, new: dict, tolerance: float
            ) -> tuple[int, list[str], int, list[str]]:
    """Returns (compared, regressions, improvements, notices); each
    regression/notice is a preformatted message line."""
    regressions: list[str] = []
    notices: list[str] = []
    improvements = 0
    compared = 0

    if base.get("config_digest") != new.get("config_digest"):
        notices.append("config digest changed — campaign config or grid "
                       "differs; comparing matching corner names only")

    base_corners = corners_by_name(base)
    new_corners = corners_by_name(new)
    only_base = sorted(set(base_corners) - set(new_corners))
    only_new = sorted(set(new_corners) - set(base_corners))
    if only_base:
        notices.append(f"corners dropped from the grid: {only_base}")
    if only_new:
        notices.append(f"new corners with no baseline: {only_new}")

    def moved(delta: float) -> bool:
        return delta > tolerance

    for name in sorted(set(base_corners) & set(new_corners)):
        b, n = base_corners[name], new_corners[name]
        if b.get("verdict") == "pending" or n.get("verdict") == "pending":
            notices.append(f"{name}: pending on one side (zero shards), "
                           "skipped")
            continue
        compared += 1
        attacked = n.get("attack", "none") != "none"

        if attacked:
            # Detection rate: alarms are the point of an attacked corner.
            delta = b["alarm_rate"] - n["alarm_rate"]
            if moved(delta):
                regressions.append(
                    f"{name}: detection rate fell "
                    f"{b['alarm_rate']:.2f} -> {n['alarm_rate']:.2f}")
            elif moved(-delta):
                improvements += 1
            if b.get("verdict") == "detected" and n.get("verdict") == "missed":
                regressions.append(f"{name}: verdict detected -> missed")
        else:
            delta = b["ais31_pass_rate"] - n["ais31_pass_rate"]
            if moved(delta):
                regressions.append(
                    f"{name}: AIS-31 pass rate fell "
                    f"{b['ais31_pass_rate']:.2f} -> {n['ais31_pass_rate']:.2f}")
            elif moved(-delta):
                improvements += 1
            rise = n["alarm_rate"] - b["alarm_rate"]
            if moved(rise):
                regressions.append(
                    f"{name}: false-alarm rate rose "
                    f"{b['alarm_rate']:.2f} -> {n['alarm_rate']:.2f}")
            if b.get("verdict") == "pass" and n.get("verdict") == "degraded":
                regressions.append(f"{name}: verdict pass -> degraded")

    return compared, regressions, improvements, notices


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("new", type=pathlib.Path)
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="absolute rate drop that fails (default 0.05)")
    parser.add_argument("--mode", default="fail", choices=["fail", "warn"],
                        help="fail: nonzero exit on regression; warn: "
                             "report only")
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    baseline_path = resolve_baseline(args.baseline)
    if baseline_path is None:
        print(f"no baseline report under {args.baseline}; nothing to diff")
        return 0
    base = load_report(baseline_path)
    new = load_report(args.new)
    if new is None:
        print(f"::error::cannot read the new report {args.new}")
        return 1
    if base is None:
        print("baseline unreadable; nothing to diff")
        return 0
    if not new.get("complete", False):
        print(f"::warning::{args.new} is a partial report "
              f"({new.get('shards_folded')}/{new.get('shards_total')} "
              "shards)")

    compared, regressions, improvements, notices = compare(
        base, new, args.tolerance)

    print(f"compared {compared} corners against {baseline_path} "
          f"(tolerance {args.tolerance:.2f}); "
          f"{len(regressions)} regressions, {improvements} improvements")
    for note in notices:
        print(f"::notice::{note}")
    for line in regressions:
        print(f"::error::campaign regression {line}")

    if regressions and args.mode == "fail":
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
