// Attack detection demo, two layers of defense:
//  1. the embedded thermal-noise test the paper proposes in its
//     conclusion, exercised against a frequency-injection attack
//     (Markettos-Moore) that ramps up mid-stream;
//  2. the SP 800-90B §4.4 continuous health engine run live against
//     every attacks::injection scenario, reporting detection latency
//     in BITS — the unit a deployed TRNG actually loses entropy in.
//
// Timeline: 40 healthy decisions -> attacker turns on (coupling 0.7) ->
// the monitor alarms within a few decisions.
//
// Usage: attack_detection [coupling]    (default 0.7)
#include <cstdlib>
#include <iostream>

#include "attacks/injection.hpp"
#include "common/table.hpp"
#include "measurement/counter.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "trng/continuous_health.hpp"
#include "trng/online_test.hpp"

int main(int argc, char** argv) {
  using namespace ptrng;
  using namespace ptrng::oscillator;

  const double coupling = (argc > 1) ? std::atof(argv[1]) : 0.7;
  const std::size_t n_cycles = 20000;
  const std::size_t wpt = 1024;
  std::cout << "embedded thermal-noise monitor vs frequency injection "
               "(coupling " << coupling << ")\n\n";

  // Calibration phase: measure the healthy reference variance.
  auto h1 = paper_single_config(0xdef1);
  auto h2 = paper_single_config(0xdef2);
  h1.mismatch = +1.5e-3;
  h2.mismatch = -1.5e-3;
  RingOscillator cal1(h1), cal2(h2);
  measurement::DifferentialCounter cal_counter(cal1, cal2);
  const double reference = cal_counter.sigma2_n(n_cycles, 8192);
  std::cout << "calibrated reference Var(s_N) at N = " << n_cycles << ": "
            << cell_sci(reference) << " s^2\n\n";

  trng::OnlineTestConfig cfg;
  cfg.n_cycles = n_cycles;
  cfg.windows_per_test = wpt;
  cfg.reference_sigma2 = reference;
  cfg.false_alarm = 1e-4;
  trng::ThermalNoiseMonitor monitor(cfg, paper::f0);

  TableWriter log({"decision", "phase", "Var(s_N) estimate", "band lo",
                   "band hi", "alarm"});

  // Healthy phase.
  RingOscillator run1(h1), run2(h2);
  {
    measurement::DifferentialCounter counter(run1, run2);
    for (const auto q : counter.count_windows(n_cycles, wpt * 8 + 1)) {
      trng::OnlineTestDecision d;
      if (monitor.push_count(q, &d)) {
        log.add_row({cell(monitor.decisions()), "healthy",
                     cell_sci(d.sigma2_estimate), cell_sci(d.lower_bound),
                     cell_sci(d.upper_bound), d.alarm ? "ALARM" : "-"});
      }
    }
  }

  // Attack phase: same physical rings, injection switched on (EM-class
  // locking with frequency pulling).
  const attacks::InjectionAttack atk = attacks::em_harmonic_attack(coupling);
  auto a1 = attacks::make_attacked_oscillator(h1, atk);
  auto a2 = attacks::make_attacked_oscillator(h2, atk);
  std::size_t first_alarm = 0;
  {
    measurement::DifferentialCounter counter(a1, a2);
    const std::size_t start = monitor.decisions();
    for (const auto q : counter.count_windows(n_cycles, wpt * 8 + 1)) {
      trng::OnlineTestDecision d;
      if (monitor.push_count(q, &d)) {
        log.add_row({cell(monitor.decisions()), "ATTACK",
                     cell_sci(d.sigma2_estimate), cell_sci(d.lower_bound),
                     cell_sci(d.upper_bound), d.alarm ? "ALARM" : "-"});
        if (d.alarm && first_alarm == 0)
          first_alarm = monitor.decisions() - start;
      }
    }
  }
  log.print(std::cout);

  if (first_alarm)
    std::cout << "\ndetected after " << first_alarm
              << " decision(s) — each decision is " << wpt << " windows of "
              << n_cycles << " cycles (~"
              << cell(static_cast<double>(wpt) *
                          static_cast<double>(n_cycles) / paper::f0 * 1e3,
                      1)
              << " ms of device time).\n";
  else
    std::cout << "\nno alarm — raise coupling or lower false_alarm.\n";

  // Second layer: the bit-level continuous tests. Each scenario's
  // victim TRNG streams through a fresh HealthEngine until the first
  // §4.4 alarm; latency is exact (alarms fire at exact bit indices).
  std::cout << "\ncontinuous health engine (SP 800-90B 4.4) vs the "
               "injection scenario grid:\n\n";
  TableWriter health_log({"scenario", "divider", "first test to fire",
                          "detection latency [bits]"});
  for (const auto& sc : attacks::injection_scenarios()) {
    auto victim = attacks::make_attacked_trng(sc.attack, sc.divider);
    trng::HealthEngine engine{trng::ContinuousHealthConfig{}};
    const auto lat = trng::measure_detection_latency(victim, engine,
                                                     /*max_bits=*/200'000);
    const char* test = !lat.detected           ? "-"
                       : engine.repetition_alarms() > 0
                           ? "repetition count"
                           : "adaptive proportion";
    health_log.add_row({sc.name, cell(static_cast<std::size_t>(sc.divider)),
                        test,
                        lat.detected ? cell(lat.bits) : "undetected"});
  }
  health_log.print(std::cout);
  return 0;
}
