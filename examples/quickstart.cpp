// Quickstart: the paper's workflow in ~60 lines.
//
//  1. Simulate a pair of 103 MHz ring oscillators with thermal + flicker
//     noise (the entropy source of an elementary RO-TRNG).
//  2. Measure the accumulated jitter variance sigma^2_N over a sweep of N.
//  3. Fit sigma^2_N = (2 b_th/f0^3) N + (8 ln2 b_fl/f0^4) N^2  (Eq. 11).
//  4. Extract the thermal-only jitter and the independence threshold N*.
//  5. Serve full-entropy BYTES from the device: raw bits → SP 800-90B
//     health tap → SHA-256 conditioning → Hash-DRBG → fill_bytes.
//
// Build & run:  ./build/examples/quickstart
#include <cstddef>
#include <iostream>
#include <vector>

#include "common/math_utils.hpp"
#include "common/sha256.hpp"
#include "common/table.hpp"
#include "measurement/calibration.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "trng/continuous_health.hpp"
#include "trng/ero_trng.hpp"
#include "trng/rbg_service.hpp"

int main() {
  using namespace ptrng;
  using namespace ptrng::oscillator;

  std::cout << "ptrng quickstart — multilevel P-TRNG jitter model "
               "(DATE 2014 reproduction)\n\n";

  // 1. The simulated device: two rings calibrated to the paper's fit.
  auto pair = paper_pair(/*seed=*/12345);
  std::cout << "simulating 4M periods of the relative jitter process...\n";
  const auto jitter = pair.relative_jitter(4'000'000);

  // 2. sigma^2_N sweep over a log grid of accumulation lengths.
  const auto grid = log_integer_grid(10, 30'000, 20);
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);

  TableWriter table({"N", "sigma^2_N [s^2]", "f0^2*sigma^2_N", "samples"});
  for (const auto& pt : sweep) {
    table.add_row({cell(pt.n), cell_sci(pt.sigma2),
                   cell_sci(pt.sigma2 * paper::f0 * paper::f0),
                   cell(pt.samples)});
  }
  table.print(std::cout);

  // 3-4. Fit and extract.
  const auto cal = measurement::fit_sigma2_n(sweep, paper::f0);
  std::cout << "\nextraction results (cf. paper Sec. IV-B):\n"
            << "  b_th  = " << cell(cal.b_th, 2)
            << " Hz       (paper: 276.04)\n"
            << "  b_fl  = " << cell_sci(cal.b_fl)
            << " Hz^2 (paper-implied: 1.9156e+06)\n"
            << "  sigma_thermal = " << cell(cal.sigma_thermal * 1e12, 2)
            << " ps  (paper: 15.89)\n"
            << "  sigma/T0      = " << cell(cal.jitter_ratio * 1e3, 2)
            << " permil (paper: 1.6)\n"
            << "  r_N = C/(C+N) with C = " << cell(cal.rn_constant, 0)
            << " (paper: 5354)\n"
            << "  independence threshold N*(95%) = "
            << cell(cal.independence_threshold(0.95), 0)
            << " (paper: 281)\n\n"
            << "conclusion: below N* the jitter realizations may be "
               "treated as mutually independent;\nabove it the flicker "
               "noise makes them dependent and entropy accounting must "
               "use the\nthermal component only.\n";

  // 5. The byte-first output path: the same device behind the RBG
  //    service (conditioning + per-consumer Hash-DRBG, health-gated).
  auto device = trng::paper_trng(/*divider=*/40, /*seed=*/12345);
  trng::HealthEngine health{trng::ContinuousHealthConfig{}};
  trng::RandomByteService service(device, health);
  service.start();
  auto stream = service.open_stream(/*consumer_id=*/1);
  std::vector<std::byte> bytes(32);
  if (stream.fill(bytes) == trng::RandomByteService::FillStatus::kOk) {
    std::cout << "\n32 service bytes (consumer 1, health "
              << (service.state() == trng::ServiceState::kNominal
                      ? "nominal"
                      : "NOT nominal")
              << "): " << to_hex(bytes) << "\n";
  }
  service.stop();
  return 0;
}
