// Entropy audit of an elementary RO-TRNG (the paper's security use case),
// written against the bit-stream pipeline API (trng/bit_stream.hpp).
//
// Generates raw bits from the simulated eRO-TRNG at a configurable
// sampling divider, then reports
//   * analytic entropy under the NAIVE model (total jitter assumed iid),
//   * analytic entropy under the REFINED model (thermal only),
//   * empirical Shannon / Markov / min-entropy,
//   * AIS31 procedure B verdict (T6, T7, T8),
//   * post-processing effect via Pipeline-composed BitTransforms
//     (XOR decimation, von Neumann) with an online-test tap on the raw
//     stream.
//
// Usage: entropy_audit [divider]      (default 2000)
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "stats/descriptive.hpp"
#include "model/legacy_models.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "trng/ais31.hpp"
#include "trng/bit_stream.hpp"
#include "trng/entropy.hpp"
#include "trng/ero_trng.hpp"
#include "trng/postprocess.hpp"

int main(int argc, char** argv) {
  using namespace ptrng;
  using namespace ptrng::oscillator;

  const std::uint32_t divider =
      (argc > 1) ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2000;
  std::cout << "eRO-TRNG entropy audit, sampling divider K = " << divider
            << "\n\n";

  // Analytic accounting.
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const auto naive = model::naive_from_psd(psd);
  const model::RefinedThermalModel refined(psd);
  const double v_naive = naive.accumulated_cycle_variance(divider);
  const double v_refined = refined.accumulated_cycle_variance(divider);
  std::cout << "accumulated phase variance per bit [cycles^2]:\n"
            << "  naive (total jitter iid): " << cell_sci(v_naive) << "\n"
            << "  refined (thermal only):   " << cell_sci(v_refined) << "\n"
            << "worst-case entropy lower bounds:\n"
            << "  H_naive   = " << cell(trng::entropy_lower_bound(v_naive), 6)
            << "\n  H_refined = "
            << cell(trng::entropy_lower_bound(v_refined), 6)
            << "   <- the security-relevant figure\n\n";

  // Empirical side: the eRO-TRNG is a BitSource; pull one raw block.
  const std::size_t need = trng::ais31::procedure_b_bits();
  std::cout << "generating " << need << " raw bits...\n";
  auto gen = trng::paper_trng(divider, 0xa0d17);
  const auto bits = gen.generate_bits(need);

  TableWriter emp({"estimator", "value [bits/bit]"});
  emp.add_row({"empirical bias |p-1/2|", cell(trng::bias(bits), 6)});
  emp.add_row({"Shannon (8-bit blocks)",
               cell(trng::shannon_block_entropy(bits, 8), 6)});
  emp.add_row({"Markov rate", cell(trng::markov_entropy_rate(bits), 6)});
  emp.add_row({"min-entropy (8-bit)", cell(trng::min_entropy(bits, 8), 6)});
  emp.print(std::cout);

  // AIS31 procedure B.
  std::cout << "\nAIS31 procedure B (raw sequence):\n";
  const auto proc = trng::ais31::procedure_b(bits);
  for (const auto& o : proc.outcomes)
    std::cout << "  " << (o.passed ? "PASS " : "FAIL ") << o.name << ": "
              << o.detail << "\n";
  std::cout << "  => " << (proc.passed ? "PASSED" : "FAILED") << "\n\n";

  // Post-processing comparison through the pipeline API: fresh sources
  // with the same seed replay the identical raw stream through different
  // transform chains. The XOR pipeline additionally carries an
  // online-test tap calibrated from the raw block above: per-window
  // ones-count variance (the embedded monitor the paper's conclusion
  // proposes, watching the source BEFORE post-processing can hide a
  // failure).
  trng::OnlineTestConfig mon_cfg;
  mon_cfg.n_cycles = 256;
  mon_cfg.windows_per_test = 64;
  mon_cfg.false_alarm = 1e-6;
  {
    // Calibrate the reference window variance from the raw block (the
    // same stats::variance the monitor's decisions use).
    std::vector<double> window_ones;
    for (std::size_t w = 0; w + mon_cfg.n_cycles <= bits.size();
         w += mon_cfg.n_cycles) {
      double ones = 0.0;
      for (std::size_t i = 0; i < mon_cfg.n_cycles; ++i)
        ones += (bits[w + i] & 1u);
      window_ones.push_back(ones);
    }
    mon_cfg.reference_sigma2 = stats::variance(window_ones);
  }
  trng::ThermalNoiseMonitor monitor(mon_cfg, /*f0=*/1.0);

  auto xor_src = trng::paper_trng(divider, 0xa0d17);
  trng::Pipeline xor_pipe(xor_src);
  xor_pipe.add_transform(std::make_unique<trng::XorDecimateTransform>(2))
      .set_monitor(&monitor);
  const auto xor2 = xor_pipe.generate_bits(need / 2);

  auto vn_src = trng::paper_trng(divider, 0xa0d17);
  trng::Pipeline vn_pipe(vn_src);
  vn_pipe.add_transform(std::make_unique<trng::VonNeumannTransform>());
  const auto vn = vn_pipe.generate_bits(need / 8);

  TableWriter post({"stream", "bits", "bias", "serial corr"});
  post.add_row({"raw", cell(bits.size()), cell(trng::bias(bits), 6),
                cell(trng::serial_correlation(bits), 6)});
  post.add_row({"xor/2", cell(xor2.size()), cell(trng::bias(xor2), 6),
                cell(trng::serial_correlation(xor2), 6)});
  post.add_row({"von Neumann", cell(vn.size()), cell(trng::bias(vn), 6),
                cell(trng::serial_correlation(vn), 6)});
  post.print(std::cout);
  std::cout << "online-test tap on the raw stream: " << monitor.decisions()
            << " decisions, " << xor_pipe.alarms() << " alarms\n";

  std::cout << "\nNote: if H_refined is too low for your target, raise K "
               "(slower sampling) or add\nalgebraic post-processing — and "
               "size it using the REFINED model, not the naive one.\n";
  return 0;
}
