// Entropy audit of an elementary RO-TRNG (the paper's security use case),
// written against the bit-stream pipeline API (trng/bit_stream.hpp).
//
// Generates raw bits from the simulated eRO-TRNG at a configurable
// sampling divider, then reports
//   * analytic entropy under the NAIVE model (total jitter assumed iid),
//   * analytic entropy under the REFINED model (thermal only),
//   * empirical Shannon / Markov / min-entropy,
//   * AIS31 procedure B verdict (T6, T7, T8),
//   * post-processing effect via Pipeline-composed BitTransforms
//     (XOR decimation, von Neumann) with an online-test tap on the raw
//     stream.
//
// Usage: entropy_audit [divider] [--raw-out <file>]     (default 2000)
//
// --raw-out dumps the raw stream the post-processing pipeline consumed
// into the versioned PTRNGRAW container (trng/raw_export.hpp) for
// external SP 800-90B estimation, then RE-READS the file and
// cross-checks it bit-for-bit and estimator-for-estimator against the
// in-process raw recorder; any disagreement exits nonzero.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "stats/descriptive.hpp"
#include "model/legacy_models.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "trng/ais31.hpp"
#include "trng/bit_stream.hpp"
#include "trng/entropy.hpp"
#include "trng/ero_trng.hpp"
#include "trng/postprocess.hpp"
#include "trng/raw_export.hpp"

int main(int argc, char** argv) {
  using namespace ptrng;
  using namespace ptrng::oscillator;

  std::uint32_t divider = 2000;
  std::string raw_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--raw-out") == 0 && i + 1 < argc) {
      raw_out = argv[++i];
    } else {
      divider = static_cast<std::uint32_t>(std::atoi(argv[i]));
    }
  }
  std::cout << "eRO-TRNG entropy audit, sampling divider K = " << divider
            << "\n\n";

  // Analytic accounting.
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const auto naive = model::naive_from_psd(psd);
  const model::RefinedThermalModel refined(psd);
  const double v_naive = naive.accumulated_cycle_variance(divider);
  const double v_refined = refined.accumulated_cycle_variance(divider);
  std::cout << "accumulated phase variance per bit [cycles^2]:\n"
            << "  naive (total jitter iid): " << cell_sci(v_naive) << "\n"
            << "  refined (thermal only):   " << cell_sci(v_refined) << "\n"
            << "worst-case entropy lower bounds:\n"
            << "  H_naive   = " << cell(trng::entropy_lower_bound(v_naive), 6)
            << "\n  H_refined = "
            << cell(trng::entropy_lower_bound(v_refined), 6)
            << "   <- the security-relevant figure\n\n";

  // Empirical side: the eRO-TRNG is a BitSource; pull one raw block.
  const std::size_t need = trng::ais31::procedure_b_bits();
  std::cout << "generating " << need << " raw bits...\n";
  auto gen = trng::paper_trng(divider, 0xa0d17);
  const auto bits = gen.generate_bits(need);

  TableWriter emp({"estimator", "value [bits/bit]"});
  emp.add_row({"empirical bias |p-1/2|", cell(trng::bias(bits), 6)});
  emp.add_row({"Shannon (8-bit blocks)",
               cell(trng::shannon_block_entropy(bits, 8), 6)});
  emp.add_row({"Markov rate", cell(trng::markov_entropy_rate(bits), 6)});
  emp.add_row({"min-entropy (8-bit)", cell(trng::min_entropy(bits, 8), 6)});
  emp.print(std::cout);

  // AIS31 procedure B.
  std::cout << "\nAIS31 procedure B (raw sequence):\n";
  const auto proc = trng::ais31::procedure_b(bits);
  for (const auto& o : proc.outcomes)
    std::cout << "  " << (o.passed ? "PASS " : "FAIL ") << o.name << ": "
              << o.detail << "\n";
  std::cout << "  => " << (proc.passed ? "PASSED" : "FAILED") << "\n\n";

  // Post-processing comparison through the pipeline API: fresh sources
  // with the same seed replay the identical raw stream through different
  // transform chains. The XOR pipeline additionally carries an
  // online-test tap calibrated from the raw block above: per-window
  // ones-count variance (the embedded monitor the paper's conclusion
  // proposes, watching the source BEFORE post-processing can hide a
  // failure).
  trng::OnlineTestConfig mon_cfg;
  mon_cfg.n_cycles = 256;
  mon_cfg.windows_per_test = 64;
  mon_cfg.false_alarm = 1e-6;
  {
    // Calibrate the reference window variance from the raw block (the
    // same stats::variance the monitor's decisions use).
    std::vector<double> window_ones;
    for (std::size_t w = 0; w + mon_cfg.n_cycles <= bits.size();
         w += mon_cfg.n_cycles) {
      double ones = 0.0;
      for (std::size_t i = 0; i < mon_cfg.n_cycles; ++i)
        ones += (bits[w + i] & 1u);
      window_ones.push_back(ones);
    }
    mon_cfg.reference_sigma2 = stats::variance(window_ones);
  }
  trng::ThermalNoiseMonitor monitor(mon_cfg, /*f0=*/1.0);

  auto xor_src = trng::paper_trng(divider, 0xa0d17);
  trng::Pipeline xor_pipe(xor_src);
  xor_pipe.add_transform(std::make_unique<trng::XorDecimateTransform>(2))
      .set_monitor(&monitor);

  // --raw-out: export the raw stream this pipeline pumps, and record it
  // in-process for the cross-check below. Both taps watch the SAME
  // blocks, in attachment order.
  std::ofstream raw_file;
  std::unique_ptr<trng::RawExportWriter> raw_writer;
  std::unique_ptr<trng::ExportTap> export_tap;
  trng::RawRecorderTap recorder_tap;
  if (!raw_out.empty()) {
    raw_file.open(raw_out, std::ios::binary | std::ios::trunc);
    if (!raw_file) {
      std::cerr << "cannot open " << raw_out << " for writing\n";
      return 1;
    }
    trng::RawExportHeader header;
    header.generator_id = "ero_trng";
    header.sample_width_bits = 1;
    header.config_digest = trng::config_digest(
        "ero_trng divider=" + std::to_string(divider) + " seed=0xa0d17");
    raw_writer = std::make_unique<trng::RawExportWriter>(raw_file, header);
    export_tap = std::make_unique<trng::ExportTap>(*raw_writer);
    xor_pipe.attach_tap(*export_tap).attach_tap(recorder_tap);
  }

  const auto xor2 = xor_pipe.generate_bits(need / 2);

  auto vn_src = trng::paper_trng(divider, 0xa0d17);
  trng::Pipeline vn_pipe(vn_src);
  vn_pipe.add_transform(std::make_unique<trng::VonNeumannTransform>());
  const auto vn = vn_pipe.generate_bits(need / 8);

  TableWriter post({"stream", "bits", "bias", "serial corr"});
  post.add_row({"raw", cell(bits.size()), cell(trng::bias(bits), 6),
                cell(trng::serial_correlation(bits), 6)});
  post.add_row({"xor/2", cell(xor2.size()), cell(trng::bias(xor2), 6),
                cell(trng::serial_correlation(xor2), 6)});
  post.add_row({"von Neumann", cell(vn.size()), cell(trng::bias(vn), 6),
                cell(trng::serial_correlation(vn), 6)});
  post.print(std::cout);
  std::cout << "online-test tap on the raw stream: " << monitor.decisions()
            << " decisions, " << xor_pipe.alarms() << " alarms\n";

  // Export cross-check: what external tooling will read from the file
  // must match what this process measured, byte for byte and estimator
  // for estimator.
  if (!raw_out.empty()) {
    raw_file.close();
    std::ifstream in(raw_out, std::ios::binary);
    const auto data = trng::read_raw_export(in);
    std::cout << "\nraw export: " << data.samples.size() << " samples -> "
              << raw_out << " (generator \"" << data.header.generator_id
              << "\")\n"
              << "ea_noniid layout: strip the 64-byte header, e.g.\n"
              << "  tail -c +65 " << raw_out << " > raw.bin && "
              << "ea_non_iid raw.bin 1\n";
    if (data.samples != recorder_tap.bits()) {
      std::cerr << "EXPORT MISMATCH: file payload differs from the "
                   "in-process raw recorder\n";
      return 1;
    }
    const double h_file = trng::markov_entropy_rate(data.samples);
    const double h_live = trng::markov_entropy_rate(recorder_tap.bits());
    if (h_file != h_live) {
      std::cerr << "ESTIMATOR DISAGREEMENT: Markov rate on the exported "
                   "samples ("
                << h_file << ") != in-process rate (" << h_live << ")\n";
      return 1;
    }
    std::cout << "export cross-check: payload and estimator agree "
              << "(Markov rate " << h_file << ")\n";
  }

  std::cout << "\nNote: if H_refined is too low for your target, raise K "
               "(slower sampling) or add\nalgebraic post-processing — and "
               "size it using the REFINED model, not the naive one.\n";
  return 0;
}
