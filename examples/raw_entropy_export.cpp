// Raw-sample export for external SP 800-90B estimation: dumps the RAW
// bit streams of all three generator families — the elementary eRO-TRNG,
// the Sunar-style multi-ring, and the neoTRNG-style cell array — into
// the versioned PTRNGRAW container (trng/raw_export.hpp), one file per
// generator, alongside the repo's own sp80090b estimates so the
// external verdict (NIST ea_noniid, per the jitterentropy raw-entropy
// methodology) can be compared estimator-for-estimator.
//
// Usage: raw_entropy_export [n_samples] [out_dir]   (default 65536, ".")
//
// Each file is directly ea_noniid-consumable after stripping the
// 64-byte header:
//   tail -c +65 ero.ptrngraw > ero.bin && ea_non_iid ero.bin 1
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "trng/bit_stream.hpp"
#include "trng/cell_array.hpp"
#include "trng/ero_trng.hpp"
#include "trng/multi_ring.hpp"
#include "trng/raw_export.hpp"
#include "trng/sp80090b.hpp"

namespace {

using namespace ptrng;

/// Exports `n` raw bits of `source` as <out_dir>/<id>.ptrngraw and
/// returns the bits for the in-process estimate column.
std::vector<std::uint8_t> export_stream(trng::BitSource& source,
                                        const std::string& id,
                                        const std::string& config,
                                        std::size_t n,
                                        const std::string& out_dir) {
  const std::string path = out_dir + "/" + id + ".ptrngraw";
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(1);
  }
  trng::RawExportHeader header;
  header.generator_id = id;
  header.sample_width_bits = 1;
  header.config_digest = trng::config_digest(config);
  trng::RawExportWriter writer(file, header);

  // Tap the stream through a pipeline, exactly as a production consumer
  // would: the exported samples are the bits the taps observe.
  trng::Pipeline pipeline(source, /*block_bits=*/4096);
  trng::ExportTap tap(writer, /*max_samples=*/n);
  trng::RawRecorderTap recorder(n);
  pipeline.attach_tap(tap).attach_tap(recorder);
  while (recorder.bits_seen() < n) (void)pipeline.generate_bits(4096);

  std::cout << "  wrote " << writer.samples_written() << " samples -> "
            << path << "\n";
  return recorder.bits();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      (argc > 1) ? static_cast<std::size_t>(std::atoll(argv[1])) : 65536;
  const std::string out_dir = (argc > 2) ? argv[2] : ".";

  std::cout << "exporting " << n << " raw samples per generator to "
            << out_dir << "\n";

  auto ero = trng::paper_trng(/*divider=*/2000, /*seed=*/0xe0);
  auto multi = trng::paper_multi_ring(/*rings=*/8, /*divider=*/200,
                                      /*seed=*/0xe1);
  trng::CellArrayConfig cell_cfg;
  cell_cfg.seed = 0xe2;
  trng::CellArrayTrng cells(cell_cfg);

  const auto ero_bits =
      export_stream(ero, "ero_trng", "ero_trng divider=2000 seed=0xe0", n,
                    out_dir);
  const auto multi_bits =
      export_stream(multi, "multi_ring",
                    "multi_ring rings=8 divider=200 seed=0xe1", n, out_dir);
  const auto cell_bits =
      export_stream(cells, "cell_array",
                    "cell_array cells=3 base=5 divider=64 seed=0xe2", n,
                    out_dir);

  std::cout << "\nin-process SP 800-90B estimates on the exported samples\n"
            << "(compare against ea_non_iid on the stripped payloads):\n";
  TableWriter table({"generator", "MCV", "collision", "Markov", "assess"});
  const auto row = [&](const char* name,
                       const std::vector<std::uint8_t>& bits) {
    table.add_row({name, cell(trng::sp80090b::most_common_value(bits), 4),
                   cell(trng::sp80090b::collision_estimate(bits), 4),
                   cell(trng::sp80090b::markov_estimate(bits), 4),
                   cell(trng::sp80090b::assess(bits), 4)});
  };
  row("ero_trng", ero_bits);
  row("multi_ring", multi_bits);
  row("cell_array", cell_bits);
  table.print(std::cout);

  std::cout << "\nexternal tooling workflow (docs/ARCHITECTURE.md §8):\n"
            << "  tail -c +65 " << out_dir
            << "/cell_array.ptrngraw > cell_array.bin\n"
            << "  ea_non_iid cell_array.bin 1\n";
  return 0;
}
