// Fleet-scale Monte Carlo corner campaign CLI (model/fleet_campaign.hpp):
// expands the {generator x node x operating corner x flicker x attack}
// grid, simulates `--seeds` devices per corner on the work-stealing
// pool, and prints the per-corner verdict table. With `--checkpoint`
// the campaign snapshots after every batch and `--resume` continues a
// killed run — the final report is BYTE-IDENTICAL to an uninterrupted
// run (the CI kill-and-resume smoke relies on exactly that).
//
// Usage: fleet_campaign [options]
//   --corners N       grid cells to run (0 = full grid; default 12)
//   --seeds N         devices per corner            (default 4)
//   --bits N          raw bits per device           (default 20000)
//   --seed X          campaign base seed            (default 0xf1ee7ca5)
//   --divider N       eRO / multi-ring divider      (default 200)
//   --batch N         shards per batch/checkpoint   (default 64)
//   --checkpoint F    snapshot file (enables checkpointing)
//   --resume          continue from --checkpoint if present
//   --max-shards N    fold at most N shards, then checkpoint and exit 3
//   --report-json F   write the versioned JSON report to F
//   --fixed-chunk     use the fixed-chunk scheduler (scheduler A/B runs)
//   --quiet           suppress the progress lines
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "model/fleet_campaign.hpp"

namespace {

std::uint64_t parse_u64(const char* s) {
  return std::strtoull(s, nullptr, 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptrng;

  model::CampaignConfig config;
  config.corners = 12;
  config.seeds = 4;
  std::string report_json;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[i] << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg("--corners")) {
      config.corners = static_cast<std::size_t>(parse_u64(value()));
    } else if (arg("--seeds")) {
      config.seeds = static_cast<std::size_t>(parse_u64(value()));
    } else if (arg("--bits")) {
      config.bits_per_shard = static_cast<std::size_t>(parse_u64(value()));
    } else if (arg("--seed")) {
      config.seed = parse_u64(value());
    } else if (arg("--divider")) {
      config.divider = static_cast<std::uint32_t>(parse_u64(value()));
    } else if (arg("--batch")) {
      config.batch_size = static_cast<std::size_t>(parse_u64(value()));
    } else if (arg("--checkpoint")) {
      config.checkpoint_path = value();
    } else if (arg("--resume")) {
      config.resume = true;
    } else if (arg("--max-shards")) {
      config.max_shards = static_cast<std::size_t>(parse_u64(value()));
    } else if (arg("--report-json")) {
      report_json = value();
    } else if (arg("--fixed-chunk")) {
      config.use_work_stealing = false;
    } else if (arg("--quiet")) {
      quiet = true;
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return 2;
    }
  }
  if (!quiet) {
    config.progress = [](std::uint64_t folded, std::uint64_t total) {
      std::cerr << "  " << folded << "/" << total << " shards folded\n";
    };
  }

  const auto report = model::run_campaign(config);
  std::cout << report.table();
  if (!report_json.empty()) {
    std::ofstream out(report_json, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << report_json << "\n";
      return 1;
    }
    out << report.json() << "\n";
  }
  if (!report.complete) {
    std::cout << "campaign interrupted at " << report.shards_folded << "/"
              << report.shards_total
              << " shards; re-run with --resume to continue\n";
    return 3;
  }
  return 0;
}
