// Technology-scaling what-if: the paper's conclusion predicts that
// transistor shrinking makes flicker dominate and the independence
// threshold collapse. This example walks the built-in node trajectory,
// prints the forward-model prediction per node, and for two extremes
// verifies the prediction by simulating the jitter and re-extracting the
// coefficients (forward model -> simulate -> fit -> compare).
#include <iostream>

#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "measurement/calibration.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "model/multilevel_model.hpp"
#include "oscillator/ring_oscillator.hpp"
#include "phase_noise/isf.hpp"
#include "transistor/technology.hpp"

int main() {
  using namespace ptrng;

  std::cout << "technology scaling of the jitter-independence threshold\n"
            << "(5-stage ring, asymmetric triangular ISF; forward "
               "multilevel model)\n\n";
  const auto isf = phase_noise::Isf::ring_typical(5, 0.25);

  TableWriter table({"node", "f0 [MHz]", "sigma_th [ps]",
                     "flicker corner C", "N*(95%)", "N*(99%)"});
  for (const auto& node : transistor::technology_nodes()) {
    const auto m =
        model::MultilevelModel::from_technology(node, 5, isf, 10.0);
    table.add_row({node.name, cell(m.phase_psd().f0() / 1e6, 1),
                   cell(m.thermal_jitter() * 1e12, 3),
                   cell(m.phase_psd().thermal_ratio_constant(), 0),
                   cell(m.independence_threshold(0.95), 1),
                   cell(m.independence_threshold(0.99), 1)});
  }
  table.print(std::cout);

  std::cout << "\ncross-validation: simulate two nodes and re-extract the "
               "coefficients from the\nmeasured sigma^2_N curve\n\n";
  TableWriter val({"node", "b_th fwd", "b_th fit", "b_fl fwd", "b_fl fit"});
  for (const char* name : {"350nm", "28nm"}) {
    const auto& node = transistor::technology_node(name);
    const auto m =
        model::MultilevelModel::from_technology(node, 5, isf, 10.0);
    const auto& psd = m.phase_psd();

    oscillator::RingOscillatorConfig cfg;
    cfg.f0 = psd.f0();
    cfg.b_th = psd.b_th();
    cfg.b_fl = psd.b_fl();
    cfg.flicker_floor_ratio = 1e-6;
    cfg.seed = 0x5ca1e + static_cast<std::uint64_t>(node.feature * 1e12);
    oscillator::RingOscillator osc(cfg);
    std::vector<double> jitter(2'000'000);
    for (auto& j : jitter) j = osc.next_period().jitter();

    const auto grid = log_integer_grid(10, 20'000, 18);
    const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
    const auto cal = measurement::fit_sigma2_n(sweep, psd.f0());
    val.add_row({name, cell_sci(psd.b_th(), 3), cell_sci(cal.b_th, 3),
                 cell_sci(psd.b_fl(), 3), cell_sci(cal.b_fl, 3)});
  }
  val.print(std::cout);

  std::cout << "\nthe paper's paradox in numbers: at small nodes the "
               "flicker floor is reached after\nfewer periods, so the "
               "window where Eq. 6 (linear accumulation) holds — and "
               "where the\nthermal contribution is measurable — keeps "
               "shrinking.\n";
  return 0;
}
