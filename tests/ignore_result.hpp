// Test-only helper: evaluates an expression and discards its value, so
// [[nodiscard]] calls inside EXPECT_THROW / EXPECT_DEATH don't trip
// -Wunused-result (the CI matrix builds with -Werror, PTRNG_WERROR=ON).
//
//   EXPECT_THROW(ignore_result(gamma_p(-1.0, 1.0)), ContractViolation);
#pragma once

namespace ptrng::test {

template <typename T>
void ignore_result(T&&) {}

}  // namespace ptrng::test
