// Known-answer + property-test battery for the SP 800-90B §4.4
// continuous health engine (trng/continuous_health.hpp):
//  * cutoff KATs pinned against exact-rational (Python fractions)
//    evaluations of 1 + ceil(-log2(alpha)/H) and critbinom;
//  * alarm-verdict KATs for four fixed streams, pinned exactly
//    (deterministic streams, integer counters — no tolerance needed);
//  * pass-through / chunking / thread-count properties: the taps never
//    perturb the stream, and block scanning is bit-exact vs the scalar
//    reference path;
//  * false-alarm rates vs the engine's own null-model formulas, with CI
//    bands from stat_tolerance.hpp;
//  * detection latency, in bits, for every attacks::injection scenario.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "attacks/injection.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "noise/sampler_policy.hpp"
#include "stat_tolerance.hpp"
#include "trng/bit_stream.hpp"
#include "trng/continuous_health.hpp"
#include "trng/ero_trng.hpp"

namespace ptrng::trng {
namespace {

class GlobalPoolWidth {
 public:
  explicit GlobalPoolWidth(std::size_t width) {
    ThreadPool::global().resize(width);
  }
  ~GlobalPoolWidth() { ThreadPool::global().resize(0); }
};

/// Ideal iid BitSource for null-model and pass-through tests.
class RngBitSource final : public BitSource {
 public:
  explicit RngBitSource(std::uint64_t seed) : rng_(seed) {}
  std::uint8_t next_bit() override {
    return static_cast<std::uint8_t>(rng_.next() & 1u);
  }

 private:
  Xoshiro256pp rng_;
};

/// A source that is stuck at one value — the §4.4.1 canonical failure.
class StuckBitSource final : public BitSource {
 public:
  explicit StuckBitSource(std::uint8_t value) : value_(value & 1u) {}
  std::uint8_t next_bit() override { return value_; }

 private:
  std::uint8_t value_;
};

std::vector<std::uint8_t> biased_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>((rng.next() % 10) != 0);
  return bits;
}

// --- cutoff known answers ------------------------------------------------
//
// Every pinned value below was computed OUTSIDE this codebase with exact
// rational arithmetic (Python fractions; p = the exact rational of the
// double 2^-H), so these KATs catch any float regression in the C++
// tail summation.

TEST(ContinuousHealthCutoffKat, RepetitionCountGrid) {
  // C = 1 + ceil(-log2(alpha) / H), SP 800-90B §4.4.1.
  EXPECT_EQ(repetition_count_cutoff(1.0, 0x1p-20), 21u);
  EXPECT_EQ(repetition_count_cutoff(0.5, 0x1p-20), 41u);
  EXPECT_EQ(repetition_count_cutoff(0.8, 0x1p-20), 26u);
  EXPECT_EQ(repetition_count_cutoff(1.0, 0x1p-30), 31u);
  EXPECT_EQ(repetition_count_cutoff(0.875, 0x1p-30), 36u);
  EXPECT_EQ(repetition_count_cutoff(0.25, 0x1p-40), 161u);
  EXPECT_EQ(repetition_count_cutoff(1.0, 0x1p-7), 8u);
}

TEST(ContinuousHealthCutoffKat, AdaptiveProportionGrid) {
  // C = 1 + critbinom(W, 2^-H, 1 - alpha), SP 800-90B §4.4.2.
  EXPECT_EQ(adaptive_proportion_cutoff(1024, 1.0, 0x1p-20), 589u);
  EXPECT_EQ(adaptive_proportion_cutoff(1024, 0.5, 0x1p-20), 793u);
  EXPECT_EQ(adaptive_proportion_cutoff(512, 1.0, 0x1p-20), 311u);
  EXPECT_EQ(adaptive_proportion_cutoff(256, 1.0, 0x1p-20), 167u);
  EXPECT_EQ(adaptive_proportion_cutoff(1024, 0.8, 0x1p-20), 664u);
  EXPECT_EQ(adaptive_proportion_cutoff(1024, 1.0, 0x1p-7), 552u);
  EXPECT_EQ(adaptive_proportion_cutoff(512, 0.5, 0x1p-10), 394u);
}

TEST(ContinuousHealthCutoffKat, RepetitionCutoffMonotoneInEntropy) {
  // Lower claimed entropy tolerates longer runs.
  std::uint32_t prev = 0;
  for (const double h : {1.0, 0.8, 0.5, 0.25, 0.1}) {
    const std::uint32_t c = repetition_count_cutoff(h, 0x1p-20);
    EXPECT_GT(c, prev) << "h_min " << h;
    prev = c;
  }
}

TEST(ContinuousHealthCutoffKat, RepetitionCutoffMonotoneInAlpha) {
  // A stricter false-alarm budget demands a longer run before failing.
  std::uint32_t prev = 0;
  for (const double alpha : {0x1p-7, 0x1p-10, 0x1p-20, 0x1p-30, 0x1p-40}) {
    const std::uint32_t c = repetition_count_cutoff(0.5, alpha);
    EXPECT_GT(c, prev) << "alpha " << alpha;
    prev = c;
  }
}

TEST(ContinuousHealthCutoffKat, ProportionCutoffBetweenMeanAndWindow) {
  for (const std::size_t w : {256u, 512u, 1024u, 4096u}) {
    for (const double h : {1.0, 0.5, 0.25}) {
      const std::uint32_t c = adaptive_proportion_cutoff(w, h, 0x1p-20);
      const double mean = static_cast<double>(w) * std::pow(2.0, -h);
      EXPECT_GT(static_cast<double>(c), mean) << "W " << w << " h " << h;
      EXPECT_LE(c, w) << "W " << w << " h " << h;
    }
  }
}

TEST(ContinuousHealthCutoffKat, AlarmProbabilityMatchesExactRational) {
  // Exact-rational values (17 significant digits) for the per-window
  // alarm probability q = p P(Bin(W-1,p) >= C-1) + (1-p) P(... 1-p ...).
  EXPECT_NEAR(adaptive_proportion_alarm_probability(1024, 552, 0.5),
              0.007350224674145246, 1e-9 * 0.007350224674145246);
  EXPECT_NEAR(adaptive_proportion_alarm_probability(1024, 600, 0.5),
              2.4768627257406952e-08, 1e-9 * 2.4768627257406952e-08);
  EXPECT_NEAR(adaptive_proportion_alarm_probability(512, 300, 0.52),
              0.0009387745185303166, 1e-9 * 0.0009387745185303166);
}

TEST(ContinuousHealthCutoffKat, RepetitionAlarmRateClosedForm) {
  // (1-p) p^C + p (1-p)^C; at p = 1/2 this is exactly 2^-C.
  EXPECT_DOUBLE_EQ(repetition_count_alarm_rate(8, 0.5), 0x1p-8);
  EXPECT_DOUBLE_EQ(repetition_count_alarm_rate(21, 0.5), 0x1p-21);
  const double p = 0.9;
  EXPECT_DOUBLE_EQ(repetition_count_alarm_rate(5, p),
                   (1.0 - p) * std::pow(p, 5) + p * std::pow(1.0 - p, 5));
}

// --- fixed-stream verdict KATs -------------------------------------------
//
// Deterministic input, integer counters: the verdicts are pinned
// EXACTLY. Default config: h = 0.5, alpha = 2^-20, W = 1024 -> RCT
// cutoff 41, APT cutoff 793.

TEST(ContinuousHealthVerdictKat, StuckAtStreamFailsTotally) {
  HealthEngine engine{ContinuousHealthConfig{}};
  engine.process(std::vector<std::uint8_t>(4096, 0));
  // One latched RCT alarm when the run reaches 41 (bit index 40), one
  // APT alarm per 1024-bit window when matches reach 793 (bit 792 of
  // each window).
  EXPECT_EQ(engine.repetition_alarms(), 1u);
  EXPECT_EQ(engine.proportion_alarms(), 4u);
  EXPECT_EQ(engine.first_alarm_bit(), 40u);
  EXPECT_EQ(engine.state(), HealthState::kTotalFailure);
  EXPECT_EQ(engine.bits_seen(), 4096u);
}

TEST(ContinuousHealthVerdictKat, StuckAtAlarmEventSequence) {
  HealthEngine engine{ContinuousHealthConfig{}};
  std::vector<HealthAlarmEvent> events;
  engine.set_alarm_callback(
      [&](const HealthAlarmEvent& e) { events.push_back(e); });
  engine.process(std::vector<std::uint8_t>(4096, 1));
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].test, HealthAlarmEvent::Test::kRepetitionCount);
  EXPECT_EQ(events[0].bit_index, 40u);
  EXPECT_EQ(events[0].state, HealthState::kIntermittentAlarm);
  // APT fires at bit 792 of every window (windows start at 1024 w).
  const std::size_t apt_bits[] = {792, 1816, 2840, 3864};
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(events[i].test, HealthAlarmEvent::Test::kAdaptiveProportion);
    EXPECT_EQ(events[i].bit_index, apt_bits[i - 1]);
  }
  // The third unrecovered alarm escalates to total failure.
  EXPECT_EQ(events[1].state, HealthState::kIntermittentAlarm);
  EXPECT_EQ(events[2].state, HealthState::kTotalFailure);
  EXPECT_EQ(events[4].state, HealthState::kTotalFailure);
}

TEST(ContinuousHealthVerdictKat, OscillatingStreamStaysNominal) {
  HealthEngine engine{ContinuousHealthConfig{}};
  std::vector<std::uint8_t> osc(4096);
  for (std::size_t i = 0; i < osc.size(); ++i)
    osc[i] = static_cast<std::uint8_t>(i & 1u);
  engine.process(osc);
  // Runs of length 1 and perfectly balanced windows: neither test fires.
  EXPECT_EQ(engine.alarms(), 0u);
  EXPECT_FALSE(engine.alarmed());
  EXPECT_EQ(engine.state(), HealthState::kNominal);
}

TEST(ContinuousHealthVerdictKat, BiasedStreamVerdictPinned) {
  // p(1) = 0.9 from the seeded generator below; both tests hammer. The
  // counts are a regression pin of the full engine (tests + latching +
  // state machine) on a fixed 100 kbit stream.
  HealthEngine engine{ContinuousHealthConfig{}};
  engine.process(biased_bits(100'000, 0xb1a5));
  EXPECT_EQ(engine.repetition_alarms(), 156u);
  EXPECT_EQ(engine.proportion_alarms(), 93u);
  EXPECT_EQ(engine.first_alarm_bit(), 872u);
  EXPECT_EQ(engine.state(), HealthState::kTotalFailure);
}

TEST(ContinuousHealthVerdictKat, HealthyIidStreamStaysNominal) {
  // 100 kbits of fair iid bits at alpha = 2^-20: expected alarms
  // ~ 1e5 * 2^-41 (RCT) + 97 * 2^-20 (APT) << 1.
  HealthEngine engine{ContinuousHealthConfig{}};
  RngBitSource src(0xfa12);
  engine.process(src.generate_bits(100'000));
  EXPECT_EQ(engine.alarms(), 0u);
  EXPECT_EQ(engine.state(), HealthState::kNominal);
}

// --- pass-through and bit-exactness properties ---------------------------

TEST(ContinuousHealthPassThrough, RawTapDoesNotPerturbPipelineOutput) {
  for (const std::size_t width : {1u, 2u, 8u}) {
    GlobalPoolWidth pool(width);
    const std::size_t n = 30'000;
    std::vector<std::uint8_t> with_tap(n), without_tap(n);

    RngBitSource src_a(99);
    HealthEngine engine{ContinuousHealthConfig{}};
    Pipeline tapped(src_a, 4096);
    tapped.attach_tap(engine);
    tapped.add_transform(std::make_unique<XorDecimateTransform>(2))
        .add_transform(std::make_unique<VonNeumannTransform>());
    tapped.generate_into(with_tap);

    RngBitSource src_b(99);
    Pipeline plain(src_b, 4096);
    plain.add_transform(std::make_unique<XorDecimateTransform>(2))
        .add_transform(std::make_unique<VonNeumannTransform>());
    plain.generate_into(without_tap);

    EXPECT_EQ(with_tap, without_tap) << "width " << width;
    // The raw tap sees every raw bit the pipeline pulled.
    EXPECT_EQ(engine.bits_seen(), tapped.raw_bits()) << "width " << width;
    EXPECT_GT(engine.bits_seen(), n) << "width " << width;
  }
}

TEST(ContinuousHealthPassThrough, TapTransformIsIdentityAnywhereInChain) {
  const std::size_t n = 20'000;
  std::vector<std::uint8_t> with_tap(n), without_tap(n);

  RngBitSource src_a(123);
  HealthEngine engine{ContinuousHealthConfig{}};
  Pipeline tapped(src_a, 1024);
  tapped.add_transform(std::make_unique<XorDecimateTransform>(2))
      .add_transform(std::make_unique<HealthTapTransform>(engine))
      .add_transform(std::make_unique<VonNeumannTransform>());
  tapped.generate_into(with_tap);

  RngBitSource src_b(123);
  Pipeline plain(src_b, 1024);
  plain.add_transform(std::make_unique<XorDecimateTransform>(2))
      .add_transform(std::make_unique<VonNeumannTransform>());
  plain.generate_into(without_tap);

  EXPECT_EQ(with_tap, without_tap);
  // Mid-chain placement: the tap saw the DECIMATED stream.
  EXPECT_EQ(engine.bits_seen(), tapped.raw_bits() / 2);
}

TEST(ContinuousHealthPassThrough, ChunkedPushMatchesWholeBlock) {
  // Alarm counters, indices and state must not depend on push
  // granularity (the word path only engages away from chunk edges).
  const auto bits = biased_bits(50'000, 0xc0ffee);
  HealthEngine whole{ContinuousHealthConfig{}};
  whole.process(bits);

  Xoshiro256pp split_rng(0x5eed);
  for (int rep = 0; rep < 5; ++rep) {
    HealthEngine chunked{ContinuousHealthConfig{}};
    std::size_t pos = 0;
    while (pos < bits.size()) {
      const std::size_t take = std::min<std::size_t>(
          bits.size() - pos, 1 + split_rng.next() % 777);
      chunked.process(
          std::span<const std::uint8_t>(bits.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(chunked.repetition_alarms(), whole.repetition_alarms());
    EXPECT_EQ(chunked.proportion_alarms(), whole.proportion_alarms());
    EXPECT_EQ(chunked.first_alarm_bit(), whole.first_alarm_bit());
    EXPECT_EQ(chunked.state(), whole.state());
    EXPECT_EQ(chunked.bits_seen(), whole.bits_seen());
  }
}

TEST(ContinuousHealthPassThrough, BlockPathMatchesScalarPath) {
  // Stress stream mixing long same-value dwells (word fast path must
  // bail out at exactly the right bit) with random segments.
  std::vector<std::uint8_t> bits;
  Xoshiro256pp rng(0xdead);
  while (bits.size() < 60'000) {
    const std::size_t dwell = 1 + rng.next() % 97;
    const std::uint8_t v = static_cast<std::uint8_t>(rng.next() & 1u);
    for (std::size_t i = 0; i < dwell; ++i) bits.push_back(v);
  }

  HealthEngine block{ContinuousHealthConfig{}};
  std::vector<HealthAlarmEvent> block_events;
  block.set_alarm_callback(
      [&](const HealthAlarmEvent& e) { block_events.push_back(e); });
  block.process(bits);

  HealthEngine scalar{ContinuousHealthConfig{}};
  std::vector<HealthAlarmEvent> scalar_events;
  scalar.set_alarm_callback(
      [&](const HealthAlarmEvent& e) { scalar_events.push_back(e); });
  for (const std::uint8_t b : bits) scalar.process_bit(b);

  EXPECT_EQ(block.repetition_alarms(), scalar.repetition_alarms());
  EXPECT_EQ(block.proportion_alarms(), scalar.proportion_alarms());
  EXPECT_EQ(block.first_alarm_bit(), scalar.first_alarm_bit());
  EXPECT_EQ(block.state(), scalar.state());
  ASSERT_EQ(block_events.size(), scalar_events.size());
  for (std::size_t i = 0; i < block_events.size(); ++i) {
    EXPECT_EQ(block_events[i].test, scalar_events[i].test) << "event " << i;
    EXPECT_EQ(block_events[i].bit_index, scalar_events[i].bit_index)
        << "event " << i;
    EXPECT_EQ(block_events[i].state, scalar_events[i].state) << "event " << i;
  }
}

TEST(ContinuousHealthPassThrough, EroPipelineTapThreadInvariant) {
  // The engine taps the raw stream, which is bit-identical at any pool
  // width — so must be every health counter.
  std::vector<std::size_t> rct, apt, seen;
  for (const std::size_t width : {1u, 2u, 8u}) {
    GlobalPoolWidth pool(width);
    auto source = paper_trng(200, 0x600d);
    HealthEngine engine{ContinuousHealthConfig{}};
    Pipeline pipe(source, 4096);
    pipe.attach_tap(engine);
    std::vector<std::uint8_t> out(100'000);
    pipe.generate_into(out);
    rct.push_back(engine.repetition_alarms());
    apt.push_back(engine.proportion_alarms());
    seen.push_back(engine.bits_seen());
  }
  EXPECT_EQ(rct[0], rct[1]);
  EXPECT_EQ(rct[0], rct[2]);
  EXPECT_EQ(apt[0], apt[1]);
  EXPECT_EQ(apt[0], apt[2]);
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[0], seen[2]);
}

// --- tap mechanism -------------------------------------------------------

TEST(PipelineTaps, MultipleTapsSeeTheSameRawStream) {
  // A health engine and a raw recorder share the one tap mechanism; both
  // observe every raw bit, and the recorder's copy IS the raw stream.
  RngBitSource src_a(0x7a9), src_b(0x7a9);
  HealthEngine engine{ContinuousHealthConfig{}};
  RawRecorderTap recorder(/*max_bits=*/1 << 20);
  Pipeline pipe(src_a, 2048);
  pipe.attach_tap(engine);
  pipe.attach_tap(recorder);
  EXPECT_EQ(pipe.tap_count(), 2u);
  std::vector<std::uint8_t> out(40'000);
  pipe.generate_into(out);

  EXPECT_EQ(engine.bits_seen(), pipe.raw_bits());
  EXPECT_EQ(recorder.bits_seen(), pipe.raw_bits());
  const auto raw = src_b.generate_bits(pipe.raw_bits());
  EXPECT_EQ(recorder.bits(), raw);
}

TEST(PipelineTaps, AttachIsIdempotentAndDetachStopsObservation) {
  RngBitSource src(0x7aa);
  HealthEngine engine{ContinuousHealthConfig{}};
  Pipeline pipe(src, 1024);
  pipe.attach_tap(engine);
  pipe.attach_tap(engine);  // duplicate attach must not double-observe
  EXPECT_EQ(pipe.tap_count(), 1u);
  std::vector<std::uint8_t> out(8'000);
  pipe.generate_into(out);
  const auto seen = engine.bits_seen();
  EXPECT_EQ(seen, pipe.raw_bits());

  pipe.detach_tap(engine);
  EXPECT_EQ(pipe.tap_count(), 0u);
  pipe.generate_into(out);
  EXPECT_EQ(engine.bits_seen(), seen);  // no longer observing
}

TEST(PipelineTaps, DeprecatedSetHealthEngineIsAttachTap) {
  // The legacy setter must behave exactly like attach_tap/detach_tap for
  // its one-release deprecation window — same counters, same alarms.
  RngBitSource src_a(0x7ab), src_b(0x7ab);
  HealthEngine via_setter{ContinuousHealthConfig{}};
  HealthEngine via_tap{ContinuousHealthConfig{}};

  Pipeline legacy(src_a, 4096);
  PTRNG_SUPPRESS_DEPRECATED_BEGIN
  legacy.set_health_engine(&via_setter);
  PTRNG_SUPPRESS_DEPRECATED_END
  Pipeline modern(src_b, 4096);
  modern.attach_tap(via_tap);

  std::vector<std::uint8_t> a(30'000), b(30'000);
  legacy.generate_into(a);
  modern.generate_into(b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(via_setter.bits_seen(), via_tap.bits_seen());
  EXPECT_EQ(via_setter.alarms(), via_tap.alarms());
  EXPECT_EQ(legacy.alarms(), modern.alarms());

  // nullptr clears the attached engine, mirroring detach_tap.
  PTRNG_SUPPRESS_DEPRECATED_BEGIN
  legacy.set_health_engine(nullptr);
  PTRNG_SUPPRESS_DEPRECATED_END
  EXPECT_EQ(legacy.tap_count(), 0u);
}

TEST(PipelineTaps, RecorderCapStopsRecordingNotObservation) {
  RngBitSource src(0x7ac);
  RawRecorderTap recorder(/*max_bits=*/1000);
  Pipeline pipe(src, 512);
  pipe.attach_tap(recorder);
  std::vector<std::uint8_t> out(10'000);
  pipe.generate_into(out);
  EXPECT_EQ(recorder.bits().size(), 1000u);
  EXPECT_EQ(recorder.bits_seen(), pipe.raw_bits());
}

// --- state machine -------------------------------------------------------

TEST(ContinuousHealthStateMachine, RecoversAfterHealthyBits) {
  ContinuousHealthConfig cfg;
  cfg.recovery_bits = 2048;
  HealthEngine engine{cfg};
  // One offending run (41 zeros) -> intermittent alarm.
  engine.process(std::vector<std::uint8_t>(41, 0));
  EXPECT_EQ(engine.state(), HealthState::kIntermittentAlarm);
  EXPECT_TRUE(engine.alarmed());
  // recovery_bits of healthy alternation drop the state back to
  // nominal; diagnostics survive.
  std::vector<std::uint8_t> osc(2048 + 64);
  for (std::size_t i = 0; i < osc.size(); ++i)
    osc[i] = static_cast<std::uint8_t>(i & 1u);
  engine.process(osc);
  EXPECT_EQ(engine.state(), HealthState::kNominal);
  EXPECT_EQ(engine.alarms(), 1u);
  EXPECT_TRUE(engine.alarmed());
}

TEST(ContinuousHealthStateMachine, EscalatesAndAcknowledges) {
  ContinuousHealthConfig cfg;
  cfg.total_failure_alarms = 2;
  HealthEngine engine{cfg};
  engine.process(std::vector<std::uint8_t>(2048, 1));
  // RCT at bit 40 + APT at bit 792 = 2 unrecovered alarms -> failure.
  EXPECT_EQ(engine.state(), HealthState::kTotalFailure);
  const std::size_t alarms_at_failure = engine.alarms();
  engine.acknowledge_failure();
  EXPECT_EQ(engine.state(), HealthState::kNominal);
  // Counters are diagnostics: acknowledged, not erased.
  EXPECT_EQ(engine.alarms(), alarms_at_failure);
  EXPECT_TRUE(engine.alarmed());
  // The tests were re-primed: a fresh healthy stream stays nominal.
  std::vector<std::uint8_t> osc(4096);
  for (std::size_t i = 0; i < osc.size(); ++i)
    osc[i] = static_cast<std::uint8_t>(i & 1u);
  engine.process(osc);
  EXPECT_EQ(engine.state(), HealthState::kNominal);
  EXPECT_EQ(engine.alarms(), alarms_at_failure);
}

TEST(ContinuousHealthStateMachine, MeasureLatencyOnStuckSource) {
  // A stuck source trips the RCT on the bit where the run reaches the
  // cutoff: latency == cutoff bits exactly.
  StuckBitSource stuck(1);
  HealthEngine engine{ContinuousHealthConfig{}};
  const auto lat = measure_detection_latency(stuck, engine, 100'000);
  ASSERT_TRUE(lat.detected);
  EXPECT_EQ(lat.bits, repetition_count_cutoff(0.5, 0x1p-20));
}

TEST(ContinuousHealthStateMachine, MeasureLatencyHealthySourceTimesOut) {
  RngBitSource healthy(0x900d);
  HealthEngine engine{ContinuousHealthConfig{}};
  const auto lat = measure_detection_latency(healthy, engine, 50'000);
  EXPECT_FALSE(lat.detected);
  EXPECT_EQ(lat.bits, 0u);
  EXPECT_EQ(engine.alarms(), 0u);
}

// --- false-alarm rates vs the null model ---------------------------------

TEST(ContinuousHealthFalseAlarm, RepetitionRateMatchesNullOnIdealSource) {
  // Loose config (h = 1, alpha = 2^-7 -> RCT cutoff 8) so 1 Mbit of
  // fair iid bits yields thousands of alarms; the count must land in
  // the z = 5 band around n * rate (iid source: no correlation
  // inflation needed).
  ContinuousHealthConfig cfg;
  cfg.h_min = 1.0;
  cfg.false_alarm = 0x1p-7;
  const std::size_t n = 1'000'000;
  const double rate = repetition_count_alarm_rate(8, 0.5);
  const double tol = testing::count_tol(n, rate);
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    HealthEngine engine{cfg};
    RngBitSource src(seed);
    std::vector<std::uint8_t> block(4096);
    for (std::size_t i = 0; i < n; i += block.size()) {
      src.generate_into(block);
      engine.process(block);
    }
    const double expected = static_cast<double>(n) * rate;
    EXPECT_NEAR(static_cast<double>(engine.repetition_alarms()), expected,
                tol)
        << "seed " << seed;
  }
}

TEST(ContinuousHealthFalseAlarm, ProportionRateMatchesNullOnIdealSource) {
  // Same config: APT cutoff 552 over W = 1024, per-window alarm
  // probability q from the engine's own exact formula.
  ContinuousHealthConfig cfg;
  cfg.h_min = 1.0;
  cfg.false_alarm = 0x1p-7;
  const std::size_t n = 1'000'000;
  const std::size_t n_windows = n / 1024;
  const double q = adaptive_proportion_alarm_probability(1024, 552, 0.5);
  const double tol = testing::count_tol(n_windows, q);
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    HealthEngine engine{cfg};
    RngBitSource src(seed);
    std::vector<std::uint8_t> block(4096);
    for (std::size_t i = 0; i < n; i += block.size()) {
      src.generate_into(block);
      engine.process(block);
    }
    const double expected = static_cast<double>(n_windows) * q;
    EXPECT_NEAR(static_cast<double>(engine.proportion_alarms()), expected,
                tol)
        << "seed " << seed;
  }
}

TEST(ContinuousHealthFalseAlarm, HealthyEroStaysWithinDesignBudget) {
  // The production question: does a HEALTHY paper-calibrated eRO stream
  // (divider 200, where per-bit conditional min-entropy clears the
  // h = 0.5 target) keep its alarm rate inside the configured
  // false-alarm budget over >= 1 Mbit? Expected alarms under the design
  // alpha: ~ n/2 runs * 2^-20 (RCT) + (n/1024) windows * 2^-20 (APT)
  // ~ 0.48; the one-sided z = 5 band around that Poisson-scale count is
  // count_tol of the run/window trials.
  const std::size_t n = 1'000'000;
  auto source = paper_trng(200, 0x600d);
  HealthEngine engine{ContinuousHealthConfig{}};
  std::vector<std::uint8_t> block(4096);
  for (std::size_t i = 0; i < n; i += block.size()) {
    source.generate_into(block);
    engine.process(block);
  }
  const double alpha = engine.config().false_alarm;
  const double expected =
      static_cast<double>(n) / 2.0 * alpha +
      static_cast<double>(n / 1024) * alpha;
  const double band =
      expected + testing::count_tol(n / 2 + n / 1024, alpha);
  EXPECT_LE(static_cast<double>(engine.alarms()), band);
  EXPECT_EQ(engine.state(), HealthState::kNominal);
  EXPECT_GE(engine.bits_seen(), n);
}

// --- detection latency for the injection scenarios -----------------------

/// Per-scenario latency budgets in bits, same order as
/// attacks::injection_scenarios(). Measured headroom (default seed):
/// freq-lock-0.98 detects at 41 (the RCT cutoff — the stream goes
/// static immediately), em-partial-lock-0.995 at ~1161 (first long
/// dwell of the residual beat), total-lock-1.0 at 33788 (APT window
/// imbalance of the zero-noise deterministic stream).
constexpr std::size_t kLatencyBudgets[] = {64, 2048, 40960};

TEST(ContinuousHealthDetection, EveryScenarioDetectsWithinBudget) {
  const auto scenarios = attacks::injection_scenarios();
  ASSERT_EQ(scenarios.size(), std::size(kLatencyBudgets));
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& sc = scenarios[i];
    auto victim = attacks::make_attacked_trng(sc.attack, sc.divider);
    HealthEngine engine{ContinuousHealthConfig{}};
    const auto lat =
        measure_detection_latency(victim, engine, 2 * kLatencyBudgets[i]);
    ASSERT_TRUE(lat.detected) << sc.name;
    EXPECT_LE(lat.bits, kLatencyBudgets[i]) << sc.name;
    // Nothing can alarm before the RCT cutoff-length prefix.
    EXPECT_GE(lat.bits, repetition_count_cutoff(0.5, 0x1p-20)) << sc.name;
  }
}

TEST(ContinuousHealthDetection, LatencyInvariantAcrossThreadCounts) {
  const auto scenarios = attacks::injection_scenarios();
  for (std::size_t i = 0; i < 2; ++i) {  // the two fast scenarios
    const auto& sc = scenarios[i];
    std::vector<std::size_t> latencies;
    for (const std::size_t width : {1u, 2u, 8u}) {
      GlobalPoolWidth pool(width);
      auto victim = attacks::make_attacked_trng(sc.attack, sc.divider);
      HealthEngine engine{ContinuousHealthConfig{}};
      const auto lat =
          measure_detection_latency(victim, engine, 2 * kLatencyBudgets[i]);
      ASSERT_TRUE(lat.detected) << sc.name << " width " << width;
      latencies.push_back(lat.bits);
    }
    EXPECT_EQ(latencies[0], latencies[1]) << sc.name;
    EXPECT_EQ(latencies[0], latencies[2]) << sc.name;
  }
}

TEST(ContinuousHealthDetection, LatencyInvariantAcrossBlockSizes) {
  // Alarms fire at exact bit indices, so the measured latency cannot
  // depend on the pull granularity.
  const auto& sc = attacks::injection_scenarios()[1];
  std::vector<std::size_t> latencies;
  for (const std::size_t block_bits : {333u, 1024u, 4096u}) {
    auto victim = attacks::make_attacked_trng(sc.attack, sc.divider);
    HealthEngine engine{ContinuousHealthConfig{}};
    const auto lat = measure_detection_latency(victim, engine,
                                               2 * kLatencyBudgets[1],
                                               block_bits);
    ASSERT_TRUE(lat.detected) << "block " << block_bits;
    latencies.push_back(lat.bits);
  }
  EXPECT_EQ(latencies[0], latencies[1]);
  EXPECT_EQ(latencies[0], latencies[2]);
}

TEST(ContinuousHealthDetection, StrongLockBeatsPartialLock) {
  // Stronger entrainment must not detect SLOWER: the ordering of the
  // scenario latencies is part of the physical story.
  const auto scenarios = attacks::injection_scenarios();
  std::vector<std::size_t> latencies;
  for (std::size_t i = 0; i < 2; ++i) {
    auto victim = attacks::make_attacked_trng(scenarios[i].attack,
                                              scenarios[i].divider);
    HealthEngine engine{ContinuousHealthConfig{}};
    const auto lat = measure_detection_latency(victim, engine,
                                               2 * kLatencyBudgets[i]);
    ASSERT_TRUE(lat.detected);
    latencies.push_back(lat.bits);
  }
  EXPECT_LT(latencies[0], latencies[1]);
}

TEST(ContinuousHealthDetection, UnattackedVictimStaysQuiet) {
  // Control: the same construction with a null attack does not alarm
  // within the largest scenario budget.
  attacks::InjectionAttack null_attack;
  null_attack.coupling = 0.0;
  null_attack.modulation_depth = 0.0;
  auto victim = attacks::make_attacked_trng(null_attack, 200);
  HealthEngine engine{ContinuousHealthConfig{}};
  const auto lat = measure_detection_latency(victim, engine, 40'960);
  EXPECT_FALSE(lat.detected);
}

}  // namespace
}  // namespace ptrng::trng
