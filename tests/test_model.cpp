// Unit tests for the model layer: multilevel pipeline, independence
// battery on known processes, legacy-vs-refined accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "model/ensemble.hpp"
#include "model/independence.hpp"
#include "model/legacy_models.hpp"
#include "model/multilevel_model.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "oscillator/ring_oscillator.hpp"
#include "phase_noise/isf.hpp"
#include "stat_tolerance.hpp"
#include "transistor/technology.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::model;

TEST(MultilevelModel, FromCoefficientsReproducesPaperNumbers) {
  using namespace ptrng::oscillator;
  const auto m = MultilevelModel::from_coefficients(paper::b_th, paper::b_fl,
                                                    paper::f0);
  EXPECT_NEAR(m.thermal_jitter() * 1e12, 15.89, 0.05);
  EXPECT_NEAR(m.independence_threshold(0.95), 281.0, 2.0);
  EXPECT_NEAR(m.thermal_ratio(5354.0), 0.5, 0.001);
  EXPECT_EQ(m.provenance(), "coefficients");
}

TEST(MultilevelModel, FromTechnologyProducesForwardPrediction) {
  const auto& node = transistor::technology_node("130nm");
  const auto isf = phase_noise::Isf::ring_typical(5);
  const auto m = MultilevelModel::from_technology(node, 5, isf);
  EXPECT_GT(m.phase_psd().b_th(), 0.0);
  EXPECT_GT(m.phase_psd().b_fl(), 0.0);
  EXPECT_GT(m.independence_threshold(0.95), 1.0);
  EXPECT_EQ(m.provenance(), "technology:130nm");
}

TEST(MultilevelModel, TechnologyShrinkLowersThreshold) {
  const auto isf = phase_noise::Isf::ring_typical(5);
  const auto big = MultilevelModel::from_technology(
      transistor::technology_node("350nm"), 5, isf);
  const auto small = MultilevelModel::from_technology(
      transistor::technology_node("28nm"), 5, isf);
  EXPECT_LT(small.independence_threshold(0.95),
            big.independence_threshold(0.95));
}

TEST(MultilevelModel, EntropyVarianceIsThermalOnly) {
  using namespace ptrng::oscillator;
  const auto m = MultilevelModel::from_coefficients(paper::b_th, paper::b_fl,
                                                    paper::f0);
  EXPECT_NEAR(m.entropy_variance(1000.0),
              1000.0 * paper::b_th / paper::f0, 1e-12);
}

TEST(Independence, WhiteJitterPasses) {
  GaussianSampler g(1);
  std::vector<double> j(200'000);
  for (auto& v : j) v = g() * 1e-12;
  const auto report = analyze_independence(j);
  EXPECT_TRUE(report.consistent_with_independence);
  EXPECT_LT(report.bienayme_z, 5.0);
  EXPECT_FALSE(report.summary().empty());
}

TEST(Independence, FlickerJitterFails) {
  // Paper-strength flicker, sampled long enough that correlations are in
  // reach of the battery.
  oscillator::RingOscillatorConfig cfg =
      oscillator::paper_single_config(2);
  cfg.b_th = 0.0;  // flicker only: maximally dependent
  cfg.b_fl = oscillator::paper::b_fl * 100.0;
  cfg.flicker_floor_ratio = 1e-5;
  oscillator::RingOscillator osc(cfg);
  std::vector<double> j(400'000);
  for (auto& v : j) v = osc.next_period().jitter();
  const auto report = analyze_independence(j, 16384, 64);
  EXPECT_FALSE(report.consistent_with_independence);
  EXPECT_GT(report.bienayme_z, 5.0);
}

TEST(Independence, MixedJitterFailsViaBienaymeAtLargeBlocks) {
  // The paper's scenario: thermal + flicker passes short-lag tests but
  // the Bienayme ratio diverges at large block sizes.
  oscillator::RingOscillatorConfig cfg =
      oscillator::paper_single_config(3);
  cfg.b_th = oscillator::paper::b_th;
  cfg.b_fl = oscillator::paper::b_fl * 30.0;  // accelerate the crossover
  cfg.flicker_floor_ratio = 1e-5;
  oscillator::RingOscillator osc(cfg);
  std::vector<double> j(1'000'000);
  for (auto& v : j) v = osc.next_period().jitter();
  const auto report = analyze_independence(j, 32768, 32);
  // The worst |ratio - 1| must clear the z = 5 H0 envelope of the
  // sparsest sweep point (the largest block holds only n/32768 ~ 30
  // samples) — anything below that band could be estimator noise, not
  // flicker memory. The flicker divergence exceeds it ~80x.
  std::size_t min_samples = j.size();
  for (const auto& pt : report.bienayme)
    min_samples = std::min(min_samples, pt.samples);
  EXPECT_GT(report.bienayme_defect,
            ptrng::testing::variance_ratio_tol(min_samples));
  EXPECT_GT(report.bienayme_z, 5.0);
}

TEST(LegacyModels, NaiveAccumulatesTotalVariance) {
  NaiveWhiteModel naive(4e-24, 100e6);
  EXPECT_DOUBLE_EQ(naive.sigma2_n(10.0), 2.0 * 10.0 * 4e-24);
  EXPECT_DOUBLE_EQ(naive.accumulated_cycle_variance(100.0),
                   100.0 * 4e-24 * 1e16);
  EXPECT_DOUBLE_EQ(naive.sigma2_period(), 4e-24);
  EXPECT_DOUBLE_EQ(naive.f0(), 100e6);
}

TEST(LegacyModels, RefinedKeepsOnlyThermal) {
  using namespace ptrng::oscillator;
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const RefinedThermalModel refined(psd);
  EXPECT_DOUBLE_EQ(refined.accumulated_cycle_variance(50.0),
                   50.0 * paper::b_th / paper::f0);
  // Full sigma^2_N keeps both components (the model is honest about the
  // measured curve, only entropy accounting drops flicker).
  EXPECT_GT(refined.sigma2_n(1e5), psd.sigma2_n_thermal(1e5));
}

TEST(LegacyModels, NaiveFromPsdOverestimatesEntropyVariance) {
  // The paper's warning quantified: the naive model's accumulated
  // variance exceeds the refined thermal-only variance, and the excess
  // grows with b_fl.
  using namespace ptrng::oscillator;
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const auto naive = naive_from_psd(psd);
  const RefinedThermalModel refined(psd);
  const double k = 1000.0;
  EXPECT_GT(naive.accumulated_cycle_variance(k),
            refined.accumulated_cycle_variance(k));

  const phase_noise::PhasePsd psd_more_flicker(paper::b_th,
                                               10.0 * paper::b_fl, paper::f0);
  const auto naive2 = naive_from_psd(psd_more_flicker);
  EXPECT_GT(naive2.accumulated_cycle_variance(k),
            naive.accumulated_cycle_variance(k));
}

TEST(LegacyModels, ModelsAgreeWhenFlickerAbsent) {
  const phase_noise::PhasePsd psd(276.0, 0.0, 103e6);
  const auto naive = naive_from_psd(psd);
  const RefinedThermalModel refined(psd);
  for (double k : {1.0, 10.0, 1000.0}) {
    EXPECT_NEAR(naive.accumulated_cycle_variance(k),
                refined.accumulated_cycle_variance(k),
                1e-9 * naive.accumulated_cycle_variance(k));
  }
}

class BienaymeToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(BienaymeToleranceSweep, VerdictRespectsThreshold) {
  GaussianSampler g(4);
  std::vector<double> j(100'000);
  for (auto& v : j) v = g();
  const auto report = analyze_independence(j, 2048, 32, GetParam());
  // White noise should pass at any reasonable z threshold.
  EXPECT_TRUE(report.consistent_with_independence)
      << "z threshold " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Tolerances, BienaymeToleranceSweep,
                         ::testing::Values(5.0, 6.0, 10.0));

TEST(Ensemble, ParallelSweepIsBitIdenticalAcrossThreadCounts) {
  EnsembleConfig cfg;
  cfg.pairs = 4;
  cfg.samples = 8192;
  cfg.seed = 0xbeef;

  auto run_with_width = [&](std::size_t width) {
    ThreadPool::global().resize(width);
    auto report = analyze_pair_ensemble(cfg);
    ThreadPool::global().resize(0);
    return report;
  };
  const auto one = run_with_width(1);
  const auto eight = run_with_width(8);

  ASSERT_EQ(one.pair_count(), 4u);
  ASSERT_EQ(one.pair_count(), eight.pair_count());
  EXPECT_EQ(one.consistent, eight.consistent);
  EXPECT_EQ(one.max_bienayme_z, eight.max_bienayme_z);  // bit-identical
  for (std::size_t p = 0; p < one.pair_count(); ++p) {
    EXPECT_EQ(one.reports[p].bienayme_z, eight.reports[p].bienayme_z);
    EXPECT_EQ(one.reports[p].bienayme_defect,
              eight.reports[p].bienayme_defect);
    EXPECT_EQ(one.reports[p].ljung_box.statistic,
              eight.reports[p].ljung_box.statistic);
  }
  EXPECT_FALSE(one.summary().empty());
}

TEST(Ensemble, ThermalOnlyPairsLookIndependent) {
  // The paper's verdict at ensemble scale: with flicker off, every
  // device's jitter is consistent with mutual independence.
  EnsembleConfig cfg;
  cfg.pairs = 4;
  cfg.samples = 16'384;
  cfg.flicker_scale = 0.0;
  cfg.seed = 0xfeed;
  const auto report = analyze_pair_ensemble(cfg);
  EXPECT_EQ(report.consistent, report.pair_count());
}

TEST(Ensemble, RejectsBadConfig) {
  EnsembleConfig cfg;
  cfg.samples = 512;  // analyze_independence needs >= 1024
  EXPECT_THROW(analyze_pair_ensemble(cfg), ContractViolation);
}

}  // namespace
