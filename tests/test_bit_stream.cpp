// The bit-stream pipeline layer (trng/bit_stream.hpp): batched sources
// vs their per-bit streams (at 1 and 8 threads), streaming transforms vs
// the legacy batch free functions, and pipeline composition/carry-state
// semantics across block boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "noise/sampler_policy.hpp"
#include "trng/bit_stream.hpp"
#include "trng/ero_trng.hpp"
#include "trng/multi_ring.hpp"
#include "trng/online_test.hpp"
#include "trng/postprocess.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

class GlobalPoolWidth {
 public:
  explicit GlobalPoolWidth(std::size_t width) {
    ThreadPool::global().resize(width);
  }
  ~GlobalPoolWidth() { ThreadPool::global().resize(0); }
};

/// Ideal iid BitSource for transform/pipeline tests.
class RngBitSource final : public BitSource {
 public:
  explicit RngBitSource(std::uint64_t seed) : rng_(seed) {}
  std::uint8_t next_bit() override {
    return static_cast<std::uint8_t>(rng_.next() & 1u);
  }

 private:
  Xoshiro256pp rng_;
};

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  RngBitSource src(seed);
  return src.generate_bits(n);
}

// --- (a) generate_into == repeated next_bit, at 1 and 8 threads ----------

TEST(BitSourceBatch, EroGenerateIntoMatchesNextBit) {
  for (std::size_t width : {1u, 8u}) {
    GlobalPoolWidth pool(width);
    auto a = paper_trng(40, 21);
    auto b = paper_trng(40, 21);
    const std::size_t n = 20'000;
    std::vector<std::uint8_t> batched(n), stepped(n);
    a.generate_into(batched);
    for (auto& bit : stepped) bit = b.next_bit();
    EXPECT_EQ(batched, stepped) << "width " << width;
  }
}

TEST(BitSourceBatch, MultiRingGenerateIntoMatchesNextBit) {
  for (std::size_t width : {1u, 8u}) {
    GlobalPoolWidth pool(width);
    auto a = paper_multi_ring(4, 60, 22);
    auto b = paper_multi_ring(4, 60, 22);
    const std::size_t n = 20'000;
    std::vector<std::uint8_t> batched(n), stepped(n);
    a.generate_into(batched);
    for (auto& bit : stepped) bit = b.next_bit();
    EXPECT_EQ(batched, stepped) << "width " << width;
  }
}

TEST(BitSourceBatch, MultiRingBatchBitIdenticalAcrossThreadCounts) {
  std::vector<std::uint8_t> one(30'000), eight(30'000);
  {
    GlobalPoolWidth pool(1);
    auto gen = paper_multi_ring(8, 60, 23);
    gen.generate_into(one);
  }
  {
    GlobalPoolWidth pool(8);
    auto gen = paper_multi_ring(8, 60, 23);
    gen.generate_into(eight);
  }
  EXPECT_EQ(one, eight);
}

TEST(BitSourceBatch, InterleavingBatchAndNextBitContinuesOneStream) {
  // next_bit / generate_into pull consecutive bits of the SAME stream.
  auto a = paper_multi_ring(2, 60, 24);
  auto b = paper_multi_ring(2, 60, 24);
  std::vector<std::uint8_t> mixed;
  mixed.reserve(3000);
  for (int i = 0; i < 500; ++i) mixed.push_back(a.next_bit());
  std::vector<std::uint8_t> block(2000);
  a.generate_into(block);
  mixed.insert(mixed.end(), block.begin(), block.end());
  for (int i = 0; i < 500; ++i) mixed.push_back(a.next_bit());
  EXPECT_EQ(mixed, b.generate_bits(3000));
}

// --- (b) each BitTransform == its legacy free function -------------------

TEST(Transforms, XorDecimateMatchesLegacyOneShot) {
  const auto bits = random_bits(100'003, 31);  // deliberately not a multiple
  for (std::size_t factor : {1u, 2u, 3u, 4u, 8u}) {
    XorDecimateTransform t(factor);
    std::vector<std::uint8_t> out;
    t.push(bits, out);
    EXPECT_EQ(out, xor_decimate(bits, factor)) << "factor " << factor;
  }
}

TEST(Transforms, VonNeumannMatchesLegacyOneShot) {
  for (std::size_t n : {2u, 7u, 100'001u}) {
    const auto bits = random_bits(n, 32);
    VonNeumannTransform t;
    std::vector<std::uint8_t> out;
    t.push(bits, out);
    EXPECT_EQ(out, von_neumann(bits)) << "n " << n;
  }
}

TEST(Transforms, ParityFilterMatchesLegacyOneShot) {
  const auto bits = random_bits(50'000, 33);
  ParityFilterTransform t(5);
  std::vector<std::uint8_t> out;
  t.push(bits, out);
  EXPECT_EQ(out, parity_filter(bits, 5));
}

TEST(Transforms, ChunkedPushesMatchOneShot) {
  // Carry state across block boundaries: feeding awkward odd-sized chunks
  // (including empty ones) must reproduce the one-shot output exactly.
  const auto bits = random_bits(10'007, 34);
  const std::size_t chunks[] = {1, 3, 7, 0, 64, 997, 2, 0, 5000, 10'007};
  auto run_chunked = [&](BitTransform& t) {
    std::vector<std::uint8_t> out;
    std::size_t pos = 0, k = 0;
    while (pos < bits.size()) {
      const std::size_t take =
          std::min(chunks[k % std::size(chunks)], bits.size() - pos);
      t.push(std::span<const std::uint8_t>(bits).subspan(pos, take), out);
      pos += take;
      ++k;
    }
    return out;
  };
  XorDecimateTransform x3(3);
  EXPECT_EQ(run_chunked(x3), xor_decimate(bits, 3));
  VonNeumannTransform vn;
  EXPECT_EQ(run_chunked(vn), von_neumann(bits));
}

TEST(Transforms, OneBitPushesMatchOneShot) {
  // Fully adversarial carry: the entire stream fed ONE BIT AT A TIME,
  // with an empty push between every bit, must equal the one-shot path
  // (the cell-array decimator pulls through exactly this machinery).
  const auto bits = random_bits(4001, 36);
  VonNeumannTransform vn;
  XorDecimateTransform x16(16);
  std::vector<std::uint8_t> vn_out, x16_out;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const std::span<const std::uint8_t> one(bits.data() + i, 1);
    vn.push(one, vn_out);
    vn.push({}, vn_out);
    x16.push(one, x16_out);
    x16.push({}, x16_out);
  }
  EXPECT_EQ(vn_out, von_neumann(bits));
  EXPECT_EQ(x16_out, xor_decimate(bits, 16));
}

TEST(Transforms, PrimeChunkSchedulesMatchOneShot) {
  // Prime-sized chunks never align with the factor-16 group size or the
  // von Neumann pair boundary, so every push leaves carried state.
  const auto bits = random_bits(20'011, 37);
  const std::size_t primes[] = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31};
  for (std::size_t factor : {2u, 4u, 16u}) {
    XorDecimateTransform t(factor);
    VonNeumannTransform vn;
    std::vector<std::uint8_t> t_out, vn_out;
    std::size_t pos = 0, k = 0;
    while (pos < bits.size()) {
      const std::size_t take =
          std::min(primes[k % std::size(primes)], bits.size() - pos);
      const auto chunk = std::span<const std::uint8_t>(bits).subspan(pos, take);
      t.push(chunk, t_out);
      vn.push(chunk, vn_out);
      pos += take;
      ++k;
    }
    EXPECT_EQ(t_out, xor_decimate(bits, factor)) << "factor " << factor;
    EXPECT_EQ(vn_out, von_neumann(bits));
  }
}

TEST(Transforms, CellArrayDecimatorChainStableUnderTinyBlocks) {
  // The cell-array's 64x chain (von Neumann + parity over 16) pumped in
  // 1-bit raw blocks equals the 4096-bit pumping bit for bit.
  auto run = [](std::size_t block_bits) {
    RngBitSource src(38);
    Pipeline pipe(src, block_bits);
    pipe.add_transform(std::make_unique<VonNeumannTransform>())
        .add_transform(std::make_unique<XorDecimateTransform>(16));
    return pipe.generate_bits(400);
  };
  const auto reference = run(4096);
  EXPECT_EQ(run(1), reference);
  EXPECT_EQ(run(61), reference);
}

TEST(Transforms, ResetDropsCarriedState) {
  XorDecimateTransform t(4);
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> open{1, 1};
  const std::vector<std::uint8_t> group{0, 0, 0, 0};
  t.push(open, out);  // open group of 2
  t.reset();
  t.push(group, out);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0}));
  EXPECT_THROW(XorDecimateTransform(0), ContractViolation);
}

// --- (c) pipeline composition order and cross-block carry ----------------

TEST(Pipeline, AppliesTransformsInInsertionOrder) {
  // xor/2 then von Neumann != von Neumann then xor/2; each pipeline must
  // match the equivalent free-function composition on the raw stream it
  // actually consumed.
  for (bool xor_first : {true, false}) {
    RngBitSource src(41);
    Pipeline pipe(src, /*block_bits=*/1024);
    if (xor_first) {
      pipe.add_transform(std::make_unique<XorDecimateTransform>(2))
          .add_transform(std::make_unique<VonNeumannTransform>());
    } else {
      pipe.add_transform(std::make_unique<VonNeumannTransform>())
          .add_transform(std::make_unique<XorDecimateTransform>(2));
    }
    const auto piped = pipe.generate_bits(4000);
    const auto raw = random_bits(pipe.raw_bits(), 41);  // same seed/stream
    const auto manual =
        xor_first ? von_neumann(xor_decimate(raw, 2))
                  : xor_decimate(von_neumann(raw), 2);
    ASSERT_GE(manual.size(), piped.size());
    EXPECT_TRUE(std::equal(piped.begin(), piped.end(), manual.begin()))
        << "xor_first " << xor_first;
  }
}

TEST(Pipeline, OddBlockSizesDontChangeTheStream) {
  // Von Neumann pairs and XOR groups spanning block boundaries: a
  // pipeline pumping 101-bit raw blocks equals one pumping 4096-bit
  // blocks bit for bit.
  auto run = [](std::size_t block_bits) {
    RngBitSource src(42);
    Pipeline pipe(src, block_bits);
    pipe.add_transform(std::make_unique<VonNeumannTransform>())
        .add_transform(std::make_unique<XorDecimateTransform>(3));
    return pipe.generate_bits(3000);
  };
  EXPECT_EQ(run(101), run(4096));
  EXPECT_EQ(run(1), run(4096));
}

TEST(Pipeline, EmptyPipelineIsPassthrough) {
  RngBitSource src(43);
  Pipeline pipe(src, 257);
  EXPECT_EQ(pipe.generate_bits(5000), random_bits(5000, 43));
}

TEST(Pipeline, NestsAsABitSource) {
  // A pipeline is itself a BitSource, so pipelines compose.
  RngBitSource src(44);
  Pipeline inner(src, 512);
  inner.add_transform(std::make_unique<XorDecimateTransform>(2));
  Pipeline outer(inner, 128);
  outer.add_transform(std::make_unique<XorDecimateTransform>(2));
  const auto nested = outer.generate_bits(2000);
  const auto raw = random_bits(inner.raw_bits(), 44);
  const auto manual = xor_decimate(xor_decimate(raw, 2), 2);
  ASSERT_GE(manual.size(), nested.size());
  EXPECT_TRUE(std::equal(nested.begin(), nested.end(), manual.begin()));
}

TEST(Pipeline, MonitorTapWatchesRawStream) {
  // Healthy iid source: per-256-bit-window ones counts have variance
  // 256/4 = 64; a monitor calibrated to that reference must not alarm.
  OnlineTestConfig cfg;
  cfg.n_cycles = 256;
  cfg.windows_per_test = 32;
  cfg.reference_sigma2 = 64.0;
  cfg.false_alarm = 1e-6;
  ThermalNoiseMonitor healthy(cfg, /*f0=*/1.0);

  RngBitSource src(45);
  Pipeline pipe(src, 1024);
  pipe.add_transform(std::make_unique<XorDecimateTransform>(2));
  pipe.set_monitor(&healthy);
  const auto out = pipe.generate_bits(100'000);
  EXPECT_EQ(out.size(), 100'000u);
  EXPECT_GE(pipe.raw_bits(), 200'000u);
  EXPECT_GT(healthy.decisions(), 15u);
  EXPECT_EQ(pipe.alarms(), 0u);

  // A locked (constant) source collapses the window variance to zero:
  // every completed decision must alarm, even though the pipeline's
  // post-processing hides the lock-up downstream.
  class ConstantSource final : public BitSource {
   public:
    std::uint8_t next_bit() override { return 1; }
  } locked;
  ThermalNoiseMonitor watchdog(cfg, /*f0=*/1.0);
  Pipeline bad(locked, 1024);
  bad.add_transform(std::make_unique<XorDecimateTransform>(2));
  bad.set_monitor(&watchdog);
  (void)bad.generate_bits(50'000);
  EXPECT_GT(watchdog.decisions(), 0u);
  EXPECT_EQ(bad.alarms(), watchdog.decisions());
}

TEST(Pipeline, RejectsBadConfig) {
  RngBitSource src(46);
  EXPECT_THROW(Pipeline(src, 0), ContractViolation);
  Pipeline pipe(src);
  EXPECT_THROW(pipe.add_transform(nullptr), ContractViolation);
  EXPECT_THROW(pipe.generate_bits(0), ContractViolation);
}

// --- (d) byte-first output path ------------------------------------------

TEST(ByteApi, PackUnpackRoundTripMsbFirst) {
  const auto bits = random_bits(8 * 257, 47);
  std::vector<std::byte> bytes(bits.size() / 8);
  pack_bits_msb_first(bits, bytes);
  // Spot-check the convention: bit 0 lands in the MSB of byte 0.
  std::uint8_t b0 = 0;
  for (int i = 0; i < 8; ++i)
    b0 = static_cast<std::uint8_t>((b0 << 1) | bits[static_cast<size_t>(i)]);
  EXPECT_EQ(bytes[0], std::byte{b0});
  std::vector<std::uint8_t> back(bits.size());
  unpack_bits_msb_first(bytes, back);
  EXPECT_EQ(back, bits);
}

TEST(ByteApi, PackUnpackExhaustiveSingleBytePatterns) {
  // Every 8-bit pattern round-trips through pack -> unpack -> pack.
  for (unsigned v = 0; v < 256; ++v) {
    std::vector<std::uint8_t> bits(8);
    for (int i = 0; i < 8; ++i)
      bits[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((v >> (7 - i)) & 1u);
    std::vector<std::byte> byte(1);
    pack_bits_msb_first(bits, byte);
    EXPECT_EQ(byte[0], static_cast<std::byte>(v));
    std::vector<std::uint8_t> back(8);
    unpack_bits_msb_first(byte, back);
    EXPECT_EQ(back, bits) << "pattern " << v;
  }
}

TEST(ByteApi, PackUnpackRoundTripAcrossSizes) {
  // 0-length and every byte count up to 64 round-trip exactly; bit
  // values other than {0,1} only contribute their low bit.
  pack_bits_msb_first({}, {});  // 0-length is a valid no-op
  unpack_bits_msb_first({}, {});
  for (std::size_t n_bytes = 0; n_bytes <= 64; ++n_bytes) {
    const auto bits = n_bytes ? random_bits(8 * n_bytes, 52 + n_bytes)
                              : std::vector<std::uint8_t>{};
    std::vector<std::byte> bytes(n_bytes);
    pack_bits_msb_first(bits, bytes);
    std::vector<std::uint8_t> back(8 * n_bytes);
    unpack_bits_msb_first(bytes, back);
    EXPECT_EQ(back, bits) << "n_bytes " << n_bytes;
  }
}

TEST(ByteApi, PackUnpackRejectNonMultipleOf8) {
  // bits.size() must be exactly 8 * bytes.size(); anything else is a
  // contract violation, not silent truncation.
  std::vector<std::uint8_t> bits(9);
  std::vector<std::byte> bytes(1);
  EXPECT_THROW(pack_bits_msb_first(bits, bytes), ContractViolation);
  EXPECT_THROW(unpack_bits_msb_first(bytes, bits), ContractViolation);
  bits.resize(7);
  EXPECT_THROW(pack_bits_msb_first(bits, bytes), ContractViolation);
  EXPECT_THROW(unpack_bits_msb_first(bytes, bits), ContractViolation);
  bits.resize(8);
  EXPECT_NO_THROW(pack_bits_msb_first(bits, bytes));
  EXPECT_THROW(pack_bits_msb_first(bits, {}), ContractViolation);
}

TEST(ByteApi, FillBytesMatchesPackedBitStream) {
  // The default BitSource byte path and the Pipeline fast path must both
  // equal pack(generate_bits) on the same stream.
  const std::size_t n_bytes = 4099;  // not a multiple of the staging chunk
  RngBitSource a(48), b(48);
  const auto bytes = a.generate_bytes(n_bytes);
  const auto bits = b.generate_bits(8 * n_bytes);
  std::vector<std::byte> packed(n_bytes);
  pack_bits_msb_first(bits, packed);
  EXPECT_EQ(bytes, packed);

  RngBitSource c(49), d(49);
  Pipeline pipe_bytes(c, 1024), pipe_bits(d, 1024);
  pipe_bytes.add_transform(std::make_unique<XorDecimateTransform>(2));
  pipe_bits.add_transform(std::make_unique<XorDecimateTransform>(2));
  const auto pb = pipe_bytes.generate_bytes(n_bytes);
  const auto pbits = pipe_bits.generate_bits(8 * n_bytes);
  std::vector<std::byte> ppacked(n_bytes);
  pack_bits_msb_first(pbits, ppacked);
  EXPECT_EQ(pb, ppacked);
}

TEST(ByteApi, InterleavingBytesAndBitsContinuesOneStream) {
  // fill_bytes consumes whole bytes of the same underlying bit stream, so
  // bytes-then-bits equals the contiguous bit stream.
  RngBitSource a(50), b(50);
  std::vector<std::byte> head(64);
  a.fill_bytes(head);
  const auto tail = a.generate_bits(100);
  const auto all = b.generate_bits(8 * 64 + 100);
  std::vector<std::byte> head_ref(64);
  pack_bits_msb_first(std::span<const std::uint8_t>(all).first(8 * 64),
                      head_ref);
  EXPECT_EQ(head, head_ref);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), all.begin() + 8 * 64));
}

TEST(ByteApi, DeprecatedGenerateShimIsByteIdentical) {
  // The legacy generate() alias must stay bit-identical to generate_bits
  // for its one-release deprecation window.
  RngBitSource a(51), b(51);
  PTRNG_SUPPRESS_DEPRECATED_BEGIN
  const auto legacy = a.generate(12'345);
  PTRNG_SUPPRESS_DEPRECATED_END
  EXPECT_EQ(legacy, b.generate_bits(12'345));
}

}  // namespace
