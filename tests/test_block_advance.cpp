// Statistical-equivalence tests for the exact block-advance fast paths:
// FilterBankFlicker::advance_sum and RingOscillator::advance_periods must
// be indistinguishable (in distribution) from stepping sample by sample.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "noise/filter_bank.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "oscillator/ring_oscillator.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"

namespace {

using namespace ptrng;

noise::FilterBankFlicker::Config flicker_config(std::uint64_t seed) {
  noise::FilterBankFlicker::Config cfg;
  cfg.amplitude = 1e-2;
  cfg.fs = 1.0;
  cfg.f_min = 1e-4;
  cfg.f_max = 0.25;
  cfg.seed = seed;
  return cfg;
}

TEST(BlockAdvance, FlickerSumVarianceMatchesStepping) {
  // Var over many disjoint k-blocks: stepping vs block path.
  const std::size_t k = 64;
  const std::size_t trials = 4000;
  noise::FilterBankFlicker stepper(flicker_config(1));
  noise::FilterBankFlicker jumper(flicker_config(2));
  stats::RunningStats step_stats, jump_stats;
  for (std::size_t t = 0; t < trials; ++t) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += stepper.next();
    step_stats.add(sum);
    jump_stats.add(jumper.advance_sum(k));
  }
  EXPECT_NEAR(jump_stats.variance() / step_stats.variance(), 1.0, 0.15);
  // Consecutive k-sums of 1/f noise stay correlated out to the f_min
  // corner (1/f_min = 1e4 samples ~ 156 blocks of k = 64), so the iid
  // sd/sqrt(trials) band would be ~12x too tight (stat_tolerance.hpp
  // header rule): use the effective trial count trials/156 with z = 5.
  const double eff_trials = double(trials) / (1.0 / 1e-4 / double(k));
  EXPECT_NEAR(jump_stats.mean(), 0.0,
              5.0 * step_stats.stddev() / std::sqrt(eff_trials));
}

TEST(BlockAdvance, FlickerBlockPreservesLongRangeCorrelation) {
  // Consecutive k-sums of 1/f noise are positively correlated; the block
  // path must reproduce that correlation, not just the marginal variance.
  const std::size_t k = 128;
  const std::size_t pairs = 6000;
  noise::FilterBankFlicker stepper(flicker_config(3));
  noise::FilterBankFlicker jumper(flicker_config(4));
  std::vector<double> s1, s2, j1, j2;
  for (std::size_t t = 0; t < pairs; ++t) {
    double a = 0.0, b = 0.0;
    for (std::size_t i = 0; i < k; ++i) a += stepper.next();
    for (std::size_t i = 0; i < k; ++i) b += stepper.next();
    s1.push_back(a);
    s2.push_back(b);
    j1.push_back(jumper.advance_sum(k));
    j2.push_back(jumper.advance_sum(k));
  }
  const double corr_step = stats::correlation(s1, s2);
  const double corr_jump = stats::correlation(j1, j2);
  EXPECT_GT(corr_step, 0.2);  // 1/f: adjacent sums clearly correlated
  EXPECT_NEAR(corr_jump, corr_step, 0.12);
}

TEST(BlockAdvance, MixedBlockAndStepSequenceIsStationary) {
  // Interleave next() and advance_sum(): the per-sample variance after a
  // jump must match the stationary variance (state update is exact).
  noise::FilterBankFlicker gen(flicker_config(5));
  stats::RunningStats after_jump, baseline;
  for (int t = 0; t < 20000; ++t) {
    baseline.add(gen.next());
    (void)gen.advance_sum(32);
    after_jump.add(gen.next());
  }
  EXPECT_NEAR(after_jump.variance() / baseline.variance(), 1.0, 0.1);
}

TEST(BlockAdvance, OscillatorElapsedTimeMomentsMatch) {
  // Thermal-only oscillator: elapsed time over k periods is
  // N(k*t_nom, k*sigma^2) on both paths.
  oscillator::RingOscillatorConfig cfg = oscillator::paper_single_config(6);
  cfg.b_fl = 0.0;
  const std::size_t k = 1000;
  const std::size_t trials = 3000;

  oscillator::RingOscillator stepper(cfg);
  cfg.seed ^= 0x1234;
  oscillator::RingOscillator jumper(cfg);
  stats::RunningStats step_stats, jump_stats;
  for (std::size_t t = 0; t < trials; ++t) {
    const double t0 = stepper.edge_time();
    for (std::size_t i = 0; i < k; ++i) stepper.next_period();
    step_stats.add(stepper.edge_time() - t0);

    const double t1 = jumper.edge_time();
    jumper.advance_periods(k);
    jump_stats.add(jumper.edge_time() - t1);
  }
  // CI-width band for the ratio of two independent sample means of
  // N(k*t_nom, k*sigma_th^2) over `trials` trials each:
  // sd(mean)/mean = sigma_th/(t_nom*sqrt(k*trials)) per stream, sqrt(2)
  // for the difference of two, z = 5 (stat_tolerance conventions).
  const double mean_ratio_tol =
      5.0 * std::sqrt(2.0) * stepper.sigma_thermal() /
      (stepper.nominal_period() *
       std::sqrt(double(k) * double(trials)));
  EXPECT_NEAR(jump_stats.mean() / step_stats.mean(), 1.0, mean_ratio_tol);
  EXPECT_NEAR(jump_stats.variance() / step_stats.variance(), 1.0, 0.15);
  EXPECT_EQ(jumper.cycle_count(), stepper.cycle_count());
}

TEST(BlockAdvance, OscillatorSigma2NUnaffectedByJumpSize) {
  // sigma^2_N built from 256-period block sums must match theory whether
  // the blocks are made of 4x64-jumps or one 256-jump.
  auto run = [](std::size_t jump, std::uint64_t seed) {
    oscillator::RingOscillatorConfig cfg =
        oscillator::paper_single_config(seed);
    oscillator::RingOscillator osc(cfg);
    std::vector<double> sums;
    for (int t = 0; t < 4000; ++t) {
      const double t0 = osc.edge_time();
      for (std::size_t j = 0; j < 256 / jump; ++j) osc.advance_periods(jump);
      sums.push_back(osc.edge_time() - t0);
    }
    return stats::variance(sums);
  };
  const double v64 = run(64, 7);
  const double v256 = run(256, 8);
  EXPECT_NEAR(v64 / v256, 1.0, 0.25);
}

TEST(BlockAdvance, ModulatedAdvanceTracksStepping) {
  // With a slow deterministic modulation, the chunked fast path must land
  // on the same mean elapsed time as stepping.
  auto make = [](std::uint64_t seed) {
    oscillator::RingOscillatorConfig cfg =
        oscillator::paper_single_config(seed);
    cfg.b_fl = 0.0;
    cfg.b_th = 1e-6;  // nearly deterministic: isolate the modulation
    return oscillator::RingOscillator(cfg);
  };
  auto stepper = make(9);
  auto jumper = make(10);
  auto mod = [](double t) {
    return 1e-3 * std::sin(2.0 * M_PI * 50e3 * t);
  };
  stepper.set_modulation(mod);
  jumper.set_modulation(mod);
  for (int i = 0; i < 20000; ++i) stepper.next_period();
  jumper.advance_periods(20000);
  EXPECT_NEAR(jumper.edge_time() / stepper.edge_time(), 1.0, 1e-6);
}

}  // namespace
