// Unit tests for the oscillator simulators: calibration identities
// (Var(J_th) = b_th/f0^3), sigma^2_N shape against Eq. 11, mismatch,
// modulation hook, gate-chain aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "measurement/sn_process.hpp"
#include "oscillator/gate_chain.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "oscillator/ring_oscillator.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

TEST(RingOscillator, ThermalVarianceCalibration) {
  RingOscillatorConfig cfg;
  cfg.f0 = 103e6;
  cfg.b_th = 276.04;
  cfg.b_fl = 0.0;
  cfg.seed = 1;
  RingOscillator osc(cfg);
  stats::RunningStats rs;
  for (int i = 0; i < 400000; ++i) rs.add(osc.next_period().jitter());
  const double expected = cfg.b_th / (cfg.f0 * cfg.f0 * cfg.f0);
  EXPECT_NEAR(rs.variance() / expected, 1.0, 0.02);
  EXPECT_NEAR(rs.mean(), 0.0, 1e-14);
  // sigma_th accessor agrees.
  EXPECT_NEAR(osc.sigma_thermal() * osc.sigma_thermal(), expected, 1e-30);
}

TEST(RingOscillator, MeanPeriodRespectsMismatch) {
  RingOscillatorConfig cfg;
  cfg.f0 = 100e6;
  cfg.b_th = 100.0;
  cfg.b_fl = 0.0;
  cfg.mismatch = 0.01;
  cfg.seed = 2;
  RingOscillator osc(cfg);
  stats::RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(osc.next_period().period);
  EXPECT_NEAR(rs.mean(), 1.0 / (100e6 * 1.01), 1e-12);
  EXPECT_DOUBLE_EQ(osc.nominal_period(), 1.0 / (100e6 * 1.01));
}

TEST(RingOscillator, EdgeTimeAccumulates) {
  RingOscillatorConfig cfg;
  cfg.f0 = 1e9;
  cfg.b_th = 1.0;
  cfg.b_fl = 0.0;
  cfg.seed = 3;
  RingOscillator osc(cfg);
  EXPECT_DOUBLE_EQ(osc.edge_time(), 0.0);
  EXPECT_EQ(osc.cycle_count(), 0u);
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) sum += osc.next_period().period;
  EXPECT_NEAR(osc.edge_time(), sum, 1e-18);
  EXPECT_EQ(osc.cycle_count(), 1000u);
}

TEST(RingOscillator, ThermalOnlySigma2NIsLinear) {
  RingOscillatorConfig cfg = paper_single_config(4);
  cfg.b_fl = 0.0;
  RingOscillator osc(cfg);
  std::vector<double> jitter(3'000'000);
  for (auto& j : jitter) j = osc.next_period().jitter();
  const std::vector<std::size_t> grid{10, 100, 1000};
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  ASSERT_EQ(sweep.size(), 3u);
  const auto psd = cfg.phase_psd();
  for (const auto& pt : sweep) {
    const double theory = psd.sigma2_n_thermal(static_cast<double>(pt.n));
    EXPECT_NEAR(pt.sigma2 / theory, 1.0, 0.1) << "N = " << pt.n;
  }
}

TEST(RingOscillator, FlickerAddsQuadraticComponent) {
  // With the paper's coefficients, sigma^2_N/N doubles between N = C and
  // far beyond; check the flicker excess at N = 2000 ~ 1 + 2000/5354.
  RingOscillatorConfig cfg = paper_single_config(5);
  cfg.b_th = oscillator::paper::b_th;  // use pair-level for signal
  cfg.b_fl = oscillator::paper::b_fl;
  RingOscillator osc(cfg);
  std::vector<double> jitter(4'000'000);
  for (auto& j : jitter) j = osc.next_period().jitter();
  const std::vector<std::size_t> grid{50, 2000};
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  ASSERT_EQ(sweep.size(), 2u);
  const auto psd = cfg.phase_psd();
  for (const auto& pt : sweep) {
    const double theory = psd.sigma2_n(static_cast<double>(pt.n));
    EXPECT_NEAR(pt.sigma2 / theory, 1.0, 0.25) << "N = " << pt.n;
  }
  // The per-N ratio grows: flicker present.
  const double r50 = sweep[0].sigma2 / static_cast<double>(sweep[0].n);
  const double r2000 = sweep[1].sigma2 / static_cast<double>(sweep[1].n);
  EXPECT_GT(r2000 / r50, 1.15);
}

TEST(RingOscillator, NextPeriodsMatchesSteppingExactly) {
  // The batched path must be bit-identical to stepping — thermal draws
  // from the same stream in the same order, flicker via the bank's
  // bit-exact fill. Interleave batches with single steps to pin the
  // state handoff.
  RingOscillatorConfig cfg = paper_single_config(0x0521);
  RingOscillator stepped(cfg), batched(cfg);

  std::vector<PeriodSample> expected(3000);
  for (auto& s : expected) s = stepped.next_period();

  std::vector<PeriodSample> got(expected.size());
  batched.next_periods(std::span<PeriodSample>(got).subspan(0, 1000));
  got[1000] = batched.next_period();
  batched.next_periods(std::span<PeriodSample>(got).subspan(1001));
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].period, expected[i].period) << "period " << i;
    ASSERT_EQ(got[i].thermal, expected[i].thermal) << "period " << i;
    ASSERT_EQ(got[i].flicker, expected[i].flicker) << "period " << i;
  }
  EXPECT_EQ(batched.edge_time(), stepped.edge_time());
  EXPECT_EQ(batched.cycle_count(), stepped.cycle_count());
}

TEST(RingOscillator, NextPeriodsWithModulationFallsBackToStepping) {
  RingOscillatorConfig cfg = paper_single_config(0x0522);
  RingOscillator stepped(cfg), batched(cfg);
  auto mod = [](double t) { return 1e-3 * std::sin(2.0 * M_PI * 1e6 * t); };
  stepped.set_modulation(mod);
  batched.set_modulation(mod);
  std::vector<PeriodSample> expected(500), got(500);
  for (auto& s : expected) s = stepped.next_period();
  batched.next_periods(got);
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i].period, expected[i].period) << "period " << i;
}

TEST(RingOscillator, ModulationShiftsMeanFrequency) {
  RingOscillatorConfig cfg;
  cfg.f0 = 100e6;
  cfg.b_th = 1e-3;
  cfg.b_fl = 0.0;
  cfg.seed = 6;
  RingOscillator osc(cfg);
  osc.set_modulation([](double) { return 1e-3; });  // +0.1% frequency
  stats::RunningStats rs;
  for (int i = 0; i < 10000; ++i) rs.add(osc.next_period().period);
  EXPECT_NEAR(rs.mean() * 100e6, 1.0 - 1e-3, 1e-5);
}

TEST(RingOscillator, GroundTruthDecompositionSums) {
  RingOscillatorConfig cfg = paper_single_config(7);
  RingOscillator osc(cfg);
  for (int i = 0; i < 1000; ++i) {
    const auto s = osc.next_period();
    EXPECT_NEAR(s.period,
                osc.nominal_period() + s.thermal + s.flicker, 1e-21);
  }
}

TEST(RingOscillator, RejectsBadConfig) {
  RingOscillatorConfig cfg;
  cfg.f0 = -1.0;
  EXPECT_THROW(RingOscillator o(cfg), ContractViolation);
  cfg = RingOscillatorConfig{};
  cfg.mismatch = 0.9;
  EXPECT_THROW(RingOscillator o(cfg), ContractViolation);
}

TEST(OscillatorPair, RelativeJitterVarianceIsSum) {
  auto pair = paper_pair(8, 0.0);
  const auto j = pair.relative_jitter(500000);
  stats::RunningStats rs;
  for (double v : j) rs.add(v);
  const auto psd = pair.pair_phase_psd();
  // Var(J1 - J2) ~ b_th_pair/f0^3 plus a small flicker short-term power.
  const double thermal_var =
      psd.b_th() / (psd.f0() * psd.f0() * psd.f0());
  EXPECT_GT(rs.variance(), thermal_var * 0.95);
  EXPECT_LT(rs.variance(), thermal_var * 1.6);
}

TEST(OscillatorPair, PaperPairMatchesPaperCoefficients) {
  auto pair = paper_pair(9);
  const auto psd = pair.pair_phase_psd();
  EXPECT_NEAR(psd.b_th(), paper::b_th, 1e-9);
  EXPECT_NEAR(psd.b_fl(), paper::b_fl, 1e-3);
  EXPECT_DOUBLE_EQ(psd.f0(), paper::f0);
}

TEST(OscillatorPair, TimeErrorMatchesJitterCumsum) {
  auto pair = paper_pair(10, 0.0);
  auto pair2 = paper_pair(10, 0.0);  // identical seeds -> identical noise
  const auto j = pair.relative_jitter(1000);
  const auto x = pair2.relative_time_error(1000);
  ASSERT_EQ(x.size(), 1001u);
  double acc = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) {
    acc -= j[i];
    EXPECT_NEAR(x[i + 1], acc, 1e-18);
  }
}

TEST(OscillatorPair, RelativeJitterIdenticalForAnyThreadCount) {
  // One-ring-per-task fan-out: each task owns one oscillator's state, so
  // the realization must not depend on the pool width.
  auto run = [](std::size_t width) {
    ThreadPool::global().resize(width);
    auto pair = paper_pair(0x0523, 0.0);
    auto j = pair.relative_jitter(20000);
    ThreadPool::global().resize(0);
    return j;
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  ASSERT_EQ(one.size(), two.size());
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i], two[i]) << "sample " << i;
    ASSERT_EQ(one[i], eight[i]) << "sample " << i;
  }
}

TEST(GateChain, NextPeriodsMatchesSteppingExactly) {
  // Flicker-enabled chain: per-stage banks are consumed two samples per
  // period; the batched assembly replicates next_period()'s accumulation
  // order, so every field is bit-identical. 2600 periods also crosses
  // the internal 1024-period staging block twice.
  GateChainConfig cfg;
  cfg.n_stages = 5;
  cfg.stage_delay = 100e-12;
  cfg.sigma_stage = 1e-12;
  cfg.flicker_amplitude = 1e-26;
  cfg.flicker_floor_hz = 1e4;
  cfg.seed = 0x0524;
  GateChainOscillator stepped(cfg), batched(cfg);

  std::vector<PeriodSample> expected(2600);
  for (auto& s : expected) s = stepped.next_period();
  std::vector<PeriodSample> got(expected.size());
  batched.next_periods(std::span<PeriodSample>(got).subspan(0, 700));
  got[700] = batched.next_period();
  batched.next_periods(std::span<PeriodSample>(got).subspan(701));
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].period, expected[i].period) << "period " << i;
    ASSERT_EQ(got[i].thermal, expected[i].thermal) << "period " << i;
    ASSERT_EQ(got[i].flicker, expected[i].flicker) << "period " << i;
  }
}

TEST(GateChain, FrequencyFromStageDelay) {
  GateChainConfig cfg;
  cfg.n_stages = 5;
  cfg.stage_delay = 100e-12;
  cfg.sigma_stage = 1e-12;
  GateChainOscillator osc(cfg);
  EXPECT_NEAR(osc.f0(), 1.0 / (2.0 * 5.0 * 100e-12), 1.0);
}

TEST(GateChain, PeriodVarianceIsTwoNStageVariances) {
  GateChainConfig cfg;
  cfg.n_stages = 7;
  cfg.stage_delay = 50e-12;
  cfg.sigma_stage = 2e-12;
  cfg.seed = 11;
  GateChainOscillator osc(cfg);
  stats::RunningStats rs;
  for (int i = 0; i < 300000; ++i) rs.add(osc.next_period().period);
  EXPECT_NEAR(rs.variance() / osc.period_thermal_variance(), 1.0, 0.03);
  EXPECT_NEAR(rs.mean(), 2.0 * 7.0 * 50e-12, 1e-13);
}

TEST(GateChain, EquivalentPhaseConfigRoundTrips) {
  GateChainConfig cfg;
  cfg.n_stages = 5;
  cfg.stage_delay = 97e-12;
  cfg.sigma_stage = 3e-12;
  cfg.seed = 12;
  GateChainOscillator chain(cfg);
  const auto eq = chain.equivalent_phase_config();
  // The phase-domain oscillator built from the equivalent config has the
  // same per-period thermal variance.
  RingOscillator phase(eq);
  stats::RunningStats a, b;
  for (int i = 0; i < 200000; ++i) {
    a.add(chain.next_period().jitter());
    b.add(phase.next_period().jitter());
  }
  EXPECT_NEAR(a.variance() / b.variance(), 1.0, 0.05);
}

TEST(GateChain, RejectsEvenStages) {
  GateChainConfig cfg;
  cfg.n_stages = 4;
  EXPECT_THROW(GateChainOscillator o(cfg), ContractViolation);
}

TEST(GateChain, FlickerStagesRaiseLowFrequencyContent) {
  GateChainConfig base;
  base.n_stages = 5;
  base.stage_delay = 100e-12;
  base.sigma_stage = 1e-12;
  base.seed = 13;
  GateChainConfig flk = base;
  flk.flicker_amplitude = 1e-26;
  flk.flicker_floor_hz = 1e4;
  GateChainOscillator clean(base), noisy(flk);
  // Accumulate 2000-period block sums: flicker inflates their variance.
  auto block_var = [](GateChainOscillator& osc) {
    stats::RunningStats rs;
    for (int b = 0; b < 600; ++b) {
      double sum = 0.0;
      for (int i = 0; i < 2000; ++i) sum += osc.next_period().jitter();
      rs.add(sum);
    }
    return rs.variance();
  };
  EXPECT_GT(block_var(noisy), 1.5 * block_var(clean));
}

}  // namespace
