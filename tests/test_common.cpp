// Unit tests for ptrng_common: PRNG quality basics, compensated summation,
// grids, contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace {

using namespace ptrng;

TEST(SplitMix64, ReferenceVector) {
  // Known-good first outputs for seed 1234567 (from the reference
  // implementation by Vigna).
  SplitMix64 sm(1234567);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
  // Determinism.
  SplitMix64 sm2(1234567);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

TEST(Xoshiro256pp, DeterministicAndSeedSensitive) {
  Xoshiro256pp a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Xoshiro256pp a2(42), c2(43);
  bool all_equal = true;
  for (int i = 0; i < 16; ++i)
    if (a2.next() != c2.next()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

TEST(Xoshiro256pp, UniformRange) {
  Xoshiro256pp rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_pos();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro256pp, UniformMeanVariance) {
  Xoshiro256pp rng(99);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Xoshiro256pp, UniformBelowUnbiased) {
  Xoshiro256pp rng(5);
  constexpr std::uint64_t bound = 6;
  std::array<int, bound> counts{};
  const int n = 120000;
  for (int i = 0; i < n; ++i)
    ++counts[rng.uniform_below(bound)];
  for (auto c : counts)
    EXPECT_NEAR(static_cast<double>(c), n / 6.0, 5.0 * std::sqrt(n / 6.0));
}

TEST(Xoshiro256pp, JumpDecorrelates) {
  Xoshiro256pp a(42);
  Xoshiro256pp b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(GaussianSampler, MomentsMatchStandardNormal) {
  GaussianSampler g(123);
  const int n = 400000;
  double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = g();
    s1 += x;
    s2 += x * x;
    s3 += x * x * x;
    s4 += x * x * x * x;
  }
  EXPECT_NEAR(s1 / n, 0.0, 0.01);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
  EXPECT_NEAR(s3 / n, 0.0, 0.05);
  EXPECT_NEAR(s4 / n, 3.0, 0.1);
}

TEST(GaussianSampler, ScaledMoments) {
  GaussianSampler g(321);
  const int n = 100000;
  double s1 = 0, s2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = g(10.0, 2.5);
    s1 += x;
    s2 += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(s1 / n, 10.0, 0.05);
  EXPECT_NEAR(s2 / n, 6.25, 0.1);
}

TEST(KahanSum, RecoversSmallTermsNextToLarge) {
  KahanSum acc;
  acc.add(1e16);
  for (int i = 0; i < 10000; ++i) acc.add(1.0);
  acc.add(-1e16);
  EXPECT_DOUBLE_EQ(acc.value(), 10000.0);
}

TEST(KahanSum, MatchesExactForAlternating) {
  KahanSum acc;
  for (int i = 0; i < 1000; ++i) acc.add((i % 2 == 0) ? 0.1 : -0.1);
  EXPECT_NEAR(acc.value(), 0.0, 1e-15);
}

TEST(MathUtils, Linspace) {
  const auto v = linspace(0.0, 1.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_NEAR(v[5], 0.5, 1e-15);
}

TEST(MathUtils, Logspace) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(v[3], 1000.0);
}

TEST(MathUtils, LogIntegerGridDedupsAndSorts) {
  const auto g = log_integer_grid(1, 1000, 30);
  ASSERT_GE(g.size(), 10u);
  EXPECT_EQ(g.front(), 1u);
  EXPECT_EQ(g.back(), 1000u);
  EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
  const std::set<std::size_t> uniq(g.begin(), g.end());
  EXPECT_EQ(uniq.size(), g.size());
}

TEST(MathUtils, IsClose) {
  EXPECT_TRUE(is_close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(is_close(1.0, 1.1));
  EXPECT_TRUE(is_close(0.0, 1e-12, 1e-9, 1e-9));
  EXPECT_FALSE(is_close(std::nan(""), 1.0));
}

TEST(MathUtils, NextPow2AndFloorLog2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(Contracts, ExpectsThrowsContractViolation) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), ContractViolation);
  EXPECT_THROW(logspace(-1.0, 1.0, 8), ContractViolation);
  EXPECT_THROW(log_integer_grid(0, 10, 4), ContractViolation);
}

TEST(TableWriter, AlignedOutputAndCsv) {
  TableWriter t({"N", "sigma2"});
  t.add_row({cell(std::size_t{10}), cell_sci(1.5e-12)});
  t.add_row({cell(std::size_t{100}), cell_sci(2.5e-11)});
  EXPECT_EQ(t.row_count(), 2u);

  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("sigma2"), std::string::npos);
  EXPECT_NE(os.str().find("1.5000e-12"), std::string::npos);

  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("N,sigma2"), std::string::npos);
}

TEST(TableWriter, RejectsMismatchedRow) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Cells, Formatting) {
  EXPECT_EQ(cell(1.23456789, 3), "1.235");
  EXPECT_EQ(cell(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(cell(std::size_t{42}), "42");
  EXPECT_EQ(cell_sci(0.000123, 2), "1.23e-04");
}

}  // namespace
