// Build-sanity suite: references at least one OUT-OF-LINE symbol from
// every translation unit (.cpp) of the ptrng static library, so a TU
// orphaned from its module CMakeLists — not just a whole dropped module —
// fails this test's link in CI instead of bit-rotting silently. One TEST
// per module, one statement per TU (labelled). Keep this file in sync
// with the source lists in src/*/CMakeLists.txt.
// Including the umbrella header additionally proves every public header
// still compiles under the current standard and warning flags.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ptrng.hpp"

namespace {

using namespace ptrng;

TEST(BuildSanity, CommonLinks) {
  // math_utils.cpp
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(kahan_sum(xs), 6.0);
  // parallel.cpp
  EXPECT_NE(chunk_seed(1, 0), chunk_seed(1, 1));
  EXPECT_GE(configured_thread_count(), 1u);
  // rng.cpp
  Xoshiro256pp rng(42);
  EXPECT_NE(rng.next(), rng.next());
  // sha256.cpp
  EXPECT_EQ(to_hex(Sha256::digest({})).size(), 64u);
  // simd.cpp
  EXPECT_NE(simd::compiled_backend(), nullptr);
  // ziggurat.cpp
  Xoshiro256pp zrng(42);
  EXPECT_NE(ZigguratNormal::draw(zrng), ZigguratNormal::draw(zrng));
  // table.cpp
  EXPECT_FALSE(cell_sci(1.0).empty());
}

TEST(BuildSanity, FftLinks) {
  // window.cpp
  EXPECT_EQ(fft::make_window(fft::WindowKind::rectangular, 4).size(), 4u);
  // fft.cpp
  const std::vector<double> sig{1.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(fft::rfft_padded(sig).size(), 4u);
}

TEST(BuildSanity, StatsLinks) {
  std::vector<double> xs(128);
  Xoshiro256pp xs_rng(5);
  for (auto& v : xs) v = xs_rng.uniform();
  // descriptive.cpp
  EXPECT_GE(stats::mean(xs), 0.0);
  // allan.cpp: sigma2_N = 2*tau^2*avar
  EXPECT_DOUBLE_EQ(stats::sigma2_n_from_allan(2.0, 1.0), 4.0);
  // autocorrelation.cpp
  EXPECT_GT(stats::white_noise_band(100), 0.0);
  // bienayme.cpp
  const std::vector<std::size_t> blocks{2};
  EXPECT_FALSE(stats::bienayme_sweep(xs, blocks).empty());
  // hypothesis.cpp
  EXPECT_GE(stats::turning_point_test(xs).p_value, 0.0);
  // normality.cpp
  EXPECT_GT(stats::kolmogorov_sf(1.0), 0.0);
  // psd.cpp
  EXPECT_FALSE(stats::periodogram(xs, 1.0).psd.empty());
  // regression.cpp
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{2.0, 4.0, 6.0};
  EXPECT_GT(stats::fit_line(x, y).r_squared, 0.99);
  // special.cpp
  EXPECT_DOUBLE_EQ(stats::normal_cdf(0.0), 0.5);
}

TEST(BuildSanity, NoiseLinks) {
  // white.cpp
  noise::WhiteGaussianNoise white(1.0, 1e6, /*seed=*/42);
  EXPECT_DOUBLE_EQ(white.sigma(), 1.0);
  // kasdin.cpp
  EXPECT_GT(noise::KasdinFlicker::sigma_w_for_amplitude(1.0), 0.0);
  // filter_bank.cpp
  noise::FilterBankFlicker bank{noise::FilterBankFlicker::Config{}};
  EXPECT_GT(bank.analytic_psd(bank.sample_rate() / 8.0), 0.0);
  // psd_model.cpp
  noise::PowerLawPsd psd;
  psd.add_term(1.0, 0.0);
  EXPECT_DOUBLE_EQ(psd(1.0), 1.0);
  // rtn.cpp
  noise::RandomTelegraphNoise rtn(1.0, 1.0, 1e3, /*seed=*/7);
  EXPECT_GT(rtn.analytic_psd(1.0), 0.0);
  // spectral_synthesis.cpp
  EXPECT_EQ(noise::synthesize_from_psd([](double) { return 1.0; }, 1.0, 16, 1)
                .size(),
            16u);
  // voss.cpp
  noise::VossMcCartney voss(8, 1.0, /*seed=*/3);
  EXPECT_DOUBLE_EQ(voss.sample_rate(), 1.0);
}

TEST(BuildSanity, TransistorLinks) {
  // technology.cpp
  EXPECT_FALSE(transistor::technology_nodes().empty());
  const auto& node = transistor::technology_nodes().front();
  // mosfet.cpp
  const transistor::Mosfet mosfet{transistor::MosfetParams{}};
  EXPECT_GT(mosfet.gate_capacitance(), 0.0);
  // inverter.cpp
  const transistor::Inverter inv(node);
  EXPECT_GT(inv.propagation_delay(), 0.0);
}

TEST(BuildSanity, OscillatorLinks) {
  // oscillator_pair.cpp
  EXPECT_GT(oscillator::paper::f0, 0.0);
  EXPECT_GT(oscillator::paper_single_config(1).f0, 0.0);
  // ring_oscillator.cpp
  oscillator::RingOscillator osc(oscillator::paper_single_config(1));
  EXPECT_GT(osc.next_period().period, 0.0);
  // gate_chain.cpp
  oscillator::GateChainOscillator chain{oscillator::GateChainConfig{}};
  EXPECT_GT(chain.next_period().period, 0.0);
}

TEST(BuildSanity, PhaseNoiseLinks) {
  // phase_psd.cpp
  const phase_noise::PhasePsd psd(1.0, 1.0, 1e8);
  EXPECT_GT(psd.sigma2_n(10.0), 0.0);
  // isf.cpp
  const auto isf = phase_noise::Isf::sine();
  EXPECT_GT(isf.rms(), 0.0);
  // conversion.cpp
  EXPECT_GT(phase_noise::convert_raw(1e-22, 1e-24, 1e-15, 3, isf, 1e8).b_th,
            0.0);
  // sigma2n.cpp
  EXPECT_GT(phase_noise::sigma2_n_power_law(1.0, -2.0, 1e8, 10.0), 0.0);
}

TEST(BuildSanity, MeasurementLinks) {
  // sn_process.cpp
  const std::vector<double> jitter{1e-12, -1e-12, 2e-12, 0.0};
  const auto x = measurement::time_error_from_jitter(jitter);
  EXPECT_EQ(x.size(), jitter.size() + 1);
  // counter.cpp
  const std::vector<std::int64_t> counts{100, 101, 99, 100};
  EXPECT_EQ(measurement::DifferentialCounter::sn_from_counts(counts, 100e6)
                .size(),
            counts.size() - 1);
  // sigma_n_estimator.cpp
  std::vector<double> series(2048);
  GaussianSampler gauss(13);
  for (auto& v : series) v = 1e-12 * gauss();
  const std::vector<std::size_t> grid{2, 4, 8, 16};
  const auto sweep = measurement::sigma2_n_sweep(series, grid);
  EXPECT_EQ(sweep.size(), grid.size());
  // calibration.cpp
  EXPECT_GT(measurement::fit_sigma2_n(sweep, 1e8).r_squared, 0.0);
}

TEST(BuildSanity, ModelLinks) {
  // legacy_models.cpp
  const model::NaiveWhiteModel naive(1e-22, 1e8);
  EXPECT_GT(naive.sigma2_n(10.0), 0.0);
  // multilevel_model.cpp
  EXPECT_GT(model::MultilevelModel::from_coefficients(276.0, 1.9e6, 103e6)
                .sigma2_n(10.0),
            0.0);
  // independence.cpp
  std::vector<double> series(2048);
  Xoshiro256pp rng(9);
  for (auto& v : series) v = rng.uniform() - 0.5;
  EXPECT_FALSE(model::analyze_independence(series, 16, 8).bienayme.empty());
  // ensemble.cpp
  model::EnsembleConfig ens;
  ens.pairs = 1;
  ens.samples = 1024;
  EXPECT_EQ(model::analyze_pair_ensemble(ens).pair_count(), 1u);
}

TEST(BuildSanity, TrngLinks) {
  // entropy.cpp
  EXPECT_GT(trng::entropy_lower_bound(1.0), 0.0);
  // ais31.cpp
  EXPECT_GT(trng::ais31::procedure_b_bits(), 0u);
  // postprocess.cpp
  const std::vector<std::uint8_t> bits{0, 1, 0, 1, 1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(trng::bias(bits), 0.0);
  // bit_stream.cpp
  trng::XorDecimateTransform decimate(2);
  std::vector<std::uint8_t> decimated;
  decimate.push(bits, decimated);
  EXPECT_EQ(decimated.size(), bits.size() / 2);
  // cell_array.cpp
  trng::CellArrayConfig cell_cfg;
  cell_cfg.sample_divider = 4;
  trng::CellArrayTrng cells(cell_cfg);
  EXPECT_EQ(cells.cell_count(), cell_cfg.cells);
  // raw_export.cpp
  EXPECT_EQ(trng::encode_header(trng::RawExportHeader{}).size(),
            trng::RawExportHeader::kSize);
  // sp80090b.cpp
  std::vector<std::uint8_t> many(4096);
  Xoshiro256pp rng(11);
  for (auto& b : many) b = static_cast<std::uint8_t>(rng.next() & 1u);
  EXPECT_GT(trng::sp80090b::most_common_value(many), 0.0);
  // continuous_health.cpp
  EXPECT_EQ(trng::repetition_count_cutoff(1.0, 0x1p-20), 21u);
  // online_test.cpp
  trng::OnlineTestConfig cfg;
  cfg.reference_sigma2 = 1e-24;
  const trng::ThermalNoiseMonitor monitor(cfg, 100e6);
  EXPECT_EQ(monitor.decisions(), 0u);
  // ero_trng.cpp
  auto ero = trng::paper_trng(1000, /*seed=*/5);
  EXPECT_LE(ero.next_bit(), 1);
  // multi_ring.cpp
  auto multi = trng::paper_multi_ring(2, 1000, /*seed=*/6);
  EXPECT_EQ(multi.ring_count(), 2u);
  // conditioning.cpp
  EXPECT_EQ(trng::hash_df(std::vector<std::byte>(8), 32).size(), 32u);
  // rbg_service.cpp
  trng::HealthEngine health{trng::ContinuousHealthConfig{}};
  trng::RandomByteService service(ero, health);
  EXPECT_EQ(service.state(), trng::ServiceState::kStopped);
}

TEST(BuildSanity, AttacksLinks) {
  // injection.cpp
  EXPECT_GT(attacks::em_harmonic_attack().coupling, 0.0);
}

}  // namespace
