// Build-sanity suite: references at least one out-of-line symbol from
// every module of the ptrng static library, so a module dropped from the
// build (or the referenced translation unit orphaned from its
// CMakeLists) fails this test's link in CI instead of bit-rotting
// silently. Granularity is per-module, not per-TU: an orphaned TU whose
// symbols this file doesn't reference still links (ROADMAP open item).
// Including the umbrella header additionally proves every public header
// still compiles under the current standard and warning flags.
#include <gtest/gtest.h>

#include <vector>

#include "ptrng.hpp"

namespace {

using namespace ptrng;

// One out-of-line symbol per module, so the linker must resolve against
// every object group of the archive.
TEST(BuildSanity, CommonLinks) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(kahan_sum(xs), 6.0);
}

TEST(BuildSanity, FftLinks) {
  EXPECT_EQ(fft::make_window(fft::WindowKind::rectangular, 4).size(), 4u);
}

TEST(BuildSanity, StatsLinks) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.0);
}

TEST(BuildSanity, NoiseLinks) {
  noise::WhiteGaussianNoise white(1.0, 1e6, /*seed=*/42);
  EXPECT_DOUBLE_EQ(white.sigma(), 1.0);
}

TEST(BuildSanity, TransistorLinks) {
  EXPECT_FALSE(transistor::technology_nodes().empty());
}

TEST(BuildSanity, OscillatorLinks) {
  EXPECT_GT(oscillator::paper::f0, 0.0);
  EXPECT_GT(oscillator::paper_single_config(1).f0, 0.0);
}

TEST(BuildSanity, PhaseNoiseLinks) {
  const phase_noise::PhasePsd psd(1.0, 1.0, 1e8);
  EXPECT_GT(psd.sigma2_n(10.0), 0.0);
}

TEST(BuildSanity, MeasurementLinks) {
  const std::vector<double> jitter{1e-12, -1e-12, 2e-12, 0.0};
  EXPECT_EQ(measurement::time_error_from_jitter(jitter).size(),
            jitter.size() + 1);
}

TEST(BuildSanity, ModelLinks) {
  const model::NaiveWhiteModel naive(1e-22, 1e8);
  EXPECT_GT(naive.sigma2_n(10.0), 0.0);
}

TEST(BuildSanity, TrngLinks) {
  EXPECT_GT(trng::entropy_lower_bound(1.0), 0.0);
}

TEST(BuildSanity, AttacksLinks) {
  EXPECT_GT(attacks::em_harmonic_attack().coupling, 0.0);
}

}  // namespace
