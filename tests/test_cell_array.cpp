// Cell-array TRNG suite (ROADMAP item 2 / ISSUE 9 tentpole): pins the
// neoTRNG-style generator to the house stream rules — batched path
// bit-identical to stepping at any PTRNG_THREADS and any mid-block
// split, deterministic in the seed — and checks its decimated output
// against the SP 800-90B estimators with CI-width-derived bands
// (stat_tolerance.hpp), including an 8-seed sweep so the verdicts are
// not single-seed luck.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "stat_tolerance.hpp"
#include "transistor/technology.hpp"
#include "trng/cell_array.hpp"
#include "trng/sp80090b.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

class GlobalPoolWidth {
 public:
  explicit GlobalPoolWidth(std::size_t width) {
    ThreadPool::global().resize(width);
  }
  ~GlobalPoolWidth() { ThreadPool::global().resize(0); }
};

/// Deliberately jittery, fast-clocked configuration: the per-tick
/// accumulated thermal jitter is sqrt(divider * 2 * base_stages) *
/// sigma_stage ~ 0.27 cell-0 periods, so after the 16x decimation each
/// output bit integrates over a full period of phase diffusion — near
/// ideal — while a raw tick stays cheap (80 Gaussian draws per cell).
CellArrayConfig fast_config(std::uint64_t seed = 0xce11a44aULL) {
  CellArrayConfig cfg;
  cfg.cells = 3;
  cfg.base_stages = 5;
  cfg.stage_delay = 100e-12;
  cfg.sigma_stage = 30e-12;
  cfg.sample_divider = 8;
  cfg.decimation = 16;
  cfg.seed = seed;
  return cfg;
}

TEST(CellArray, ConstructsWithDistinctOddStages) {
  CellArrayConfig cfg = fast_config();
  cfg.cells = 4;
  CellArrayTrng gen(cfg);
  EXPECT_EQ(gen.cell_count(), 4u);
  for (std::size_t i = 0; i < gen.cell_count(); ++i) {
    EXPECT_EQ(gen.cell_stages(i), cfg.base_stages + 2 * i);
    EXPECT_EQ(gen.cell_stages(i) % 2, 1u);
  }
  // T_s = divider nominal cell-0 periods.
  EXPECT_DOUBLE_EQ(gen.sample_period(),
                   cfg.sample_divider * 2.0 * 5.0 * cfg.stage_delay);
}

TEST(CellArray, RejectsBadConfig) {
  const auto with = [](auto mutate) {
    CellArrayConfig cfg = fast_config();
    mutate(cfg);
    return cfg;
  };
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.cells = 0; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.base_stages = 4; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.base_stages = 1; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.stage_delay = 0.0; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.sigma_stage = -1e-12; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.sample_divider = 0; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.sync_stages = 65; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.duty_cycle = 0.0; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.duty_cycle = 1.0; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.decimation = 10; })),
               ContractViolation);
  EXPECT_THROW(CellArrayTrng(with([](auto& c) { c.decimation = 0; })),
               ContractViolation);
}

TEST(CellArray, LatchPrimingAdvancesSampleClock) {
  CellArrayConfig cfg = fast_config();
  cfg.sync_stages = 3;
  CellArrayTrng gen(cfg);
  EXPECT_EQ(gen.samples_taken(), 3u);
  (void)gen.generate_bits(100);
  EXPECT_EQ(gen.samples_taken(), 103u);
}

TEST(CellArray, ZeroSyncStagesSamplesDirectly) {
  CellArrayConfig cfg = fast_config();
  cfg.sync_stages = 0;
  CellArrayTrng gen(cfg);
  EXPECT_EQ(gen.samples_taken(), 0u);
  const auto bits = gen.generate_bits(256);
  for (auto b : bits) EXPECT_LE(b, 1);
}

TEST(CellArray, DeterministicInSeed) {
  CellArrayTrng a(fast_config(42)), b(fast_config(42)), c(fast_config(43));
  const auto bits_a = a.generate_bits(1024);
  const auto bits_b = b.generate_bits(1024);
  const auto bits_c = c.generate_bits(1024);
  EXPECT_EQ(bits_a, bits_b);
  EXPECT_NE(bits_a, bits_c);
}

TEST(CellArray, NextBitMatchesGenerateInto) {
  CellArrayTrng stepped(fast_config()), batched(fast_config());
  std::vector<std::uint8_t> one(512);
  for (auto& b : one) b = stepped.next_bit();
  EXPECT_EQ(one, batched.generate_bits(512));
}

TEST(CellArray, MidBlockSplitsMatchOneShot) {
  CellArrayTrng whole(fast_config());
  const auto expected = whole.generate_bits(2048);

  // Adversarial re-entry: prime-sized chunks, 1-bit pulls, empty pulls
  // and next_bit() interleaved must realize the same stream.
  CellArrayTrng split(fast_config());
  std::vector<std::uint8_t> got;
  const std::size_t chunks[] = {1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 0, 127};
  std::size_t ci = 0;
  while (got.size() < expected.size()) {
    std::size_t n = chunks[ci++ % std::size(chunks)];
    n = std::min(n, expected.size() - got.size());
    if (ci % 5 == 0 && got.size() < expected.size()) {
      got.push_back(split.next_bit());
      continue;
    }
    std::vector<std::uint8_t> chunk(n);
    split.generate_into(chunk);
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(got, expected);
}

TEST(CellArray, BitIdenticalAcrossThreadCounts) {
  std::vector<std::uint8_t> reference;
  for (const std::size_t width : {1u, 2u, 8u}) {
    GlobalPoolWidth pool(width);
    CellArrayTrng gen(fast_config());
    const auto bits = gen.generate_bits(4096);
    if (reference.empty())
      reference = bits;
    else
      EXPECT_EQ(bits, reference) << "PTRNG_THREADS=" << width;
  }
}

TEST(CellArray, FillBytesPacksTheBitStream) {
  CellArrayTrng bit_gen(fast_config()), byte_gen(fast_config());
  const auto bits = bit_gen.generate_bits(512);
  std::vector<std::byte> packed(64);
  pack_bits_msb_first(bits, packed);
  EXPECT_EQ(byte_gen.generate_bytes(64), packed);
}

TEST(CellArray, EmptyGenerateIsNoop) {
  CellArrayTrng gen(fast_config());
  const auto before = gen.samples_taken();
  gen.generate_into({});
  EXPECT_EQ(gen.samples_taken(), before);
}

TEST(CellArray, DecimationChainMatchesManualTransforms) {
  // attach_decimation composes the EXISTING transforms (von Neumann +
  // parity over decimation/4 groups); the pipeline's delivered bits must
  // be a prefix of manually transforming the recorded raw stream.
  CellArrayTrng gen(fast_config());
  Pipeline pipeline(gen, /*block_bits=*/1024);
  RawRecorderTap raw;
  pipeline.attach_tap(raw);
  gen.attach_decimation(pipeline);
  ASSERT_EQ(pipeline.transform_count(), 2u);

  const auto delivered = pipeline.generate_bits(500);

  VonNeumannTransform vn;
  XorDecimateTransform xd(fast_config().decimation / 4);
  std::vector<std::uint8_t> stage, manual;
  vn.push(raw.bits(), stage);
  xd.push(stage, manual);
  ASSERT_GE(manual.size(), delivered.size());
  manual.resize(delivered.size());
  EXPECT_EQ(delivered, manual);
}

// The decimated output integrates ~1 period of phase diffusion per bit,
// so it must sit inside the IDEAL-source CI bands of the 90B estimators
// (the same floor construction as Sp80090b.IdealSourceScoresNearOne).
constexpr double kZ99 = 2.5758293035489004;  // estimators' own penalty

double mcv_ideal_floor(std::size_t n) {
  return -std::log2(0.5 + ptrng::testing::bias_tol(n, kZ99 + 5.0));
}

double markov_ideal_floor(std::size_t n) {
  return -std::log2(0.5 + ptrng::testing::bias_tol(n, kZ99) +
                    ptrng::testing::bias_tol(n / 2, 5.0));
}

double collision_ideal_floor(std::size_t n) {
  const double m = static_cast<double>(n) / 2.5;
  const double dev = (kZ99 + 5.0) * std::sqrt(0.25 / m);
  const double q = (2.5 - dev - 2.0) / 2.0;
  return -std::log2(0.5 * (1.0 + std::sqrt(1.0 - 4.0 * q)));
}

TEST(CellArray, DecimatedStreamPassesIdealEntropyBands) {
  CellArrayTrng gen(fast_config());
  Pipeline pipeline(gen, /*block_bits=*/4096);
  gen.attach_decimation(pipeline);
  const std::size_t n = 8192;
  const auto bits = pipeline.generate_bits(n);
  EXPECT_GT(sp80090b::most_common_value(bits), mcv_ideal_floor(n));
  EXPECT_GT(sp80090b::markov_estimate(bits), markov_ideal_floor(n));
  EXPECT_GT(sp80090b::collision_estimate(bits), collision_ideal_floor(n));
}

TEST(CellArray, UndecimatedFastClockFailsIdealBand) {
  // divider 1 leaves ~0.1 periods of jitter per tick: the raw stream is
  // a near-deterministic beat pattern, and the Markov estimator must
  // place it clearly below the ideal band the decimated stream meets —
  // this is exactly the defect the 64x decimation exists to remove.
  CellArrayConfig cfg = fast_config();
  cfg.sample_divider = 1;
  CellArrayTrng gen(cfg);
  const std::size_t n = 65536;
  const auto raw = gen.generate_bits(n);
  EXPECT_LT(sp80090b::markov_estimate(raw), markov_ideal_floor(n));
  EXPECT_LT(sp80090b::assess(raw), markov_ideal_floor(n));
}

class CellArraySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CellArraySeedSweep, DecimatedVerdictStable) {
  // The pass band must hold across seeds, not on one lucky stream: the
  // weakest of the three per-estimator floors bounds assess() itself.
  CellArrayTrng gen(fast_config(GetParam()));
  Pipeline pipeline(gen, /*block_bits=*/4096);
  gen.attach_decimation(pipeline);
  const std::size_t n = 2048;
  const auto bits = pipeline.generate_bits(n);
  const double floor = std::min(
      {mcv_ideal_floor(n), markov_ideal_floor(n), collision_ideal_floor(n)});
  EXPECT_GT(sp80090b::assess(bits), floor) << "seed=" << GetParam();
  EXPECT_GT(sp80090b::most_common_value(bits), mcv_ideal_floor(n))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(EightSeeds, CellArraySeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(CellArray, TechnologyFactoryProducesPlausibleConfig) {
  const auto& node = transistor::technology_nodes().front();
  const auto cfg = cell_array_from_technology(node, /*cells=*/3,
                                              /*base_stages=*/5);
  EXPECT_EQ(cfg.cells, 3u);
  EXPECT_EQ(cfg.base_stages, 5u);
  EXPECT_GT(cfg.stage_delay, 0.0);
  EXPECT_GT(cfg.sigma_stage, 0.0);
  // Jitter is a perturbation, not the signal: per-stage sigma well below
  // the per-stage delay for every shipped node.
  EXPECT_LT(cfg.sigma_stage, cfg.stage_delay);
  EXPECT_EQ(cfg.flicker_amplitude, 0.0);  // thermal-only by default

  CellArrayTrng gen(cfg);
  const auto bits = gen.generate_bits(256);
  std::size_t ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_GT(ones, 0u);
  EXPECT_LT(ones, bits.size());
}

TEST(CellArray, TechnologyFactoryFlickerToggle) {
  const auto& node = transistor::technology_nodes().front();
  const auto thermal = cell_array_from_technology(node, 3, 5, 1.0, false);
  const auto flicker = cell_array_from_technology(node, 3, 5, 1.0, true);
  EXPECT_EQ(thermal.flicker_amplitude, 0.0);
  EXPECT_GT(flicker.flicker_amplitude, 0.0);
  // The thermal part of the config is unchanged by the toggle.
  EXPECT_DOUBLE_EQ(thermal.sigma_stage, flicker.sigma_stage);
  EXPECT_DOUBLE_EQ(thermal.stage_delay, flicker.stage_delay);
}

}  // namespace
