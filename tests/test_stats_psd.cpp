// Unit tests for PSD estimation: white level calibration, Parseval-style
// power integration, sinusoid detection, slope identification on known
// synthetic spectra.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "noise/spectral_synthesis.hpp"
#include "stats/psd.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::stats;

std::vector<double> white_series(std::size_t n, double sigma,
                                 std::uint64_t seed) {
  GaussianSampler g(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = sigma * g();
  return x;
}

TEST(Welch, WhiteNoiseLevelIsSigma2OverNyquist) {
  // One-sided white PSD = 2*sigma^2/fs, constant up to fs/2.
  const double fs = 1000.0;
  const double sigma = 3.0;
  const auto x = white_series(1 << 17, sigma, 1);
  const auto est = welch(x, fs, 1 << 10);
  const double level = psd_level(est, fs * 0.05, fs * 0.45);
  EXPECT_NEAR(level, 2.0 * sigma * sigma / fs, 0.05 * 2.0 * sigma * sigma / fs);
}

TEST(Welch, IntegralEqualsVariance) {
  const double fs = 100.0;
  const auto x = white_series(1 << 16, 2.0, 2);
  const auto est = welch(x, fs, 1 << 9);
  double power = 0.0;
  for (double s : est.psd) power += s * est.resolution_hz;
  EXPECT_NEAR(power, 4.0, 0.2);
}

TEST(Welch, ParallelSegmentsIdenticalForAnyThreadCount) {
  // The segment FFTs fan out one per chunk and the periodograms fold in
  // segment order, so every bin must be bit-identical at 1/2/8 threads.
  const auto x = white_series(1 << 15, 1.5, 7);
  auto run = [&](std::size_t width) {
    ThreadPool::global().resize(width);
    auto est = welch(x, 1000.0, 1 << 9, 0.5);
    ThreadPool::global().resize(0);
    return est;
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  ASSERT_EQ(one.psd.size(), two.psd.size());
  ASSERT_EQ(one.psd.size(), eight.psd.size());
  EXPECT_EQ(one.segments, eight.segments);
  for (std::size_t k = 0; k < one.psd.size(); ++k) {
    ASSERT_EQ(one.psd[k], two.psd[k]) << "bin " << k;
    ASSERT_EQ(one.psd[k], eight.psd[k]) << "bin " << k;
    ASSERT_EQ(one.frequency[k], eight.frequency[k]) << "bin " << k;
  }
}

TEST(Periodogram, FindsSinusoidPeak) {
  const double fs = 1000.0;
  const double f_tone = 125.0;
  std::vector<double> x(4096);
  GaussianSampler g(3);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(constants::two_pi * f_tone * static_cast<double>(i) / fs) +
           0.01 * g();
  const auto est = periodogram(x, fs);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < est.psd.size(); ++k)
    if (est.psd[k] > est.psd[peak]) peak = k;
  EXPECT_NEAR(est.frequency[peak], f_tone, 2.0 * est.resolution_hz);
}

TEST(Welch, SegmentsCounted) {
  const auto x = white_series(1 << 14, 1.0, 4);
  const auto est = welch(x, 1.0, 1 << 10, 0.5);
  EXPECT_GT(est.segments, 20u);
}

TEST(PsdSlope, WhiteIsFlat) {
  const auto x = white_series(1 << 17, 1.0, 5);
  const auto est = welch(x, 1.0, 1 << 11);
  EXPECT_NEAR(psd_slope(est, 0.01, 0.4), 0.0, 0.05);
}

class SlopeSweep : public ::testing::TestWithParam<double> {};

TEST_P(SlopeSweep, SyntheticPowerLawSlopeRecovered) {
  const double alpha = GetParam();
  const double fs = 1.0;
  auto psd_fn = [alpha](double f) { return std::pow(f, -alpha); };
  const auto x = noise::synthesize_from_psd(psd_fn, fs, 1 << 18,
                                            77 + static_cast<std::uint64_t>(alpha * 10));
  const auto est = welch(x, fs, 1 << 12);
  const double slope = psd_slope(est, 1e-3, 0.2);
  EXPECT_NEAR(slope, -alpha, 0.1) << "alpha = " << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, SlopeSweep,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

TEST(SidednessConversion, FactorOfTwo) {
  EXPECT_DOUBLE_EQ(one_sided_to_two_sided(4.0), 2.0);
  EXPECT_DOUBLE_EQ(two_sided_to_one_sided(2.0), 4.0);
}

TEST(SpectralSynthesis, RealizesTargetVariance) {
  // Flat two-sided PSD S0 over [-fs/2, fs/2] => variance = S0 * fs.
  const double fs = 10.0;
  const double s0 = 0.3;
  const auto x = noise::synthesize_from_psd([&](double) { return s0; }, fs,
                                            1 << 16, 9);
  double var = 0.0;
  for (double v : x) var += v * v;
  var /= static_cast<double>(x.size());
  EXPECT_NEAR(var, s0 * fs, 0.1 * s0 * fs);
}

TEST(SpectralSynthesis, ZeroMean) {
  const auto x = noise::synthesize_from_psd([](double) { return 1.0; }, 1.0,
                                            4096, 10);
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  EXPECT_NEAR(mean, 0.0, 1e-10);  // DC bin zeroed exactly
}

}  // namespace
