// Unit tests for the TRNG layer: sampler mechanics, entropy math
// (theta-series, bounds, empirical estimators), post-processing, online
// monitor behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "stat_tolerance.hpp"
#include "trng/entropy.hpp"
#include "trng/ero_trng.hpp"
#include "trng/online_test.hpp"
#include "trng/postprocess.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

TEST(BitProbability, DegenerateVarianceFollowsMu) {
  // v = 0: deterministic phase.
  EXPECT_NEAR(bit_probability(0.25, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(bit_probability(0.75, 0.0), 0.0, 1e-9);
}

TEST(BitProbability, LargeVarianceIsUnbiased) {
  for (double mu : {0.0, 0.1, 0.37, 0.5}) {
    EXPECT_NEAR(bit_probability(mu, 1.0), 0.5, 1e-8) << "mu " << mu;
  }
}

TEST(BitProbability, SymmetryProperties) {
  const double v = 0.02;
  // p(mu) + p(mu + 0.5) = 1 (half-period shift flips the bit).
  for (double mu : {0.0, 0.1, 0.3}) {
    EXPECT_NEAR(bit_probability(mu, v) + bit_probability(mu + 0.5, v), 1.0,
                1e-10);
  }
}

TEST(BitProbability, MonteCarloAgreement) {
  // Direct Monte Carlo of frac(N(mu, v)) < 0.5 vs the theta series.
  GaussianSampler g(1);
  const double mu = 0.2, v = 0.01;
  const int n = 2'000'000;
  int ones = 0;
  for (int i = 0; i < n; ++i) {
    double x = std::fmod(mu + std::sqrt(v) * g(), 1.0);
    if (x < 0.0) x += 1.0;
    if (x < 0.5) ++ones;
  }
  const double mc = static_cast<double>(ones) / n;
  EXPECT_NEAR(bit_probability(mu, v), mc, 0.002);
}

TEST(WorstCaseBias, DecaysExponentially) {
  EXPECT_NEAR(worst_case_bias(0.0), 0.5, 1e-12);  // clamped
  const double b1 = worst_case_bias(0.05);
  const double b2 = worst_case_bias(0.10);
  // Ratio should be exp(-2 pi^2 * 0.05).
  EXPECT_NEAR(b2 / b1, std::exp(-2.0 * M_PI * M_PI * 0.05), 1e-9);
}

TEST(EntropyBounds, OrderingHolds) {
  // worst-case bound <= average-mu entropy <= 1, monotone in v.
  double prev_lb = 0.0;
  for (double v : {0.01, 0.02, 0.05, 0.1, 0.2}) {
    const double lb = entropy_lower_bound(v);
    const double avg = entropy_average_mu(v);
    EXPECT_LE(lb, avg + 1e-12) << "v = " << v;
    EXPECT_LE(avg, 1.0 + 1e-12);
    EXPECT_GE(lb, prev_lb) << "v = " << v;
    prev_lb = lb;
  }
  EXPECT_NEAR(entropy_lower_bound(0.5), 1.0, 1e-6);
}

TEST(ShannonBlockEntropy, FairCoinIsOneBit) {
  Xoshiro256pp rng(2);
  std::vector<std::uint8_t> bits(400'000);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1u);
  // Plug-in entropy of an ideal source deviates from 1 by a
  // chi-square-distributed bias term; bands from its CI width.
  EXPECT_NEAR(shannon_block_entropy(bits, 1), 1.0,
              ptrng::testing::block_entropy_tol(bits.size(), 1));
  EXPECT_NEAR(shannon_block_entropy(bits, 4), 1.0,
              ptrng::testing::block_entropy_tol(bits.size(), 4));
  EXPECT_NEAR(min_entropy(bits, 4), 1.0,
              ptrng::testing::min_entropy_tol(bits.size(), 4));
}

TEST(ShannonBlockEntropy, BiasedCoinMatchesFormula) {
  Xoshiro256pp rng(3);
  const double p = 0.3;
  std::vector<std::uint8_t> bits(400'000);
  for (auto& b : bits) b = rng.uniform() < p ? 1 : 0;
  const double expected =
      -(p * std::log2(p) + (1 - p) * std::log2(1 - p));
  // Delta-method band for the plug-in entropy at p != 1/2.
  EXPECT_NEAR(shannon_block_entropy(bits, 1), expected,
              ptrng::testing::binary_entropy_tol(bits.size(), p));
  EXPECT_LT(min_entropy(bits, 1), expected);
}

TEST(MarkovEntropyRate, DetectsSerialDependence) {
  // Sticky chain: P(stay) = 0.9 -> H = h_b(0.1).
  Xoshiro256pp rng(4);
  const double p_flip = 0.1;
  std::vector<std::uint8_t> bits(500'000);
  std::uint8_t state = 0;
  for (auto& b : bits) {
    if (rng.uniform() < p_flip) state ^= 1;
    b = state;
  }
  const double expected = -(p_flip * std::log2(p_flip) +
                            (1 - p_flip) * std::log2(1 - p_flip));
  // The rate estimate is h_b of the estimated flip probability over
  // ~n transitions: delta-method band.
  EXPECT_NEAR(markov_entropy_rate(bits), expected,
              ptrng::testing::binary_entropy_tol(bits.size(), p_flip));
  // Plain Shannon on single bits misses it completely. The sticky
  // marginals are serially correlated with correlation length
  // (1+rho)/(1-rho) = 9 for rho = 1 - 2*p_flip: effective n = n/9.
  EXPECT_NEAR(shannon_block_entropy(bits, 1), 1.0,
              ptrng::testing::block_entropy_tol(bits.size() / 9, 1));
}

TEST(CoronEntropy, NearEightForIdealInput) {
  Xoshiro256pp rng(5);
  const std::size_t need = (2560 + 256000) * 8;
  std::vector<std::uint8_t> bits(need);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1u);
  const double f = coron_entropy(bits);
  EXPECT_GT(f, 7.976);
  // AIS31 places the normative 7.976 threshold ~4 sigma below the
  // ideal-source mean E[f] ~ 8.0017 (Coron's correction lands slightly
  // above 8); reuse that implied sigma for a z = 5 upper band instead
  // of a hand-tuned cap.
  const double sigma_f = (8.0017 - 7.976) / 4.0;
  EXPECT_LT(f, 8.0017 + 5.0 * sigma_f);
}

TEST(CoronEntropy, LowForConstantInput) {
  std::vector<std::uint8_t> bits((2560 + 256000) * 8, 0);
  EXPECT_LT(coron_entropy(bits), 1.0);
}

TEST(XorDecimate, ReducesBias) {
  Xoshiro256pp rng(6);
  std::vector<std::uint8_t> bits(600'000);
  for (auto& b : bits) b = rng.uniform() < 0.6 ? 1 : 0;  // bias 0.1
  const auto x2 = xor_decimate(bits, 2);
  const auto x4 = xor_decimate(bits, 4);
  // Piling-up: bias(2) = 2*0.1^2 = 0.02; bias(4) = 8*0.1^4 = 8e-4.
  // Bands from the binomial CI width of each stream, not hand-tuned.
  EXPECT_NEAR(bias(bits), 0.1,
              ptrng::testing::proportion_tol(bits.size(), 0.6));
  EXPECT_NEAR(bias(x2), 0.02,
              ptrng::testing::proportion_tol(x2.size(), 0.52));
  EXPECT_LT(bias(x4), 8e-4 + ptrng::testing::bias_tol(x4.size()));
  EXPECT_EQ(x2.size(), bits.size() / 2);
}

TEST(VonNeumann, RemovesBiasEntirely) {
  Xoshiro256pp rng(7);
  std::vector<std::uint8_t> bits(1'000'000);
  for (auto& b : bits) b = rng.uniform() < 0.7 ? 1 : 0;
  const auto out = von_neumann(bits);
  // A pair is kept with probability 2*p*(1-p) = 0.42; the output count is
  // binomial over the 500k pairs and the output bias is that of a fair
  // coin over out.size() bits — both bands from the CI width.
  const std::size_t pairs = bits.size() / 2;
  const double keep = 2.0 * 0.7 * 0.3;
  EXPECT_NEAR(static_cast<double>(out.size()),
              keep * static_cast<double>(pairs),
              ptrng::testing::count_tol(pairs, keep));
  EXPECT_LT(bias(out), ptrng::testing::bias_tol(out.size()));
}

TEST(VonNeumann, DoesNotFixCorrelation) {
  // Sticky Markov input: von Neumann output remains correlated.
  Xoshiro256pp rng(8);
  std::vector<std::uint8_t> bits(1'000'000);
  std::uint8_t state = 0;
  for (auto& b : bits) {
    if (rng.uniform() < 0.05) state ^= 1;
    b = state;
  }
  const auto out = von_neumann(bits);
  ASSERT_GT(out.size(), 10000u);
  // Sticky input leaves the VN output correlated (the point of this
  // test) but still symmetric; effective n ~ out.size()/2 for the band.
  EXPECT_LT(bias(out), ptrng::testing::bias_tol(out.size() / 2));
}

TEST(SerialCorrelation, DetectsStickiness) {
  Xoshiro256pp rng(9);
  std::vector<std::uint8_t> iid(200'000), sticky(200'000);
  std::uint8_t state = 0;
  for (std::size_t i = 0; i < iid.size(); ++i) {
    iid[i] = static_cast<std::uint8_t>(rng.next() & 1u);
    if (rng.uniform() < 0.2) state ^= 1;
    sticky[i] = state;
  }
  EXPECT_NEAR(serial_correlation(iid), 0.0,
              ptrng::testing::acf_tol(iid.size()));
  EXPECT_GT(serial_correlation(sticky), 0.5);
}

TEST(EroTrng, ProducesBothSymbols) {
  auto trng = paper_trng(100, 10);
  const auto bits = trng.generate_bits(4000);
  std::size_t ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_GT(ones, 100u);
  EXPECT_LT(ones, 3900u);
}

TEST(EroTrng, FractionalPhaseIsInUnitInterval) {
  auto trng = paper_trng(50, 11);
  for (int i = 0; i < 2000; ++i) {
    (void)trng.next_bit();
    EXPECT_GE(trng.last_fractional_phase(), 0.0);
    EXPECT_LT(trng.last_fractional_phase(), 1.0);
  }
}

TEST(EroTrng, LargerDividerRaisesEntropy) {
  // At the paper's noise level the thermal diffusion per sample is tiny
  // for practical dividers (that is the paper's warning!), so this test
  // uses a noisier device where the divider effect is measurable.
  using namespace ptrng::oscillator;
  auto make = [](std::uint32_t divider) {
    auto sampled = paper_single_config(12);
    auto sampling = paper_single_config(21);
    sampled.b_th *= 100.0;   // ~10x thermal jitter
    sampling.b_th *= 100.0;
    sampled.mismatch = 1.5e-3;
    EroTrngConfig cfg;
    cfg.divider = divider;
    return EroTrng(sampled, sampling, cfg);
  };
  auto fast = make(5);
  auto slow = make(2000);
  const auto bits_fast = fast.generate_bits(60000);
  const auto bits_slow = slow.generate_bits(60000);
  const double h_fast = markov_entropy_rate(bits_fast);
  const double h_slow = markov_entropy_rate(bits_slow);
  EXPECT_GT(h_slow, h_fast - 0.02);
  EXPECT_GT(h_slow, 0.97);
}

TEST(EroTrng, BlockAdvanceMatchesStepping) {
  // The fast path must be statistically indistinguishable: compare bit
  // bias and entropy at the same divider between two instances (different
  // seeds) — and, more sharply, compare an advance_periods oscillator's
  // sigma^2_N against theory (covered in oscillator tests); here check
  // the TRNG-level moments stay sane across dividers that exercise both
  // paths.
  auto a = paper_trng(4, 31);    // stepping path (divider < 8)
  auto b = paper_trng(4000, 31); // block path
  const auto bits_a = a.generate_bits(20000);
  const auto bits_b = b.generate_bits(20000);
  EXPECT_LT(bias(bits_a), 0.5);
  EXPECT_LT(bias(bits_b), 0.5);
  // Both streams produce both symbols.
  EXPECT_GT(bias(bits_b), -0.1);
}

TEST(EroTrng, DutyCycleSkewsBits) {
  using namespace ptrng::oscillator;
  auto sampled = paper_single_config(13);
  auto sampling = paper_single_config(14);
  sampled.mismatch = 1.5e-3;
  EroTrngConfig cfg;
  cfg.divider = 500;
  cfg.duty_cycle = 0.8;
  EroTrng trng(sampled, sampling, cfg);
  const auto bits = trng.generate_bits(20000);
  double ones = 0;
  for (auto b : bits) ones += b;
  // The sampling point sweeps the sampled period slowly, so successive
  // bits are serially correlated: effective n ~ n/16 for the band.
  EXPECT_NEAR(ones / 20000.0, 0.8,
              ptrng::testing::proportion_tol(20000 / 16, 0.8));
}

TEST(EroTrng, RejectsBadConfig) {
  using namespace ptrng::oscillator;
  EroTrngConfig cfg;
  cfg.divider = 0;
  EXPECT_THROW(EroTrng(paper_single_config(1), paper_single_config(2), cfg),
               ContractViolation);
}

TEST(OnlineTest, CalibratedDeviceRarelyAlarms) {
  OnlineTestConfig cfg;
  cfg.n_cycles = 200;
  cfg.windows_per_test = 64;
  cfg.reference_sigma2 = 1e6;  // counts^2 with f0 = 1
  cfg.false_alarm = 1e-4;
  ThermalNoiseMonitor monitor(cfg, 1.0);
  // Counts are a random walk with step stddev 1000 (variance 1e6 matches
  // the reference); rounding noise is negligible at this scale.
  GaussianSampler g(15);
  double walk = 0.0;
  std::size_t alarms = 0, decisions = 0;
  for (int i = 0; i < 64 * 300 + 1; ++i) {
    walk += 1000.0 * g();
    OnlineTestDecision d;
    if (monitor.push_count(static_cast<std::int64_t>(std::llround(walk)),
                           &d)) {
      ++decisions;
      if (d.alarm) ++alarms;
    }
  }
  EXPECT_GT(decisions, 100u);
  // At false_alarm 1e-4 over ~300 decisions, alarms should be rare.
  EXPECT_LE(alarms, 2u);
}

TEST(OnlineTest, DetectsVarianceCollapse) {
  OnlineTestConfig cfg;
  cfg.n_cycles = 100;
  cfg.windows_per_test = 32;
  cfg.false_alarm = 1e-6;
  const double f0 = 1.0;  // s_N = count differences directly
  cfg.reference_sigma2 = 100.0;  // calibrated variance (counts^2)
  ThermalNoiseMonitor monitor(cfg, f0);
  GaussianSampler g(16);
  // Healthy phase: count increments with stddev 10 (variance 100).
  std::size_t healthy_alarms = 0, healthy_decisions = 0;
  double walk = 0.0;
  for (int i = 0; i < 32 * 50 + 1; ++i) {
    walk += 10.0 * g();
    OnlineTestDecision d;
    if (monitor.push_count(static_cast<std::int64_t>(std::llround(walk)),
                           &d)) {
      ++healthy_decisions;
      if (d.alarm) ++healthy_alarms;
    }
  }
  EXPECT_GT(healthy_decisions, 40u);
  EXPECT_LE(healthy_alarms, 1u);
  // Attack phase: jitter collapses to stddev 2 (variance 4 << 100).
  std::size_t attack_alarms = 0, attack_decisions = 0;
  for (int i = 0; i < 32 * 20; ++i) {
    walk += 2.0 * g();
    OnlineTestDecision d;
    if (monitor.push_count(static_cast<std::int64_t>(std::llround(walk)),
                           &d)) {
      ++attack_decisions;
      if (d.alarm) ++attack_alarms;
    }
  }
  EXPECT_GT(attack_decisions, 15u);
  EXPECT_GE(attack_alarms, attack_decisions - 2);
}

TEST(OnlineTest, RejectsBadConfig) {
  OnlineTestConfig cfg;
  cfg.reference_sigma2 = 0.0;
  EXPECT_THROW(ThermalNoiseMonitor(cfg, 1.0), ContractViolation);
}

}  // namespace
