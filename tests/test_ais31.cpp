// Unit tests for the AIS31 battery: ideal input passes every test,
// defective inputs fail the right test, threshold edge behaviour.
#include <gtest/gtest.h>

#include "ignore_result.hpp"

#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "trng/ais31.hpp"

namespace {

using ptrng::test::ignore_result;

using namespace ptrng;
using namespace ptrng::trng::ais31;

std::vector<std::uint8_t> ideal_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1u);
  return bits;
}

std::vector<std::uint8_t> biased_bits(std::size_t n, double p,
                                      std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.uniform() < p ? 1 : 0;
  return bits;
}

TEST(T0, IdealPassesConstantFails) {
  const auto good = ideal_bits((1u << 16) * 48, 1);
  EXPECT_TRUE(t0_disjointness(good).passed);
  const std::vector<std::uint8_t> constant((1u << 16) * 48, 1);
  EXPECT_FALSE(t0_disjointness(constant).passed);
}

TEST(T1, MonobitBounds) {
  EXPECT_TRUE(t1_monobit(ideal_bits(20000, 2)).passed);
  EXPECT_FALSE(t1_monobit(biased_bits(20000, 0.4, 3)).passed);
  const std::vector<std::uint8_t> zeros(20000, 0);
  const auto res = t1_monobit(zeros);
  EXPECT_FALSE(res.passed);
  EXPECT_DOUBLE_EQ(res.statistic, 0.0);
}

TEST(T2, PokerDetectsPatterns) {
  EXPECT_TRUE(t2_poker(ideal_bits(20000, 4)).passed);
  // Repeating nibble pattern: poker explodes.
  std::vector<std::uint8_t> patterned(20000);
  for (std::size_t i = 0; i < patterned.size(); ++i)
    patterned[i] = (i % 4 == 0) ? 1 : 0;
  EXPECT_FALSE(t2_poker(patterned).passed);
}

TEST(T2, TooUniformAlsoFails) {
  // Perfectly equidistributed nibbles: X = 0 < 1.03 must FAIL (the
  // two-sided AIS31 bound catches "too good" data).
  std::vector<std::uint8_t> bits;
  bits.reserve(20000);
  for (std::size_t rep = 0; rep < 5000 / 16 + 1 && bits.size() < 20000;
       ++rep) {
    for (std::size_t v = 0; v < 16 && bits.size() < 20000; ++v) {
      for (std::size_t k = 0; k < 4; ++k)
        bits.push_back(static_cast<std::uint8_t>((v >> (3 - k)) & 1u));
    }
  }
  EXPECT_FALSE(t2_poker(bits).passed);
}

TEST(T3, RunsDistribution) {
  EXPECT_TRUE(t3_runs(ideal_bits(20000, 5)).passed);
  // Alternating bits: all runs have length 1 -> fails.
  std::vector<std::uint8_t> alt(20000);
  for (std::size_t i = 0; i < alt.size(); ++i)
    alt[i] = static_cast<std::uint8_t>(i & 1u);
  EXPECT_FALSE(t3_runs(alt).passed);
}

TEST(T4, LongRun) {
  EXPECT_TRUE(t4_long_run(ideal_bits(20000, 6)).passed);
  auto bits = ideal_bits(20000, 7);
  for (std::size_t i = 5000; i < 5040; ++i) bits[i] = 1;  // run of 40
  EXPECT_FALSE(t4_long_run(bits).passed);
}

TEST(T5, AutocorrelationDetectsPeriodicity) {
  EXPECT_TRUE(t5_autocorrelation(ideal_bits(20000, 8)).passed);
  // Strong correlation at lag 7: b_{i+7} = b_i.
  std::vector<std::uint8_t> per(20000);
  const auto seedbits = ideal_bits(7, 9);
  for (std::size_t i = 0; i < per.size(); ++i)
    per[i] = seedbits[i % 7];
  EXPECT_FALSE(t5_autocorrelation(per).passed);
}

TEST(T6, UniformDistribution) {
  EXPECT_TRUE(t6_uniform(ideal_bits(100000, 10)).passed);
  EXPECT_FALSE(t6_uniform(biased_bits(100000, 0.45, 11)).passed);
}

TEST(T7, TransitionHomogeneity) {
  EXPECT_TRUE(t7_homogeneity(ideal_bits(100001, 12)).passed);
  // Markov chain with asymmetric transitions fails homogeneity.
  Xoshiro256pp rng(13);
  std::vector<std::uint8_t> markov(100001);
  std::uint8_t s = 0;
  for (auto& b : markov) {
    const double p_one = (s == 0) ? 0.45 : 0.55;  // depends on state
    s = rng.uniform() < p_one ? 1 : 0;
    b = s;
  }
  EXPECT_FALSE(t7_homogeneity(markov).passed);
}

TEST(T8, EntropyEstimator) {
  const std::size_t need = (2560 + 256000) * 8;
  EXPECT_TRUE(t8_entropy(ideal_bits(need, 14)).passed);
  EXPECT_FALSE(t8_entropy(biased_bits(need, 0.35, 15)).passed);
}

TEST(ProcedureA, IdealInputPasses) {
  const auto bits = ideal_bits(procedure_a_bits(2), 16);
  const auto res = procedure_a(bits, 2);
  EXPECT_TRUE(res.passed) << res.outcomes[res.failures.empty()
                                              ? 0
                                              : res.failures[0]]
                                 .detail;
  EXPECT_EQ(res.outcomes.size(), 1u + 2u * 5u);
  EXPECT_TRUE(res.failures.empty());
}

TEST(ProcedureA, BiasedInputFailsWithFailureIndices) {
  const auto bits = biased_bits(procedure_a_bits(1), 0.42, 17);
  const auto res = procedure_a(bits, 1);
  EXPECT_FALSE(res.passed);
  EXPECT_FALSE(res.failures.empty());
  for (auto idx : res.failures) EXPECT_FALSE(res.outcomes[idx].passed);
}

TEST(ProcedureB, IdealInputPasses) {
  const auto bits = ideal_bits(procedure_b_bits(), 18);
  const auto res = procedure_b(bits);
  EXPECT_TRUE(res.passed);
  EXPECT_EQ(res.outcomes.size(), 3u);
}

TEST(ProcedureB, BiasedInputFails) {
  const auto bits = biased_bits(procedure_b_bits(), 0.4, 19);
  const auto res = procedure_b(bits);
  EXPECT_FALSE(res.passed);
}

TEST(Procedures, SizeRequirementsEnforced) {
  const auto tiny = ideal_bits(1000, 20);
  EXPECT_THROW(ignore_result(procedure_a(tiny, 1)), ContractViolation);
  EXPECT_THROW(ignore_result(procedure_b(tiny)), ContractViolation);
  EXPECT_THROW(ignore_result(t1_monobit(tiny)), ContractViolation);
}

class BiasSweep : public ::testing::TestWithParam<double> {};

TEST_P(BiasSweep, T1PowerCurve) {
  // Monobit should pass near 0.5 and fail far away; the 20000-bit T1
  // bound corresponds to |p - 0.5| ~ 0.0173 at ~5 sigma.
  const double p = GetParam();
  const auto bits = biased_bits(20000, p, 21 + static_cast<std::uint64_t>(p * 1000));
  const bool passed = t1_monobit(bits).passed;
  if (std::abs(p - 0.5) < 0.005) {
    EXPECT_TRUE(passed) << p;
  }
  if (std::abs(p - 0.5) > 0.03) {
    EXPECT_FALSE(passed) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Biases, BiasSweep,
                         ::testing::Values(0.46, 0.48, 0.5, 0.52, 0.54));

}  // namespace
