// Unit tests for the AIS31 battery: ideal input passes every test,
// defective inputs fail the right test, threshold edge behaviour.
#include <gtest/gtest.h>

#include "ignore_result.hpp"

#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "trng/ais31.hpp"

namespace {

using ptrng::test::ignore_result;

using namespace ptrng;
using namespace ptrng::trng::ais31;

std::vector<std::uint8_t> ideal_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1u);
  return bits;
}

std::vector<std::uint8_t> biased_bits(std::size_t n, double p,
                                      std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.uniform() < p ? 1 : 0;
  return bits;
}

TEST(T0, IdealPassesConstantFails) {
  const auto good = ideal_bits((1u << 16) * 48, 1);
  EXPECT_TRUE(t0_disjointness(good).passed);
  const std::vector<std::uint8_t> constant((1u << 16) * 48, 1);
  EXPECT_FALSE(t0_disjointness(constant).passed);
}

TEST(T1, MonobitBounds) {
  EXPECT_TRUE(t1_monobit(ideal_bits(20000, 2)).passed);
  EXPECT_FALSE(t1_monobit(biased_bits(20000, 0.4, 3)).passed);
  const std::vector<std::uint8_t> zeros(20000, 0);
  const auto res = t1_monobit(zeros);
  EXPECT_FALSE(res.passed);
  EXPECT_DOUBLE_EQ(res.statistic, 0.0);
}

TEST(QuickBattery, IdealPassesBiasedFails) {
  ASSERT_EQ(quick_battery_bits(), 20000u);
  const auto good = quick_battery(ideal_bits(quick_battery_bits(), 7));
  EXPECT_TRUE(good.passed);
  ASSERT_EQ(good.outcomes.size(), 4u);  // T1-T4, procedure order
  EXPECT_EQ(good.outcomes[0].name, t1_monobit(ideal_bits(20000, 7)).name);
  const auto bad = quick_battery(biased_bits(quick_battery_bits(), 0.4, 8));
  EXPECT_FALSE(bad.passed);
  EXPECT_FALSE(bad.failures.empty());
}

TEST(QuickBattery, UsesOnlyTheFirstBlock) {
  // Extra trailing garbage must not change the verdict: the battery
  // reads exactly quick_battery_bits().
  auto bits = ideal_bits(quick_battery_bits(), 9);
  const auto base = quick_battery(bits);
  bits.insert(bits.end(), 5000, std::uint8_t{1});
  const auto extended = quick_battery(bits);
  EXPECT_EQ(base.passed, extended.passed);
  for (std::size_t i = 0; i < base.outcomes.size(); ++i)
    EXPECT_DOUBLE_EQ(base.outcomes[i].statistic,
                     extended.outcomes[i].statistic);
}

TEST(T2, PokerDetectsPatterns) {
  EXPECT_TRUE(t2_poker(ideal_bits(20000, 4)).passed);
  // Repeating nibble pattern: poker explodes.
  std::vector<std::uint8_t> patterned(20000);
  for (std::size_t i = 0; i < patterned.size(); ++i)
    patterned[i] = (i % 4 == 0) ? 1 : 0;
  EXPECT_FALSE(t2_poker(patterned).passed);
}

TEST(T2, TooUniformAlsoFails) {
  // Perfectly equidistributed nibbles: X = 0 < 1.03 must FAIL (the
  // two-sided AIS31 bound catches "too good" data).
  std::vector<std::uint8_t> bits;
  bits.reserve(20000);
  for (std::size_t rep = 0; rep < 5000 / 16 + 1 && bits.size() < 20000;
       ++rep) {
    for (std::size_t v = 0; v < 16 && bits.size() < 20000; ++v) {
      for (std::size_t k = 0; k < 4; ++k)
        bits.push_back(static_cast<std::uint8_t>((v >> (3 - k)) & 1u));
    }
  }
  EXPECT_FALSE(t2_poker(bits).passed);
}

TEST(T3, RunsDistribution) {
  EXPECT_TRUE(t3_runs(ideal_bits(20000, 5)).passed);
  // Alternating bits: all runs have length 1 -> fails.
  std::vector<std::uint8_t> alt(20000);
  for (std::size_t i = 0; i < alt.size(); ++i)
    alt[i] = static_cast<std::uint8_t>(i & 1u);
  EXPECT_FALSE(t3_runs(alt).passed);
}

TEST(T4, LongRun) {
  EXPECT_TRUE(t4_long_run(ideal_bits(20000, 6)).passed);
  auto bits = ideal_bits(20000, 7);
  for (std::size_t i = 5000; i < 5040; ++i) bits[i] = 1;  // run of 40
  EXPECT_FALSE(t4_long_run(bits).passed);
}

TEST(T5, AutocorrelationDetectsPeriodicity) {
  EXPECT_TRUE(t5_autocorrelation(ideal_bits(20000, 8)).passed);
  // Strong correlation at lag 7: b_{i+7} = b_i.
  std::vector<std::uint8_t> per(20000);
  const auto seedbits = ideal_bits(7, 9);
  for (std::size_t i = 0; i < per.size(); ++i)
    per[i] = seedbits[i % 7];
  EXPECT_FALSE(t5_autocorrelation(per).passed);
}

TEST(T6, UniformDistribution) {
  EXPECT_TRUE(t6_uniform(ideal_bits(100000, 10)).passed);
  EXPECT_FALSE(t6_uniform(biased_bits(100000, 0.45, 11)).passed);
}

TEST(T7, TransitionHomogeneity) {
  EXPECT_TRUE(t7_homogeneity(ideal_bits(100001, 12)).passed);
  // Markov chain with asymmetric transitions fails homogeneity.
  Xoshiro256pp rng(13);
  std::vector<std::uint8_t> markov(100001);
  std::uint8_t s = 0;
  for (auto& b : markov) {
    const double p_one = (s == 0) ? 0.45 : 0.55;  // depends on state
    s = rng.uniform() < p_one ? 1 : 0;
    b = s;
  }
  EXPECT_FALSE(t7_homogeneity(markov).passed);
}

TEST(T8, EntropyEstimator) {
  const std::size_t need = (2560 + 256000) * 8;
  EXPECT_TRUE(t8_entropy(ideal_bits(need, 14)).passed);
  EXPECT_FALSE(t8_entropy(biased_bits(need, 0.35, 15)).passed);
}

TEST(ProcedureA, IdealInputPasses) {
  const auto bits = ideal_bits(procedure_a_bits(2), 16);
  const auto res = procedure_a(bits, 2);
  EXPECT_TRUE(res.passed) << res.outcomes[res.failures.empty()
                                              ? 0
                                              : res.failures[0]]
                                 .detail;
  EXPECT_EQ(res.outcomes.size(), 1u + 2u * 5u);
  EXPECT_TRUE(res.failures.empty());
}

TEST(ProcedureA, BiasedInputFailsWithFailureIndices) {
  const auto bits = biased_bits(procedure_a_bits(1), 0.42, 17);
  const auto res = procedure_a(bits, 1);
  EXPECT_FALSE(res.passed);
  EXPECT_FALSE(res.failures.empty());
  for (auto idx : res.failures) EXPECT_FALSE(res.outcomes[idx].passed);
}

TEST(ProcedureB, IdealInputPasses) {
  const auto bits = ideal_bits(procedure_b_bits(), 18);
  const auto res = procedure_b(bits);
  EXPECT_TRUE(res.passed);
  EXPECT_EQ(res.outcomes.size(), 3u);
}

TEST(ProcedureB, BiasedInputFails) {
  const auto bits = biased_bits(procedure_b_bits(), 0.4, 19);
  const auto res = procedure_b(bits);
  EXPECT_FALSE(res.passed);
}

TEST(ProcedureA, ParallelRoundsIdenticalForAnyThreadCount) {
  // T0 plus each round's T1-T5 fan out one task per round into fixed
  // outcome slots; verdicts, statistics, detail strings, and failure
  // indices must not depend on the pool width.
  const auto bits = biased_bits(procedure_a_bits(3), 0.47, 23);
  auto run = [&](std::size_t width) {
    ThreadPool::global().resize(width);
    auto res = procedure_a(bits, 3);
    ThreadPool::global().resize(0);
    return res;
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  ASSERT_EQ(one.outcomes.size(), 1u + 3u * 5u);
  for (const auto* other : {&two, &eight}) {
    EXPECT_EQ(one.passed, other->passed);
    EXPECT_EQ(one.failures, other->failures);
    ASSERT_EQ(one.outcomes.size(), other->outcomes.size());
    for (std::size_t i = 0; i < one.outcomes.size(); ++i) {
      EXPECT_EQ(one.outcomes[i].name, other->outcomes[i].name);
      EXPECT_EQ(one.outcomes[i].passed, other->outcomes[i].passed);
      EXPECT_EQ(one.outcomes[i].statistic, other->outcomes[i].statistic);
      EXPECT_EQ(one.outcomes[i].detail, other->outcomes[i].detail);
    }
  }
}

TEST(ProcedureA, OutcomeSlotsFollowRoundOrder) {
  // The parallel port fills fixed slots: T0 first, then T1..T5 per
  // round in order — the exact layout of the old sequential loop.
  const auto bits = ideal_bits(procedure_a_bits(2), 24);
  const auto res = procedure_a(bits, 2);
  ASSERT_EQ(res.outcomes.size(), 11u);
  EXPECT_EQ(res.outcomes[0].name, "T0 disjointness");
  const char* expected[] = {"T1 monobit", "T2 poker", "T3 runs",
                            "T4 long run", "T5 autocorrelation"};
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t t = 0; t < 5; ++t)
      EXPECT_EQ(res.outcomes[1 + r * 5 + t].name, expected[t])
          << "round " << r;
}

TEST(ProcedureB, ParallelBatteryIdenticalForAnyThreadCount) {
  // T6/T7/T8 fan out one per task into fixed outcome slots; verdicts,
  // statistics, and detail strings must not depend on the pool width.
  const auto bits = ideal_bits(procedure_b_bits(), 22);
  auto run = [&](std::size_t width) {
    ThreadPool::global().resize(width);
    auto res = procedure_b(bits);
    ThreadPool::global().resize(0);
    return res;
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  ASSERT_EQ(one.outcomes.size(), 3u);
  for (const auto* other : {&two, &eight}) {
    EXPECT_EQ(one.passed, other->passed);
    EXPECT_EQ(one.failures, other->failures);
    ASSERT_EQ(one.outcomes.size(), other->outcomes.size());
    for (std::size_t i = 0; i < one.outcomes.size(); ++i) {
      EXPECT_EQ(one.outcomes[i].name, other->outcomes[i].name);
      EXPECT_EQ(one.outcomes[i].passed, other->outcomes[i].passed);
      EXPECT_EQ(one.outcomes[i].statistic, other->outcomes[i].statistic);
      EXPECT_EQ(one.outcomes[i].detail, other->outcomes[i].detail);
    }
  }
}

// Known-answer tests: fixed seeded bitstreams with pinned verdicts AND
// per-test statistics, so a refactor of the battery (like the parallel
// port) cannot silently change what procedure_b computes. The pins come
// straight from the scalar t6/t7/t8 test functions, which the battery
// dispatches unchanged; Xoshiro256pp is fully specified, so the streams
// are identical on every platform. T6/T7 statistics are pure counting
// arithmetic (exactly reproducible); T8 goes through log2, so it gets a
// 1e-9 pad for libm differences.
struct ProcedureBKat {
  std::uint64_t seed;
  double bias_p;  // 0.5 => unbiased ideal stream
  bool passed;
  bool t6_passed, t7_passed, t8_passed;
  double t6_stat, t7_stat, t8_stat;
};

class ProcedureBKatTest : public ::testing::TestWithParam<ProcedureBKat> {};

TEST_P(ProcedureBKatTest, PinnedVerdictsAndStatistics) {
  const auto& kat = GetParam();
  const auto bits =
      kat.bias_p == 0.5
          ? ideal_bits(procedure_b_bits(), kat.seed)
          : biased_bits(procedure_b_bits(), kat.bias_p, kat.seed);
  const auto res = procedure_b(bits);
  EXPECT_EQ(res.passed, kat.passed);
  ASSERT_EQ(res.outcomes.size(), 3u);
  EXPECT_EQ(res.outcomes[0].passed, kat.t6_passed);
  EXPECT_EQ(res.outcomes[1].passed, kat.t7_passed);
  EXPECT_EQ(res.outcomes[2].passed, kat.t8_passed);
  EXPECT_DOUBLE_EQ(res.outcomes[0].statistic, kat.t6_stat);
  EXPECT_DOUBLE_EQ(res.outcomes[1].statistic, kat.t7_stat);
  EXPECT_NEAR(res.outcomes[2].statistic, kat.t8_stat, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FixedStreams, ProcedureBKatTest,
    ::testing::Values(
        ProcedureBKat{0xA15, 0.5, true, true, true, true,
                      0.50273999999999996, 0.0044069379432975404,
                      8.0019252825069671},
        ProcedureBKat{0xB0B, 0.5, true, true, true, true,
                      0.49752000000000002, 0.0081058549925662332,
                      8.0023423067588642},
        ProcedureBKat{0xBAD, 0.45, false, false, true, false,
                      0.45029999999999998, 1.3222589203348414,
                      7.9412843224026135},
        ProcedureBKat{0xC0DE, 0.40, false, false, true, false,
                      0.39676, 1.0283865282307292, 7.7649168767544845}));

TEST(Procedures, SizeRequirementsEnforced) {
  const auto tiny = ideal_bits(1000, 20);
  EXPECT_THROW(ignore_result(procedure_a(tiny, 1)), ContractViolation);
  EXPECT_THROW(ignore_result(procedure_b(tiny)), ContractViolation);
  EXPECT_THROW(ignore_result(t1_monobit(tiny)), ContractViolation);
}

class BiasSweep : public ::testing::TestWithParam<double> {};

TEST_P(BiasSweep, T1PowerCurve) {
  // Monobit should pass near 0.5 and fail far away; the 20000-bit T1
  // bound corresponds to |p - 0.5| ~ 0.0173 at ~5 sigma.
  const double p = GetParam();
  const auto bits = biased_bits(20000, p, 21 + static_cast<std::uint64_t>(p * 1000));
  const bool passed = t1_monobit(bits).passed;
  if (std::abs(p - 0.5) < 0.005) {
    EXPECT_TRUE(passed) << p;
  }
  if (std::abs(p - 0.5) > 0.03) {
    EXPECT_FALSE(passed) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Biases, BiasSweep,
                         ::testing::Values(0.46, 0.48, 0.5, 0.52, 0.54));

}  // namespace
