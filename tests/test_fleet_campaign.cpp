// Fleet campaign engine tests: grid expansion order, shard determinism,
// scheduler-choice invariance, checkpoint round-trip/corruption
// handling, and the headline guarantee — a resumed campaign's report is
// BYTE-IDENTICAL to an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "model/fleet_campaign.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::model;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Small, fast campaign: first corners of the grid (ero/180nm/tt/f0 under
// each attack), short shards (AIS-31 quick battery auto-skips below
// 20000 bits — shard metrics still exercise entropy + health engine).
CampaignConfig small_config() {
  CampaignConfig config;
  config.corners = 4;
  config.seeds = 2;
  config.bits_per_shard = 1024;
  config.batch_size = 3;
  return config;
}

bool states_equal(const stats::RunningStatsState& a,
                  const stats::RunningStatsState& b) {
  return a.n == b.n && a.mean == b.mean && a.m2 == b.m2 && a.m3 == b.m3 &&
         a.m4 == b.m4 && a.min == b.min && a.max == b.max;
}

bool accumulators_equal(const CornerAccumulator& a,
                        const CornerAccumulator& b) {
  return a.shards == b.shards && a.ais31_run == b.ais31_run &&
         a.ais31_pass == b.ais31_pass && a.alarmed == b.alarmed &&
         states_equal(a.markov_entropy.state(), b.markov_entropy.state()) &&
         states_equal(a.min_entropy.state(), b.min_entropy.state()) &&
         states_equal(a.detect_latency.state(), b.detect_latency.state());
}

TEST(Grid, FullGridShapeAndOrder) {
  CampaignConfig config;  // corners = 0 -> full grid
  const auto grid = expand_grid(config);
  // (ero + multi_ring) x 4 attacks + cell_array x 1 attack = 9 cells
  // per (node, corner, flicker) = 9 * 4 * 3 * 3.
  EXPECT_EQ(grid.size(), 9u * 4u * 3u * 3u);
  // Attack is the innermost axis; "none" leads every block.
  EXPECT_EQ(grid[0].name(), "ero/180nm/tt/f0/none");
  EXPECT_EQ(grid[1].name(), "ero/180nm/tt/f0/em_weak");
  EXPECT_EQ(grid[2].name(), "ero/180nm/tt/f0/em_strong");
  EXPECT_EQ(grid[3].name(), "ero/180nm/tt/f0/lock");
  EXPECT_EQ(grid[4].name(), "ero/180nm/tt/f1/none");
}

TEST(Grid, TruncationTakesAPrefix) {
  CampaignConfig config;
  const auto full = expand_grid(config);
  config.corners = 7;
  const auto cut = expand_grid(config);
  ASSERT_EQ(cut.size(), 7u);
  for (std::size_t i = 0; i < cut.size(); ++i)
    EXPECT_EQ(cut[i].name(), full[i].name());
}

TEST(Grid, CellArrayRunsUnattackedOnly) {
  CampaignConfig config;
  for (const auto& spec : expand_grid(config))
    if (spec.generator == "cell_array") EXPECT_EQ(spec.attack, "none");
}

TEST(Config, CanonicalStringSeparatesCampaigns) {
  CampaignConfig a = small_config();
  CampaignConfig b = a;
  EXPECT_EQ(canonical_config(a), canonical_config(b));
  b.seed ^= 1;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  b = a;
  b.bits_per_shard += 1;
  EXPECT_NE(canonical_config(a), canonical_config(b));
  // Interruption / scheduling knobs deliberately do NOT key the
  // checkpoint: they cannot change the folded stream.
  b = a;
  b.checkpoint_path = "somewhere";
  b.max_shards = 3;
  b.use_work_stealing = false;
  EXPECT_EQ(canonical_config(a), canonical_config(b));
}

TEST(Shard, DeterministicAcrossCalls) {
  const auto config = small_config();
  const auto grid = expand_grid(config);
  for (const auto& spec : grid) {
    const auto a = run_shard(spec, 0x5eed, config);
    const auto b = run_shard(spec, 0x5eed, config);
    EXPECT_EQ(a.markov_entropy, b.markov_entropy) << spec.name();
    EXPECT_EQ(a.min_entropy, b.min_entropy) << spec.name();
    EXPECT_EQ(a.alarmed, b.alarmed) << spec.name();
    EXPECT_EQ(a.latency_bits, b.latency_bits) << spec.name();
  }
}

TEST(Campaign, SchedulerChoiceDoesNotChangeTheReport) {
  auto config = small_config();
  config.use_work_stealing = true;
  const auto ws = run_campaign(config);
  config.use_work_stealing = false;
  const auto fixed = run_campaign(config);
  EXPECT_EQ(ws.json(), fixed.json());
  EXPECT_EQ(ws.table(), fixed.table());
}

TEST(Campaign, LockAttackAlarmsHealthyCornerDoesNot) {
  auto config = small_config();
  const auto report = run_campaign(config);
  ASSERT_EQ(report.corners.size(), 4u);
  EXPECT_TRUE(report.complete);
  // Corner 3 is ero/180nm/tt/f0/lock: near-total injection lock, the
  // stream goes static and the §4.4 repetition-count test fires on
  // every device.
  EXPECT_EQ(report.corners[3].acc.alarmed, report.corners[3].acc.shards);
  EXPECT_EQ(report.corners[3].verdict, "detected");
  EXPECT_GT(report.corners[0].acc.markov_entropy.mean(),
            report.corners[3].acc.markov_entropy.mean());
}

TEST(Campaign, MaxShardsStopsWithPartialReport) {
  auto config = small_config();
  config.max_shards = 3;
  const auto report = run_campaign(config);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.shards_folded, 3u);
  EXPECT_EQ(report.shards_total, 8u);
}

TEST(Campaign, ResumedReportIsByteIdenticalToUninterrupted) {
  auto config = small_config();
  const auto uninterrupted = run_campaign(config);

  const auto ckp = temp_path("ptrng_fleet_resume_test.ckp");
  std::filesystem::remove(ckp);
  config.checkpoint_path = ckp;
  config.resume = true;  // missing file on the first leg = fresh start
  config.max_shards = 3;
  CampaignReport resumed;
  // 8 shards in legs of <= 3: the batch cadence (batch_size = 3) and
  // the interruption points interleave arbitrarily with corner
  // boundaries — exactly the adversarial case for the fold.
  for (int leg = 0; leg < 4; ++leg) {
    resumed = run_campaign(config);
    if (resumed.complete) break;
  }
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.json(), uninterrupted.json());
  EXPECT_EQ(resumed.table(), uninterrupted.table());
  std::filesystem::remove(ckp);
}

TEST(Checkpoint, RoundTripsBitExactly) {
  auto config = small_config();
  config.corners = 2;
  CampaignState state;
  state.corners.resize(2);
  ShardResult r;
  r.markov_entropy = 0.8125;
  r.min_entropy = 0.5;
  r.ais31_run = true;
  r.ais31_pass = false;
  r.alarmed = true;
  r.latency_bits = 41.0;
  state.corners[0].fold(r);
  r.alarmed = false;
  r.markov_entropy = 0.3;  // not representable: exercises exact bits
  state.corners[1].fold(r);
  state.folded = 2;

  const auto path = temp_path("ptrng_fleet_roundtrip_test.ckp");
  write_checkpoint(path, config, state);
  const auto loaded = read_checkpoint(path, config);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->folded, state.folded);
  ASSERT_EQ(loaded->corners.size(), state.corners.size());
  for (std::size_t i = 0; i < state.corners.size(); ++i)
    EXPECT_TRUE(accumulators_equal(loaded->corners[i], state.corners[i]));
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileReturnsNullopt) {
  const auto config = small_config();
  EXPECT_FALSE(
      read_checkpoint(temp_path("ptrng_fleet_no_such_file.ckp"), config)
          .has_value());
}

TEST(Checkpoint, ForeignConfigDigestThrows) {
  auto config = small_config();
  config.corners = 2;
  CampaignState state;
  state.corners.resize(2);
  const auto path = temp_path("ptrng_fleet_digest_test.ckp");
  write_checkpoint(path, config, state);
  auto other = config;
  other.seed ^= 1;
  EXPECT_THROW((void)read_checkpoint(path, other), DataError);
  std::filesystem::remove(path);
}

TEST(Checkpoint, CorruptionIsRejected) {
  auto config = small_config();
  config.corners = 2;
  CampaignState state;
  state.corners.resize(2);
  const auto path = temp_path("ptrng_fleet_corrupt_test.ckp");
  write_checkpoint(path, config, state);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Truncation.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), 40);
  }
  EXPECT_THROW((void)read_checkpoint(path, config), DataError);
  // Bad magic.
  {
    auto bad = bytes;
    bad[0] = 'X';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  EXPECT_THROW((void)read_checkpoint(path, config), DataError);
  // Payload size mismatch (one corner chopped off).
  {
    auto bad = bytes;
    bad.resize(bad.size() - 8);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  EXPECT_THROW((void)read_checkpoint(path, config), DataError);
  std::filesystem::remove(path);
}

TEST(Report, JsonIsVersionedAndTimestampFree) {
  auto config = small_config();
  config.corners = 1;
  config.seeds = 1;
  const auto report = run_campaign(config);
  const auto json = report.json();
  EXPECT_NE(json.find("\"format\":\"ptrng-fleet-campaign-report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"config_digest\":\"" + report.config_digest),
            std::string::npos);
  // Renders must be reproducible call to call.
  EXPECT_EQ(json, report.json());
}

}  // namespace
