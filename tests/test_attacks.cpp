// Unit tests for the attack models: noise suppression, deterministic
// modulation, detectability by the online monitor.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/injection.hpp"
#include "common/contracts.hpp"
#include "measurement/counter.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "stats/descriptive.hpp"
#include "trng/online_test.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::attacks;

TEST(InjectionAttack, SuppressesThermalQuadratically) {
  oscillator::RingOscillatorConfig cfg = oscillator::paper_single_config(1);
  InjectionAttack atk;
  atk.coupling = 0.5;
  const auto attacked = atk.apply(cfg);
  EXPECT_NEAR(attacked.b_th, cfg.b_th * 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(attacked.b_fl, cfg.b_fl);  // flicker untouched
}

TEST(InjectionAttack, ZeroCouplingIsIdentity) {
  oscillator::RingOscillatorConfig cfg = oscillator::paper_single_config(2);
  InjectionAttack atk;
  atk.coupling = 0.0;
  const auto attacked = atk.apply(cfg);
  EXPECT_DOUBLE_EQ(attacked.b_th, cfg.b_th);
}

TEST(InjectionAttack, RejectsFullLock) {
  oscillator::RingOscillatorConfig cfg = oscillator::paper_single_config(3);
  InjectionAttack atk;
  atk.coupling = 1.0;
  EXPECT_THROW((void)atk.apply(cfg), ContractViolation);
}

TEST(InjectionAttack, ModulationIsSinusoidalAtTheBeat) {
  InjectionAttack atk;
  atk.f_injected = 100.001e6;
  atk.modulation_depth = 1e-4;
  oscillator::RingOscillatorConfig cfg;
  cfg.f0 = 100e6;
  cfg.mismatch = 0.0;
  const auto mod = atk.modulation_for(cfg);  // beat = 1 kHz
  EXPECT_NEAR(mod(0.0), 0.0, 1e-12);
  EXPECT_NEAR(mod(0.25e-3), 1e-4, 1e-9);  // quarter period -> peak
  EXPECT_NEAR(mod(0.5e-3), 0.0, 1e-9);
}

TEST(InjectionAttack, BeatTracksEachRingsOwnFrequency) {
  // Two mismatched rings attacked by the same tone see different beats —
  // the differential signature the detector relies on.
  InjectionAttack atk;
  atk.f_injected = 103.05e6;
  oscillator::RingOscillatorConfig c1 = oscillator::paper_single_config(7);
  oscillator::RingOscillatorConfig c2 = oscillator::paper_single_config(8);
  c1.mismatch = +1.5e-3;
  c2.mismatch = -1.5e-3;
  const auto m1 = atk.modulation_for(c1);
  const auto m2 = atk.modulation_for(c2);
  // Sample both modulations; they must decorrelate quickly.
  double max_diff = 0.0;
  for (double t = 0.0; t < 1e-4; t += 1e-6)
    max_diff = std::max(max_diff, std::abs(m1(t) - m2(t)));
  EXPECT_GT(max_diff, 0.5e-4);
}

TEST(InjectionAttack, AttackedOscillatorHasLowerJitterVariance) {
  oscillator::RingOscillatorConfig cfg = oscillator::paper_single_config(4);
  cfg.b_fl = 0.0;
  InjectionAttack atk;
  atk.coupling = 0.7;
  atk.modulation_depth = 0.0;
  oscillator::RingOscillator clean(cfg);
  auto attacked = make_attacked_oscillator(cfg, atk);
  stats::RunningStats a, b;
  for (int i = 0; i < 200000; ++i) {
    a.add(clean.next_period().jitter());
    b.add(attacked.next_period().jitter());
  }
  EXPECT_NEAR(b.variance() / a.variance(), 0.09, 0.02);
}

TEST(InjectionAttack, EmPresetIsAggressive) {
  const auto atk = em_harmonic_attack();
  EXPECT_GE(atk.coupling, 0.5);
  EXPECT_GT(atk.modulation_depth, 1e-4);
}

TEST(AttackDetection, MonitorAlarmsUnderInjection) {
  using namespace ptrng::oscillator;
  // Calibrate the monitor against the measured healthy variance (which
  // includes the counter quantization floor), then detect a strong EM
  // injection. Pure thermal suppression alone hides below the
  // quantization floor at counter-accessible N (the paper's paradox —
  // characterized in bench_attack_detection); the differential beat the
  // injection superimposes is the robust signature.
  const std::size_t n_cycles = 20000;
  const std::size_t wpt = 4096;
  auto h1 = paper_single_config(5);
  auto h2 = paper_single_config(6);
  h1.mismatch = +1.5e-3;
  h2.mismatch = -1.5e-3;
  RingOscillator healthy1(h1), healthy2(h2);
  measurement::DifferentialCounter healthy_counter(healthy1, healthy2);
  const double ref = healthy_counter.sigma2_n(n_cycles, 16384);

  trng::OnlineTestConfig cfg;
  cfg.n_cycles = n_cycles;
  cfg.windows_per_test = wpt;
  cfg.reference_sigma2 = ref;
  cfg.false_alarm = 1e-4;
  trng::ThermalNoiseMonitor monitor(cfg, paper::f0);

  // Healthy stream: at most 1 alarm expected in 6 decisions.
  RingOscillator fresh1(h1), fresh2(h2);
  measurement::DifferentialCounter counter(fresh1, fresh2);
  std::size_t healthy_alarms = 0, healthy_decisions = 0;
  for (const auto q : counter.count_windows(n_cycles, wpt * 6 + 1)) {
    trng::OnlineTestDecision d;
    if (monitor.push_count(q, &d)) {
      ++healthy_decisions;
      if (d.alarm) ++healthy_alarms;
    }
  }
  EXPECT_GE(healthy_decisions, 5u);
  EXPECT_LE(healthy_alarms, 1u);

  // Attacked stream: strong EM injection on both rings; the common tone
  // beats differently against each ring's natural frequency, inflating
  // Var(s_N) well past the acceptance band.
  const InjectionAttack atk = em_harmonic_attack(0.9);
  auto a1 = make_attacked_oscillator(h1, atk);
  auto a2 = make_attacked_oscillator(h2, atk);
  measurement::DifferentialCounter attacked_counter(a1, a2);
  trng::ThermalNoiseMonitor monitor2(cfg, paper::f0);
  std::size_t attack_alarms = 0, attack_decisions = 0;
  for (const auto q : attacked_counter.count_windows(n_cycles, wpt * 6 + 1)) {
    trng::OnlineTestDecision d;
    if (monitor2.push_count(q, &d)) {
      ++attack_decisions;
      if (d.alarm) ++attack_alarms;
    }
  }
  EXPECT_GE(attack_decisions, 5u);
  EXPECT_GE(attack_alarms, attack_decisions - 1);
}

}  // namespace
