// Unit tests for the noise generators: PSD calibration of every 1/f
// family, stationarity, RTN statistics, power-law model bookkeeping.
#include <gtest/gtest.h>

#include "ignore_result.hpp"

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "noise/filter_bank.hpp"
#include "noise/kasdin.hpp"
#include "noise/psd_model.hpp"
#include "noise/rtn.hpp"
#include "noise/voss.hpp"
#include "noise/white.hpp"
#include "stats/descriptive.hpp"
#include "stats/psd.hpp"

namespace {

using ptrng::test::ignore_result;

using namespace ptrng;
using namespace ptrng::noise;

std::vector<double> collect(NoiseSource& src, std::size_t n) {
  std::vector<double> out(n);
  src.fill(out);
  return out;
}

TEST(WhiteGaussian, MomentsAndPsdLevel) {
  WhiteGaussianNoise src(2.0, 1000.0, 1);
  const auto x = collect(src, 1 << 17);
  stats::RunningStats rs;
  for (double v : x) rs.add(v);
  EXPECT_NEAR(rs.mean(), 0.0, 0.03);
  EXPECT_NEAR(rs.variance(), 4.0, 0.1);
  EXPECT_DOUBLE_EQ(src.psd_two_sided(), 4.0 / 1000.0);

  const auto est = stats::welch(x, 1000.0, 1 << 10);
  const double level = stats::psd_level(est, 50.0, 450.0);
  // one-sided estimate = 2 x two-sided.
  EXPECT_NEAR(level, 2.0 * src.psd_two_sided(),
              0.05 * 2.0 * src.psd_two_sided());
}

TEST(WhiteGaussian, RejectsBadParams) {
  EXPECT_THROW(WhiteGaussianNoise(-1.0, 1.0, 1), ContractViolation);
  EXPECT_THROW(WhiteGaussianNoise(1.0, 0.0, 1), ContractViolation);
}

TEST(FilterBankFlicker, AnalyticPsdTracksTarget) {
  FilterBankFlicker::Config cfg;
  cfg.amplitude = 2.5e-3;
  cfg.fs = 1.0;
  cfg.f_min = 1e-5;
  cfg.f_max = 0.25;
  cfg.stages_per_decade = 3;
  FilterBankFlicker src(cfg);
  // In-band, the Lorentzian sum should match amplitude/f within ~15%.
  for (double f : {1e-4, 1e-3, 1e-2, 0.1}) {
    const double a = src.analytic_psd(f);
    const double t = src.target_psd(f);
    EXPECT_NEAR(a / t, 1.0, 0.15) << "f = " << f;
  }
}

TEST(FilterBankFlicker, MeasuredPsdMatchesAnalytic) {
  FilterBankFlicker::Config cfg;
  cfg.amplitude = 1e-2;
  cfg.fs = 1.0;
  cfg.f_min = 1e-4;
  cfg.f_max = 0.25;
  cfg.seed = 2;
  FilterBankFlicker src(cfg);
  const auto x = collect(src, 1 << 19);
  const auto est = stats::welch(x, 1.0, 1 << 13);
  for (double f : {1e-3, 1e-2, 0.1}) {
    // Interpolate estimate around f.
    const double measured = stats::psd_level(est, f * 0.8, f * 1.25);
    const double analytic = 2.0 * src.analytic_psd(f);  // one-sided
    EXPECT_NEAR(measured / analytic, 1.0, 0.3) << "f = " << f;
  }
}

TEST(FilterBankFlicker, MeasuredSlopeIsMinusOne) {
  FilterBankFlicker::Config cfg;
  cfg.amplitude = 1.0;
  cfg.fs = 1.0;
  cfg.f_min = 1e-5;
  cfg.f_max = 0.25;
  cfg.seed = 3;
  FilterBankFlicker src(cfg);
  const auto x = collect(src, 1 << 19);
  const auto est = stats::welch(x, 1.0, 1 << 13);
  EXPECT_NEAR(stats::psd_slope(est, 1e-3, 0.1), -1.0, 0.15);
}

TEST(FilterBankFlicker, FillMatchesSteppedNextExactly) {
  // The batched fill() is the production fast path for every oscillator;
  // it must be BIT-identical to stepping, not merely statistically
  // equivalent. The total exceeds twice fill()'s internal 8192-sample
  // staging block, so one call crosses the in-call block boundary, and
  // the unaligned split re-enters mid-block.
  FilterBankFlicker::Config cfg;
  cfg.amplitude = 1e-2;
  cfg.fs = 1.0;
  cfg.f_min = 1e-4;
  cfg.f_max = 0.25;
  cfg.seed = 0xf111;
  FilterBankFlicker stepped(cfg), batched(cfg);

  std::vector<double> expected(8192 * 2 + 777);
  for (auto& x : expected) x = stepped.next();

  // Split the fill into unaligned pieces: 37 + 3000 + remainder (the
  // remainder spans > 8192 samples => internal block crossing).
  std::vector<double> got(expected.size());
  batched.fill(std::span<double>(got).subspan(0, 37));
  batched.fill(std::span<double>(got).subspan(37, 3000));
  batched.fill(std::span<double>(got).subspan(3037));
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "sample " << i;

  // Both generators must stay in lockstep afterwards.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(batched.next(), stepped.next());
}

TEST(FilterBankFlicker, FillComposesWithAdvanceSum) {
  // advance_sum consumes exactly two draws per stage from the same
  // per-stage streams, so interleaving it with fill() vs with looped
  // next() must keep the two generators bit-identical.
  FilterBankFlicker::Config cfg;
  cfg.amplitude = 1.0;
  cfg.fs = 1.0;
  cfg.f_min = 1e-3;
  cfg.f_max = 0.25;
  cfg.seed = 0xf112;
  FilterBankFlicker stepped(cfg), batched(cfg);

  for (int round = 0; round < 5; ++round) {
    const std::size_t n = 100 + static_cast<std::size_t>(round) * 501;
    std::vector<double> expected(n), got(n);
    for (auto& x : expected) x = stepped.next();
    batched.fill(got);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], expected[i]) << "round " << round << " sample " << i;
    EXPECT_EQ(batched.advance_sum(64), stepped.advance_sum(64))
        << "round " << round;
  }
}

TEST(WhiteGaussian, FillMatchesSteppedNextExactly) {
  WhiteGaussianNoise stepped(2.0, 1000.0, 0x77), batched(2.0, 1000.0, 0x77);
  std::vector<double> expected(1000);
  for (auto& x : expected) x = stepped.next();
  std::vector<double> got(expected.size());
  batched.fill(got);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expected[i]);
}

TEST(FilterBankFlicker, StationaryFromFirstSample) {
  // Variance over the first 1000 samples should match variance over a
  // late window (states start in stationary distribution).
  FilterBankFlicker::Config cfg;
  cfg.amplitude = 1.0;
  cfg.fs = 1.0;
  cfg.f_min = 1e-3;
  cfg.f_max = 0.25;
  cfg.seed = 4;
  FilterBankFlicker src(cfg);
  const auto x = collect(src, 200'000);
  stats::RunningStats early, late;
  for (std::size_t i = 0; i < 50'000; ++i) early.add(x[i]);
  for (std::size_t i = 150'000; i < 200'000; ++i) late.add(x[i]);
  EXPECT_NEAR(early.variance() / late.variance(), 1.0, 0.35);
}

TEST(KasdinFlicker, AnalyticPsdAtLowFrequency) {
  KasdinFlicker::Config cfg;
  cfg.alpha = 1.0;
  cfg.sigma_w = KasdinFlicker::sigma_w_for_amplitude(1.0);
  cfg.fs = 1.0;
  KasdinFlicker src(cfg);
  // Exact discrete PSD -> amplitude/f for f << fs.
  for (double f : {1e-4, 1e-3, 1e-2}) {
    EXPECT_NEAR(src.analytic_psd(f) * f, 1.0, 0.05) << "f = " << f;
  }
}

TEST(KasdinFlicker, MeasuredSlopeMatchesAlpha) {
  for (double alpha : {0.5, 1.0, 1.5}) {
    KasdinFlicker::Config cfg;
    cfg.alpha = alpha;
    cfg.sigma_w = 1.0;
    cfg.fs = 1.0;
    cfg.fir_length = 1 << 13;
    cfg.seed = 5 + static_cast<std::uint64_t>(alpha * 2);
    KasdinFlicker src(cfg);
    const auto x = collect(src, 1 << 18);
    const auto est = stats::welch(x, 1.0, 1 << 12);
    EXPECT_NEAR(stats::psd_slope(est, 2e-3, 0.1), -alpha, 0.12)
        << "alpha = " << alpha;
  }
}

TEST(KasdinFlicker, BlockGenerationIsSeamless) {
  // next() across block boundaries must look statistically identical to a
  // single fill; check no variance discontinuity around the block edge.
  KasdinFlicker::Config cfg;
  cfg.alpha = 1.0;
  cfg.sigma_w = 1.0;
  cfg.fs = 1.0;
  cfg.block = 1 << 10;
  cfg.fir_length = 1 << 12;
  cfg.seed = 6;
  KasdinFlicker src(cfg);
  const auto x = collect(src, 1 << 15);
  stats::RunningStats at_edges, mid_block;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t pos = i % (1 << 10);
    if (pos < 16 || pos > (1 << 10) - 16) at_edges.add(x[i]);
    else mid_block.add(x[i]);
  }
  EXPECT_NEAR(at_edges.variance() / mid_block.variance(), 1.0, 0.3);
}

TEST(Rtn, FlipRateAndMoments) {
  const double lambda = 0.05;  // per second
  const double fs = 1.0;
  RandomTelegraphNoise rtn(1.0, lambda, fs, 7);
  std::size_t flips = 0;
  double prev = rtn.next();
  const std::size_t n = 400'000;
  stats::RunningStats rs;
  rs.add(prev);
  for (std::size_t i = 1; i < n; ++i) {
    const double v = rtn.next();
    if (v != prev) ++flips;
    prev = v;
    rs.add(v);
  }
  // Expected flips ~ n * (1 - exp(-lambda/fs)).
  const double expected =
      static_cast<double>(n) * (1.0 - std::exp(-lambda / fs));
  EXPECT_NEAR(static_cast<double>(flips), expected, 5.0 * std::sqrt(expected));
  EXPECT_NEAR(rs.mean(), 0.0, 0.05);
  EXPECT_NEAR(rs.variance(), 1.0, 0.01);
}

TEST(Rtn, LorentzianPsdShape) {
  const double lambda = 0.01;
  RandomTelegraphNoise rtn(1.0, lambda, 1.0, 8);
  // Analytic: flat below lambda/pi, -2 slope above.
  const double low = rtn.analytic_psd(1e-5);
  const double corner = rtn.analytic_psd(lambda / M_PI);
  EXPECT_NEAR(corner / low, 0.5, 0.01);
  const double high1 = rtn.analytic_psd(0.1);
  const double high2 = rtn.analytic_psd(0.2);
  EXPECT_NEAR(high1 / high2, 4.0, 0.05);
}

TEST(RtnSuperposition, ApproximatesOneOverF) {
  RtnSuperposition::Config cfg;
  cfg.traps = 30;
  cfg.lambda_min = 1e-4;
  cfg.lambda_max = 0.5;
  cfg.amplitude = 1.0;
  cfg.fs = 1.0;
  cfg.seed = 9;
  RtnSuperposition src(cfg);
  EXPECT_EQ(src.trap_count(), 30u);
  // Analytic Lorentzian sum slope ~ -1 in the mid-band.
  std::vector<double> fs_grid, psd_vals;
  for (double f = 3e-4; f < 3e-2; f *= 1.5) {
    fs_grid.push_back(f);
    psd_vals.push_back(src.analytic_psd(f));
  }
  double slope_sum = 0.0;
  for (std::size_t i = 1; i < fs_grid.size(); ++i)
    slope_sum += std::log(psd_vals[i] / psd_vals[i - 1]) /
                 std::log(fs_grid[i] / fs_grid[i - 1]);
  const double mean_slope =
      slope_sum / static_cast<double>(fs_grid.size() - 1);
  EXPECT_NEAR(mean_slope, -1.0, 0.25);
}

TEST(Voss, ProducesLowFrequencyExcess) {
  VossMcCartney src(16, 1.0, 10);
  const auto x = collect(src, 1 << 17);
  const auto est = stats::welch(x, 1.0, 1 << 12);
  const double slope = stats::psd_slope(est, 1e-3, 0.1);
  // Voss is a stair-step pink approximation: slope in (-1.3, -0.5).
  EXPECT_LT(slope, -0.5);
  EXPECT_GT(slope, -1.4);
}

TEST(PowerLawPsd, EvaluationAndCoefficients) {
  PowerLawPsd psd(Sidedness::two_sided);
  psd.add_term(4.0, -2.0, "thermal");
  psd.add_term(8.0, -3.0, "flicker");
  EXPECT_DOUBLE_EQ(psd(2.0), 4.0 / 4.0 + 8.0 / 8.0);
  EXPECT_DOUBLE_EQ(psd.coefficient(-2.0), 4.0);
  EXPECT_DOUBLE_EQ(psd.coefficient(-3.0), 8.0);
  EXPECT_DOUBLE_EQ(psd.coefficient(0.0), 0.0);
}

TEST(PowerLawPsd, SidednessConversionRoundTrip) {
  PowerLawPsd two(Sidedness::two_sided);
  two.add_term(3.0, -1.0);
  const auto one = two.as(Sidedness::one_sided);
  EXPECT_DOUBLE_EQ(one.coefficient(-1.0), 6.0);
  const auto back = one.as(Sidedness::two_sided);
  EXPECT_DOUBLE_EQ(back.coefficient(-1.0), 3.0);
  // Same-sidedness conversion is the identity.
  const auto same = two.as(Sidedness::two_sided);
  EXPECT_DOUBLE_EQ(same.coefficient(-1.0), 3.0);
}

TEST(PowerLawPsd, MergesDuplicateExponents) {
  PowerLawPsd psd(Sidedness::one_sided);
  psd.add_term(1.0, -1.0, "a");
  psd.add_term(2.0, -1.0, "b");
  EXPECT_DOUBLE_EQ(psd.coefficient(-1.0), 3.0);
}

TEST(PowerLawPsd, RejectsNegativeCoefficientAndZeroFrequency) {
  PowerLawPsd psd;
  EXPECT_THROW(psd.add_term(-1.0, 0.0), ContractViolation);
  psd.add_term(1.0, -1.0);
  EXPECT_THROW(ignore_result(psd(0.0)), ContractViolation);
}

}  // namespace
