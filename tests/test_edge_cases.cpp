// Focused edge-case tests: counter zero-count windows, the theta-series /
// wrapped-Gaussian switchover in bit_probability, sigma^2_N confidence-
// interval coverage, and entropy bound consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "measurement/counter.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "oscillator/ring_oscillator.hpp"
#include "trng/entropy.hpp"

namespace {

using namespace ptrng;

TEST(CounterEdgeCases, SlowSampledOscillatorYieldsZeroCountWindows) {
  // Osc1 runs at 1/10 of Osc2: windows of 5 Osc2 cycles usually contain
  // zero Osc1 edges; counts must average 0.5 and never go negative.
  oscillator::RingOscillatorConfig slow, fast;
  slow.f0 = 10e6;
  slow.b_th = 1e-9;
  slow.b_fl = 0.0;
  slow.seed = 1;
  fast.f0 = 100e6;
  fast.b_th = 1e-9;
  fast.b_fl = 0.0;
  fast.seed = 2;
  oscillator::RingOscillator osc1(slow), osc2(fast);
  measurement::DifferentialCounter counter(osc1, osc2);
  const auto counts = counter.count_windows(5, 2000);
  std::int64_t total = 0;
  std::size_t zeros = 0;
  for (auto q : counts) {
    ASSERT_GE(q, 0);
    ASSERT_LE(q, 2);
    total += q;
    if (q == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(total), 1000.0, 60.0);
  EXPECT_GT(zeros, 500u);
}

TEST(CounterEdgeCases, SingleCycleWindows) {
  // N = 1: counts are 0/1/2-valued around a mean of f1/f2.
  auto c1 = oscillator::paper_single_config(3);
  auto c2 = oscillator::paper_single_config(4);
  oscillator::RingOscillator osc1(c1), osc2(c2);
  measurement::DifferentialCounter counter(osc1, osc2);
  const auto counts = counter.count_windows(1, 5000);
  double mean = 0.0;
  for (auto q : counts) {
    ASSERT_GE(q, 0);
    ASSERT_LE(q, 3);
    mean += static_cast<double>(q);
  }
  mean /= static_cast<double>(counts.size());
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(BitProbability, ContinuousAcrossRepresentationSwitch) {
  // The wrapped-Gaussian (v < 0.04) and theta-series (v >= 0.04) branches
  // must agree at the boundary to full precision (dp/dv ~ -4, so the v
  // gap must be tiny to isolate representation error from the genuine
  // derivative).
  for (double mu : {0.0, 0.13, 0.25, 0.4, 0.49}) {
    const double below = trng::bit_probability(mu, 0.04 - 1e-12);
    const double above = trng::bit_probability(mu, 0.04 + 1e-12);
    EXPECT_NEAR(below, above, 1e-9) << "mu = " << mu;
  }
}

TEST(BitProbability, WrappedGaussianMatchesThetaDeepInOverlap) {
  // Both representations are exact; compare across the overlap region.
  for (double v : {0.01, 0.02, 0.03, 0.05, 0.08}) {
    for (double mu : {0.1, 0.3}) {
      // Evaluate via the theta series regardless of branch by exploiting
      // the symmetry p(mu, v) + p(mu+0.5, v) = 1 as a cross-check.
      const double p = trng::bit_probability(mu, v);
      const double q = trng::bit_probability(mu + 0.5, v);
      EXPECT_NEAR(p + q, 1.0, 1e-9) << "v = " << v << " mu = " << mu;
    }
  }
}

class CiCoverage : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CiCoverage, Sigma2nIntervalsContainTruth) {
  // For white jitter the true Var(s_N) = 2 N sigma^2; the 95% chi-square
  // CI should contain it in the vast majority of replicas.
  const std::size_t n = GetParam();
  const double sigma = 1e-12;
  const double truth = 2.0 * static_cast<double>(n) * sigma * sigma;
  int covered = 0;
  const int reps = 40;
  for (int r = 0; r < reps; ++r) {
    GaussianSampler g(1000 + static_cast<std::uint64_t>(r) * 7 + n);
    std::vector<double> j(60'000);
    for (auto& v : j) v = sigma * g();
    const std::vector<std::size_t> grid{n};
    const auto sweep = measurement::sigma2_n_sweep(j, grid);
    ASSERT_EQ(sweep.size(), 1u);
    if (truth >= sweep[0].ci_lo && truth <= sweep[0].ci_hi) ++covered;
  }
  // 95% nominal; allow down to 80% for the conservative effective-dof
  // approximation.
  EXPECT_GE(covered, 32) << "N = " << n;
}

INSTANTIATE_TEST_SUITE_P(Ns, CiCoverage, ::testing::Values(10, 50, 200));

TEST(EntropyBounds, LowerBoundBelowExactForAllMu) {
  // The worst-case conditional bound must lower-bound the exact bit
  // entropy at every offset mu.
  for (double v : {0.01, 0.05, 0.1}) {
    const double lb = trng::entropy_lower_bound(v);
    for (double mu = 0.0; mu < 1.0; mu += 0.1) {
      const double h = trng::bit_probability(mu, v);
      const double exact =
          (h <= 0.0 || h >= 1.0)
              ? 0.0
              : -(h * std::log2(h) + (1 - h) * std::log2(1 - h));
      EXPECT_LE(lb, exact + 1e-9) << "v = " << v << " mu = " << mu;
    }
  }
}

TEST(AdvanceEdgeCases, ZeroAndOnePeriod) {
  auto cfg = oscillator::paper_single_config(5);
  oscillator::RingOscillator osc(cfg);
  osc.advance_periods(0);
  EXPECT_EQ(osc.cycle_count(), 0u);
  EXPECT_DOUBLE_EQ(osc.edge_time(), 0.0);
  osc.advance_periods(1);
  EXPECT_EQ(osc.cycle_count(), 1u);
  EXPECT_GT(osc.edge_time(), 0.0);
}

}  // namespace
