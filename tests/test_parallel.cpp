// The parallel execution core (common/parallel.hpp) and the two hot paths
// ported onto it. The load-bearing property is determinism: identical
// results for any thread count, including the pool-of-1 inline path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "noise/filter_bank.hpp"
#include "noise/kasdin.hpp"

namespace {

using namespace ptrng;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WidthOneRunsInlineAndShutsDownCleanly) {
  // Pools of several widths started and destroyed back to back; each must
  // join its workers without hanging or leaking work.
  for (std::size_t width : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(width);
    EXPECT_EQ(pool.thread_count(), width);
    std::atomic<int> sum{0};
    pool.parallel_for(0, 64, 0, [&](std::size_t b, std::size_t e) {
      sum += static_cast<int>(e - b);
    });
    EXPECT_EQ(sum.load(), 64);
  }
}

TEST(ThreadPool, ResizeRespawnsWorkers) {
  ThreadPool pool(1);
  pool.resize(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 256, 1, [&](std::size_t b, std::size_t e) {
    sum += static_cast<int>(e - b);
  });
  EXPECT_EQ(sum.load(), 256);
  pool.resize(2);
  EXPECT_EQ(pool.thread_count(), 2u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (std::size_t width : {1u, 4u}) {
    ThreadPool pool(width);
    EXPECT_THROW(
        pool.parallel_for(0, 100, 1,
                          [&](std::size_t b, std::size_t) {
                            if (b == 57) throw std::runtime_error("chunk 57");
                          }),
        std::runtime_error);
    // The pool must remain usable after a failed job.
    std::atomic<int> sum{0};
    pool.parallel_for(0, 16, 1, [&](std::size_t b, std::size_t e) {
      sum += static_cast<int>(e - b);
    });
    EXPECT_EQ(sum.load(), 16);
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    // Nested fan-out must degrade to a serial loop on this worker rather
    // than deadlocking or oversubscribing.
    pool.parallel_for(0, 10, 3, [&](std::size_t b, std::size_t e) {
      inner_total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

// --- work-stealing mode (parallel_for_ws, PR 10) -------------------------

TEST(WorkStealing, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.parallel_for_ws(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkStealing, ExceptionPropagatesAndPoolStaysUsable) {
  for (std::size_t width : {1u, 4u}) {
    ThreadPool pool(width);
    EXPECT_THROW(
        pool.parallel_for_ws(0, 100, 1,
                             [&](std::size_t b, std::size_t) {
                               if (b == 57)
                                 throw std::runtime_error("chunk 57");
                             }),
        std::runtime_error);
    // Both modes must remain usable after a failed ws job (the job must
    // be unregistered, or every later wait would spin on a dead entry).
    std::atomic<int> sum{0};
    pool.parallel_for_ws(0, 16, 1, [&](std::size_t b, std::size_t e) {
      sum += static_cast<int>(e - b);
    });
    pool.parallel_for(0, 16, 1, [&](std::size_t b, std::size_t e) {
      sum += static_cast<int>(e - b);
    });
    EXPECT_EQ(sum.load(), 32);
  }
}

TEST(WorkStealing, NestedFanoutExecutesEveryInnerIndex) {
  // Unlike the deterministic mode (inline inner loop), a ws task that
  // fans out registers a child job the whole pool helps drain. Two
  // levels deep to exercise the help loop as an execution lane.
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for_ws(0, 8, 1, [&](std::size_t, std::size_t) {
    pool.parallel_for_ws(0, 10, 3, [&](std::size_t b, std::size_t e) {
      pool.parallel_for_ws(b, e, 1, [&](std::size_t bb, std::size_t ee) {
        inner_total += static_cast<int>(ee - bb);
      });
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(WorkStealing, InsideDeterministicTaskRunsInline) {
  // The deterministic mode's no-nesting contract is older than ws mode;
  // a ws call from inside a deterministic chunk must not fan out (it
  // could deadlock against the single-job deterministic queue).
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, 1, [&](std::size_t, std::size_t) {
    pool.parallel_for_ws(0, 12, 5, [&](std::size_t b, std::size_t e) {
      total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(total.load(), 48);
}

TEST(WorkStealing, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_ws(5, 5, 1,
                       [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

namespace {

// Deliberately skewed per-index work: a few indices burn ~100x the rest
// (the campaign's attacked-corner shape). Returns a value that depends
// on every loop iteration so the work cannot be optimized away.
double skewed_work(std::size_t i) {
  const std::size_t iters = (i % 16 == 0) ? 20'000 : 200;
  double acc = static_cast<double>(i + 1);
  for (std::size_t k = 0; k < iters; ++k)
    acc += 1.0 / (acc + static_cast<double>(k));
  return acc;
}

}  // namespace

TEST(WorkStealing, SkewedWorkloadResultsInvariantAcrossWidths) {
  // Execution order is dynamic, but per-index results land in per-index
  // slots, so the result vector must be bit-identical at any width.
  const auto run = [](std::size_t width) {
    ThreadPool pool(width);
    std::vector<double> out(256, 0.0);
    pool.parallel_for_ws(0, out.size(), 3,
                         [&](std::size_t b, std::size_t e) {
                           for (std::size_t i = b; i < e; ++i)
                             out[i] = skewed_work(i);
                         });
    return out;
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], two[i]) << "index " << i;
    EXPECT_EQ(one[i], eight[i]) << "index " << i;
  }
}

TEST(WorkStealing, StealingActuallyHappens) {
  // Chunks sleep, so the submitter cannot race through the whole range
  // before a worker claims something — even on a single hardware core
  // the sleeping submitter yields the CPU to the workers.
  ThreadPool pool(8);
  pool.reset_steal_count();
  EXPECT_EQ(pool.steal_count(), 0u);
  pool.parallel_for_ws(0, 32, 1, [&](std::size_t, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(WorkStealing, SubmitterOnlyCountsNoSteals) {
  ThreadPool pool(1);  // width 1: inline serial path, nobody to steal
  pool.reset_steal_count();
  pool.parallel_for_ws(0, 64, 1, [](std::size_t, std::size_t) {});
  EXPECT_EQ(pool.steal_count(), 0u);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReduceIsBitIdenticalAcrossWidths) {
  // Floating-point accumulation in chunk order: any reordering across
  // thread counts would change the rounding and fail the exact compare.
  const auto run = [](std::size_t width) {
    ThreadPool pool(width);
    return parallel_reduce(
        pool, 0, 100'000, 997, 0.0,
        [](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i)
            s += 1.0 / static_cast<double>(i + 1);
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(3));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, EnvOverrideControlsConfiguredCount) {
  ASSERT_EQ(setenv("PTRNG_THREADS", "3", 1), 0);
  EXPECT_EQ(configured_thread_count(), 3u);
  ASSERT_EQ(setenv("PTRNG_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(configured_thread_count(), 1u);  // falls back to hardware
  ASSERT_EQ(unsetenv("PTRNG_THREADS"), 0);
  EXPECT_GE(configured_thread_count(), 1u);
}

TEST(ChunkSeed, DecorrelatedAndDeterministic) {
  EXPECT_EQ(chunk_seed(42, 7), chunk_seed(42, 7));
  EXPECT_NE(chunk_seed(42, 7), chunk_seed(42, 8));
  EXPECT_NE(chunk_seed(42, 7), chunk_seed(43, 7));
}

// --- determinism of the ported hot paths across thread counts ------------

class GlobalPoolWidth {
 public:
  explicit GlobalPoolWidth(std::size_t width) {
    ThreadPool::global().resize(width);
  }
  ~GlobalPoolWidth() { ThreadPool::global().resize(0); }
};

TEST(SweepDeterminism, IdenticalForOneAndEightThreads) {
  std::vector<double> jitter(200'000);
  GaussianSampler gauss(0xabc123);
  for (auto& j : jitter) j = 1e-12 * gauss();
  const auto grid = log_integer_grid(10, 2'000, 12);

  std::vector<measurement::Sigma2nPoint> one, eight;
  {
    GlobalPoolWidth width(1);
    one = measurement::sigma2_n_sweep(jitter, grid);
  }
  {
    GlobalPoolWidth width(8);
    eight = measurement::sigma2_n_sweep(jitter, grid);
  }
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].n, eight[i].n);
    EXPECT_EQ(one[i].sigma2, eight[i].sigma2);  // bit-identical
    EXPECT_EQ(one[i].ci_lo, eight[i].ci_lo);
    EXPECT_EQ(one[i].ci_hi, eight[i].ci_hi);
    EXPECT_EQ(one[i].samples, eight[i].samples);
    EXPECT_EQ(one[i].eff_dof, eight[i].eff_dof);
  }
}

TEST(KasdinFill, MatchesSequentialNextStreamSampleForSample) {
  GlobalPoolWidth width(8);

  noise::KasdinFlicker::Config cfg;
  cfg.fir_length = 1 << 10;
  cfg.block = 1 << 8;
  cfg.seed = 0x5eed;
  noise::KasdinFlicker sequential(cfg);
  noise::KasdinFlicker batched(cfg);

  // Misalign the FIFO first so fill() starts mid-block; 70 blocks also
  // crosses fill()'s 64-block staging-round boundary.
  const std::size_t skip = 37;
  std::vector<double> expected(skip + 70 * cfg.block + 41);
  for (auto& x : expected) x = sequential.next();
  std::vector<double> head(skip);
  batched.fill(head);
  std::vector<double> tail(expected.size() - skip);
  batched.fill(tail);

  for (std::size_t i = 0; i < skip; ++i) EXPECT_EQ(head[i], expected[i]);
  for (std::size_t i = 0; i < tail.size(); ++i)
    EXPECT_EQ(tail[i], expected[skip + i]) << "sample " << i;

  // The generators must stay in lockstep after the batched path.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(batched.next(), sequential.next());
}

TEST(KasdinFill, ShortBlockLongFilterStaysExact) {
  // block < fir_length-1 exercises the history-spill path of the batched
  // fill.
  noise::KasdinFlicker::Config cfg;
  cfg.fir_length = 64;
  cfg.block = 16;
  cfg.seed = 0xfeed;
  noise::KasdinFlicker sequential(cfg);
  noise::KasdinFlicker batched(cfg);

  std::vector<double> expected(100);
  for (auto& x : expected) x = sequential.next();
  std::vector<double> got(expected.size());
  batched.fill(got);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "sample " << i;
}

TEST(FilterBankFill, ThreadCountInvariant) {
  // The per-stage fan-out folds stage contributions in stage order, so
  // the stream must be bit-identical for any pool width.
  noise::FilterBankFlicker::Config cfg;
  cfg.amplitude = 1e-2;
  cfg.fs = 1.0;
  cfg.f_min = 1e-4;
  cfg.f_max = 0.25;
  cfg.seed = 0xf113;

  std::vector<double> one(30'000), eight(one.size());
  {
    GlobalPoolWidth width(1);
    noise::FilterBankFlicker gen(cfg);
    gen.fill(one);
  }
  {
    GlobalPoolWidth width(8);
    noise::FilterBankFlicker gen(cfg);
    gen.fill(eight);
  }
  for (std::size_t i = 0; i < one.size(); ++i) EXPECT_EQ(one[i], eight[i]);
}

TEST(KasdinFill, ThreadCountInvariant) {
  noise::KasdinFlicker::Config cfg;
  cfg.fir_length = 1 << 10;
  cfg.block = 1 << 8;
  cfg.seed = 77;

  std::vector<double> one(4 * cfg.block), eight(4 * cfg.block);
  {
    GlobalPoolWidth width(1);
    noise::KasdinFlicker gen(cfg);
    gen.fill(one);
  }
  {
    GlobalPoolWidth width(8);
    noise::KasdinFlicker gen(cfg);
    gen.fill(eight);
  }
  for (std::size_t i = 0; i < one.size(); ++i) EXPECT_EQ(one[i], eight[i]);
}

}  // namespace
