// RandomByteService end-to-end (trng/rbg_service.hpp):
//  * per-consumer stream determinism: the bytes of (source seed,
//    consumer id) are identical at 1/2/8 PTRNG_THREADS and for any
//    consumer scheduling, and distinct ids give distinct streams;
//  * concurrent serving with reseeds riding the SPMC ring;
//  * health gating: a forced total failure stops byte output (every
//    fill fails) until acknowledge_failure() routes an engine reset +
//    root reseed through the producer, after which streams are forced
//    through a fresh reseed (epoch bump) before their next byte.
// The TSan CI job runs this suite with PTRNG_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "trng/bit_stream.hpp"
#include "trng/continuous_health.hpp"
#include "trng/ero_trng.hpp"
#include "trng/rbg_service.hpp"

namespace ptrng::trng {
namespace {

class GlobalPoolWidth {
 public:
  explicit GlobalPoolWidth(std::size_t width) {
    ThreadPool::global().resize(width);
  }
  ~GlobalPoolWidth() { ThreadPool::global().resize(0); }
};

/// Ideal iid BitSource (cheap; thread-safe only via external ownership).
class RngBitSource final : public BitSource {
 public:
  explicit RngBitSource(std::uint64_t seed) : rng_(seed) {}
  std::uint8_t next_bit() override {
    return static_cast<std::uint8_t>(rng_.next() & 1u);
  }

 private:
  Xoshiro256pp rng_;
};

/// Healthy iid source that can be switched to stuck-at-1 (and back) from
/// the test thread while the producer pumps it.
class SwitchableSource final : public BitSource {
 public:
  explicit SwitchableSource(std::uint64_t seed) : rng_(seed) {}
  std::uint8_t next_bit() override {
    if (stuck_.load(std::memory_order_acquire)) return 1;
    return static_cast<std::uint8_t>(rng_.next() & 1u);
  }
  void set_stuck(bool stuck) {
    stuck_.store(stuck, std::memory_order_release);
  }

 private:
  Xoshiro256pp rng_;
  std::atomic<bool> stuck_{false};
};

RbgServiceConfig quiet_config() {
  // No interval reseeds: streams never touch the ring, so their bytes
  // are a pure function of (source stream, consumer id).
  RbgServiceConfig cfg;
  cfg.conditioner.h_min = 0.5;
  cfg.drbg.reseed_interval = 1ull << 40;
  cfg.wait_budget = std::chrono::milliseconds(2000);
  return cfg;
}

// --- stream isolation & determinism --------------------------------------

TEST(RbgService, StreamsAreDeterministicAcrossThreadCountsAndScheduling) {
  constexpr std::uint64_t kSourceSeed = 0x90b;
  constexpr std::size_t kConsumers = 3;
  constexpr std::size_t kBytes = 4096;

  std::vector<std::vector<std::byte>> reference(kConsumers);
  for (const std::size_t width : {1u, 2u, 8u}) {
    GlobalPoolWidth pool(width);
    auto source = paper_trng(40, kSourceSeed);
    HealthEngine engine{ContinuousHealthConfig{}};
    RandomByteService service(source, engine, quiet_config());
    service.start();

    std::vector<std::vector<std::byte>> got(kConsumers,
                                            std::vector<std::byte>(kBytes));
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&service, &got, c] {
        auto stream = service.open_stream(/*consumer_id=*/c + 1);
        // Many small fills: exercises per-request chaining.
        for (std::size_t off = 0; off < kBytes; off += 256) {
          ASSERT_EQ(stream.fill({got[c].data() + off, 256}),
                    RandomByteService::FillStatus::kOk);
        }
        EXPECT_EQ(stream.bytes_served(), got[c].size());
      });
    }
    for (auto& t : threads) t.join();
    service.stop();

    for (std::size_t c = 0; c < kConsumers; ++c) {
      if (reference[c].empty()) {
        reference[c] = got[c];
      } else {
        EXPECT_EQ(got[c], reference[c])
            << "consumer " << c << " width " << width;
      }
    }
  }
  // Distinct consumer ids give distinct streams.
  EXPECT_NE(reference[0], reference[1]);
  EXPECT_NE(reference[1], reference[2]);
}

TEST(RbgService, FillSizeDoesNotChangeAStream) {
  // One 1024-byte fill == four 256-byte fills, byte for byte: request
  // chunking is internal to fill().
  RngBitSource src_a(0x11), src_b(0x11);
  HealthEngine engine_a{ContinuousHealthConfig{}};
  HealthEngine engine_b{ContinuousHealthConfig{}};
  auto cfg = quiet_config();
  cfg.drbg.max_bytes_per_request = 256;  // force internal chunking
  RandomByteService service_a(src_a, engine_a, cfg);
  RandomByteService service_b(src_b, engine_b, cfg);
  service_a.start();
  service_b.start();
  auto stream_a = service_a.open_stream(7);
  auto stream_b = service_b.open_stream(7);
  std::vector<std::byte> one(1024), four(1024);
  ASSERT_EQ(stream_a.fill(one), RandomByteService::FillStatus::kOk);
  for (std::size_t off = 0; off < four.size(); off += 256)
    ASSERT_EQ(stream_b.fill({four.data() + off, 256}),
              RandomByteService::FillStatus::kOk);
  EXPECT_EQ(one, four);
}

// --- concurrent serving with ring reseeds --------------------------------

TEST(RbgService, ConcurrentConsumersWithRingReseeds) {
  RngBitSource source(0x22);
  HealthEngine engine{ContinuousHealthConfig{}};
  RbgServiceConfig cfg;
  cfg.conditioner.h_min = 0.5;
  cfg.drbg.reseed_interval = 4;  // frequent ring pops
  cfg.wait_budget = std::chrono::milliseconds(5000);
  RandomByteService service(source, engine, cfg);
  service.start();

  constexpr std::size_t kConsumers = 8;
  std::atomic<std::uint64_t> total_reseeds{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&service, &total_reseeds, c] {
      auto stream = service.open_stream(100 + c);
      std::vector<std::byte> buf(64);
      for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(stream.fill(buf), RandomByteService::FillStatus::kOk)
            << "consumer " << c << " fill " << i;
      }
      total_reseeds.fetch_add(stream.reseeds(), std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  // 50 requests at interval 4: every consumer reseeded repeatedly.
  EXPECT_GE(total_reseeds.load(), kConsumers * 10u);
  EXPECT_GT(service.blocks_produced(), 0u);
  service.stop();
  EXPECT_EQ(service.state(), ServiceState::kStopped);
}

// --- health gating --------------------------------------------------------

TEST(RbgService, TotalFailureStopsOutputUntilAcknowledgeAndReseed) {
  SwitchableSource source(0x33);
  HealthEngine engine{ContinuousHealthConfig{}};
  RbgServiceConfig cfg = quiet_config();
  cfg.wait_budget = std::chrono::milliseconds(50);  // fail fast in-test
  RandomByteService service(source, engine, cfg);
  service.start();
  auto stream = service.open_stream(1);
  std::vector<std::byte> buf(64);
  ASSERT_EQ(stream.fill(buf), RandomByteService::FillStatus::kOk);
  const std::uint64_t reseeds_before = stream.reseeds();
  const std::uint64_t epoch_before = service.epoch();

  // Stuck source: the APT alarms once per window; three unrecovered
  // alarms escalate to total failure while the producer pumps.
  source.set_stuck(true);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.state() != ServiceState::kFailed) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "service never reached kFailed";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // No bytes while failed — and an acknowledge with the source STILL
  // stuck must re-alarm (the recovery pull is all stuck bits), so the
  // epoch never bumps and the service lands back in kFailed.
  EXPECT_EQ(stream.fill(buf), RandomByteService::FillStatus::kFailed);
  service.acknowledge_failure();
  EXPECT_EQ(service.epoch(), epoch_before);
  while (service.state() != ServiceState::kFailed) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "service did not re-fail on a still-stuck source";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stream.fill(buf), RandomByteService::FillStatus::kFailed);

  // Healthy again + acknowledged: the producer resets the engine,
  // reseeds the root and bumps the epoch; the stream is forced through
  // a reseed before its next byte.
  source.set_stuck(false);
  service.acknowledge_failure();
  EXPECT_EQ(service.state(), ServiceState::kNominal);
  EXPECT_EQ(service.epoch(), epoch_before + 1);
  ASSERT_EQ(stream.fill(buf), RandomByteService::FillStatus::kOk);
  EXPECT_EQ(stream.reseeds(), reseeds_before + 1);
  service.stop();
}

TEST(RbgService, FillAfterStopReportsNotStarted) {
  RngBitSource source(0x44);
  HealthEngine engine{ContinuousHealthConfig{}};
  RandomByteService service(source, engine, quiet_config());
  service.start();
  auto stream = service.open_stream(5);
  std::vector<std::byte> buf(16);
  ASSERT_EQ(stream.fill(buf), RandomByteService::FillStatus::kOk);
  service.stop();
  EXPECT_EQ(stream.fill(buf), RandomByteService::FillStatus::kNotStarted);
}

TEST(RbgService, PredictionResistanceReseedsEveryRequest) {
  RngBitSource source(0x55);
  HealthEngine engine{ContinuousHealthConfig{}};
  RbgServiceConfig cfg = quiet_config();
  cfg.drbg.prediction_resistance = true;
  cfg.wait_budget = std::chrono::milliseconds(5000);
  RandomByteService service(source, engine, cfg);
  service.start();
  auto stream = service.open_stream(9);
  std::vector<std::byte> buf(64);
  for (int i = 0; i < 5; ++i)
    ASSERT_EQ(stream.fill(buf), RandomByteService::FillStatus::kOk) << i;
  EXPECT_EQ(stream.reseeds(), 5u);
  service.stop();
}

}  // namespace
}  // namespace ptrng::trng
