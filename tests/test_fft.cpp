// Unit tests for ptrng_fft: transform correctness against closed forms,
// round trips, Parseval, windows, FFT autocorrelation.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/window.hpp"

namespace {

using namespace ptrng;
using std::complex;

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<complex<double>> x(8, 0.0);
  x[0] = 1.0;
  const auto y = fft::fft(x);
  for (const auto& c : y) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<complex<double>> x(n);
  const std::size_t k0 = 5;
  for (std::size_t t = 0; t < n; ++t)
    x[t] = std::cos(constants::two_pi * static_cast<double>(k0 * t) /
                    static_cast<double>(n));
  const auto y = fft::fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::abs(y[k]);
    if (k == k0 || k == n - k0) {
      EXPECT_NEAR(mag, static_cast<double>(n) / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  Xoshiro256pp rng(11);
  std::vector<complex<double>> x(256);
  for (auto& c : x) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto y = fft::ifft(fft::fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-12);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  Xoshiro256pp rng(13);
  std::vector<complex<double>> x(128);
  for (auto& c : x) c = {rng.uniform(-1, 1), 0.0};
  double time_energy = 0.0;
  for (const auto& c : x) time_energy += std::norm(c);
  const auto y = fft::fft(x);
  double freq_energy = 0.0;
  for (const auto& c : y) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy,
              1e-9 * time_energy);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<complex<double>> x(12, 0.0);
  EXPECT_THROW(fft::transform(x, false), ContractViolation);
}

TEST(Fft, MatchesNaiveDftOnRandomInput) {
  Xoshiro256pp rng(17);
  const std::size_t n = 32;
  std::vector<complex<double>> x(n);
  for (auto& c : x) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto y = fft::fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    complex<double> acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -constants::two_pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[t] * complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(y[k] - acc), 0.0, 1e-9);
  }
}

TEST(Fft, RfftPaddedSizeAndContent) {
  std::vector<double> sig(100, 1.0);
  const auto spec = fft::rfft_padded(sig, 0);
  EXPECT_EQ(spec.size(), 128u);
  EXPECT_NEAR(spec[0].real(), 100.0, 1e-9);  // DC = sum
}

TEST(Fft, AutocorrelationRawMatchesDirect) {
  Xoshiro256pp rng(23);
  std::vector<double> x(200);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const std::size_t max_lag = 20;
  const auto fast = fft::autocorrelation_raw(x, max_lag);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    double direct = 0.0;
    for (std::size_t t = 0; t + lag < x.size(); ++t)
      direct += x[t] * x[t + lag];
    EXPECT_NEAR(fast[lag], direct, 1e-9 * std::abs(direct) + 1e-9);
  }
}

class WindowTest : public ::testing::TestWithParam<fft::WindowKind> {};

TEST_P(WindowTest, CoefficientsAreSane) {
  const auto kind = GetParam();
  const auto w = fft::make_window(kind, 256);
  ASSERT_EQ(w.size(), 256u);
  // All windows here are bounded by ~[−0.1, 1.1] and have positive power.
  for (double v : w) {
    EXPECT_LT(v, 1.1);
    EXPECT_GT(v, -0.1);
  }
  EXPECT_GT(fft::window_power(w), 0.0);
  EXPECT_FALSE(fft::to_string(kind).empty());
}

TEST_P(WindowTest, PowerNeverExceedsRectangular) {
  const auto kind = GetParam();
  const auto w = fft::make_window(kind, 512);
  EXPECT_LE(fft::window_power(w), 512.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowTest,
                         ::testing::Values(fft::WindowKind::rectangular,
                                           fft::WindowKind::hann,
                                           fft::WindowKind::hamming,
                                           fft::WindowKind::blackman,
                                           fft::WindowKind::flat_top));

TEST(Window, RectangularIsAllOnes) {
  const auto w = fft::make_window(fft::WindowKind::rectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(fft::window_power(w), 16.0);
}

TEST(Window, HannMeanPowerIsThreeEighths) {
  // sum w^2 / n for periodic Hann -> 3/8.
  const auto w = fft::make_window(fft::WindowKind::hann, 1024);
  EXPECT_NEAR(fft::window_power(w) / 1024.0, 0.375, 1e-3);
}

}  // namespace
