// Unit tests for the Allan variance family: white-FM and flicker-FM
// theory, sigma^2_N relation, estimator variants, Bienayme sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "noise/filter_bank.hpp"
#include "stats/allan.hpp"
#include "stats/bienayme.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::stats;

// Time-error random walk: x_{i+1} = x_i - J_i with J iid N(0, sigma^2)
// (white FM). Allan variance theory: sigma_y^2(tau) = sigma^2/(tau0*tau)
// ... in our convention Var(J) = sigma^2 and tau = m*tau0:
// avar = sigma^2 / (tau0 * tau) * tau0 = sigma^2 * tau0 / tau^2 * ...
// Direct: avar(m) = E[(x_{i+2m}-2x_{i+m}+x_i)^2] / (2 tau^2)
//       = 2m sigma^2 / (2 (m tau0)^2) = sigma^2/(m tau0^2).
std::vector<double> white_fm_time_error(std::size_t n, double sigma,
                                        std::uint64_t seed) {
  GaussianSampler g(seed);
  std::vector<double> x(n + 1);
  KahanSum acc;
  for (std::size_t i = 0; i < n; ++i) {
    acc.add(-sigma * g());
    x[i + 1] = acc.value();
  }
  return x;
}

TEST(AllanVariance, WhiteFmTheory) {
  const double sigma = 2e-12;
  const double tau0 = 1e-8;
  const auto x = white_fm_time_error(2'000'000, sigma, 1);
  for (std::size_t m : {1u, 4u, 16u, 64u}) {
    const double avar = allan_variance_time_error(x, tau0, m);
    const double theory =
        sigma * sigma / (static_cast<double>(m) * tau0 * tau0);
    EXPECT_NEAR(avar, theory, 0.05 * theory) << "m = " << m;
  }
}

TEST(AllanVariance, OverlappingAndNonOverlappingAgree) {
  const auto x = white_fm_time_error(500'000, 1e-12, 2);
  const double tau0 = 1e-8;
  const double o = allan_variance_time_error(x, tau0, 10, true);
  const double s = allan_variance_time_error(x, tau0, 10, false);
  EXPECT_NEAR(o, s, 0.1 * o);
}

TEST(AllanVariance, FrequencyDomainMatchesTimeDomain) {
  const double tau0 = 1e-8;
  const double sigma = 1e-12;
  const auto x = white_fm_time_error(200'000, sigma, 3);
  // y_i = (x_{i+1} - x_i)/tau0.
  std::vector<double> y(x.size() - 1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i)
    y[i] = (x[i + 1] - x[i]) / tau0;
  const double from_x = allan_variance_time_error(x, tau0, 8);
  const double from_y = allan_variance_frequency(y, tau0, 8);
  EXPECT_NEAR(from_x, from_y, 0.05 * from_x);
}

TEST(AllanVariance, Sigma2NRelation) {
  // sigma^2_N = 2 tau^2 sigma_y^2(tau) must reproduce 2 N sigma^2 for
  // white FM (Eq. 6 consistency).
  const double sigma = 3e-12;
  const double tau0 = 1.0 / 103e6;
  const auto x = white_fm_time_error(1'000'000, sigma, 4);
  const std::size_t m = 32;
  const double avar = allan_variance_time_error(x, tau0, m);
  const double s2n = sigma2_n_from_allan(avar, tau0 * static_cast<double>(m));
  const double expected = 2.0 * static_cast<double>(m) * sigma * sigma;
  EXPECT_NEAR(s2n, expected, 0.05 * expected);
}

TEST(AllanVariance, TheoryThermalFlickerLimits) {
  const double b_th = 276.0;
  const double b_fl = 1.9e6;
  const double f0 = 103e6;
  // Pure thermal: avar = b_th/(f0^2 tau) -> halves when tau doubles.
  const double a1 = allan_theory_thermal_flicker(b_th, 0.0, f0, 1e-6);
  const double a2 = allan_theory_thermal_flicker(b_th, 0.0, f0, 2e-6);
  EXPECT_NEAR(a1 / a2, 2.0, 1e-12);
  // Pure flicker: tau-independent floor 4 ln2 b_fl / f0^2.
  const double f1 = allan_theory_thermal_flicker(0.0, b_fl, f0, 1e-6);
  const double f2 = allan_theory_thermal_flicker(0.0, b_fl, f0, 8e-6);
  EXPECT_NEAR(f1, f2, 1e-18);
  EXPECT_NEAR(f1, 4.0 * constants::ln2 * b_fl / (f0 * f0),
              1e-12 * f1);
}

TEST(AllanVariance, FlickerFmFloorMeasured) {
  // Fractional frequency with 1/f PSD => Allan variance ~ flat in tau.
  const double fs = 1.0;
  noise::FilterBankFlicker::Config cfg;
  cfg.amplitude = 1e-6;
  cfg.fs = fs;
  cfg.f_min = 1e-5;
  cfg.f_max = 0.25;
  cfg.seed = 5;
  noise::FilterBankFlicker flicker(cfg);
  // Build time error from y: x_{i+1} = x_i + y_i * tau0.
  const std::size_t n = 2'000'000;
  std::vector<double> x(n + 1);
  KahanSum acc;
  for (std::size_t i = 0; i < n; ++i) {
    acc.add(flicker.next());
    x[i + 1] = acc.value();
  }
  const double a_small = allan_variance_time_error(x, 1.0, 16);
  const double a_large = allan_variance_time_error(x, 1.0, 256);
  // Within a factor ~1.6 of flat across a 16x tau span (estimator noise
  // and band edges allowed).
  EXPECT_LT(a_small / a_large, 1.6);
  EXPECT_GT(a_small / a_large, 1.0 / 1.6);
}

TEST(ModifiedAllan, WhiteFmMatchesStandardShape) {
  const auto x = white_fm_time_error(500'000, 1e-12, 6);
  const double tau0 = 1e-8;
  const double mod = modified_allan_variance(x, tau0, 16);
  const double std_avar = allan_variance_time_error(x, tau0, 16);
  // For white FM, mod avar ~ std avar (both 1/tau); same order.
  EXPECT_LT(mod, 2.0 * std_avar);
  EXPECT_GT(mod, 0.05 * std_avar);
}

TEST(HadamardVariance, WhiteFmCloseToAllan) {
  const auto x = white_fm_time_error(500'000, 1e-12, 7);
  const double tau0 = 1e-8;
  const double had = hadamard_variance(x, tau0, 8);
  const double avar = allan_variance_time_error(x, tau0, 8);
  EXPECT_NEAR(had, avar, 0.15 * avar);
}

TEST(HadamardVariance, ImmuneToLinearFrequencyDrift) {
  // Add a quadratic ramp to x (linear frequency drift): Hadamard should
  // not move; Allan inflates strongly at large m.
  auto x = white_fm_time_error(200'000, 1e-12, 8);
  const double tau0 = 1e-8;
  const double had_clean = hadamard_variance(x, tau0, 64);
  const double avar_clean = allan_variance_time_error(x, tau0, 64);
  const double drift = 5e-7;  // fractional frequency per sample
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i);
    x[i] += 0.5 * drift * t * t * tau0;
  }
  const double had_drift = hadamard_variance(x, tau0, 64);
  const double avar_drift = allan_variance_time_error(x, tau0, 64);
  EXPECT_NEAR(had_drift, had_clean, 0.2 * had_clean);
  EXPECT_GT(avar_drift, 3.0 * avar_clean);
}

TEST(AllanSweep, ProducesMonotoneTauAndCounts) {
  const auto x = white_fm_time_error(100'000, 1e-12, 9);
  const std::vector<std::size_t> ms{1, 2, 4, 8, 16, 10'000'000};
  const auto sweep = allan_sweep(x, 1e-8, ms);
  ASSERT_EQ(sweep.size(), 5u);  // oversized m skipped
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_GT(sweep[i].tau, sweep[i - 1].tau);
  for (const auto& pt : sweep) EXPECT_GT(pt.terms, 0u);
}

TEST(Bienayme, WhiteSeriesRatioNearOne) {
  GaussianSampler g(10);
  std::vector<double> j(200'000);
  for (auto& v : j) v = g();
  const std::vector<std::size_t> blocks{1, 2, 4, 8, 16, 32, 64};
  const auto sweep = bienayme_sweep(j, blocks);
  ASSERT_EQ(sweep.size(), blocks.size());
  for (const auto& pt : sweep)
    EXPECT_NEAR(pt.ratio, 1.0, 0.15) << "block " << pt.block;
  EXPECT_LT(bienayme_defect(sweep), 0.15);
}

TEST(Bienayme, PositivelyCorrelatedSeriesRatioAboveOne) {
  // AR(1) with rho = 0.5: Var(sum_n)/n/Var -> (1+rho)/(1-rho) = 3.
  GaussianSampler g(11);
  std::vector<double> j(500'000);
  double s = 0.0;
  for (auto& v : j) {
    s = 0.5 * s + g();
    v = s;
  }
  const std::vector<std::size_t> blocks{64};
  const auto sweep = bienayme_sweep(j, blocks);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_GT(sweep[0].ratio, 2.0);
}

TEST(Bienayme, SkipsBlocksWithTooFewSamples) {
  GaussianSampler g(12);
  std::vector<double> j(100);
  for (auto& v : j) v = g();
  const std::vector<std::size_t> blocks{1, 50};
  const auto sweep = bienayme_sweep(j, blocks);
  EXPECT_EQ(sweep.size(), 1u);  // block 50 -> only 2 blocks -> skipped
}

}  // namespace
