// Unit tests for autocorrelation estimators: FFT-vs-direct agreement,
// known processes (white, AR(1), MA(1)), PACF.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "stats/autocorrelation.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::stats;

std::vector<double> white_series(std::size_t n, std::uint64_t seed) {
  GaussianSampler g(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = g();
  return x;
}

std::vector<double> ar1_series(std::size_t n, double rho,
                               std::uint64_t seed) {
  GaussianSampler g(seed);
  std::vector<double> x(n);
  double state = g() * std::sqrt(1.0 / (1.0 - rho * rho));
  for (auto& v : x) {
    state = rho * state + g();
    v = state;
  }
  return x;
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto x = white_series(1000, 1);
  const auto r = autocorrelation(x, 10);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Autocorrelation, FftMatchesDirect) {
  const auto x = ar1_series(500, 0.6, 2);
  const auto fast = autocorrelation(x, 30);
  const auto slow = autocorrelation_direct(x, 30);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t k = 0; k < fast.size(); ++k)
    EXPECT_NEAR(fast[k], slow[k], 1e-10) << "lag " << k;
}

TEST(Autocorrelation, WhiteNoiseStaysInBand) {
  const auto x = white_series(20000, 3);
  const auto r = autocorrelation(x, 50);
  const double band = white_noise_band(x.size());
  std::size_t outside = 0;
  for (std::size_t k = 1; k < r.size(); ++k)
    if (std::abs(r[k]) > band) ++outside;
  // ~5% expected outside a 95% band; allow up to 15% of 50 lags.
  EXPECT_LE(outside, 7u);
}

TEST(Autocorrelation, Ar1GeometricDecay) {
  const double rho = 0.7;
  const auto x = ar1_series(200000, rho, 4);
  const auto r = autocorrelation(x, 5);
  for (std::size_t k = 1; k <= 5; ++k)
    EXPECT_NEAR(r[k], std::pow(rho, static_cast<double>(k)), 0.02)
        << "lag " << k;
}

TEST(Autocorrelation, Ma1HasSingleSpike) {
  // x_t = w_t + theta*w_{t-1}: rho_1 = theta/(1+theta^2), rho_k = 0, k > 1.
  GaussianSampler g(5);
  const double theta = 0.8;
  std::vector<double> x(200000);
  double prev = g();
  for (auto& v : x) {
    const double w = g();
    v = w + theta * prev;
    prev = w;
  }
  const auto r = autocorrelation(x, 4);
  EXPECT_NEAR(r[1], theta / (1.0 + theta * theta), 0.01);
  EXPECT_NEAR(r[2], 0.0, 0.01);
  EXPECT_NEAR(r[3], 0.0, 0.01);
}

TEST(Autocovariance, MatchesVarianceAtLagZero) {
  const auto x = ar1_series(50000, 0.5, 6);
  const auto c = autocovariance(x, 3);
  // Biased estimator: c0 ~ (n-1)/n * sample variance; just check scale.
  EXPECT_NEAR(c[0], 1.0 / (1.0 - 0.25), 0.06);
}

TEST(PartialAutocorrelation, Ar1CutsOffAfterLagOne) {
  const double rho = 0.6;
  const auto x = ar1_series(200000, rho, 7);
  const auto pacf = partial_autocorrelation(x, 6);
  EXPECT_DOUBLE_EQ(pacf[0], 1.0);
  EXPECT_NEAR(pacf[1], rho, 0.01);
  for (std::size_t k = 2; k <= 6; ++k)
    EXPECT_NEAR(pacf[k], 0.0, 0.015) << "lag " << k;
}

TEST(PartialAutocorrelation, Ar2HasTwoSignificantLags) {
  // x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + w_t.
  GaussianSampler g(8);
  std::vector<double> x(200000);
  double x1 = 0.0, x2 = 0.0;
  for (auto& v : x) {
    v = 0.5 * x1 + 0.3 * x2 + g();
    x2 = x1;
    x1 = v;
  }
  const auto pacf = partial_autocorrelation(x, 5);
  EXPECT_GT(std::abs(pacf[1]), 0.5);
  EXPECT_NEAR(pacf[2], 0.3, 0.02);
  EXPECT_NEAR(pacf[3], 0.0, 0.015);
}

TEST(Autocorrelation, Preconditions) {
  std::vector<double> x{1.0, 2.0};
  EXPECT_THROW(autocorrelation(x, 2), ContractViolation);
  std::vector<double> constant(100, 5.0);
  EXPECT_THROW(autocorrelation(constant, 5), ContractViolation);
}

TEST(WhiteNoiseBand, Scales) {
  EXPECT_NEAR(white_noise_band(10000), 0.0196, 1e-4);
  EXPECT_GT(white_noise_band(100), white_noise_band(10000));
}

}  // namespace
