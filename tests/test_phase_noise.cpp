// Unit tests for the phase-noise layer: Eq. 11 closed form against the
// Eq. 9 integral, ISF statistics, Hajimiri conversion, r_N and the
// paper's reference numbers.
#include <gtest/gtest.h>

#include "ignore_result.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "phase_noise/conversion.hpp"
#include "phase_noise/isf.hpp"
#include "phase_noise/phase_psd.hpp"
#include "phase_noise/sigma2n.hpp"
#include "transistor/inverter.hpp"
#include "transistor/technology.hpp"

namespace {

using ptrng::test::ignore_result;

using namespace ptrng;
using namespace ptrng::phase_noise;

TEST(AdaptiveSimpson, PolynomialExact) {
  const double v = adaptive_simpson([](double x) { return x * x; }, 0.0, 3.0);
  EXPECT_NEAR(v, 9.0, 1e-10);
}

TEST(AdaptiveSimpson, OscillatoryIntegral) {
  const double v =
      adaptive_simpson([](double x) { return std::sin(x); }, 0.0,
                       constants::pi);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(Sigma2N, PowerLawThermalMatchesClosedForm) {
  // Int f^{-2} sin^4 => sigma^2_N = 2 b_th N / f0^3 (Eq. 11 term 1).
  const double b_th = 276.04;
  const double f0 = 103e6;
  for (double n : {1.0, 10.0, 281.0, 5354.0}) {
    const double numeric = sigma2_n_power_law(b_th, -2.0, f0, n);
    const double closed = 2.0 * b_th * n / (f0 * f0 * f0);
    EXPECT_NEAR(numeric / closed, 1.0, 1e-4) << "N = " << n;
  }
}

TEST(Sigma2N, PowerLawFlickerMatchesClosedForm) {
  // Int f^{-3} sin^4 => sigma^2_N = 8 ln2 b_fl N^2 / f0^4 (Eq. 11 term 2).
  const double b_fl = 1.9156e6;
  const double f0 = 103e6;
  for (double n : {1.0, 100.0, 5354.0}) {
    const double numeric = sigma2_n_power_law(b_fl, -3.0, f0, n);
    const double f04 = f0 * f0 * f0 * f0;
    const double closed = 8.0 * constants::ln2 * b_fl * n * n / f04;
    EXPECT_NEAR(numeric / closed, 1.0, 1e-3) << "N = " << n;
  }
}

TEST(Sigma2N, BandLimitedNumericApproachesFullIntegral) {
  const double b_th = 100.0;
  const double f0 = 1e8;
  const double n = 50.0;
  PhasePsd psd(b_th, 0.0, f0);
  const double numeric = sigma2_n_numeric(
      [&](double f) { return psd(f); }, f0, n, 1e-1, f0 * 2.0);
  EXPECT_NEAR(numeric / psd.sigma2_n(n), 1.0, 0.02);
}

TEST(PhasePsd, Evaluation) {
  PhasePsd psd(4.0, 8.0, 1e6);
  EXPECT_DOUBLE_EQ(psd(2.0), 1.0 + 1.0);
  EXPECT_THROW(ignore_result(psd(0.0)), ContractViolation);
  EXPECT_THROW(PhasePsd(-1.0, 0.0, 1e6), ContractViolation);
}

TEST(PhasePsd, PaperReferenceNumbers) {
  // Section IV-B: b_th = 276.04 Hz at f0 = 103 MHz gives
  // sigma_th ~ 15.89 ps, ratio ~ 1.6 permil; with b_fl = 1.9156e6 the
  // r_N constant is ~5354 and N*(95%) ~ 281.
  using namespace ptrng::oscillator;
  PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  EXPECT_NEAR(psd.thermal_period_jitter() * 1e12, 15.89, 0.05);
  EXPECT_NEAR(psd.jitter_ratio() * 1000.0, 1.6, 0.05);
  EXPECT_NEAR(psd.thermal_ratio_constant(), 5354.0, 15.0);
  EXPECT_NEAR(psd.independence_threshold(0.95), 281.0, 2.0);
  EXPECT_NEAR(psd.thermal_ratio(5354.0), 0.5, 1e-3);
}

TEST(PhasePsd, Fig7FitCoefficients) {
  // f0^2 sigma^2_N = 5.36e-6 N + ~1.0012e-9 N^2 (paper fit).
  using namespace ptrng::oscillator;
  PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const double f02 = paper::f0 * paper::f0;
  EXPECT_NEAR(psd.sigma2_n_thermal(1.0) * f02, 5.36e-6, 0.01e-6);
  EXPECT_NEAR(psd.sigma2_n_flicker(1.0) * f02, 1.0012e-9, 0.01e-9);
}

TEST(PhasePsd, ThermalRatioLimits) {
  PhasePsd no_flicker(100.0, 0.0, 1e8);
  EXPECT_DOUBLE_EQ(no_flicker.thermal_ratio(1e9), 1.0);
  EXPECT_GT(no_flicker.independence_threshold(0.95), 1e300);

  PhasePsd with_flicker(100.0, 1e6, 1e8);
  EXPECT_LT(with_flicker.thermal_ratio(1e6), 0.01);
  EXPECT_GT(with_flicker.thermal_ratio(1.0), 0.99);
}

TEST(PhasePsd, AccumulatedCycleVariance) {
  PhasePsd psd(276.04, 0.0, 103e6);
  // v(k) = k * b_th/f0 must equal k * sigma_th^2 * f0^2.
  const double k = 1000.0;
  const double sigma2 = psd.thermal_period_jitter() *
                        psd.thermal_period_jitter();
  EXPECT_NEAR(psd.accumulated_cycle_variance_thermal(k),
              k * sigma2 * 103e6 * 103e6, 1e-9);
  // Naive accumulation with the same variance agrees when flicker is 0.
  EXPECT_NEAR(psd.accumulated_cycle_variance_naive(sigma2, k),
              psd.accumulated_cycle_variance_thermal(k), 1e-12);
}

TEST(Isf, SineHasZeroDcAndKnownRms) {
  const auto isf = Isf::sine(2.0);
  EXPECT_NEAR(isf.dc(), 0.0, 1e-12);
  EXPECT_NEAR(isf.rms(), 2.0 / std::sqrt(2.0), 1e-3);
}

TEST(Isf, TriangularAsymmetryCreatesDc) {
  const auto symmetric = Isf::ring_triangular(1.0, 0.0);
  const auto skewed = Isf::ring_triangular(1.0, 0.5);
  EXPECT_NEAR(symmetric.dc(), 0.0, 1e-10);
  EXPECT_GT(std::abs(skewed.dc()), 1e-3);
  EXPECT_GT(skewed.rms(), 0.0);
}

TEST(Isf, RingTypicalScalesWithStages) {
  const auto small = Isf::ring_typical(3);
  const auto large = Isf::ring_typical(15);
  EXPECT_GT(small.rms(), large.rms());
}

TEST(Isf, InterpolationWrapsAround) {
  const auto isf = Isf::sine(1.0, 64);
  EXPECT_NEAR(isf.at(0.0), isf.at(constants::two_pi), 1e-12);
  EXPECT_NEAR(isf.at(constants::pi / 2.0), 1.0, 0.01);
  EXPECT_NEAR(isf.at(-constants::pi / 2.0), -1.0, 0.01);
}

TEST(Isf, FromSamplesValidatesLength) {
  EXPECT_THROW(Isf::from_samples({1.0, 2.0}), ContractViolation);
}

TEST(Conversion, RawFormulas) {
  const auto isf = Isf::sine(1.0);
  const double s_white = 1e-22;    // A^2/Hz one-sided
  const double a_flicker = 1e-16;  // A^2 one-sided
  const double q_max = 1e-15;
  const double f0 = 1e9;
  const auto res = convert_raw(s_white, a_flicker, q_max, 1, isf, f0);
  const double denom = 4.0 * constants::pi * constants::pi * q_max * q_max;
  EXPECT_NEAR(res.b_th, isf.rms() * isf.rms() * (s_white / 2.0) / denom,
              1e-9 * res.b_th);
  // sine ISF: dc = 0 -> no flicker upconversion (up to fp rounding in the
  // sampled-sine mean).
  EXPECT_LT(res.b_fl, 1e-9 * res.b_th);
}

TEST(Conversion, StagesAddLinearly) {
  const auto isf = Isf::ring_triangular(0.5, 0.3);
  const auto one = convert_raw(1e-22, 1e-16, 1e-15, 1, isf, 1e9);
  const auto five = convert_raw(1e-22, 1e-16, 1e-15, 5, isf, 1e9);
  EXPECT_NEAR(five.b_th / one.b_th, 5.0, 1e-9);
  EXPECT_NEAR(five.b_fl / one.b_fl, 5.0, 1e-9);
}

TEST(Conversion, RingFromTechnologyIsPhysical) {
  const transistor::Inverter cell(transistor::technology_node("130nm"));
  const auto isf = Isf::ring_typical(5);
  const auto res = convert_ring(cell, 5, isf);
  EXPECT_GT(res.f0, 1e8);
  EXPECT_LT(res.f0, 1e11);
  EXPECT_GT(res.b_th, 0.0);
  EXPECT_GT(res.b_fl, 0.0);
  // Thermal jitter ratio for a healthy ring: between 1e-5 and 1e-2.
  const auto psd = res.phase_psd();
  EXPECT_GT(psd.jitter_ratio(), 1e-6);
  EXPECT_LT(psd.jitter_ratio(), 1e-1);
}

class RminSweep : public ::testing::TestWithParam<double> {};

TEST_P(RminSweep, ThresholdInvertsRatio) {
  using namespace ptrng::oscillator;
  PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const double r = GetParam();
  const double n_star = psd.independence_threshold(r);
  EXPECT_NEAR(psd.thermal_ratio(n_star), r, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ratios, RminSweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95, 0.99));

}  // namespace
