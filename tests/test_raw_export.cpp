// Raw-export format suite (ISSUE 9): pins the 64-byte header layout
// byte-for-byte, rejection of every corruption class, chunked-write ==
// one-shot-write byte identity, and the ExportTap against the existing
// RawRecorderTap on a live pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <iterator>
#include <span>
#include <sstream>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "trng/ero_trng.hpp"
#include "trng/raw_export.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

RawExportHeader sample_header() {
  RawExportHeader h;
  h.generator_id = "cell_array";
  h.sample_width_bits = 1;
  h.config_digest = config_digest("cell_array cells=3 base=5 seed=42");
  return h;
}

TEST(RawExport, HeaderRoundTrip) {
  const RawExportHeader h = sample_header();
  const auto wire = encode_header(h);
  ASSERT_EQ(wire.size(), RawExportHeader::kSize);
  // Pinned layout: magic at 0, version LE at 8, width at 10.
  EXPECT_EQ(std::to_integer<char>(wire[0]), 'P');
  EXPECT_EQ(std::to_integer<char>(wire[7]), 'W');
  EXPECT_EQ(std::to_integer<unsigned>(wire[8]), 1u);
  EXPECT_EQ(std::to_integer<unsigned>(wire[9]), 0u);
  EXPECT_EQ(std::to_integer<unsigned>(wire[10]), 1u);

  const RawExportHeader back = decode_header(wire);
  EXPECT_EQ(back.version, h.version);
  EXPECT_EQ(back.sample_width_bits, h.sample_width_bits);
  EXPECT_EQ(back.generator_id, h.generator_id);
  EXPECT_EQ(back.config_digest, h.config_digest);
}

TEST(RawExport, EncodeRejectsUnencodableFields) {
  RawExportHeader h = sample_header();
  h.generator_id = "sixteen_chars_id";  // 16 > kIdSize - 1
  EXPECT_THROW((void)encode_header(h), DataError);
  h = sample_header();
  h.sample_width_bits = 0;
  EXPECT_THROW((void)encode_header(h), DataError);
  h.sample_width_bits = 9;
  EXPECT_THROW((void)encode_header(h), DataError);
  h = sample_header();
  h.version = 2;
  EXPECT_THROW((void)encode_header(h), DataError);
}

TEST(RawExport, DecodeRejectsEveryCorruptionClass) {
  const auto good = encode_header(sample_header());
  EXPECT_NO_THROW((void)decode_header(good));

  auto bad = good;
  bad[0] = std::byte{'X'};  // magic
  EXPECT_THROW((void)decode_header(bad), DataError);

  bad = good;
  bad[8] = std::byte{2};  // version 2
  EXPECT_THROW((void)decode_header(bad), DataError);

  bad = good;
  bad[10] = std::byte{0};  // width below range
  EXPECT_THROW((void)decode_header(bad), DataError);
  bad[10] = std::byte{9};  // width above range
  EXPECT_THROW((void)decode_header(bad), DataError);

  bad = good;
  bad[11] = std::byte{1};  // reserved u8
  EXPECT_THROW((void)decode_header(bad), DataError);
  bad = good;
  bad[14] = std::byte{1};  // reserved u32
  EXPECT_THROW((void)decode_header(bad), DataError);

  bad = good;
  bad[31] = std::byte{'x'};  // id loses its NUL terminator
  EXPECT_THROW((void)decode_header(bad), DataError);

  // Truncated input.
  EXPECT_THROW(
      (void)decode_header(std::span<const std::byte>(good.data(), 63)),
      DataError);
}

TEST(RawExport, ChunkedWritesByteIdenticalToOneShot) {
  Xoshiro256pp rng(7);
  std::vector<std::uint8_t> bits(1009);  // prime length
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1u);

  std::ostringstream one_shot;
  RawExportWriter w1(one_shot, sample_header());
  w1.write_bits(bits);
  EXPECT_EQ(w1.samples_written(), bits.size());

  // Adversarial chunking: 1-bit writes, prime chunks, empty writes.
  std::ostringstream chunked;
  RawExportWriter w2(chunked, sample_header());
  std::size_t pos = 0;
  const std::size_t sizes[] = {1, 7, 0, 13, 1, 101, 0, 251};
  std::size_t si = 0;
  while (pos < bits.size()) {
    std::size_t n = std::min(sizes[si++ % std::size(sizes)],
                             bits.size() - pos);
    w2.write_bits(std::span<const std::uint8_t>(bits.data() + pos, n));
    pos += n;
  }
  w2.write_bits({});  // trailing empty write changes nothing
  EXPECT_EQ(one_shot.str(), chunked.str());
}

TEST(RawExport, WriterEnforcesWidthContracts) {
  std::ostringstream out;
  RawExportHeader h = sample_header();
  h.sample_width_bits = 4;
  RawExportWriter w(out, h);
  // write_bits is the 1-bit surface only.
  const std::vector<std::uint8_t> bits{1, 0};
  EXPECT_THROW(w.write_bits(bits), ContractViolation);
  // 4-bit samples: 0..15 fine, 16 rejected.
  const std::array<std::byte, 2> good{std::byte{15}, std::byte{0}};
  EXPECT_NO_THROW(w.write_samples(good));
  const std::array<std::byte, 1> over{std::byte{16}};
  EXPECT_THROW(w.write_samples(over), DataError);
}

TEST(RawExport, ReadBackRoundTrip) {
  Xoshiro256pp rng(9);
  std::vector<std::uint8_t> bits(5000);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1u);

  std::stringstream io;
  RawExportWriter w(io, sample_header());
  w.write_bits(bits);

  const RawExportData data = read_raw_export(io);
  EXPECT_EQ(data.header.generator_id, "cell_array");
  EXPECT_EQ(data.header.sample_width_bits, 1);
  EXPECT_EQ(data.samples, bits);
}

TEST(RawExport, ZeroLengthPayloadRoundTrips) {
  std::stringstream io;
  RawExportWriter w(io, sample_header());
  EXPECT_EQ(w.samples_written(), 0u);
  const RawExportData data = read_raw_export(io);
  EXPECT_TRUE(data.samples.empty());
  EXPECT_EQ(data.header.config_digest, sample_header().config_digest);
  // File is exactly one header.
  EXPECT_EQ(io.str().size(), RawExportHeader::kSize);
}

TEST(RawExport, PayloadIsOneBytePerSample) {
  std::stringstream io;
  RawExportWriter w(io, sample_header());
  const std::vector<std::uint8_t> bits{1, 0, 1, 1, 0};
  w.write_bits(bits);
  EXPECT_EQ(io.str().size(), RawExportHeader::kSize + bits.size());
  // ea_noniid consumes the post-header region directly: byte i IS bit i.
  const std::string file = io.str();
  for (std::size_t i = 0; i < bits.size(); ++i)
    EXPECT_EQ(static_cast<std::uint8_t>(file[RawExportHeader::kSize + i]),
              bits[i]);
}

TEST(RawExport, ReaderRejectsTruncatedHeader) {
  std::istringstream short_file("PTRNGRAW only");
  EXPECT_THROW((void)read_raw_export(short_file), DataError);
  std::istringstream empty("");
  EXPECT_THROW((void)read_raw_export(empty), DataError);
}

TEST(RawExport, ReaderRejectsOutOfRangeSample) {
  std::stringstream io;
  RawExportWriter w(io, sample_header());  // width 1
  w.write_bits(std::vector<std::uint8_t>{1, 0, 1});
  io << static_cast<char>(2);  // corrupt payload byte >= 2^1
  EXPECT_THROW((void)read_raw_export(io), DataError);
}

TEST(RawExport, ConfigDigestSeparatesConfigs) {
  const auto a = config_digest("cell_array cells=3 seed=1");
  const auto b = config_digest("cell_array cells=3 seed=2");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, config_digest("cell_array cells=3 seed=1"));
}

TEST(RawExport, ExportTapMatchesRawRecorder) {
  // Both taps watch the SAME pumped raw stream; the export file payload
  // must equal the recorder's bits, and the cap must bound it.
  auto ero = paper_trng(500, /*seed=*/11);
  Pipeline pipeline(ero, /*block_bits=*/512);
  std::stringstream io;
  RawExportWriter writer(io, sample_header());
  ExportTap tap(writer, /*max_samples=*/2000);
  RawRecorderTap recorder;
  pipeline.attach_tap(tap);
  pipeline.attach_tap(recorder);
  (void)pipeline.generate_bits(3000);  // pumps >= 3000 raw bits

  EXPECT_EQ(tap.samples_exported(), 2000u);
  const RawExportData data = read_raw_export(io);
  ASSERT_EQ(data.samples.size(), 2000u);
  ASSERT_GE(recorder.bits().size(), 2000u);
  for (std::size_t i = 0; i < 2000; ++i)
    EXPECT_EQ(data.samples[i], recorder.bits()[i]) << "bit " << i;
}

}  // namespace
