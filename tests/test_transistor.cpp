// Unit tests for the transistor substrate: the paper's noise PSD formulas,
// square-law consistency, technology scaling direction, inverter budget.
#include <gtest/gtest.h>

#include "ignore_result.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "transistor/inverter.hpp"
#include "transistor/mosfet.hpp"
#include "transistor/technology.hpp"

namespace {

using ptrng::test::ignore_result;

using namespace ptrng;
using namespace ptrng::transistor;

MosfetParams reference_params() {
  MosfetParams p;
  p.width = 400e-9;
  p.length = 100e-9;
  p.mobility = 0.03;
  p.cox = 1.4e-2;
  p.vth = 0.35;
  p.alpha_flicker = 2e-24;
  p.temperature = 300.0;
  return p;
}

TEST(Mosfet, SquareLawCurrentAndGm) {
  const Mosfet m(reference_params());
  const double v_ov = 0.5;
  const double beta = 0.03 * 1.4e-2 * 4.0;  // mu*Cox*W/L
  EXPECT_NEAR(m.drain_current(v_ov), 0.5 * beta * 0.25, 1e-15);
  // gm = sqrt(2 beta I_D) must equal beta*v_ov for consistency.
  const double id = m.drain_current(v_ov);
  EXPECT_NEAR(m.transconductance(id), beta * v_ov, 1e-12);
}

TEST(Mosfet, ThermalPsdIsEightThirdsKTgm) {
  const Mosfet m(reference_params());
  const double gm = 1e-3;
  const double expected =
      (8.0 / 3.0) * constants::k_boltzmann * 300.0 * gm;
  EXPECT_NEAR(m.thermal_psd(gm), expected, 1e-30);
}

TEST(Mosfet, FlickerPsdMatchesPaperFormula) {
  const auto p = reference_params();
  const Mosfet m(p);
  const double id = 1e-4;
  const double f = 1e3;
  const double expected = p.alpha_flicker * constants::k_boltzmann *
                          p.temperature * id * id /
                          (p.width * p.length * p.length * f);
  EXPECT_NEAR(m.flicker_psd(id, f), expected, 1e-12 * expected);
  // 1/f shape.
  EXPECT_NEAR(m.flicker_psd(id, 10.0) / m.flicker_psd(id, 100.0), 10.0,
              1e-9);
}

TEST(Mosfet, CornerFrequencyBalancesTerms) {
  const Mosfet m(reference_params());
  const double id = 5e-5;
  const double fc = m.corner_frequency(id);
  ASSERT_GT(fc, 0.0);
  const double th = m.thermal_psd(m.transconductance(id));
  EXPECT_NEAR(m.flicker_psd(id, fc), th, 1e-9 * th);
}

TEST(Mosfet, CurrentNoisePsdCombinesBothTerms) {
  const Mosfet m(reference_params());
  const double id = 1e-4;
  const auto psd = m.current_noise_psd(id);
  EXPECT_EQ(psd.sidedness(), noise::Sidedness::one_sided);
  const double th = psd.coefficient(0.0);
  const double fl = psd.coefficient(-1.0);
  EXPECT_GT(th, 0.0);
  EXPECT_GT(fl, 0.0);
  EXPECT_NEAR(psd(1e6), th + fl / 1e6, 1e-12 * th);
}

TEST(Mosfet, FlickerScalesInverselyWithGateArea) {
  auto p_small = reference_params();
  auto p_large = reference_params();
  p_large.width *= 2.0;
  p_large.length *= 2.0;
  const Mosfet small(p_small), large(p_large);
  const double id = 1e-4;
  // alpha k T I^2/(W L^2): doubling W and L divides by 2*4 = 8.
  EXPECT_NEAR(small.flicker_coefficient(id) / large.flicker_coefficient(id),
              8.0, 1e-9);
}

TEST(Mosfet, RejectsNonPhysicalParameters) {
  auto p = reference_params();
  p.width = 0.0;
  EXPECT_THROW(Mosfet m(p), ContractViolation);
  p = reference_params();
  p.temperature = -1.0;
  EXPECT_THROW(Mosfet m(p), ContractViolation);
}

TEST(Technology, NodesArePresentAndOrdered) {
  const auto& nodes = technology_nodes();
  ASSERT_EQ(nodes.size(), 7u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].feature, nodes[i - 1].feature);
    EXPECT_LE(nodes[i].vdd, nodes[i - 1].vdd);
  }
}

TEST(Technology, LookupByName) {
  const auto& n = technology_node("65nm");
  EXPECT_DOUBLE_EQ(n.feature, 65e-9);
  EXPECT_THROW(ignore_result(technology_node("7nm")), DataError);
}

TEST(Technology, FlickerToThermalRatioGrowsAsNodesShrink) {
  // The paper's conclusion: shrinking raises the flicker share. Compare
  // the device-level corner frequency across the trajectory.
  double prev_corner = 0.0;
  for (const auto& node : technology_nodes()) {
    const Mosfet m(node.nmos());
    const double v_ov = node.vdd - node.vth;
    const double id = m.drain_current(v_ov);
    const double corner = m.corner_frequency(id);
    if (prev_corner > 0.0) {
      EXPECT_GT(corner, prev_corner)
          << node.name << " should have a higher flicker corner";
    }
    prev_corner = corner;
  }
}

TEST(Inverter, DelayAndFrequencyAreConsistent) {
  const Inverter inv(technology_node("130nm"));
  const double td = inv.propagation_delay();
  ASSERT_GT(td, 0.0);
  // A 5-stage ring: f0 = 1/(2*5*td), order of 100 MHz - 10 GHz for these
  // nodes.
  const double f0 = 1.0 / (2.0 * 5.0 * td);
  EXPECT_GT(f0, 1e7);
  EXPECT_LT(f0, 1e11);
}

TEST(Inverter, QMaxIsClVdd) {
  const auto& node = technology_node("90nm");
  const Inverter inv(node);
  EXPECT_NEAR(inv.q_max(), inv.load_capacitance() * node.vdd, 1e-24);
}

TEST(Inverter, NoiseBudgetHasBothTerms) {
  const Inverter inv(technology_node("65nm"));
  const auto psd = inv.current_noise_psd();
  EXPECT_GT(psd.coefficient(0.0), 0.0);
  EXPECT_GT(psd.coefficient(-1.0), 0.0);
}

TEST(Inverter, FanoutIncreasesLoadAndDelay) {
  const auto& node = technology_node("65nm");
  const Inverter one(node, 1.0);
  const Inverter four(node, 4.0);
  EXPECT_NEAR(four.load_capacitance() / one.load_capacitance(), 4.0, 1e-9);
  EXPECT_NEAR(four.propagation_delay() / one.propagation_delay(), 4.0, 1e-9);
}

class NodeSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(NodeSweep, InverterBudgetIsPhysical) {
  const auto& node = technology_node(GetParam());
  const Inverter inv(node);
  EXPECT_GT(inv.switching_current(), 1e-7);
  EXPECT_LT(inv.switching_current(), 1e-1);
  EXPECT_GT(inv.load_capacitance(), 1e-18);
  EXPECT_LT(inv.load_capacitance(), 1e-12);
  EXPECT_GT(inv.propagation_delay(), 1e-13);
  EXPECT_LT(inv.propagation_delay(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllNodes, NodeSweep,
                         ::testing::Values("350nm", "180nm", "130nm", "90nm",
                                           "65nm", "40nm", "28nm"));

}  // namespace
