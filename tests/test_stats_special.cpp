// Unit tests for special functions against reference values (computed with
// mpmath/scipy to >= 10 digits).
#include <gtest/gtest.h>

#include "ignore_result.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "stats/special.hpp"

namespace {

using ptrng::test::ignore_result;

using namespace ptrng::stats;

TEST(LogGamma, IntegerFactorials) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGamma, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  // Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(log_gamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-10);
}

TEST(GammaP, ReferenceValues) {
  // scipy.special.gammainc reference points.
  EXPECT_NEAR(gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(gamma_p(2.5, 0.5), 0.03743422675270363, 1e-10);
  EXPECT_NEAR(gamma_p(10.0, 10.0), 0.5420702855281478, 1e-10);
  EXPECT_NEAR(gamma_p(0.5, 2.0), 0.9544997361036416, 1e-10);
}

TEST(GammaQ, ComplementsP) {
  for (double a : {0.3, 1.0, 2.7, 15.0}) {
    for (double x : {0.1, 1.0, 5.0, 30.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(GammaP, EdgeCases) {
  EXPECT_DOUBLE_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(3.0, 0.0), 1.0);
  EXPECT_THROW(ignore_result(gamma_p(-1.0, 1.0)), ptrng::ContractViolation);
  EXPECT_THROW(ignore_result(gamma_p(1.0, -1.0)), ptrng::ContractViolation);
}

TEST(NormalCdf, StandardPoints) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876450377018e-10, 1e-18);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {1e-8, 1e-4, 0.025, 0.2, 0.5, 0.8, 0.975, 1.0 - 1e-6}) {
    const double z = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(z), p, 1e-11) << "p = " << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.995), 2.5758293035489004, 1e-9);
  EXPECT_THROW(ignore_result(normal_quantile(0.0)),
               ptrng::ContractViolation);
  EXPECT_THROW(ignore_result(normal_quantile(1.0)),
               ptrng::ContractViolation);
}

TEST(ChiSquare, CdfReferenceValues) {
  // scipy.stats.chi2.cdf reference points.
  EXPECT_NEAR(chi_square_cdf(1.0, 1.0), 0.6826894921370859, 1e-10);
  EXPECT_NEAR(chi_square_cdf(5.0, 5.0), 0.5841198130044211, 1e-10);
  EXPECT_NEAR(chi_square_cdf(30.0, 20.0), 0.9301463393005904, 1e-9);
  EXPECT_DOUBLE_EQ(chi_square_cdf(-1.0, 3.0), 0.0);
}

TEST(ChiSquare, SurvivalComplementsCdf) {
  for (double k : {1.0, 4.0, 17.0, 100.0}) {
    for (double x : {0.5, 3.0, 20.0, 150.0}) {
      EXPECT_NEAR(chi_square_cdf(x, k) + chi_square_sf(x, k), 1.0, 1e-12);
    }
  }
}

TEST(ChiSquare, QuantileInvertsCdf) {
  for (double k : {1.0, 2.0, 7.0, 63.0, 255.0}) {
    for (double p : {0.005, 0.025, 0.5, 0.95, 0.9999}) {
      const double x = chi_square_quantile(p, k);
      EXPECT_NEAR(chi_square_cdf(x, k), p, 1e-9)
          << "k = " << k << ", p = " << p;
    }
  }
}

TEST(ChiSquare, QuantileKnownValues) {
  // chi2.ppf(0.95, 10) = 18.307038...
  EXPECT_NEAR(chi_square_quantile(0.95, 10.0), 18.307038053275146, 1e-6);
  // chi2.ppf(0.9999, 1) = 15.13670523...  (the AIS31 T7 threshold)
  EXPECT_NEAR(chi_square_quantile(0.9999, 1.0), 15.136705226623606, 1e-6);
}

TEST(BinaryEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_NEAR(binary_entropy(0.11), 0.4999159581645278, 1e-9);
  EXPECT_NEAR(binary_entropy(0.25), 0.8112781244591328, 1e-12);
}

TEST(BinaryEntropy, SymmetryAndConcavity) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(binary_entropy(p), binary_entropy(1.0 - p), 1e-14);
    EXPECT_LT(binary_entropy(p), 1.0);
    EXPECT_GT(binary_entropy(p), 0.0);
  }
}

}  // namespace
