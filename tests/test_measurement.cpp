// Unit tests for the measurement layer: s_N identities, sweep estimator
// consistency, counter semantics, calibration fit recovery (Sec. IV).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "measurement/calibration.hpp"
#include "measurement/counter.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "measurement/sn_process.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "stat_tolerance.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::measurement;

TEST(SnProcess, TimeErrorIsNegatedCumsum) {
  const std::vector<double> j{1.0, -2.0, 3.0};
  const auto x = time_error_from_jitter(j);
  ASSERT_EQ(x.size(), 4u);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
  EXPECT_DOUBLE_EQ(x[3], -2.0);
}

TEST(SnProcess, Eq4AndEq8Agree) {
  // s_N from the a_j-weighted jitter sum must equal the second difference
  // of the time error.
  GaussianSampler g(1);
  std::vector<double> j(1000);
  for (auto& v : j) v = g();
  const std::size_t n = 7;
  const auto from_jitter = sn_from_jitter(j, n, 1);
  // Manual Eq. 4: sum_{k=N..2N-1} J_{i+k} - sum_{k=0..N-1} J_{i+k}.
  for (std::size_t i = 0; i < from_jitter.size(); ++i) {
    double manual = 0.0;
    for (std::size_t k = 0; k < n; ++k) manual -= j[i + k];
    for (std::size_t k = n; k < 2 * n; ++k) manual += j[i + k];
    EXPECT_NEAR(from_jitter[i], manual, 1e-12) << "i = " << i;
  }
}

TEST(SnProcess, StrideControlsSampleCount) {
  std::vector<double> j(1000, 0.5);
  const auto overlapping = sn_from_jitter(j, 10, 1);
  const auto disjoint = sn_from_jitter(j, 10, 20);
  EXPECT_GT(overlapping.size(), 10 * disjoint.size() / 2);
  EXPECT_NEAR(static_cast<double>(disjoint.size()), 1000.0 / 20.0, 2.0);
}

TEST(SnProcess, WhiteJitterVarianceIs2NSigma2) {
  GaussianSampler g(2);
  const double sigma = 3e-12;
  std::vector<double> j(2'000'000);
  for (auto& v : j) v = sigma * g();
  for (std::size_t n : {1u, 10u, 100u}) {
    const auto sn = sn_from_jitter(j, n);
    const double var = stats::variance(sn);
    const double expected = 2.0 * static_cast<double>(n) * sigma * sigma;
    EXPECT_NEAR(var / expected, 1.0, 0.05) << "N = " << n;
  }
}

TEST(Sigma2NSweep, MatchesDirectVarianceOnWhite) {
  GaussianSampler g(3);
  std::vector<double> j(500'000);
  for (auto& v : j) v = g() * 1e-12;
  const std::vector<std::size_t> grid{5, 50, 500};
  const auto sweep = sigma2_n_sweep(j, grid);
  ASSERT_EQ(sweep.size(), 3u);
  for (const auto& pt : sweep) {
    const double expected = 2.0 * static_cast<double>(pt.n) * 1e-24;
    EXPECT_NEAR(pt.sigma2 / expected, 1.0, 0.1);
    EXPECT_GT(pt.ci_hi, pt.sigma2);
    EXPECT_LT(pt.ci_lo, pt.sigma2);
    EXPECT_GT(pt.samples, 100u);
  }
}

TEST(Sigma2NSweep, CiWidthShrinksWithData) {
  GaussianSampler g(4);
  std::vector<double> small(50'000), large(800'000);
  for (auto& v : small) v = g();
  for (auto& v : large) v = g();
  const std::vector<std::size_t> grid{100};
  const auto s = sigma2_n_sweep(small, grid);
  const auto l = sigma2_n_sweep(large, grid);
  ASSERT_EQ(s.size(), 1u);
  ASSERT_EQ(l.size(), 1u);
  const double rel_s = (s[0].ci_hi - s[0].ci_lo) / s[0].sigma2;
  const double rel_l = (l[0].ci_hi - l[0].ci_lo) / l[0].sigma2;
  EXPECT_LT(rel_l, rel_s);
}

TEST(Sigma2NSweep, SkipsOversizedN) {
  GaussianSampler g(5);
  std::vector<double> j(1000);
  for (auto& v : j) v = g();
  const std::vector<std::size_t> grid{10, 100000};
  const auto sweep = sigma2_n_sweep(j, grid);
  EXPECT_EQ(sweep.size(), 1u);
}

TEST(Calibration, RecoversKnownCoefficientsFromSyntheticCurve) {
  // Exact Eq. 11 points + the paper's constants must invert exactly.
  // These are NUMERICAL-precision bands on a noise-free synthetic curve
  // (nothing is sampled), so the statistical-tolerance helpers do not
  // apply; the 1e-6 bands bound Cholesky round-off only.
  using namespace ptrng::oscillator;
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  std::vector<double> n, s2;
  for (double v = 10; v <= 3e5; v *= 2.0) {
    n.push_back(v);
    s2.push_back(psd.sigma2_n(v));
  }
  const auto cal = fit_sigma2_n(n, s2, paper::f0);
  EXPECT_NEAR(cal.b_th / paper::b_th, 1.0, 1e-6);
  EXPECT_NEAR(cal.b_fl / paper::b_fl, 1.0, 1e-6);
  EXPECT_NEAR(cal.sigma_thermal * 1e12, 15.89, 0.05);
  EXPECT_NEAR(cal.jitter_ratio * 1000.0, 1.6, 0.05);
  EXPECT_NEAR(cal.rn_constant, 5354.0, 20.0);
  EXPECT_NEAR(cal.independence_threshold(0.95), 281.0, 2.0);
  EXPECT_GT(cal.r_squared, 0.999999);
}

TEST(Calibration, RecoversFromSimulatedSweep) {
  using namespace ptrng::oscillator;
  auto pair = paper_pair(6, 0.0);
  const auto j = pair.relative_jitter(4'000'000);
  const auto grid = log_integer_grid(8, 30000, 24);
  const auto sweep = sigma2_n_sweep(j, grid);
  const auto cal = fit_sigma2_n(sweep, paper::f0);
  // Bands from the weighted-fit standard errors instead of hand-tuned
  // constants. The sweep points reuse one jitter stream over overlapping
  // s_N windows (and flicker correlates them further), so the nominal
  // SEs underestimate the true sampling error by a factor of a few —
  // observed deviation/SE ratios reach ~4 across seeds; inflation 3 with
  // z = 5 carries that headroom.
  const double tol_b_th =
      ptrng::testing::regression_coef_tol(cal.b_th, cal.b_th_err, 5.0, 3.0);
  const double tol_b_fl =
      ptrng::testing::regression_coef_tol(cal.b_fl, cal.b_fl_err, 5.0, 3.0);
  EXPECT_NEAR(cal.b_th / paper::b_th, 1.0, tol_b_th);
  EXPECT_NEAR(cal.b_fl / paper::b_fl, 1.0, tol_b_fl);
  // sigma_th = sqrt(b_th/f0^3): relative error is half of b_th's.
  EXPECT_NEAR(cal.sigma_thermal * 1e12, 15.89, 15.89 * 0.5 * tol_b_th);
}

TEST(Calibration, ThermalRatioHelpers) {
  JitterCalibration cal;
  cal.rn_constant = 5354.0;
  EXPECT_NEAR(cal.thermal_ratio(281.0), 0.95, 0.001);
  EXPECT_NEAR(cal.independence_threshold(0.95), 281.0, 1.0);
  EXPECT_NEAR(cal.independence_threshold(0.5), 5354.0, 1.0);
}

TEST(Counter, CountsNominalFrequencyRatio) {
  // Noise-free oscillators with a 2:1 frequency ratio: Q = 2N exactly
  // (up to the +-1 boundary count).
  oscillator::RingOscillatorConfig fast, slow;
  fast.f0 = 200e6;
  fast.b_th = 1e-12;
  fast.b_fl = 0.0;
  fast.seed = 7;
  slow.f0 = 100e6;
  slow.b_th = 1e-12;
  slow.b_fl = 0.0;
  slow.seed = 8;
  oscillator::RingOscillator osc1(fast), osc2(slow);
  DifferentialCounter counter(osc1, osc2);
  const auto counts = counter.count_windows(100, 50);
  ASSERT_EQ(counts.size(), 50u);
  for (auto q : counts) EXPECT_NEAR(static_cast<double>(q), 200.0, 1.5);
}

TEST(Counter, TotalCountConservation) {
  // Exact invariant of the buffered window loop: every osc1 period ever
  // generated is either attributed to some window or still sits in the
  // counter's edge buffer — no slack term.
  using namespace ptrng::oscillator;
  auto c1 = paper_single_config(9);
  auto c2 = paper_single_config(10);
  c1.mismatch = 2e-3;
  RingOscillator osc1(c1), osc2(c2);
  DifferentialCounter counter(osc1, osc2);
  const std::size_t n_cycles = 500, n_windows = 40;
  const auto counts = counter.count_windows(n_cycles, n_windows);
  std::int64_t total = 0;
  for (auto q : counts) total += q;
  EXPECT_EQ(static_cast<std::uint64_t>(total) + counter.buffered_edges(),
            osc1.cycle_count());
  // The invariant survives re-entry with a different window length.
  for (auto q : counter.count_windows(123, 7)) total += q;
  EXPECT_EQ(static_cast<std::uint64_t>(total) + counter.buffered_edges(),
            osc1.cycle_count());
}

TEST(Counter, SnFromCountsScalesByF0) {
  const std::vector<std::int64_t> counts{100, 103, 99, 101};
  const auto sn = DifferentialCounter::sn_from_counts(counts, 100e6);
  ASSERT_EQ(sn.size(), 3u);
  EXPECT_NEAR(sn[0], 3.0 / 100e6, 1e-15);
  EXPECT_NEAR(sn[1], -4.0 / 100e6, 1e-15);
  EXPECT_NEAR(sn[2], 2.0 / 100e6, 1e-15);
}

TEST(Counter, Sigma2NTracksOracleAtLargeN) {
  // At large N the accumulated jitter dwarfs the quantization floor, so
  // counter sigma^2_N ~ oracle sigma^2_N.
  using namespace ptrng::oscillator;
  auto pair_cfg1 = paper_single_config(11);
  auto pair_cfg2 = paper_single_config(12);
  pair_cfg1.mismatch = +1.5e-3;
  pair_cfg2.mismatch = -1.5e-3;
  RingOscillator osc1(pair_cfg1), osc2(pair_cfg2);
  DifferentialCounter counter(osc1, osc2);
  const std::size_t n = 60000;
  const std::size_t windows = 220;
  const double measured = counter.sigma2_n(n, windows);
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const double theory = psd.sigma2_n(static_cast<double>(n));
  // Tolerance from the CI width of a variance ratio over ~windows-1 s_N
  // samples (flicker correlates neighbouring windows, so z = 5 carries
  // the headroom, not a hand-tuned band).
  EXPECT_NEAR(measured / theory, 1.0,
              ptrng::testing::variance_ratio_tol(windows - 1));
}

TEST(Counter, QuantizationFloorDominatesAtSmallN) {
  // At small N the +-1-count error dominates: measured variance is far
  // above the oracle value and close to the uniform-quantization floor
  // 0.5/f0^2 (documented limitation of Eq. 12; docs/ARCHITECTURE.md §3).
  using namespace ptrng::oscillator;
  auto c1 = paper_single_config(13);
  auto c2 = paper_single_config(14);
  c1.mismatch = +1.5e-3;
  c2.mismatch = -1.5e-3;
  RingOscillator osc1(c1), osc2(c2);
  DifferentialCounter counter(osc1, osc2);
  const std::size_t n = 20;
  const double measured = counter.sigma2_n(n, 2000);
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const double oracle = psd.sigma2_n(static_cast<double>(n));
  EXPECT_GT(measured, 10.0 * oracle);
  // The iid-uniform bound on the +-1-count error is 0.5/f0^2; with the
  // phase sweeping slowly (N*mismatch << 1) boundary errors partially
  // cancel, so the realized floor sits below the bound but still orders
  // of magnitude above the oracle.
  const double floor_bound = 0.5 / (paper::f0 * paper::f0);
  EXPECT_GT(measured, 0.02 * floor_bound);
  EXPECT_LT(measured, 1.5 * floor_bound);
}

}  // namespace
