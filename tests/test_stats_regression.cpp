// Unit tests for least squares: exact recovery, weighting, covariance,
// the paper's A*N + B*N^2 through-origin fit, log-log slope fits.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/regression.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::stats;

TEST(FitLine, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 2.0 + 3.0 * x[i];
  const auto fit = fit_line(x, y);
  ASSERT_EQ(fit.coefficients.size(), 2u);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.rss, 0.0, 1e-12);
}

TEST(FitLine, NoisyLineRecoversWithinError) {
  GaussianSampler g(1);
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) / 10.0;
    y[i] = -1.5 + 0.75 * x[i] + 0.2 * g();
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.coefficients[0], -1.5, 4.0 * fit.std_errors[0]);
  EXPECT_NEAR(fit.coefficients[1], 0.75, 4.0 * fit.std_errors[1]);
  EXPECT_GT(fit.r_squared, 0.97);
}

TEST(FitPowers, PaperBasisRecoversThermalFlickerSplit) {
  // y = A*N + B*N^2 with the paper's implied magnitudes: A = 5.36e-6,
  // B = 1.0012e-9 — a badly conditioned basis without column scaling.
  const double a = 5.36e-6, b = 1.0012e-9;
  std::vector<double> n, y;
  for (double v = 10; v <= 3e5; v *= 1.6) {
    n.push_back(v);
    y.push_back(a * v + b * v * v);
  }
  const std::size_t powers[] = {1, 2};
  const auto fit = fit_powers(n, y, powers);
  EXPECT_NEAR(fit.coefficients[0], a, 1e-6 * a);
  EXPECT_NEAR(fit.coefficients[1], b, 1e-6 * b);
}

TEST(FitPowers, WeightsChangeSolution) {
  // Two populations with different noise; upweighting the clean one must
  // pull the fit toward it.
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{1.0, 2.0, 10.0, 20.0};
  const std::size_t powers[] = {1};
  const std::vector<double> w_hi_first{100.0, 100.0, 0.01, 0.01};
  const std::vector<double> w_hi_last{0.01, 0.01, 100.0, 100.0};
  const auto f1 = fit_powers(x, y, powers, w_hi_first);
  const auto f2 = fit_powers(x, y, powers, w_hi_last);
  EXPECT_LT(f1.coefficients[0], f2.coefficients[0]);
  EXPECT_NEAR(f1.coefficients[0], 1.0, 0.1);
  EXPECT_NEAR(f2.coefficients[0], 4.4, 0.5);
}

TEST(LeastSquares, CovarianceScalesWithNoise) {
  GaussianSampler g(2);
  std::vector<double> x(2000), y_lo(2000), y_hi(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) / 100.0;
    const double noise = g();
    y_lo[i] = 1.0 + 2.0 * x[i] + 0.1 * noise;
    y_hi[i] = 1.0 + 2.0 * x[i] + 1.0 * noise;
  }
  const auto f_lo = fit_line(x, y_lo);
  const auto f_hi = fit_line(x, y_hi);
  // 10x the noise => 10x the standard errors.
  EXPECT_NEAR(f_hi.std_errors[1] / f_lo.std_errors[1], 10.0, 0.5);
}

TEST(LeastSquares, PredictUsesCoefficients) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 4.0 * x[i] * x[i];
  const std::size_t powers[] = {2};
  const auto fit = fit_powers(x, y, powers);
  const double basis[] = {9.0};  // x = 3 -> x^2 = 9
  EXPECT_NEAR(fit.predict(basis), 36.0, 1e-9);
}

TEST(LeastSquares, SingularDesignThrows) {
  // Two identical columns.
  const std::vector<double> design{1, 1, 2, 2, 3, 3, 4, 4};
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_THROW(least_squares(design, 4, 2, y), NumericError);
}

TEST(LeastSquares, Preconditions) {
  const std::vector<double> design{1, 2, 3};
  const std::vector<double> y{1, 2};
  EXPECT_THROW(least_squares(design, 3, 1, y), ContractViolation);
}

TEST(FitLogLog, PowerLawSlopeRecovered) {
  // y = 3 * x^{-1.5}.
  std::vector<double> x, y;
  for (double v = 1.0; v < 1e4; v *= 2.0) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, -1.5));
  }
  const auto fit = fit_loglog(x, y);
  EXPECT_NEAR(fit.coefficients[1], -1.5, 1e-10);
  EXPECT_NEAR(std::exp(fit.coefficients[0]), 3.0, 1e-9);
}

TEST(FitLogLog, RejectsNonPositive) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0, -2.0};
  EXPECT_THROW(fit_loglog(x, y), ContractViolation);
}

class PolynomialDegreeSweep : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(PolynomialDegreeSweep, ExactRecoveryAcrossDegrees) {
  const std::size_t degree = GetParam();
  std::vector<std::size_t> powers(degree + 1);
  for (std::size_t k = 0; k <= degree; ++k) powers[k] = k;
  std::vector<double> x, y;
  for (double v = -2.0; v <= 2.0; v += 0.25) {
    x.push_back(v);
    double acc = 0.0;
    for (std::size_t k = 0; k <= degree; ++k)
      acc += static_cast<double>(k + 1) * std::pow(v, static_cast<double>(k));
    y.push_back(acc);
  }
  const auto fit = fit_powers(x, y, powers);
  for (std::size_t k = 0; k <= degree; ++k)
    EXPECT_NEAR(fit.coefficients[k], static_cast<double>(k + 1), 1e-7)
        << "degree " << degree << " coeff " << k;
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolynomialDegreeSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
