// Unit tests for descriptive statistics: Welford accumulator, batch
// helpers, quantiles, histogram.
#include <gtest/gtest.h>

#include "ignore_result.hpp"

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "stats/descriptive.hpp"

namespace {

using ptrng::test::ignore_result;

using namespace ptrng;
using namespace ptrng::stats;

TEST(RunningStats, SmallExactCase) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance_population(), 4.0, 1e-12);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, GaussianMoments) {
  GaussianSampler g(5);
  RunningStats rs;
  for (int i = 0; i < 300000; ++i) rs.add(g(1.0, 3.0));
  EXPECT_NEAR(rs.mean(), 1.0, 0.03);
  EXPECT_NEAR(rs.variance(), 9.0, 0.15);
  EXPECT_NEAR(rs.skewness(), 0.0, 0.03);
  EXPECT_NEAR(rs.excess_kurtosis(), 0.0, 0.08);
}

TEST(RunningStats, MergeEqualsSequential) {
  GaussianSampler g(6);
  RunningStats all, a, b;
  for (int i = 0; i < 10000; ++i) {
    const double x = g();
    all.add(x);
    if (i % 2 == 0) a.add(x); else b.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-8);
  EXPECT_NEAR(a.excess_kurtosis(), all.excess_kurtosis(), 1e-8);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, SkewedInputHasPositiveSkewness) {
  Xoshiro256pp rng(7);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform_pos();
    rs.add(-std::log(u));  // Exp(1): skewness 2, excess kurtosis 6
  }
  EXPECT_NEAR(rs.skewness(), 2.0, 0.15);
  EXPECT_NEAR(rs.excess_kurtosis(), 6.0, 0.8);
}

TEST(BatchStats, MeanVarianceCovariance) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_DOUBLE_EQ(mean(x), 3.0);
  EXPECT_DOUBLE_EQ(variance(x), 2.5);
  EXPECT_DOUBLE_EQ(stddev(x), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(covariance(x, y), 5.0);
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
}

TEST(BatchStats, AnticorrelatedSeries) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{5, 4, 3, 2, 1};
  EXPECT_NEAR(correlation(x, y), -1.0, 1e-12);
}

TEST(BatchStats, PreconditionViolations) {
  const std::vector<double> one{1.0};
  const std::vector<double> empty;
  EXPECT_THROW(ignore_result(mean(empty)), ContractViolation);
  EXPECT_THROW(ignore_result(variance(one)), ContractViolation);
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{1, 2};
  EXPECT_THROW(ignore_result(covariance(x, y)), ContractViolation);
}

TEST(Quantile, OrderStatisticsInterpolation) {
  const std::vector<double> x{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 2.5);
  EXPECT_THROW(ignore_result(quantile(x, 1.5)), ContractViolation);
}

TEST(Quantile, MedianOfGaussianNearZero) {
  GaussianSampler g(8);
  std::vector<double> x(50001);
  for (auto& v : x) v = g();
  EXPECT_NEAR(quantile(x, 0.5), 0.0, 0.02);
  // 84th percentile of N(0,1) ~ +1.
  EXPECT_NEAR(quantile(x, 0.8413), 1.0, 0.03);
}

TEST(Histogram, CountsAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.05 + static_cast<double>(i % 10));
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 10u);
    EXPECT_NEAR(h.density(b), 0.1, 1e-12);
  }
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, OutliersGoToTails) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, GaussianShape) {
  GaussianSampler g(9);
  Histogram h(-4.0, 4.0, 32);
  for (int i = 0; i < 200000; ++i) h.add(g());
  // Density at the center ~ 1/sqrt(2 pi) = 0.3989.
  const double center_density =
      (h.density(15) + h.density(16)) / 2.0;
  EXPECT_NEAR(center_density, 0.3989, 0.02);
}

}  // namespace
