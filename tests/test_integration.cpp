// Integration tests: the full paper pipeline end to end.
//
//  1. Simulate the Evariste-II-like oscillator pair (calibrated to the
//     paper's fitted coefficients).
//  2. Measure sigma^2_N (oracle estimator) over a log-N sweep.
//  3. Fit Eq. 11, extract (b_th, b_fl), sigma_th, r_N, N* — and compare
//     against the paper's Section III-E / IV-B numbers.
//  4. Validate the closed form against the numerical Eq. 9 integral.
//  5. Check the security narrative: naive model overestimates the
//     entropy-bearing variance; the eRO-TRNG passes AIS31 procedure B at
//     an adequate divider.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_utils.hpp"
#include "measurement/calibration.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "model/independence.hpp"
#include "model/legacy_models.hpp"
#include "model/multilevel_model.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "phase_noise/sigma2n.hpp"
#include "trng/ais31.hpp"
#include "trng/entropy.hpp"
#include "trng/ero_trng.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::oscillator;

TEST(Integration, PaperPipelineEndToEnd) {
  // 1-2: simulate and measure.
  auto pair = paper_pair(2014, 0.0);
  const auto jitter = pair.relative_jitter(6'000'000);
  const auto grid = log_integer_grid(10, 40'000, 28);
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  ASSERT_GE(sweep.size(), 20u);

  // 3: fit and compare with Section IV-B.
  const auto cal = measurement::fit_sigma2_n(sweep, paper::f0);
  EXPECT_NEAR(cal.b_th / paper::b_th, 1.0, 0.12)
      << "b_th = " << cal.b_th << " (paper 276.04)";
  EXPECT_NEAR(cal.b_fl / paper::b_fl, 1.0, 0.30)
      << "b_fl = " << cal.b_fl << " (paper-implied 1.9156e6)";
  EXPECT_NEAR(cal.sigma_thermal * 1e12, 15.89, 1.2);
  EXPECT_NEAR(cal.jitter_ratio * 1e3, 1.6, 0.15);
  EXPECT_NEAR(cal.rn_constant / 5354.0, 1.0, 0.4);
  EXPECT_GT(cal.r_squared, 0.99);

  // The independence threshold lands in the paper's ballpark (281).
  const double n_star = cal.independence_threshold(0.95);
  EXPECT_GT(n_star, 150.0);
  EXPECT_LT(n_star, 500.0);
}

TEST(Integration, MeasuredCurveMatchesEq11PointwiseAndEq9) {
  auto pair = paper_pair(99, 0.0);
  const auto jitter = pair.relative_jitter(4'000'000);
  const std::vector<std::size_t> grid{30, 300, 3000, 30000};
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  const auto psd = pair.pair_phase_psd();
  for (const auto& pt : sweep) {
    const double n = static_cast<double>(pt.n);
    // Closed form (Eq. 11).
    const double closed = psd.sigma2_n(n);
    EXPECT_NEAR(pt.sigma2 / closed, 1.0, 0.3) << "N = " << pt.n;
    // Numeric Eq. 9 with power-law terms equals the closed form.
    const double numeric =
        phase_noise::sigma2_n_power_law(psd.b_th(), -2.0, psd.f0(), n) +
        phase_noise::sigma2_n_power_law(psd.b_fl(), -3.0, psd.f0(), n);
    EXPECT_NEAR(numeric / closed, 1.0, 2e-3) << "N = " << pt.n;
  }
}

TEST(Integration, LinearityHoldsBelowThresholdBreaksAbove) {
  // The paper's Fig. 7 story in one assertion pair: sigma^2_N / N is flat
  // below N* and grows markedly above the r_N = 50% point (N = C).
  auto pair = paper_pair(7, 0.0);
  const auto jitter = pair.relative_jitter(6'000'000);
  const std::vector<std::size_t> grid{50, 250, 5354, 30000};
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  ASSERT_EQ(sweep.size(), 4u);
  const double slope_lo =
      (sweep[1].sigma2 / static_cast<double>(sweep[1].n)) /
      (sweep[0].sigma2 / static_cast<double>(sweep[0].n));
  const double slope_hi =
      (sweep[3].sigma2 / static_cast<double>(sweep[3].n)) /
      (sweep[2].sigma2 / static_cast<double>(sweep[2].n));
  EXPECT_NEAR(slope_lo, 1.0, 0.2);  // near-linear regime
  EXPECT_GT(slope_hi, 2.0);         // flicker-dominated regime
}

TEST(Integration, IndependenceVerdictMatchesRegime) {
  // Plain variance-of-sums (Bienayme) is even MORE flicker-sensitive than
  // sigma^2_N: the boxcar filter passes the 1/f floor that the second
  // difference rejects — which is exactly why the paper follows Allan in
  // analyzing s_N instead of raw accumulated jitter. Verify both sides:
  // thermal-only jitter passes the battery; the full (thermal+flicker)
  // pair already shows the dependence in raw sums at blocks below N*.
  auto thermal_cfg = paper_single_config(13);
  thermal_cfg.b_th = paper::b_th;
  thermal_cfg.b_fl = 0.0;
  RingOscillator thermal_osc(thermal_cfg);
  std::vector<double> thermal(2'000'000);
  for (auto& v : thermal) v = thermal_osc.next_period().jitter();
  const auto clean = model::analyze_independence(thermal, 256, 32);
  EXPECT_TRUE(clean.consistent_with_independence);

  auto pair = paper_pair(13, 0.0);
  const auto jitter = pair.relative_jitter(2'000'000);
  const auto full = model::analyze_independence(jitter, 256, 32);
  EXPECT_GT(full.bienayme_defect, clean.bienayme_defect);
}

TEST(Integration, EntropyOverestimationNarrative) {
  // Conclusion of the paper: treating total jitter as white overestimates
  // the entropy-bearing variance, so the naive model certifies a faster
  // (smaller K) sampling than the refined model allows.
  const phase_noise::PhasePsd psd(paper::b_th, paper::b_fl, paper::f0);
  const auto naive = model::naive_from_psd(psd);
  const model::RefinedThermalModel refined(psd);

  // Find the smallest divider K that reaches H >= 0.997 under each model.
  auto k_required = [](auto&& variance_at_k) {
    double k = 1.0;
    while (trng::entropy_lower_bound(variance_at_k(k)) < 0.997 && k < 1e9)
      k *= 1.1;
    return k;
  };
  const double k_naive =
      k_required([&](double k) { return naive.accumulated_cycle_variance(k); });
  const double k_refined = k_required(
      [&](double k) { return refined.accumulated_cycle_variance(k); });
  EXPECT_LT(k_naive, k_refined);
  // With the paper's coefficients and a 1000-period calibration horizon,
  // the naive model overestimates the per-period entropy-bearing variance
  // by 1 + N_meas/C = 1 + 1000/5354 ~ 1.187, so it certifies a ~19%
  // faster sampling than the thermal noise supports.
  EXPECT_NEAR(k_refined / k_naive, 1.187, 0.05);
}

TEST(Integration, TrngWithAdequateDividerPassesProcedureB) {
  // At the paper's jitter level (sigma_th/T0 ~ 1.6 permil) a divider of a
  // few thousand leaves the raw bits visibly correlated — procedure B
  // fails, which is the paper's warning in action. K ~ 3e4 accumulates
  // about one period rms of relative phase per sample and passes.
  const std::size_t need = trng::ais31::procedure_b_bits();
  {
    auto weak = trng::paper_trng(2000, 77);
    const auto bits = weak.generate_bits(200'000);
    EXPECT_LT(trng::markov_entropy_rate(bits), 0.99);
  }
  auto trng = trng::paper_trng(30000, 77);
  const auto bits = trng.generate_bits(need);
  const auto res = trng::ais31::procedure_b(bits);
  EXPECT_TRUE(res.passed) << (res.failures.empty()
                                  ? ""
                                  : res.outcomes[res.failures[0]].detail);
  // And the empirical Markov entropy is essentially 1 bit/bit.
  EXPECT_GT(trng::markov_entropy_rate(bits), 0.995);
}

TEST(Integration, ForwardModelVsExtractionConsistency) {
  // from_technology -> simulate -> fit: the extracted coefficients must
  // match the forward model within estimator tolerance.
  const auto isf = phase_noise::Isf::ring_typical(5, 0.25);
  const auto forward = model::MultilevelModel::from_technology(
      transistor::technology_node("180nm"), 5, isf);
  const auto fwd_psd = forward.phase_psd();

  RingOscillatorConfig cfg;
  cfg.f0 = fwd_psd.f0();
  cfg.b_th = fwd_psd.b_th();
  cfg.b_fl = fwd_psd.b_fl();
  cfg.flicker_floor_ratio = 1e-6;
  cfg.seed = 555;
  RingOscillator osc(cfg);
  std::vector<double> jitter(3'000'000);
  for (auto& j : jitter) j = osc.next_period().jitter();

  const auto grid = log_integer_grid(10, 30'000, 20);
  const auto sweep = measurement::sigma2_n_sweep(jitter, grid);
  const auto cal = measurement::fit_sigma2_n(sweep, fwd_psd.f0());
  EXPECT_NEAR(cal.b_th / fwd_psd.b_th(), 1.0, 0.15);
  if (fwd_psd.b_fl() > 0.0 && cal.b_fl > 0.0) {
    // Flicker extraction is noisier; demand order-of-magnitude agreement.
    EXPECT_NEAR(std::log10(cal.b_fl / fwd_psd.b_fl()), 0.0, 0.7);
  }
}

}  // namespace
