// SpmcRing (common/spmc_ring.hpp): single-threaded FIFO semantics,
// capacity behaviour, and a single-producer / multi-consumer stress run
// checking that the popped items exactly partition the pushed sequence
// with per-consumer order preserved. (The TSan CI job runs this suite
// with PTRNG_SANITIZE=thread.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/spmc_ring.hpp"

namespace ptrng {
namespace {

TEST(SpmcRing, FifoOrderAndCapacity) {
  SpmcRing<int> ring(6);  // rounds up to 8
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int{i})) << i;
  EXPECT_FALSE(ring.try_push(99));  // full
  EXPECT_EQ(ring.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 0u);
  // Wrap-around: slots are reusable after a full drain.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(100 * round + i));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, 100 * round + i);
    }
  }
}

TEST(SpmcRing, MoveOnlyPayload) {
  SpmcRing<std::vector<std::byte>> ring(4);
  std::vector<std::byte> block(32, std::byte{0x7f});
  EXPECT_TRUE(ring.try_push(std::move(block)));
  std::vector<std::byte> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.size(), 32u);
  EXPECT_EQ(out[0], std::byte{0x7f});
}

TEST(SpmcRing, SingleProducerMultiConsumerPartition) {
  // One producer pushes 0..N-1; C consumers drain concurrently. Every
  // value must be popped exactly once, and each consumer's local pop
  // sequence must be increasing (the ring is FIFO; CAS pops hand out
  // slots in order).
  constexpr std::uint64_t kItems = 200'000;
  constexpr std::size_t kConsumers = 4;
  SpmcRing<std::uint64_t> ring(1024);
  std::atomic<bool> done{false};
  std::vector<std::vector<std::uint64_t>> popped(kConsumers);

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      Backoff backoff;
      std::uint64_t value = 0;
      for (;;) {
        if (ring.try_pop(value)) {
          popped[c].push_back(value);
          backoff.reset();
        } else if (done.load(std::memory_order_acquire)) {
          if (!ring.try_pop(value)) break;  // final drain race
          popped[c].push_back(value);
        } else {
          backoff.pause();
        }
      }
    });
  }

  Backoff push_backoff;
  for (std::uint64_t i = 0; i < kItems;) {
    if (ring.try_push(std::uint64_t{i})) {
      ++i;
      push_backoff.reset();
    } else {
      push_backoff.pause();
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : consumers) t.join();

  std::vector<bool> seen(kItems, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    for (std::size_t i = 0; i < popped[c].size(); ++i) {
      const std::uint64_t v = popped[c][i];
      ASSERT_LT(v, kItems);
      ASSERT_FALSE(seen[v]) << "value popped twice: " << v;
      seen[v] = true;
      if (i > 0) {
        EXPECT_LT(popped[c][i - 1], v) << "consumer " << c;
      }
    }
    total += popped[c].size();
  }
  EXPECT_EQ(total, kItems);
}

}  // namespace
}  // namespace ptrng
