// SIMD layer differential suite (docs/ARCHITECTURE.md §5 "SIMD rules"):
// every vector kernel must be bit-identical to its scalar fallback. The
// vector-op sanity tests exercise common/simd.hpp primitives directly
// (skipped when active() is false — e.g. forced-scalar CI or a host
// without the compiled ISA); the differential tests compare full
// generator/measurement paths under ScopedForceScalar and always run.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/ziggurat.hpp"
#include "measurement/counter.hpp"
#include "noise/filter_bank.hpp"
#include "oscillator/ring_oscillator.hpp"

namespace {

using namespace ptrng;

// ---------------------------------------------------------------------
// Vector-op sanity. The helpers carry per-function ISA targeting, so
// they are exercised through PTRNG_SIMD_TARGET wrappers and only when
// active() says the host may execute them.
// ---------------------------------------------------------------------

PTRNG_SIMD_TARGET void run_transpose(const double* in, double* out) {
  simd::f64x4 a = simd::load4(in);
  simd::f64x4 b = simd::load4(in + 4);
  simd::f64x4 c = simd::load4(in + 8);
  simd::f64x4 d = simd::load4(in + 12);
  simd::transpose4(a, b, c, d);
  simd::store4(out, a);
  simd::store4(out + 4, b);
  simd::store4(out + 8, c);
  simd::store4(out + 12, d);
}

PTRNG_SIMD_TARGET int run_lt_mask(const double* a, const double* b) {
  return simd::lt_mask(simd::load4(a), simd::load4(b));
}

PTRNG_SIMD_TARGET int run_lt_mask_i64(const std::uint64_t* a,
                                      const std::uint64_t* b) {
  return simd::lt_mask_i64(simd::load4(a), simd::load4(b));
}

PTRNG_SIMD_TARGET void run_u52_to_f64(const std::uint64_t* in, double* out) {
  simd::store4(out, simd::u52_to_f64(simd::load4(in)));
}

PTRNG_SIMD_TARGET void run_rotl23(const std::uint64_t* in,
                                  std::uint64_t* out) {
  simd::store4(out, simd::rotl<23>(simd::load4(in)));
}

PTRNG_SIMD_TARGET void run_gather(const double* base,
                                  const std::uint64_t* idx, double* out) {
  simd::store4(out, simd::gather4(base, simd::load4(idx)));
}

PTRNG_SIMD_TARGET void run_or_bits(const double* x, const std::uint64_t* bits,
                                   double* out) {
  simd::store4(out, simd::or_bits(simd::load4(x), simd::load4(bits)));
}

PTRNG_SIMD_TARGET void run_arith(const double* a, const double* b,
                                 double* out) {
  const simd::f64x4 va = simd::load4(a), vb = simd::load4(b);
  simd::store4(out, va * vb + va - vb);
}

#define SKIP_UNLESS_VECTOR_ACTIVE()                                       \
  if (!simd::active()) GTEST_SKIP() << "vector backend inactive ("        \
                                    << simd::compiled_backend() << ")"

TEST(SimdOps, Transpose4) {
  SKIP_UNLESS_VECTOR_ACTIVE();
  double in[16], out[16];
  std::iota(in, in + 16, 0.0);
  run_transpose(in, out);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(out[4 * r + c], in[4 * c + r]);
}

TEST(SimdOps, LtMask) {
  SKIP_UNLESS_VECTOR_ACTIVE();
  const double a[4] = {1.0, 2.0, 3.0, 4.0};
  const double b[4] = {2.0, 2.0, 5.0, -1.0};
  EXPECT_EQ(run_lt_mask(a, b), 0b0101);
}

TEST(SimdOps, LtMaskI64IsSigned) {
  SKIP_UNLESS_VECTOR_ACTIVE();
  // Values stay below 2^63 in-library; still pin signed semantics.
  const std::uint64_t a[4] = {1, 5, 0xfffffffffffffULL, 7};
  const std::uint64_t b[4] = {2, 5, 0xfffffffffffffULL - 1, 100};
  EXPECT_EQ(run_lt_mask_i64(a, b), 0b1001);
}

TEST(SimdOps, U52ToF64Exact) {
  SKIP_UNLESS_VECTOR_ACTIVE();
  const std::uint64_t in[4] = {0, 1, 0xfffffffffffffULL, 0x8000000000000ULL};
  double out[4];
  run_u52_to_f64(in, out);
  for (int l = 0; l < 4; ++l)
    EXPECT_EQ(out[l],
              static_cast<double>(static_cast<std::int64_t>(in[l])));
}

TEST(SimdOps, Rotl23MatchesScalar) {
  SKIP_UNLESS_VECTOR_ACTIVE();
  const std::uint64_t in[4] = {0x0123456789abcdefULL, 1ULL, ~0ULL,
                               0x8000000000000001ULL};
  std::uint64_t out[4];
  run_rotl23(in, out);
  for (int l = 0; l < 4; ++l)
    EXPECT_EQ(out[l], (in[l] << 23) | (in[l] >> 41));
}

TEST(SimdOps, Gather4) {
  SKIP_UNLESS_VECTOR_ACTIVE();
  double base[8];
  std::iota(base, base + 8, 100.0);
  const std::uint64_t idx[4] = {7, 0, 3, 3};
  double out[4];
  run_gather(base, idx, out);
  EXPECT_EQ(out[0], 107.0);
  EXPECT_EQ(out[1], 100.0);
  EXPECT_EQ(out[2], 103.0);
  EXPECT_EQ(out[3], 103.0);
}

TEST(SimdOps, OrBitsInjectsSign) {
  SKIP_UNLESS_VECTOR_ACTIVE();
  const double x[4] = {1.5, 2.5, 0.0, 3.25};
  const std::uint64_t bits[4] = {0x8000000000000000ULL, 0,
                                 0x8000000000000000ULL, 0};
  double out[4];
  run_or_bits(x, bits, out);
  EXPECT_EQ(out[0], -1.5);
  EXPECT_EQ(out[1], 2.5);
  EXPECT_EQ(out[2], -0.0);
  EXPECT_TRUE(std::signbit(out[2]));
  EXPECT_EQ(out[3], 3.25);
}

TEST(SimdOps, ArithmeticMatchesScalarLaneWise) {
  SKIP_UNLESS_VECTOR_ACTIVE();
  const double a[4] = {1.3, -2.7, 1e300, 5e-324};
  const double b[4] = {0.9, 3.1, 2.0, 7.0};
  double out[4];
  run_arith(a, b, out);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(out[l], a[l] * b[l] + a[l] - b[l]);
}

TEST(SimdOps, ForceScalarToggle) {
  const bool was_active = simd::active();
  {
    simd::ScopedForceScalar force;
    EXPECT_TRUE(simd::scalar_forced());
    EXPECT_FALSE(simd::active());
    {
      simd::ScopedForceScalar nested;  // restores the OUTER force on exit
      EXPECT_FALSE(simd::active());
    }
    EXPECT_TRUE(simd::scalar_forced());
  }
  EXPECT_FALSE(simd::scalar_forced());
  EXPECT_EQ(simd::active(), was_active);
}

// ---------------------------------------------------------------------
// GaussianSampler::fill_lanes differential tests.
// ---------------------------------------------------------------------

std::vector<double> lanes_fill(GaussianSampler::Method method, std::size_t n,
                               bool force) {
  std::array<GaussianSampler, 4> samplers{
      GaussianSampler(11, method), GaussianSampler(22, method),
      GaussianSampler(33, method), GaussianSampler(44, method)};
  const std::array<GaussianSampler*, 4> lanes{&samplers[0], &samplers[1],
                                              &samplers[2], &samplers[3]};
  std::vector<double> out(4 * n);
  std::optional<simd::ScopedForceScalar> guard;
  if (force) guard.emplace();
  GaussianSampler::fill_lanes(lanes, out);
  // Post-fill state must match too: one more interleaved round.
  for (std::size_t l = 0; l < 4; ++l) out.push_back((*lanes[l])());
  return out;
}

TEST(FillLanes, ZigguratSimdMatchesScalarFallback) {
  // 100k per lane crosses the vector slow-path (~1.5% of draws) often.
  for (std::size_t n : {1u, 7u, 100'000u}) {
    EXPECT_EQ(lanes_fill(GaussianSampler::Method::Ziggurat, n, false),
              lanes_fill(GaussianSampler::Method::Ziggurat, n, true))
        << "n=" << n;
  }
}

TEST(FillLanes, MatchesIndependentPerLaneDraws) {
  const std::size_t n = 5000;
  for (auto method : {GaussianSampler::Method::Ziggurat,
                      GaussianSampler::Method::Polar}) {
    const auto out = lanes_fill(method, n, false);
    std::array<GaussianSampler, 4> ref{
        GaussianSampler(11, method), GaussianSampler(22, method),
        GaussianSampler(33, method), GaussianSampler(44, method)};
    for (std::size_t i = 0; i <= n; ++i)  // <= n covers the post-fill round
      for (std::size_t l = 0; l < 4; ++l)
        ASSERT_EQ(out[4 * i + l], ref[l]())
            << "method=" << static_cast<int>(method) << " i=" << i
            << " lane=" << l;
  }
}

// ---------------------------------------------------------------------
// FilterBankFlicker fill: SIMD vs forced scalar at several pool widths,
// stage-count remainders, a mid-block re-entry, and an advance_sum
// interleave. Stage counts are swept via stages_per_decade so the AR(1)
// pack loop sees full packs, scalar tails (1-2 stages) and the padded
// 3-stage tail.
// ---------------------------------------------------------------------

noise::FilterBankFlicker::Config bank_config(unsigned spd) {
  noise::FilterBankFlicker::Config cfg;
  cfg.amplitude = 1e-2;
  cfg.fs = 1.0;
  cfg.f_min = 5e-7;
  cfg.f_max = 0.25;
  cfg.seed = 0xbac2;
  cfg.stages_per_decade = spd;
  return cfg;
}

std::vector<double> bank_run(unsigned spd, bool force, std::size_t threads) {
  noise::FilterBankFlicker bank(bank_config(spd));
  std::optional<simd::ScopedForceScalar> guard;
  if (force) guard.emplace();
  ThreadPool::global().resize(threads);
  std::vector<double> out(9001);
  bank.fill(std::span<double>(out).subspan(0, 1234));  // mid-block cut
  out.push_back(bank.advance_sum(57));
  bank.fill(std::span<double>(out).subspan(1234, 9001 - 1234));
  out.push_back(bank.next());
  ThreadPool::global().resize(0);
  return out;
}

TEST(FilterBankSimd, FillMatchesScalarFallbackAcrossStageRemainders) {
  std::set<std::size_t> remainders;
  for (unsigned spd : {1u, 2u, 3u, 4u, 5u, 6u}) {
    remainders.insert(
        noise::FilterBankFlicker(bank_config(spd)).stage_count() % 4);
    EXPECT_EQ(bank_run(spd, false, 1), bank_run(spd, true, 1))
        << "stages_per_decade=" << spd;
  }
  // The sweep must actually exercise several pack-tail shapes.
  EXPECT_GE(remainders.size(), 3u);
}

TEST(FilterBankSimd, FillIndependentOfThreadCount) {
  const auto ref = bank_run(3, false, 1);
  EXPECT_EQ(ref, bank_run(3, false, 2));
  EXPECT_EQ(ref, bank_run(3, false, 8));
  EXPECT_EQ(ref, bank_run(3, true, 8));
}

TEST(FilterBankSimd, AdvanceSumMemoStableAcrossCacheWrap) {
  // Two identical banks run the same k-sequence, long enough to wrap the
  // 8-slot memo; interleaved fills confirm the stream stays in lockstep.
  noise::FilterBankFlicker a(bank_config(3)), b(bank_config(3));
  std::vector<double> buf_a(64), buf_b(64);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t k = 5; k <= 13; ++k) {
      ASSERT_EQ(a.advance_sum(k), b.advance_sum(k)) << "k=" << k;
    }
    a.fill(buf_a);
    b.fill(buf_b);
    ASSERT_EQ(buf_a, buf_b);
  }
}

// ---------------------------------------------------------------------
// DifferentialCounter: SIMD vs forced scalar, split re-entry (buffered
// edge carry), and the exact conservation invariant.
// ---------------------------------------------------------------------

struct CounterRun {
  std::vector<std::int64_t> counts;
  std::uint64_t cycles = 0;
  std::size_t buffered = 0;
};

CounterRun counter_run(bool force, std::size_t splits, std::size_t threads) {
  oscillator::RingOscillatorConfig c1, c2;
  c1.seed = 0x51;
  c2.seed = 0x52;
  c2.mismatch = 1.5e-3;
  oscillator::RingOscillator osc1(c1), osc2(c2);
  measurement::DifferentialCounter counter(osc1, osc2);
  std::optional<simd::ScopedForceScalar> guard;
  if (force) guard.emplace();
  ThreadPool::global().resize(threads);
  CounterRun r;
  const std::size_t n_windows = 120, n_cycles = 700;
  std::size_t done = 0;
  for (std::size_t s = 0; s < splits; ++s) {
    const std::size_t take =
        (s + 1 == splits) ? n_windows - done : n_windows / splits;
    const auto part = counter.count_windows(n_cycles, take);
    r.counts.insert(r.counts.end(), part.begin(), part.end());
    done += take;
  }
  ThreadPool::global().resize(0);
  r.cycles = osc1.cycle_count();
  r.buffered = counter.buffered_edges();
  return r;
}

TEST(CounterSimd, CountsMatchScalarFallback) {
  for (std::size_t splits : {std::size_t{1}, std::size_t{3}}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const auto v = counter_run(false, splits, threads);
      const auto s = counter_run(true, splits, threads);
      EXPECT_EQ(v.counts, s.counts)
          << "splits=" << splits << " threads=" << threads;
      EXPECT_EQ(v.cycles, s.cycles);
      EXPECT_EQ(v.buffered, s.buffered);
    }
  }
}

TEST(CounterSimd, SplitRunPreservesCountsAndConservation) {
  const auto whole = counter_run(false, 1, 1);
  const auto split = counter_run(false, 3, 1);
  EXPECT_EQ(whole.counts, split.counts);
  const auto total = std::accumulate(whole.counts.begin(), whole.counts.end(),
                                     std::int64_t{0});
  EXPECT_EQ(static_cast<std::uint64_t>(total) + whole.buffered, whole.cycles);
}

}  // namespace
