// Conditioning-layer battery (trng/conditioning.hpp):
//  * SHA-256 core against the FIPS 180-4 example vectors (one-block,
//    two-block, empty, 1M-'a'), including split incremental updates;
//  * hash_df structural properties + a pinned 55-byte vector;
//  * Hash_DRBG KATs in CAVP format (instantiate / [reseed] / generate /
//    generate, pinned 64-byte outputs). The pins were generated from
//    this implementation at PR 7 and INDEPENDENTLY cross-checked
//    against a from-scratch Python/hashlib Hash_DRBG — they are
//    regression pins anchored to a verified SHA-256 core, not official
//    CAVP response files;
//  * Hash_DRBG state-machine behaviour (reseed interval, prediction
//    resistance, reseed source, request ceiling);
//  * HashConditioner entropy ledger and ConditioningTransform
//    streaming equivalence.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "trng/bit_stream.hpp"
#include "trng/conditioning.hpp"

namespace ptrng::trng {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    out[i] = static_cast<std::byte>(s[i]);
  return out;
}

std::vector<std::byte> seq_bytes(std::size_t n, unsigned start) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((start + i) & 0xff);
  return v;
}

/// Ideal iid BitSource for conditioner tests.
class RngBitSource final : public BitSource {
 public:
  explicit RngBitSource(std::uint64_t seed) : rng_(seed) {}
  std::uint8_t next_bit() override {
    return static_cast<std::uint8_t>(rng_.next() & 1u);
  }

 private:
  Xoshiro256pp rng_;
};

// --- SHA-256 FIPS 180-4 vectors ------------------------------------------

TEST(Sha256Kat, Fips180EmptyMessage) {
  EXPECT_EQ(to_hex(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Kat, Fips180OneBlock) {
  EXPECT_EQ(to_hex(Sha256::digest(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Kat, Fips180TwoBlock) {
  const auto msg = bytes_of(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(to_hex(Sha256::digest(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Kat, Fips180MillionA) {
  Sha256 hash;
  const auto chunk = bytes_of(std::string(1000, 'a'));
  for (int i = 0; i < 1000; ++i) hash.update(chunk);
  EXPECT_EQ(to_hex(hash.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Kat, SplitUpdatesMatchOneShot) {
  // Every split point of the two-block message, including splits inside
  // the internal 64-byte block buffer.
  const auto msg = bytes_of(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  const auto ref = Sha256::digest(msg);
  for (std::size_t cut = 0; cut <= msg.size(); ++cut) {
    Sha256 hash;
    hash.update(std::span<const std::byte>(msg).first(cut));
    hash.update(std::span<const std::byte>(msg).subspan(cut));
    EXPECT_EQ(hash.finalize(), ref) << "cut " << cut;
  }
}

TEST(Sha256Kat, HexRoundTrip) {
  const auto msg = seq_bytes(19, 0xe0);
  EXPECT_EQ(from_hex(to_hex(msg)), msg);
}

// --- hash_df --------------------------------------------------------------

TEST(HashDf, PinnedVector55Bytes) {
  // Pinned at PR 7; cross-checked against an independent Python
  // implementation of SP 800-90A §10.3.1.
  const auto out = hash_df(seq_bytes(16, 0x10), 55);
  EXPECT_EQ(to_hex(out),
            "0624dfa0f7b4345a1b7180e2c7e9b10e19a85260e87b1b32c226eeb7831ee6f1"
            "10b39391b9ef05f40f82aeb0c1156471598122feed3bcc");
}

TEST(HashDf, FirstDigestIsCounterOneConstruction) {
  // A 32-byte request is exactly SHA-256(0x01 || be32(256) || input).
  const auto input = seq_bytes(24, 0x30);
  const auto out = hash_df(input, 32);
  const std::array<std::byte, 5> header = {
      std::byte{0x01},  // counter starts at 1
      std::byte{0x00}, std::byte{0x00}, std::byte{0x01},
      std::byte{0x00},  // be32(256): requested bits
  };
  Sha256 hash;
  hash.update(header);
  hash.update(input);
  const auto ref = hash.finalize();
  EXPECT_TRUE(std::equal(out.begin(), out.end(), ref.begin()));
}

TEST(HashDf, MultiPartEqualsConcatenation) {
  const auto a = seq_bytes(7, 0x01);
  const auto b = seq_bytes(0, 0x00);  // empty part is transparent
  const auto c = seq_bytes(40, 0x50);
  std::vector<std::byte> concat;
  concat.insert(concat.end(), a.begin(), a.end());
  concat.insert(concat.end(), c.begin(), c.end());

  std::array<std::byte, 64> split_out, concat_out;
  const std::span<const std::byte> parts[] = {a, b, c};
  hash_df(parts, split_out);
  hash_df(concat, concat_out);
  EXPECT_EQ(split_out, concat_out);
}

TEST(HashDf, OutputLengthIsDomainSeparating) {
  // be32(out_bits) is hashed in, so a shorter request is NOT a prefix
  // of a longer one.
  const auto input = seq_bytes(16, 0x77);
  const auto short_out = hash_df(input, 16);
  const auto long_out = hash_df(input, 32);
  EXPECT_FALSE(std::equal(short_out.begin(), short_out.end(),
                          long_out.begin()));
}

// --- Hash_DRBG KATs -------------------------------------------------------
//
// CAVP COUNT-style fixed inputs:
//   EntropyInput     = 00..1f   (32 bytes)
//   Nonce            = a0..a7   (8 bytes)
//   EntropyInputReseed = 80..9f (32 bytes)
//   AdditionalInput  = 40..4f   (16 bytes)
//   Personalization  = c0..d7   (24 bytes)

struct DrbgKatInputs {
  std::vector<std::byte> entropy = seq_bytes(32, 0x00);
  std::vector<std::byte> nonce = seq_bytes(8, 0xa0);
  std::vector<std::byte> entropy_reseed = seq_bytes(32, 0x80);
  std::vector<std::byte> additional = seq_bytes(16, 0x40);
  std::vector<std::byte> personalization = seq_bytes(24, 0xc0);
};

TEST(HashDrbgKat, NoReseedTwoGenerateCalls) {
  const DrbgKatInputs in;
  HashDrbg drbg;
  drbg.instantiate(in.entropy, in.nonce);
  EXPECT_EQ(drbg.reseed_counter(), 1u);
  std::vector<std::byte> out(64);
  ASSERT_EQ(drbg.generate(out), HashDrbg::Status::kOk);
  EXPECT_EQ(to_hex(out),
            "e2027282edeabf1c3020a0292495fd8770fd977996422c2b2a61cb1a3cf5be38"
            "17c5593c4d20853f4b9a11a74c387c87ea91735cb2d8684ef5329c8717f6fd58");
  ASSERT_EQ(drbg.generate(out), HashDrbg::Status::kOk);
  EXPECT_EQ(to_hex(out),
            "2226444f304969d42f4212cce101dfa93df275085fcd396ca6c2982c02d6ae75"
            "bb1d81b8ac273a09c24383e41dbdfe32573b4ae7aa4b9b8497c434c283a6cd61");
  EXPECT_EQ(drbg.reseed_counter(), 3u);
}

TEST(HashDrbgKat, ReseedBetweenGenerateCalls) {
  const DrbgKatInputs in;
  HashDrbg drbg;
  drbg.instantiate(in.entropy, in.nonce);
  std::vector<std::byte> out(64);
  ASSERT_EQ(drbg.generate(out), HashDrbg::Status::kOk);
  drbg.reseed(in.entropy_reseed);
  EXPECT_EQ(drbg.reseed_counter(), 1u);
  ASSERT_EQ(drbg.generate(out), HashDrbg::Status::kOk);
  EXPECT_EQ(to_hex(out),
            "c2ae58de6f771e7842109d8ab34e71959b869a29b774ed9a4f2e125ce38e8e92"
            "992e10ff95303baece4dcb02eeb93b65b9ea5c48f87e524d4bea9288f0ee5ddc");
}

TEST(HashDrbgKat, AdditionalInputOnGenerate) {
  const DrbgKatInputs in;
  HashDrbg drbg;
  drbg.instantiate(in.entropy, in.nonce);
  std::vector<std::byte> out(64);
  ASSERT_EQ(drbg.generate(out, in.additional), HashDrbg::Status::kOk);
  EXPECT_EQ(to_hex(out),
            "8ce6331e796a32f33c71a5f947ee7183d1e3f7375aeb278f1b07ce91b9f6afd7"
            "5a5a815287c07f66917c74aa4910314d6b7f0c0d0dd5f4bb13e9a53e03c6950a");
  ASSERT_EQ(drbg.generate(out, in.additional), HashDrbg::Status::kOk);
  EXPECT_EQ(to_hex(out),
            "526f13f9e953690da926163881dc02eee69a9e01988135ac23c75cc656e3c90e"
            "de040fc161f87fbc6079448976fdbf63750ff8699337832766accb6f7bac601d");
}

TEST(HashDrbgKat, PersonalizationString) {
  const DrbgKatInputs in;
  HashDrbg drbg;
  drbg.instantiate(in.entropy, in.nonce, in.personalization);
  std::vector<std::byte> out(64);
  ASSERT_EQ(drbg.generate(out), HashDrbg::Status::kOk);
  EXPECT_EQ(to_hex(out),
            "8c5792efdf38363b58c2ecf053d76da4626fb53b064fb991f497d6afdcdecb79"
            "097eb269dcdc9b5508b97ea2cbd2c25d3ee566014fabd5ea554a986ade9e723e");
}

TEST(HashDrbgKat, RequestSizeDoesNotChangeTheStream) {
  // hashgen is a pure counter-mode expansion of V: one 64-byte request
  // equals the concatenation of no requests smaller than it — but two
  // REQUESTS advance V twice, so 2x32 differs from 1x64 after the
  // first 32 bytes. Pin the exact prefix property.
  const DrbgKatInputs in;
  HashDrbg one, two;
  one.instantiate(in.entropy, in.nonce);
  two.instantiate(in.entropy, in.nonce);
  std::vector<std::byte> out64(64), out32(32);
  ASSERT_EQ(one.generate(out64), HashDrbg::Status::kOk);
  ASSERT_EQ(two.generate(out32), HashDrbg::Status::kOk);
  EXPECT_TRUE(std::equal(out32.begin(), out32.end(), out64.begin()));
}

// --- Hash_DRBG state machine ---------------------------------------------

TEST(HashDrbgState, UninstantiatedAndOversizeRequestsAreRejected) {
  HashDrbg drbg;
  std::vector<std::byte> out(16);
  EXPECT_EQ(drbg.generate(out), HashDrbg::Status::kNotInstantiated);

  const DrbgKatInputs in;
  drbg.instantiate(in.entropy, in.nonce);
  std::vector<std::byte> big(drbg.config().max_bytes_per_request + 1);
  EXPECT_EQ(drbg.generate(big), HashDrbg::Status::kRequestTooLarge);
  EXPECT_EQ(drbg.generate(out), HashDrbg::Status::kOk);
}

TEST(HashDrbgState, ReseedIntervalExhaustionDemandsReseed) {
  HashDrbgConfig cfg;
  cfg.reseed_interval = 3;
  HashDrbg drbg(cfg);
  const DrbgKatInputs in;
  drbg.instantiate(in.entropy, in.nonce);
  std::vector<std::byte> out(16);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(drbg.generate(out), HashDrbg::Status::kOk) << "request " << i;
  EXPECT_EQ(drbg.generate(out), HashDrbg::Status::kNeedReseed);
  drbg.reseed(in.entropy_reseed);
  EXPECT_EQ(drbg.generate(out), HashDrbg::Status::kOk);
}

TEST(HashDrbgState, ReseedSourceServesIntervalAndPredictionResistance) {
  // With a reseed source installed, interval exhaustion reseeds
  // transparently; with prediction_resistance, EVERY request reseeds.
  HashDrbgConfig cfg;
  cfg.reseed_interval = 2;
  HashDrbg drbg(cfg);
  const DrbgKatInputs in;
  drbg.instantiate(in.entropy, in.nonce);
  std::uint32_t pulls = 0;
  drbg.set_reseed_source([&pulls](std::span<std::byte> out_entropy) {
    ++pulls;
    for (std::size_t i = 0; i < out_entropy.size(); ++i)
      out_entropy[i] = static_cast<std::byte>((pulls + i) & 0xff);
  });
  std::vector<std::byte> out(16);
  for (int i = 0; i < 6; ++i)
    ASSERT_EQ(drbg.generate(out), HashDrbg::Status::kOk) << "request " << i;
  EXPECT_EQ(pulls, 2u);  // after requests 2 and 4 exhaust the interval
  EXPECT_EQ(drbg.reseeds(), 2u);

  HashDrbgConfig pr_cfg;
  pr_cfg.prediction_resistance = true;
  HashDrbg pr(pr_cfg);
  pr.instantiate(in.entropy, in.nonce);
  EXPECT_EQ(pr.generate(out), HashDrbg::Status::kNeedReseed);  // no source
  std::uint32_t pr_pulls = 0;
  pr.set_reseed_source([&pr_pulls](std::span<std::byte> out_entropy) {
    ++pr_pulls;
    for (auto& b : out_entropy) b = std::byte{0x5a};
  });
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(pr.generate(out), HashDrbg::Status::kOk);
  EXPECT_EQ(pr_pulls, 4u);
}

TEST(HashDrbgState, DistinctNoncesGiveDistinctStreams) {
  const DrbgKatInputs in;
  HashDrbg a, b;
  a.instantiate(in.entropy, seq_bytes(8, 0x01));
  b.instantiate(in.entropy, seq_bytes(8, 0x02));
  std::vector<std::byte> out_a(64), out_b(64);
  ASSERT_EQ(a.generate(out_a), HashDrbg::Status::kOk);
  ASSERT_EQ(b.generate(out_b), HashDrbg::Status::kOk);
  EXPECT_NE(out_a, out_b);
}

// --- HashConditioner ------------------------------------------------------

TEST(HashConditioner, RawBitsNeededMatchesTheLedgerFormula) {
  ConditionerConfig cfg;
  cfg.h_min = 0.5;
  HashConditioner cond(cfg);
  // 32 bytes out + 64-bit 90C margin at h=0.5: (256+64)/0.5 = 640 bits.
  EXPECT_EQ(cond.raw_bits_needed(32), 640u);

  ConditionerConfig full;
  full.h_min = 1.0;
  EXPECT_EQ(HashConditioner(full).raw_bits_needed(32), 320u);

  ConditionerConfig no_margin;
  no_margin.h_min = 1.0;
  no_margin.full_entropy_margin = false;
  EXPECT_EQ(HashConditioner(no_margin).raw_bits_needed(32), 256u);

  // Fractional h_min rounds the pull UP, then up to whole bytes:
  // ceil(320 / 0.997) = 321 bits -> 328 (whole raw bytes).
  ConditionerConfig frac;
  frac.h_min = 0.997;  // the paper's per-raw-bit assessment
  EXPECT_EQ(HashConditioner(frac).raw_bits_needed(32), 328u);
}

TEST(HashConditioner, ConditionIsDeterministicAndAccounted) {
  ConditionerConfig cfg;
  cfg.h_min = 0.5;
  cfg.block_bytes = 32;
  HashConditioner cond(cfg);
  RngBitSource src_a(0xabc), src_b(0xabc);
  const auto block_a = cond.condition_block(src_a);
  EXPECT_EQ(cond.bits_in(), 640u);
  EXPECT_EQ(cond.entropy_in(), 640u * min_entropy_bits(0.5));
  EXPECT_EQ(cond.bytes_out(), 32u);

  HashConditioner cond2(cfg);
  EXPECT_EQ(block_a, cond2.condition_block(src_b));  // same raw stream

  // The conditioned block is hash_df of the packed raw pull.
  RngBitSource src_c(0xabc);
  const auto raw = src_c.generate_bits(640);
  std::vector<std::byte> packed(80);
  pack_bits_msb_first(raw, packed);
  EXPECT_EQ(block_a, hash_df(packed, 32));
}

TEST(ConditioningTransform, ChunkedPushesMatchOneShotAndConditioner) {
  ConditionerConfig cfg;
  cfg.h_min = 0.5;
  cfg.block_bytes = 32;
  ConditioningTransform one_shot(cfg);
  ConditioningTransform chunked(cfg);
  EXPECT_EQ(one_shot.bits_per_block(), 640u);

  RngBitSource src(0x123);
  const auto raw = src.generate_bits(3 * 640 + 123);  // 3 blocks + leftover
  std::vector<std::uint8_t> out_a, out_b;
  one_shot.push(raw, out_a);
  const std::size_t cuts[] = {1, 640, 7, 500, 900, 4000};
  std::size_t pos = 0, k = 0;
  while (pos < raw.size()) {
    const std::size_t take =
        std::min(cuts[k % std::size(cuts)], raw.size() - pos);
    chunked.push(std::span<const std::uint8_t>(raw).subspan(pos, take),
                 out_b);
    pos += take;
    ++k;
  }
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(one_shot.blocks_out(), 3u);
  EXPECT_EQ(out_a.size(), 3u * 256u);

  // First emitted block == HashConditioner on the same raw prefix.
  ConditionerConfig ref_cfg = cfg;
  HashConditioner ref(ref_cfg);
  RngBitSource src2(0x123);
  const auto ref_block = ref.condition_block(src2);
  std::vector<std::uint8_t> ref_bits(256);
  unpack_bits_msb_first(ref_block, ref_bits);
  EXPECT_TRUE(std::equal(ref_bits.begin(), ref_bits.end(), out_a.begin()));
}

TEST(ConditioningTransform, ComposesInsideAPipeline) {
  // The conditioner as a pipeline stage: output bytes come out of the
  // byte-first surface, and raw accounting matches bits_per_block.
  RngBitSource src(0x456);
  Pipeline pipe(src, 1280);
  ConditionerConfig cfg;
  cfg.h_min = 0.5;
  pipe.add_transform(std::make_unique<ConditioningTransform>(cfg));
  const auto bytes = pipe.generate_bytes(64);  // two conditioned blocks
  EXPECT_EQ(bytes.size(), 64u);
  EXPECT_GE(pipe.raw_bits(), 2u * 640u);
}

TEST(EntropyAccountingTap, LedgerAndFullEntropyBytes) {
  EntropyAccountingTap tap(0.5);
  EXPECT_EQ(tap.full_entropy_bytes(), 0u);
  RngBitSource src(0x789);
  Pipeline pipe(src, 1024);
  pipe.attach_tap(tap);
  std::vector<std::uint8_t> out(10'240);
  pipe.generate_into(out);
  EXPECT_EQ(tap.bits_seen(), 10'240u);
  EXPECT_EQ(tap.entropy_seen(), 10'240u * min_entropy_bits(0.5));
  // 5120 entropy bits - 64 margin = 5056 bits -> 632 full-entropy bytes.
  EXPECT_EQ(tap.full_entropy_bytes(), 632u);
}

TEST(ConditionerContracts, RejectBadConfigs) {
  ConditionerConfig bad_h;
  bad_h.h_min = 0.0;
  EXPECT_THROW(HashConditioner{bad_h}, ContractViolation);
  ConditionerConfig big_h;
  big_h.h_min = 1.5;
  EXPECT_THROW(HashConditioner{big_h}, ContractViolation);
  HashDrbgConfig bad_interval;
  bad_interval.reseed_interval = 0;
  EXPECT_THROW(HashDrbg{bad_interval}, ContractViolation);
}

}  // namespace
}  // namespace ptrng::trng
