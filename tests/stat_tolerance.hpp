// Tolerance-from-CI-width helpers for statistical assertions (ROADMAP
// "statistical-tolerance audit"). Instead of hard-coding acceptance
// bands that silently rot when a generator stream or default seed
// changes, tests derive the band from the sampling distribution of the
// statistic under H0 and an explicit z multiplier (default 5, roughly a
// 1-in-3.5M false-alarm rate per assertion).
//
// For serially-correlated streams the iid formulas underestimate the
// estimator variance; call sites pass a reduced EFFECTIVE sample size
// (n / correlation-length) and say so in a comment.
#pragma once

#include <cmath>
#include <cstddef>
#include <numbers>

namespace ptrng::testing {

/// Band half-width for a sample-variance RATIO s^2/sigma^2 formed from m
/// (effectively independent) samples: under H0 the ratio is chi^2_{m-1}
/// scaled, with sd ~ sqrt(2/(m-1)).
inline double variance_ratio_tol(std::size_t m, double z = 5.0) {
  return z * std::sqrt(2.0 / (static_cast<double>(m) - 1.0));
}

/// Band half-width for the empirical bias |p_hat - 1/2| of n fair bits:
/// sd(p_hat) = 0.5/sqrt(n).
inline double bias_tol(std::size_t n, double z = 5.0) {
  return z * 0.5 / std::sqrt(static_cast<double>(n));
}

/// Band half-width for an empirical proportion with true value p over n
/// trials: sd = sqrt(p(1-p)/n).
inline double proportion_tol(std::size_t n, double p, double z = 5.0) {
  return z * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

/// Band half-width for a COUNT with success probability p over n trials:
/// sd = sqrt(n p (1-p)).
inline double count_tol(std::size_t n, double p, double z = 5.0) {
  return z * std::sqrt(static_cast<double>(n) * p * (1.0 - p));
}

/// Band half-width for a single autocorrelation coefficient of n iid
/// samples: sd ~ 1/sqrt(n) (Bartlett).
inline double acf_tol(std::size_t n, double z = 5.0) {
  return z / std::sqrt(static_cast<double>(n));
}

/// Regression-CI helper: RELATIVE band half-width for a fitted
/// coefficient given its 1-sigma standard error (stats::FitResult /
/// JitterCalibration expose these): z * inflation * se / |coef|.
/// When the fit's residuals are serially correlated (sigma^2_N sweeps
/// reuse one jitter stream across overlapping windows), the nominal SE
/// underestimates the true sampling error; call sites pass an explicit
/// `inflation` factor and say why in a comment.
inline double regression_coef_tol(double coef, double se, double z = 5.0,
                                  double inflation = 1.0) {
  return z * inflation * se / std::abs(coef);
}

/// Band half-width for the per-bit plug-in block-Shannon entropy of an
/// IDEAL (uniform) source, blocks of `block_bits` over n_bits total:
/// with K = 2^L cells and m = n/L blocks, 2 m ln2 (L - H_block) is
/// asymptotically chi^2_{K-1}; the (sqrt(K-1) + z)^2 envelope bounds its
/// z-equivalent quantile.
inline double block_entropy_tol(std::size_t n_bits, std::size_t block_bits,
                                double z = 5.0) {
  const double l = static_cast<double>(block_bits);
  const double m = static_cast<double>(n_bits) / l;
  const double k1 = std::pow(2.0, l) - 1.0;
  const double q = std::sqrt(k1) + z;
  return q * q / (2.0 * m * std::numbers::ln2 * l);
}

/// Band half-width for the per-bit plug-in min-entropy of an IDEAL
/// source over `block_bits` blocks: the max-cell frequency deviates by
/// ~z * sd(p_hat) relative to p = 2^-L, and d(-log2 p)/dp = 1/(p ln 2).
inline double min_entropy_tol(std::size_t n_bits, std::size_t block_bits,
                              double z = 5.0) {
  const double l = static_cast<double>(block_bits);
  const double m = static_cast<double>(n_bits) / l;
  const double p = std::pow(2.0, -l);
  const double sd_rel = std::sqrt((1.0 - p) / (p * m));
  return z * sd_rel / (std::numbers::ln2 * l);
}

/// Band half-width for the k-th raw sample moment (k = 1..4) of n iid
/// N(0,1) draws around its true value {0, 1, 0, 3}: the per-sample
/// variances of x^k are Var(x)=1, Var(x^2)=2, Var(x^3)=15, Var(x^4)=96
/// (central moments of the standard normal up to E x^8 = 105).
inline double normal_raw_moment_tol(std::size_t n, int k, double z = 5.0) {
  constexpr double kVar[4] = {1.0, 2.0, 15.0, 96.0};
  return z * std::sqrt(kVar[k - 1] / static_cast<double>(n));
}

/// Band half-width for the plug-in binary entropy h(p_hat) around a true
/// probability p != 1/2 estimated from n trials (delta method):
/// sd = |log2((1-p)/p)| * sqrt(p(1-p)/n).
inline double binary_entropy_tol(std::size_t n, double p, double z = 5.0) {
  const double slope = std::abs(std::log2((1.0 - p) / p));
  return z * slope * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

}  // namespace ptrng::testing
