// Tolerance-from-CI-width helpers for statistical assertions (ROADMAP
// "statistical-tolerance audit"). Instead of hard-coding acceptance
// bands that silently rot when a generator stream or default seed
// changes, tests derive the band from the sampling distribution of the
// statistic under H0 and an explicit z multiplier (default 5, roughly a
// 1-in-3.5M false-alarm rate per assertion).
//
// For serially-correlated streams the iid formulas underestimate the
// estimator variance; call sites pass a reduced EFFECTIVE sample size
// (n / correlation-length) and say so in a comment.
#pragma once

#include <cmath>
#include <cstddef>

namespace ptrng::testing {

/// Band half-width for a sample-variance RATIO s^2/sigma^2 formed from m
/// (effectively independent) samples: under H0 the ratio is chi^2_{m-1}
/// scaled, with sd ~ sqrt(2/(m-1)).
inline double variance_ratio_tol(std::size_t m, double z = 5.0) {
  return z * std::sqrt(2.0 / (static_cast<double>(m) - 1.0));
}

/// Band half-width for the empirical bias |p_hat - 1/2| of n fair bits:
/// sd(p_hat) = 0.5/sqrt(n).
inline double bias_tol(std::size_t n, double z = 5.0) {
  return z * 0.5 / std::sqrt(static_cast<double>(n));
}

/// Band half-width for an empirical proportion with true value p over n
/// trials: sd = sqrt(p(1-p)/n).
inline double proportion_tol(std::size_t n, double p, double z = 5.0) {
  return z * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

/// Band half-width for a COUNT with success probability p over n trials:
/// sd = sqrt(n p (1-p)).
inline double count_tol(std::size_t n, double p, double z = 5.0) {
  return z * std::sqrt(static_cast<double>(n) * p * (1.0 - p));
}

/// Band half-width for a single autocorrelation coefficient of n iid
/// samples: sd ~ 1/sqrt(n) (Bartlett).
inline double acf_tol(std::size_t n, double z = 5.0) {
  return z / std::sqrt(static_cast<double>(n));
}

}  // namespace ptrng::testing
