// Unit tests for hypothesis tests: null calibration (white input passes),
// power (correlated input fails), chi-square GOF behaviour.
#include <gtest/gtest.h>

#include "ignore_result.hpp"

#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "stats/hypothesis.hpp"

namespace {

using ptrng::test::ignore_result;

using namespace ptrng;
using namespace ptrng::stats;

std::vector<double> white_series(std::size_t n, std::uint64_t seed) {
  GaussianSampler g(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = g();
  return x;
}

std::vector<double> ar1_series(std::size_t n, double rho,
                               std::uint64_t seed) {
  GaussianSampler g(seed);
  std::vector<double> x(n);
  double s = 0.0;
  for (auto& v : x) {
    s = rho * s + g();
    v = s;
  }
  return x;
}

TEST(LjungBox, WhiteNoisePasses) {
  const auto x = white_series(20000, 1);
  const auto res = ljung_box(x, 20);
  EXPECT_FALSE(res.reject(0.01));
  EXPECT_GT(res.p_value, 0.001);
  EXPECT_DOUBLE_EQ(res.dof, 20.0);
}

TEST(LjungBox, Ar1Fails) {
  const auto x = ar1_series(20000, 0.3, 2);
  const auto res = ljung_box(x, 20);
  EXPECT_TRUE(res.reject(0.001));
  EXPECT_LT(res.p_value, 1e-6);
}

TEST(LjungBox, NullDistributionIsCalibrated) {
  // Across many white replicas the rejection rate at alpha = 0.05 should
  // be ~5%.
  int rejects = 0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    const auto x = white_series(2000, 100 + static_cast<std::uint64_t>(r));
    if (ljung_box(x, 10).reject(0.05)) ++rejects;
  }
  EXPECT_GE(rejects, 2);
  EXPECT_LE(rejects, 25);
}

TEST(BoxPierce, AgreesWithLjungBoxOnLargeSamples) {
  const auto x = ar1_series(50000, 0.2, 3);
  const auto lb = ljung_box(x, 10);
  const auto bp = box_pierce(x, 10);
  EXPECT_NEAR(lb.statistic, bp.statistic, 0.02 * lb.statistic);
}

TEST(RunsTest, WhiteNoisePasses) {
  const auto x = white_series(5000, 4);
  const auto res = runs_test(x);
  EXPECT_FALSE(res.reject(0.01));
}

TEST(RunsTest, StronglyTrendedFails) {
  std::vector<double> x(1000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<double>(i);  // monotone: 2 runs around the median
  const auto res = runs_test(x);
  EXPECT_TRUE(res.reject(1e-6));
}

TEST(RunsTest, AlternatingFailsOtherDirection) {
  std::vector<double> x(1000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const auto res = runs_test(x);
  EXPECT_TRUE(res.reject(1e-6));
  EXPECT_GT(res.statistic, 0.0);  // too many runs
}

TEST(TurningPoint, WhiteNoisePasses) {
  const auto x = white_series(10000, 5);
  const auto res = turning_point_test(x);
  EXPECT_FALSE(res.reject(0.01));
}

TEST(TurningPoint, SmoothSeriesFails) {
  const auto x = ar1_series(10000, 0.95, 6);
  const auto res = turning_point_test(x);
  EXPECT_TRUE(res.reject(0.001));
}

TEST(ChiSquareGof, PerfectFitHasZeroStatistic) {
  const std::vector<double> obs{10, 20, 30};
  const auto res = chi_square_gof(obs, obs);
  EXPECT_DOUBLE_EQ(res.statistic, 0.0);
  EXPECT_NEAR(res.p_value, 1.0, 1e-12);
}

TEST(ChiSquareGof, GrossMismatchRejects) {
  const std::vector<double> obs{100, 0, 0, 0};
  const std::vector<double> exp{25, 25, 25, 25};
  const auto res = chi_square_gof(obs, exp);
  EXPECT_TRUE(res.reject(1e-9));
  EXPECT_DOUBLE_EQ(res.dof, 3.0);
}

TEST(ChiSquareGof, Preconditions) {
  const std::vector<double> obs{1, 2};
  const std::vector<double> bad{1};
  EXPECT_THROW(ignore_result(chi_square_gof(obs, bad)), ContractViolation);
  const std::vector<double> zero_exp{0.0, 1.0};
  EXPECT_THROW(ignore_result(chi_square_gof(obs, zero_exp)),
               ContractViolation);
}

class LjungBoxLagSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LjungBoxLagSweep, WhiteNullHoldsAcrossLagChoices) {
  const auto x = white_series(30000, 42 + GetParam());
  const auto res = ljung_box(x, GetParam());
  EXPECT_FALSE(res.reject(0.001)) << "lags = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Lags, LjungBoxLagSweep,
                         ::testing::Values(1, 2, 5, 10, 20, 50, 100));

}  // namespace
