// Distribution-quality tests for the 256-layer ziggurat sampler (the
// GaussianSampler default engine since PR 5) and statistical-equivalence
// checks against the Marsaglia polar method it replaced. Bands follow
// the stat_tolerance.hpp conventions (z = 5 unless stated).
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/ziggurat.hpp"
#include "stat_tolerance.hpp"
#include "stats/normality.hpp"
#include "stats/special.hpp"

namespace {

using namespace ptrng;

constexpr double kZigguratR = 3.6541528853610088;  // 256-layer tail edge

std::vector<double> draw_block(GaussianSampler::Method method,
                               std::uint64_t seed, std::size_t n) {
  GaussianSampler g(seed, method);
  std::vector<double> out(n);
  g.fill(out);
  return out;
}

TEST(Ziggurat, DefaultMethodIsZigguratAndAccessorReports) {
  GaussianSampler def(1);
  EXPECT_EQ(def.method(), GaussianSampler::Method::Ziggurat);
  GaussianSampler pol(1, GaussianSampler::Method::Polar);
  EXPECT_EQ(pol.method(), GaussianSampler::Method::Polar);
}

TEST(Ziggurat, FillMatchesScalarExactly) {
  // fill() must be BIT-identical to stepping, including across
  // unaligned split boundaries (the ziggurat keeps no cross-draw
  // state, so any split must land on the same stream).
  GaussianSampler stepped(0x216, GaussianSampler::Method::Ziggurat);
  GaussianSampler batched(0x216, GaussianSampler::Method::Ziggurat);
  std::vector<double> expected(4097);
  for (auto& x : expected) x = stepped();
  std::vector<double> got(expected.size());
  batched.fill(std::span<double>(got).subspan(0, 37));
  batched.fill(std::span<double>(got).subspan(37, 1000));
  batched.fill(std::span<double>(got).subspan(1037));
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "sample " << i;
  // Lockstep continues after the batch.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(batched(), stepped());
}

TEST(Ziggurat, StandaloneClassMatchesSamplerDispatch) {
  // common::ZigguratNormal and GaussianSampler{Method::Ziggurat} must
  // realize the same stream from the same seed (the sampler dispatches
  // to the class, it does not reimplement it).
  ZigguratNormal zig(0x51a);
  GaussianSampler gauss(0x51a, GaussianSampler::Method::Ziggurat);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(zig(), gauss());
  ZigguratNormal zfill(0x51a);
  GaussianSampler gfill(0x51a);
  std::vector<double> a(777), b(777);
  zfill.fill(a);
  gfill.fill(b);
  EXPECT_EQ(a, b);
}

TEST(Ziggurat, PolarFillStillMatchesPolarStepping) {
  // The Polar engine (pre-PR-5 streams) keeps its pair-cache semantics:
  // fill == stepping, including the odd-length cached tail.
  GaussianSampler stepped(0x90a7, GaussianSampler::Method::Polar);
  GaussianSampler batched(0x90a7, GaussianSampler::Method::Polar);
  std::vector<double> expected(1001);
  for (auto& x : expected) x = stepped();
  std::vector<double> got(expected.size());
  batched.fill(got);
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], expected[i]) << "sample " << i;
  EXPECT_EQ(batched(), stepped());  // cached partner drains identically
}

TEST(Ziggurat, MomentsMatchStandardNormal) {
  const std::size_t n = 1u << 22;
  const auto x = draw_block(GaussianSampler::Method::Ziggurat, 0x2195, n);
  double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
  for (double v : x) {
    s1 += v;
    s2 += v * v;
    s3 += v * v * v;
    s4 += v * v * v * v;
  }
  const double dn = static_cast<double>(n);
  EXPECT_NEAR(s1 / dn, 0.0, ptrng::testing::normal_raw_moment_tol(n, 1));
  EXPECT_NEAR(s2 / dn, 1.0, ptrng::testing::normal_raw_moment_tol(n, 2));
  EXPECT_NEAR(s3 / dn, 0.0, ptrng::testing::normal_raw_moment_tol(n, 3));
  EXPECT_NEAR(s4 / dn, 3.0, ptrng::testing::normal_raw_moment_tol(n, 4));
}

TEST(Ziggurat, KolmogorovSmirnovAndJarqueBera) {
  const auto x = draw_block(GaussianSampler::Method::Ziggurat, 0x2196, 100000);
  EXPECT_FALSE(stats::ks_normal(x).reject(0.001));
  EXPECT_FALSE(stats::jarque_bera(x).reject(0.001));
}

TEST(Ziggurat, TailMassMatchesNormal) {
  // Exercises both rare paths: |x| > 3 crosses the wedge-heavy outer
  // layers, |x| > r can only come from the explicit Marsaglia tail
  // sampler (a broken tail path would zero this count).
  const std::size_t n = 4u << 20;
  const auto x = draw_block(GaussianSampler::Method::Ziggurat, 0x2197, n);
  std::size_t beyond3 = 0, beyond_r = 0, positive = 0;
  for (double v : x) {
    if (std::abs(v) > 3.0) ++beyond3;
    if (std::abs(v) > kZigguratR) ++beyond_r;
    if (v > 0.0) ++positive;
  }
  const double p3 = 2.0 * (1.0 - stats::normal_cdf(3.0));
  const double pr = 2.0 * (1.0 - stats::normal_cdf(kZigguratR));
  EXPECT_NEAR(static_cast<double>(beyond3), static_cast<double>(n) * p3,
              ptrng::testing::count_tol(n, p3));
  EXPECT_NEAR(static_cast<double>(beyond_r), static_cast<double>(n) * pr,
              ptrng::testing::count_tol(n, pr));
  // Sign symmetry (the sign bit is independent of the magnitude).
  EXPECT_NEAR(static_cast<double>(positive), static_cast<double>(n) * 0.5,
              ptrng::testing::count_tol(n, 0.5));
}

TEST(Ziggurat, PolarAndZigguratAreStatisticallyEquivalent) {
  // Same marginal distribution from either engine: mean difference
  // within z*sqrt(2/n) and variance ratio within the two-sample
  // chi-square band (variance_ratio_tol with m = n/2 since BOTH sides
  // are estimated), plus per-engine normality.
  const std::size_t n = 1u << 21;
  const auto zig = draw_block(GaussianSampler::Method::Ziggurat, 0xe9a1, n);
  const auto pol = draw_block(GaussianSampler::Method::Polar, 0xe9a2, n);
  double mz = 0, mp = 0, vz = 0, vp = 0;
  for (double v : zig) mz += v;
  for (double v : pol) mp += v;
  mz /= static_cast<double>(n);
  mp /= static_cast<double>(n);
  for (double v : zig) vz += (v - mz) * (v - mz);
  for (double v : pol) vp += (v - mp) * (v - mp);
  vz /= static_cast<double>(n - 1);
  vp /= static_cast<double>(n - 1);
  EXPECT_NEAR(mz - mp, 0.0,
              5.0 * std::sqrt(2.0 / static_cast<double>(n)));
  EXPECT_NEAR(vz / vp, 1.0, ptrng::testing::variance_ratio_tol(n / 2));
}

}  // namespace
