// Unit tests for the multi-ring (Sunar-style) TRNG, the SP 800-90B
// estimators and the normality battery (the paper's Gaussian-RRAS
// assumption).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "oscillator/ring_oscillator.hpp"
#include "stat_tolerance.hpp"
#include "stats/normality.hpp"
#include "trng/entropy.hpp"
#include "trng/multi_ring.hpp"
#include "trng/postprocess.hpp"
#include "trng/sp80090b.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

TEST(MultiRing, ConstructsAndGenerates) {
  auto gen = paper_multi_ring(4, 500, 1);
  EXPECT_EQ(gen.ring_count(), 4u);
  const auto bits = gen.generate(20000);
  std::size_t ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_GT(ones, 2000u);
  EXPECT_LT(ones, 18000u);
}

TEST(MultiRing, MoreRingsReduceBias) {
  // XOR of independent biased-ish streams: bias shrinks with ring count
  // (piling-up lemma).
  const std::uint32_t divider = 200;
  const std::size_t n = 60000;
  auto one = paper_multi_ring(1, divider, 2);
  auto eight = paper_multi_ring(8, divider, 2);
  const auto bits1 = one.generate(n);
  const auto bits8 = eight.generate(n);
  // Difference of two bias estimates on serially-correlated streams
  // (effective n ~ n/2): combined z-band instead of a hand-tuned margin.
  const double tol = std::sqrt(2.0) * ptrng::testing::bias_tol(n / 2);
  EXPECT_LT(bias(bits8), bias(bits1) + tol);
}

TEST(MultiRing, MoreRingsRaiseEntropyAtFixedDivider) {
  const std::uint32_t divider = 500;
  auto one = paper_multi_ring(1, divider, 3);
  auto eight = paper_multi_ring(8, divider, 3);
  const auto h1 = markov_entropy_rate(one.generate(80000));
  const auto h8 = markov_entropy_rate(eight.generate(80000));
  EXPECT_GE(h8, h1 - 0.01);
  EXPECT_GT(h8, 0.95);
}

TEST(MultiRing, RejectsBadConfig) {
  auto base = oscillator::paper_single_config(4);
  MultiRingTrngConfig cfg;
  cfg.rings = 0;
  EXPECT_THROW(MultiRingTrng(base, cfg), ContractViolation);
  cfg = MultiRingTrngConfig{};
  cfg.frequency_spread = 0.5;
  EXPECT_THROW(MultiRingTrng(base, cfg), ContractViolation);
}

std::vector<std::uint8_t> ideal_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1u);
  return bits;
}

TEST(Sp80090b, IdealSourceScoresNearOne) {
  const auto bits = ideal_bits(200'000, 5);
  EXPECT_GT(sp80090b::most_common_value(bits), 0.98);
  EXPECT_GT(sp80090b::markov_estimate(bits), 0.95);
  // The collision estimator's 99% confidence bound makes it conservative
  // by construction (~0.88 for ideal binary input).
  EXPECT_GT(sp80090b::collision_estimate(bits), 0.85);
  EXPECT_GT(sp80090b::assess(bits), 0.85);
}

TEST(Sp80090b, BiasedSourcePenalized) {
  Xoshiro256pp rng(6);
  std::vector<std::uint8_t> bits(200'000);
  for (auto& b : bits) b = rng.uniform() < 0.7 ? 1 : 0;
  // H_min of p = 0.7 is -log2(0.7) = 0.515.
  EXPECT_NEAR(sp80090b::most_common_value(bits), 0.515, 0.02);
  EXPECT_LT(sp80090b::assess(bits), 0.53);
}

TEST(Sp80090b, CorrelatedSourcePenalizedByMarkov) {
  // Sticky chain, balanced marginals: MCV sees ~1 bit, Markov must not.
  Xoshiro256pp rng(7);
  std::vector<std::uint8_t> bits(200'000);
  std::uint8_t s = 0;
  for (auto& b : bits) {
    if (rng.uniform() < 0.1) s ^= 1;
    b = s;
  }
  EXPECT_GT(sp80090b::most_common_value(bits), 0.9);
  EXPECT_LT(sp80090b::markov_estimate(bits), 0.4);
  EXPECT_LT(sp80090b::assess(bits), 0.4);
}

TEST(Sp80090b, AssessIsTheMinimum) {
  const auto bits = ideal_bits(100'000, 8);
  const double a = sp80090b::assess(bits);
  EXPECT_LE(a, sp80090b::most_common_value(bits));
  EXPECT_LE(a, sp80090b::collision_estimate(bits));
  EXPECT_LE(a, sp80090b::markov_estimate(bits));
}

TEST(Normality, GaussianPassesBattery) {
  GaussianSampler g(9);
  std::vector<double> x(50'000);
  for (auto& v : x) v = g(2.0, 3.0);
  EXPECT_FALSE(stats::jarque_bera(x).reject(0.01));
  EXPECT_FALSE(stats::ks_normal(x).reject(0.01));
  EXPECT_FALSE(stats::skewness_test(x).reject(0.01));
}

TEST(Normality, ExponentialFailsBattery) {
  Xoshiro256pp rng(10);
  std::vector<double> x(20'000);
  for (auto& v : x) v = -std::log(rng.uniform_pos());
  EXPECT_TRUE(stats::jarque_bera(x).reject(1e-6));
  EXPECT_TRUE(stats::ks_normal(x).reject(1e-6));
  EXPECT_TRUE(stats::skewness_test(x).reject(1e-6));
}

TEST(Normality, UniformFailsJarqueBeraViaKurtosis) {
  // Uniform is symmetric (skewness ~ 0) but platykurtic (K = -1.2).
  Xoshiro256pp rng(11);
  std::vector<double> x(50'000);
  for (auto& v : x) v = rng.uniform();
  EXPECT_TRUE(stats::jarque_bera(x).reject(1e-6));
  EXPECT_FALSE(stats::skewness_test(x).reject(0.01));
}

TEST(Normality, SimulatedJitterIsGaussian) {
  // The paper's RRAS Gaussianity assumption holds for the simulated
  // thermal+flicker jitter (sum of many Gaussian components).
  using namespace ptrng::oscillator;
  auto cfg = paper_single_config(12);
  RingOscillator osc(cfg);
  std::vector<double> j(50'000);
  for (auto& v : j) v = osc.next_period().jitter();
  EXPECT_FALSE(stats::jarque_bera(j).reject(0.001));
  EXPECT_FALSE(stats::ks_normal(j).reject(0.001));
}

TEST(Normality, KolmogorovSfKnownValues) {
  // Q(0.83) ~ 0.4963, Q(1.36) ~ 0.0491 (classic critical values).
  EXPECT_NEAR(stats::kolmogorov_sf(0.8276), 0.5, 0.01);
  EXPECT_NEAR(stats::kolmogorov_sf(1.3581), 0.05, 0.002);
  EXPECT_DOUBLE_EQ(stats::kolmogorov_sf(0.0), 1.0);
}

}  // namespace
