// Unit tests for the multi-ring (Sunar-style) TRNG, the SP 800-90B
// estimators and the normality battery (the paper's Gaussian-RRAS
// assumption).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "oscillator/ring_oscillator.hpp"
#include "stat_tolerance.hpp"
#include "stats/normality.hpp"
#include "trng/entropy.hpp"
#include "trng/multi_ring.hpp"
#include "trng/postprocess.hpp"
#include "trng/sp80090b.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::trng;

TEST(MultiRing, ConstructsAndGenerates) {
  auto gen = paper_multi_ring(4, 500, 1);
  EXPECT_EQ(gen.ring_count(), 4u);
  const std::size_t n = 20000;
  const auto bits = gen.generate_bits(n);
  std::size_t ones = 0;
  for (auto b : bits) ones += b;
  // XOR of 4 rings at divider 500 is balanced to well below the z-band;
  // serial correlation of the sampled rings -> effective n ~ n/2.
  const double p_hat = static_cast<double>(ones) / static_cast<double>(n);
  EXPECT_NEAR(p_hat, 0.5, ptrng::testing::bias_tol(n / 2));
}

TEST(MultiRing, MoreRingsReduceBias) {
  // XOR of independent biased-ish streams: bias shrinks with ring count
  // (piling-up lemma).
  const std::uint32_t divider = 200;
  const std::size_t n = 60000;
  auto one = paper_multi_ring(1, divider, 2);
  auto eight = paper_multi_ring(8, divider, 2);
  const auto bits1 = one.generate_bits(n);
  const auto bits8 = eight.generate_bits(n);
  // Difference of two bias estimates on serially-correlated streams
  // (effective n ~ n/2): combined z-band instead of a hand-tuned margin.
  const double tol = std::sqrt(2.0) * ptrng::testing::bias_tol(n / 2);
  EXPECT_LT(bias(bits8), bias(bits1) + tol);
}

TEST(MultiRing, MoreRingsRaiseEntropyAtFixedDivider) {
  const std::uint32_t divider = 500;
  const std::size_t n = 80000;
  auto one = paper_multi_ring(1, divider, 3);
  auto eight = paper_multi_ring(8, divider, 3);
  const auto h1 = markov_entropy_rate(one.generate_bits(n));
  const auto h8 = markov_entropy_rate(eight.generate_bits(n));
  // One ring at this divider is visibly defective (h1 ~ 0.4), eight
  // XORed rings are ideal to plug-in precision: the gap dwarfs any
  // sampling noise, so the ordering needs no slack band.
  EXPECT_GT(h8, h1);
  // Plug-in defect band for an ideal source: each of the two Markov
  // transition rows is a binary cell estimated from ~n/2 samples, so the
  // chi^2_1-style envelope of a 1-bit block entropy at n/2 bounds it.
  EXPECT_GT(h8, 1.0 - ptrng::testing::block_entropy_tol(n / 2, 1));
}

TEST(MultiRing, RejectsBadConfig) {
  auto base = oscillator::paper_single_config(4);
  MultiRingTrngConfig cfg;
  cfg.rings = 0;
  EXPECT_THROW(MultiRingTrng(base, cfg), ContractViolation);
  cfg = MultiRingTrngConfig{};
  cfg.frequency_spread = 0.5;
  EXPECT_THROW(MultiRingTrng(base, cfg), ContractViolation);
}

std::vector<std::uint8_t> ideal_bits(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1u);
  return bits;
}

TEST(Sp80090b, IdealSourceScoresNearOne) {
  const auto bits = ideal_bits(200'000, 5);
  const std::size_t n = bits.size();
  constexpr double kZ99 = 2.5758293035489004;  // the estimators' own bound
  // Each 90B estimator subtracts its built-in 99% confidence penalty;
  // the floor combines that penalty with a z = 5 band on the estimate
  // itself instead of a hand-tuned constant.
  // MCV: -log2(1/2 + (kZ99 + z) * sd(p_hat)).
  const double mcv_floor =
      -std::log2(0.5 + ptrng::testing::bias_tol(n, kZ99 + 5.0));
  EXPECT_GT(sp80090b::most_common_value(bits), mcv_floor);
  // Markov: transition rows hold ~n/2 samples each and get the epsilon
  // adjustment kZ99*sqrt(0.25/n) on top of sampling noise.
  const double markov_floor =
      -std::log2(0.5 + ptrng::testing::bias_tol(n, kZ99) +
                 ptrng::testing::bias_tol(n / 2, 5.0));
  EXPECT_GT(sp80090b::markov_estimate(bits), markov_floor);
  // Collision: E[T] = 2.5, Var[T] = 0.25 over m ~ n/2.5 windows for fair
  // bits; propagate the (kZ99 + z)-sigma mean deviation through the
  // p = (1 + sqrt(1-4q))/2 inversion (steep near q = 1/4, hence the
  // estimator's intrinsic conservatism).
  const double m = static_cast<double>(n) / 2.5;
  const double dev = (kZ99 + 5.0) * std::sqrt(0.25 / m);
  const double q = (2.5 - dev - 2.0) / 2.0;
  const double coll_floor = -std::log2(0.5 * (1.0 + std::sqrt(1.0 - 4.0 * q)));
  EXPECT_GT(sp80090b::collision_estimate(bits), coll_floor);
  EXPECT_GT(sp80090b::assess(bits), std::min({mcv_floor, markov_floor,
                                              coll_floor}));
}

TEST(Sp80090b, BiasedSourcePenalized) {
  Xoshiro256pp rng(6);
  const double p = 0.7;
  std::vector<std::uint8_t> bits(200'000);
  for (auto& b : bits) b = rng.uniform() < p ? 1 : 0;
  const std::size_t n = bits.size();
  constexpr double kZ99 = 2.5758293035489004;
  // H_min of p = 0.7 is -log2(0.7) = 0.515; the MCV estimate subtracts
  // its 99% penalty from that, and the sample p_hat adds z-band noise
  // scaled by d(-log2 p)/dp = 1/(p ln2).
  const double sd = std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  const double center = -std::log2(p + kZ99 * sd);
  const double band = 5.0 * sd / (p * std::numbers::ln2);
  EXPECT_NEAR(sp80090b::most_common_value(bits), center, band);
  EXPECT_LT(sp80090b::assess(bits), center + band);
}

TEST(Sp80090b, CorrelatedSourcePenalizedByMarkov) {
  // Sticky chain (flip probability 0.1), balanced marginals: MCV sees
  // ~1 bit, Markov must converge to the chain's -log2(0.9) ~ 0.152.
  Xoshiro256pp rng(7);
  const std::size_t n = 200'000;
  std::vector<std::uint8_t> bits(n);
  std::uint8_t s = 0;
  for (auto& b : bits) {
    if (rng.uniform() < 0.1) s ^= 1;
    b = s;
  }
  constexpr double kZ99 = 2.5758293035489004;
  // MCV floor: the sticky chain's lag-1 correlation rho = 1 - 2*0.1 =
  // 0.8 shrinks the effective sample count for the MARGINAL to
  // n (1-rho)/(1+rho) = n/9; the estimator's own penalty uses the iid
  // sd, so the band carries both.
  const double mcv_floor =
      -std::log2(0.5 + ptrng::testing::bias_tol(n / 9, kZ99 + 5.0));
  EXPECT_GT(sp80090b::most_common_value(bits), mcv_floor);
  // Markov band around the true parameter: the dominant path stays on
  // the p(same) = 0.9 branch for 127 of 128 steps, the marginal term
  // contributes 1/128. Transitions are conditionally independent (~n/2
  // per row), so p_hat(same) carries a plain proportion band; the 90B
  // epsilon shifts the estimate DOWN by a known amount on both edges.
  const double eps = kZ99 * std::sqrt(0.25 / static_cast<double>(n));
  const double p_tol = ptrng::testing::proportion_tol(n / 2, 0.9);
  const auto markov_path = [&](double p_same, double p_marginal) {
    return -(std::log2(p_marginal) + 127.0 * std::log2(p_same)) / 128.0;
  };
  // Widest marginal the band allows (rho-reduced effective n again).
  const double p1_hi = 0.5 + eps + ptrng::testing::bias_tol(n / 9);
  const double lo = markov_path(0.9 + p_tol + eps, p1_hi);
  const double hi = markov_path(0.9 - p_tol + eps, 0.5 + eps);
  const double markov = sp80090b::markov_estimate(bits);
  EXPECT_GT(markov, lo);
  EXPECT_LT(markov, hi);
  // assess() folds in the collision estimator, which punishes the
  // stickiness at least as hard as Markov.
  EXPECT_LT(sp80090b::assess(bits), hi);
}

TEST(Sp80090b, AssessIsTheMinimum) {
  const auto bits = ideal_bits(100'000, 8);
  const double a = sp80090b::assess(bits);
  EXPECT_LE(a, sp80090b::most_common_value(bits));
  EXPECT_LE(a, sp80090b::collision_estimate(bits));
  EXPECT_LE(a, sp80090b::markov_estimate(bits));
}

TEST(Normality, GaussianPassesBattery) {
  GaussianSampler g(9);
  std::vector<double> x(50'000);
  for (auto& v : x) v = g(2.0, 3.0);
  EXPECT_FALSE(stats::jarque_bera(x).reject(0.01));
  EXPECT_FALSE(stats::ks_normal(x).reject(0.01));
  EXPECT_FALSE(stats::skewness_test(x).reject(0.01));
}

TEST(Normality, ExponentialFailsBattery) {
  Xoshiro256pp rng(10);
  std::vector<double> x(20'000);
  for (auto& v : x) v = -std::log(rng.uniform_pos());
  EXPECT_TRUE(stats::jarque_bera(x).reject(1e-6));
  EXPECT_TRUE(stats::ks_normal(x).reject(1e-6));
  EXPECT_TRUE(stats::skewness_test(x).reject(1e-6));
}

TEST(Normality, UniformFailsJarqueBeraViaKurtosis) {
  // Uniform is symmetric (skewness ~ 0) but platykurtic (K = -1.2).
  Xoshiro256pp rng(11);
  std::vector<double> x(50'000);
  for (auto& v : x) v = rng.uniform();
  EXPECT_TRUE(stats::jarque_bera(x).reject(1e-6));
  EXPECT_FALSE(stats::skewness_test(x).reject(0.01));
}

TEST(Normality, SimulatedJitterIsGaussian) {
  // The paper's RRAS Gaussianity assumption holds for the simulated
  // thermal+flicker jitter (sum of many Gaussian components).
  using namespace ptrng::oscillator;
  auto cfg = paper_single_config(12);
  RingOscillator osc(cfg);
  std::vector<double> j(50'000);
  for (auto& v : j) v = osc.next_period().jitter();
  EXPECT_FALSE(stats::jarque_bera(j).reject(0.001));
  EXPECT_FALSE(stats::ks_normal(j).reject(0.001));
}

TEST(Normality, KolmogorovSfKnownValues) {
  // Q(0.83) ~ 0.4963, Q(1.36) ~ 0.0491 (classic critical values).
  EXPECT_NEAR(stats::kolmogorov_sf(0.8276), 0.5, 0.01);
  EXPECT_NEAR(stats::kolmogorov_sf(1.3581), 0.05, 0.002);
  EXPECT_DOUBLE_EQ(stats::kolmogorov_sf(0.0), 1.0);
}

}  // namespace
