// Back-compat pins for GaussianSampler::Method::Polar: the PR-5 policy
// switch made the ziggurat the default engine, which changes every
// realized Gaussian stream. These tests pin one PR-4-era seeded stream
// per consumer (raw sampler, white, filter bank, kasdin) in Polar mode,
// so the policy plumbing is provably non-destructive: as long as they
// pass, any pre-PR-5 experiment can be reproduced bit-for-bit by
// selecting Method::Polar. Pins are hexfloat literals captured from the
// PR-4 tree (commit 566f1be) on the fully specified Xoshiro256pp
// streams, so they are exact on every platform with the same libm
// log/sqrt behaviour as the seed CI image.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "noise/filter_bank.hpp"
#include "noise/kasdin.hpp"
#include "noise/white.hpp"

namespace {

using namespace ptrng;
using namespace ptrng::noise;

constexpr auto kPolar = GaussianSampler::Method::Polar;

TEST(SamplerBackCompat, RawPolarStreamSeed123) {
  GaussianSampler g(123, kPolar);
  const std::array<double, 6> expected = {
      0x1.c08760891807bp-2,  0x1.03fb4920a2dffp+0, 0x1.08c758a4e3737p+1,
      0x1.37321556f4618p-2,  -0x1.31b67fdd49c46p-1, 0x1.16d9063d1986cp-3,
  };
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(g(), expected[i]) << "draw " << i;
}

TEST(SamplerBackCompat, WhiteGaussianPolarStream) {
  // WhiteGaussianNoise(2.0, 1000.0, 0x77) — the seed test_noise uses
  // for the fill bit-identity check — stepped through next().
  PTRNG_SUPPRESS_DEPRECATED_BEGIN
  WhiteGaussianNoise w(2.0, 1000.0, 0x77, kPolar);
  PTRNG_SUPPRESS_DEPRECATED_END
  const std::array<double, 8> expected = {
      -0x1.3bbaa2fc21ac8p+1, 0x1.c83ac5eb98d55p+0,  0x1.0f97d0249fd87p+0,
      -0x1.7907fb8cbd2ccp+0, -0x1.edcad752392cbp-4, 0x1.94bd4fb1bb832p+1,
      0x1.e4c83a60270a5p+0,  -0x1.0afcde19577adp-2,
  };
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(w.next(), expected[i]) << "sample " << i;
}

TEST(SamplerBackCompat, FilterBankPolarStream) {
  FilterBankFlicker::Config cfg;
  cfg.amplitude = 1e-2;
  cfg.fs = 1.0;
  cfg.f_min = 1e-4;
  cfg.f_max = 0.25;
  cfg.seed = 0xbac2;
  cfg.sampler.gauss_method = kPolar;
  FilterBankFlicker fb(cfg);
  const std::array<double, 8> expected = {
      0x1.c4b9fb94a42d7p-2, 0x1.2f2c80658b736p-1, 0x1.0208943784729p-1,
      0x1.0b830ea1c17ddp-2, 0x1.74e047484aa4cp-2, 0x1.146418b57aacep-1,
      0x1.5a3fce166ea3cp-2, 0x1.8171b0ff3ef74p-2,
  };
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(fb.next(), expected[i]) << "sample " << i;
}

TEST(SamplerBackCompat, KasdinPolarStream) {
  KasdinFlicker::Config cfg;
  cfg.alpha = 1.0;
  cfg.sigma_w = 1.0;
  cfg.fs = 1.0;
  cfg.fir_length = 1 << 10;
  cfg.block = 1 << 8;
  cfg.seed = 0x4a5d17;
  cfg.sampler.gauss_method = kPolar;
  KasdinFlicker kf(cfg);
  const std::array<double, 8> expected = {
      0x1.f3aa73adab16cp-2,  0x1.98b642b760274p-4, 0x1.881f253e24ee9p-1,
      0x1.ed7e41e95c7f8p-3,  0x1.86b7cb763add8p-2, 0x1.51732fc6b8735p-2,
      0x1.430eed5f68b18p+0,  -0x1.dd37adab1043dp-2,
  };
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(kf.next(), expected[i]) << "sample " << i;
}

// The pre-PR-7 per-config `gauss_method` field survives as a deprecated
// alias that overrides `sampler` when explicitly set. Pin its stream
// against the SamplerPolicy path so the alias provably stays equivalent
// for its one-release deprecation window.
TEST(SamplerBackCompat, DeprecatedGaussMethodAliasMatchesSamplerPolicy) {
  FilterBankFlicker::Config modern;
  modern.amplitude = 1e-2;
  modern.fs = 1.0;
  modern.f_min = 1e-4;
  modern.f_max = 0.25;
  modern.seed = 0xbac2;
  modern.sampler.gauss_method = kPolar;

  FilterBankFlicker::Config legacy = modern;
  legacy.sampler = {};  // alias must win over the (default) policy
  PTRNG_SUPPRESS_DEPRECATED_BEGIN
  legacy.gauss_method = kPolar;
  PTRNG_SUPPRESS_DEPRECATED_END

  FilterBankFlicker a(modern);
  FilterBankFlicker b(legacy);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next()) << "sample " << i;
}

}  // namespace
