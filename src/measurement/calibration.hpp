// Section IV of the paper: extracting the thermal and flicker coefficients
// from a measured sigma^2_N sweep by fitting
//
//   sigma^2_N * f0^2 = (2 b_th / f0) N + (8 ln2 b_fl / f0^2) N^2
//
// and deriving the thermal-only period jitter sigma_th = sqrt(b_th/f0^3),
// the ratio r_N = C/(C+N) and the independence threshold N*(r_min).
#pragma once

#include <span>

#include "measurement/sigma_n_estimator.hpp"
#include "phase_noise/phase_psd.hpp"

namespace ptrng::measurement {

/// Everything Section IV derives from one measured sweep.
struct JitterCalibration {
  double f0 = 0.0;
  double b_th = 0.0;       ///< thermal phase-PSD coefficient [Hz]
  double b_fl = 0.0;       ///< flicker phase-PSD coefficient [Hz^2]
  double b_th_err = 0.0;   ///< 1-sigma standard error on b_th
  double b_fl_err = 0.0;   ///< 1-sigma standard error on b_fl
  double sigma_thermal = 0.0;   ///< sqrt(b_th/f0^3) [s] (paper: 15.89 ps)
  double jitter_ratio = 0.0;    ///< sigma_thermal * f0 (paper: 1.6e-3)
  double rn_constant = 0.0;     ///< C in r_N = C/(C+N) (paper: 5354)
  double r_squared = 0.0;       ///< fit quality on the sweep

  /// Thermal ratio r_N at accumulation length n.
  [[nodiscard]] double thermal_ratio(double n) const;

  /// Largest N with r_N >= r_min (paper: 281 at 95%).
  [[nodiscard]] double independence_threshold(double r_min = 0.95) const;

  /// The fitted model as a PhasePsd.
  [[nodiscard]] phase_noise::PhasePsd phase_psd() const;
};

/// Weighted LS fit of a sweep (weights from the chi-square dof of each
/// point: Var(s^2) ~ 2 sigma^4/dof). Points with n == 0 are ignored.
[[nodiscard]] JitterCalibration fit_sigma2_n(
    std::span<const Sigma2nPoint> sweep, double f0);

/// Fit from plain (N, sigma^2_N) arrays with equal relative weights.
[[nodiscard]] JitterCalibration fit_sigma2_n(std::span<const double> n,
                                             std::span<const double> sigma2,
                                             double f0);

}  // namespace ptrng::measurement
