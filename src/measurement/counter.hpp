// Bit-exact simulation of the paper's differential jitter measurement
// circuit (Fig. 6): a counter counts rising edges of Osc1 during windows of
// N cycles of Osc2, yielding Q^N_i; the observable is (Eq. 12)
//
//   s_N(t_i) = (Q^N_{i+1} - Q^N_i) / f0.
//
// Unlike the oracle in sn_process.hpp, this estimator only sees integer
// counts, so it carries a +-1-count quantization error — its magnitude and
// the regime where it matters are characterized by
// bench_counter_vs_direct (docs/ARCHITECTURE.md §3).
//
// The window loop is batch-first (PR 8): far from a window boundary
// osc1 jumps whole blocks (every skipped period is a counted edge);
// near the boundary it realizes a block of edges via
// RingOscillator::next_edges and attributes them with a vectorized
// prefix-count (common/simd), carrying unconsumed edges into the next
// window. The +-1-count quantization semantics are exact — every edge
// is attributed to the window whose end time first exceeds it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "oscillator/ring_oscillator.hpp"

namespace ptrng::measurement {

/// Event-driven two-clock counter.
class DifferentialCounter {
 public:
  /// Non-owning references; the oscillators advance as windows are taken.
  DifferentialCounter(oscillator::RingOscillator& osc1,
                      oscillator::RingOscillator& osc2);

  /// Counts Osc1 rising edges over `n_windows` consecutive windows of
  /// `n_cycles` Osc2 periods each.
  [[nodiscard]] std::vector<std::int64_t> count_windows(std::size_t n_cycles,
                                                        std::size_t n_windows);

  /// s_N realizations from consecutive counts (Eq. 12), length = counts-1.
  [[nodiscard]] static std::vector<double> sn_from_counts(
      const std::vector<std::int64_t>& counts, double f0);

  /// Convenience: directly estimate sigma^2_N from `n_windows` windows —
  /// one count_windows pass, count differences reduced in a single
  /// streaming accumulation (no s_N staging vector).
  [[nodiscard]] double sigma2_n(std::size_t n_cycles, std::size_t n_windows);

  /// Realized osc1 edges buffered beyond the last closed window. Every
  /// generated osc1 period is either attributed to some window or still
  /// buffered, so across any count_windows history:
  ///   sum(counts) == osc1.cycle_count() - buffered_edges().
  [[nodiscard]] std::size_t buffered_edges() const noexcept {
    return edges_.size() - edge_pos_;
  }

 private:
  oscillator::RingOscillator& osc1_;
  oscillator::RingOscillator& osc2_;
  /// Realized osc1 edge times not yet attributed to a window
  /// (ascending; [edge_pos_, size) is the live tail).
  std::vector<double> edges_;
  std::size_t edge_pos_ = 0;
};

}  // namespace ptrng::measurement
