// Bit-exact simulation of the paper's differential jitter measurement
// circuit (Fig. 6): a counter counts rising edges of Osc1 during windows of
// N cycles of Osc2, yielding Q^N_i; the observable is (Eq. 12)
//
//   s_N(t_i) = (Q^N_{i+1} - Q^N_i) / f0.
//
// Unlike the oracle in sn_process.hpp, this estimator only sees integer
// counts, so it carries a +-1-count quantization error — its magnitude and
// the regime where it matters are characterized by
// bench_counter_vs_direct (docs/ARCHITECTURE.md §3).
#pragma once

#include <cstdint>
#include <vector>

#include "oscillator/ring_oscillator.hpp"

namespace ptrng::measurement {

/// Event-driven two-clock counter.
class DifferentialCounter {
 public:
  /// Non-owning references; the oscillators advance as windows are taken.
  DifferentialCounter(oscillator::RingOscillator& osc1,
                      oscillator::RingOscillator& osc2);

  /// Counts Osc1 rising edges over `n_windows` consecutive windows of
  /// `n_cycles` Osc2 periods each.
  [[nodiscard]] std::vector<std::int64_t> count_windows(std::size_t n_cycles,
                                                        std::size_t n_windows);

  /// s_N realizations from consecutive counts (Eq. 12), length = counts-1.
  [[nodiscard]] static std::vector<double> sn_from_counts(
      const std::vector<std::int64_t>& counts, double f0);

  /// Convenience: directly estimate sigma^2_N from `n_windows` windows.
  [[nodiscard]] double sigma2_n(std::size_t n_cycles, std::size_t n_windows);

 private:
  oscillator::RingOscillator& osc1_;
  oscillator::RingOscillator& osc2_;
  /// Pending osc1 edge time not yet attributed to a window.
  double pending_t1_;
  bool has_pending_ = false;
};

}  // namespace ptrng::measurement
