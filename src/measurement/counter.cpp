#include "measurement/counter.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/contracts.hpp"
#include "common/simd.hpp"
#include "stats/descriptive.hpp"

namespace ptrng::measurement {
namespace {

/// How many edges of the ascending buffer [edges, edges + n) lie strictly
/// below `bound` — i.e. the length of the prefix of values < bound.
std::size_t count_below_scalar(const double* edges, std::size_t n,
                               double bound) noexcept {
  std::size_t i = 0;
  while (i < n && edges[i] < bound) ++i;
  return i;
}

/// Vector prefix count: 4 compares at a time; the first block whose mask
/// is not all-ones ends the prefix, and countr_one picks out how many of
/// its leading lanes still qualify. Because the buffer ascends, this is
/// exactly the scalar stop-at-first-failure count.
PTRNG_SIMD_TARGET std::size_t count_below_vector(const double* edges,
                                                 std::size_t n,
                                                 double bound) noexcept {
  const simd::f64x4 b = simd::splat4(bound);
  std::size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const int m = simd::lt_mask(simd::load4(edges + i), b);
    if (m != 0xf)
      return i + static_cast<std::size_t>(
                     std::countr_one(static_cast<unsigned>(m)));
  }
  return count_below_scalar(edges + i, n - i, bound) + i;
}

std::size_t count_below(const double* edges, std::size_t n,
                        double bound) noexcept {
  if (simd::active()) return count_below_vector(edges, n, bound);
  return count_below_scalar(edges, n, bound);
}

}  // namespace

DifferentialCounter::DifferentialCounter(oscillator::RingOscillator& osc1,
                                         oscillator::RingOscillator& osc2)
    : osc1_(osc1), osc2_(osc2) {}

std::vector<std::int64_t> DifferentialCounter::count_windows(
    std::size_t n_cycles, std::size_t n_windows) {
  PTRNG_EXPECTS(n_cycles >= 1);
  PTRNG_EXPECTS(n_windows >= 1);
  std::vector<std::int64_t> counts;
  counts.reserve(n_windows);
  const double t_nom1 = osc1_.nominal_period();

  for (std::size_t w = 0; w < n_windows; ++w) {
    // Window end: advance osc2 by n_cycles periods (exact block advance).
    osc2_.advance_periods(n_cycles);
    const double window_end = osc2_.edge_time();

    std::int64_t q = 0;
    for (;;) {
      // Drain buffered edges first: the prefix below window_end belongs
      // to this window; a surviving suffix means the window is closed.
      const std::size_t avail = edges_.size() - edge_pos_;
      if (avail > 0) {
        const std::size_t took =
            count_below(edges_.data() + edge_pos_, avail, window_end);
        q += static_cast<std::int64_t>(took);
        edge_pos_ += took;
        if (took < avail) break;  // an edge >= window_end remains buffered
      }
      edges_.clear();
      edge_pos_ = 0;
      // Far from the window end, jump osc1 in blocks (every skipped
      // period is one counted edge); realize explicit edge times only
      // near the boundary, where the exact time decides the count.
      const double gap = window_end - osc1_.edge_time();
      const auto skip =
          static_cast<std::uint64_t>(std::max(0.0, 0.9 * gap / t_nom1));
      if (skip >= 16) {
        osc1_.advance_periods(skip);
        q += static_cast<std::int64_t>(skip);
        continue;
      }
      // Realize a block slightly past the expected boundary: the +8
      // margin makes an all-below block (another loop iteration) rare,
      // and the leftover suffix seeds the next window's prefix count.
      const double need =
          std::max(0.0, (window_end - osc1_.edge_time()) / t_nom1);
      edges_.resize(static_cast<std::size_t>(need) + 8);
      osc1_.next_edges(edges_);
    }
    counts.push_back(q);
  }
  return counts;
}

std::vector<double> DifferentialCounter::sn_from_counts(
    const std::vector<std::int64_t>& counts, double f0) {
  PTRNG_EXPECTS(counts.size() >= 2);
  PTRNG_EXPECTS(f0 > 0.0);
  std::vector<double> sn;
  sn.reserve(counts.size() - 1);
  for (std::size_t i = 0; i + 1 < counts.size(); ++i)
    sn.push_back(static_cast<double>(counts[i + 1] - counts[i]) / f0);
  return sn;
}

double DifferentialCounter::sigma2_n(std::size_t n_cycles,
                                     std::size_t n_windows) {
  PTRNG_EXPECTS(n_windows >= 2);
  const auto counts = count_windows(n_cycles, n_windows);
  const double f0 = osc1_.config().f0;
  stats::RunningStats acc;
  for (std::size_t i = 0; i + 1 < counts.size(); ++i)
    acc.add(static_cast<double>(counts[i + 1] - counts[i]) / f0);
  return acc.variance();
}

}  // namespace ptrng::measurement
