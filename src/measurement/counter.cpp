#include "measurement/counter.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "stats/descriptive.hpp"

namespace ptrng::measurement {

DifferentialCounter::DifferentialCounter(oscillator::RingOscillator& osc1,
                                         oscillator::RingOscillator& osc2)
    : osc1_(osc1), osc2_(osc2), pending_t1_(0.0) {}

std::vector<std::int64_t> DifferentialCounter::count_windows(
    std::size_t n_cycles, std::size_t n_windows) {
  PTRNG_EXPECTS(n_cycles >= 1);
  PTRNG_EXPECTS(n_windows >= 1);
  std::vector<std::int64_t> counts;
  counts.reserve(n_windows);
  const double t_nom1 = osc1_.nominal_period();

  for (std::size_t w = 0; w < n_windows; ++w) {
    // Window end: advance osc2 by n_cycles periods (exact block advance).
    osc2_.advance_periods(n_cycles);
    const double window_end = osc2_.edge_time();

    std::int64_t q = 0;
    // Attribute the pending osc1 edge (generated while closing the
    // previous window) to this window if it falls inside it.
    if (has_pending_) {
      if (pending_t1_ < window_end) {
        ++q;
        has_pending_ = false;
      } else {
        counts.push_back(0);
        continue;  // osc1 produced no edge within this window
      }
    }
    // Far from the window end, jump osc1 in blocks (every skipped period
    // is one counted edge); realize individual edges only near the
    // boundary, where the exact edge time decides the count.
    for (;;) {
      const double gap = window_end - osc1_.edge_time();
      const auto skip =
          static_cast<std::uint64_t>(std::max(0.0, 0.9 * gap / t_nom1));
      if (skip < 16) break;
      osc1_.advance_periods(skip);
      q += static_cast<std::int64_t>(skip);
    }
    for (;;) {
      osc1_.next_period();
      const double t1 = osc1_.edge_time();
      if (t1 < window_end) {
        ++q;
      } else {
        pending_t1_ = t1;
        has_pending_ = true;
        break;
      }
    }
    counts.push_back(q);
  }
  return counts;
}

std::vector<double> DifferentialCounter::sn_from_counts(
    const std::vector<std::int64_t>& counts, double f0) {
  PTRNG_EXPECTS(counts.size() >= 2);
  PTRNG_EXPECTS(f0 > 0.0);
  std::vector<double> sn(counts.size() - 1);
  for (std::size_t i = 0; i + 1 < counts.size(); ++i)
    sn[i] = static_cast<double>(counts[i + 1] - counts[i]) / f0;
  return sn;
}

double DifferentialCounter::sigma2_n(std::size_t n_cycles,
                                     std::size_t n_windows) {
  const auto counts = count_windows(n_cycles, n_windows);
  const auto sn = sn_from_counts(counts, osc1_.config().f0);
  return stats::variance(sn);
}

}  // namespace ptrng::measurement
