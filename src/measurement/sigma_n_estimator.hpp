// sigma^2_N sweep estimation with confidence intervals — produces the data
// behind the paper's Fig. 7.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrng::measurement {

/// One point of a sigma^2_N sweep.
struct Sigma2nPoint {
  std::size_t n = 0;        ///< accumulation length N
  double sigma2 = 0.0;      ///< estimated Var(s_N) [s^2]
  double ci_lo = 0.0;       ///< 95% CI lower bound
  double ci_hi = 0.0;       ///< 95% CI upper bound
  std::size_t samples = 0;  ///< s_N realizations used
  double eff_dof = 0.0;     ///< effective chi-square dof of the estimate
};

/// Estimates Var(s_N) for each N in `grid` from a ground-truth jitter
/// series, using maximally-overlapping s_N samples (stride `stride`;
/// 0 = auto: max(1, N/2)). The effective dof accounts for overlap by
/// counting non-overlapping spans.
[[nodiscard]] std::vector<Sigma2nPoint> sigma2_n_sweep(
    std::span<const double> jitter, std::span<const std::size_t> grid,
    std::size_t stride = 0);

/// Same from a precomputed time-error series (x_0 ... x_M).
[[nodiscard]] std::vector<Sigma2nPoint> sigma2_n_sweep_time_error(
    std::span<const double> x, std::span<const std::size_t> grid,
    std::size_t stride = 0);

}  // namespace ptrng::measurement
