#include "measurement/calibration.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "stats/regression.hpp"

namespace ptrng::measurement {

namespace {

JitterCalibration from_fit(const stats::FitResult& fit, double f0) {
  // y = sigma^2_N * f0^2 = A*N + B*N^2 with A = 2 b_th/f0,
  // B = 8 ln2 b_fl / f0^2.
  const double a = fit.coefficients[0];
  const double b = fit.coefficients[1];
  JitterCalibration cal;
  cal.f0 = f0;
  cal.b_th = std::max(0.0, a * f0 / 2.0);
  cal.b_fl = std::max(0.0, b * f0 * f0 / (8.0 * constants::ln2));
  cal.b_th_err = fit.std_errors[0] * f0 / 2.0;
  cal.b_fl_err = fit.std_errors[1] * f0 * f0 / (8.0 * constants::ln2);
  cal.sigma_thermal = std::sqrt(cal.b_th / (f0 * f0 * f0));
  cal.jitter_ratio = cal.sigma_thermal * f0;
  cal.rn_constant =
      (cal.b_fl > 0.0)
          ? cal.b_th * f0 / (4.0 * constants::ln2 * cal.b_fl)
          : std::numeric_limits<double>::infinity();
  cal.r_squared = fit.r_squared;
  return cal;
}

}  // namespace

double JitterCalibration::thermal_ratio(double n) const {
  PTRNG_EXPECTS(n > 0.0);
  if (std::isinf(rn_constant)) return 1.0;
  return rn_constant / (rn_constant + n);
}

double JitterCalibration::independence_threshold(double r_min) const {
  PTRNG_EXPECTS(r_min > 0.0 && r_min < 1.0);
  if (std::isinf(rn_constant)) return std::numeric_limits<double>::max();
  return rn_constant * (1.0 - r_min) / r_min;
}

phase_noise::PhasePsd JitterCalibration::phase_psd() const {
  return {b_th, b_fl, f0};
}

JitterCalibration fit_sigma2_n(std::span<const Sigma2nPoint> sweep,
                               double f0) {
  PTRNG_EXPECTS(f0 > 0.0);
  std::vector<double> xs, ys, ws;
  xs.reserve(sweep.size());
  for (const auto& pt : sweep) {
    if (pt.n == 0 || pt.sigma2 <= 0.0) continue;
    xs.push_back(static_cast<double>(pt.n));
    ys.push_back(pt.sigma2 * f0 * f0);
    // Var of a variance estimate: ~ 2 sigma^4 / dof  =>  weight dof/sigma^4
    // (constant factors cancel in WLS).
    const double y = pt.sigma2 * f0 * f0;
    ws.push_back(std::max(1.0, pt.eff_dof) / (y * y));
  }
  PTRNG_EXPECTS(xs.size() >= 3);
  const std::size_t powers[] = {1, 2};
  const auto fit = stats::fit_powers(xs, ys, powers, ws);
  return from_fit(fit, f0);
}

JitterCalibration fit_sigma2_n(std::span<const double> n,
                               std::span<const double> sigma2, double f0) {
  PTRNG_EXPECTS(n.size() == sigma2.size());
  PTRNG_EXPECTS(n.size() >= 3);
  PTRNG_EXPECTS(f0 > 0.0);
  std::vector<double> ys(n.size()), ws(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    PTRNG_EXPECTS(sigma2[i] > 0.0);
    ys[i] = sigma2[i] * f0 * f0;
    ws[i] = 1.0 / (ys[i] * ys[i]);  // equal relative weights
  }
  const std::size_t powers[] = {1, 2};
  const auto fit = stats::fit_powers(n, ys, powers, ws);
  return from_fit(fit, f0);
}

}  // namespace ptrng::measurement
