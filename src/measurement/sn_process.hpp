// The accumulated-jitter-difference process s_N of the paper (Eq. 4):
//
//   s_N(t_i) = sum_{j=0}^{2N-1} a_j J(t_{i+j}),  a_j = -1 for j < N else +1
//
// equivalently (Eq. 8) the second difference of the time error
// x_i = -sum_{k<i} J_k:  s_N(t_i) = -(x_{i+2N} - 2 x_{i+N} + x_i) ... the
// sign is irrelevant for variances; we return the second difference form.
// These run on ORACLE jitter series; the hardware estimator lives in
// counter.hpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrng::measurement {

/// s_N realizations from a jitter series, advancing the start index by
/// `stride` (default 2N: non-overlapping, independent-ish samples;
/// stride 1: maximally overlapping).
[[nodiscard]] std::vector<double> sn_from_jitter(std::span<const double> jitter,
                                                 std::size_t n,
                                                 std::size_t stride = 0);

/// s_N realizations from a time-error series x (length >= 2N+1).
[[nodiscard]] std::vector<double> sn_from_time_error(
    std::span<const double> x, std::size_t n, std::size_t stride = 0);

/// Cumulative time error x (length jitter.size()+1, x_0 = 0) from jitter.
[[nodiscard]] std::vector<double> time_error_from_jitter(
    std::span<const double> jitter);

}  // namespace ptrng::measurement
