#include "measurement/sigma_n_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "measurement/sn_process.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace ptrng::measurement {

namespace {

// One grid point of the sweep; nullopt when the series is too short to
// yield >= 8 s_N realizations at this N.
std::optional<Sigma2nPoint> sweep_point(std::span<const double> x,
                                        std::size_t n,
                                        std::size_t stride_opt) {
  if (x.size() <= 2 * n + 1) return std::nullopt;
  const std::size_t stride =
      stride_opt ? stride_opt : std::max<std::size_t>(1, n / 2);
  stats::RunningStats rs;
  for (std::size_t i = 0; i + 2 * n < x.size(); i += stride)
    rs.add(-(x[i + 2 * n] - 2.0 * x[i + n] + x[i]));
  if (rs.count() < 8) return std::nullopt;

  Sigma2nPoint pt;
  pt.n = n;
  pt.sigma2 = rs.variance();
  pt.samples = rs.count();
  // Overlapping samples are correlated; a conservative effective dof is
  // the number of disjoint 2N-spans.
  pt.eff_dof =
      std::max(1.0, static_cast<double>((x.size() - 1) / (2 * n)) - 1.0);
  // chi-square CI: dof*s^2/chi2_{hi} <= sigma^2 <= dof*s^2/chi2_{lo}.
  const double lo_q = stats::chi_square_quantile(0.975, pt.eff_dof);
  const double hi_q = stats::chi_square_quantile(0.025, pt.eff_dof);
  pt.ci_lo = pt.eff_dof * pt.sigma2 / lo_q;
  pt.ci_hi = pt.eff_dof * pt.sigma2 / hi_q;
  return pt;
}

}  // namespace

std::vector<Sigma2nPoint> sigma2_n_sweep_time_error(
    std::span<const double> x, std::span<const std::size_t> grid,
    std::size_t stride_opt) {
  PTRNG_EXPECTS(x.size() >= 8);

  // Every grid point is independent, so the sweep fans out across the
  // global pool; each point writes its own slot and the slots are
  // compacted in grid order, so the result does not depend on the thread
  // count (docs/ARCHITECTURE.md §5).
  std::vector<std::optional<Sigma2nPoint>> points(grid.size());
  parallel_for(0, grid.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      points[i] = sweep_point(x, grid[i], stride_opt);
  });

  std::vector<Sigma2nPoint> out;
  out.reserve(grid.size());
  for (const auto& pt : points)
    if (pt) out.push_back(*pt);
  return out;
}

std::vector<Sigma2nPoint> sigma2_n_sweep(std::span<const double> jitter,
                                         std::span<const std::size_t> grid,
                                         std::size_t stride) {
  const auto x = time_error_from_jitter(jitter);
  return sigma2_n_sweep_time_error(x, grid, stride);
}

}  // namespace ptrng::measurement
