#include "measurement/sn_process.hpp"

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::measurement {

std::vector<double> time_error_from_jitter(std::span<const double> jitter) {
  std::vector<double> x(jitter.size() + 1);
  KahanSum acc;
  x[0] = 0.0;
  for (std::size_t i = 0; i < jitter.size(); ++i) {
    acc.add(-jitter[i]);
    x[i + 1] = acc.value();
  }
  return x;
}

std::vector<double> sn_from_time_error(std::span<const double> x,
                                       std::size_t n, std::size_t stride) {
  PTRNG_EXPECTS(n >= 1);
  PTRNG_EXPECTS(x.size() > 2 * n);
  if (stride == 0) stride = 2 * n;
  std::vector<double> out;
  out.reserve((x.size() - 2 * n) / stride + 1);
  for (std::size_t i = 0; i + 2 * n < x.size(); i += stride)
    out.push_back(-(x[i + 2 * n] - 2.0 * x[i + n] + x[i]));
  return out;
}

std::vector<double> sn_from_jitter(std::span<const double> jitter,
                                   std::size_t n, std::size_t stride) {
  PTRNG_EXPECTS(n >= 1);
  PTRNG_EXPECTS(jitter.size() >= 2 * n);
  const auto x = time_error_from_jitter(jitter);
  return sn_from_time_error(x, n, stride);
}

}  // namespace ptrng::measurement
