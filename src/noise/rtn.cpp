#include "noise/rtn.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::noise {

RandomTelegraphNoise::RandomTelegraphNoise(double amplitude, double lambda,
                                           double fs, std::uint64_t seed)
    : amplitude_(amplitude),
      lambda_(lambda),
      fs_(fs),
      p_flip_(1.0 - std::exp(-lambda / fs)),
      rng_(seed) {
  PTRNG_EXPECTS(amplitude >= 0.0);
  PTRNG_EXPECTS(lambda > 0.0);
  PTRNG_EXPECTS(fs > 0.0);
  // Stationary start: equally likely in either state.
  state_ = (rng_.uniform() < 0.5) ? 1 : -1;
}

double RandomTelegraphNoise::next() {
  if (rng_.uniform() < p_flip_) state_ = -state_;
  return amplitude_ * static_cast<double>(state_);
}

double RandomTelegraphNoise::analytic_psd(double f) const {
  const double num = amplitude_ * amplitude_ * lambda_;
  const double den = lambda_ * lambda_ +
                     constants::pi * constants::pi * f * f;
  return num / den;
}

RtnSuperposition::RtnSuperposition(const Config& config) : fs_(config.fs) {
  PTRNG_EXPECTS(config.traps >= 1);
  PTRNG_EXPECTS(config.lambda_min > 0.0);
  PTRNG_EXPECTS(config.lambda_max > config.lambda_min);
  PTRNG_EXPECTS(config.fs > 0.0);

  Xoshiro256pp seeder(config.seed);
  const double log_lo = std::log(config.lambda_min);
  const double log_hi = std::log(config.lambda_max);
  traps_.reserve(config.traps);
  for (std::size_t k = 0; k < config.traps; ++k) {
    // Deterministic log-uniform spacing with a small random dither keeps
    // the PSD smooth without clustering.
    const double frac =
        (static_cast<double>(k) + 0.5 + 0.2 * (seeder.uniform() - 0.5)) /
        static_cast<double>(config.traps);
    const double lambda = std::exp(log_lo + (log_hi - log_lo) * frac);
    traps_.emplace_back(config.amplitude, lambda, fs_, seeder.next());
  }
}

double RtnSuperposition::next() {
  double sum = 0.0;
  for (auto& trap : traps_) sum += trap.next();
  return sum;
}

double RtnSuperposition::analytic_psd(double f) const {
  double sum = 0.0;
  for (const auto& trap : traps_) sum += trap.analytic_psd(f);
  return sum;
}

}  // namespace ptrng::noise
