// Abstract interface for streaming discrete-time noise processes sampled at
// a fixed rate. All ptrng generators are stationary from the first sample
// (states are initialized from their stationary distribution).
#pragma once

#include <cstddef>
#include <span>

namespace ptrng::noise {

/// A stationary discrete-time stochastic process producing one sample per
/// call. Implementations document their (two-sided) PSD.
class NoiseSource {
 public:
  virtual ~NoiseSource() = default;

  /// Next sample of the process.
  virtual double next() = 0;

  /// Fills a buffer; overridable for batch-optimized generators.
  virtual void fill(std::span<double> out) {
    for (auto& x : out) x = next();
  }

  /// Sample rate the PSD is defined against [Hz].
  [[nodiscard]] virtual double sample_rate() const = 0;
};

}  // namespace ptrng::noise
