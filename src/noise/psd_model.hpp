// Analytic power-law PSD models: S(f) = sum_i c_i * f^{e_i}. These carry
// the paper's spectral bookkeeping — S_ids (Eq. 1), S_phi (Eq. 10) — in a
// uniform representation with explicit sidedness.
#pragma once

#include <string>
#include <vector>

namespace ptrng::noise {

/// Whether a PSD is quoted over (-inf, inf) or [0, inf).
enum class Sidedness { two_sided, one_sided };

/// One power-law component c * f^exponent.
struct PowerLawTerm {
  double coefficient = 0.0;
  double exponent = 0.0;  ///< e.g. 0 (white), -1 (flicker), -2, -3
  std::string label;      ///< human-readable origin, e.g. "thermal"
};

/// A sum of power-law terms with a fixed sidedness convention.
class PowerLawPsd {
 public:
  PowerLawPsd() = default;
  explicit PowerLawPsd(Sidedness sidedness) : sidedness_(sidedness) {}

  /// Adds one component; coefficient must be >= 0.
  void add_term(double coefficient, double exponent, std::string label = {});

  /// S(f); requires f > 0.
  [[nodiscard]] double operator()(double f) const;

  /// Coefficient of the f^exponent term (0 when absent; merges duplicates).
  [[nodiscard]] double coefficient(double exponent) const;

  /// Converts between conventions (factor 2 on every coefficient).
  [[nodiscard]] PowerLawPsd as(Sidedness target) const;

  [[nodiscard]] Sidedness sidedness() const noexcept { return sidedness_; }
  [[nodiscard]] const std::vector<PowerLawTerm>& terms() const noexcept {
    return terms_;
  }

 private:
  Sidedness sidedness_ = Sidedness::two_sided;
  std::vector<PowerLawTerm> terms_;
};

}  // namespace ptrng::noise
