// Flicker (1/f) noise via a bank of octave-spaced first-order AR(1)
// (discrete Ornstein–Uhlenbeck) stages — the production generator used by
// the oscillator simulator: O(stages) per sample, stationary from sample 0,
// analytically known PSD (sum of Lorentzians).
//
// Equal-variance stages with log-spaced corner frequencies superpose to a
// PSD ~ c/f between f_min and f_max; the constructor calibrates the global
// gain against the requested two-sided amplitude A (target S(f) = A/f) by a
// log-grid least-squares fit of the *analytic* stage sum.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "noise/noise_source.hpp"

namespace ptrng::noise {

/// Streaming 1/f noise with two-sided PSD ~ amplitude/f over
/// [f_min, f_max].
class FilterBankFlicker final : public NoiseSource {
 public:
  struct Config {
    double amplitude = 1.0;      ///< target two-sided PSD: amplitude / f
    double fs = 1.0;             ///< sample rate [Hz]
    double f_min = 1e-6;         ///< lower band edge [Hz] (>= fs/n_samples)
    double f_max = 0.0;          ///< upper band edge; 0 -> fs/4
    unsigned stages_per_decade = 3;
    std::uint64_t seed = 0x1f1cce5;
  };

  explicit FilterBankFlicker(const Config& config);

  double next() override;
  [[nodiscard]] double sample_rate() const override { return fs_; }

  /// Exact block advance: draws the SUM of the next k samples from its
  /// true joint distribution with the end state and moves the generator
  /// k steps forward — O(stages), independent of k. Statistically
  /// indistinguishable from summing k next() calls (each AR(1) stage's
  /// (sum, end-state) pair is jointly Gaussian with closed-form moments).
  [[nodiscard]] double advance_sum(std::size_t k);

  /// Exact two-sided PSD of this generator (sum of discrete Lorentzians) at
  /// frequency f — what Welch estimates should converge to.
  [[nodiscard]] double analytic_psd(double f) const;

  /// Target two-sided PSD amplitude/f it approximates in band.
  [[nodiscard]] double target_psd(double f) const;

  [[nodiscard]] std::size_t stage_count() const noexcept {
    return rho_.size();
  }
  [[nodiscard]] double f_min() const noexcept { return f_min_; }
  [[nodiscard]] double f_max() const noexcept { return f_max_; }

 private:
  double fs_;
  double amplitude_;
  double f_min_;
  double f_max_;
  std::vector<double> rho_;    ///< per-stage AR(1) pole
  std::vector<double> sigma_;  ///< per-stage stationary stddev (calibrated)
  std::vector<double> state_;
  GaussianSampler gauss_;
};

}  // namespace ptrng::noise
