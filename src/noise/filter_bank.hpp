// Flicker (1/f) noise via a bank of octave-spaced first-order AR(1)
// (discrete Ornstein–Uhlenbeck) stages — the production generator used by
// the oscillator simulator: O(stages) per sample, stationary from sample 0,
// analytically known PSD (sum of Lorentzians).
//
// Equal-variance stages with log-spaced corner frequencies superpose to a
// PSD ~ c/f between f_min and f_max; the constructor calibrates the global
// gain against the requested two-sided amplitude A (target S(f) = A/f) by a
// log-grid least-squares fit of the *analytic* stage sum.
//
// State is laid out struct-of-arrays (rho / innovation gain / state per
// stage) and every stage owns a decorrelated RNG stream
// (chunk_seed(seed, stage)), so the batched fill() path can draw each
// stage's Gaussians in one block per stage while staying bit-identical to
// sample-by-sample next() calls (docs/ARCHITECTURE.md §5).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "noise/noise_source.hpp"
#include "noise/sampler_policy.hpp"

namespace ptrng::noise {

/// Streaming 1/f noise with two-sided PSD ~ amplitude/f over
/// [f_min, f_max].
class FilterBankFlicker final : public NoiseSource {
 public:
  // Suppression covers the struct definition only (GCC attributes the
  // implicit ctors' NSDMI use of the deprecated alias to this line);
  // writes to the alias at callsites still warn.
  PTRNG_SUPPRESS_DEPRECATED_BEGIN
  struct Config {
    double amplitude = 1.0;      ///< target two-sided PSD: amplitude / f
    double fs = 1.0;             ///< sample rate [Hz]
    double f_min = 1e-6;         ///< lower band edge [Hz] (>= fs/n_samples)
    double f_max = 0.0;          ///< upper band edge; 0 -> fs/4
    unsigned stages_per_decade = 3;
    std::uint64_t seed = 0x1f1cce5;
    /// Sampler policy for every per-stage stream (§5 "Sampler policy");
    /// Polar reproduces the pre-PR-5 realized streams bit-for-bit.
    SamplerPolicy sampler{};
    /// Pre-PR-7 alias of sampler.gauss_method; wins over `sampler` when
    /// explicitly set (resolved_sampler).
    [[deprecated("set sampler.gauss_method (noise/sampler_policy.hpp)")]]
    std::optional<GaussianSampler::Method> gauss_method{};
  };
  PTRNG_SUPPRESS_DEPRECATED_END

  explicit FilterBankFlicker(const Config& config);

  double next() override;

  /// Batched fast path: bit-identical to out.size() next() calls on the
  /// same stream for ANY PTRNG_THREADS (per-stage RNG streams make the
  /// draw order within each stage independent of the batching). One
  /// Gaussian block per stage per internal block instead of one draw per
  /// stage per sample; the independent per-stage recurrences fan out one
  /// stage per task on the common pool and the stage contributions fold
  /// in stage order — the exact accumulation order of next().
  void fill(std::span<double> out) override;

  [[nodiscard]] double sample_rate() const override { return fs_; }

  /// Exact block advance: draws the SUM of the next k samples from its
  /// true joint distribution with the end state and moves the generator
  /// k steps forward — O(stages), independent of k. Statistically
  /// indistinguishable from summing k next() calls (each AR(1) stage's
  /// (sum, end-state) pair is jointly Gaussian with closed-form moments).
  /// Consumes exactly two draws per stage, so it composes deterministically
  /// with next()/fill() on the same generator.
  [[nodiscard]] double advance_sum(std::size_t k);

  /// Exact two-sided PSD of this generator (sum of discrete Lorentzians) at
  /// frequency f — what Welch estimates should converge to.
  [[nodiscard]] double analytic_psd(double f) const;

  /// Target two-sided PSD amplitude/f it approximates in band.
  [[nodiscard]] double target_psd(double f) const;

  [[nodiscard]] std::size_t stage_count() const noexcept {
    return rho_.size();
  }
  [[nodiscard]] double f_min() const noexcept { return f_min_; }
  [[nodiscard]] double f_max() const noexcept { return f_max_; }

 private:
  double fs_;
  double amplitude_;
  double f_min_;
  double f_max_;
  // Struct-of-arrays per-stage state; all vectors share stage indexing.
  std::vector<double> rho_;    ///< per-stage AR(1) pole
  std::vector<double> sigma_;  ///< per-stage stationary stddev (calibrated)
  std::vector<double> drive_;  ///< innovation stddev sigma*sqrt(1-rho^2)
  // Precomputed geometric terms shared by advance_sum (k-independent).
  std::vector<double> inv_one_m_rho_;   ///< 1/(1-rho)
  std::vector<double> inv_one_m_rho2_;  ///< 1/(1-rho^2)
  std::vector<double> state_;
  /// One decorrelated stream per stage so batched per-stage draws consume
  /// each stream in the same order as interleaved per-sample draws.
  std::vector<GaussianSampler> gauss_;
  std::vector<double> scratch_;  ///< fill() per-stage staging (stages x block)

  /// Per-stage advance_sum moment terms for one block length k — every
  /// value exactly what the former inline computation produced, so
  /// memoizing them is stream-invisible.
  struct AdvanceTerms {
    double q = 0.0;          ///< rho^k
    double sd_x = 0.0;       ///< stddev of the end state (given x_0)
    double mean_coef = 0.0;  ///< E[S|x_0] = mean_coef * x_0
    double slope = 0.0;      ///< regression of S on the end-state shock
    double resid_sd = 0.0;   ///< stddev of S around that regression
    double sd_s = 0.0;       ///< stddev of S when sd_x degenerates to 0
  };
  struct AdvanceCacheEntry {
    std::size_t k = 0;  ///< block length; 0 marks an empty slot
    std::vector<AdvanceTerms> terms;
  };
  /// Small round-robin memo keyed on k: the counter's window loop
  /// revisits the same few block lengths (n_cycles plus jump sizes that
  /// jitter by +-1 period) millions of times, and recomputing cost
  /// ~stage_count std::pow calls per advance. 8 slots cover that
  /// working set with room for the jitter.
  const std::vector<AdvanceTerms>& advance_terms(std::size_t k);
  std::array<AdvanceCacheEntry, 8> advance_cache_{};
  std::size_t advance_cache_next_ = 0;
};

/// Shared Config factory for the oscillator-layer flicker banks: a 1/f
/// band from `f_min` up to the conventional fs/4 upper edge at sample
/// rate `fs`. RingOscillator and GateChainOscillator both build their
/// banks through this helper so the band conventions cannot drift
/// between them.
[[nodiscard]] FilterBankFlicker::Config flicker_band_config(
    double amplitude, double fs, double f_min, std::uint64_t seed,
    unsigned stages_per_decade = 3, SamplerPolicy sampler = {});

/// Pre-PR-7 overload; identical streams for the same gauss_method.
[[deprecated("pass a noise::SamplerPolicy")]] [[nodiscard]]
FilterBankFlicker::Config flicker_band_config(
    double amplitude, double fs, double f_min, std::uint64_t seed,
    unsigned stages_per_decade, GaussianSampler::Method gauss_method);

}  // namespace ptrng::noise
