// One sampler-policy knob for the whole noise/oscillator layer (PR 7
// API redesign). Before this header, the Gaussian-engine choice
// (docs/ARCHITECTURE.md §5 "Sampler policy") was a loose
// `gauss_method` field threaded through five Config structs and four
// constructor signatures; every new sampler knob would have multiplied
// the same way. SamplerPolicy is that knob as ONE value type passed by
// value; the old fields/parameters remain as [[deprecated]] aliases for
// one release (resolved_sampler() folds a legacy override into the
// policy, so old callsites keep realizing the same streams).
#pragma once

#include <optional>

#include "common/rng.hpp"

namespace ptrng::noise {

/// Sampling policy shared by every noise generator and oscillator
/// config. Passed by value; extend here (not per-Config) when a new
/// sampler knob appears.
struct SamplerPolicy {
  /// Gaussian engine: Ziggurat (default) or Polar (the pre-PR-5
  /// streams, bit-for-bit — see §5 "Sampler policy").
  GaussianSampler::Method gauss_method = GaussianSampler::Method::Ziggurat;
};

#if defined(__GNUC__) || defined(__clang__)
#define PTRNG_SUPPRESS_DEPRECATED_BEGIN \
  _Pragma("GCC diagnostic push")        \
  _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define PTRNG_SUPPRESS_DEPRECATED_END _Pragma("GCC diagnostic pop")
#else
#define PTRNG_SUPPRESS_DEPRECATED_BEGIN
#define PTRNG_SUPPRESS_DEPRECATED_END
#endif

/// Effective policy of a Config: the new `sampler` field, unless the
/// deprecated `gauss_method` alias was explicitly set (legacy callsites
/// win, so their realized streams cannot change under them during the
/// deprecation window).
template <typename ConfigT>
[[nodiscard]] SamplerPolicy resolved_sampler(const ConfigT& config) {
  SamplerPolicy policy = config.sampler;
  PTRNG_SUPPRESS_DEPRECATED_BEGIN
  if (config.gauss_method.has_value()) policy.gauss_method = *config.gauss_method;
  PTRNG_SUPPRESS_DEPRECATED_END
  return policy;
}

}  // namespace ptrng::noise
