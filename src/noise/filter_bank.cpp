#include "noise/filter_bank.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace ptrng::noise {

namespace {

/// Two-sided PSD of a unit-variance AR(1) stage with pole rho at rate fs:
/// the stationary process x_n = rho*x_{n-1} + sqrt(1-rho^2)*w_n.
double stage_psd(double rho, double fs, double f) {
  const double omega = constants::two_pi * f / fs;
  const double denom = 1.0 - 2.0 * rho * std::cos(omega) + rho * rho;
  return (1.0 - rho * rho) / (fs * denom);
}

/// Per-stage Gaussian block size of fill(): large enough to amortize the
/// per-block pool dispatch (one parallel_for per block), small enough
/// that the stages x block staging buffer stays modest — 64 KiB per
/// stage, ~1.2 MiB at the default ~19 stages (L2/L3 territory; the
/// Gaussian math, not staging bandwidth, dominates the block time).
constexpr std::size_t kFillBlock = 8192;

/// Below this many staged samples per block (n * stages) the fill runs
/// its tasks inline instead of through parallel_for: the counter path
/// asks for blocks of a few dozen samples, where pool dispatch costs
/// more than the work. Output is identical either way (per-stage
/// streams make the task schedule irrelevant), so the cutover is pure
/// policy.
constexpr std::size_t kInlineFillWork = 4096;

// SIMD pack kernels (docs/ARCHITECTURE.md §5 "SIMD rules"). A pack is
// 4 consecutive stages riding one vector lane-wise through time; their
// Gaussians arrive interleaved from GaussianSampler::fill_lanes
// (z[4*i + lane]). No fused multiply-add: the scalar recurrence rounds
// rho*x and drive*z separately, so the kernel must too.

/// In-place AR(1) recurrence over one pack: z holds n interleaved
/// innovation vectors on entry, n interleaved state vectors on exit;
/// state[0..3] carries the pack's AR(1) states across blocks.
PTRNG_SIMD_TARGET void ar1_pack4(const double* rho, const double* drive,
                                 double* state, double* z,
                                 std::size_t n) noexcept {
  const simd::f64x4 r = simd::load4(rho);
  const simd::f64x4 d = simd::load4(drive);
  simd::f64x4 x = simd::load4(state);
  for (std::size_t i = 0; i < n; ++i) {
    const simd::f64x4 zi = simd::load4(z + 4 * i);
    x = r * x + d * zi;  // mul + mul + add, exactly the scalar rounding
    simd::store4(z + 4 * i, x);
  }
  simd::store4(state, x);
}

/// Folds one pack's staged states into the output block, preserving the
/// per-sample stage accumulation order of next(): transpose 4 time
/// steps x 4 stages, then add the stage columns to the running
/// accumulator lowest stage first. `first` marks the stage-0 pack,
/// whose lowest stage initializes the accumulator (the fold's
/// std::copy).
PTRNG_SIMD_TARGET void fold_pack4(double* out, const double* z, std::size_t n,
                                  bool first) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    simd::f64x4 s0 = simd::load4(z + 4 * i);
    simd::f64x4 s1 = simd::load4(z + 4 * i + 4);
    simd::f64x4 s2 = simd::load4(z + 4 * i + 8);
    simd::f64x4 s3 = simd::load4(z + 4 * i + 12);
    simd::transpose4(s0, s1, s2, s3);  // now one vector per stage
    simd::f64x4 acc = first ? s0 : simd::load4(out + i) + s0;
    acc = acc + s1;
    acc = acc + s2;
    acc = acc + s3;
    simd::store4(out + i, acc);
  }
  for (; i < n; ++i) {  // time tail, scalar but same stage order
    double acc = first ? z[4 * i] : out[i] + z[4 * i];
    acc += z[4 * i + 1];
    acc += z[4 * i + 2];
    acc += z[4 * i + 3];
    out[i] = acc;
  }
}

/// fold_pack4 for a PADDED pack: only the first `count` (1..3) lanes
/// are real stages; the dummy lanes never touch the accumulator.
PTRNG_SIMD_TARGET void fold_pack4_partial(double* out, const double* z,
                                          std::size_t n, bool first,
                                          std::size_t count) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    simd::f64x4 s0 = simd::load4(z + 4 * i);
    simd::f64x4 s1 = simd::load4(z + 4 * i + 4);
    simd::f64x4 s2 = simd::load4(z + 4 * i + 8);
    simd::f64x4 s3 = simd::load4(z + 4 * i + 12);
    simd::transpose4(s0, s1, s2, s3);
    simd::f64x4 acc = first ? s0 : simd::load4(out + i) + s0;
    if (count > 1) acc = acc + s1;
    if (count > 2) acc = acc + s2;
    simd::store4(out + i, acc);
  }
  for (; i < n; ++i) {
    double acc = first ? z[4 * i] : out[i] + z[4 * i];
    for (std::size_t j = 1; j < count; ++j) acc += z[4 * i + j];
    out[i] = acc;
  }
}

}  // namespace

FilterBankFlicker::FilterBankFlicker(const Config& config)
    : fs_(config.fs),
      amplitude_(config.amplitude),
      f_min_(config.f_min),
      f_max_(config.f_max > 0.0 ? config.f_max : config.fs / 4.0) {
  PTRNG_EXPECTS(fs_ > 0.0);
  PTRNG_EXPECTS(amplitude_ >= 0.0);
  PTRNG_EXPECTS(f_min_ > 0.0 && f_max_ > f_min_);
  PTRNG_EXPECTS(f_max_ <= fs_ / 2.0);
  PTRNG_EXPECTS(config.stages_per_decade >= 1);

  // Corner frequencies log-spaced from f_min to f_max.
  const double decades = std::log10(f_max_ / f_min_);
  const auto n_stages = static_cast<std::size_t>(std::ceil(
                            decades * config.stages_per_decade)) + 1;
  rho_.reserve(n_stages);
  for (std::size_t k = 0; k < n_stages; ++k) {
    const double frac = static_cast<double>(k) /
                        static_cast<double>(std::max<std::size_t>(1, n_stages - 1));
    const double fc = f_min_ * std::pow(f_max_ / f_min_, frac);
    rho_.push_back(std::exp(-constants::two_pi * fc / fs_));
  }

  // Calibrate the common stage variance g^2 so that the analytic stage sum
  // matches amplitude/f in least squares over a log grid inside the band.
  const auto grid = logspace(f_min_ * 2.0, f_max_ / 2.0, 64);
  double num = 0.0;
  double den = 0.0;
  for (double f : grid) {
    double sum = 0.0;
    for (double rho : rho_) sum += stage_psd(rho, fs_, f);
    const double target = 1.0 / f;  // shape only; amplitude applied below
    // Fit in log space with equal weights: minimize sum (g2*sum - target)^2
    // / target^2  =>  g2 = sum(sum/target) / sum((sum/target)^2).
    const double ratio = sum / target;
    num += ratio;
    den += ratio * ratio;
  }
  PTRNG_EXPECTS(den > 0.0);
  const double g2 = amplitude_ * num / den;

  sigma_.assign(rho_.size(), std::sqrt(g2));
  drive_.resize(rho_.size());
  inv_one_m_rho_.resize(rho_.size());
  inv_one_m_rho2_.resize(rho_.size());
  for (std::size_t k = 0; k < rho_.size(); ++k) {
    const double rho = rho_[k];
    drive_[k] = sigma_[k] * std::sqrt(1.0 - rho * rho);
    inv_one_m_rho_[k] = 1.0 / (1.0 - rho);
    inv_one_m_rho2_[k] = 1.0 / (1.0 - rho * rho);
  }

  // One decorrelated stream per stage; each stage starts in its
  // stationary distribution drawn from its own stream.
  gauss_.reserve(rho_.size());
  state_.resize(rho_.size());
  const auto gauss_method = resolved_sampler(config).gauss_method;
  for (std::size_t k = 0; k < rho_.size(); ++k) {
    gauss_.emplace_back(chunk_seed(config.seed, k), gauss_method);
    state_[k] = gauss_[k](0.0, sigma_[k]);
  }
}

double FilterBankFlicker::next() {
  double sum = 0.0;
  for (std::size_t k = 0; k < rho_.size(); ++k) {
    state_[k] = rho_[k] * state_[k] + drive_[k] * gauss_[k]();
    sum += state_[k];
  }
  return sum;
}

void FilterBankFlicker::fill(std::span<double> out) {
  const std::size_t n_stages = rho_.size();
  // SIMD pack path (docs/ARCHITECTURE.md §5 "SIMD rules"): 4 stages per
  // vector, lane-wise through time, fed interleaved by fill_lanes. Each
  // stage still consumes its own stream in next()'s order, so output is
  // bit-identical to the scalar path (and to stepping) at any thread
  // count; stages beyond the last full pack run the scalar per-stage
  // code unchanged — except a 3-stage tail, which is cheaper padded to
  // a full pack with one dummy lane (its own throwaway stream, drawn
  // and discarded, never folded) than run 3x through the scalar
  // sampler. 1- and 2-stage tails stay scalar: there the dummy lanes
  // would cost more than they save.
  const std::size_t n_packs = simd::active() ? n_stages / simd::kLanes : 0;
  const bool pad_tail = simd::active() && n_stages % simd::kLanes == 3 &&
                        !gauss_.empty() &&
                        gauss_[0].method() == GaussianSampler::Method::Ziggurat;
  const std::size_t n_tail =
      pad_tail ? 0 : n_stages - simd::kLanes * n_packs;
  const std::size_t n_vec_packs = n_packs + (pad_tail ? 1 : 0);
  for (std::size_t offset = 0; offset < out.size(); offset += kFillBlock) {
    const std::size_t n = std::min(kFillBlock, out.size() - offset);
    scratch_.resize((simd::kLanes * n_vec_packs + n_tail) * n);
    // The per-stage AR(1) recurrences are fully independent (private
    // stream, private state): one pack or tail stage per task on the
    // common pool. Scratch layout: pack p (padded pack included) owns
    // the interleaved slice [4*p*n, 4*(p+1)*n); tail stage j owns the
    // stage-major slice at (4*n_vec_packs + j)*n.
    auto run_task = [&](std::size_t t) {
      if (t < n_packs) {
        const std::size_t s0 = simd::kLanes * t;
        double* const z = scratch_.data() + s0 * n;
        GaussianSampler::fill_lanes(
            {&gauss_[s0], &gauss_[s0 + 1], &gauss_[s0 + 2], &gauss_[s0 + 3]},
            {z, simd::kLanes * n});
        ar1_pack4(&rho_[s0], &drive_[s0], &state_[s0], z, n);
      } else if (pad_tail && t == n_packs) {
        // Padded pack: 3 real stages + 1 dummy lane. The dummy draws
        // from a lane-local stream and its recurrence runs with
        // rho = drive = 0; nothing of it survives the fold, so output
        // matches the scalar tail bit for bit.
        const std::size_t s0 = simd::kLanes * n_packs;
        double* const z = scratch_.data() + s0 * n;
        GaussianSampler dummy(0xd0d0'0000 + offset);
        GaussianSampler::fill_lanes(
            {&gauss_[s0], &gauss_[s0 + 1], &gauss_[s0 + 2], &dummy},
            {z, simd::kLanes * n});
        double rho_p[4] = {rho_[s0], rho_[s0 + 1], rho_[s0 + 2], 0.0};
        double drive_p[4] = {drive_[s0], drive_[s0 + 1], drive_[s0 + 2], 0.0};
        double state_p[4] = {state_[s0], state_[s0 + 1], state_[s0 + 2], 0.0};
        ar1_pack4(rho_p, drive_p, state_p, z, n);
        state_[s0] = state_p[0];
        state_[s0 + 1] = state_p[1];
        state_[s0 + 2] = state_p[2];
      } else {
        const std::size_t j = t - n_vec_packs;
        const std::size_t s = simd::kLanes * n_packs + j;
        double* const zs =
            scratch_.data() + (simd::kLanes * n_vec_packs + j) * n;
        gauss_[s].fill({zs, n});
        const double rho = rho_[s];
        const double drive = drive_[s];
        double x = state_[s];
        for (std::size_t i = 0; i < n; ++i) {
          x = rho * x + drive * zs[i];
          zs[i] = x;
        }
        state_[s] = x;
      }
    };
    const std::size_t n_tasks = n_vec_packs + n_tail;
    if (n * n_stages < kInlineFillWork) {
      for (std::size_t t = 0; t < n_tasks; ++t) run_task(t);
    } else {
      parallel_for(0, n_tasks, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) run_task(t);
      });
    }
    // Fold the stage contributions in stage order — the exact per-sample
    // accumulation order of next() — so the block is bit-identical to
    // stepping for any PTRNG_THREADS. Packs fold through the 4x4
    // transpose kernel, still lowest stage first per sample.
    double* const block = out.data() + offset;
    bool first = true;
    for (std::size_t p = 0; p < n_packs; ++p) {
      fold_pack4(block, scratch_.data() + simd::kLanes * p * n, n, first);
      first = false;
    }
    if (pad_tail) {
      fold_pack4_partial(block, scratch_.data() + simd::kLanes * n_packs * n,
                         n, first, 3);
      first = false;
    }
    for (std::size_t j = 0; j < n_tail; ++j) {
      const double* const zs =
          scratch_.data() + (simd::kLanes * n_vec_packs + j) * n;
      if (first) {
        std::copy(zs, zs + n, block);
        first = false;
      } else {
        for (std::size_t i = 0; i < n; ++i) block[i] += zs[i];
      }
    }
  }
}

const std::vector<FilterBankFlicker::AdvanceTerms>&
FilterBankFlicker::advance_terms(std::size_t k) {
  for (const auto& entry : advance_cache_)
    if (entry.k == k) return entry.terms;
  AdvanceCacheEntry& entry = advance_cache_[advance_cache_next_];
  advance_cache_next_ = (advance_cache_next_ + 1) % advance_cache_.size();
  entry.k = k;
  entry.terms.resize(rho_.size());
  const double kd = static_cast<double>(k);
  for (std::size_t s = 0; s < rho_.size(); ++s) {
    const double rho = rho_[s];
    const double g2 = drive_[s] * drive_[s];
    const double q = std::pow(rho, kd);  // rho^k
    // x_k = q*x_0 + sum_i rho^{k-i} g w_i ;  S = sum_{i=1..k} x_i.
    // Conditional (on x_0) moments, via the precomputed geometric terms:
    const double geo = (1.0 - q) * inv_one_m_rho_[s];  // sum rho^j, j<k
    const double geo2 = (1.0 - q * q) * inv_one_m_rho2_[s];
    const double var_x = g2 * geo2;
    // Cov(S, x_k) = g^2 * [geo - rho*geo2] / (1-rho)
    const double cov = g2 * (geo - rho * geo2) * inv_one_m_rho_[s];
    // Var(S) = g^2 * [k - 2 rho geo + rho^2 geo2] / (1-rho)^2
    const double var_s = g2 * (kd - 2.0 * rho * geo + rho * rho * geo2) *
                         inv_one_m_rho_[s] * inv_one_m_rho_[s];
    AdvanceTerms& t = entry.terms[s];
    t.q = q;
    t.mean_coef = rho * geo;
    t.sd_x = std::sqrt(std::max(0.0, var_x));
    if (t.sd_x > 0.0) {
      t.slope = cov / var_x;
      t.resid_sd = std::sqrt(std::max(0.0, var_s - cov * cov / var_x));
      t.sd_s = 0.0;
    } else {
      t.slope = 0.0;
      t.resid_sd = 0.0;
      t.sd_s = std::sqrt(std::max(0.0, var_s));
    }
  }
  return entry.terms;
}

double FilterBankFlicker::advance_sum(std::size_t k) {
  PTRNG_EXPECTS(k >= 1);
  if (k == 1) return next();
  // The per-stage moment terms depend only on k — memoized (exactly the
  // doubles the inline computation produced, so realized streams are
  // unchanged); the counter path revisits the same few k values per
  // window and paid ~19 std::pow calls each time.
  const auto& terms = advance_terms(k);
  double total = 0.0;
  for (std::size_t s = 0; s < rho_.size(); ++s) {
    const AdvanceTerms& t = terms[s];
    const double z1 = gauss_[s]();
    const double z2 = gauss_[s]();
    const double mean_s = t.mean_coef * state_[s];
    const double x_new = t.q * state_[s] + t.sd_x * z1;
    double sum;
    if (t.sd_x > 0.0) {
      sum = mean_s + t.slope * (t.sd_x * z1) + t.resid_sd * z2;
    } else {
      sum = mean_s + t.sd_s * z2;
    }
    state_[s] = x_new;
    total += sum;
  }
  return total;
}

double FilterBankFlicker::analytic_psd(double f) const {
  PTRNG_EXPECTS(f > 0.0 && f <= fs_ / 2.0);
  double sum = 0.0;
  for (std::size_t k = 0; k < rho_.size(); ++k)
    sum += sigma_[k] * sigma_[k] * stage_psd(rho_[k], fs_, f);
  return sum;
}

double FilterBankFlicker::target_psd(double f) const {
  PTRNG_EXPECTS(f > 0.0);
  return amplitude_ / f;
}

FilterBankFlicker::Config flicker_band_config(double amplitude, double fs,
                                              double f_min, std::uint64_t seed,
                                              unsigned stages_per_decade,
                                              SamplerPolicy sampler) {
  FilterBankFlicker::Config cfg;
  cfg.amplitude = amplitude;
  cfg.fs = fs;
  cfg.f_min = f_min;
  cfg.f_max = fs / 4.0;
  cfg.stages_per_decade = stages_per_decade;
  cfg.seed = seed;
  cfg.sampler = sampler;
  return cfg;
}

FilterBankFlicker::Config flicker_band_config(
    double amplitude, double fs, double f_min, std::uint64_t seed,
    unsigned stages_per_decade, GaussianSampler::Method gauss_method) {
  return flicker_band_config(amplitude, fs, f_min, seed, stages_per_decade,
                             SamplerPolicy{gauss_method});
}

}  // namespace ptrng::noise
