#include "noise/filter_bank.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"

namespace ptrng::noise {

namespace {

/// Two-sided PSD of a unit-variance AR(1) stage with pole rho at rate fs:
/// the stationary process x_n = rho*x_{n-1} + sqrt(1-rho^2)*w_n.
double stage_psd(double rho, double fs, double f) {
  const double omega = constants::two_pi * f / fs;
  const double denom = 1.0 - 2.0 * rho * std::cos(omega) + rho * rho;
  return (1.0 - rho * rho) / (fs * denom);
}

/// Per-stage Gaussian block size of fill(): large enough to amortize the
/// per-block pool dispatch (one parallel_for per block), small enough
/// that the stages x block staging buffer stays modest — 64 KiB per
/// stage, ~1.2 MiB at the default ~19 stages (L2/L3 territory; the
/// Gaussian math, not staging bandwidth, dominates the block time).
constexpr std::size_t kFillBlock = 8192;

}  // namespace

FilterBankFlicker::FilterBankFlicker(const Config& config)
    : fs_(config.fs),
      amplitude_(config.amplitude),
      f_min_(config.f_min),
      f_max_(config.f_max > 0.0 ? config.f_max : config.fs / 4.0) {
  PTRNG_EXPECTS(fs_ > 0.0);
  PTRNG_EXPECTS(amplitude_ >= 0.0);
  PTRNG_EXPECTS(f_min_ > 0.0 && f_max_ > f_min_);
  PTRNG_EXPECTS(f_max_ <= fs_ / 2.0);
  PTRNG_EXPECTS(config.stages_per_decade >= 1);

  // Corner frequencies log-spaced from f_min to f_max.
  const double decades = std::log10(f_max_ / f_min_);
  const auto n_stages = static_cast<std::size_t>(std::ceil(
                            decades * config.stages_per_decade)) + 1;
  rho_.reserve(n_stages);
  for (std::size_t k = 0; k < n_stages; ++k) {
    const double frac = static_cast<double>(k) /
                        static_cast<double>(std::max<std::size_t>(1, n_stages - 1));
    const double fc = f_min_ * std::pow(f_max_ / f_min_, frac);
    rho_.push_back(std::exp(-constants::two_pi * fc / fs_));
  }

  // Calibrate the common stage variance g^2 so that the analytic stage sum
  // matches amplitude/f in least squares over a log grid inside the band.
  const auto grid = logspace(f_min_ * 2.0, f_max_ / 2.0, 64);
  double num = 0.0;
  double den = 0.0;
  for (double f : grid) {
    double sum = 0.0;
    for (double rho : rho_) sum += stage_psd(rho, fs_, f);
    const double target = 1.0 / f;  // shape only; amplitude applied below
    // Fit in log space with equal weights: minimize sum (g2*sum - target)^2
    // / target^2  =>  g2 = sum(sum/target) / sum((sum/target)^2).
    const double ratio = sum / target;
    num += ratio;
    den += ratio * ratio;
  }
  PTRNG_EXPECTS(den > 0.0);
  const double g2 = amplitude_ * num / den;

  sigma_.assign(rho_.size(), std::sqrt(g2));
  drive_.resize(rho_.size());
  inv_one_m_rho_.resize(rho_.size());
  inv_one_m_rho2_.resize(rho_.size());
  for (std::size_t k = 0; k < rho_.size(); ++k) {
    const double rho = rho_[k];
    drive_[k] = sigma_[k] * std::sqrt(1.0 - rho * rho);
    inv_one_m_rho_[k] = 1.0 / (1.0 - rho);
    inv_one_m_rho2_[k] = 1.0 / (1.0 - rho * rho);
  }

  // One decorrelated stream per stage; each stage starts in its
  // stationary distribution drawn from its own stream.
  gauss_.reserve(rho_.size());
  state_.resize(rho_.size());
  const auto gauss_method = resolved_sampler(config).gauss_method;
  for (std::size_t k = 0; k < rho_.size(); ++k) {
    gauss_.emplace_back(chunk_seed(config.seed, k), gauss_method);
    state_[k] = gauss_[k](0.0, sigma_[k]);
  }
}

double FilterBankFlicker::next() {
  double sum = 0.0;
  for (std::size_t k = 0; k < rho_.size(); ++k) {
    state_[k] = rho_[k] * state_[k] + drive_[k] * gauss_[k]();
    sum += state_[k];
  }
  return sum;
}

void FilterBankFlicker::fill(std::span<double> out) {
  const std::size_t n_stages = rho_.size();
  for (std::size_t offset = 0; offset < out.size(); offset += kFillBlock) {
    const std::size_t n = std::min(kFillBlock, out.size() - offset);
    scratch_.resize(n_stages * n);
    // The per-stage AR(1) recurrences are fully independent (private
    // stream, private state): one stage per task on the common pool.
    // Each stage draws its Gaussian batch in one gauss_[s].fill and runs
    // its recurrence in place over a private staging slice.
    parallel_for(0, n_stages, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        double* const zs = scratch_.data() + s * n;
        gauss_[s].fill({zs, n});
        const double rho = rho_[s];
        const double drive = drive_[s];
        double x = state_[s];
        for (std::size_t i = 0; i < n; ++i) {
          x = rho * x + drive * zs[i];
          zs[i] = x;
        }
        state_[s] = x;
      }
    });
    // Fold the stage contributions in stage order — the exact per-sample
    // accumulation order of next() — so the block is bit-identical to
    // stepping for any PTRNG_THREADS.
    double* const block = out.data() + offset;
    std::copy(scratch_.data(), scratch_.data() + n, block);
    for (std::size_t s = 1; s < n_stages; ++s) {
      const double* const zs = scratch_.data() + s * n;
      for (std::size_t i = 0; i < n; ++i) block[i] += zs[i];
    }
  }
}

double FilterBankFlicker::advance_sum(std::size_t k) {
  PTRNG_EXPECTS(k >= 1);
  if (k == 1) return next();
  double total = 0.0;
  const double kd = static_cast<double>(k);
  for (std::size_t s = 0; s < rho_.size(); ++s) {
    const double rho = rho_[s];
    const double g2 = drive_[s] * drive_[s];
    const double q = std::pow(rho, kd);  // rho^k
    // x_k = q*x_0 + sum_i rho^{k-i} g w_i ;  S = sum_{i=1..k} x_i.
    // Conditional (on x_0) moments, via the precomputed geometric terms:
    const double geo = (1.0 - q) * inv_one_m_rho_[s];       // sum rho^j, j<k
    const double geo2 = (1.0 - q * q) * inv_one_m_rho2_[s];
    const double var_x = g2 * geo2;
    const double mean_s = rho * geo * state_[s];
    // Cov(S, x_k) = g^2 * [geo - rho*geo2] / (1-rho)
    const double cov = g2 * (geo - rho * geo2) * inv_one_m_rho_[s];
    // Var(S) = g^2 * [k - 2 rho geo + rho^2 geo2] / (1-rho)^2
    const double var_s = g2 * (kd - 2.0 * rho * geo + rho * rho * geo2) *
                         inv_one_m_rho_[s] * inv_one_m_rho_[s];

    const double z1 = gauss_[s]();
    const double z2 = gauss_[s]();
    const double sd_x = std::sqrt(std::max(0.0, var_x));
    const double x_new = q * state_[s] + sd_x * z1;
    double sum;
    if (sd_x > 0.0) {
      const double slope = cov / var_x;
      const double resid = std::max(0.0, var_s - cov * cov / var_x);
      sum = mean_s + slope * (sd_x * z1) + std::sqrt(resid) * z2;
    } else {
      sum = mean_s + std::sqrt(std::max(0.0, var_s)) * z2;
    }
    state_[s] = x_new;
    total += sum;
  }
  return total;
}

double FilterBankFlicker::analytic_psd(double f) const {
  PTRNG_EXPECTS(f > 0.0 && f <= fs_ / 2.0);
  double sum = 0.0;
  for (std::size_t k = 0; k < rho_.size(); ++k)
    sum += sigma_[k] * sigma_[k] * stage_psd(rho_[k], fs_, f);
  return sum;
}

double FilterBankFlicker::target_psd(double f) const {
  PTRNG_EXPECTS(f > 0.0);
  return amplitude_ / f;
}

FilterBankFlicker::Config flicker_band_config(double amplitude, double fs,
                                              double f_min, std::uint64_t seed,
                                              unsigned stages_per_decade,
                                              SamplerPolicy sampler) {
  FilterBankFlicker::Config cfg;
  cfg.amplitude = amplitude;
  cfg.fs = fs;
  cfg.f_min = f_min;
  cfg.f_max = fs / 4.0;
  cfg.stages_per_decade = stages_per_decade;
  cfg.seed = seed;
  cfg.sampler = sampler;
  return cfg;
}

FilterBankFlicker::Config flicker_band_config(
    double amplitude, double fs, double f_min, std::uint64_t seed,
    unsigned stages_per_decade, GaussianSampler::Method gauss_method) {
  return flicker_band_config(amplitude, fs, f_min, seed, stages_per_decade,
                             SamplerPolicy{gauss_method});
}

}  // namespace ptrng::noise
