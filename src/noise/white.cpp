#include "noise/white.hpp"

#include "common/contracts.hpp"

namespace ptrng::noise {

WhiteGaussianNoise::WhiteGaussianNoise(double sigma, double fs,
                                       std::uint64_t seed,
                                       SamplerPolicy sampler)
    : sigma_(sigma), fs_(fs), gauss_(seed, sampler.gauss_method) {
  PTRNG_EXPECTS(sigma >= 0.0);
  PTRNG_EXPECTS(fs > 0.0);
}

WhiteGaussianNoise::WhiteGaussianNoise(double sigma, double fs,
                                       std::uint64_t seed,
                                       GaussianSampler::Method method)
    : WhiteGaussianNoise(sigma, fs, seed, SamplerPolicy{method}) {}

}  // namespace ptrng::noise
