#include "noise/white.hpp"

#include "common/contracts.hpp"

namespace ptrng::noise {

WhiteGaussianNoise::WhiteGaussianNoise(double sigma, double fs,
                                       std::uint64_t seed,
                                       GaussianSampler::Method method)
    : sigma_(sigma), fs_(fs), gauss_(seed, method) {
  PTRNG_EXPECTS(sigma >= 0.0);
  PTRNG_EXPECTS(fs > 0.0);
}

}  // namespace ptrng::noise
