#include "noise/kasdin.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "fft/fft.hpp"

namespace ptrng::noise {

KasdinFlicker::KasdinFlicker(const Config& config)
    : alpha_(config.alpha),
      sigma_w_(config.sigma_w),
      fs_(config.fs),
      block_(config.block),
      gauss_(config.seed) {
  PTRNG_EXPECTS(alpha_ > 0.0 && alpha_ <= 2.0);
  PTRNG_EXPECTS(sigma_w_ >= 0.0);
  PTRNG_EXPECTS(fs_ > 0.0);
  PTRNG_EXPECTS(config.fir_length >= 16);
  PTRNG_EXPECTS(block_ >= 16);

  // Kasdin's recursion for the impulse response of (1-z^{-1})^{-alpha/2}:
  //   h_0 = 1;  h_k = h_{k-1} * (k - 1 + alpha/2) / k
  h_.resize(config.fir_length);
  h_[0] = 1.0;
  for (std::size_t k = 1; k < h_.size(); ++k)
    h_[k] = h_[k - 1] *
            (static_cast<double>(k) - 1.0 + alpha_ / 2.0) /
            static_cast<double>(k);

  history_.assign(h_.size() - 1, 0.0);
  // Prime the history with white noise so the process starts "aged" by one
  // full filter memory instead of at the zero state.
  for (auto& x : history_) x = sigma_w_ * gauss_();
}

void KasdinFlicker::generate_block() {
  // Overlap-save convolution: input = [history | fresh white], output keeps
  // only the fully-overlapped part (length = block_).
  const std::size_t l = h_.size();
  const std::size_t n = next_pow2(l - 1 + block_);

  std::vector<std::complex<double>> sig(n);
  for (std::size_t i = 0; i < l - 1; ++i) sig[i] = history_[i];
  std::vector<double> fresh(block_);
  for (auto& x : fresh) x = sigma_w_ * gauss_();
  for (std::size_t i = 0; i < block_; ++i) sig[l - 1 + i] = fresh[i];

  std::vector<std::complex<double>> ker(n);
  for (std::size_t i = 0; i < l; ++i) ker[i] = h_[i];

  fft::transform(sig, false);
  fft::transform(ker, false);
  for (std::size_t i = 0; i < n; ++i) sig[i] *= ker[i];
  auto out = fft::ifft(std::move(sig));

  ready_.resize(block_);
  for (std::size_t i = 0; i < block_; ++i)
    ready_[i] = out[l - 1 + i].real();
  read_pos_ = 0;

  // New history = last l-1 inputs of this block (pad from old history when
  // the block is shorter than the filter memory).
  if (block_ >= l - 1) {
    std::copy(fresh.end() - static_cast<std::ptrdiff_t>(l - 1), fresh.end(),
              history_.begin());
  } else {
    std::rotate(history_.begin(),
                history_.begin() + static_cast<std::ptrdiff_t>(block_),
                history_.end());
    std::copy(fresh.begin(), fresh.end(),
              history_.end() - static_cast<std::ptrdiff_t>(block_));
  }
}

double KasdinFlicker::next() {
  if (read_pos_ >= ready_.size()) generate_block();
  return ready_[read_pos_++];
}

void KasdinFlicker::fill(std::span<double> out) {
  for (auto& x : out) x = next();
}

double KasdinFlicker::analytic_psd(double f) const {
  PTRNG_EXPECTS(f > 0.0 && f <= fs_ / 2.0);
  const double s = 2.0 * std::sin(constants::pi * f / fs_);
  return sigma_w_ * sigma_w_ / fs_ * std::pow(s, -alpha_);
}

double KasdinFlicker::sigma_w_for_amplitude(double amplitude) {
  PTRNG_EXPECTS(amplitude >= 0.0);
  return std::sqrt(constants::two_pi * amplitude);
}

}  // namespace ptrng::noise
