#include "noise/kasdin.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "fft/fft.hpp"

namespace ptrng::noise {

KasdinFlicker::KasdinFlicker(const Config& config)
    : alpha_(config.alpha),
      sigma_w_(config.sigma_w),
      fs_(config.fs),
      block_(config.block),
      gauss_(config.seed, resolved_sampler(config).gauss_method) {
  PTRNG_EXPECTS(alpha_ > 0.0 && alpha_ <= 2.0);
  PTRNG_EXPECTS(sigma_w_ >= 0.0);
  PTRNG_EXPECTS(fs_ > 0.0);
  PTRNG_EXPECTS(config.fir_length >= 16);
  PTRNG_EXPECTS(block_ >= 16);

  // Kasdin's recursion for the impulse response of (1-z^{-1})^{-alpha/2}:
  //   h_0 = 1;  h_k = h_{k-1} * (k - 1 + alpha/2) / k
  h_.resize(config.fir_length);
  h_[0] = 1.0;
  for (std::size_t k = 1; k < h_.size(); ++k)
    h_[k] = h_[k - 1] *
            (static_cast<double>(k) - 1.0 + alpha_ / 2.0) /
            static_cast<double>(k);

  // FFT of the zero-padded kernel, shared by every block convolution.
  const std::size_t n = next_pow2(h_.size() - 1 + block_);
  ker_fft_.assign(n, 0.0);
  for (std::size_t i = 0; i < h_.size(); ++i) ker_fft_[i] = h_[i];
  fft::transform(ker_fft_, false);

  history_.assign(h_.size() - 1, 0.0);
  // Prime the history with white noise so the process starts "aged" by one
  // full filter memory instead of at the zero state.
  for (auto& x : history_) x = sigma_w_ * gauss_();
}

void KasdinFlicker::convolve_segment(std::span<const double> in,
                                     std::span<double> out) const {
  const std::size_t l = h_.size();
  const std::size_t n = ker_fft_.size();
  PTRNG_EXPECTS(in.size() == l - 1 + out.size() && out.size() <= block_);

  std::vector<std::complex<double>> sig(n);
  for (std::size_t i = 0; i < in.size(); ++i) sig[i] = in[i];
  fft::transform(sig, false);
  for (std::size_t i = 0; i < n; ++i) sig[i] *= ker_fft_[i];
  const auto res = fft::ifft(std::move(sig));
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = res[l - 1 + i].real();
}

void KasdinFlicker::generate_block() {
  // Overlap-save convolution: input = [history | fresh white], output keeps
  // only the fully-overlapped part (length = block_).
  const std::size_t l = h_.size();

  std::vector<double> input(l - 1 + block_);
  std::copy(history_.begin(), history_.end(), input.begin());
  for (std::size_t i = 0; i < block_; ++i)
    input[l - 1 + i] = sigma_w_ * gauss_();

  ready_.resize(block_);
  convolve_segment(input, ready_);
  read_pos_ = 0;

  // New history = last l-1 inputs (works for both block_ >= l-1 and the
  // short-block case, since `input` starts with the old history).
  std::copy(input.end() - static_cast<std::ptrdiff_t>(l - 1), input.end(),
            history_.begin());
}

double KasdinFlicker::next() {
  if (read_pos_ >= ready_.size()) generate_block();
  return ready_[read_pos_++];
}

void KasdinFlicker::fill(std::span<double> out) {
  // Drain whatever the FIFO still holds so the stream position matches
  // what a sequence of next() calls would see.
  std::size_t i = 0;
  while (read_pos_ < ready_.size() && i < out.size())
    out[i++] = ready_[read_pos_++];

  // Fast path: convolve whole blocks straight into `out`, bypassing the
  // FIFO. All white inputs of a round are drawn sequentially up front
  // (identical order to the block-by-block recursion), which makes the
  // per-block convolutions data-independent — they fan out across the
  // pool and the result is bit-identical for any PTRNG_THREADS. Rounds
  // are capped at kMaxBatch blocks so the staging buffer stays bounded
  // instead of doubling the working set of a multi-million-sample fill.
  constexpr std::size_t kMaxBatch = 64;
  const std::size_t l = h_.size();
  std::size_t whole = (out.size() - i) / block_;
  while (whole != 0) {
    const std::size_t batch = std::min(whole, kMaxBatch);
    const std::size_t total = batch * block_;
    std::vector<double> input(l - 1 + total);
    std::copy(history_.begin(), history_.end(), input.begin());
    for (std::size_t j = 0; j < total; ++j)
      input[l - 1 + j] = sigma_w_ * gauss_();

    double* const base = out.data() + i;
    parallel_for(0, batch, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t k = b; k < e; ++k)
        convolve_segment(
            std::span<const double>(input.data() + k * block_, l - 1 + block_),
            std::span<double>(base + k * block_, block_));
    });

    std::copy(input.end() - static_cast<std::ptrdiff_t>(l - 1), input.end(),
              history_.begin());
    i += total;
    whole -= batch;
  }

  // Tail shorter than one block: let the FIFO machinery handle it.
  for (; i < out.size(); ++i) out[i] = next();
}

double KasdinFlicker::analytic_psd(double f) const {
  PTRNG_EXPECTS(f > 0.0 && f <= fs_ / 2.0);
  const double s = 2.0 * std::sin(constants::pi * f / fs_);
  return sigma_w_ * sigma_w_ / fs_ * std::pow(s, -alpha_);
}

double KasdinFlicker::sigma_w_for_amplitude(double amplitude) {
  PTRNG_EXPECTS(amplitude >= 0.0);
  return std::sqrt(constants::two_pi * amplitude);
}

}  // namespace ptrng::noise
