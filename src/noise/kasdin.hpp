// Kasdin–Walter 1/f^alpha noise: white noise filtered by the fractional
// integrator (1 - z^{-1})^{-alpha/2}, truncated to a finite impulse
// response. Reference-quality spectra (exact discrete PSD known in closed
// form); generation is block-based via FFT overlap-save so long streams
// stay O(log L) per sample amortized.
//
// Exact two-sided PSD: sigma_w^2 / fs * (2*sin(pi*f/fs))^{-alpha}.
// For alpha = 1 and f << fs this is sigma_w^2/(2*pi*f), so a target
// two-sided PSD A/f needs sigma_w^2 = 2*pi*A.
#pragma once

#include <complex>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "noise/noise_source.hpp"
#include "noise/sampler_policy.hpp"

namespace ptrng::noise {

/// Streaming 1/f^alpha generator (0 < alpha <= 2).
class KasdinFlicker final : public NoiseSource {
 public:
  // Suppression covers the struct definition only (implicit-ctor NSDMI
  // use of the deprecated alias); callsite writes still warn.
  PTRNG_SUPPRESS_DEPRECATED_BEGIN
  struct Config {
    double alpha = 1.0;        ///< spectral exponent of 1/f^alpha
    double sigma_w = 1.0;      ///< driving white-noise stddev
    double fs = 1.0;           ///< sample rate [Hz]
    std::size_t fir_length = 1 << 14;  ///< impulse-response truncation
    std::size_t block = 1 << 13;       ///< generation block size
    std::uint64_t seed = 0x4a5d17;
    /// Sampler policy for the driving white noise (§5 "Sampler
    /// policy"); Polar reproduces the pre-PR-5 streams bit-for-bit.
    SamplerPolicy sampler{};
    /// Pre-PR-7 alias of sampler.gauss_method; wins over `sampler` when
    /// explicitly set (resolved_sampler).
    [[deprecated("set sampler.gauss_method (noise/sampler_policy.hpp)")]]
    std::optional<GaussianSampler::Method> gauss_method{};
  };
  PTRNG_SUPPRESS_DEPRECATED_END

  explicit KasdinFlicker(const Config& config);

  double next() override;

  /// Batched generation: drains the FIFO remainder, then convolves whole
  /// blocks directly into `out` (in bounded rounds of at most 64 blocks)
  /// with the per-block overlap-save FFTs split across the global thread
  /// pool. The white inputs of each round are drawn sequentially first,
  /// so the output stream is sample-for-sample identical to repeated
  /// next() calls, for any thread count.
  void fill(std::span<double> out) override;
  [[nodiscard]] double sample_rate() const override { return fs_; }

  /// Exact discrete-time two-sided PSD of the *untruncated* filter.
  [[nodiscard]] double analytic_psd(double f) const;

  /// The driving variance needed so the alpha=1 PSD equals amplitude/f.
  [[nodiscard]] static double sigma_w_for_amplitude(double amplitude);

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::size_t fir_length() const noexcept { return h_.size(); }

 private:
  void generate_block();
  /// Overlap-save convolution of one segment: `in` holds the last
  /// fir_length-1 inputs followed by out.size() fresh ones; writes the
  /// fully-overlapped part. Thread-safe (reads only h_/ker_fft_).
  void convolve_segment(std::span<const double> in,
                        std::span<double> out) const;

  double alpha_;
  double sigma_w_;
  double fs_;
  std::size_t block_;
  std::vector<double> h_;        ///< truncated impulse response
  std::vector<std::complex<double>> ker_fft_;  ///< FFT of h_, padded
  std::vector<double> history_;  ///< last fir_length-1 white inputs
  std::vector<double> ready_;    ///< generated output queue (FIFO)
  std::size_t read_pos_ = 0;
  GaussianSampler gauss_;
};

}  // namespace ptrng::noise
