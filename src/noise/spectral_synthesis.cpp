#include "noise/spectral_synthesis.hpp"

#include <cmath>
#include <complex>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

namespace ptrng::noise {

std::vector<double> synthesize_from_psd(
    const std::function<double(double)>& psd_two_sided, double fs,
    std::size_t n, std::uint64_t seed, GaussianSampler::Method method) {
  return synthesize_from_psd(psd_two_sided, fs, n, seed,
                             SamplerPolicy{method});
}

std::vector<double> synthesize_from_psd(
    const std::function<double(double)>& psd_two_sided, double fs,
    std::size_t n, std::uint64_t seed, SamplerPolicy sampler) {
  PTRNG_EXPECTS(fs > 0.0);
  PTRNG_EXPECTS(n >= 8);
  const std::size_t size = next_pow2(n);
  const double df = fs / static_cast<double>(size);

  GaussianSampler gauss(seed, sampler.gauss_method);
  std::vector<std::complex<double>> spec(size);
  spec[0] = 0.0;  // zero-mean output
  // Periodogram convention: E|X_k|^2 = S_two(f_k) * N * fs.
  for (std::size_t k = 1; k < size / 2; ++k) {
    const double f = df * static_cast<double>(k);
    const double s = psd_two_sided(f);
    PTRNG_EXPECTS(s >= 0.0);
    const double mag = std::sqrt(s * static_cast<double>(size) * fs / 2.0);
    spec[k] = std::complex<double>(mag * gauss(), mag * gauss());
    spec[size - k] = std::conj(spec[k]);
  }
  {
    const double f_nyq = fs / 2.0;
    const double s = psd_two_sided(f_nyq);
    spec[size / 2] =
        std::sqrt(s * static_cast<double>(size) * fs) * gauss();
  }

  auto x = fft::ifft(std::move(spec));
  std::vector<double> out(size);
  for (std::size_t i = 0; i < size; ++i) out[i] = x[i].real();
  out.resize(size);
  return out;
}

}  // namespace ptrng::noise
