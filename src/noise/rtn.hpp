// Random telegraph noise (RTN): the microscopic origin of flicker noise in
// MOS transistors — individual oxide traps capture/emit carriers, each
// producing a two-state ("burst") process with a Lorentzian PSD. A
// superposition of traps whose rates are log-uniformly distributed yields
// the familiar 1/f spectrum (McWhorter model). Included both as a
// physically-grounded flicker generator and as an ablation subject.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "noise/noise_source.hpp"

namespace ptrng::noise {

/// A single symmetric two-state trap: output +-amplitude, switching with
/// rate lambda [1/s] in each direction (sampled at fs).
/// Autocorrelation a^2*exp(-2*lambda*|tau|); two-sided PSD
/// a^2*lambda / (lambda^2 + pi^2 f^2).
class RandomTelegraphNoise final : public NoiseSource {
 public:
  RandomTelegraphNoise(double amplitude, double lambda, double fs,
                       std::uint64_t seed);

  double next() override;
  [[nodiscard]] double sample_rate() const override { return fs_; }

  /// Analytic two-sided PSD of the continuous-time RTN.
  [[nodiscard]] double analytic_psd(double f) const;

  [[nodiscard]] double amplitude() const noexcept { return amplitude_; }
  [[nodiscard]] double lambda() const noexcept { return lambda_; }

 private:
  double amplitude_;
  double lambda_;
  double fs_;
  double p_flip_;  ///< per-sample flip probability 1 - exp(-lambda/fs)
  int state_;      ///< +1 or -1
  Xoshiro256pp rng_;
};

/// McWhorter superposition: `traps` RTNs with rates log-uniform in
/// [lambda_min, lambda_max] and equal amplitudes; PSD approximates c/f for
/// lambda_min << pi*f << lambda_max.
class RtnSuperposition final : public NoiseSource {
 public:
  struct Config {
    std::size_t traps = 24;
    double lambda_min = 1.0;   ///< slowest trap rate [1/s]
    double lambda_max = 1e6;   ///< fastest trap rate [1/s]
    double amplitude = 1.0;    ///< per-trap amplitude
    double fs = 1.0;
    std::uint64_t seed = 0x7a9b3;
  };

  explicit RtnSuperposition(const Config& config);

  double next() override;
  [[nodiscard]] double sample_rate() const override { return fs_; }

  /// Sum of the trap Lorentzians (exact for the continuous-time process).
  [[nodiscard]] double analytic_psd(double f) const;

  [[nodiscard]] std::size_t trap_count() const noexcept {
    return traps_.size();
  }

 private:
  double fs_;
  std::vector<RandomTelegraphNoise> traps_;
};

}  // namespace ptrng::noise
