// Voss–McCartney pink-noise generator: one of the oldest 1/f algorithms
// (update one of log2(N) white generators per sample by trailing-zero
// count). Cheap and popular, but its PSD is a stair-step approximation —
// kept as an ablation baseline against the calibrated generators.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "noise/noise_source.hpp"
#include "noise/sampler_policy.hpp"

namespace ptrng::noise {

/// Classic Voss–McCartney pink noise with `rows` octave generators.
class VossMcCartney final : public NoiseSource {
 public:
  /// `sampler` selects the sampler policy (docs/ARCHITECTURE.md §5
  /// "Sampler policy"); Polar reproduces the pre-PR-5 streams.
  VossMcCartney(std::size_t rows, double fs, std::uint64_t seed,
                SamplerPolicy sampler = {});

  /// Pre-PR-7 overload; identical streams for the same gauss_method.
  [[deprecated("pass a noise::SamplerPolicy")]]
  VossMcCartney(std::size_t rows, double fs, std::uint64_t seed,
                GaussianSampler::Method method);

  double next() override;
  [[nodiscard]] double sample_rate() const override { return fs_; }
  [[nodiscard]] std::size_t rows() const noexcept { return values_.size(); }

 private:
  double fs_;
  std::vector<double> values_;
  std::uint64_t counter_ = 0;
  GaussianSampler gauss_;
  double white_ = 0.0;
  double running_sum_ = 0.0;
};

}  // namespace ptrng::noise
