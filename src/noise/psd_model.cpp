#include "noise/psd_model.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace ptrng::noise {

void PowerLawPsd::add_term(double coefficient, double exponent,
                           std::string label) {
  PTRNG_EXPECTS(coefficient >= 0.0);
  terms_.push_back({coefficient, exponent, std::move(label)});
}

double PowerLawPsd::operator()(double f) const {
  PTRNG_EXPECTS(f > 0.0);
  double sum = 0.0;
  for (const auto& term : terms_)
    sum += term.coefficient * std::pow(f, term.exponent);
  return sum;
}

double PowerLawPsd::coefficient(double exponent) const {
  double sum = 0.0;
  for (const auto& term : terms_)
    if (term.exponent == exponent) sum += term.coefficient;
  return sum;
}

PowerLawPsd PowerLawPsd::as(Sidedness target) const {
  if (target == sidedness_) return *this;
  // one-sided = 2 x two-sided at the same positive frequency.
  const double factor = (target == Sidedness::one_sided) ? 2.0 : 0.5;
  PowerLawPsd out(target);
  for (const auto& term : terms_)
    out.add_term(term.coefficient * factor, term.exponent, term.label);
  return out;
}

}  // namespace ptrng::noise
