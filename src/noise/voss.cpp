#include "noise/voss.hpp"

#include <bit>

#include "common/contracts.hpp"

namespace ptrng::noise {

VossMcCartney::VossMcCartney(std::size_t rows, double fs, std::uint64_t seed,
                             SamplerPolicy sampler)
    : fs_(fs), values_(rows, 0.0), gauss_(seed, sampler.gauss_method) {
  PTRNG_EXPECTS(rows >= 1 && rows <= 48);
  PTRNG_EXPECTS(fs > 0.0);
  for (auto& v : values_) {
    v = gauss_();
    running_sum_ += v;
  }
}

VossMcCartney::VossMcCartney(std::size_t rows, double fs, std::uint64_t seed,
                             GaussianSampler::Method method)
    : VossMcCartney(rows, fs, seed, SamplerPolicy{method}) {}

double VossMcCartney::next() {
  ++counter_;
  const auto tz = static_cast<std::size_t>(std::countr_zero(counter_));
  if (tz < values_.size()) {
    running_sum_ -= values_[tz];
    values_[tz] = gauss_();
    running_sum_ += values_[tz];
  }
  white_ = gauss_();
  return running_sum_ + white_;
}

}  // namespace ptrng::noise
