// Batch noise synthesis from an arbitrary target PSD: shape complex white
// noise in the frequency domain and inverse-FFT. Produces one periodic
// realization — ideal for validating estimators against a *known* spectrum
// and for generating phase processes with exotic PSDs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "noise/sampler_policy.hpp"

namespace ptrng::noise {

/// Generates n samples (n rounded up to a power of two) of a real,
/// zero-mean Gaussian process whose two-sided PSD is `psd_two_sided(f)`
/// [unit^2/Hz], sampled at fs. The DC bin is zeroed. `sampler` selects
/// the sampler policy (docs/ARCHITECTURE.md §5 "Sampler policy");
/// Polar reproduces the pre-PR-5 realizations.
[[nodiscard]] std::vector<double> synthesize_from_psd(
    const std::function<double(double)>& psd_two_sided, double fs,
    std::size_t n, std::uint64_t seed, SamplerPolicy sampler = {});

/// Pre-PR-7 overload; identical realizations for the same gauss_method.
[[deprecated("pass a noise::SamplerPolicy")]] [[nodiscard]]
std::vector<double> synthesize_from_psd(
    const std::function<double(double)>& psd_two_sided, double fs,
    std::size_t n, std::uint64_t seed, GaussianSampler::Method method);

}  // namespace ptrng::noise
