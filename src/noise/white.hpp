// White Gaussian noise — the discrete-time image of thermal (Johnson)
// noise. Two-sided PSD: sigma^2 / fs, flat over [-fs/2, fs/2].
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "noise/noise_source.hpp"
#include "noise/sampler_policy.hpp"

namespace ptrng::noise {

/// iid N(0, sigma^2) samples at rate fs.
class WhiteGaussianNoise final : public NoiseSource {
 public:
  /// sigma: per-sample standard deviation; fs: sample rate [Hz].
  /// `sampler` selects the sampler policy (docs/ARCHITECTURE.md §5
  /// "Sampler policy"); Polar reproduces the pre-PR-5 streams.
  WhiteGaussianNoise(double sigma, double fs, std::uint64_t seed,
                     SamplerPolicy sampler = {});

  /// Pre-PR-7 overload; identical streams for the same gauss_method.
  [[deprecated("pass a noise::SamplerPolicy")]]
  WhiteGaussianNoise(double sigma, double fs, std::uint64_t seed,
                     GaussianSampler::Method method);

  double next() override { return sigma_ * gauss_(); }

  /// Batched fast path: same stream as next(), minus the per-sample
  /// virtual dispatch (iid draws, so batching is trivially bit-identical).
  void fill(std::span<double> out) override {
    for (auto& x : out) x = sigma_ * gauss_();
  }

  [[nodiscard]] double sample_rate() const override { return fs_; }

  /// Per-sample standard deviation.
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  /// Two-sided PSD level (constant in f): sigma^2/fs.
  [[nodiscard]] double psd_two_sided() const noexcept {
    return sigma_ * sigma_ / fs_;
  }

 private:
  double sigma_;
  double fs_;
  GaussianSampler gauss_;
};

}  // namespace ptrng::noise
