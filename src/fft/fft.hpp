// Self-contained FFT: iterative radix-2 Cooley–Tukey for power-of-two sizes,
// with a real-input convenience wrapper. Used by the PSD estimators and the
// FFT-based autocorrelation in ptrng_stats.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace ptrng::fft {

/// In-place complex FFT. `data.size()` must be a power of two (>= 1).
/// `inverse == true` computes the unscaled inverse transform; divide by N
/// yourself if you need the normalized inverse (or use ifft()).
void transform(std::span<std::complex<double>> data, bool inverse);

/// Forward FFT of a complex vector (copies, size must be a power of two).
[[nodiscard]] std::vector<std::complex<double>> fft(
    std::vector<std::complex<double>> data);

/// Normalized inverse FFT (divides by N).
[[nodiscard]] std::vector<std::complex<double>> ifft(
    std::vector<std::complex<double>> data);

/// FFT of a real signal zero-padded to the next power of two >= min_size.
/// Returns the full complex spectrum (length = padded size).
[[nodiscard]] std::vector<std::complex<double>> rfft_padded(
    std::span<const double> signal, std::size_t min_size = 0);

/// Circular autocorrelation of `signal` via FFT, returned for lags
/// 0..max_lag. The signal is zero-padded to at least 2N so the circular
/// wrap-around does not alias (i.e. this computes the *linear* correlation
/// sum sum_t x[t]*x[t+lag], unnormalized).
[[nodiscard]] std::vector<double> autocorrelation_raw(
    std::span<const double> signal, std::size_t max_lag);

}  // namespace ptrng::fft
