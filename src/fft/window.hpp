// Tapering windows for spectral estimation (Welch/periodogram).
#pragma once

#include <string>
#include <vector>

namespace ptrng::fft {

/// Supported taper shapes.
enum class WindowKind {
  rectangular,  ///< no taper (max leakage, min main-lobe width)
  hann,         ///< raised cosine — the Welch default here
  hamming,      ///< optimized first sidelobe
  blackman,     ///< 3-term, low sidelobes
  flat_top      ///< amplitude-accurate, very wide main lobe
};

/// Window coefficients of the given length (periodic convention, suitable
/// for spectral averaging).
[[nodiscard]] std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Sum of squared coefficients — the power normalization factor used by PSD
/// estimators (equals n for the rectangular window).
[[nodiscard]] double window_power(const std::vector<double>& w);

/// Human-readable name (for bench output).
[[nodiscard]] std::string to_string(WindowKind kind);

}  // namespace ptrng::fft
