#include "fft/window.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::fft {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  PTRNG_EXPECTS(n >= 1);
  std::vector<double> w(n, 1.0);
  const double denom = static_cast<double>(n);  // periodic convention
  auto cos_term = [&](std::size_t i, double harmonics) {
    return std::cos(constants::two_pi * harmonics * static_cast<double>(i) /
                    denom);
  };
  switch (kind) {
    case WindowKind::rectangular:
      break;
    case WindowKind::hann:
      for (std::size_t i = 0; i < n; ++i) w[i] = 0.5 - 0.5 * cos_term(i, 1);
      break;
    case WindowKind::hamming:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.54 - 0.46 * cos_term(i, 1);
      break;
    case WindowKind::blackman:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.42 - 0.5 * cos_term(i, 1) + 0.08 * cos_term(i, 2);
      break;
    case WindowKind::flat_top:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.21557895 - 0.41663158 * cos_term(i, 1) +
               0.277263158 * cos_term(i, 2) - 0.083578947 * cos_term(i, 3) +
               0.006947368 * cos_term(i, 4);
      break;
  }
  return w;
}

double window_power(const std::vector<double>& w) {
  double s = 0.0;
  for (double x : w) s += x * x;
  return s;
}

std::string to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::rectangular: return "rectangular";
    case WindowKind::hann: return "hann";
    case WindowKind::hamming: return "hamming";
    case WindowKind::blackman: return "blackman";
    case WindowKind::flat_top: return "flat_top";
  }
  return "unknown";
}

}  // namespace ptrng::fft
