#include "fft/fft.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::fft {

namespace {
bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

void transform(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  PTRNG_EXPECTS(is_pow2(n));
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies, stage by stage, with recurrence-based twiddles.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 1.0 : -1.0) * constants::two_pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<std::complex<double>> fft(std::vector<std::complex<double>> data) {
  transform(data, /*inverse=*/false);
  return data;
}

std::vector<std::complex<double>> ifft(std::vector<std::complex<double>> data) {
  transform(data, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (auto& c : data) c *= scale;
  return data;
}

std::vector<std::complex<double>> rfft_padded(std::span<const double> signal,
                                              std::size_t min_size) {
  const std::size_t n = next_pow2(std::max(signal.size(), min_size));
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < signal.size(); ++i) buf[i] = signal[i];
  transform(buf, /*inverse=*/false);
  return buf;
}

std::vector<double> autocorrelation_raw(std::span<const double> signal,
                                        std::size_t max_lag) {
  PTRNG_EXPECTS(!signal.empty());
  PTRNG_EXPECTS(max_lag < signal.size());
  // Pad to >= 2N so the circular correlation equals the linear one.
  auto spectrum = rfft_padded(signal, 2 * signal.size());
  for (auto& c : spectrum) c = c * std::conj(c);
  auto corr = ifft(std::move(spectrum));
  std::vector<double> out(max_lag + 1);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) out[lag] = corr[lag].real();
  return out;
}

}  // namespace ptrng::fft
