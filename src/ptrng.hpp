// Umbrella header: includes every public module header of the ptrng
// library and documents each module namespace in one place (the
// per-header comments describe files, the namespace docs live here).
// See docs/ARCHITECTURE.md for the layer diagram and conventions.
#pragma once

/// \namespace ptrng
/// Root namespace: reproducible RNG, contracts, error hierarchy, math
/// helpers and table output shared by every module.
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "common/simd.hpp"
#include "common/spmc_ring.hpp"
#include "common/table.hpp"
#include "common/ziggurat.hpp"

/// \namespace ptrng::fft
/// Radix-2 FFT and window functions backing the spectral estimators.
#include "fft/fft.hpp"
#include "fft/window.hpp"

/// \namespace ptrng::stats
/// Statistical machinery: descriptive statistics, Allan-variance family,
/// Bienaymé linearity sweep, Welch PSD estimation, autocorrelation,
/// normality and hypothesis tests, special functions, regression.
#include "stats/allan.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/bienayme.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "stats/normality.hpp"
#include "stats/psd.hpp"
#include "stats/regression.hpp"
#include "stats/special.hpp"

/// \namespace ptrng::noise
/// Streaming noise processes: white, 1/f^alpha (Kasdin, Voss–McCartney,
/// filter bank, spectral synthesis), random telegraph noise, and the
/// sidedness-aware power-law PSD bookkeeping.
#include "noise/filter_bank.hpp"
#include "noise/kasdin.hpp"
#include "noise/noise_source.hpp"
#include "noise/psd_model.hpp"
#include "noise/rtn.hpp"
#include "noise/spectral_synthesis.hpp"
#include "noise/voss.hpp"
#include "noise/white.hpp"

/// \namespace ptrng::transistor
/// Device level (paper Sec. III-A): MOSFET thermal/flicker current-noise
/// PSDs, inverter delay cells, CMOS technology-node presets.
#include "transistor/inverter.hpp"
#include "transistor/mosfet.hpp"
#include "transistor/technology.hpp"

/// \namespace ptrng::oscillator
/// Period-domain ring-oscillator simulator, the gate-level chain model,
/// and the two-oscillator measurement topology of the paper's Figs. 4/6.
#include "oscillator/gate_chain.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "oscillator/ring_oscillator.hpp"

/// \namespace ptrng::phase_noise
/// Hajimiri ISF, current-noise to phase-noise conversion, the phase PSD
/// b_th/f^2 + b_fl/f^3 (Eq. 10) and accumulated variance sigma^2_N
/// (Eq. 9 numeric / Eq. 11 closed form).
#include "phase_noise/conversion.hpp"
#include "phase_noise/isf.hpp"
#include "phase_noise/phase_psd.hpp"
#include "phase_noise/sigma2n.hpp"

/// \namespace ptrng::measurement
/// The s_N process (Eq. 4/8), the bit-exact differential counter of
/// Fig. 6 (Eq. 12), sigma^2_N sweep estimation with confidence
/// intervals, and the Sec.-IV coefficient extraction.
#include "measurement/calibration.hpp"
#include "measurement/counter.hpp"
#include "measurement/sigma_n_estimator.hpp"
#include "measurement/sn_process.hpp"

/// \namespace ptrng::model
/// The assembled multilevel stochastic model (Fig. 3), the legacy iid
/// models it critiques, and empirical independence verdicts (single pair
/// and parallel pair ensembles).
#include "model/ensemble.hpp"
#include "model/independence.hpp"
#include "model/legacy_models.hpp"
#include "model/multilevel_model.hpp"

/// \namespace ptrng::trng
/// Generator level: the BitSource/BitTransform/Pipeline bit-stream stack,
/// elementary and multi-ring RO-TRNGs, entropy bounds and estimators,
/// AIS 31 / SP 800-90B style health tests, post-processing, the SP
/// 800-90A conditioning/DRBG layer and the concurrent byte service.
#include "trng/ais31.hpp"
#include "trng/bit_stream.hpp"
#include "trng/cell_array.hpp"
#include "trng/conditioning.hpp"
#include "trng/continuous_health.hpp"
#include "trng/entropy.hpp"
#include "trng/ero_trng.hpp"
#include "trng/multi_ring.hpp"
#include "trng/online_test.hpp"
#include "trng/postprocess.hpp"
#include "trng/raw_export.hpp"
#include "trng/rbg_service.hpp"
#include "trng/sp80090b.hpp"

/// \namespace ptrng::attacks
/// Non-invasive frequency-injection / EM locking attacks and their
/// observable signatures on the relative jitter.
#include "attacks/injection.hpp"
