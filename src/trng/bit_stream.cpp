#include "trng/bit_stream.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "trng/continuous_health.hpp"

namespace ptrng::trng {

std::vector<std::uint8_t> BitSource::generate(std::size_t n_bits) {
  PTRNG_EXPECTS(n_bits >= 1);
  std::vector<std::uint8_t> bits(n_bits);
  generate_into(bits);
  return bits;
}

XorDecimateTransform::XorDecimateTransform(std::size_t factor)
    : factor_(factor) {
  PTRNG_EXPECTS(factor >= 1);
}

void XorDecimateTransform::push(std::span<const std::uint8_t> in,
                                std::vector<std::uint8_t>& out) {
  for (const std::uint8_t b : in) {
    acc_ ^= (b & 1u);
    if (++filled_ == factor_) {
      out.push_back(acc_);
      acc_ = 0;
      filled_ = 0;
    }
  }
}

void VonNeumannTransform::push(std::span<const std::uint8_t> in,
                               std::vector<std::uint8_t>& out) {
  for (const std::uint8_t raw : in) {
    const std::uint8_t b = raw & 1u;
    if (!has_pending_) {
      pending_ = b;
      has_pending_ = true;
      continue;
    }
    if (pending_ != b) out.push_back(pending_);
    has_pending_ = false;
  }
}

Pipeline::Pipeline(BitSource& source, std::size_t block_bits)
    : source_(source), block_bits_(block_bits) {
  PTRNG_EXPECTS(block_bits >= 1);
  raw_block_.resize(block_bits);
}

Pipeline& Pipeline::add_transform(std::unique_ptr<BitTransform> transform) {
  PTRNG_EXPECTS(transform != nullptr);
  transforms_.push_back(std::move(transform));
  return *this;
}

Pipeline& Pipeline::set_monitor(ThermalNoiseMonitor* monitor) {
  monitor_ = monitor;
  tap_window_fill_ = 0;
  return *this;
}

Pipeline& Pipeline::set_health_engine(HealthEngine* engine) {
  health_ = engine;
  return *this;
}

void Pipeline::pump() {
  source_.generate_into(raw_block_);
  raw_bits_ += raw_block_.size();

  if (monitor_ != nullptr) {
    const std::size_t window = monitor_->config().n_cycles;
    for (const std::uint8_t b : raw_block_) {
      tap_cumulative_ones_ += (b & 1u);
      if (++tap_window_fill_ == window) {
        tap_window_fill_ = 0;
        OnlineTestDecision decision;
        if (monitor_->push_count(tap_cumulative_ones_, &decision) &&
            decision.alarm)
          ++alarms_;
      }
    }
  }

  if (health_ != nullptr) health_->process(raw_block_);

  std::span<const std::uint8_t> current(raw_block_);
  for (std::size_t i = 0; i < transforms_.size(); ++i) {
    auto& next = scratch_[i & 1];
    next.clear();
    transforms_[i]->push(current, next);
    current = next;
  }

  // Compact delivered bits away before appending the new block.
  if (ready_pos_ > 0) {
    ready_.erase(ready_.begin(),
                 ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_));
    ready_pos_ = 0;
  }
  ready_.insert(ready_.end(), current.begin(), current.end());
}

std::uint8_t Pipeline::next_bit() {
  while (ready_pos_ >= ready_.size()) pump();
  return ready_[ready_pos_++];
}

void Pipeline::generate_into(std::span<std::uint8_t> out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    if (ready_pos_ >= ready_.size()) {
      pump();
      continue;
    }
    const std::size_t take =
        std::min(out.size() - filled, ready_.size() - ready_pos_);
    std::copy(ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_),
              ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_ + take),
              out.begin() + static_cast<std::ptrdiff_t>(filled));
    ready_pos_ += take;
    filled += take;
  }
}

}  // namespace ptrng::trng
