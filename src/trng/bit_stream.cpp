#include "trng/bit_stream.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "trng/continuous_health.hpp"

namespace ptrng::trng {

void pack_bits_msb_first(std::span<const std::uint8_t> bits,
                         std::span<std::byte> out) {
  PTRNG_EXPECTS(bits.size() == 8 * out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    unsigned byte = 0;
    for (std::size_t j = 0; j < 8; ++j)
      byte = (byte << 1) | (bits[8 * i + j] & 1u);
    out[i] = static_cast<std::byte>(byte);
  }
}

void unpack_bits_msb_first(std::span<const std::byte> bytes,
                           std::span<std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() == 8 * bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const unsigned byte = std::to_integer<unsigned>(bytes[i]);
    for (std::size_t j = 0; j < 8; ++j)
      bits[8 * i + j] = static_cast<std::uint8_t>((byte >> (7 - j)) & 1u);
  }
}

void BitSource::fill_bytes(std::span<std::byte> out) {
  // Default: stage bits through generate_into in bounded chunks, then
  // pack. Pipeline overrides this with a zero-staging version.
  constexpr std::size_t kChunkBytes = 4096;
  std::vector<std::uint8_t> bits(8 * std::min(kChunkBytes, out.size()));
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t take = std::min(kChunkBytes, out.size() - done);
    const std::span<std::uint8_t> stage(bits.data(), 8 * take);
    generate_into(stage);
    pack_bits_msb_first(stage, out.subspan(done, take));
    done += take;
  }
}

std::vector<std::byte> BitSource::generate_bytes(std::size_t n_bytes) {
  PTRNG_EXPECTS(n_bytes >= 1);
  std::vector<std::byte> bytes(n_bytes);
  fill_bytes(bytes);
  return bytes;
}

std::vector<std::uint8_t> BitSource::generate_bits(std::size_t n_bits) {
  PTRNG_EXPECTS(n_bits >= 1);
  std::vector<std::uint8_t> bits(n_bits);
  generate_into(bits);
  return bits;
}

XorDecimateTransform::XorDecimateTransform(std::size_t factor)
    : factor_(factor) {
  PTRNG_EXPECTS(factor >= 1);
}

void XorDecimateTransform::push(std::span<const std::uint8_t> in,
                                std::vector<std::uint8_t>& out) {
  for (const std::uint8_t b : in) {
    acc_ ^= (b & 1u);
    if (++filled_ == factor_) {
      out.push_back(acc_);
      acc_ = 0;
      filled_ = 0;
    }
  }
}

void VonNeumannTransform::push(std::span<const std::uint8_t> in,
                               std::vector<std::uint8_t>& out) {
  for (const std::uint8_t raw : in) {
    const std::uint8_t b = raw & 1u;
    if (!has_pending_) {
      pending_ = b;
      has_pending_ = true;
      continue;
    }
    if (pending_ != b) out.push_back(pending_);
    has_pending_ = false;
  }
}

Pipeline::Pipeline(BitSource& source, std::size_t block_bits)
    : source_(source), block_bits_(block_bits) {
  PTRNG_EXPECTS(block_bits >= 1);
  raw_block_.resize(block_bits);
}

Pipeline& Pipeline::add_transform(std::unique_ptr<BitTransform> transform) {
  PTRNG_EXPECTS(transform != nullptr);
  transforms_.push_back(std::move(transform));
  return *this;
}

Pipeline& Pipeline::set_monitor(ThermalNoiseMonitor* monitor) {
  monitor_ = monitor;
  tap_window_fill_ = 0;
  return *this;
}

Pipeline& Pipeline::attach_tap(TapStage& tap) {
  if (std::find(taps_.begin(), taps_.end(), &tap) == taps_.end())
    taps_.push_back(&tap);
  if (auto* engine = dynamic_cast<HealthEngine*>(&tap)) health_ = engine;
  return *this;
}

Pipeline& Pipeline::detach_tap(TapStage& tap) {
  taps_.erase(std::remove(taps_.begin(), taps_.end(), &tap), taps_.end());
  if (health_ == dynamic_cast<HealthEngine*>(&tap)) health_ = nullptr;
  return *this;
}

Pipeline& Pipeline::set_health_engine(HealthEngine* engine) {
  if (engine == nullptr) {
    if (health_ != nullptr) detach_tap(*health_);
    return *this;
  }
  return attach_tap(*engine);
}

void Pipeline::pump() {
  source_.generate_into(raw_block_);
  raw_bits_ += raw_block_.size();

  if (monitor_ != nullptr) {
    const std::size_t window = monitor_->config().n_cycles;
    for (const std::uint8_t b : raw_block_) {
      tap_cumulative_ones_ += (b & 1u);
      if (++tap_window_fill_ == window) {
        tap_window_fill_ = 0;
        OnlineTestDecision decision;
        if (monitor_->push_count(tap_cumulative_ones_, &decision) &&
            decision.alarm)
          ++alarms_;
      }
    }
  }

  for (TapStage* tap : taps_) tap->observe(raw_block_);

  std::span<const std::uint8_t> current(raw_block_);
  for (std::size_t i = 0; i < transforms_.size(); ++i) {
    auto& next = scratch_[i & 1];
    next.clear();
    transforms_[i]->push(current, next);
    current = next;
  }

  // Compact delivered bits away before appending the new block.
  if (ready_pos_ > 0) {
    ready_.erase(ready_.begin(),
                 ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_));
    ready_pos_ = 0;
  }
  ready_.insert(ready_.end(), current.begin(), current.end());
}

Pipeline& Pipeline::discard_buffered() {
  ready_.clear();
  ready_pos_ = 0;
  for (auto& transform : transforms_) transform->reset();
  return *this;
}

std::uint8_t Pipeline::next_bit() {
  while (ready_pos_ >= ready_.size()) pump();
  return ready_[ready_pos_++];
}

void Pipeline::generate_into(std::span<std::uint8_t> out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    if (ready_pos_ >= ready_.size()) {
      pump();
      continue;
    }
    const std::size_t take =
        std::min(out.size() - filled, ready_.size() - ready_pos_);
    std::copy(ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_),
              ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_ + take),
              out.begin() + static_cast<std::ptrdiff_t>(filled));
    ready_pos_ += take;
    filled += take;
  }
}

void Pipeline::fill_bytes(std::span<std::byte> out) {
  // Pack straight out of the ready buffer, whole bytes at a time (no
  // staging copy of the bit stream).
  std::size_t filled = 0;
  while (filled < out.size()) {
    while (ready_.size() - ready_pos_ < 8) pump();
    const std::size_t take =
        std::min(out.size() - filled, (ready_.size() - ready_pos_) / 8);
    pack_bits_msb_first(
        std::span<const std::uint8_t>(ready_.data() + ready_pos_, 8 * take),
        out.subspan(filled, take));
    ready_pos_ += 8 * take;
    filled += take;
  }
}

}  // namespace ptrng::trng
