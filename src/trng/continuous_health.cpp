#include "trng/continuous_health.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/contracts.hpp"
#include "stats/special.hpp"

namespace ptrng::trng {

namespace {

/// log pmf of Bin(n, p) at k via log-gamma (stable for n up to the APT
/// window sizes; p strictly inside (0, 1)).
double log_binomial_pmf(std::size_t n, std::size_t k, double p) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  return stats::log_gamma(dn + 1.0) - stats::log_gamma(dk + 1.0) -
         stats::log_gamma(dn - dk + 1.0) + dk * std::log(p) +
         (dn - dk) * std::log1p(-p);
}

/// Upper tail P(Bin(n, p) >= k), summed from the top so the alpha-scale
/// comparison keeps full relative precision (no 1 - tiny cancellation).
double binomial_tail_ge(std::size_t n, std::size_t k, double p) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  double tail = 0.0;
  for (std::size_t j = n + 1; j-- > k;)
    tail += std::exp(log_binomial_pmf(n, j, p));
  return std::min(tail, 1.0);
}

}  // namespace

std::uint32_t repetition_count_cutoff(double h_min, double false_alarm) {
  PTRNG_EXPECTS(h_min > 0.0 && h_min <= 1.0);
  PTRNG_EXPECTS(false_alarm > 0.0 && false_alarm < 1.0);
  const double c = 1.0 + std::ceil(-std::log2(false_alarm) / h_min);
  return static_cast<std::uint32_t>(c);
}

std::uint32_t adaptive_proportion_cutoff(std::size_t window, double h_min,
                                         double false_alarm) {
  PTRNG_EXPECTS(window >= 2);
  PTRNG_EXPECTS(h_min > 0.0 && h_min <= 1.0);
  PTRNG_EXPECTS(false_alarm > 0.0 && false_alarm < 1.0);
  const double p = std::exp2(-h_min);  // most-likely-value probability
  // critbinom(W, p, 1 - alpha) = the j where the upper tail first
  // exceeds alpha while summing pmf terms from k = W downward:
  // tail(j) > alpha and tail(j+1) <= alpha means CDF(j) >= 1 - alpha
  // and CDF(j-1) < 1 - alpha.
  double tail = 0.0;
  for (std::size_t j = window + 1; j-- > 0;) {
    tail += std::exp(log_binomial_pmf(window, j, p));
    if (tail > false_alarm)
      return static_cast<std::uint32_t>(1 + j);
  }
  return 1;  // alpha >= 1 - (1-p)^W: even zero occurrences "fail"
}

double adaptive_proportion_alarm_probability(std::size_t window,
                                             std::uint32_t cutoff,
                                             double ones_probability) {
  PTRNG_EXPECTS(window >= 2);
  PTRNG_EXPECTS(cutoff >= 1);
  PTRNG_EXPECTS(ones_probability >= 0.0 && ones_probability <= 1.0);
  const double p = ones_probability;
  // The window's first bit (probability p it is a 1) both picks the
  // counted value and contributes the first of the `cutoff` matches.
  return p * binomial_tail_ge(window - 1, cutoff - 1, p) +
         (1.0 - p) * binomial_tail_ge(window - 1, cutoff - 1, 1.0 - p);
}

double repetition_count_alarm_rate(std::uint32_t cutoff,
                                   double ones_probability) {
  PTRNG_EXPECTS(cutoff >= 2);
  PTRNG_EXPECTS(ones_probability >= 0.0 && ones_probability <= 1.0);
  const double p = ones_probability;
  const double c = static_cast<double>(cutoff);
  return (1.0 - p) * std::pow(p, c) + p * std::pow(1.0 - p, c);
}

RepetitionCountTest::RepetitionCountTest(std::uint32_t cutoff_value)
    : cutoff(cutoff_value) {
  PTRNG_EXPECTS(cutoff_value >= 2);
}

AdaptiveProportionTest::AdaptiveProportionTest(std::uint32_t window_bits,
                                               std::uint32_t cutoff_value)
    : window(window_bits), cutoff(cutoff_value) {
  PTRNG_EXPECTS(window_bits >= 2);
  PTRNG_EXPECTS(cutoff_value >= 2);
  PTRNG_EXPECTS(cutoff_value <= window_bits);
}

HealthEngine::HealthEngine(const ContinuousHealthConfig& config)
    : config_(config),
      rct_(repetition_count_cutoff(config.h_min, config.false_alarm)),
      apt_(static_cast<std::uint32_t>(config.apt_window),
           adaptive_proportion_cutoff(config.apt_window, config.h_min,
                                      config.false_alarm)) {
  PTRNG_EXPECTS(config.total_failure_alarms >= 1);
  PTRNG_EXPECTS(config.recovery_bits >= 1);
}

void HealthEngine::handle_alarm(HealthAlarmEvent::Test test,
                                std::size_t bit_index) {
  if (test == HealthAlarmEvent::Test::kRepetitionCount)
    ++rct_alarms_;
  else
    ++apt_alarms_;
  if (first_alarm_bit_ == kNoAlarm) first_alarm_bit_ = bit_index;
  healthy_run_bits_ = 0;
  ++pending_alarms_;
  if (state_ != HealthState::kTotalFailure) {
    state_ = (pending_alarms_ >= config_.total_failure_alarms)
                 ? HealthState::kTotalFailure
                 : HealthState::kIntermittentAlarm;
  }
  if (callback_) callback_({test, bit_index, state_});
}

void HealthEngine::process_bit(std::uint8_t bit) {
  const bool rct_alarm = rct_.step(bit);
  const bool apt_alarm = apt_.step(bit);
  const std::size_t index = bits_seen_++;
  if (rct_alarm)
    handle_alarm(HealthAlarmEvent::Test::kRepetitionCount, index);
  if (apt_alarm)
    handle_alarm(HealthAlarmEvent::Test::kAdaptiveProportion, index);
  if (!rct_alarm && !apt_alarm) {
    ++healthy_run_bits_;
    if (state_ == HealthState::kIntermittentAlarm &&
        healthy_run_bits_ >= config_.recovery_bits) {
      state_ = HealthState::kNominal;
      pending_alarms_ = 0;
    }
  }
}

void HealthEngine::process(std::span<const std::uint8_t> bits) {
  // Bytes hold one bit each (0/1), so a 64-bit word carries 8 bits and
  // popcount(word) is the number of ones. The word path runs only when
  // the word provably cannot alarm and cannot START an APT window (a
  // window close is handled in-word; the opening bit needs the scalar
  // primer), so any word that could produce an observable event falls
  // back to the scalar step and alarms land on the exact bit.
  constexpr std::uint64_t kOnePerByte = 0x0101010101010101ULL;
  const std::uint8_t* data = bits.data();
  std::size_t i = 0;
  const std::size_t n = bits.size();
  while (i < n) {
    if (!(i + 8 <= n && rct_.primed && rct_.run + 8 < rct_.cutoff &&
          apt_.seen != 0 && apt_.seen + 8 <= apt_.window &&
          (apt_.latched || apt_.matches + 8 < apt_.cutoff))) {
      process_bit(data[i]);
      ++i;
      continue;
    }
    // Hoist both tests' state into locals for the inner loop: the
    // byte-wide bit loads may alias any member, so without this the
    // compiler reloads/stores every field once per word. Inside the
    // loop no alarm, window start, or RCT latch flip can occur (the
    // loop conditions are exactly the fast-path preconditions), so the
    // locals are the whole story and apt latching stays constant.
    std::uint32_t run = rct_.run;
    std::uint8_t last = rct_.last;
    std::uint32_t seen = apt_.seen;
    std::uint32_t matches = apt_.matches;
    const std::uint32_t rct_cutoff = rct_.cutoff;
    const std::uint32_t apt_cutoff = apt_.cutoff;
    const std::uint32_t window = apt_.window;
    const bool count_ones = apt_.counted != 0;
    const bool apt_latched = apt_.latched;
    const std::size_t start = i;
    while (i + 8 <= n && run + 8 < rct_cutoff && seen != 0 &&
           seen + 8 <= window && (apt_latched || matches + 8 < apt_cutoff)) {
      std::uint64_t word;
      std::memcpy(&word, data + i, sizeof word);
      const std::uint64_t masked = word & kOnePerByte;
      const auto ones = static_cast<std::uint32_t>(std::popcount(masked));
      seen += 8;
      matches += count_ones ? ones : 8 - ones;
      if (seen == window) seen = 0;  // window closes here, loop exits
      if (masked == 0 || masked == kOnePerByte) {
        const std::uint8_t value = masked ? 1 : 0;
        if (value == last) {
          run += 8;
        } else {
          last = value;
          run = 8;
        }
      } else {
        // Mixed word: the run entering the next word is the trailing
        // run of equal bits. The last-in-stream bit lives in the most
        // significant byte (little-endian load), so XOR against a
        // same-value fill turns the trailing run into leading zero
        // BYTES — no backward scan.
        const auto value = static_cast<std::uint8_t>((word >> 56) & 1u);
        const std::uint64_t diff = masked ^ (value ? kOnePerByte : 0);
        last = value;
        run = static_cast<std::uint32_t>(std::countl_zero(diff)) / 8;
      }
      i += 8;
    }
    rct_.run = run;
    rct_.last = last;
    // rct latched would imply run >= cutoff, which the preconditions
    // exclude on entry and the loop bound preserves.
    rct_.latched = false;
    apt_.seen = seen;
    apt_.matches = matches;
    bits_seen_ += i - start;
    healthy_run_bits_ += i - start;
    // Recovery crossing is checked at batch granularity: no alarm can
    // fire inside the loop, so dropping to nominal here is
    // observationally identical to the per-bit check.
    if (state_ == HealthState::kIntermittentAlarm &&
        healthy_run_bits_ >= config_.recovery_bits) {
      state_ = HealthState::kNominal;
      pending_alarms_ = 0;
    }
  }
}

void HealthEngine::acknowledge_failure() noexcept {
  state_ = HealthState::kNominal;
  pending_alarms_ = 0;
  healthy_run_bits_ = 0;
  rct_ = RepetitionCountTest(rct_.cutoff);
  apt_ = AdaptiveProportionTest(apt_.window, apt_.cutoff);
}

DetectionLatency measure_detection_latency(BitSource& source,
                                           HealthEngine& engine,
                                           std::size_t max_bits,
                                           std::size_t block_bits) {
  PTRNG_EXPECTS(max_bits >= 1);
  PTRNG_EXPECTS(block_bits >= 1);
  const std::size_t start_bits = engine.bits_seen();
  std::vector<std::uint8_t> block(block_bits);
  std::size_t consumed = 0;
  while (consumed < max_bits && !engine.alarmed()) {
    const std::size_t take = std::min(block_bits, max_bits - consumed);
    const std::span<std::uint8_t> chunk(block.data(), take);
    source.generate_into(chunk);
    engine.process(chunk);
    consumed += take;
  }
  if (!engine.alarmed()) return {false, 0};
  return {true, engine.first_alarm_bit() - start_bits + 1};
}

}  // namespace ptrng::trng
