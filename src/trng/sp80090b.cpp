#include "trng/sp80090b.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"

namespace ptrng::trng::sp80090b {

namespace {
constexpr double kZ99 = 2.5758293035489004;  // 99% two-sided normal
}

double most_common_value(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= 1000);
  const double n = static_cast<double>(bits.size());
  std::size_t ones = 0;
  for (auto b : bits) ones += b & 1u;
  const double p_hat =
      std::max(static_cast<double>(ones), n - static_cast<double>(ones)) / n;
  const double p_up =
      std::min(1.0, p_hat + kZ99 * std::sqrt(p_hat * (1.0 - p_hat) / n));
  return -std::log2(p_up);
}

double collision_estimate(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= 2000);
  // Walk the sequence recording the index of the first repeated value in
  // each window ("time to collision"); binary samples collide at the 2nd
  // or 3rd symbol.
  std::vector<std::size_t> times;
  std::size_t i = 0;
  while (i + 2 < bits.size()) {
    if ((bits[i] & 1u) == (bits[i + 1] & 1u)) {
      times.push_back(2);
      i += 2;
    } else {
      times.push_back(3);
      i += 3;  // third sample always collides with one of the first two
    }
  }
  PTRNG_EXPECTS(times.size() >= 100);
  double mean_t = 0.0;
  for (auto t : times) mean_t += static_cast<double>(t);
  mean_t /= static_cast<double>(times.size());
  // Lower confidence bound on the mean.
  double var = 0.0;
  for (auto t : times) {
    const double d = static_cast<double>(t) - mean_t;
    var += d * d;
  }
  var /= static_cast<double>(times.size() - 1);
  const double mean_lo =
      mean_t - kZ99 * std::sqrt(var / static_cast<double>(times.size()));
  // For an iid binary source with max probability p:
  // E[time to collision] = 2 + 2 p (1-p). Invert for p.
  const double q = std::min(0.5, std::max(0.0, (mean_lo - 2.0) / 2.0));
  // q = p(1-p) => p = (1 + sqrt(1-4q))/2.
  const double p = 0.5 * (1.0 + std::sqrt(std::max(0.0, 1.0 - 4.0 * q)));
  return -std::log2(p);
}

double markov_estimate(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= 2000);
  const double n = static_cast<double>(bits.size());
  std::size_t ones = 0;
  for (auto b : bits) ones += b & 1u;
  double p1 = static_cast<double>(ones) / n;
  double c[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  for (std::size_t i = 0; i + 1 < bits.size(); ++i)
    c[bits[i] & 1u][bits[i + 1] & 1u] += 1.0;
  // Transition probabilities with the 90B epsilon adjustment.
  const double eps = kZ99 * std::sqrt(0.25 / n);
  double t[2][2];
  for (int s = 0; s < 2; ++s) {
    const double row = c[s][0] + c[s][1];
    for (int d = 0; d < 2; ++d) {
      const double p = (row > 0.0) ? c[s][d] / row : 0.5;
      t[s][d] = std::min(1.0, p + eps);
    }
  }
  p1 = std::min(1.0, std::max(p1, 1.0 - p1) + eps);

  // Most likely 128-step path via dynamic programming on log
  // probabilities.
  constexpr int kSteps = 128;
  double logp[2] = {std::log2(p1), std::log2(p1)};
  for (int step = 1; step < kSteps; ++step) {
    const double next0 =
        std::max(logp[0] + std::log2(t[0][0]), logp[1] + std::log2(t[1][0]));
    const double next1 =
        std::max(logp[0] + std::log2(t[0][1]), logp[1] + std::log2(t[1][1]));
    logp[0] = next0;
    logp[1] = next1;
  }
  const double best = std::max(logp[0], logp[1]);
  return std::min(1.0, -best / kSteps);
}

double assess(std::span<const std::uint8_t> bits) {
  return std::min({most_common_value(bits), collision_estimate(bits),
                   markov_estimate(bits)});
}

}  // namespace ptrng::trng::sp80090b
