// Conditioning layer (ROADMAP item 1, first half): the bridge between
// the raw-bit pipeline and the byte-first RBG service.
//
//  * hash_df        — SP 800-90A §10.3.1 derivation function over
//                     SHA-256; the one primitive under both the
//                     conditioner and the DRBG seed arithmetic.
//  * HashConditioner— a vetted conditioner (90B §3.1.5.1.2): pulls
//                     raw bits whose ASSESSED min-entropy covers the
//                     requested output plus the SP 800-90C
//                     full-entropy margin (+64 bits), and compresses
//                     them through hash_df. Every block updates an
//                     explicit entropy ledger: bits in, assessed
//                     entropy in (fixed point), full-entropy bytes
//                     out — the accounting the paper's H > 0.997
//                     per-raw-bit claim feeds into.
//  * ConditioningTransform — the same operation as a streaming
//                     pipeline stage (BitTransform / OutputStage).
//  * EntropyAccountingTap  — a TapStage that only keeps the ledger
//                     (for pipelines that condition elsewhere).
//  * HashDrbg       — SP 800-90A §10.1.1 Hash_DRBG on SHA-256
//                     (seedlen 440), with prediction resistance and a
//                     pluggable reseed source so the health engine's
//                     alarm hook can force fresh seed material.
//
// Min-entropy is tracked in 1/65536-bit fixed point (kMinEntropyScale)
// so ledger arithmetic is exact integer math — the convention iPXE's
// entropy stack uses for its 90B accounting.
//
// docs/ARCHITECTURE.md §7 "Conditioning & service layer" states the
// layering rules; test_conditioning.cpp pins SHA-256 against FIPS
// 180-4 vectors and the DRBG against golden KATs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/sha256.hpp"
#include "trng/bit_stream.hpp"

namespace ptrng::trng {

// --- min-entropy fixed point ---------------------------------------------

/// Fixed-point min-entropy amount: kMinEntropyScale units == 1 bit.
using MinEntropy = std::uint64_t;
inline constexpr MinEntropy kMinEntropyScale = 1ull << 16;

/// Fixed-point encoding of `bits` of min-entropy (bits in [0, 2^47]).
[[nodiscard]] constexpr MinEntropy min_entropy_bits(double bits) noexcept {
  return static_cast<MinEntropy>(bits * static_cast<double>(kMinEntropyScale));
}

// --- Hash_df (SP 800-90A §10.3.1) ----------------------------------------

/// Hash_df over the concatenation of `parts`: iterates
/// SHA-256(counter || be32(8*out.size()) || parts...) with counter
/// 1, 2, ... until out is filled. The multi-part form exists so DRBG
/// seed material (prefix || V || entropy || ...) never needs a staging
/// concatenation. out.size() <= 255 * 32 (the §10.3.1 length bound).
void hash_df(std::span<const std::span<const std::byte>> parts,
             std::span<std::byte> out);

/// Single-input convenience.
void hash_df(std::span<const std::byte> input, std::span<std::byte> out);

/// Allocating convenience.
[[nodiscard]] std::vector<std::byte> hash_df(std::span<const std::byte> input,
                                             std::size_t out_bytes);

// --- vetted conditioner ---------------------------------------------------

/// HashConditioner configuration. `h_min` is the ASSESSED min-entropy
/// per raw bit — the deployment-facing number coming out of the 90B
/// estimation story (entropy.hpp / sp80090b.hpp), deliberately not
/// measured online here.
struct ConditionerConfig {
  /// Assessed min-entropy per raw source bit, in (0, 1].
  double h_min = 0.5;
  /// Conditioned block size [bytes] of condition_block(); 32 = one
  /// SHA-256 output = one 256-bit DRBG (re)seed.
  std::size_t block_bytes = 32;
  /// SP 800-90C full-entropy margin: require input min-entropy >=
  /// output bits + 64. Disable only for entropy-rate experiments.
  bool full_entropy_margin = true;
};

/// SHA-256 hash_df conditioner with an explicit entropy ledger.
class HashConditioner {
 public:
  explicit HashConditioner(const ConditionerConfig& config);

  /// Raw bits that must be consumed to emit `out_bytes` conditioned
  /// bytes: ceil((8*out_bytes [+ 64]) / h_min), rounded up to whole
  /// bytes of raw stream.
  [[nodiscard]] std::size_t raw_bits_needed(std::size_t out_bytes) const;

  /// Pulls raw_bits_needed(out.size()) bits from `source`, packs them
  /// MSB-first and hash_df-compresses them into `out`. Updates the
  /// ledger.
  void condition(BitSource& source, std::span<std::byte> out);

  /// Allocating convenience: one config.block_bytes block.
  [[nodiscard]] std::vector<std::byte> condition_block(BitSource& source);

  // Entropy ledger (monotone over the conditioner's lifetime).
  [[nodiscard]] std::uint64_t bits_in() const noexcept { return bits_in_; }
  [[nodiscard]] MinEntropy entropy_in() const noexcept { return entropy_in_; }
  [[nodiscard]] std::uint64_t bytes_out() const noexcept { return bytes_out_; }

  [[nodiscard]] const ConditionerConfig& config() const noexcept {
    return config_;
  }

 private:
  ConditionerConfig config_;
  MinEntropy h_min_fixed_;
  std::uint64_t bits_in_ = 0;
  MinEntropy entropy_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::vector<std::uint8_t> raw_bits_;  ///< staging: raw pull
  std::vector<std::byte> packed_;       ///< staging: packed raw bytes
};

/// Streaming-stage form of the conditioner: consumes raw bits, emits
/// CONDITIONED bits (unpacked MSB-first, so it composes inside a bit
/// Pipeline like any other transform). Bits buffer across pushes until
/// one conditioned block's worth of input entropy has arrived; reset()
/// drops the open buffer. Satisfies OutputStage (asserted in
/// conditioning.cpp) — post-processing, health taps and conditioning
/// share one output-path shape.
class ConditioningTransform final : public BitTransform {
 public:
  explicit ConditioningTransform(const ConditionerConfig& config);

  void push(std::span<const std::uint8_t> in,
            std::vector<std::uint8_t>& out) override;
  void reset() override { buffer_.clear(); }
  [[nodiscard]] const char* name() const noexcept override {
    return "hash_conditioner";
  }

  /// Raw bits consumed per emitted block (fixed at construction).
  [[nodiscard]] std::size_t bits_per_block() const noexcept {
    return bits_per_block_;
  }
  [[nodiscard]] std::uint64_t blocks_out() const noexcept {
    return blocks_out_;
  }

 private:
  ConditionerConfig config_;
  std::size_t bits_per_block_;
  std::vector<std::uint8_t> buffer_;
  std::vector<std::byte> packed_;
  std::vector<std::byte> conditioned_;
  std::uint64_t blocks_out_ = 0;
};

/// TapStage that keeps the conditioner's entropy ledger for a pipeline
/// WITHOUT conditioning in-line (e.g. when the service conditions off
/// the pipeline output but the assessment tap rides the raw stream).
class EntropyAccountingTap final : public TapStage {
 public:
  explicit EntropyAccountingTap(double h_min)
      : h_min_fixed_(min_entropy_bits(h_min)) {}

  void observe(std::span<const std::uint8_t> raw_bits) override {
    bits_seen_ += raw_bits.size();
    entropy_seen_ += h_min_fixed_ * raw_bits.size();
  }
  [[nodiscard]] const char* tap_name() const noexcept override {
    return "entropy_accounting";
  }

  [[nodiscard]] std::uint64_t bits_seen() const noexcept { return bits_seen_; }
  [[nodiscard]] MinEntropy entropy_seen() const noexcept {
    return entropy_seen_;
  }
  /// Full-entropy bytes this much assessed input entropy can back
  /// (90C margin included): floor((entropy_bits - 64) / 8).
  [[nodiscard]] std::uint64_t full_entropy_bytes() const noexcept {
    const MinEntropy margin = 64 * kMinEntropyScale;
    if (entropy_seen_ <= margin) return 0;
    return (entropy_seen_ - margin) / (8 * kMinEntropyScale);
  }

 private:
  MinEntropy h_min_fixed_;
  std::uint64_t bits_seen_ = 0;
  MinEntropy entropy_seen_ = 0;
};

// --- Hash_DRBG (SP 800-90A §10.1.1) --------------------------------------

/// Hash_DRBG configuration. The 90A ceilings for SHA-256 are
/// reseed_interval <= 2^48 and 2^19 bits (65536 bytes) per request;
/// defaults are far below the ceilings because the service reseeds
/// cheaply.
struct HashDrbgConfig {
  /// Generate requests served before a reseed is REQUIRED.
  std::uint64_t reseed_interval = 1ull << 16;
  /// Reseed before EVERY generate request (SP 800-90C prediction
  /// resistance). Requires a reseed source.
  bool prediction_resistance = false;
  /// Per-request output ceiling [bytes].
  std::size_t max_bytes_per_request = 1u << 16;
};

/// SHA-256 Hash_DRBG: V/C of seedlen = 440 bits, hash_df seed
/// arithmetic, hashgen output. Not thread-safe — the service gives
/// each consumer stream its own instance.
class HashDrbg {
 public:
  static constexpr std::size_t kSeedLenBytes = 55;  ///< 440 bits
  static constexpr std::size_t kSecurityStrengthBytes = 32;  ///< 256 bits

  enum class Status : std::uint8_t {
    kOk,
    kNotInstantiated,
    kNeedReseed,       ///< interval exhausted (or PR) and no reseed source
    kRequestTooLarge,  ///< out.size() > max_bytes_per_request
  };

  /// Fresh-entropy provider for automatic reseeds: fills its argument
  /// (>= kSecurityStrengthBytes) with conditioned full-entropy bytes.
  /// The service wires this to the conditioned-block ring.
  using ReseedSource = std::function<void(std::span<std::byte>)>;

  explicit HashDrbg(const HashDrbgConfig& config = {});

  /// §10.1.1.2: seed from entropy_input || nonce || personalization.
  /// entropy_input must carry >= 256 bits of min-entropy (the
  /// conditioner's full-entropy blocks qualify).
  void instantiate(std::span<const std::byte> entropy_input,
                   std::span<const std::byte> nonce,
                   std::span<const std::byte> personalization = {});

  /// §10.1.1.3: V = hash_df(0x01 || V || entropy || additional). An
  /// explicit reseed also satisfies prediction resistance for the NEXT
  /// generate request (callers that pump fresh entropy themselves —
  /// the service's per-request reseed — need no ReseedSource).
  void reseed(std::span<const std::byte> entropy_input,
              std::span<const std::byte> additional = {});

  /// §10.1.1.4: fills `out`; auto-reseeds through the reseed source
  /// when the interval is exhausted or prediction resistance is on,
  /// and reports kNeedReseed when it must reseed but cannot.
  [[nodiscard]] Status generate(std::span<std::byte> out,
                                std::span<const std::byte> additional = {});

  void set_reseed_source(ReseedSource source) {
    reseed_source_ = std::move(source);
  }

  [[nodiscard]] bool instantiated() const noexcept { return instantiated_; }
  /// §10.1.1 reseed_counter: requests served since the last (re)seed,
  /// plus one (1 right after instantiate/reseed).
  [[nodiscard]] std::uint64_t reseed_counter() const noexcept {
    return reseed_counter_;
  }
  [[nodiscard]] std::uint64_t reseeds() const noexcept { return reseeds_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_;
  }
  [[nodiscard]] const HashDrbgConfig& config() const noexcept {
    return config_;
  }

 private:
  void seed_from(std::span<const std::span<const std::byte>> parts);

  HashDrbgConfig config_;
  std::array<std::byte, kSeedLenBytes> v_{};
  std::array<std::byte, kSeedLenBytes> c_{};
  std::uint64_t reseed_counter_ = 0;
  std::uint64_t reseeds_ = 0;
  std::uint64_t requests_ = 0;
  bool instantiated_ = false;
  bool reseed_fresh_ = false;  ///< explicit reseed since the last request
  ReseedSource reseed_source_;
};

}  // namespace ptrng::trng
