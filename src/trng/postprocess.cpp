#include "trng/postprocess.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace ptrng::trng {

std::vector<std::uint8_t> xor_decimate(std::span<const std::uint8_t> bits,
                                       std::size_t factor) {
  PTRNG_EXPECTS(factor >= 1);
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / factor);
  for (std::size_t i = 0; i + factor <= bits.size(); i += factor) {
    std::uint8_t acc = 0;
    for (std::size_t k = 0; k < factor; ++k) acc ^= (bits[i + k] & 1u);
    out.push_back(acc);
  }
  return out;
}

std::vector<std::uint8_t> von_neumann(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / 4);
  for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
    const std::uint8_t a = bits[i] & 1u;
    const std::uint8_t b = bits[i + 1] & 1u;
    if (a != b) out.push_back(a);
  }
  return out;
}

std::vector<std::uint8_t> parity_filter(std::span<const std::uint8_t> bits,
                                        std::size_t block) {
  return xor_decimate(bits, block);
}

double bias(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(!bits.empty());
  std::size_t ones = 0;
  for (auto b : bits) ones += (b & 1u);
  return std::abs(static_cast<double>(ones) /
                      static_cast<double>(bits.size()) -
                  0.5);
}

double serial_correlation(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= 3);
  double sum = 0.0, sum_sq = 0.0, cross = 0.0;
  const std::size_t n = bits.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(bits[i] & 1u);
    sum += x;
    sum_sq += x * x;
    if (i + 1 < n)
      cross += x * static_cast<double>(bits[i + 1] & 1u);
  }
  const double nn = static_cast<double>(n);
  const double mean = sum / nn;
  const double var = sum_sq / nn - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = cross / (nn - 1.0) - mean * mean;
  return cov / var;
}

}  // namespace ptrng::trng
