#include "trng/postprocess.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "trng/bit_stream.hpp"

namespace ptrng::trng {

// The batch free functions are thin wrappers over the streaming
// BitTransform stages (trng/bit_stream.hpp): one push of the whole span
// through a fresh transform. A trailing partial group / unpaired bit
// stays inside the discarded transform, reproducing the historical
// "drop the tail" semantics byte for byte.

std::vector<std::uint8_t> xor_decimate(std::span<const std::uint8_t> bits,
                                       std::size_t factor) {
  XorDecimateTransform transform(factor);
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / factor);
  transform.push(bits, out);
  return out;
}

std::vector<std::uint8_t> von_neumann(std::span<const std::uint8_t> bits) {
  VonNeumannTransform transform;
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / 4);
  transform.push(bits, out);
  return out;
}

std::vector<std::uint8_t> parity_filter(std::span<const std::uint8_t> bits,
                                        std::size_t block) {
  ParityFilterTransform transform(block);
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / block);
  transform.push(bits, out);
  return out;
}

double bias(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(!bits.empty());
  std::size_t ones = 0;
  for (auto b : bits) ones += (b & 1u);
  return std::abs(static_cast<double>(ones) /
                      static_cast<double>(bits.size()) -
                  0.5);
}

double serial_correlation(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= 3);
  double sum = 0.0, sum_sq = 0.0, cross = 0.0;
  const std::size_t n = bits.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(bits[i] & 1u);
    sum += x;
    sum_sq += x * x;
    if (i + 1 < n)
      cross += x * static_cast<double>(bits[i + 1] & 1u);
  }
  const double nn = static_cast<double>(n);
  const double mean = sum / nn;
  const double var = sum_sq / nn - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = cross / (nn - 1.0) - mean * mean;
  return cov / var;
}

}  // namespace ptrng::trng
