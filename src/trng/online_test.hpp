// The dedicated online test the paper proposes in its conclusion: because
// sigma^2_N at small N (inside the independence region) is dominated by
// thermal noise, a cheap embedded counter can continuously verify that the
// thermal-noise level matches the calibrated reference. A frequency-
// injection or EM attack collapses or locks the relative jitter, driving
// the statistic outside its acceptance band within a few windows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptrng::trng {

/// Configuration of the embedded thermal-noise monitor.
struct OnlineTestConfig {
  std::size_t n_cycles = 200;      ///< window length N (< independence N*)
  std::size_t windows_per_test = 64;  ///< s_N samples per decision
  double reference_sigma2 = 0.0;   ///< calibrated Var(s_N) [s^2]
  /// Two-sided false-alarm probability per decision (sets the chi-square
  /// acceptance band).
  double false_alarm = 1e-6;
};

/// Decision statistics of one test window.
struct OnlineTestDecision {
  double sigma2_estimate = 0.0;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  bool alarm = false;
};

/// Streaming monitor: feed Q^N counts (from the Fig. 6 counter); every
/// `windows_per_test` counts it emits a decision.
class ThermalNoiseMonitor {
 public:
  /// f0: nominal oscillator frequency (count-to-time scaling).
  ThermalNoiseMonitor(const OnlineTestConfig& config, double f0);

  /// Feeds one window count. Returns a decision when a test completes.
  [[nodiscard]] bool push_count(std::int64_t q, OnlineTestDecision* decision);

  /// Number of completed decisions so far.
  [[nodiscard]] std::size_t decisions() const noexcept { return decisions_; }

  [[nodiscard]] const OnlineTestConfig& config() const noexcept {
    return config_;
  }

 private:
  OnlineTestConfig config_;
  double f0_;
  double chi2_lo_;  ///< acceptance band quantiles (precomputed)
  double chi2_hi_;
  std::vector<double> sn_buffer_;
  bool has_prev_ = false;
  std::int64_t prev_q_ = 0;
  std::size_t decisions_ = 0;
};

}  // namespace ptrng::trng
