// NIST SP 800-90B-style min-entropy estimators for binary sources. AIS31
// (the paper's certification context) and SP 800-90B are the two
// regulatory yardsticks for entropy sources; these estimators complement
// the Shannon-oriented ones in entropy.hpp with the conservative
// min-entropy view 90B takes.
//
// Implementations follow the published estimator definitions (most common
// value with confidence correction, collision, Markov) specialized to
// 1-bit samples.
#pragma once

#include <cstdint>
#include <span>

namespace ptrng::trng::sp80090b {

/// Most Common Value estimate (90B Sec. 6.3.1): upper-bound the
/// probability of the mode with a 99% normal confidence bound, return
/// -log2 of it. In [0, 1] for binary input.
[[nodiscard]] double most_common_value(std::span<const std::uint8_t> bits);

/// Collision estimate (90B Sec. 6.3.2 flavour): from the mean time
/// between collisions of consecutive pairs; conservative for iid binary
/// sources.
[[nodiscard]] double collision_estimate(std::span<const std::uint8_t> bits);

/// Markov estimate (90B Sec. 6.3.3, binary specialization): min-entropy
/// of the most likely 128-step path of the fitted first-order chain,
/// divided by 128.
[[nodiscard]] double markov_estimate(std::span<const std::uint8_t> bits);

/// The 90B entropy assessment: the minimum of the applicable estimators.
[[nodiscard]] double assess(std::span<const std::uint8_t> bits);

}  // namespace ptrng::trng::sp80090b
