// The elementary ring-oscillator TRNG of the paper's Fig. 4: a D flip-flop
// samples the square-wave output of Osc1 on (divided) rising edges of
// Osc2. The raw binary sequence b_i is the digitized RRAS; its entropy
// derives from the relative jitter accumulated between samples.
#pragma once

#include <cstdint>

#include "oscillator/ring_oscillator.hpp"
#include "trng/bit_stream.hpp"

namespace ptrng::trng {

/// eRO-TRNG configuration.
struct EroTrngConfig {
  /// Frequency divider on the sampling clock (bit every `divider` Osc2
  /// periods) — K in stochastic models; larger K accumulates more jitter
  /// per bit and raises entropy.
  std::uint32_t divider = 1000;
  /// Duty cycle of the sampled square wave (0.5 = ideal).
  double duty_cycle = 0.5;
};

/// Streaming elementary RO-TRNG built on two simulated rings. A
/// BitSource: compose with transforms through trng::Pipeline. The
/// sampling clock is a single serial oscillator, so the batched path is
/// the devirtualized per-bit loop (contrast MultiRingTrng, which fans
/// out across rings).
class EroTrng final : public BitSource {
 public:
  EroTrng(const oscillator::RingOscillatorConfig& sampled,
          const oscillator::RingOscillatorConfig& sampling,
          const EroTrngConfig& config);

  /// Produces the next raw bit: state of the sampled oscillator's square
  /// wave at the next (divided) sampling edge.
  std::uint8_t next_bit() override;

  /// Batched generation on the same stream (bit-identical to repeated
  /// next_bit(); avoids the per-bit virtual dispatch).
  void generate_into(std::span<std::uint8_t> out) override;

  /// Ground truth: fractional phase (in cycles, [0,1)) of the sampled
  /// oscillator at the last sampling instant — the quantity stochastic
  /// models reason about.
  [[nodiscard]] double last_fractional_phase() const noexcept {
    return last_frac_;
  }

  [[nodiscard]] oscillator::RingOscillator& sampled() noexcept {
    return sampled_;
  }
  [[nodiscard]] oscillator::RingOscillator& sampling() noexcept {
    return sampling_;
  }
  [[nodiscard]] const EroTrngConfig& config() const noexcept {
    return config_;
  }

 private:
  std::uint8_t step();  ///< one sample, shared by both entry points

  oscillator::RingOscillator sampled_;
  oscillator::RingOscillator sampling_;
  EroTrngConfig config_;
  double last_frac_ = 0.0;
  /// Most recent sampled-oscillator edge bracket [t_prev, t_next).
  oscillator::EdgeBracket bracket_;
};

/// The paper-calibrated eRO-TRNG (two 103 MHz rings with the fitted noise
/// split, sampling divided by `divider`).
[[nodiscard]] EroTrng paper_trng(std::uint32_t divider,
                                 std::uint64_t seed = 0x7e57c0de);

}  // namespace ptrng::trng
