#include "trng/entropy.hpp"

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "stats/special.hpp"

namespace ptrng::trng {

double bit_probability(double mu, double v) {
  PTRNG_EXPECTS(v >= 0.0);
  // Theta-function duality: the Fourier series converges fast for large v
  // (terms damp like e^{-2 pi^2 m^2 v}), the wrapped-Gaussian CDF sum for
  // small v (the Gaussian covers few integer periods). Switch at v ~ 0.04
  // where both are already at machine precision.
  if (v < 0.04) {
    if (v == 0.0) {
      double frac = mu - std::floor(mu);
      return frac < 0.5 ? 1.0 : 0.0;
    }
    const double sigma = std::sqrt(v);
    double p = 0.0;
    // P(frac(X) < 1/2) = sum_k [Phi((k+1/2-mu)/s) - Phi((k-mu)/s)].
    const auto k_lo = static_cast<long>(std::floor(mu - 9.0 * sigma)) - 1;
    const auto k_hi = static_cast<long>(std::ceil(mu + 9.0 * sigma)) + 1;
    for (long k = k_lo; k <= k_hi; ++k) {
      const double kd = static_cast<double>(k);
      p += stats::normal_cdf((kd + 0.5 - mu) / sigma) -
           stats::normal_cdf((kd - mu) / sigma);
    }
    return std::min(1.0, std::max(0.0, p));
  }
  double p = 0.5;
  for (std::size_t m = 1; m < 2000; m += 2) {
    const double md = static_cast<double>(m);
    const double damp =
        std::exp(-2.0 * constants::pi * constants::pi * md * md * v);
    if (damp < 1e-18) break;
    p += (2.0 / (constants::pi * md)) *
         std::sin(constants::two_pi * md * mu) * damp;
  }
  return std::min(1.0, std::max(0.0, p));
}

double worst_case_bias(double v) {
  PTRNG_EXPECTS(v >= 0.0);
  const double bias =
      (2.0 / constants::pi) *
      std::exp(-2.0 * constants::pi * constants::pi * v);
  return std::min(0.5, bias);
}

double entropy_lower_bound(double v) {
  return stats::binary_entropy(0.5 + worst_case_bias(v) * 0.999999);
}

double entropy_average_mu(double v, std::size_t mu_grid) {
  PTRNG_EXPECTS(mu_grid >= 4);
  KahanSum acc;
  for (std::size_t i = 0; i < mu_grid; ++i) {
    const double mu =
        (static_cast<double>(i) + 0.5) / static_cast<double>(mu_grid);
    acc.add(stats::binary_entropy(bit_probability(mu, v)));
  }
  return acc.value() / static_cast<double>(mu_grid);
}

namespace {

std::vector<std::size_t> block_counts(std::span<const std::uint8_t> bits,
                                      std::size_t block_bits) {
  PTRNG_EXPECTS(block_bits >= 1 && block_bits <= 16);
  const std::size_t blocks = bits.size() / block_bits;
  PTRNG_EXPECTS(blocks >= 1);
  std::vector<std::size_t> counts(std::size_t{1} << block_bits, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t v = 0;
    for (std::size_t k = 0; k < block_bits; ++k)
      v = (v << 1) | (bits[b * block_bits + k] & 1u);
    ++counts[v];
  }
  return counts;
}

}  // namespace

double shannon_block_entropy(std::span<const std::uint8_t> bits,
                             std::size_t block_bits) {
  const auto counts = block_counts(bits, block_bits);
  const std::size_t blocks = bits.size() / block_bits;
  KahanSum h;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(blocks);
    h.add(-p * std::log2(p));
  }
  return h.value() / static_cast<double>(block_bits);
}

double min_entropy(std::span<const std::uint8_t> bits,
                   std::size_t block_bits) {
  const auto counts = block_counts(bits, block_bits);
  const std::size_t blocks = bits.size() / block_bits;
  std::size_t max_count = 0;
  for (std::size_t c : counts) max_count = std::max(max_count, c);
  const double p_max =
      static_cast<double>(max_count) / static_cast<double>(blocks);
  return -std::log2(p_max) / static_cast<double>(block_bits);
}

double markov_entropy_rate(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= 1000);
  // Transition counts c[s][t].
  double c[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  for (std::size_t i = 0; i + 1 < bits.size(); ++i)
    c[bits[i] & 1][bits[i + 1] & 1] += 1.0;
  const double row0 = c[0][0] + c[0][1];
  const double row1 = c[1][0] + c[1][1];
  const double total = row0 + row1;
  PTRNG_EXPECTS(total > 0.0);
  double h = 0.0;
  for (int s = 0; s < 2; ++s) {
    const double row = (s == 0) ? row0 : row1;
    if (row == 0.0) continue;
    const double ps = row / total;
    for (int t = 0; t < 2; ++t) {
      if (c[s][t] == 0.0) continue;
      const double pt = c[s][t] / row;
      h += -ps * pt * std::log2(pt);
    }
  }
  return h;
}

double coron_entropy(std::span<const std::uint8_t> bits, std::size_t l,
                     std::size_t q, std::size_t k) {
  PTRNG_EXPECTS(l >= 1 && l <= 16);
  PTRNG_EXPECTS(q >= (std::size_t{1} << l));
  PTRNG_EXPECTS(bits.size() >= (q + k) * l);

  const std::size_t n_blocks = q + k;
  std::vector<std::size_t> last_seen(std::size_t{1} << l, 0);

  auto block_at = [&](std::size_t b) {
    std::size_t v = 0;
    for (std::size_t j = 0; j < l; ++j) v = (v << 1) | (bits[b * l + j] & 1u);
    return v;
  };

  // Initialization segment.
  for (std::size_t b = 0; b < q; ++b) last_seen[block_at(b)] = b + 1;

  // Coron's g(i) weights: g(i) = (1/ln2) * sum_{k=1}^{i-1} 1/k  (the
  // corrected universal-statistic weighting). Harmonic partial sums are
  // cached incrementally across distances.
  std::vector<double> harmonic{0.0};  // harmonic[i] = sum_{j=1..i} 1/j
  auto g_of = [&](std::size_t dist) {
    while (harmonic.size() < dist) {
      harmonic.push_back(harmonic.back() +
                         1.0 / static_cast<double>(harmonic.size()));
    }
    return harmonic[dist - 1] / constants::ln2;  // sum_{j=1}^{dist-1} 1/j
  };

  KahanSum acc;
  for (std::size_t b = q; b < n_blocks; ++b) {
    const std::size_t v = block_at(b);
    const std::size_t idx = b + 1;
    // A pattern never seen in the initialization segment ages from the
    // sequence start (standard Maurer/Coron handling).
    const std::size_t dist = idx - last_seen[v];
    acc.add(g_of(dist));
    last_seen[v] = idx;
  }
  return acc.value() / static_cast<double>(k);
}

}  // namespace ptrng::trng
