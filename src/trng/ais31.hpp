// AIS 31 statistical tests (Killmann & Schindler, "A proposal for:
// Functionality classes for random number generators", Sept 2011 — the
// paper's reference [10]). Procedure A (T0-T5) targets the internal/raw
// sequence; procedure B (T6-T8) targets the raw sequence near the entropy
// source. Thresholds follow the AIS 31 reference tables.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ptrng::trng::ais31 {

/// Result of one AIS31 test on one block.
struct TestOutcome {
  std::string name;
  bool passed = false;
  double statistic = 0.0;
  std::string detail;
};

/// T0 disjointness: the first 2^16 48-bit words must be pairwise distinct.
[[nodiscard]] TestOutcome t0_disjointness(std::span<const std::uint8_t> bits);

/// T1 monobit on 20000 bits: 9654 < ones < 10346.
[[nodiscard]] TestOutcome t1_monobit(std::span<const std::uint8_t> bits);

/// T2 poker on 20000 bits (5000 4-bit nibbles):
/// 1.03 < (16/5000)*sum(c_i^2) - 5000 < 57.4.
[[nodiscard]] TestOutcome t2_poker(std::span<const std::uint8_t> bits);

/// T3 runs on 20000 bits: run-length counts (1..5, >=6) for each bit value
/// must fall within the AIS31 tolerance intervals.
[[nodiscard]] TestOutcome t3_runs(std::span<const std::uint8_t> bits);

/// T4 long run on 20000 bits: no run of length >= 34.
[[nodiscard]] TestOutcome t4_long_run(std::span<const std::uint8_t> bits);

/// T5 autocorrelation: shift tau chosen as the worst of 1..5000 over the
/// first 10000 bits, then Z_tau on the next 10000 must satisfy
/// 2326 < Z < 2674.
[[nodiscard]] TestOutcome t5_autocorrelation(
    std::span<const std::uint8_t> bits);

/// T6 uniform distribution (parameters per AIS31 example
/// (k=1, n=100000, a=0.025)): |ones/n - 0.5| < a.
[[nodiscard]] TestOutcome t6_uniform(std::span<const std::uint8_t> bits,
                                     std::size_t n = 100000,
                                     double a = 0.025);

/// T7 comparative test for multinomial distributions (transition
/// homogeneity): chi-square comparison of successor distributions after a
/// 0 vs after a 1 over n = 100000 transitions; threshold 15.13
/// (chi-square 0.9999 quantile, 1 dof... per AIS31 example application).
[[nodiscard]] TestOutcome t7_homogeneity(std::span<const std::uint8_t> bits,
                                         std::size_t n = 100000);

/// T8 entropy (Coron): f > 7.976 with L=8, Q=2560, K=256000.
[[nodiscard]] TestOutcome t8_entropy(std::span<const std::uint8_t> bits);

/// Procedure A: T0 plus 257 repetitions of T1-T5 per the standard would
/// need ~5M bits; this runs T0 once and T1-T5 on `rounds` consecutive
/// 20000-bit blocks (default 8 for practicality; pass rounds=257 for the
/// full procedure).
struct ProcedureResult {
  std::vector<TestOutcome> outcomes;
  bool passed = false;
  /// Indices of failed outcomes.
  std::vector<std::size_t> failures;
};

[[nodiscard]] ProcedureResult procedure_a(std::span<const std::uint8_t> bits,
                                          std::size_t rounds = 8);

/// Procedure B: T6, T7, T8 on the raw sequence.
[[nodiscard]] ProcedureResult procedure_b(std::span<const std::uint8_t> bits);

/// The cheap per-device battery the fleet campaign runs on every shard:
/// T1-T4 on ONE 20000-bit block (T0 and T5-T8 need megabit streams —
/// far beyond a per-shard budget at fleet scale). Deliberately serial:
/// the campaign already fans out one shard per task, so a nested fan-out
/// here would only add scheduling overhead.
[[nodiscard]] ProcedureResult quick_battery(std::span<const std::uint8_t> bits);

/// Bits required by procedure_a(rounds) / procedure_b() /
/// quick_battery().
[[nodiscard]] std::size_t procedure_a_bits(std::size_t rounds = 8);
[[nodiscard]] std::size_t procedure_b_bits();
[[nodiscard]] std::size_t quick_battery_bits();

}  // namespace ptrng::trng::ais31
