// Entropy accounting for oscillator-based TRNGs.
//
// Analytic side (Gaussian-phase model, cf. Baudet et al. [8]): if the
// sampled oscillator's phase at a sampling instant is N(mu, v) in CYCLES
// (v = accumulated variance in cycles^2) and the bit is 1 when the
// fractional phase falls in [0, 1/2), then by Fourier expansion of the
// half-period indicator:
//
//   P(bit = 1) = 1/2 + sum_{m odd} (2/(pi m)) sin(2 pi m mu) e^{-2 pi^2 m^2 v}
//
// The worst-case (adversary knows the previous phase) conditional bias is
// the m = 1 envelope (2/pi) e^{-2 pi^2 v}, giving the entropy lower bound
//   H >= h_b(1/2 + (2/pi) e^{-2 pi^2 v}) ~ 1 - (8/(pi^2 ln2)) e^{-4 pi^2 v}.
//
// Empirical side: block Shannon entropy, min-entropy, first-order Markov
// entropy rate, and Coron's AIS31 T8 estimator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ptrng::trng {

/// Exact P(bit = 1) for fractional phase N(mu, v) (theta-function series,
/// truncated when terms fall below 1e-18). v in cycles^2, mu in cycles.
[[nodiscard]] double bit_probability(double mu, double v);

/// Worst-case bias |P(1) - 1/2| over mu: (2/pi) e^{-2 pi^2 v} envelope
/// (first odd harmonic; subsequent terms are negligible whenever it is).
[[nodiscard]] double worst_case_bias(double v);

/// Conditional-entropy lower bound per bit, worst case over the previous
/// phase: h_b(1/2 + worst_case_bias(v)). In [0, 1].
[[nodiscard]] double entropy_lower_bound(double v);

/// Average (over uniform mu) Shannon entropy per bit — the optimistic
/// figure legacy models quote when they ignore conditioning.
[[nodiscard]] double entropy_average_mu(double v, std::size_t mu_grid = 64);

/// Empirical Shannon entropy of non-overlapping `block_bits`-bit blocks,
/// per bit. Requires enough data: at least ~20 * 2^block_bits blocks.
[[nodiscard]] double shannon_block_entropy(std::span<const std::uint8_t> bits,
                                           std::size_t block_bits);

/// Empirical min-entropy per `block_bits` block, per bit.
[[nodiscard]] double min_entropy(std::span<const std::uint8_t> bits,
                                 std::size_t block_bits);

/// First-order Markov entropy rate estimate [bits/bit]:
/// H = -sum_s p(s) sum_t p(t|s) log2 p(t|s).
[[nodiscard]] double markov_entropy_rate(std::span<const std::uint8_t> bits);

/// Coron's entropy test statistic (AIS31 T8) with parameters L (block
/// bits), Q (init blocks), K (test blocks). Returns the estimator f;
/// AIS31 requires f > 7.976 for L = 8, Q = 2560, K = 256000.
[[nodiscard]] double coron_entropy(std::span<const std::uint8_t> bits,
                                   std::size_t l = 8, std::size_t q = 2560,
                                   std::size_t k = 256000);

}  // namespace ptrng::trng
