// Raw-sample export: a versioned binary container for RAW noise-source
// samples, shaped for external SP 800-90B estimation (NIST ea_noniid,
// per the jitterentropy raw-entropy methodology) so every generator in
// the repo — eRO, multi-ring, cell-array — can be assessed by
// independent tooling as well as by trng/sp80090b.
//
// Byte-exact layout (all integers little-endian; docs/ARCHITECTURE.md
// §8 is the normative spec):
//
//   offset size
//   0      8    magic "PTRNGRAW"
//   8      2    u16 format version (currently 1)
//   10     1    u8  sample width in BITS (1..8)
//   11     1    u8  reserved, must be 0
//   12     4    u32 reserved, must be 0
//   16     16   generator id, NUL-padded ASCII (at most 15 characters)
//   32     32   SHA-256 digest of the generator's canonical config
//               string (config_digest) — a timestamp-free fingerprint,
//               so identical configs produce identical files
//   64     ...  payload: ONE SAMPLE PER BYTE, each value < 2^width,
//               until end of stream (no length field: the format is
//               streaming-friendly and chunked writes are byte-identical
//               to a one-shot write)
//
// The payload region (offset 64 onward) is directly consumable by
// `ea_non_iid <file> <width>` after stripping the header, e.g.
// `tail -c +65 ero.ptrngraw > ero.bin`.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/sha256.hpp"
#include "trng/bit_stream.hpp"

namespace ptrng::trng {

/// Decoded/encodable header of a raw-sample export file.
struct RawExportHeader {
  static constexpr std::size_t kSize = 64;     ///< encoded byte count
  static constexpr std::size_t kIdSize = 16;   ///< id field incl. NUL pad
  static constexpr std::uint16_t kVersion = 1;

  std::uint16_t version = kVersion;
  std::uint8_t sample_width_bits = 1;  ///< bits per sample (1..8)
  std::string generator_id;            ///< <= kIdSize - 1 ASCII chars
  Sha256::Digest config_digest{};      ///< config fingerprint
};

/// Encodes a header into its exact 64-byte wire form. Throws DataError
/// when a field is unencodable (id too long, width out of range).
[[nodiscard]] std::array<std::byte, RawExportHeader::kSize> encode_header(
    const RawExportHeader& header);

/// Decodes and validates a wire header. Throws DataError on short
/// input, bad magic, unsupported version, out-of-range sample width,
/// nonzero reserved bytes, or an unterminated generator id.
[[nodiscard]] RawExportHeader decode_header(std::span<const std::byte> bytes);

/// Timestamp-free config fingerprint: SHA-256 of a canonical config
/// string the caller assembles (generator name + the parameters that
/// select its stream).
[[nodiscard]] Sha256::Digest config_digest(std::string_view canonical_config);

/// Streaming writer: emits the header at construction, then appends
/// samples one byte each. Any sequence of write calls producing the
/// same total sample sequence yields a byte-identical file.
class RawExportWriter {
 public:
  RawExportWriter(std::ostream& out, const RawExportHeader& header);

  /// Appends raw BITS (values 0/1, one byte each). Requires a 1-bit
  /// sample width.
  void write_bits(std::span<const std::uint8_t> bits);

  /// Appends already-encoded samples (one per byte, each < 2^width).
  void write_samples(std::span<const std::byte> samples);

  [[nodiscard]] std::size_t samples_written() const noexcept {
    return written_;
  }
  [[nodiscard]] const RawExportHeader& header() const noexcept {
    return header_;
  }

 private:
  std::ostream& out_;
  RawExportHeader header_;
  std::size_t written_ = 0;
};

/// A fully decoded export file.
struct RawExportData {
  RawExportHeader header;
  std::vector<std::uint8_t> samples;  ///< one sample per element
};

/// Reads header + payload to end of stream, validating every sample
/// against the header's width. Throws DataError on any corruption.
[[nodiscard]] RawExportData read_raw_export(std::istream& in);

/// Pipeline tap (trng::TapStage) streaming the RAW bit stream into a
/// RawExportWriter, bounded by `max_samples` — attach via
/// Pipeline::attach_tap to export exactly the stream the health taps
/// observe.
class ExportTap final : public TapStage {
 public:
  explicit ExportTap(
      RawExportWriter& writer,
      std::size_t max_samples = std::numeric_limits<std::size_t>::max());

  void observe(std::span<const std::uint8_t> raw_bits) override;
  [[nodiscard]] const char* tap_name() const noexcept override {
    return "raw_export";
  }

  /// Samples actually exported (caps at max_samples).
  [[nodiscard]] std::size_t samples_exported() const noexcept {
    return exported_;
  }

 private:
  RawExportWriter& writer_;
  std::size_t max_samples_;
  std::size_t exported_ = 0;
};

}  // namespace ptrng::trng
