// Multi-ring TRNG in the style of Sunar, Martin & Stinson (paper ref [7]):
// R independent rings are sampled simultaneously and XORed into one raw
// bit. Entropy adds across rings (bias multiplies by the piling-up
// lemma), buying entropy rate at the cost of area — the classic
// alternative to slowing the sampling divider down.
//
// Included as a referenced-baseline architecture: the paper's critique
// (flicker noise correlates successive samples of EACH ring) applies to
// the multi-ring design too, since XOR cannot remove common per-ring
// autocorrelation — only bias.
#pragma once

#include <cstdint>
#include <vector>

#include "oscillator/ring_oscillator.hpp"
#include "trng/ero_trng.hpp"

namespace ptrng::trng {

/// Configuration of the Sunar-style generator.
struct MultiRingTrngConfig {
  std::size_t rings = 8;          ///< sampled rings (R)
  std::uint32_t divider = 1000;   ///< sampling divider on the common clock
  double duty_cycle = 0.5;
  /// Relative frequency spread across rings (deterministic fan;
  /// placement/routing makes real rings differ by ~1%).
  double frequency_spread = 1e-2;
};

/// R sampled rings + one sampling ring, XOR combiner.
class MultiRingTrng {
 public:
  /// `base` is the per-ring noise/frequency template; ring i gets a
  /// deterministic frequency offset and an independent seed derived from
  /// base.seed.
  MultiRingTrng(const oscillator::RingOscillatorConfig& base,
                const MultiRingTrngConfig& config);

  /// Next raw bit: XOR of the R sampled ring states at the sampling edge.
  std::uint8_t next_bit();

  /// Bulk generation.
  [[nodiscard]] std::vector<std::uint8_t> generate(std::size_t n_bits);

  [[nodiscard]] std::size_t ring_count() const noexcept {
    return rings_.size();
  }
  [[nodiscard]] const MultiRingTrngConfig& config() const noexcept {
    return config_;
  }

 private:
  struct SampledRing {
    oscillator::RingOscillator osc;
    double t_prev = 0.0;
    double t_next = 0.0;
    explicit SampledRing(const oscillator::RingOscillatorConfig& cfg)
        : osc(cfg) {}
  };

  std::uint8_t sample_ring(SampledRing& ring, double t_sample) const;

  MultiRingTrngConfig config_;
  std::vector<SampledRing> rings_;
  oscillator::RingOscillator sampling_;
};

/// Paper-calibrated multi-ring generator.
[[nodiscard]] MultiRingTrng paper_multi_ring(std::size_t rings,
                                             std::uint32_t divider,
                                             std::uint64_t seed = 0x5177a4);

}  // namespace ptrng::trng
