// Multi-ring TRNG in the style of Sunar, Martin & Stinson (paper ref [7]):
// R independent rings are sampled simultaneously and XORed into one raw
// bit. Entropy adds across rings (bias multiplies by the piling-up
// lemma), buying entropy rate at the cost of area — the classic
// alternative to slowing the sampling divider down.
//
// Included as a referenced-baseline architecture: the paper's critique
// (flicker noise correlates successive samples of EACH ring) applies to
// the multi-ring design too, since XOR cannot remove common per-ring
// autocorrelation — only bias.
#pragma once

#include <cstdint>
#include <vector>

#include "oscillator/ring_oscillator.hpp"
#include "trng/bit_stream.hpp"

namespace ptrng::trng {

/// Configuration of the Sunar-style generator.
struct MultiRingTrngConfig {
  std::size_t rings = 8;          ///< sampled rings (R)
  std::uint32_t divider = 1000;   ///< sampling divider on the common clock
  double duty_cycle = 0.5;
  /// Relative frequency spread across rings (deterministic fan;
  /// placement/routing makes real rings differ by ~1%).
  double frequency_spread = 1e-2;
};

/// R sampled rings + one sampling ring, XOR combiner. A BitSource with a
/// genuinely parallel batched path: generate_into() computes each ring's
/// sampled-bit block as an independent task on the common thread pool
/// (one ring per chunk) and XOR-reduces the blocks in ring order. Each
/// ring's bit block depends only on that ring's own oscillator state and
/// the shared sample-time vector (drawn serially before the fan-out, per
/// the ARCHITECTURE §5 rule), so the output is bit-identical for any
/// PTRNG_THREADS — and identical to repeated next_bit() calls.
class MultiRingTrng final : public BitSource {
 public:
  /// `base` is the per-ring noise/frequency template; ring i gets a
  /// deterministic frequency offset and an independent
  /// chunk_seed(base.seed, i)-derived seed.
  MultiRingTrng(const oscillator::RingOscillatorConfig& base,
                const MultiRingTrngConfig& config);

  /// Next raw bit: XOR of the R sampled ring states at the sampling edge.
  std::uint8_t next_bit() override;

  /// Batched fast path, parallel across rings (see class comment).
  void generate_into(std::span<std::uint8_t> out) override;

  [[nodiscard]] std::size_t ring_count() const noexcept {
    return rings_.size();
  }
  [[nodiscard]] const MultiRingTrngConfig& config() const noexcept {
    return config_;
  }

 private:
  struct SampledRing {
    oscillator::RingOscillator osc;
    oscillator::EdgeBracket bracket;
    explicit SampledRing(const oscillator::RingOscillatorConfig& cfg)
        : osc(cfg) {}
  };

  std::uint8_t sample_ring(SampledRing& ring, double t_sample) const;

  MultiRingTrngConfig config_;
  std::vector<SampledRing> rings_;
  oscillator::RingOscillator sampling_;
  std::vector<double> t_samples_;                   ///< batch scratch
  std::vector<std::vector<std::uint8_t>> blocks_;   ///< per-ring scratch
};

/// Paper-calibrated multi-ring generator.
[[nodiscard]] MultiRingTrng paper_multi_ring(std::size_t rings,
                                             std::uint32_t divider,
                                             std::uint64_t seed = 0x5177a4);

}  // namespace ptrng::trng
