#include "trng/cell_array.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "phase_noise/conversion.hpp"
#include "phase_noise/isf.hpp"
#include "transistor/inverter.hpp"
#include "transistor/technology.hpp"

namespace ptrng::trng {

namespace {
/// Periods realized per buffered block; bounds the per-cell staging
/// memory while keeping GateChainOscillator::next_periods batched.
constexpr std::size_t kPeriodBlock = 256;
}  // namespace

CellArrayTrng::Cell::Cell(const oscillator::GateChainConfig& cfg,
                          std::size_t sync_stages)
    : osc(cfg), latch(sync_stages, 0) {
  buffer.resize(kPeriodBlock);
  buf_pos = buffer.size();  // force a fill on the first period
  period = next_period();
}

double CellArrayTrng::Cell::next_period() {
  if (buf_pos == buffer.size()) {
    osc.next_periods(buffer);
    buf_pos = 0;
  }
  return buffer[buf_pos++].period;
}

std::uint8_t CellArrayTrng::Cell::sample(double t, double duty) {
  while (t_edge + period <= t) {
    t_edge += period;
    period = next_period();
  }
  const double frac = (t - t_edge) / period;
  const std::uint8_t raw = frac < duty ? 1 : 0;
  if (latch.empty()) return raw;
  const std::uint8_t out = latch[latch_pos];
  latch[latch_pos] = raw;
  latch_pos = (latch_pos + 1) % latch.size();
  return out;
}

CellArrayTrng::CellArrayTrng(const CellArrayConfig& config)
    : config_(config) {
  PTRNG_EXPECTS(config.cells >= 1);
  PTRNG_EXPECTS(config.base_stages >= 3);
  PTRNG_EXPECTS(config.base_stages % 2 == 1);
  PTRNG_EXPECTS(config.stage_delay > 0.0);
  PTRNG_EXPECTS(config.sigma_stage >= 0.0);
  PTRNG_EXPECTS(config.flicker_amplitude >= 0.0);
  PTRNG_EXPECTS(config.sample_divider >= 1);
  PTRNG_EXPECTS(config.sync_stages <= 64);
  PTRNG_EXPECTS(config.duty_cycle > 0.0 && config.duty_cycle < 1.0);
  PTRNG_EXPECTS(config.decimation >= 4 && config.decimation % 4 == 0);

  ts_ = static_cast<double>(config.sample_divider) * 2.0 *
        static_cast<double>(config.base_stages) * config.stage_delay;

  cells_.reserve(config.cells);
  for (std::size_t i = 0; i < config.cells; ++i) {
    oscillator::GateChainConfig cell_cfg;
    // Odd, distinct inverter counts: base, base+2, base+4, ...
    cell_cfg.n_stages = config.base_stages + 2 * i;
    cell_cfg.stage_delay = config.stage_delay;
    cell_cfg.sigma_stage = config.sigma_stage;
    cell_cfg.flicker_amplitude = config.flicker_amplitude;
    cell_cfg.flicker_floor_hz = config.flicker_floor_hz;
    // Decorrelated per-cell stream, independent of later batching (the
    // same derivation rule as the multi-ring per-ring seeds).
    cell_cfg.seed = chunk_seed(config.seed, i);
    cell_cfg.sampler = config.sampler;
    cells_.emplace_back(cell_cfg, config.sync_stages);
  }

  // Prime the latch shift registers: the first sync_stages sample-clock
  // ticks fill every cell's register, so the first DELIVERED bit is
  // already a real latched sample instead of the registers' reset state.
  for (std::size_t k = 0; k < config.sync_stages; ++k) {
    const double t = static_cast<double>(sample_index_ + 1) * ts_;
    ++sample_index_;
    for (auto& cell : cells_) (void)cell.sample(t, config_.duty_cycle);
  }
}

std::uint8_t CellArrayTrng::next_bit() {
  std::uint8_t bit = 0;
  generate_into({&bit, 1});
  return bit;
}

void CellArrayTrng::generate_into(std::span<std::uint8_t> out) {
  if (out.empty()) return;
  // 1. Sample times are a pure function of the sample counter (the
  //    latch clock is deterministic) — reserve the tick range up front
  //    so mid-block re-entry continues the same time grid.
  const std::uint64_t first = sample_index_;
  sample_index_ += out.size();
  // 2. One cell per task: each cell's bit block touches only that
  //    cell's oscillator/latch state, so the fan-out has no shared
  //    mutable state and cannot depend on PTRNG_THREADS.
  blocks_.resize(cells_.size());
  parallel_for(0, cells_.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t c = b; c < e; ++c) {
      auto& block = blocks_[c];
      block.resize(out.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        const double t = static_cast<double>(first + i + 1) * ts_;
        block[i] = cells_[c].sample(t, config_.duty_cycle);
      }
    }
  });
  // 3. XOR-combine the latched cell bits in cell order.
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  for (const auto& block : blocks_)
    for (std::size_t i = 0; i < out.size(); ++i) out[i] ^= block[i];
}

void CellArrayTrng::attach_decimation(Pipeline& pipeline) const {
  pipeline.add_transform(std::make_unique<VonNeumannTransform>())
      .add_transform(
          std::make_unique<XorDecimateTransform>(config_.decimation / 4));
}

std::size_t CellArrayTrng::cell_stages(std::size_t i) const {
  PTRNG_EXPECTS(i < cells_.size());
  return cells_[i].osc.config().n_stages;
}

CellArrayConfig cell_array_from_technology(
    const transistor::TechnologyNode& node, std::size_t cells,
    std::size_t base_stages, double fanout, bool with_flicker) {
  const transistor::Inverter inverter(node, fanout);
  const auto conv = phase_noise::convert_ring(
      inverter, base_stages, phase_noise::Isf::ring_typical(base_stages));

  CellArrayConfig cfg;
  cfg.cells = cells;
  cfg.base_stages = base_stages;
  cfg.stage_delay = inverter.propagation_delay();
  // Per-period thermal jitter variance is b_th / f0^3 (the gate-chain
  // equivalence b_th = Var(J_th) * f0^3); the 2N independent stage
  // traversals split it evenly.
  const double period_var = conv.b_th / (conv.f0 * conv.f0 * conv.f0);
  cfg.sigma_stage =
      std::sqrt(period_var / (2.0 * static_cast<double>(base_stages)));
  if (with_flicker) {
    // Low-frequency aggregation rule from the gate-chain model: the
    // period's 1/f jitter PSD amplitude is b_fl / f0^4, and the 2N
    // independent per-stage flicker processes add in PSD, so one
    // stage's delay-flicker amplitude is that split 2N ways.
    cfg.flicker_amplitude = conv.b_fl / (conv.f0 * conv.f0 * conv.f0 *
                                         conv.f0) /
                            (2.0 * static_cast<double>(base_stages));
  }
  return cfg;
}

}  // namespace ptrng::trng
