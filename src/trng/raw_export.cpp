#include "trng/raw_export.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace ptrng::trng {

namespace {

constexpr char kMagic[8] = {'P', 'T', 'R', 'N', 'G', 'R', 'A', 'W'};
constexpr std::size_t kMagicOff = 0;
constexpr std::size_t kVersionOff = 8;
constexpr std::size_t kWidthOff = 10;
constexpr std::size_t kReserved8Off = 11;
constexpr std::size_t kReserved32Off = 12;
constexpr std::size_t kIdOff = 16;
constexpr std::size_t kDigestOff = 32;

void put_u16_le(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v & 0xffu);
  p[1] = static_cast<std::byte>((v >> 8) & 0xffu);
}

std::uint16_t get_u16_le(const std::byte* p) {
  return static_cast<std::uint16_t>(std::to_integer<unsigned>(p[0]) |
                                    (std::to_integer<unsigned>(p[1]) << 8));
}

}  // namespace

std::array<std::byte, RawExportHeader::kSize> encode_header(
    const RawExportHeader& header) {
  if (header.generator_id.size() > RawExportHeader::kIdSize - 1)
    throw DataError("raw export: generator id longer than 15 characters: \"" +
                    header.generator_id + "\"");
  if (header.sample_width_bits < 1 || header.sample_width_bits > 8)
    throw DataError("raw export: sample width must be 1..8 bits, got " +
                    std::to_string(header.sample_width_bits));
  if (header.version != RawExportHeader::kVersion)
    throw DataError("raw export: cannot encode version " +
                    std::to_string(header.version));

  std::array<std::byte, RawExportHeader::kSize> out{};  // zero-filled
  std::memcpy(out.data() + kMagicOff, kMagic, sizeof(kMagic));
  put_u16_le(out.data() + kVersionOff, header.version);
  out[kWidthOff] = static_cast<std::byte>(header.sample_width_bits);
  // Reserved bytes stay zero from the aggregate init.
  std::memcpy(out.data() + kIdOff, header.generator_id.data(),
              header.generator_id.size());
  std::copy(header.config_digest.begin(), header.config_digest.end(),
            out.begin() + kDigestOff);
  return out;
}

RawExportHeader decode_header(std::span<const std::byte> bytes) {
  if (bytes.size() < RawExportHeader::kSize)
    throw DataError("raw export: header truncated (" +
                    std::to_string(bytes.size()) + " of " +
                    std::to_string(RawExportHeader::kSize) + " bytes)");
  if (std::memcmp(bytes.data() + kMagicOff, kMagic, sizeof(kMagic)) != 0)
    throw DataError("raw export: bad magic (not a PTRNGRAW file)");

  RawExportHeader header;
  header.version = get_u16_le(bytes.data() + kVersionOff);
  if (header.version != RawExportHeader::kVersion)
    throw DataError("raw export: unsupported format version " +
                    std::to_string(header.version));
  header.sample_width_bits =
      std::to_integer<std::uint8_t>(bytes[kWidthOff]);
  if (header.sample_width_bits < 1 || header.sample_width_bits > 8)
    throw DataError("raw export: sample width out of range: " +
                    std::to_string(header.sample_width_bits));
  if (std::to_integer<unsigned>(bytes[kReserved8Off]) != 0 ||
      std::any_of(bytes.begin() + kReserved32Off,
                  bytes.begin() + kReserved32Off + 4,
                  [](std::byte b) { return std::to_integer<unsigned>(b); }))
    throw DataError("raw export: nonzero reserved header bytes");

  const char* id = reinterpret_cast<const char*>(bytes.data() + kIdOff);
  if (id[RawExportHeader::kIdSize - 1] != '\0')
    throw DataError("raw export: generator id is not NUL-terminated");
  header.generator_id.assign(id);

  std::copy(bytes.begin() + kDigestOff,
            bytes.begin() + kDigestOff +
                static_cast<std::ptrdiff_t>(Sha256::kDigestBytes),
            header.config_digest.begin());
  return header;
}

Sha256::Digest config_digest(std::string_view canonical_config) {
  return Sha256::digest(std::as_bytes(std::span<const char>(
      canonical_config.data(), canonical_config.size())));
}

RawExportWriter::RawExportWriter(std::ostream& out,
                                 const RawExportHeader& header)
    : out_(out), header_(header) {
  const auto wire = encode_header(header);  // validates the fields
  out_.write(reinterpret_cast<const char*>(wire.data()),
             static_cast<std::streamsize>(wire.size()));
  if (!out_) throw DataError("raw export: header write failed");
}

void RawExportWriter::write_bits(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(header_.sample_width_bits == 1);
  for (const std::uint8_t b : bits) {
    const char sample = static_cast<char>(b & 1u);
    out_.put(sample);
  }
  if (!out_) throw DataError("raw export: payload write failed");
  written_ += bits.size();
}

void RawExportWriter::write_samples(std::span<const std::byte> samples) {
  const unsigned limit = 1u << header_.sample_width_bits;
  for (const std::byte s : samples)
    if (std::to_integer<unsigned>(s) >= limit)
      throw DataError("raw export: sample value exceeds " +
                      std::to_string(header_.sample_width_bits) +
                      "-bit width");
  out_.write(reinterpret_cast<const char*>(samples.data()),
             static_cast<std::streamsize>(samples.size()));
  if (!out_) throw DataError("raw export: payload write failed");
  written_ += samples.size();
}

RawExportData read_raw_export(std::istream& in) {
  std::array<std::byte, RawExportHeader::kSize> wire{};
  in.read(reinterpret_cast<char*>(wire.data()),
          static_cast<std::streamsize>(wire.size()));
  if (in.gcount() != static_cast<std::streamsize>(wire.size()))
    throw DataError("raw export: header truncated (" +
                    std::to_string(in.gcount()) + " of " +
                    std::to_string(RawExportHeader::kSize) + " bytes)");

  RawExportData data;
  data.header = decode_header(wire);

  const unsigned limit = 1u << data.header.sample_width_bits;
  char chunk[4096];
  for (;;) {
    in.read(chunk, sizeof(chunk));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    for (std::streamsize i = 0; i < got; ++i) {
      const auto sample = static_cast<std::uint8_t>(chunk[i]);
      if (sample >= limit)
        throw DataError("raw export: payload sample " +
                        std::to_string(data.samples.size()) +
                        " exceeds the declared width");
      data.samples.push_back(sample);
    }
    if (!in) break;
  }
  return data;
}

ExportTap::ExportTap(RawExportWriter& writer, std::size_t max_samples)
    : writer_(writer), max_samples_(max_samples) {}

void ExportTap::observe(std::span<const std::uint8_t> raw_bits) {
  const std::size_t room = max_samples_ - exported_;
  const std::size_t take = std::min(room, raw_bits.size());
  if (take == 0) return;
  writer_.write_bits(raw_bits.first(take));
  exported_ += take;
}

}  // namespace ptrng::trng
