// The bit-generation stack: every stage of the paper's Fig. 4 chain —
// raw-bit source (eRO-TRNG, multi-ring), algebraic post-processing
// (AIS31 Fig. 1 third stage) and the embedded online test — expressed as
// one composable, batch-first streaming pipeline:
//
//   BitSource --> [monitor tap] --> BitTransform --> ... --> output bits
//
// Sources are batch-first (`generate_into`, mirroring
// noise::NoiseSource::fill) so hot paths can block and parallelize;
// transforms are streaming and stateful (carry state persists across
// block boundaries), so a pipeline fed in arbitrary block sizes produces
// exactly the same bits as one fed the whole stream at once. The legacy
// free functions in trng/postprocess.hpp are thin wrappers over these
// transforms. docs/ARCHITECTURE.md §6 states the layer rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "trng/online_test.hpp"

namespace ptrng::trng {

class HealthEngine;  // continuous_health.hpp

/// A producer of raw random bits (values 0/1), the first pipeline stage.
/// Implementations must keep `next_bit()` and `generate_into()` on the
/// SAME underlying stream: interleaving the two pulls consecutive bits
/// of one sequence, and `generate_into` over n bits is bit-identical to
/// n `next_bit()` calls (test_bit_stream.cpp pins this for every
/// generator, at 1 and 8 threads).
class BitSource {
 public:
  virtual ~BitSource() = default;

  /// Produces the next raw bit of the stream.
  virtual std::uint8_t next_bit() = 0;

  /// Batch-first fast path: fills `out` with the next out.size() bits.
  /// Overridable for sources with a real batched implementation (the
  /// multi-ring TRNG parallelizes across rings here); the default loops
  /// next_bit().
  virtual void generate_into(std::span<std::uint8_t> out) {
    for (auto& b : out) b = next_bit();
  }

  /// Bulk generation convenience (allocating form of generate_into).
  [[nodiscard]] std::vector<std::uint8_t> generate(std::size_t n_bits);
};

/// A streaming, stateful re-expression of a post-processing block: each
/// push consumes an input block of any size (including empty) and APPENDS
/// the produced bits to `out`. Partial state (an open XOR group, an
/// unpaired von Neumann bit) carries across pushes, so block boundaries
/// never change the output stream.
class BitTransform {
 public:
  virtual ~BitTransform() = default;

  /// Consumes `in`, appending output bits to `out`.
  virtual void push(std::span<const std::uint8_t> in,
                    std::vector<std::uint8_t>& out) = 0;

  /// Drops any carried partial state (open group / unpaired bit).
  virtual void reset() = 0;

  /// Human-readable stage name for reports.
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Streaming XOR decimation (piling-up corrector): emits the XOR of each
/// non-overlapping `factor`-bit group; a trailing partial group stays
/// buffered until completed by a later push.
class XorDecimateTransform : public BitTransform {
 public:
  explicit XorDecimateTransform(std::size_t factor);

  void push(std::span<const std::uint8_t> in,
            std::vector<std::uint8_t>& out) override;
  void reset() override { acc_ = 0, filled_ = 0; }
  [[nodiscard]] const char* name() const noexcept override {
    return "xor_decimate";
  }

  [[nodiscard]] std::size_t factor() const noexcept { return factor_; }

 private:
  std::size_t factor_;
  std::uint8_t acc_ = 0;      ///< XOR of the open group so far
  std::size_t filled_ = 0;    ///< bits consumed into the open group
};

/// Streaming von Neumann corrector: 01 -> 0, 10 -> 1, 00/11 dropped. An
/// unpaired bit is held until its partner arrives, so pairs spanning
/// block boundaries behave exactly like the batch version.
class VonNeumannTransform final : public BitTransform {
 public:
  void push(std::span<const std::uint8_t> in,
            std::vector<std::uint8_t>& out) override;
  void reset() override { has_pending_ = false; }
  [[nodiscard]] const char* name() const noexcept override {
    return "von_neumann";
  }

 private:
  bool has_pending_ = false;
  std::uint8_t pending_ = 0;
};

/// Parity of non-overlapping `block`-sized groups — the hardware-style
/// alias of XOR decimation, kept as its own stage name.
class ParityFilterTransform final : public XorDecimateTransform {
 public:
  explicit ParityFilterTransform(std::size_t block)
      : XorDecimateTransform(block) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "parity_filter";
  }
};

/// Composes one BitSource with N BitTransforms and an optional
/// ThermalNoiseMonitor tap into a BitSource again (pipelines nest).
///
/// Raw bits are pulled from the source in `block_bits` batches (the
/// batched fast path), tapped by the monitor, then run through the
/// transforms in insertion order. The tap watches the RAW stream the way
/// the paper's embedded test watches the counter: every
/// monitor.config().n_cycles raw bits it pushes the cumulative ones
/// count, so a variance collapse or bias lock on the source trips the
/// chi-square band regardless of what post-processing hides downstream.
///
/// The pipeline does not own the source or monitor (they usually outlive
/// it in the enclosing scenario); it owns its transforms.
///
/// A transform chain that stops emitting (e.g. a von Neumann corrector
/// fed by a locked, constant source) makes next_bit()/generate_into()
/// pull raw blocks indefinitely — exactly the failure mode the monitor
/// tap exists to flag, so install one when the source is untrusted.
class Pipeline final : public BitSource {
 public:
  explicit Pipeline(BitSource& source, std::size_t block_bits = 4096);

  /// Appends a post-processing stage; returns *this for chaining.
  Pipeline& add_transform(std::unique_ptr<BitTransform> transform);

  /// Installs (or clears, with nullptr) the raw-stream online-test tap.
  Pipeline& set_monitor(ThermalNoiseMonitor* monitor);

  /// Installs (or clears, with nullptr) the continuous-health tap: the
  /// engine scans every raw block in place (zero-copy, word-at-a-time)
  /// BEFORE the transforms run, like the monitor tap — post-processing
  /// cannot hide a stuck or biased source from the SP 800-90B §4.4
  /// tests. The engine is not owned and usually outlives the pipeline.
  Pipeline& set_health_engine(HealthEngine* engine);

  /// The installed continuous-health engine, or nullptr.
  [[nodiscard]] HealthEngine* health_engine() const noexcept {
    return health_;
  }

  std::uint8_t next_bit() override;
  void generate_into(std::span<std::uint8_t> out) override;

  /// Raw bits pulled from the source so far.
  [[nodiscard]] std::size_t raw_bits() const noexcept { return raw_bits_; }
  /// Online-test alarms observed by the tap so far.
  [[nodiscard]] std::size_t alarms() const noexcept { return alarms_; }
  [[nodiscard]] std::size_t transform_count() const noexcept {
    return transforms_.size();
  }

 private:
  void pump();  ///< pulls one raw block through tap + transforms

  BitSource& source_;
  std::size_t block_bits_;
  std::vector<std::unique_ptr<BitTransform>> transforms_;
  ThermalNoiseMonitor* monitor_ = nullptr;
  HealthEngine* health_ = nullptr;

  std::vector<std::uint8_t> raw_block_;
  std::vector<std::uint8_t> scratch_[2];
  std::vector<std::uint8_t> ready_;  ///< transformed bits awaiting delivery
  std::size_t ready_pos_ = 0;
  std::size_t raw_bits_ = 0;
  std::size_t alarms_ = 0;
  // Monitor-tap window state (cumulative ones count emulates the Fig. 6
  // counter's monotone count sequence).
  std::size_t tap_window_fill_ = 0;
  std::int64_t tap_cumulative_ones_ = 0;
};

}  // namespace ptrng::trng
