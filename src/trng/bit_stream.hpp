// The bit-generation stack: every stage of the paper's Fig. 4 chain —
// raw-bit source (eRO-TRNG, multi-ring), algebraic post-processing
// (AIS31 Fig. 1 third stage) and the embedded online test — expressed as
// one composable, batch-first streaming pipeline:
//
//   BitSource --> [taps] --> BitTransform --> ... --> output bits/BYTES
//
// Sources are batch-first (`generate_into`, mirroring
// noise::NoiseSource::fill) so hot paths can block and parallelize;
// transforms are streaming and stateful (carry state persists across
// block boundaries), so a pipeline fed in arbitrary block sizes produces
// exactly the same bits as one fed the whole stream at once. The legacy
// free functions in trng/postprocess.hpp are thin wrappers over these
// transforms.
//
// Since PR 7 the PUBLIC output surface is byte-first: consumers call
// fill_bytes()/generate_bytes() (the RBG service, the conditioner and
// every downstream user deal in bytes); the bit-level calls remain the
// raw domain for transforms and entropy estimation. Raw-stream
// observers (online monitor, continuous-health engine, raw-sample
// recorder, conditioner entropy accounting) attach through ONE
// mechanism, Pipeline::attach_tap(TapStage&). docs/ARCHITECTURE.md §6
// states the layer rules, §7 the byte-first conventions.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "trng/online_test.hpp"

namespace ptrng::trng {

class HealthEngine;  // continuous_health.hpp

/// Byte-packing convention of the byte-first surface: bit i of the
/// stream lands in bit (7 - i%8) of byte i/8 — MSB-first, the hardware
/// shift-register order. Pinned by test_bit_stream.cpp. Throws
/// ContractViolation when bits.size() != 8 * out.size().
void pack_bits_msb_first(std::span<const std::uint8_t> bits,
                         std::span<std::byte> out);

/// Inverse of pack_bits_msb_first (bits.size() == 8 * bytes.size(),
/// enforced the same way).
void unpack_bits_msb_first(std::span<const std::byte> bytes,
                           std::span<std::uint8_t> bits);

/// A producer of raw random bits (values 0/1), the first pipeline stage.
/// Implementations must keep `next_bit()` and `generate_into()` on the
/// SAME underlying stream: interleaving the two pulls consecutive bits
/// of one sequence, and `generate_into` over n bits is bit-identical to
/// n `next_bit()` calls (test_bit_stream.cpp pins this for every
/// generator, at 1 and 8 threads). `fill_bytes` packs that same stream
/// MSB-first, so the byte surface is a pure re-grouping of the bit
/// surface — never a different stream.
class BitSource {
 public:
  virtual ~BitSource() = default;

  /// Produces the next raw bit of the stream.
  virtual std::uint8_t next_bit() = 0;

  /// Batch-first fast path: fills `out` with the next out.size() bits.
  /// Overridable for sources with a real batched implementation (the
  /// multi-ring TRNG parallelizes across rings here); the default loops
  /// next_bit().
  virtual void generate_into(std::span<std::uint8_t> out) {
    for (auto& b : out) b = next_bit();
  }

  /// Byte-first primary surface: fills `out` with the next
  /// 8 * out.size() bits of the stream, packed MSB-first. The default
  /// pulls through generate_into; Pipeline overrides it to pack from
  /// its ready buffer without an extra staging pass.
  virtual void fill_bytes(std::span<std::byte> out);

  /// Allocating convenience of fill_bytes.
  [[nodiscard]] std::vector<std::byte> generate_bytes(std::size_t n_bytes);

  /// Bulk BIT generation (allocating form of generate_into) — the raw
  /// domain for entropy estimators and transform equivalence checks.
  [[nodiscard]] std::vector<std::uint8_t> generate_bits(std::size_t n_bits);

  /// Pre-PR-7 name of generate_bits, kept byte-identical.
  [[deprecated("byte-first API: use generate_bytes/fill_bytes, or "
               "generate_bits for raw-bit analysis")]] [[nodiscard]]
  std::vector<std::uint8_t> generate(std::size_t n_bits) {
    return generate_bits(n_bits);
  }
};

/// A streaming, stateful re-expression of a post-processing block: each
/// push consumes an input block of any size (including empty) and APPENDS
/// the produced bits to `out`. Partial state (an open XOR group, an
/// unpaired von Neumann bit) carries across pushes, so block boundaries
/// never change the output stream.
class BitTransform {
 public:
  virtual ~BitTransform() = default;

  /// Consumes `in`, appending output bits to `out`.
  virtual void push(std::span<const std::uint8_t> in,
                    std::vector<std::uint8_t>& out) = 0;

  /// Drops any carried partial state (open group / unpaired bit).
  virtual void reset() = 0;

  /// Human-readable stage name for reports.
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// The unified output-path shape (PR 7 API redesign): anything with the
/// streaming push/reset/name contract of BitTransform composes into the
/// output path — algebraic post-processing, the health tap
/// (HealthTapTransform), and the conditioner's streaming stage
/// (ConditioningTransform in trng/conditioning.hpp) all satisfy it, so
/// none of them is a special case. Static interface counterpart of the
/// runtime BitTransform base; conditioning.cpp static_asserts the
/// non-template stages against it.
template <typename T>
concept OutputStage =
    requires(T stage, std::span<const std::uint8_t> in,
             std::vector<std::uint8_t>& out) {
      { stage.push(in, out) } -> std::same_as<void>;
      { stage.reset() } -> std::same_as<void>;
      { stage.name() } -> std::convertible_to<const char*>;
    };

/// A passive observer of the pipeline's RAW bit stream (before any
/// transform): the continuous-health engine, the raw-sample recorder and
/// the conditioner's entropy-accounting probe all attach through this
/// one interface (Pipeline::attach_tap). observe() must not modify the
/// bits and is called once per pumped block, in attachment order.
class TapStage {
 public:
  virtual ~TapStage() = default;

  /// Called with each raw block, in stream order.
  virtual void observe(std::span<const std::uint8_t> raw_bits) = 0;

  /// Human-readable tap name for reports.
  [[nodiscard]] virtual const char* tap_name() const noexcept = 0;
};

/// TapStage that records the raw stream into a buffer (bounded by
/// `max_bits`) — the raw-sample export hook for offline SP 800-90B
/// estimation, and a debugging aid in tests.
class RawRecorderTap final : public TapStage {
 public:
  explicit RawRecorderTap(
      std::size_t max_bits = std::numeric_limits<std::size_t>::max())
      : max_bits_(max_bits) {}

  void observe(std::span<const std::uint8_t> raw_bits) override {
    const std::size_t room = max_bits_ - bits_.size();
    const std::size_t take = std::min(room, raw_bits.size());
    bits_.insert(bits_.end(), raw_bits.begin(),
                 raw_bits.begin() + static_cast<std::ptrdiff_t>(take));
    seen_ += raw_bits.size();
  }
  [[nodiscard]] const char* tap_name() const noexcept override {
    return "raw_recorder";
  }

  /// Recorded bits (the first max_bits of the stream since clear()).
  [[nodiscard]] const std::vector<std::uint8_t>& bits() const noexcept {
    return bits_;
  }
  /// Total raw bits observed (recorded or not).
  [[nodiscard]] std::size_t bits_seen() const noexcept { return seen_; }

  void clear() noexcept {
    bits_.clear();
    seen_ = 0;
  }

 private:
  std::size_t max_bits_;
  std::vector<std::uint8_t> bits_;
  std::size_t seen_ = 0;
};

/// Streaming XOR decimation (piling-up corrector): emits the XOR of each
/// non-overlapping `factor`-bit group; a trailing partial group stays
/// buffered until completed by a later push.
class XorDecimateTransform : public BitTransform {
 public:
  explicit XorDecimateTransform(std::size_t factor);

  void push(std::span<const std::uint8_t> in,
            std::vector<std::uint8_t>& out) override;
  void reset() override { acc_ = 0, filled_ = 0; }
  [[nodiscard]] const char* name() const noexcept override {
    return "xor_decimate";
  }

  [[nodiscard]] std::size_t factor() const noexcept { return factor_; }

 private:
  std::size_t factor_;
  std::uint8_t acc_ = 0;      ///< XOR of the open group so far
  std::size_t filled_ = 0;    ///< bits consumed into the open group
};

/// Streaming von Neumann corrector: 01 -> 0, 10 -> 1, 00/11 dropped. An
/// unpaired bit is held until its partner arrives, so pairs spanning
/// block boundaries behave exactly like the batch version.
class VonNeumannTransform final : public BitTransform {
 public:
  void push(std::span<const std::uint8_t> in,
            std::vector<std::uint8_t>& out) override;
  void reset() override { has_pending_ = false; }
  [[nodiscard]] const char* name() const noexcept override {
    return "von_neumann";
  }

 private:
  bool has_pending_ = false;
  std::uint8_t pending_ = 0;
};

/// Parity of non-overlapping `block`-sized groups — the hardware-style
/// alias of XOR decimation, kept as its own stage name.
class ParityFilterTransform final : public XorDecimateTransform {
 public:
  explicit ParityFilterTransform(std::size_t block)
      : XorDecimateTransform(block) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "parity_filter";
  }
};

/// Composes one BitSource with N BitTransforms, an optional
/// ThermalNoiseMonitor tap and any number of TapStages into a BitSource
/// again (pipelines nest).
///
/// Raw bits are pulled from the source in `block_bits` batches (the
/// batched fast path), observed by the monitor and the attached taps
/// (in attachment order), then run through the transforms in insertion
/// order. Taps watch the RAW stream the way the paper's embedded test
/// watches the counter: a variance collapse or bias lock on the source
/// trips them regardless of what post-processing hides downstream.
///
/// The pipeline does not own the source, monitor or taps (they usually
/// outlive it in the enclosing scenario); it owns its transforms.
///
/// A transform chain that stops emitting (e.g. a von Neumann corrector
/// fed by a locked, constant source) makes next_bit()/generate_into()
/// pull raw blocks indefinitely — exactly the failure mode the health
/// taps exist to flag, so install one when the source is untrusted.
class Pipeline final : public BitSource {
 public:
  explicit Pipeline(BitSource& source, std::size_t block_bits = 4096);

  /// Appends a post-processing stage; returns *this for chaining.
  Pipeline& add_transform(std::unique_ptr<BitTransform> transform);

  /// Installs (or clears, with nullptr) the raw-stream online-test tap.
  Pipeline& set_monitor(ThermalNoiseMonitor* monitor);

  /// Attaches a raw-stream observer; observe() runs once per pumped
  /// block, in attachment order, BEFORE the transforms. Attaching the
  /// same tap twice is a no-op.
  Pipeline& attach_tap(TapStage& tap);

  /// Detaches a previously attached tap (no-op if absent).
  Pipeline& detach_tap(TapStage& tap);

  [[nodiscard]] std::size_t tap_count() const noexcept {
    return taps_.size();
  }

  /// Pre-PR-7 spelling of attach_tap for the continuous-health engine
  /// (HealthEngine is a TapStage). nullptr detaches the current engine.
  /// Event sequences are identical to attach_tap(*engine).
  [[deprecated("use attach_tap(engine) / detach_tap(engine)")]]
  Pipeline& set_health_engine(HealthEngine* engine);

  /// The most recently attached continuous-health engine, or nullptr.
  [[nodiscard]] HealthEngine* health_engine() const noexcept {
    return health_;
  }

  std::uint8_t next_bit() override;
  void generate_into(std::span<std::uint8_t> out) override;
  void fill_bytes(std::span<std::byte> out) override;

  /// Drops pumped-but-undelivered bits and resets transform carry
  /// state. Post-failure recovery uses this: bits buffered before a
  /// health alarm are suspect and must never back fresh output, and the
  /// next pull is guaranteed to pump raw bits the taps get to observe.
  Pipeline& discard_buffered();

  /// Raw bits pulled from the source so far.
  [[nodiscard]] std::size_t raw_bits() const noexcept { return raw_bits_; }
  /// Online-test alarms observed by the monitor tap so far.
  [[nodiscard]] std::size_t alarms() const noexcept { return alarms_; }
  [[nodiscard]] std::size_t transform_count() const noexcept {
    return transforms_.size();
  }

 private:
  void pump();  ///< pulls one raw block through taps + transforms

  BitSource& source_;
  std::size_t block_bits_;
  std::vector<std::unique_ptr<BitTransform>> transforms_;
  ThermalNoiseMonitor* monitor_ = nullptr;
  std::vector<TapStage*> taps_;
  HealthEngine* health_ = nullptr;  ///< accessor convenience only

  std::vector<std::uint8_t> raw_block_;
  std::vector<std::uint8_t> scratch_[2];
  std::vector<std::uint8_t> ready_;  ///< transformed bits awaiting delivery
  std::size_t ready_pos_ = 0;
  std::size_t raw_bits_ = 0;
  std::size_t alarms_ = 0;
  // Monitor-tap window state (cumulative ones count emulates the Fig. 6
  // counter's monotone count sequence).
  std::size_t tap_window_fill_ = 0;
  std::int64_t tap_cumulative_ones_ = 0;
};

}  // namespace ptrng::trng
