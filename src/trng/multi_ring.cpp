#include "trng/multi_ring.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace ptrng::trng {

MultiRingTrng::MultiRingTrng(const oscillator::RingOscillatorConfig& base,
                             const MultiRingTrngConfig& config)
    : config_(config),
      sampling_([&] {
        auto cfg = base;
        cfg.seed = base.seed ^ 0x5a5a5a5a5a5aULL;
        return cfg;
      }()) {
  PTRNG_EXPECTS(config.rings >= 1);
  PTRNG_EXPECTS(config.divider >= 1);
  PTRNG_EXPECTS(config.duty_cycle > 0.0 && config.duty_cycle < 1.0);
  PTRNG_EXPECTS(config.frequency_spread >= 0.0 &&
                config.frequency_spread < 0.2);

  rings_.reserve(config.rings);
  for (std::size_t r = 0; r < config.rings; ++r) {
    auto cfg = base;
    // Deterministic frequency fan centred on the base mismatch.
    const double frac =
        (config.rings == 1)
            ? 0.0
            : (static_cast<double>(r) /
                   static_cast<double>(config.rings - 1) -
               0.5);
    cfg.mismatch = base.mismatch + config.frequency_spread * frac;
    // Decorrelated per-ring stream, independent of how sampling is later
    // chunked (same derivation rule as parallel per-chunk RNG streams).
    cfg.seed = chunk_seed(base.seed, r);
    rings_.emplace_back(cfg);
    // Prime the first edge bracket.
    rings_.back().osc.next_period();
    rings_.back().bracket.next = rings_.back().osc.edge_time();
  }
}

std::uint8_t MultiRingTrng::sample_ring(SampledRing& ring,
                                        double t_sample) const {
  ring.bracket = ring.osc.advance_to_block(t_sample, ring.bracket);
  return ring.bracket.fractional_phase(t_sample) < config_.duty_cycle ? 1
                                                                      : 0;
}

std::uint8_t MultiRingTrng::next_bit() {
  sampling_.advance_periods(config_.divider);
  const double t_sample = sampling_.edge_time();
  std::uint8_t acc = 0;
  for (auto& ring : rings_) acc ^= sample_ring(ring, t_sample);
  return acc;
}

void MultiRingTrng::generate_into(std::span<std::uint8_t> out) {
  if (out.empty()) return;
  // 1. The shared sampling clock is one serial oscillator: realize all
  //    sample times before fanning out (ARCHITECTURE §5 — draw the
  //    sequential stream first).
  t_samples_.resize(out.size());
  for (auto& t : t_samples_) {
    sampling_.advance_periods(config_.divider);
    t = sampling_.edge_time();
  }
  // 2. One ring per task: each ring's bit block touches only that ring's
  //    oscillator state, so the fan-out is free of shared mutable state
  //    and the result cannot depend on the thread count.
  blocks_.resize(rings_.size());
  parallel_for(0, rings_.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) {
      auto& block = blocks_[r];
      block.resize(t_samples_.size());
      for (std::size_t i = 0; i < t_samples_.size(); ++i)
        block[i] = sample_ring(rings_[r], t_samples_[i]);
    }
  });
  // 3. XOR-reduce the per-ring blocks in ring order.
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  for (const auto& block : blocks_)
    for (std::size_t i = 0; i < out.size(); ++i) out[i] ^= block[i];
}

MultiRingTrng paper_multi_ring(std::size_t rings, std::uint32_t divider,
                               std::uint64_t seed) {
  auto base = oscillator::paper_single_config(seed);
  MultiRingTrngConfig cfg;
  cfg.rings = rings;
  cfg.divider = divider;
  return {base, cfg};
}

}  // namespace ptrng::trng
