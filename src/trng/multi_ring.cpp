#include "trng/multi_ring.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace ptrng::trng {

MultiRingTrng::MultiRingTrng(const oscillator::RingOscillatorConfig& base,
                             const MultiRingTrngConfig& config)
    : config_(config),
      sampling_([&] {
        auto cfg = base;
        cfg.seed = base.seed ^ 0x5a5a5a5a5a5aULL;
        return cfg;
      }()) {
  PTRNG_EXPECTS(config.rings >= 1);
  PTRNG_EXPECTS(config.divider >= 1);
  PTRNG_EXPECTS(config.duty_cycle > 0.0 && config.duty_cycle < 1.0);
  PTRNG_EXPECTS(config.frequency_spread >= 0.0 &&
                config.frequency_spread < 0.2);

  rings_.reserve(config.rings);
  for (std::size_t r = 0; r < config.rings; ++r) {
    auto cfg = base;
    // Deterministic frequency fan centred on the base mismatch.
    const double frac =
        (config.rings == 1)
            ? 0.0
            : (static_cast<double>(r) /
                   static_cast<double>(config.rings - 1) -
               0.5);
    cfg.mismatch = base.mismatch + config.frequency_spread * frac;
    cfg.seed = base.seed + 0x9e3779b9ULL * (r + 1);
    rings_.emplace_back(cfg);
    // Prime the first edge bracket.
    rings_.back().osc.next_period();
    rings_.back().t_next = rings_.back().osc.edge_time();
  }
}

std::uint8_t MultiRingTrng::sample_ring(SampledRing& ring,
                                        double t_sample) const {
  const double t_nom = ring.osc.nominal_period();
  for (;;) {
    const double gap = t_sample - ring.t_next;
    const auto skip =
        static_cast<std::uint64_t>(std::max(0.0, 0.9 * gap / t_nom));
    if (skip < 16) break;
    ring.osc.advance_periods(skip);
    ring.t_next = ring.osc.edge_time();
  }
  while (ring.t_next <= t_sample) {
    ring.t_prev = ring.t_next;
    ring.osc.next_period();
    ring.t_next = ring.osc.edge_time();
  }
  const double frac = (t_sample - ring.t_prev) / (ring.t_next - ring.t_prev);
  return frac < config_.duty_cycle ? 1 : 0;
}

std::uint8_t MultiRingTrng::next_bit() {
  sampling_.advance_periods(config_.divider);
  const double t_sample = sampling_.edge_time();
  std::uint8_t acc = 0;
  for (auto& ring : rings_) acc ^= sample_ring(ring, t_sample);
  return acc;
}

std::vector<std::uint8_t> MultiRingTrng::generate(std::size_t n_bits) {
  PTRNG_EXPECTS(n_bits >= 1);
  std::vector<std::uint8_t> bits(n_bits);
  for (auto& b : bits) b = next_bit();
  return bits;
}

MultiRingTrng paper_multi_ring(std::size_t rings, std::uint32_t divider,
                               std::uint64_t seed) {
  auto base = oscillator::paper_single_config(seed);
  MultiRingTrngConfig cfg;
  cfg.rings = rings;
  cfg.divider = divider;
  return {base, cfg};
}

}  // namespace ptrng::trng
