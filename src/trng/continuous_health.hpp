// Line-rate continuous health engine: the SP 800-90B §4.4 (X9.82 Part 2)
// continuous tests every deployed TRNG runs INLINE on the raw stream, as
// opposed to the offline AIS-31/procedure batteries in ais31.hpp. Two
// O(1)-per-bit streaming tests (struct-per-test, after iPXE's entropy
// stack):
//
//  * Repetition Count Test (§4.4.1): fails when one value repeats
//    `cutoff` times in a row; catches stuck-at and lock-up failures.
//    cutoff C = 1 + ceil(-log2(alpha) / H).
//  * Adaptive Proportion Test (§4.4.2): counts occurrences of the first
//    sample of each `window`-bit window; fails when the count reaches
//    `cutoff`. cutoff C = 1 + critbinom(W, 2^-H, 1 - alpha).
//
// Both cutoffs derive from a target min-entropy H (bits/bit) and a
// per-test false-alarm probability alpha — no hand-tuned thresholds.
// A HealthEngine owns one instance of each test, scans raw blocks
// word-at-a-time (no per-bit virtual calls; bit-exact against the
// scalar path, including alarm bit indices), and runs the alarm state
// machine nominal -> intermittent-alarm -> total-failure with an
// auto-reseed/callback hook for the RBG layer (ROADMAP item 1).
//
// docs/ARCHITECTURE.md §6 "Continuous health rules" states the tap
// placement and alarm semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>

#include "trng/bit_stream.hpp"

namespace ptrng::trng {

/// Repetition-count cutoff C = 1 + ceil(-log2(alpha)/h_min)
/// (SP 800-90B §4.4.1). Requires 0 < h_min <= 1 and 0 < alpha < 1.
[[nodiscard]] std::uint32_t repetition_count_cutoff(double h_min,
                                                    double false_alarm);

/// Adaptive-proportion cutoff C = 1 + critbinom(window, 2^-h_min,
/// 1 - alpha) (SP 800-90B §4.4.2), where critbinom(n, p, q) is the
/// smallest k with BinomCDF(k; n, p) >= q. Computed by upper-tail
/// summation so the q ~ 1 comparison never cancels.
[[nodiscard]] std::uint32_t adaptive_proportion_cutoff(std::size_t window,
                                                       double h_min,
                                                       double false_alarm);

/// Exact per-window alarm probability of the adaptive proportion test
/// for an IID source with P(bit = 1) = ones_probability: the first bit
/// of the window picks the counted value, so
///   q = p * P(Bin(W-1, p) >= C-1) + (1-p) * P(Bin(W-1, 1-p) >= C-1).
/// Tolerance tests derive their CI bands from this (stat_tolerance.hpp).
[[nodiscard]] double adaptive_proportion_alarm_probability(
    std::size_t window, std::uint32_t cutoff, double ones_probability);

/// Expected repetition-count alarms PER BIT for an IID source with
/// P(bit = 1) = ones_probability: one alarm per maximal run of length
/// >= C, and a run of 1s (0s) of length >= C starts at a given position
/// with probability (1-p) p^C (resp. p (1-p)^C).
[[nodiscard]] double repetition_count_alarm_rate(std::uint32_t cutoff,
                                                 double ones_probability);

/// Repetition count test state (SP 800-90B §4.4.1). One alarm per
/// offending run: the alarm fires on the bit where the run length
/// reaches `cutoff` and latches until the value changes.
struct RepetitionCountTest {
  std::uint32_t cutoff;     ///< C: run length that fails
  std::uint32_t run = 0;    ///< B: current run length
  std::uint8_t last = 0;    ///< A: the value being counted
  bool primed = false;      ///< first bit seen yet?
  bool latched = false;     ///< already alarmed on this run

  explicit RepetitionCountTest(std::uint32_t cutoff_value);

  /// Consumes one bit; true exactly when an alarm fires at this bit.
  bool step(std::uint8_t bit) noexcept {
    bit &= 1u;
    if (primed && bit == last) {
      ++run;
      if (!latched && run >= cutoff) {
        latched = true;
        return true;
      }
      return false;
    }
    last = bit;
    run = 1;
    primed = true;
    latched = false;
    return false;  // cutoff >= 2 by derivation, a fresh run cannot fail
  }
};

/// Adaptive proportion test state (SP 800-90B §4.4.2). The first bit of
/// each `window`-bit window picks the counted value A (and counts as
/// its first occurrence); the alarm fires on the bit where the count
/// reaches `cutoff` and latches for the rest of the window.
struct AdaptiveProportionTest {
  std::uint32_t window;     ///< W: window size in bits
  std::uint32_t cutoff;     ///< C: occurrence count that fails
  std::uint32_t seen = 0;   ///< S: bits consumed in the current window
  std::uint32_t matches = 0;  ///< B: occurrences of `counted` so far
  std::uint8_t counted = 0;   ///< A: the value being counted
  bool latched = false;       ///< already alarmed in this window

  AdaptiveProportionTest(std::uint32_t window_bits,
                         std::uint32_t cutoff_value);

  /// Consumes one bit; true exactly when an alarm fires at this bit.
  bool step(std::uint8_t bit) noexcept {
    bit &= 1u;
    if (seen == 0) {  // window start
      counted = bit;
      matches = 1;
      seen = 1;
      latched = false;
      return false;  // cutoff >= 2 by derivation
    }
    ++seen;
    bool alarm = false;
    if (bit == counted) {
      ++matches;
      if (!latched && matches >= cutoff) {
        latched = true;
        alarm = true;
      }
    }
    if (seen == window) seen = 0;
    return alarm;
  }
};

/// Alarm state machine position (AIS-31 noise-alarm flavoured).
enum class HealthState : std::uint8_t {
  kNominal,            ///< no unrecovered alarm
  kIntermittentAlarm,  ///< alarm(s) seen, awaiting recovery_bits healthy bits
  kTotalFailure,       ///< too many unrecovered alarms; latched until
                       ///< acknowledge_failure()
};

/// Engine configuration. Cutoffs derive from (h_min, false_alarm) at
/// construction; the state-machine knobs size the reseed story.
struct ContinuousHealthConfig {
  double h_min = 0.5;  ///< target min-entropy per raw bit (conservative)
  double false_alarm = 0x1p-20;  ///< alpha per test (90B default 2^-20)
  std::size_t apt_window = 1024;  ///< W (90B binary default)
  /// Unrecovered alarms that escalate intermittent -> total failure.
  std::size_t total_failure_alarms = 3;
  /// Healthy bits after an alarm before dropping back to nominal.
  std::size_t recovery_bits = 4096;
};

/// One alarm, as delivered to the callback hook.
struct HealthAlarmEvent {
  enum class Test : std::uint8_t { kRepetitionCount, kAdaptiveProportion };
  Test test;
  std::size_t bit_index;  ///< 0-based raw-bit index of the offending bit
  HealthState state;      ///< engine state AFTER handling this alarm
};

/// The continuous health engine: both §4.4 tests + the alarm state
/// machine, fed either per bit (`process_bit`, the reference path) or
/// per block (`process`, the zero-copy word-at-a-time fast path — the
/// two are bit-exact, including alarm indices and callback order).
///
/// A TapStage: attach directly to a Pipeline raw stream with
/// Pipeline::attach_tap(engine) (observe() forwards to process(), so
/// event sequences are identical to explicit process() calls).
class HealthEngine : public TapStage {
 public:
  /// Reseed/notification hook (e.g. the RBG layer's reseed trigger).
  /// Invoked synchronously from process()/process_bit() on every alarm.
  using AlarmCallback = std::function<void(const HealthAlarmEvent&)>;

  static constexpr std::size_t kNoAlarm =
      std::numeric_limits<std::size_t>::max();

  explicit HealthEngine(const ContinuousHealthConfig& config);

  /// Block fast path: scans 8 bits per 64-bit word wherever neither
  /// test can alarm, reset a window, or need priming; boundary words
  /// fall back to the scalar step, so alarms fire at the exact bit.
  void process(std::span<const std::uint8_t> bits);

  /// Scalar reference path: one bit through both tests + state machine.
  void process_bit(std::uint8_t bit);

  /// TapStage: raw-stream observation is exactly process().
  void observe(std::span<const std::uint8_t> raw_bits) override {
    process(raw_bits);
  }
  [[nodiscard]] const char* tap_name() const noexcept override {
    return "continuous_health";
  }

  [[nodiscard]] HealthState state() const noexcept { return state_; }
  [[nodiscard]] std::size_t bits_seen() const noexcept { return bits_seen_; }
  [[nodiscard]] std::size_t repetition_alarms() const noexcept {
    return rct_alarms_;
  }
  [[nodiscard]] std::size_t proportion_alarms() const noexcept {
    return apt_alarms_;
  }
  [[nodiscard]] std::size_t alarms() const noexcept {
    return rct_alarms_ + apt_alarms_;
  }
  /// 0-based bit index of the first alarm ever, or kNoAlarm.
  [[nodiscard]] std::size_t first_alarm_bit() const noexcept {
    return first_alarm_bit_;
  }
  [[nodiscard]] bool alarmed() const noexcept {
    return first_alarm_bit_ != kNoAlarm;
  }

  [[nodiscard]] const RepetitionCountTest& repetition_test() const noexcept {
    return rct_;
  }
  [[nodiscard]] const AdaptiveProportionTest& proportion_test()
      const noexcept {
    return apt_;
  }
  [[nodiscard]] const ContinuousHealthConfig& config() const noexcept {
    return config_;
  }

  void set_alarm_callback(AlarmCallback callback) {
    callback_ = std::move(callback);
  }

  /// External reset after total failure (or a completed reseed): drops
  /// the state machine to nominal and re-primes both tests. Cumulative
  /// counters and first_alarm_bit are diagnostics and survive.
  void acknowledge_failure() noexcept;

 private:
  void handle_alarm(HealthAlarmEvent::Test test, std::size_t bit_index);

  ContinuousHealthConfig config_;
  RepetitionCountTest rct_;
  AdaptiveProportionTest apt_;
  HealthState state_ = HealthState::kNominal;
  AlarmCallback callback_;
  std::size_t bits_seen_ = 0;
  std::size_t rct_alarms_ = 0;
  std::size_t apt_alarms_ = 0;
  std::size_t first_alarm_bit_ = kNoAlarm;
  std::size_t pending_alarms_ = 0;     ///< unrecovered alarms
  std::size_t healthy_run_bits_ = 0;   ///< bits since the last alarm
};

/// Strictly pass-through BitTransform wrapper: feeds the engine and
/// forwards the input unchanged, so a health tap can sit at ANY stage
/// of a transform chain (the Pipeline raw tap is the common placement).
/// reset() is a no-op: the tap carries no stream state of its own, and
/// engine health state deliberately survives pipeline resets.
class HealthTapTransform final : public BitTransform {
 public:
  explicit HealthTapTransform(HealthEngine& engine) : engine_(engine) {}

  void push(std::span<const std::uint8_t> in,
            std::vector<std::uint8_t>& out) override {
    engine_.process(in);
    out.insert(out.end(), in.begin(), in.end());
  }
  void reset() override {}
  [[nodiscard]] const char* name() const noexcept override {
    return "health_tap";
  }

 private:
  HealthEngine& engine_;
};

/// Detection-latency measurement: bits consumed until the engine's
/// first alarm — the results axis the paper never had (it measured
/// decisions/blocks). Deterministic in `block_bits` because alarms fire
/// at exact bit indices.
struct DetectionLatency {
  bool detected = false;
  std::size_t bits = 0;  ///< 1-based latency (bits consumed incl. the
                         ///< offending bit); 0 when not detected
};

/// Pulls blocks from `source` through `engine` until the first alarm or
/// `max_bits`, and reports the latency in bits.
[[nodiscard]] DetectionLatency measure_detection_latency(
    BitSource& source, HealthEngine& engine, std::size_t max_bits,
    std::size_t block_bits = 4096);

}  // namespace ptrng::trng
