// Algebraic post-processing blocks (AIS31 Fig. 1 third stage): entropy
// compression of the raw binary sequence. These trade throughput for
// entropy per bit.
//
// The batch functions below are thin wrappers over the streaming
// BitTransform stages in trng/bit_stream.hpp (byte-identical output);
// prefer composing the transforms through trng::Pipeline in new code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ptrng::trng {

/// XOR decimation: each output bit is the XOR of `factor` consecutive raw
/// bits. Under the piling-up lemma, bias shrinks as
/// 2^{factor-1} * bias^factor.
[[nodiscard]] std::vector<std::uint8_t> xor_decimate(
    std::span<const std::uint8_t> bits, std::size_t factor);

/// Von Neumann corrector: 01 -> 0, 10 -> 1, 00/11 dropped. Removes all
/// bias from iid input (at ~4x rate loss); does NOT fix correlation.
[[nodiscard]] std::vector<std::uint8_t> von_neumann(
    std::span<const std::uint8_t> bits);

/// Parity of non-overlapping `block` sized groups (generalized XOR
/// decimation alias, kept for API symmetry with hardware designs).
[[nodiscard]] std::vector<std::uint8_t> parity_filter(
    std::span<const std::uint8_t> bits, std::size_t block);

/// Empirical bias |P(1) - 1/2| of a bit stream.
[[nodiscard]] double bias(std::span<const std::uint8_t> bits);

/// Lag-1 serial correlation coefficient of a bit stream.
[[nodiscard]] double serial_correlation(std::span<const std::uint8_t> bits);

}  // namespace ptrng::trng
