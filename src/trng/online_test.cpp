#include "trng/online_test.hpp"

#include "common/contracts.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace ptrng::trng {

ThermalNoiseMonitor::ThermalNoiseMonitor(const OnlineTestConfig& config,
                                         double f0)
    : config_(config), f0_(f0) {
  PTRNG_EXPECTS(config.n_cycles >= 1);
  PTRNG_EXPECTS(config.windows_per_test >= 8);
  PTRNG_EXPECTS(config.reference_sigma2 > 0.0);
  PTRNG_EXPECTS(config.false_alarm > 0.0 && config.false_alarm < 0.5);
  PTRNG_EXPECTS(f0 > 0.0);
  const double dof = static_cast<double>(config.windows_per_test - 1);
  chi2_lo_ = stats::chi_square_quantile(config.false_alarm / 2.0, dof);
  chi2_hi_ = stats::chi_square_quantile(1.0 - config.false_alarm / 2.0, dof);
  sn_buffer_.reserve(config.windows_per_test);
}

bool ThermalNoiseMonitor::push_count(std::int64_t q,
                                     OnlineTestDecision* decision) {
  PTRNG_EXPECTS(decision != nullptr);
  if (!has_prev_) {
    prev_q_ = q;
    has_prev_ = true;
    return false;
  }
  sn_buffer_.push_back(static_cast<double>(q - prev_q_) / f0_);
  prev_q_ = q;
  if (sn_buffer_.size() < config_.windows_per_test) return false;

  const double s2 = stats::variance(sn_buffer_);
  const double dof = static_cast<double>(config_.windows_per_test - 1);
  // Under H0 (calibrated device), dof * s2 / sigma2_ref ~ chi-square(dof).
  decision->sigma2_estimate = s2;
  decision->lower_bound = config_.reference_sigma2 * chi2_lo_ / dof;
  decision->upper_bound = config_.reference_sigma2 * chi2_hi_ / dof;
  decision->alarm =
      s2 < decision->lower_bound || s2 > decision->upper_bound;
  sn_buffer_.clear();
  ++decisions_;
  return true;
}

}  // namespace ptrng::trng
