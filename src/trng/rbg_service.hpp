// RandomByteService: the end-to-end RBG (ROADMAP item 1, second half).
//
//   Pipeline (raw bits, health-tapped) --> HashConditioner
//     --> SpmcRing<conditioned 256-bit blocks>   [producer thread]
//     --> per-consumer HashDrbg streams          [N consumer threads]
//
// One producer thread owns the pipeline, the conditioner AND the
// health engine (the engine is attached as a pipeline tap, so alarms
// fire synchronously inside the producer's pump — no cross-thread
// health state). Consumers interact only with atomics, the lock-free
// ring and their own DRBG, so fill() is wait-free against other
// consumers on the fast path.
//
// Stream isolation & determinism (docs/ARCHITECTURE.md §7): every
// consumer stream is a private Hash_DRBG instantiated from
// (root seed, consumer id) — NOT from ring pop order — so the byte
// streams of a given (seed, id) pair are identical for any thread
// count and any scheduling, and distinct ids give computationally
// disjoint streams. Ring blocks only ever enter a stream through
// reseeds (interval exhaustion, prediction resistance, or a
// post-failure epoch bump), which are the deliberately
// schedule-dependent ingredient.
//
// Health gating (the SP 800-90B §4.4 story, wired end to end):
//   nominal      -> blocks published, fill() serves.
//   degraded     -> (engine intermittent) producer keeps pumping so
//                   the engine can recover, but DISCARDS blocks;
//                   fill() blocks up to wait_budget, then errors.
//   failed       -> (engine total failure) producer parks; fill()
//                   fails immediately. acknowledge_failure() routes
//                   the engine reset THROUGH the producer thread,
//                   which reseeds the root, bumps the epoch and only
//                   then serves again — every stream is forced
//                   through a fresh reseed before its next byte.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/spmc_ring.hpp"
#include "trng/bit_stream.hpp"
#include "trng/conditioning.hpp"
#include "trng/continuous_health.hpp"

namespace ptrng::trng {

/// Service-level health gate (the consumer-visible projection of
/// HealthState).
enum class ServiceState : std::uint8_t {
  kNominal,   ///< producing and serving
  kDegraded,  ///< health intermittent: producing, not publishing
  kFailed,    ///< health total failure: parked until acknowledge
  kStopped,   ///< not started (or stopped)
};

struct RbgServiceConfig {
  /// Conditioner settings; block_bytes is the ring payload size and
  /// must be >= HashDrbg::kSecurityStrengthBytes (one reseed's worth).
  ConditionerConfig conditioner{};
  /// Per-consumer DRBG settings (reseed interval, prediction
  /// resistance, request ceiling).
  HashDrbgConfig drbg{};
  /// Conditioned-block ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 64;
  /// How long fill() may block while degraded or starved before
  /// returning an error.
  std::chrono::milliseconds wait_budget{100};
  /// Raw block size of the internal pipeline pump [bits].
  std::size_t pipeline_block_bits = 4096;
};

/// Concurrent byte service over one raw BitSource.
class RandomByteService {
 public:
  /// Outcome of a Stream::fill call.
  enum class FillStatus : std::uint8_t {
    kOk,
    kDegraded,    ///< health left nominal and did not recover in budget
    kFailed,      ///< total failure: no bytes until acknowledge + reseed
    kStarved,     ///< needed a reseed block, ring empty past budget
    kNotStarted,  ///< service not running
  };

  /// A consumer handle: one private DRBG over the service's conditioned
  /// entropy. Movable, not copyable; must not outlive the service; each
  /// instance is single-threaded (one handle per consumer thread).
  class Stream {
   public:
    /// Fills `out` (any size; requests larger than the DRBG per-request
    /// ceiling are served in ceiling-sized chunks). On any non-kOk
    /// status, `out` holds no usable bytes.
    [[nodiscard]] FillStatus fill(std::span<std::byte> out);

    [[nodiscard]] std::uint64_t consumer_id() const noexcept { return id_; }
    [[nodiscard]] std::uint64_t bytes_served() const noexcept {
      return bytes_;
    }
    [[nodiscard]] std::uint64_t reseeds() const noexcept {
      return drbg_.reseeds();
    }

   private:
    friend class RandomByteService;
    Stream(RandomByteService& service, std::uint64_t id, HashDrbg drbg)
        : service_(&service), id_(id), drbg_(std::move(drbg)) {}

    RandomByteService* service_;
    std::uint64_t id_;
    HashDrbg drbg_;
    std::uint64_t epoch_seen_ = 0;
    std::uint64_t bytes_ = 0;
  };

  /// The service taps `health` onto an internal Pipeline over `source`
  /// and owns the producer thread. Neither reference is owned; both
  /// must outlive the service. `source` must not be pumped by anyone
  /// else while the service runs.
  RandomByteService(BitSource& source, HealthEngine& health,
                    const RbgServiceConfig& config = {});
  ~RandomByteService();

  RandomByteService(const RandomByteService&) = delete;
  RandomByteService& operator=(const RandomByteService&) = delete;

  /// Draws the root seed (synchronously, so open_stream is
  /// deterministic in the source stream) and launches the producer.
  /// No-op if already running.
  void start();

  /// Parks and joins the producer. Streams fail with kNotStarted.
  void stop();

  /// Opens the stream for `consumer_id`: a Hash_DRBG instantiated from
  /// (root seed, consumer id, "ptrng.rbg.stream"). Same (source seed,
  /// id) -> same byte stream, for any thread count; distinct ids ->
  /// disjoint streams. Requires start().
  [[nodiscard]] Stream open_stream(std::uint64_t consumer_id);

  /// Operator acknowledgement after total failure: asks the PRODUCER
  /// to reset the health engine, re-arm, reseed the root and bump the
  /// reseed epoch; blocks until the producer has done so (or the
  /// service is stopped). Every stream reseeds before its next byte.
  void acknowledge_failure();

  [[nodiscard]] ServiceState state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }
  /// Reseed epoch: bumped on post-failure recovery. Streams lazily
  /// follow it.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t blocks_produced() const noexcept {
    return blocks_produced_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t blocks_discarded() const noexcept {
    return blocks_discarded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t ring_size_approx() const noexcept {
    return ring_.size_approx();
  }
  [[nodiscard]] const RbgServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  void producer_loop();
  /// Pops one conditioned block within the wait budget (false: starved
  /// or service left nominal).
  bool pop_block_within_budget(std::vector<std::byte>& block);
  /// Maps the engine state to the service gate (producer thread only).
  void publish_health_state();

  RbgServiceConfig config_;
  HealthEngine& health_;
  Pipeline pipeline_;
  HashConditioner conditioner_;
  SpmcRing<std::vector<std::byte>> ring_;

  std::thread producer_;
  std::atomic<bool> running_{false};
  std::atomic<ServiceState> state_{ServiceState::kStopped};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<bool> ack_requested_{false};
  std::atomic<std::uint64_t> blocks_produced_{0};
  std::atomic<std::uint64_t> blocks_discarded_{0};
  std::mutex ack_mutex_;
  std::condition_variable ack_cv_;
  bool ack_done_ = true;  ///< guarded by ack_mutex_

  std::vector<std::byte> root_seed_;  ///< const after start()
};

}  // namespace ptrng::trng
