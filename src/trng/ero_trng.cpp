#include "trng/ero_trng.hpp"

#include "common/contracts.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace ptrng::trng {

EroTrng::EroTrng(const oscillator::RingOscillatorConfig& sampled,
                 const oscillator::RingOscillatorConfig& sampling,
                 const EroTrngConfig& config)
    : sampled_(sampled), sampling_(sampling), config_(config) {
  PTRNG_EXPECTS(config.divider >= 1);
  PTRNG_EXPECTS(config.duty_cycle > 0.0 && config.duty_cycle < 1.0);
  // Prime the sampled oscillator's first edge bracket.
  bracket_.prev = 0.0;
  sampled_.next_period();
  bracket_.next = sampled_.edge_time();
}

std::uint8_t EroTrng::step() {
  // Advance the sampling clock by `divider` periods (exact block advance),
  // then bring the sampled oscillator's edge bracket over the sampling
  // instant (bulk-edge API — blocks far out, period steps close in).
  sampling_.advance_periods(config_.divider);
  const double t_sample = sampling_.edge_time();
  bracket_ = sampled_.advance_to_block(t_sample, bracket_);
  const double frac = bracket_.fractional_phase(t_sample);
  last_frac_ = frac;
  // Square wave: high during the first duty_cycle of each period.
  return frac < config_.duty_cycle ? 1 : 0;
}

std::uint8_t EroTrng::next_bit() { return step(); }

void EroTrng::generate_into(std::span<std::uint8_t> out) {
  for (auto& b : out) b = step();
}

EroTrng paper_trng(std::uint32_t divider, std::uint64_t seed) {
  auto sampled = oscillator::paper_single_config(seed);
  auto sampling = oscillator::paper_single_config(seed ^ 0xabcdef9876ULL);
  // Slight mismatch so the sampling point sweeps the sampled period (as on
  // real FPGAs).
  sampled.mismatch = +1.5e-3;
  sampling.mismatch = -1.5e-3;
  EroTrngConfig cfg;
  cfg.divider = divider;
  return {sampled, sampling, cfg};
}

}  // namespace ptrng::trng
