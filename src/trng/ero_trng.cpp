#include "trng/ero_trng.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace ptrng::trng {

EroTrng::EroTrng(const oscillator::RingOscillatorConfig& sampled,
                 const oscillator::RingOscillatorConfig& sampling,
                 const EroTrngConfig& config)
    : sampled_(sampled), sampling_(sampling), config_(config) {
  PTRNG_EXPECTS(config.divider >= 1);
  PTRNG_EXPECTS(config.duty_cycle > 0.0 && config.duty_cycle < 1.0);
  // Prime the sampled oscillator's first edge bracket.
  t_prev_ = 0.0;
  sampled_.next_period();
  t_next_ = sampled_.edge_time();
}

std::uint8_t EroTrng::next_bit() {
  // Advance the sampling clock by `divider` periods (exact block advance).
  sampling_.advance_periods(config_.divider);
  const double t_sample = sampling_.edge_time();

  // Advance the sampled oscillator until its edge bracket contains the
  // sampling instant. Far from the target, jump in blocks sized to 90% of
  // the nominal gap — the 10% margin dwarfs the jitter spread by orders
  // of magnitude, so overshoot has negligible probability; the final
  // approach steps period by period to realize the bracketing edges.
  const double t_nom = sampled_.nominal_period();
  for (;;) {
    const double gap = t_sample - t_next_;
    const auto skip = static_cast<std::uint64_t>(
        std::max(0.0, 0.9 * gap / t_nom));
    if (skip < 16) break;
    sampled_.advance_periods(skip);
    t_next_ = sampled_.edge_time();
  }
  while (t_next_ <= t_sample) {
    t_prev_ = t_next_;
    sampled_.next_period();
    t_next_ = sampled_.edge_time();
  }
  const double frac = (t_sample - t_prev_) / (t_next_ - t_prev_);
  last_frac_ = frac;
  // Square wave: high during the first duty_cycle of each period.
  return frac < config_.duty_cycle ? 1 : 0;
}

std::vector<std::uint8_t> EroTrng::generate(std::size_t n_bits) {
  PTRNG_EXPECTS(n_bits >= 1);
  std::vector<std::uint8_t> bits(n_bits);
  for (auto& b : bits) b = next_bit();
  return bits;
}

EroTrng paper_trng(std::uint32_t divider, std::uint64_t seed) {
  auto sampled = oscillator::paper_single_config(seed);
  auto sampling = oscillator::paper_single_config(seed ^ 0xabcdef9876ULL);
  // Slight mismatch so the sampling point sweeps the sampled period (as on
  // real FPGAs).
  sampled.mismatch = +1.5e-3;
  sampling.mismatch = -1.5e-3;
  EroTrngConfig cfg;
  cfg.divider = divider;
  return {sampled, sampling, cfg};
}

}  // namespace ptrng::trng
