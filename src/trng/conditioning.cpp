#include "trng/conditioning.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "trng/continuous_health.hpp"

namespace ptrng::trng {

// The PR-7 output-path contract: post-processing, health taps and the
// conditioner all share the streaming push/reset/name shape.
static_assert(OutputStage<XorDecimateTransform>);
static_assert(OutputStage<VonNeumannTransform>);
static_assert(OutputStage<HealthTapTransform>);
static_assert(OutputStage<ConditioningTransform>);

// --- Hash_df --------------------------------------------------------------

void hash_df(std::span<const std::span<const std::byte>> parts,
             std::span<std::byte> out) {
  PTRNG_EXPECTS(!out.empty());
  // §10.3.1 length bound: len = ceil(bits/outlen) must fit the one-byte
  // counter, i.e. out.size() <= 255 * 32.
  PTRNG_EXPECTS(out.size() <= 255u * Sha256::kDigestBytes);

  const std::uint64_t out_bits = 8ull * out.size();
  const std::array<std::byte, 4> bits_be = {
      static_cast<std::byte>((out_bits >> 24) & 0xff),
      static_cast<std::byte>((out_bits >> 16) & 0xff),
      static_cast<std::byte>((out_bits >> 8) & 0xff),
      static_cast<std::byte>(out_bits & 0xff),
  };

  std::size_t produced = 0;
  std::uint8_t counter = 1;
  while (produced < out.size()) {
    Sha256 hash;
    const std::byte counter_byte{counter};
    hash.update({&counter_byte, 1});
    hash.update(bits_be);
    for (const auto part : parts) hash.update(part);
    const auto digest = hash.finalize();
    const std::size_t take =
        std::min(digest.size(), out.size() - produced);
    std::copy_n(digest.begin(), take,
                out.begin() + static_cast<std::ptrdiff_t>(produced));
    produced += take;
    ++counter;
  }
}

void hash_df(std::span<const std::byte> input, std::span<std::byte> out) {
  const std::span<const std::byte> parts[] = {input};
  hash_df(parts, out);
}

std::vector<std::byte> hash_df(std::span<const std::byte> input,
                               std::size_t out_bytes) {
  std::vector<std::byte> out(out_bytes);
  hash_df(input, out);
  return out;
}

// --- HashConditioner ------------------------------------------------------

HashConditioner::HashConditioner(const ConditionerConfig& config)
    : config_(config), h_min_fixed_(min_entropy_bits(config.h_min)) {
  PTRNG_EXPECTS(config.h_min > 0.0 && config.h_min <= 1.0);
  PTRNG_EXPECTS(config.block_bytes >= 1);
  PTRNG_EXPECTS(config.block_bytes <= 255u * Sha256::kDigestBytes);
}

std::size_t HashConditioner::raw_bits_needed(std::size_t out_bytes) const {
  // Input assessed entropy must cover the output bits (+ the 90C
  // full-entropy margin): raw * h_min >= need, all in fixed point,
  // rounded up to whole raw bytes so packing never splits a byte.
  const MinEntropy need_bits =
      8ull * out_bytes + (config_.full_entropy_margin ? 64u : 0u);
  const MinEntropy need_fixed = need_bits * kMinEntropyScale;
  const std::uint64_t raw = (need_fixed + h_min_fixed_ - 1) / h_min_fixed_;
  return static_cast<std::size_t>((raw + 7) / 8 * 8);
}

void HashConditioner::condition(BitSource& source, std::span<std::byte> out) {
  PTRNG_EXPECTS(!out.empty());
  const std::size_t n_bits = raw_bits_needed(out.size());
  raw_bits_.resize(n_bits);
  source.generate_into(raw_bits_);
  packed_.resize(n_bits / 8);
  pack_bits_msb_first(raw_bits_, packed_);
  hash_df(std::span<const std::byte>(packed_), out);
  bits_in_ += n_bits;
  entropy_in_ += h_min_fixed_ * n_bits;
  bytes_out_ += out.size();
}

std::vector<std::byte> HashConditioner::condition_block(BitSource& source) {
  std::vector<std::byte> out(config_.block_bytes);
  condition(source, out);
  return out;
}

// --- ConditioningTransform ------------------------------------------------

ConditioningTransform::ConditioningTransform(const ConditionerConfig& config)
    : config_(config),
      bits_per_block_(HashConditioner(config).raw_bits_needed(
          config.block_bytes)) {}

void ConditioningTransform::push(std::span<const std::uint8_t> in,
                                 std::vector<std::uint8_t>& out) {
  buffer_.insert(buffer_.end(), in.begin(), in.end());
  std::size_t pos = 0;
  while (buffer_.size() - pos >= bits_per_block_) {
    packed_.resize(bits_per_block_ / 8);
    pack_bits_msb_first({buffer_.data() + pos, bits_per_block_}, packed_);
    conditioned_.resize(config_.block_bytes);
    hash_df(std::span<const std::byte>(packed_), conditioned_);
    const std::size_t base = out.size();
    out.resize(base + 8 * conditioned_.size());
    unpack_bits_msb_first(conditioned_,
                          {out.data() + base, 8 * conditioned_.size()});
    pos += bits_per_block_;
    ++blocks_out_;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
}

// --- HashDrbg -------------------------------------------------------------

namespace {

/// x += y (big-endian byte arrays) mod 2^(8*x.size()).
void add_be_mod(std::span<std::byte> x, std::span<const std::byte> y) {
  std::uint32_t carry = 0;
  auto xi = x.rbegin();
  auto yi = y.rbegin();
  for (; xi != x.rend(); ++xi) {
    std::uint32_t sum = std::to_integer<std::uint32_t>(*xi) + carry;
    if (yi != y.rend()) {
      sum += std::to_integer<std::uint32_t>(*yi);
      ++yi;
    } else if (carry == 0) {
      break;
    }
    *xi = static_cast<std::byte>(sum & 0xff);
    carry = sum >> 8;
  }
}

/// x += value (unsigned integer, big-endian) mod 2^(8*x.size()).
void add_be_mod(std::span<std::byte> x, std::uint64_t value) {
  std::array<std::byte, 8> be;
  for (std::size_t i = 0; i < 8; ++i)
    be[7 - i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
  add_be_mod(x, be);
}

}  // namespace

HashDrbg::HashDrbg(const HashDrbgConfig& config) : config_(config) {
  PTRNG_EXPECTS(config.reseed_interval >= 1);
  // 90A ceilings for SHA-256: 2^48 requests, 2^19 bits per request.
  PTRNG_EXPECTS(config.reseed_interval <= (1ull << 48));
  PTRNG_EXPECTS(config.max_bytes_per_request >= 1);
  PTRNG_EXPECTS(config.max_bytes_per_request <= (1u << 16));
}

void HashDrbg::seed_from(
    std::span<const std::span<const std::byte>> parts) {
  // seed = Hash_df(seed_material, seedlen); V = seed;
  // C = Hash_df(0x00 || V, seedlen).
  std::array<std::byte, kSeedLenBytes> seed;
  hash_df(parts, seed);
  v_ = seed;
  constexpr std::byte kZero{0x00};
  const std::span<const std::byte> c_parts[] = {{&kZero, 1}, v_};
  hash_df(c_parts, c_);
  reseed_counter_ = 1;
}

void HashDrbg::instantiate(std::span<const std::byte> entropy_input,
                           std::span<const std::byte> nonce,
                           std::span<const std::byte> personalization) {
  PTRNG_EXPECTS(entropy_input.size() >= kSecurityStrengthBytes);
  const std::span<const std::byte> parts[] = {entropy_input, nonce,
                                              personalization};
  seed_from(parts);
  instantiated_ = true;
  reseed_fresh_ = false;  // PR still demands fresh entropy per request
}

void HashDrbg::reseed(std::span<const std::byte> entropy_input,
                      std::span<const std::byte> additional) {
  PTRNG_EXPECTS(instantiated_);
  PTRNG_EXPECTS(entropy_input.size() >= kSecurityStrengthBytes);
  constexpr std::byte kOne{0x01};
  const std::span<const std::byte> parts[] = {{&kOne, 1}, v_, entropy_input,
                                              additional};
  seed_from(parts);
  ++reseeds_;
  reseed_fresh_ = true;
}

HashDrbg::Status HashDrbg::generate(std::span<std::byte> out,
                                    std::span<const std::byte> additional) {
  if (!instantiated_) return Status::kNotInstantiated;
  if (out.size() > config_.max_bytes_per_request)
    return Status::kRequestTooLarge;

  if ((config_.prediction_resistance && !reseed_fresh_) ||
      reseed_counter_ > config_.reseed_interval) {
    if (!reseed_source_) return Status::kNeedReseed;
    std::array<std::byte, kSecurityStrengthBytes> fresh;
    reseed_source_(fresh);
    reseed(fresh, additional);
    additional = {};  // §9.3.3: consumed by the reseed
  }

  if (!additional.empty()) {
    // w = Hash(0x02 || V || additional); V = (V + w) mod 2^seedlen.
    Sha256 hash;
    constexpr std::byte kTwo{0x02};
    hash.update({&kTwo, 1});
    hash.update(v_);
    hash.update(additional);
    const auto w = hash.finalize();
    add_be_mod(v_, w);
  }

  // Hashgen: data = V; out_i = Hash(data); data = (data + 1) mod 2^440.
  std::array<std::byte, kSeedLenBytes> data = v_;
  std::size_t produced = 0;
  while (produced < out.size()) {
    const auto digest = Sha256::digest(data);
    const std::size_t take =
        std::min(digest.size(), out.size() - produced);
    std::copy_n(digest.begin(), take,
                out.begin() + static_cast<std::ptrdiff_t>(produced));
    produced += take;
    add_be_mod(data, 1);
  }

  // V = (V + H + C + reseed_counter) mod 2^seedlen, H = Hash(0x03 || V).
  Sha256 hash;
  constexpr std::byte kThree{0x03};
  hash.update({&kThree, 1});
  hash.update(v_);
  const auto h = hash.finalize();
  add_be_mod(v_, h);
  add_be_mod(v_, c_);
  add_be_mod(v_, reseed_counter_);
  ++reseed_counter_;
  ++requests_;
  reseed_fresh_ = false;  // consumed by this request
  return Status::kOk;
}

}  // namespace ptrng::trng
