#include "trng/rbg_service.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/contracts.hpp"

namespace ptrng::trng {

namespace {

constexpr char kStreamPersonalization[] = "ptrng.rbg.stream";

std::array<std::byte, 8> be64_bytes(std::uint64_t value) {
  std::array<std::byte, 8> out;
  for (std::size_t i = 0; i < 8; ++i)
    out[7 - i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
  return out;
}

}  // namespace

RandomByteService::RandomByteService(BitSource& source, HealthEngine& health,
                                     const RbgServiceConfig& config)
    : config_(config),
      health_(health),
      pipeline_(source, config.pipeline_block_bits),
      conditioner_(config.conditioner),
      ring_(config.ring_capacity) {
  // A ring block must be able to (re)seed a DRBG at full strength.
  PTRNG_EXPECTS(config.conditioner.block_bytes >=
                HashDrbg::kSecurityStrengthBytes);
  pipeline_.attach_tap(health_);
}

RandomByteService::~RandomByteService() { stop(); }

void RandomByteService::start() {
  if (running_.load(std::memory_order_acquire)) return;
  // Root seed drawn synchronously on the caller's thread: open_stream
  // is then a pure function of (source stream, consumer id) — the
  // producer's scheduling never touches it.
  root_seed_ = conditioner_.condition_block(pipeline_);
  publish_health_state();
  running_.store(true, std::memory_order_release);
  producer_ = std::thread([this] { producer_loop(); });
}

void RandomByteService::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(ack_mutex_);
    ack_done_ = true;
  }
  ack_cv_.notify_all();
  if (producer_.joinable()) producer_.join();
  state_.store(ServiceState::kStopped, std::memory_order_release);
}

void RandomByteService::publish_health_state() {
  ServiceState next = ServiceState::kNominal;
  switch (health_.state()) {
    case HealthState::kNominal:
      next = ServiceState::kNominal;
      break;
    case HealthState::kIntermittentAlarm:
      next = ServiceState::kDegraded;
      break;
    case HealthState::kTotalFailure:
      next = ServiceState::kFailed;
      break;
  }
  state_.store(next, std::memory_order_release);
}

void RandomByteService::producer_loop() {
  std::vector<std::byte> pending;
  bool have_pending = false;
  Backoff ring_backoff;

  while (running_.load(std::memory_order_acquire)) {
    const ServiceState st = state_.load(std::memory_order_acquire);

    if (st == ServiceState::kFailed) {
      have_pending = false;  // suspect block: never publish it
      if (ack_requested_.exchange(false, std::memory_order_acq_rel)) {
        // The producer is the only thread that ever touches the
        // engine, so the operator reset is routed through here. Bits
        // buffered in the pipeline and blocks still queued in the ring
        // predate the failure and are suspect: drop both, so the
        // recovery pull below is raw bits the re-primed engine actually
        // observes, and the first post-recovery reseeds can only be
        // backed by post-recovery blocks.
        health_.acknowledge_failure();
        pipeline_.discard_buffered();
        for (std::vector<std::byte> stale; ring_.try_pop(stale);) {
          blocks_discarded_.fetch_add(1, std::memory_order_relaxed);
        }
        std::vector<std::byte> fresh = conditioner_.condition_block(pipeline_);
        publish_health_state();
        if (state_.load(std::memory_order_acquire) ==
            ServiceState::kNominal) {
          // Recovery: the fresh block backs the first post-failure
          // reseeds; the epoch bump forces every stream through one.
          (void)ring_.try_push(std::move(fresh));
          blocks_produced_.fetch_add(1, std::memory_order_relaxed);
          epoch_.fetch_add(1, std::memory_order_acq_rel);
        }
        {
          std::lock_guard<std::mutex> lock(ack_mutex_);
          ack_done_ = true;
        }
        ack_cv_.notify_all();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      continue;
    }

    if (st == ServiceState::kDegraded) {
      // Keep the raw stream flowing so the engine can count healthy
      // bits back to nominal — but none of it is published.
      have_pending = false;
      (void)conditioner_.condition_block(pipeline_);
      blocks_discarded_.fetch_add(1, std::memory_order_relaxed);
      publish_health_state();
      continue;
    }

    // Nominal: condition a block, re-check health (an alarm during the
    // pull taints the block), publish into the ring.
    if (!have_pending) {
      pending = conditioner_.condition_block(pipeline_);
      have_pending = true;
      publish_health_state();
      if (state_.load(std::memory_order_acquire) != ServiceState::kNominal) {
        have_pending = false;
        blocks_discarded_.fetch_add(1, std::memory_order_relaxed);
        pipeline_.discard_buffered();  // cached bits share the taint
        continue;
      }
    }
    if (ring_.try_push(std::move(pending))) {
      have_pending = false;
      blocks_produced_.fetch_add(1, std::memory_order_relaxed);
      ring_backoff.reset();
    } else {
      // Ring full: consumers are behind (or idle). The raw source must
      // stay under observation regardless of demand — a failure with no
      // consumer attached still has to latch — so pump a discarded
      // block through the health tap between backoff pauses.
      ring_backoff.pause();
      (void)conditioner_.condition_block(pipeline_);
      blocks_discarded_.fetch_add(1, std::memory_order_relaxed);
      publish_health_state();
    }
  }
}

RandomByteService::Stream RandomByteService::open_stream(
    std::uint64_t consumer_id) {
  PTRNG_EXPECTS(running_.load(std::memory_order_acquire));
  HashDrbg drbg(config_.drbg);
  const auto nonce = be64_bytes(consumer_id);
  const auto* pers_chars = kStreamPersonalization;
  std::span<const std::byte> personalization{
      reinterpret_cast<const std::byte*>(pers_chars),
      sizeof(kStreamPersonalization) - 1};
  drbg.instantiate(root_seed_, nonce, personalization);
  Stream stream(*this, consumer_id, std::move(drbg));
  stream.epoch_seen_ = epoch();
  return stream;
}

void RandomByteService::acknowledge_failure() {
  if (!running_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(ack_mutex_);
  ack_done_ = false;
  ack_requested_.store(true, std::memory_order_release);
  ack_cv_.wait(lock, [this] {
    return ack_done_ || !running_.load(std::memory_order_acquire);
  });
}

bool RandomByteService::pop_block_within_budget(
    std::vector<std::byte>& block) {
  const auto deadline = std::chrono::steady_clock::now() + config_.wait_budget;
  Backoff backoff;
  for (;;) {
    if (ring_.try_pop(block)) return true;
    const ServiceState st = state_.load(std::memory_order_acquire);
    if (st == ServiceState::kFailed || st == ServiceState::kStopped) {
      return false;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    backoff.pause();
  }
}

RandomByteService::FillStatus RandomByteService::Stream::fill(
    std::span<std::byte> out) {
  RandomByteService& svc = *service_;
  const auto deadline =
      std::chrono::steady_clock::now() + svc.config_.wait_budget;

  // Health gate: serve only in nominal; ride out degraded states up to
  // the wait budget; fail fast on total failure.
  Backoff backoff;
  for (;;) {
    const ServiceState st = svc.state();
    if (st == ServiceState::kNominal) break;
    if (st == ServiceState::kStopped) return FillStatus::kNotStarted;
    if (st == ServiceState::kFailed) return FillStatus::kFailed;
    if (std::chrono::steady_clock::now() >= deadline)
      return FillStatus::kDegraded;
    backoff.pause();
  }

  // A post-failure epoch bump obliges a reseed before the next byte;
  // prediction resistance obliges one before every request.
  bool need_reseed = drbg_.config().prediction_resistance ||
                     epoch_seen_ != svc.epoch();

  const std::size_t chunk_max = drbg_.config().max_bytes_per_request;
  std::vector<std::byte> block;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t n = std::min(chunk_max, out.size() - done);
    const auto chunk = out.subspan(done, n);
    if (need_reseed) {
      if (!svc.pop_block_within_budget(block)) {
        return svc.state() == ServiceState::kFailed ? FillStatus::kFailed
                                                    : FillStatus::kStarved;
      }
      drbg_.reseed(block);
      epoch_seen_ = svc.epoch();
      need_reseed = drbg_.config().prediction_resistance;
    }
    switch (drbg_.generate(chunk)) {
      case HashDrbg::Status::kOk:
        done += n;
        break;
      case HashDrbg::Status::kNeedReseed:
        need_reseed = true;  // interval exhausted: reseed and retry
        break;
      case HashDrbg::Status::kNotInstantiated:
      case HashDrbg::Status::kRequestTooLarge:
        // Unreachable through this API (open_stream instantiates,
        // chunks respect the ceiling) — treat as a hard failure.
        return FillStatus::kFailed;
    }
  }
  bytes_ += out.size();
  return FillStatus::kOk;
}

}  // namespace ptrng::trng
