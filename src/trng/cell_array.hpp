// neoTRNG-style cell-array generator (ROADMAP item 2): a structurally
// different TRNG scenario from the ring-pair family. N free-running
// gate-chain cells with odd, PER-CELL-DISTINCT inverter counts (distinct
// lengths keep the cells from injection-locking to one another) run
// against a deterministic system clock; a latch per cell decouples the
// asynchronous ring from the synchronous domain through a short shift
// register, the latched cell bits are XOR-combined into one raw bit per
// clock, and the published architecture decimates that raw stream ~64x
// through a von-Neumann-style extractor before serving bits.
//
// Mapping onto the repo's stack: each cell is a
// `oscillator::GateChainOscillator` (per-stage thermal + flicker delay
// noise), the generator is a batch-first `trng::BitSource` whose
// parallel path fans one cell per task (multi-ring pattern: the sample
// clock is deterministic, so per-cell blocks are independent), and the
// 64x decimator is composed from the EXISTING BitTransform stack
// (VonNeumannTransform + XorDecimateTransform with carry across blocks)
// via attach_decimation(). Technology scaling reuses
// `transistor::TechnologyNode` -> Inverter -> Hajimiri conversion
// (cell_array_from_technology). docs/ARCHITECTURE.md §8 documents the
// scenario and its determinism rules.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "noise/sampler_policy.hpp"
#include "oscillator/gate_chain.hpp"
#include "trng/bit_stream.hpp"

namespace ptrng::transistor {
struct TechnologyNode;  // technology.hpp
}

namespace ptrng::trng {

/// Cell-array generator configuration. Cell i runs base_stages + 2*i
/// inverters (all odd, all distinct), so no two cells share a nominal
/// frequency.
struct CellArrayConfig {
  std::size_t cells = 3;          ///< XOR-combined cells (N >= 1)
  std::size_t base_stages = 5;    ///< inverters in cell 0 (odd, >= 3)
  double stage_delay = 970e-12 / 10.0;  ///< nominal per-stage delay [s]
  double sigma_stage = 5e-12;     ///< thermal stddev per stage delay [s]
  /// Per-stage delay flicker amplitude (GateChainConfig semantics);
  /// 0 disables the flicker banks.
  double flicker_amplitude = 0.0;
  double flicker_floor_hz = 100.0;
  /// Sample (latch) clock period in nominal cell-0 periods: T_s =
  /// sample_divider * 2 * base_stages * stage_delay. Larger values
  /// accumulate more jitter per sample, like the eRO divider K.
  std::uint32_t sample_divider = 64;
  /// Depth of the per-cell latch shift register decoupling the async
  /// ring from the sample clock (0 = sample directly, no latch delay).
  std::size_t sync_stages = 2;
  double duty_cycle = 0.5;        ///< duty of the sampled square wave
  /// Nominal output decimation of the published architecture; realized
  /// as VonNeumann (nominal 4x) + XorDecimate(decimation / 4), so it
  /// must be a multiple of 4.
  std::size_t decimation = 64;
  std::uint64_t seed = 0xce11a44aULL;
  /// Sampler policy threaded into every cell (ARCHITECTURE §5).
  noise::SamplerPolicy sampler{};
};

/// The cell-array BitSource. Raw stream = XOR of the latched cell bits,
/// one bit per sample-clock tick. `generate_into` is the batched path:
/// sample times are a pure function of the sample counter (the clock is
/// deterministic), so each cell's bit block is an independent task and
/// the output is bit-identical for any PTRNG_THREADS, any mid-block
/// split, and identical to repeated next_bit() calls.
class CellArrayTrng final : public BitSource {
 public:
  explicit CellArrayTrng(const CellArrayConfig& config);

  std::uint8_t next_bit() override;
  void generate_into(std::span<std::uint8_t> out) override;

  /// Appends the architecture's decimation chain (von Neumann followed
  /// by parity over decimation/4 groups) to `pipeline`. The nominal
  /// output rate is raw_rate / decimation (von Neumann keeps half of
  /// the pairs on balanced input).
  void attach_decimation(Pipeline& pipeline) const;

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }
  /// Inverter count of cell i (odd, distinct across cells).
  [[nodiscard]] std::size_t cell_stages(std::size_t i) const;
  /// Sample-clock period T_s [s].
  [[nodiscard]] double sample_period() const noexcept { return ts_; }
  /// Sample-clock ticks consumed so far (including latch priming).
  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return sample_index_;
  }
  [[nodiscard]] const CellArrayConfig& config() const noexcept {
    return config_;
  }

 private:
  /// One free-running cell plus its sampling state. Periods are
  /// realized in buffered blocks through GateChainOscillator's batched
  /// next_periods (bit-identical to stepping), and the latch shift
  /// register carries across blocks, so a cell advanced sample-by-sample
  /// and a cell advanced in one batch realize the same stream.
  struct Cell {
    oscillator::GateChainOscillator osc;
    double t_edge = 0.0;   ///< start time of the current period
    double period = 0.0;   ///< current period length
    std::vector<oscillator::PeriodSample> buffer;
    std::size_t buf_pos = 0;
    std::vector<std::uint8_t> latch;  ///< shift register (may be empty)
    std::size_t latch_pos = 0;

    Cell(const oscillator::GateChainConfig& cfg, std::size_t sync_stages);
    double next_period();
    std::uint8_t sample(double t, double duty);
  };

  CellArrayConfig config_;
  double ts_;
  std::vector<Cell> cells_;
  std::uint64_t sample_index_ = 0;
  std::vector<std::vector<std::uint8_t>> blocks_;  ///< per-cell scratch
};

/// Technology-scaled cell-array configuration: per-stage delay from the
/// node's inverter propagation delay, per-stage thermal sigma (and, when
/// `with_flicker`, the per-stage delay-flicker amplitude) from the
/// Hajimiri conversion of the node's current noise, aggregated back to
/// one stage by the gate-chain rules (thermal variances add across the
/// 2N stage traversals; flicker PSDs add across stages).
[[nodiscard]] CellArrayConfig cell_array_from_technology(
    const transistor::TechnologyNode& node, std::size_t cells = 3,
    std::size_t base_stages = 5, double fanout = 1.0,
    bool with_flicker = false);

}  // namespace ptrng::trng
