#include "trng/ais31.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <sstream>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "trng/entropy.hpp"

namespace ptrng::trng::ais31 {

namespace {

constexpr std::size_t kBlockBits = 20000;
/// Bits T0 consumes (2^16 48-bit words) — shared by procedure_a_bits()
/// and procedure_a()'s round offsets so they cannot drift apart.
constexpr std::size_t kT0Bits = (std::size_t{1} << 16) * 48;

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

TestOutcome t0_disjointness(std::span<const std::uint8_t> bits) {
  constexpr std::size_t kWords = 1u << 16;
  constexpr std::size_t kWordBits = 48;
  PTRNG_EXPECTS(bits.size() >= kWords * kWordBits);
  std::set<std::uint64_t> seen;
  bool disjoint = true;
  for (std::size_t w = 0; w < kWords && disjoint; ++w) {
    std::uint64_t v = 0;
    for (std::size_t j = 0; j < kWordBits; ++j)
      v = (v << 1) | (bits[w * kWordBits + j] & 1u);
    disjoint = seen.insert(v).second;
  }
  TestOutcome out;
  out.name = "T0 disjointness";
  out.passed = disjoint;
  out.statistic = static_cast<double>(seen.size());
  out.detail = disjoint ? "all 65536 words distinct" : "collision found";
  return out;
}

TestOutcome t1_monobit(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= kBlockBits);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < kBlockBits; ++i) ones += bits[i] & 1u;
  TestOutcome out;
  out.name = "T1 monobit";
  out.statistic = static_cast<double>(ones);
  out.passed = ones > 9654 && ones < 10346;
  out.detail = "ones = " + fmt(out.statistic) + " (9654, 10346)";
  return out;
}

TestOutcome t2_poker(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= kBlockBits);
  std::array<std::size_t, 16> counts{};
  for (std::size_t b = 0; b < 5000; ++b) {
    std::size_t v = 0;
    for (std::size_t j = 0; j < 4; ++j)
      v = (v << 1) | (bits[b * 4 + j] & 1u);
    ++counts[v];
  }
  double sum_sq = 0.0;
  for (std::size_t c : counts)
    sum_sq += static_cast<double>(c) * static_cast<double>(c);
  const double x = (16.0 / 5000.0) * sum_sq - 5000.0;
  TestOutcome out;
  out.name = "T2 poker";
  out.statistic = x;
  out.passed = x > 1.03 && x < 57.4;
  out.detail = "X = " + fmt(x) + " (1.03, 57.4)";
  return out;
}

TestOutcome t3_runs(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= kBlockBits);
  // AIS31 run test tolerance intervals (same as FIPS 140-1), per run
  // length 1..5 and >= 6, applied separately to runs of 0s and 1s.
  struct Bound {
    std::size_t lo, hi;
  };
  constexpr std::array<Bound, 6> kBounds = {{{2267, 2733},
                                             {1079, 1421},
                                             {502, 748},
                                             {223, 402},
                                             {90, 223},
                                             {90, 233}}};
  std::array<std::array<std::size_t, 6>, 2> runs{};
  std::size_t run_len = 1;
  for (std::size_t i = 1; i <= kBlockBits; ++i) {
    if (i < kBlockBits && (bits[i] & 1u) == (bits[i - 1] & 1u)) {
      ++run_len;
    } else {
      const std::size_t idx = std::min<std::size_t>(run_len, 6) - 1;
      ++runs[bits[i - 1] & 1u][idx];
      run_len = 1;
    }
  }
  bool pass = true;
  std::ostringstream detail;
  for (int v = 0; v < 2; ++v) {
    for (std::size_t len = 0; len < 6; ++len) {
      const auto c = runs[static_cast<std::size_t>(v)][len];
      if (c < kBounds[len].lo || c > kBounds[len].hi) {
        pass = false;
        detail << "runs(" << v << ", len " << len + 1 << ") = " << c
               << " outside [" << kBounds[len].lo << ", " << kBounds[len].hi
               << "]; ";
      }
    }
  }
  TestOutcome out;
  out.name = "T3 runs";
  out.passed = pass;
  out.statistic = 0.0;
  out.detail = pass ? "all run counts in tolerance" : detail.str();
  return out;
}

TestOutcome t4_long_run(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= kBlockBits);
  std::size_t longest = 1, run = 1;
  for (std::size_t i = 1; i < kBlockBits; ++i) {
    if ((bits[i] & 1u) == (bits[i - 1] & 1u)) {
      ++run;
    } else {
      run = 1;
    }
    longest = std::max(longest, run);
  }
  TestOutcome out;
  out.name = "T4 long run";
  out.statistic = static_cast<double>(longest);
  out.passed = longest < 34;
  out.detail = "longest run = " + fmt(out.statistic) + " (< 34)";
  return out;
}

TestOutcome t5_autocorrelation(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= kBlockBits);
  // Select tau in [1, 5000] maximizing |Z_tau - 2500| over the FIRST
  // 10000 bits, then evaluate on the next 10000 (per AIS31).
  std::size_t worst_tau = 1;
  double worst_dev = -1.0;
  for (std::size_t tau = 1; tau <= 5000; ++tau) {
    std::size_t z = 0;
    for (std::size_t j = 0; j < 5000; ++j)
      z += (bits[j] ^ bits[j + tau]) & 1u;
    const double dev = std::abs(static_cast<double>(z) - 2500.0);
    if (dev > worst_dev) {
      worst_dev = dev;
      worst_tau = tau;
    }
  }
  std::size_t z = 0;
  for (std::size_t j = 10000; j < 15000; ++j)
    z += (bits[j] ^ bits[j + worst_tau]) & 1u;
  TestOutcome out;
  out.name = "T5 autocorrelation";
  out.statistic = static_cast<double>(z);
  out.passed = z > 2326 && z < 2674;
  out.detail =
      "tau = " + fmt(static_cast<double>(worst_tau)) + ", Z = " + fmt(out.statistic) + " (2326, 2674)";
  return out;
}

TestOutcome t6_uniform(std::span<const std::uint8_t> bits, std::size_t n,
                       double a) {
  PTRNG_EXPECTS(bits.size() >= n);
  PTRNG_EXPECTS(n >= 1000);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) ones += bits[i] & 1u;
  const double p = static_cast<double>(ones) / static_cast<double>(n);
  TestOutcome out;
  out.name = "T6 uniform distribution";
  out.statistic = p;
  out.passed = std::abs(p - 0.5) < a;
  out.detail = "p(1) = " + fmt(p) + " (|p-0.5| < " + fmt(a) + ")";
  return out;
}

TestOutcome t7_homogeneity(std::span<const std::uint8_t> bits,
                           std::size_t n) {
  PTRNG_EXPECTS(bits.size() >= n + 1);
  PTRNG_EXPECTS(n >= 1000);
  // Successor counts after a 0 and after a 1.
  double c[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  for (std::size_t i = 0; i < n; ++i)
    c[bits[i] & 1u][bits[i + 1] & 1u] += 1.0;
  // 2x2 homogeneity chi-square.
  const double r0 = c[0][0] + c[0][1];
  const double r1 = c[1][0] + c[1][1];
  const double k0 = c[0][0] + c[1][0];
  const double k1 = c[0][1] + c[1][1];
  const double total = r0 + r1;
  double x2 = 0.0;
  if (r0 > 0 && r1 > 0 && k0 > 0 && k1 > 0) {
    const double e00 = r0 * k0 / total;
    const double e01 = r0 * k1 / total;
    const double e10 = r1 * k0 / total;
    const double e11 = r1 * k1 / total;
    x2 = (c[0][0] - e00) * (c[0][0] - e00) / e00 +
         (c[0][1] - e01) * (c[0][1] - e01) / e01 +
         (c[1][0] - e10) * (c[1][0] - e10) / e10 +
         (c[1][1] - e11) * (c[1][1] - e11) / e11;
  }
  TestOutcome out;
  out.name = "T7 homogeneity";
  out.statistic = x2;
  // 15.13 = chi-square_{1-10^-4}(1 dof) per the AIS31 example application.
  out.passed = x2 < 15.13;
  out.detail = "chi2 = " + fmt(x2) + " (< 15.13)";
  return out;
}

TestOutcome t8_entropy(std::span<const std::uint8_t> bits) {
  constexpr std::size_t l = 8, q = 2560, k = 256000;
  PTRNG_EXPECTS(bits.size() >= (q + k) * l);
  const double f = coron_entropy(bits, l, q, k);
  TestOutcome out;
  out.name = "T8 entropy (Coron)";
  out.statistic = f;
  out.passed = f > 7.976;
  out.detail = "f = " + fmt(f) + " (> 7.976)";
  return out;
}

std::size_t procedure_a_bits(std::size_t rounds) {
  return kT0Bits + rounds * kBlockBits;
}

std::size_t procedure_b_bits() { return (2560 + 256000) * 8 + 100001; }

std::size_t quick_battery_bits() { return kBlockBits; }

ProcedureResult quick_battery(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= quick_battery_bits());
  const auto block = bits.first(kBlockBits);
  ProcedureResult res;
  res.outcomes.resize(4);
  res.outcomes[0] = t1_monobit(block);
  res.outcomes[1] = t2_poker(block);
  res.outcomes[2] = t3_runs(block);
  res.outcomes[3] = t4_long_run(block);
  res.passed = true;
  for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
    if (!res.outcomes[i].passed) {
      res.passed = false;
      res.failures.push_back(i);
    }
  }
  return res;
}

ProcedureResult procedure_a(std::span<const std::uint8_t> bits,
                            std::size_t rounds) {
  PTRNG_EXPECTS(rounds >= 1);
  PTRNG_EXPECTS(bits.size() >= procedure_a_bits(rounds));
  ProcedureResult res;
  res.outcomes.resize(1 + rounds * 5);
  // T0 and the per-round T1-T5 blocks are independent and read-only on
  // `bits`: one task per round (T0 is task 0), mirroring procedure_b
  // (§5 leaf rule). Each round's outcomes land in fixed slots
  // 1+5r..5+5r, so the result is identical for any PTRNG_THREADS. T5's
  // tau search dominates a round, so the full procedure finishes in
  // roughly ceil(rounds/width) round-times.
  parallel_for(0, rounds + 1, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t task = begin; task < end; ++task) {
      if (task == 0) {
        res.outcomes[0] = t0_disjointness(bits);
        continue;
      }
      const std::size_t r = task - 1;
      const auto block = bits.subspan(kT0Bits + r * kBlockBits, kBlockBits);
      res.outcomes[1 + r * 5 + 0] = t1_monobit(block);
      res.outcomes[1 + r * 5 + 1] = t2_poker(block);
      res.outcomes[1 + r * 5 + 2] = t3_runs(block);
      res.outcomes[1 + r * 5 + 3] = t4_long_run(block);
      res.outcomes[1 + r * 5 + 4] = t5_autocorrelation(block);
    }
  });
  res.passed = true;
  for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
    if (!res.outcomes[i].passed) {
      res.passed = false;
      res.failures.push_back(i);
    }
  }
  return res;
}

ProcedureResult procedure_b(std::span<const std::uint8_t> bits) {
  PTRNG_EXPECTS(bits.size() >= procedure_b_bits());
  ProcedureResult res;
  res.outcomes.resize(3);
  // The three tests are independent and read-only on `bits`: fan them
  // out one per task (§5 leaf rule). Each outcome lands in a fixed slot,
  // so the result is identical for any PTRNG_THREADS (T8's Coron sum
  // dominates, so the battery finishes in roughly T8's own time).
  parallel_for(0, res.outcomes.size(), 1,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t t = begin; t < end; ++t) {
                   switch (t) {
                     case 0: res.outcomes[0] = t6_uniform(bits); break;
                     case 1: res.outcomes[1] = t7_homogeneity(bits); break;
                     default: res.outcomes[2] = t8_entropy(bits); break;
                   }
                 }
               });
  res.passed = true;
  for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
    if (!res.outcomes[i].passed) {
      res.passed = false;
      res.failures.push_back(i);
    }
  }
  return res;
}

}  // namespace ptrng::trng::ais31
