// Allan variance family. The paper (Sec. III-B2) follows Allan's insight
// that the classical variance of accumulated jitter diverges under flicker
// noise and analyzes sigma^2_N, which equals 2*tau^2*sigma^2_y(tau) with
// tau = N/f0 (second difference of the time error).
//
// Conventions:
//  * x[i]  — time error (TIE) samples [seconds], spaced tau0 apart;
//  * y[i]  — fractional frequency averaged over tau0: (x[i+1]-x[i])/tau0;
//  * sigma^2_y(m*tau0) — Allan variance at averaging factor m.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrng::stats {

/// Allan variance from time-error data at averaging factor m.
/// `overlapping` uses every start index (maximum dof); otherwise strides by
/// m as in Allan's original estimator.
[[nodiscard]] double allan_variance_time_error(std::span<const double> x,
                                               double tau0, std::size_t m,
                                               bool overlapping = true);

/// Allan variance from fractional-frequency data at averaging factor m.
[[nodiscard]] double allan_variance_frequency(std::span<const double> y,
                                              double tau0, std::size_t m,
                                              bool overlapping = true);

/// Modified Allan variance (distinguishes white PM from flicker PM).
[[nodiscard]] double modified_allan_variance(std::span<const double> x,
                                             double tau0, std::size_t m);

/// Hadamard variance (third difference; immune to linear frequency drift).
[[nodiscard]] double hadamard_variance(std::span<const double> x, double tau0,
                                       std::size_t m);

/// Theoretical Allan variance of the paper's two-component phase noise
/// S_phi(f) = b_th/f^2 + b_fl/f^3 (two-sided) at tau = N/f0:
///
///   sigma^2_y(tau) = b_th/(f0^2*tau) + 4*ln2*b_fl/f0^2
[[nodiscard]] double allan_theory_thermal_flicker(double b_th, double b_fl,
                                                  double f0, double tau);

/// The paper's accumulated-difference variance from Allan variance:
/// sigma^2_N = 2 * tau^2 * sigma^2_y(tau), tau = N/f0.
[[nodiscard]] double sigma2_n_from_allan(double allan_var, double tau);

/// Sweep: Allan deviation over a log grid of averaging factors.
struct AllanPoint {
  std::size_t m = 0;      ///< averaging factor
  double tau = 0.0;       ///< m * tau0 [s]
  double avar = 0.0;      ///< Allan variance
  std::size_t terms = 0;  ///< number of squared differences averaged
};
[[nodiscard]] std::vector<AllanPoint> allan_sweep(std::span<const double> x,
                                                  double tau0,
                                                  std::span<const std::size_t> ms,
                                                  bool overlapping = true);

}  // namespace ptrng::stats
