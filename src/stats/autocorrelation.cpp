#include "stats/autocorrelation.hpp"

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "fft/fft.hpp"
#include "stats/descriptive.hpp"

namespace ptrng::stats {

std::vector<double> autocovariance(std::span<const double> xs,
                                   std::size_t max_lag) {
  PTRNG_EXPECTS(xs.size() >= 2);
  PTRNG_EXPECTS(max_lag < xs.size());
  const double m = mean(xs);
  std::vector<double> centered(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) centered[i] = xs[i] - m;
  auto raw = fft::autocorrelation_raw(centered, max_lag);
  const double inv_n = 1.0 / static_cast<double>(xs.size());
  for (auto& v : raw) v *= inv_n;
  return raw;
}

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag) {
  auto cov = autocovariance(xs, max_lag);
  PTRNG_EXPECTS(cov[0] > 0.0);
  const double c0 = cov[0];
  for (auto& v : cov) v /= c0;
  return cov;
}

std::vector<double> autocorrelation_direct(std::span<const double> xs,
                                           std::size_t max_lag) {
  PTRNG_EXPECTS(xs.size() >= 2);
  PTRNG_EXPECTS(max_lag < xs.size());
  const double m = mean(xs);
  const std::size_t n = xs.size();
  double c0 = 0.0;
  for (double x : xs) c0 += square(x - m);
  c0 /= static_cast<double>(n);
  PTRNG_EXPECTS(c0 > 0.0);
  std::vector<double> out(max_lag + 1);
  out[0] = 1.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    KahanSum acc;
    for (std::size_t t = 0; t + k < n; ++t)
      acc.add((xs[t] - m) * (xs[t + k] - m));
    out[k] = acc.value() / static_cast<double>(n) / c0;
  }
  return out;
}

std::vector<double> partial_autocorrelation(std::span<const double> xs,
                                            std::size_t max_lag) {
  auto r = autocorrelation(xs, max_lag);
  std::vector<double> pacf(max_lag + 1, 0.0);
  pacf[0] = 1.0;
  if (max_lag == 0) return pacf;

  // Durbin–Levinson recursion.
  std::vector<double> phi_prev(max_lag + 1, 0.0);
  std::vector<double> phi(max_lag + 1, 0.0);
  phi_prev[1] = r[1];
  pacf[1] = r[1];
  double v = 1.0 - r[1] * r[1];
  for (std::size_t k = 2; k <= max_lag; ++k) {
    double num = r[k];
    for (std::size_t j = 1; j < k; ++j) num -= phi_prev[j] * r[k - j];
    const double a = (v > 0.0) ? num / v : 0.0;
    phi[k] = a;
    for (std::size_t j = 1; j < k; ++j)
      phi[j] = phi_prev[j] - a * phi_prev[k - j];
    v *= (1.0 - a * a);
    pacf[k] = a;
    phi_prev = phi;
  }
  return pacf;
}

double white_noise_band(std::size_t n) {
  PTRNG_EXPECTS(n >= 2);
  return 1.96 / std::sqrt(static_cast<double>(n));
}

}  // namespace ptrng::stats
