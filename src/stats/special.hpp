// Special functions and distribution CDFs/quantiles needed by the
// hypothesis tests and entropy estimators. Implemented from standard
// numerical recipes-style series/continued fractions (no external deps).
#pragma once

namespace ptrng::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Requires a > 0, x >= 0.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

/// Standard normal inverse CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-12 over (0,1)).
[[nodiscard]] double normal_quantile(double p);

/// Chi-square CDF with k degrees of freedom.
[[nodiscard]] double chi_square_cdf(double x, double k);

/// Upper-tail p-value of a chi-square statistic with k degrees of freedom.
[[nodiscard]] double chi_square_sf(double x, double k);

/// Chi-square quantile (inverse CDF) by bisection/Newton hybrid.
[[nodiscard]] double chi_square_quantile(double p, double k);

/// ln Gamma(x) for x > 0 (Lanczos).
[[nodiscard]] double log_gamma(double x);

/// Binary entropy -p*log2(p) - (1-p)*log2(1-p); returns 0 at p in {0,1}.
[[nodiscard]] double binary_entropy(double p);

}  // namespace ptrng::stats
