#include "stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace ptrng::stats {

TestResult ljung_box(std::span<const double> xs, std::size_t lags) {
  PTRNG_EXPECTS(lags >= 1);
  PTRNG_EXPECTS(xs.size() > lags + 1);
  const auto r = autocorrelation(xs, lags);
  const double n = static_cast<double>(xs.size());
  double q = 0.0;
  for (std::size_t k = 1; k <= lags; ++k)
    q += r[k] * r[k] / (n - static_cast<double>(k));
  q *= n * (n + 2.0);
  TestResult res;
  res.statistic = q;
  res.dof = static_cast<double>(lags);
  res.p_value = chi_square_sf(q, res.dof);
  return res;
}

TestResult box_pierce(std::span<const double> xs, std::size_t lags) {
  PTRNG_EXPECTS(lags >= 1);
  PTRNG_EXPECTS(xs.size() > lags + 1);
  const auto r = autocorrelation(xs, lags);
  const double n = static_cast<double>(xs.size());
  double q = 0.0;
  for (std::size_t k = 1; k <= lags; ++k) q += r[k] * r[k];
  q *= n;
  TestResult res;
  res.statistic = q;
  res.dof = static_cast<double>(lags);
  res.p_value = chi_square_sf(q, res.dof);
  return res;
}

TestResult runs_test(std::span<const double> xs) {
  PTRNG_EXPECTS(xs.size() >= 20);
  const double med = quantile(xs, 0.5);
  // Signs relative to the median; ties dropped.
  std::vector<int> signs;
  signs.reserve(xs.size());
  for (double x : xs) {
    if (x > med) signs.push_back(1);
    else if (x < med) signs.push_back(-1);
  }
  PTRNG_EXPECTS(signs.size() >= 10);
  std::size_t n_pos = 0, n_neg = 0, runs = 1;
  for (std::size_t i = 0; i < signs.size(); ++i) {
    if (signs[i] > 0) ++n_pos; else ++n_neg;
    if (i > 0 && signs[i] != signs[i - 1]) ++runs;
  }
  const double n1 = static_cast<double>(n_pos);
  const double n2 = static_cast<double>(n_neg);
  const double n = n1 + n2;
  const double mu = 2.0 * n1 * n2 / n + 1.0;
  const double var =
      2.0 * n1 * n2 * (2.0 * n1 * n2 - n) / (n * n * (n - 1.0));
  TestResult res;
  res.statistic = (static_cast<double>(runs) - mu) / std::sqrt(var);
  res.p_value = 2.0 * (1.0 - normal_cdf(std::abs(res.statistic)));
  res.dof = 0.0;
  return res;
}

TestResult turning_point_test(std::span<const double> xs) {
  PTRNG_EXPECTS(xs.size() >= 20);
  const std::size_t n = xs.size();
  std::size_t tp = 0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const bool peak = xs[i] > xs[i - 1] && xs[i] > xs[i + 1];
    const bool valley = xs[i] < xs[i - 1] && xs[i] < xs[i + 1];
    if (peak || valley) ++tp;
  }
  const double nn = static_cast<double>(n);
  const double mu = 2.0 * (nn - 2.0) / 3.0;
  const double var = (16.0 * nn - 29.0) / 90.0;
  TestResult res;
  res.statistic = (static_cast<double>(tp) - mu) / std::sqrt(var);
  res.p_value = 2.0 * (1.0 - normal_cdf(std::abs(res.statistic)));
  res.dof = 0.0;
  return res;
}

TestResult chi_square_gof(std::span<const double> observed,
                          std::span<const double> expected,
                          std::size_t constrained_params) {
  PTRNG_EXPECTS(observed.size() == expected.size());
  PTRNG_EXPECTS(observed.size() >= 2);
  PTRNG_EXPECTS(observed.size() > constrained_params + 1);
  double x2 = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    PTRNG_EXPECTS(expected[i] > 0.0);
    x2 += square(observed[i] - expected[i]) / expected[i];
  }
  TestResult res;
  res.statistic = x2;
  res.dof = static_cast<double>(observed.size() - 1 - constrained_params);
  res.p_value = chi_square_sf(x2, res.dof);
  return res;
}

}  // namespace ptrng::stats
