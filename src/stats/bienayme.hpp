// Bienaymé analysis (paper Sec. III-B2): for mutually independent (hence
// uncorrelated) jitter realizations, Var(sum of n terms) == n * Var(one
// term). The ratio of the two sides, swept over n, is a direct visual and
// numerical probe of independence: flicker noise drives it away from 1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrng::stats {

/// One point of the Bienaymé sweep.
struct BienaymePoint {
  std::size_t block = 0;        ///< number of summed terms n
  double var_of_sum = 0.0;      ///< Var(J_1 + ... + J_n), estimated
  double sum_of_var = 0.0;      ///< n * Var(J)
  double ratio = 0.0;           ///< var_of_sum / sum_of_var (1 under H0)
  std::size_t samples = 0;      ///< blocks used for var_of_sum
};

/// Estimates Var(sum over disjoint blocks of n) against n*Var(J) for each
/// block size. Disjoint blocks keep the block sums (nearly) uncorrelated
/// under H0, so the estimator itself stays consistent.
[[nodiscard]] std::vector<BienaymePoint> bienayme_sweep(
    std::span<const double> series, std::span<const std::size_t> block_sizes);

/// Convenience: max |ratio - 1| over a sweep — a scalar "independence
/// defect" used by tests and the model layer.
[[nodiscard]] double bienayme_defect(std::span<const BienaymePoint> sweep);

}  // namespace ptrng::stats
