// Power spectral density estimation. Conventions matter here (see
// docs/ARCHITECTURE.md §3): estimates are ONE-SIDED physical PSDs, i.e.
// integral of psd over [0, fs/2] == variance of the (zero-mean) signal.
// The analytic b_th/b_fl coefficients of the paper are TWO-SIDED; use
// one_sided_to_two_sided()/two_sided_to_one_sided() to convert.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fft/window.hpp"

namespace ptrng::stats {

/// A sampled one-sided PSD estimate.
struct PsdEstimate {
  std::vector<double> frequency;  ///< Hz, excludes DC
  std::vector<double> psd;        ///< one-sided density [unit^2/Hz]
  double resolution_hz = 0.0;     ///< bin spacing
  std::size_t segments = 0;       ///< number of averaged segments
};

/// Single-shot periodogram with the given window. `fs` is the sample rate.
[[nodiscard]] PsdEstimate periodogram(
    std::span<const double> signal, double fs,
    fft::WindowKind window = fft::WindowKind::rectangular);

/// Welch's method: averaged modified periodograms over segments of
/// `segment_size` (rounded up to a power of two) with the given overlap
/// fraction in [0, 0.9].
[[nodiscard]] PsdEstimate welch(std::span<const double> signal, double fs,
                                std::size_t segment_size,
                                double overlap = 0.5,
                                fft::WindowKind window = fft::WindowKind::hann);

/// Fits psd ~ c * f^slope over [f_lo, f_hi] and returns the slope — the
/// standard way to identify 1/f^alpha noise from an estimate.
[[nodiscard]] double psd_slope(const PsdEstimate& est, double f_lo,
                               double f_hi);

/// Mean PSD level over [f_lo, f_hi] (for calibrating white levels).
[[nodiscard]] double psd_level(const PsdEstimate& est, double f_lo,
                               double f_hi);

/// Two-sided density is half the one-sided density at the same |f|.
[[nodiscard]] constexpr double one_sided_to_two_sided(double s) {
  return 0.5 * s;
}
[[nodiscard]] constexpr double two_sided_to_one_sided(double s) {
  return 2.0 * s;
}

}  // namespace ptrng::stats
