#include "stats/bienayme.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "stats/descriptive.hpp"

namespace ptrng::stats {

std::vector<BienaymePoint> bienayme_sweep(
    std::span<const double> series, std::span<const std::size_t> block_sizes) {
  PTRNG_EXPECTS(series.size() >= 64);
  const double var1 = variance(series);

  std::vector<BienaymePoint> out;
  out.reserve(block_sizes.size());
  for (std::size_t n : block_sizes) {
    PTRNG_EXPECTS(n >= 1);
    const std::size_t blocks = series.size() / n;
    if (blocks < 8) continue;  // too few blocks for a variance estimate
    std::vector<double> sums;
    sums.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += series[b * n + k];
      sums.push_back(s);
    }
    BienaymePoint pt;
    pt.block = n;
    pt.var_of_sum = variance(sums);
    pt.sum_of_var = static_cast<double>(n) * var1;
    pt.ratio = pt.var_of_sum / pt.sum_of_var;
    pt.samples = blocks;
    out.push_back(pt);
  }
  return out;
}

double bienayme_defect(std::span<const BienaymePoint> sweep) {
  double worst = 0.0;
  for (const auto& pt : sweep)
    worst = std::max(worst, std::abs(pt.ratio - 1.0));
  return worst;
}

}  // namespace ptrng::stats
