#include "stats/normality.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace ptrng::stats {

double kolmogorov_sf(double lambda) {
  PTRNG_EXPECTS(lambda >= 0.0);
  if (lambda < 0.05) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 200; ++k) {
    const double term =
        sign * std::exp(-2.0 * static_cast<double>(k) *
                        static_cast<double>(k) * lambda * lambda);
    sum += term;
    if (std::abs(term) < 1e-16) break;
    sign = -sign;
  }
  return std::min(1.0, std::max(0.0, 2.0 * sum));
}

TestResult jarque_bera(std::span<const double> xs) {
  PTRNG_EXPECTS(xs.size() >= 100);
  RunningStats rs;
  for (double x : xs) rs.add(x);
  const double n = static_cast<double>(xs.size());
  const double s = rs.skewness();
  const double k = rs.excess_kurtosis();
  TestResult res;
  res.statistic = n / 6.0 * (s * s + k * k / 4.0);
  res.dof = 2.0;
  res.p_value = chi_square_sf(res.statistic, 2.0);
  return res;
}

TestResult ks_normal(std::span<const double> xs) {
  PTRNG_EXPECTS(xs.size() >= 50);
  const double m = mean(xs);
  const double sd = stddev(xs);
  PTRNG_EXPECTS(sd > 0.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = normal_cdf((sorted[i] - m) / sd);
    const double hi = static_cast<double>(i + 1) / n - cdf;
    const double lo = cdf - static_cast<double>(i) / n;
    d = std::max({d, hi, lo});
  }
  TestResult res;
  res.statistic = d;
  res.dof = 0.0;
  res.p_value = kolmogorov_sf((std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d);
  return res;
}

TestResult skewness_test(std::span<const double> xs) {
  PTRNG_EXPECTS(xs.size() >= 100);
  RunningStats rs;
  for (double x : xs) rs.add(x);
  const double n = static_cast<double>(xs.size());
  // Var(skewness) ~ 6/n for Gaussian data.
  TestResult res;
  res.statistic = rs.skewness() / std::sqrt(6.0 / n);
  res.dof = 0.0;
  res.p_value = 2.0 * (1.0 - normal_cdf(std::abs(res.statistic)));
  return res;
}

}  // namespace ptrng::stats
