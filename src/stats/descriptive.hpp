// Descriptive statistics: streaming Welford moments, batch summaries,
// quantiles and histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ptrng::stats {

/// Bit-exact snapshot of a RunningStats accumulator: every internal
/// moment as a raw double, so a checkpointed accumulator restored via
/// from_state() continues EXACTLY where the original left off (the fleet
/// campaign's resume-byte-identity guarantee rests on this).
struct RunningStatsState {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Numerically stable streaming accumulator for mean/variance/skew/kurtosis
/// (Welford / Pébay update formulas). Suitable for billions of samples.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// Snapshot of the full internal state (checkpoint/resume).
  [[nodiscard]] RunningStatsState state() const noexcept;
  /// Reconstructs an accumulator that continues bit-exactly from a
  /// snapshot taken with state().
  [[nodiscard]] static RunningStats from_state(
      const RunningStatsState& s) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  /// Population variance (n denominator); 0 for n < 1.
  [[nodiscard]] double variance_population() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Sample skewness g1; 0 for degenerate input.
  [[nodiscard]] double skewness() const noexcept;
  /// Excess kurtosis g2 (0 for a Gaussian); 0 for degenerate input.
  [[nodiscard]] double excess_kurtosis() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch mean.
[[nodiscard]] double mean(std::span<const double> xs);
/// Batch unbiased sample variance.
[[nodiscard]] double variance(std::span<const double> xs);
/// Batch standard deviation (unbiased variance).
[[nodiscard]] double stddev(std::span<const double> xs);
/// Sample covariance of two equal-length series.
[[nodiscard]] double covariance(std::span<const double> xs,
                                std::span<const double> ys);
/// Pearson correlation coefficient.
[[nodiscard]] double correlation(std::span<const double> xs,
                                 std::span<const double> ys);

/// q-th quantile (0<=q<=1) by linear interpolation of order statistics.
/// Copies and partially sorts internally.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Fixed-width histogram over [lo, hi) with counts and outlier tallies.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Center abscissa of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Probability density estimate at a bin (count / (total*width)).
  [[nodiscard]] double density(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace ptrng::stats
