#include "stats/psd.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "fft/fft.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace ptrng::stats {

namespace {

/// One modified periodogram of a windowed segment, accumulated into `acc`.
/// Normalization: one-sided, integral over [0, fs/2] equals signal power.
void accumulate_segment(std::span<const double> seg,
                        const std::vector<double>& window, double fs,
                        std::vector<double>& acc) {
  const std::size_t n = window.size();
  std::vector<std::complex<double>> buf(next_pow2(n));
  const double m = mean(seg);
  for (std::size_t i = 0; i < n; ++i) buf[i] = (seg[i] - m) * window[i];
  fft::transform(buf, /*inverse=*/false);
  const double u = fft::window_power(window);  // sum w^2
  const double norm = 1.0 / (fs * u);
  const std::size_t half = buf.size() / 2;
  for (std::size_t k = 1; k <= half; ++k) {
    const double mag2 = std::norm(buf[k]);
    // One-sided: double all bins except Nyquist.
    const double factor = (k == half) ? 1.0 : 2.0;
    acc[k - 1] += factor * mag2 * norm;
  }
}

}  // namespace

PsdEstimate periodogram(std::span<const double> signal, double fs,
                        fft::WindowKind window) {
  PTRNG_EXPECTS(signal.size() >= 8);
  PTRNG_EXPECTS(fs > 0.0);
  const std::size_t n = next_pow2(signal.size());
  // Zero-pad via windowing the original length only.
  auto w = fft::make_window(window, signal.size());
  std::vector<double> acc(n / 2, 0.0);
  accumulate_segment(signal, w, fs, acc);

  PsdEstimate est;
  est.segments = 1;
  est.resolution_hz = fs / static_cast<double>(n);
  est.frequency.resize(acc.size());
  for (std::size_t k = 0; k < acc.size(); ++k)
    est.frequency[k] = est.resolution_hz * static_cast<double>(k + 1);
  est.psd = std::move(acc);
  return est;
}

PsdEstimate welch(std::span<const double> signal, double fs,
                  std::size_t segment_size, double overlap,
                  fft::WindowKind window) {
  PTRNG_EXPECTS(signal.size() >= 16);
  PTRNG_EXPECTS(fs > 0.0);
  PTRNG_EXPECTS(overlap >= 0.0 && overlap <= 0.9);
  const std::size_t nseg = std::min(next_pow2(segment_size),
                                    next_pow2(signal.size()) / 2);
  PTRNG_EXPECTS(nseg >= 8);
  const auto w = fft::make_window(window, nseg);
  const auto stride = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(nseg) * (1.0 - overlap)));

  std::vector<std::size_t> starts;
  for (std::size_t start = 0; start + nseg <= signal.size(); start += stride)
    starts.push_back(start);
  const std::size_t count = starts.size();
  PTRNG_EXPECTS(count >= 1);

  // Fan the segment FFTs across the pool (§5 leaf rule): one segment per
  // chunk, per-chunk periodograms folded in segment order, so the sum —
  // and therefore the estimate — is bit-identical for any PTRNG_THREADS
  // (and to the sequential accumulation it replaces).
  const std::size_t n_bins = next_pow2(nseg) / 2;
  auto acc = parallel_reduce(
      0, count, 1, std::vector<double>(n_bins, 0.0),
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> part(n_bins, 0.0);
        for (std::size_t s = begin; s < end; ++s)
          accumulate_segment(signal.subspan(starts[s], nseg), w, fs, part);
        return part;
      },
      [](std::vector<double> a, const std::vector<double>& b) {
        for (std::size_t k = 0; k < a.size(); ++k) a[k] += b[k];
        return a;
      });
  for (auto& v : acc) v /= static_cast<double>(count);

  PsdEstimate est;
  est.segments = count;
  est.resolution_hz = fs / static_cast<double>(next_pow2(nseg));
  est.frequency.resize(acc.size());
  for (std::size_t k = 0; k < acc.size(); ++k)
    est.frequency[k] = est.resolution_hz * static_cast<double>(k + 1);
  est.psd = std::move(acc);
  return est;
}

double psd_slope(const PsdEstimate& est, double f_lo, double f_hi) {
  PTRNG_EXPECTS(f_lo > 0.0 && f_hi > f_lo);
  std::vector<double> fx, fy;
  for (std::size_t k = 0; k < est.frequency.size(); ++k) {
    if (est.frequency[k] >= f_lo && est.frequency[k] <= f_hi &&
        est.psd[k] > 0.0) {
      fx.push_back(est.frequency[k]);
      fy.push_back(est.psd[k]);
    }
  }
  PTRNG_EXPECTS(fx.size() >= 4);
  return fit_loglog(fx, fy).coefficients[1];
}

double psd_level(const PsdEstimate& est, double f_lo, double f_hi) {
  PTRNG_EXPECTS(f_lo > 0.0 && f_hi > f_lo);
  KahanSum acc;
  std::size_t count = 0;
  for (std::size_t k = 0; k < est.frequency.size(); ++k) {
    if (est.frequency[k] >= f_lo && est.frequency[k] <= f_hi) {
      acc.add(est.psd[k]);
      ++count;
    }
  }
  PTRNG_EXPECTS(count >= 1);
  return acc.value() / static_cast<double>(count);
}

}  // namespace ptrng::stats
