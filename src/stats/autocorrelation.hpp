// Sample autocorrelation of a time series — the direct diagnostic for the
// paper's central question (are jitter realizations independent?).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrng::stats {

/// Sample autocorrelation function r_k for lags 0..max_lag.
/// Uses the standard biased normalization (divide by N and c_0), which keeps
/// the estimated sequence positive semi-definite. r_0 == 1 by construction.
/// O(N log N) via FFT.
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> xs,
                                                  std::size_t max_lag);

/// Direct O(N*max_lag) reference implementation (for testing the FFT path
/// and for very short series).
[[nodiscard]] std::vector<double> autocorrelation_direct(
    std::span<const double> xs, std::size_t max_lag);

/// Sample autocovariance c_k (biased, divide by N) for lags 0..max_lag.
[[nodiscard]] std::vector<double> autocovariance(std::span<const double> xs,
                                                 std::size_t max_lag);

/// Partial autocorrelation via Durbin–Levinson on the sample ACF.
/// Element 0 is defined as 1.
[[nodiscard]] std::vector<double> partial_autocorrelation(
    std::span<const double> xs, std::size_t max_lag);

/// Large-lag 95% confidence band half-width for a white-noise null
/// (±1.96/sqrt(N)).
[[nodiscard]] double white_noise_band(std::size_t n);

}  // namespace ptrng::stats
