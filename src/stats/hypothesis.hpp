// Hypothesis tests used to probe the independence assumption on jitter
// series: portmanteau tests on the ACF (Ljung–Box, Box–Pierce), the
// Wald–Wolfowitz runs test, the turning-point test and a chi-square
// goodness-of-fit helper.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrng::stats {

/// Outcome of a statistical hypothesis test.
struct TestResult {
  double statistic = 0.0;  ///< the test statistic value
  double p_value = 1.0;    ///< upper-tail p-value under H0
  double dof = 0.0;        ///< degrees of freedom (when applicable)
  /// True when H0 (e.g. "series is white") is rejected at `alpha`.
  [[nodiscard]] bool reject(double alpha = 0.05) const {
    return p_value < alpha;
  }
};

/// Ljung–Box portmanteau test on the first `lags` autocorrelations.
/// H0: the series is white noise (no serial correlation).
[[nodiscard]] TestResult ljung_box(std::span<const double> xs,
                                   std::size_t lags);

/// Box–Pierce variant (less accurate at finite N; kept for comparison).
[[nodiscard]] TestResult box_pierce(std::span<const double> xs,
                                    std::size_t lags);

/// Wald–Wolfowitz runs test on the signs relative to the median.
/// H0: observations are in random order.
[[nodiscard]] TestResult runs_test(std::span<const double> xs);

/// Turning-point test: counts local extrema; a white series has
/// mean 2(N-2)/3 turning points. H0: iid sequence.
[[nodiscard]] TestResult turning_point_test(std::span<const double> xs);

/// Chi-square goodness-of-fit: `observed` counts against `expected` counts.
/// dof = bins - 1 - constrained_params.
[[nodiscard]] TestResult chi_square_gof(std::span<const double> observed,
                                        std::span<const double> expected,
                                        std::size_t constrained_params = 0);

}  // namespace ptrng::stats
