// Linear least squares. The central use case is the paper's Fig. 7 fit:
//
//     sigma^2_N * f0^2  =  A*N + B*N^2      (through the origin)
//
// from which b_th = A*f0/2 and b_fl = B*f0^2/(8*ln2). General weighted
// polynomial/design-matrix fits are provided, with parameter covariance.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrng::stats {

/// Result of a least-squares fit.
struct FitResult {
  std::vector<double> coefficients;  ///< one per basis function
  std::vector<double> std_errors;    ///< coefficient standard errors
  std::vector<double> covariance;    ///< row-major p x p covariance matrix
  double rss = 0.0;                  ///< residual sum of squares (weighted)
  double r_squared = 0.0;            ///< coefficient of determination
  std::size_t n_points = 0;

  /// Fitted value for a row of basis-function values.
  [[nodiscard]] double predict(std::span<const double> basis_row) const;
};

/// Weighted least squares with an explicit design matrix.
/// `design` is row-major, n x p; `weights` may be empty (OLS) or per-point
/// inverse-variance weights. Solves the normal equations by Cholesky with a
/// column-scaling preconditioner.
[[nodiscard]] FitResult least_squares(std::span<const double> design,
                                      std::size_t n, std::size_t p,
                                      std::span<const double> y,
                                      std::span<const double> weights = {});

/// Polynomial fit y ~ sum_{k in powers} c_k * x^k.
/// `powers` selects the basis (e.g. {1,2} for the through-origin
/// A*N + B*N^2 fit of the paper).
[[nodiscard]] FitResult fit_powers(std::span<const double> x,
                                   std::span<const double> y,
                                   std::span<const std::size_t> powers,
                                   std::span<const double> weights = {});

/// Straight line y ~ a + b*x; coefficients = {a, b}.
[[nodiscard]] FitResult fit_line(std::span<const double> x,
                                 std::span<const double> y);

/// Log-log power-law fit y ~ c * x^slope (fits log y ~ log c + slope log x).
/// Returns {log_c, slope} as coefficients. All x, y must be positive.
[[nodiscard]] FitResult fit_loglog(std::span<const double> x,
                                   std::span<const double> y);

}  // namespace ptrng::stats
