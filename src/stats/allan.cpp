#include "stats/allan.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::stats {

double allan_variance_time_error(std::span<const double> x, double tau0,
                                 std::size_t m, bool overlapping) {
  PTRNG_EXPECTS(tau0 > 0.0);
  PTRNG_EXPECTS(m >= 1);
  PTRNG_EXPECTS(x.size() > 2 * m);
  const double tau = tau0 * static_cast<double>(m);
  const std::size_t stride = overlapping ? 1 : m;
  KahanSum acc;
  std::size_t count = 0;
  for (std::size_t i = 0; i + 2 * m < x.size(); i += stride) {
    acc.add(square(x[i + 2 * m] - 2.0 * x[i + m] + x[i]));
    ++count;
  }
  PTRNG_EXPECTS(count >= 1);
  return acc.value() / (2.0 * tau * tau * static_cast<double>(count));
}

double allan_variance_frequency(std::span<const double> y, double tau0,
                                std::size_t m, bool overlapping) {
  PTRNG_EXPECTS(tau0 > 0.0);
  PTRNG_EXPECTS(m >= 1);
  PTRNG_EXPECTS(y.size() >= 2 * m);
  // Averaged frequency over blocks of m, then half mean squared difference.
  const std::size_t stride = overlapping ? 1 : m;
  KahanSum acc;
  std::size_t count = 0;
  for (std::size_t i = 0; i + 2 * m <= y.size(); i += stride) {
    double y1 = 0.0, y2 = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      y1 += y[i + k];
      y2 += y[i + m + k];
    }
    y1 /= static_cast<double>(m);
    y2 /= static_cast<double>(m);
    acc.add(square(y2 - y1));
    ++count;
  }
  PTRNG_EXPECTS(count >= 1);
  return acc.value() / (2.0 * static_cast<double>(count));
}

double modified_allan_variance(std::span<const double> x, double tau0,
                               std::size_t m) {
  PTRNG_EXPECTS(tau0 > 0.0);
  PTRNG_EXPECTS(m >= 1);
  PTRNG_EXPECTS(x.size() > 3 * m);
  const double tau = tau0 * static_cast<double>(m);
  // Inner average over m phase second-differences, then square.
  KahanSum acc;
  std::size_t count = 0;
  for (std::size_t j = 0; j + 3 * m < x.size(); ++j) {
    double inner = 0.0;
    for (std::size_t i = j; i < j + m; ++i)
      inner += x[i + 2 * m] - 2.0 * x[i + m] + x[i];
    inner /= static_cast<double>(m);
    acc.add(square(inner));
    ++count;
  }
  PTRNG_EXPECTS(count >= 1);
  return acc.value() / (2.0 * tau * tau * static_cast<double>(count));
}

double hadamard_variance(std::span<const double> x, double tau0,
                         std::size_t m) {
  PTRNG_EXPECTS(tau0 > 0.0);
  PTRNG_EXPECTS(m >= 1);
  PTRNG_EXPECTS(x.size() > 3 * m);
  const double tau = tau0 * static_cast<double>(m);
  KahanSum acc;
  std::size_t count = 0;
  for (std::size_t i = 0; i + 3 * m < x.size(); ++i) {
    acc.add(square(x[i + 3 * m] - 3.0 * x[i + 2 * m] + 3.0 * x[i + m] - x[i]));
    ++count;
  }
  PTRNG_EXPECTS(count >= 1);
  return acc.value() / (6.0 * tau * tau * static_cast<double>(count));
}

double allan_theory_thermal_flicker(double b_th, double b_fl, double f0,
                                    double tau) {
  PTRNG_EXPECTS(f0 > 0.0 && tau > 0.0);
  PTRNG_EXPECTS(b_th >= 0.0 && b_fl >= 0.0);
  return b_th / (f0 * f0 * tau) + 4.0 * constants::ln2 * b_fl / (f0 * f0);
}

double sigma2_n_from_allan(double allan_var, double tau) {
  PTRNG_EXPECTS(tau > 0.0);
  return 2.0 * tau * tau * allan_var;
}

std::vector<AllanPoint> allan_sweep(std::span<const double> x, double tau0,
                                    std::span<const std::size_t> ms,
                                    bool overlapping) {
  std::vector<AllanPoint> out;
  out.reserve(ms.size());
  for (std::size_t m : ms) {
    if (x.size() <= 2 * m) continue;
    AllanPoint pt;
    pt.m = m;
    pt.tau = tau0 * static_cast<double>(m);
    pt.avar = allan_variance_time_error(x, tau0, m, overlapping);
    pt.terms = overlapping ? x.size() - 2 * m : (x.size() - 1) / (2 * m);
    out.push_back(pt);
  }
  return out;
}

}  // namespace ptrng::stats
