// Normality tests. The paper's stochastic model (and every model it
// critiques) assumes the jitter realizations are Gaussian — "many
// intrinsic noise sources ... contribute to the Gaussian noise that is
// superposed on the RRAS" (Conclusion). These tests let the library check
// that assumption on simulated or imported jitter data.
#pragma once

#include <span>

#include "stats/hypothesis.hpp"

namespace ptrng::stats {

/// Jarque–Bera test: JB = n/6 (S^2 + K^2/4) ~ chi-square(2) under
/// normality (S = skewness, K = excess kurtosis). Good power against
/// heavy tails and asymmetry; n >= 100 recommended.
[[nodiscard]] TestResult jarque_bera(std::span<const double> xs);

/// One-sample Kolmogorov–Smirnov test against N(mean, sd) estimated from
/// the data, with the asymptotic Kolmogorov distribution p-value
/// (Lilliefors-flavoured: estimating parameters makes the p-value
/// conservative-ish at these sample sizes; treat borderline results with
/// care).
[[nodiscard]] TestResult ks_normal(std::span<const double> xs);

/// D'Agostino-style skewness z-test (H0: skewness == 0).
[[nodiscard]] TestResult skewness_test(std::span<const double> xs);

/// Kolmogorov distribution survival function Q(lambda) =
/// 2 sum_{k>=1} (-1)^{k-1} e^{-2 k^2 lambda^2}.
[[nodiscard]] double kolmogorov_sf(double lambda);

}  // namespace ptrng::stats
