#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"

namespace ptrng::stats {

namespace {

// Lanczos coefficients (g = 7, n = 9), classic Boost/GSL-compatible set.
constexpr double kLanczos[] = {
    0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,   12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

// Series expansion of P(a,x), converges fast for x < a+1.
double gamma_p_series(double a, double x) {
  // The series needs O(sqrt(a)) terms when x ~ a; the cap accommodates
  // the ~1e5-dof chi-square quantiles the sweep CIs ask for.
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 100000; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-16)
      return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
  }
  throw NumericError("gamma_p_series: no convergence");
}

// Continued fraction for Q(a,x), converges fast for x > a+1 (Lentz).
double gamma_q_cf(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 100000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-16)
      return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
  }
  throw NumericError("gamma_q_cf: no convergence");
}

}  // namespace

double log_gamma(double x) {
  PTRNG_EXPECTS(x > 0.0);
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos argument in its accurate range.
    return std::log(constants::pi / std::sin(constants::pi * x)) -
           log_gamma(1.0 - x);
  }
  x -= 1.0;
  double acc = kLanczos[0];
  for (int i = 1; i < 9; ++i) acc += kLanczos[i] / (x + static_cast<double>(i));
  const double t = x + 7.5;
  return 0.5 * std::log(constants::two_pi) + (x + 0.5) * std::log(t) - t +
         std::log(acc);
}

double gamma_p(double a, double x) {
  PTRNG_EXPECTS(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  return (x < a + 1.0) ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  PTRNG_EXPECTS(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  return (x < a + 1.0) ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  PTRNG_EXPECTS(p > 0.0 && p < 1.0);
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(constants::two_pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double chi_square_cdf(double x, double k) {
  PTRNG_EXPECTS(k > 0.0);
  if (x <= 0.0) return 0.0;
  return gamma_p(k / 2.0, x / 2.0);
}

double chi_square_sf(double x, double k) {
  PTRNG_EXPECTS(k > 0.0);
  if (x <= 0.0) return 1.0;
  return gamma_q(k / 2.0, x / 2.0);
}

double chi_square_quantile(double p, double k) {
  PTRNG_EXPECTS(p > 0.0 && p < 1.0);
  PTRNG_EXPECTS(k > 0.0);
  // Wilson–Hilferty starting point, then bisection + Newton polish.
  const double z = normal_quantile(p);
  const double wh = k * std::pow(1.0 - 2.0 / (9.0 * k) +
                                     z * std::sqrt(2.0 / (9.0 * k)),
                                 3.0);
  double lo = 0.0;
  double hi = std::max(wh * 4.0 + 10.0, 10.0 * k);
  while (chi_square_cdf(hi, k) < p) hi *= 2.0;
  double x = std::max(wh, 1e-12);
  for (int it = 0; it < 200; ++it) {
    const double f = chi_square_cdf(x, k) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using the chi-square pdf; fall back to bisection.
    const double logpdf = (k / 2.0 - 1.0) * std::log(x) - x / 2.0 -
                          (k / 2.0) * constants::ln2 - log_gamma(k / 2.0);
    const double pdf = std::exp(logpdf);
    double next = (pdf > 0.0) ? x - f / pdf : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - x) < 1e-12 * (1.0 + x)) return next;
    x = next;
  }
  return x;
}

double binary_entropy(double p) {
  PTRNG_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
}

}  // namespace ptrng::stats
