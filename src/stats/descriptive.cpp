#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

RunningStatsState RunningStats::state() const noexcept {
  return {static_cast<std::uint64_t>(n_), mean_, m2_, m3_, m4_, min_, max_};
}

RunningStats RunningStats::from_state(const RunningStatsState& s) noexcept {
  RunningStats r;
  r.n_ = static_cast<std::size_t>(s.n);
  r.mean_ = s.mean;
  r.m2_ = s.m2;
  r.m3_ = s.m3;
  r.m4_ = s.m4;
  r.min_ = s.min;
  r.max_ = s.max;
  return r;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::variance_population() const noexcept {
  return n_ < 1 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::skewness() const noexcept {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::excess_kurtosis() const noexcept {
  if (n_ < 4 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double mean(std::span<const double> xs) {
  PTRNG_EXPECTS(!xs.empty());
  return kahan_sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  PTRNG_EXPECTS(xs.size() >= 2);
  const double m = mean(xs);
  KahanSum acc;
  for (double x : xs) acc.add(square(x - m));
  return acc.value() / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double covariance(std::span<const double> xs, std::span<const double> ys) {
  PTRNG_EXPECTS(xs.size() == ys.size());
  PTRNG_EXPECTS(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  KahanSum acc;
  for (std::size_t i = 0; i < xs.size(); ++i)
    acc.add((xs[i] - mx) * (ys[i] - my));
  return acc.value() / static_cast<double>(xs.size() - 1);
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  const double sx = stddev(xs);
  const double sy = stddev(ys);
  PTRNG_EXPECTS(sx > 0.0 && sy > 0.0);
  return covariance(xs, ys) / (sx * sy);
}

double quantile(std::span<const double> xs, double q) {
  PTRNG_EXPECTS(!xs.empty());
  PTRNG_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  PTRNG_EXPECTS(hi > lo);
  PTRNG_EXPECTS(bins >= 1);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge case
    ++counts_[bin];
  }
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  PTRNG_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  PTRNG_EXPECTS(bin < counts_.size());
  return lo_ + width_ * (static_cast<double>(bin) + 0.5);
}

double Histogram::density(std::size_t bin) const {
  PTRNG_EXPECTS(bin < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(total_) * width_);
}

}  // namespace ptrng::stats
