#include "stats/regression.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "stats/descriptive.hpp"

namespace ptrng::stats {

namespace {

/// Cholesky factorization of a symmetric positive-definite p x p matrix
/// (row-major, in place; lower triangle). Throws NumericError if not SPD.
void cholesky(std::vector<double>& m, std::size_t p) {
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = m[i * p + j];
      for (std::size_t k = 0; k < j; ++k) sum -= m[i * p + k] * m[j * p + k];
      if (i == j) {
        if (sum <= 0.0) throw NumericError("least_squares: singular design");
        m[i * p + i] = std::sqrt(sum);
      } else {
        m[i * p + j] = sum / m[j * p + j];
      }
    }
  }
}

/// Solves L L^T x = b given the Cholesky factor L (lower, row-major).
void cholesky_solve(const std::vector<double>& l, std::size_t p,
                    std::vector<double>& b) {
  for (std::size_t i = 0; i < p; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * p + k] * b[k];
    b[i] = sum / l[i * p + i];
  }
  for (std::size_t ii = p; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t k = ii + 1; k < p; ++k) sum -= l[k * p + ii] * b[k];
    b[ii] = sum / l[ii * p + ii];
  }
}

/// Inverse of an SPD matrix from its Cholesky factor (returns full matrix).
std::vector<double> cholesky_inverse(const std::vector<double>& l,
                                     std::size_t p) {
  std::vector<double> inv(p * p, 0.0);
  std::vector<double> e(p);
  for (std::size_t col = 0; col < p; ++col) {
    std::fill(e.begin(), e.end(), 0.0);
    e[col] = 1.0;
    cholesky_solve(l, p, e);
    for (std::size_t row = 0; row < p; ++row) inv[row * p + col] = e[row];
  }
  return inv;
}

}  // namespace

double FitResult::predict(std::span<const double> basis_row) const {
  PTRNG_EXPECTS(basis_row.size() == coefficients.size());
  double y = 0.0;
  for (std::size_t k = 0; k < coefficients.size(); ++k)
    y += coefficients[k] * basis_row[k];
  return y;
}

FitResult least_squares(std::span<const double> design, std::size_t n,
                        std::size_t p, std::span<const double> y,
                        std::span<const double> weights) {
  PTRNG_EXPECTS(p >= 1 && n >= p);
  PTRNG_EXPECTS(design.size() == n * p);
  PTRNG_EXPECTS(y.size() == n);
  PTRNG_EXPECTS(weights.empty() || weights.size() == n);

  // Column scaling: kappa(X^T X) = kappa(X)^2, and the N vs N^2 basis spans
  // many decades, so precondition by the column RMS before forming normal
  // equations.
  std::vector<double> scale(p, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < p; ++j)
      scale[j] += square(design[i * p + j]);
  for (std::size_t j = 0; j < p; ++j) {
    scale[j] = std::sqrt(scale[j] / static_cast<double>(n));
    if (scale[j] == 0.0) throw NumericError("least_squares: zero column");
  }

  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    PTRNG_EXPECTS(w >= 0.0);
    for (std::size_t j = 0; j < p; ++j) {
      const double xj = design[i * p + j] / scale[j];
      xty[j] += w * xj * y[i];
      for (std::size_t k = 0; k <= j; ++k)
        xtx[j * p + k] += w * xj * (design[i * p + k] / scale[k]);
    }
  }
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t k = j + 1; k < p; ++k) xtx[j * p + k] = xtx[k * p + j];

  auto factor = xtx;
  cholesky(factor, p);
  auto beta = xty;
  cholesky_solve(factor, p, beta);
  auto inv = cholesky_inverse(factor, p);

  FitResult res;
  res.n_points = n;
  res.coefficients.resize(p);
  for (std::size_t j = 0; j < p; ++j) res.coefficients[j] = beta[j] / scale[j];

  // Residuals and dispersion.
  double rss = 0.0;
  double tss = 0.0;
  double wsum = 0.0;
  double wy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    wsum += w;
    wy += w * y[i];
  }
  const double ybar = (wsum > 0.0) ? wy / wsum : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    double fit = 0.0;
    for (std::size_t j = 0; j < p; ++j)
      fit += res.coefficients[j] * design[i * p + j];
    rss += w * square(y[i] - fit);
    tss += w * square(y[i] - ybar);
  }
  res.rss = rss;
  res.r_squared = (tss > 0.0) ? 1.0 - rss / tss : 1.0;

  // Covariance: sigma^2 * (X^T W X)^{-1} with sigma^2 = rss/(n-p).
  const double dof = static_cast<double>(n - p);
  const double s2 = (dof > 0.0) ? rss / dof : 0.0;
  res.covariance.resize(p * p);
  res.std_errors.resize(p);
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t k = 0; k < p; ++k)
      res.covariance[j * p + k] =
          s2 * inv[j * p + k] / (scale[j] * scale[k]);
    res.std_errors[j] = std::sqrt(std::max(0.0, res.covariance[j * p + j]));
  }
  return res;
}

FitResult fit_powers(std::span<const double> x, std::span<const double> y,
                     std::span<const std::size_t> powers,
                     std::span<const double> weights) {
  PTRNG_EXPECTS(x.size() == y.size());
  PTRNG_EXPECTS(!powers.empty());
  const std::size_t n = x.size();
  const std::size_t p = powers.size();
  std::vector<double> design(n * p);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < p; ++j)
      design[i * p + j] = std::pow(x[i], static_cast<double>(powers[j]));
  return least_squares(design, n, p, y, weights);
}

FitResult fit_line(std::span<const double> x, std::span<const double> y) {
  const std::size_t powers_arr[] = {0, 1};
  return fit_powers(x, y, powers_arr);
}

FitResult fit_loglog(std::span<const double> x, std::span<const double> y) {
  PTRNG_EXPECTS(x.size() == y.size());
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    PTRNG_EXPECTS(x[i] > 0.0 && y[i] > 0.0);
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return fit_line(lx, ly);
}

}  // namespace ptrng::stats
