// Fleet-scale Monte Carlo corner campaign (ROADMAP item 1): the paper's
// single-bench experiment promoted to a deployment question — "across a
// FLEET of devices spanning technology nodes, operating corners,
// flicker levels and attack scenarios, what entropy does the
// architecture actually deliver, and does the continuous-health layer
// catch the attacked corners?"
//
// Structure:
//  * a deterministic CORNER GRID (expand_grid): {generator} x
//    {technology node} x {operating corner} x {flicker scale} x
//    {attack scenario}, expanded in a fixed documented order so
//    "--corners N" always means the same first N cells;
//  * each corner is sampled by `seeds` independent DEVICES (shards);
//    shard s simulates one device seeded from chunk_seed(seed, s) —
//    decorrelated streams, bit-identical for any thread count;
//  * shards fan out on the work-stealing scheduler (parallel_for_ws,
//    grain 1): attacked devices cost ~10x a healthy device (the attack
//    modulation hook forces the oscillator onto its per-period stepping
//    path), so dynamic scheduling is what keeps the fleet busy;
//  * aggregation is STREAMING and ORDER-INVARIANT: per-corner
//    accumulators (RunningStats moments + pass/alarm counters) are
//    folded in SHARD INDEX ORDER regardless of completion order, so the
//    campaign state after folding the first P shards is a pure function
//    of (config, P) — which is exactly what makes a checkpoint sound;
//  * CHECKPOINT/RESUME: after every batch the campaign atomically
//    snapshots (folded prefix, accumulator states) under a 64-byte
//    raw_export-style header keyed by the SHA-256 digest of the
//    canonical config string. A resumed campaign replays nothing it
//    already folded and produces a BYTE-IDENTICAL report
//    (docs/ARCHITECTURE.md §9 is the normative format spec).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"

namespace ptrng::model {

/// One cell of the campaign grid: a device architecture at an operating
/// point under an (optional) attack.
struct CornerSpec {
  std::string generator;     ///< "ero" | "multi_ring" | "cell_array"
  std::string node;          ///< technology node name ("90nm", ...)
  std::string corner;        ///< operating corner name ("tt", ...)
  double flicker_scale = 1.0;  ///< 0 = thermal only, 1 = paper level
  std::string attack;        ///< attacks::attack_names() entry

  /// Stable display/JSON id, e.g. "ero/90nm/tt/f1/lock".
  [[nodiscard]] std::string name() const;
};

/// Campaign configuration. Every field participates in the canonical
/// config string (and therefore the checkpoint digest) — two configs
/// with any differing field never share a checkpoint.
struct CampaignConfig {
  /// Grid cells to run: the first `corners` of expand_grid()'s fixed
  /// order; 0 = the full grid.
  std::size_t corners = 0;
  std::size_t seeds = 8;       ///< independent devices per corner
  /// Raw bits simulated per device (>= 1000, the Markov estimator's
  /// floor). The AIS-31 quick battery needs 20000
  /// (ais31::quick_battery_bits()); smaller shards skip it.
  std::size_t bits_per_shard = 20000;
  std::uint64_t seed = 0xf1ee7ca5ULL;  ///< base; shards derive per index
  bool run_ais31 = true;       ///< run T1-T4 per shard when bits allow
  std::uint32_t divider = 200;  ///< eRO / multi-ring sampling divider
  std::size_t rings = 4;       ///< multi-ring R
  std::size_t cells = 3;       ///< cell-array N
  /// Shards per batch: the unit of fan-out AND the checkpoint cadence
  /// (a snapshot lands after every batch when checkpointing is on).
  std::size_t batch_size = 64;
  /// Checkpoint file; empty disables checkpointing entirely.
  std::string checkpoint_path;
  /// Load `checkpoint_path` and continue after its folded prefix. A
  /// missing file starts fresh; a digest mismatch throws DataError.
  bool resume = false;
  /// Fold at most this many shards THIS invocation (then checkpoint and
  /// return with complete=false) — the programmatic stand-in for
  /// kill-and-resume, and what the interruption tests drive.
  std::size_t max_shards = 0;  ///< 0 = unlimited
  /// Use the work-stealing scheduler (parallel_for_ws); false falls
  /// back to the fixed-chunk deterministic parallel_for. Both produce
  /// identical reports — this knob exists for the scheduler bench.
  bool use_work_stealing = true;
  /// Optional after-each-batch hook (CLI progress): (folded, total).
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

/// Measurements of ONE device shard (what the fold consumes).
struct ShardResult {
  double markov_entropy = 0.0;   ///< first-order Markov rate [bits/bit]
  double min_entropy = 0.0;      ///< 8-bit-block min-entropy [bits/bit]
  bool ais31_run = false;
  bool ais31_pass = false;
  bool alarmed = false;          ///< SP 800-90B §4.4 engine fired
  double latency_bits = 0.0;     ///< 1-based first-alarm bit when alarmed
};

/// Streaming per-corner aggregate: constant memory per corner no matter
/// how many shards fold into it. All members round-trip bit-exactly
/// through the checkpoint (RunningStatsState + u64 counters).
struct CornerAccumulator {
  stats::RunningStats markov_entropy;
  stats::RunningStats min_entropy;
  stats::RunningStats detect_latency;  ///< over ALARMED shards only
  std::uint64_t shards = 0;
  std::uint64_t ais31_run = 0;
  std::uint64_t ais31_pass = 0;
  std::uint64_t alarmed = 0;

  void fold(const ShardResult& r);
  /// AIS-31 pass fraction (1.0 when the battery never ran).
  [[nodiscard]] double ais31_pass_rate() const noexcept;
  [[nodiscard]] double alarm_rate() const noexcept;
};

/// One corner's row in the final report.
struct CornerReport {
  CornerSpec spec;
  CornerAccumulator acc;
  /// "pass"/"degraded" for unattacked corners (AIS-31 pass rate and a
  /// quiet health engine), "detected"/"missed" for attacked ones (did
  /// the §4.4 engine alarm on a majority of devices?).
  std::string verdict;
};

/// The campaign outcome. table()/json() are DETERMINISTIC renderings:
/// no timestamps, fixed %.17g double formatting — byte-identical for
/// identical folded state, which is what the resume tests pin.
struct CampaignReport {
  std::vector<CornerReport> corners;
  std::uint64_t shards_folded = 0;
  std::uint64_t shards_total = 0;
  bool complete = false;
  std::string config_digest;  ///< lower-case hex SHA-256

  [[nodiscard]] std::string table() const;
  [[nodiscard]] std::string json() const;
};

/// Resumable campaign state: the folded prefix plus one accumulator per
/// grid corner — everything a checkpoint stores.
struct CampaignState {
  std::uint64_t folded = 0;
  std::vector<CornerAccumulator> corners;
};

/// The fixed campaign grid for `config` (honours corners/rings/cells
/// knobs only), expansion order generator -> node -> corner -> flicker
/// -> attack with axes:
///   generator {ero, multi_ring, cell_array}, node {180nm, 90nm, 65nm,
///   28nm}, corner standard_corners(), flicker_scale {0, 1, 4}, attack
///   attack_names() — except cell_array, which runs attack "none" only
///   (the injection model is ring-pair-level).
/// config.corners truncates to the first N cells.
[[nodiscard]] std::vector<CornerSpec> expand_grid(
    const CampaignConfig& config);

/// Canonical, timestamp-free config string — the checkpoint key.
[[nodiscard]] std::string canonical_config(const CampaignConfig& config);

/// Simulates one device shard of `spec` (seed already derived) and
/// measures it: Markov/min-entropy, the AIS-31 quick battery, and the
/// continuous-health first-alarm latency.
[[nodiscard]] ShardResult run_shard(const CornerSpec& spec,
                                    std::uint64_t shard_seed,
                                    const CampaignConfig& config);

/// Atomically (tmp + rename) writes a checkpoint of `state` keyed by
/// the SHA-256 of canonical_config(config).
void write_checkpoint(const std::string& path,
                      const CampaignConfig& config,
                      const CampaignState& state);

/// Reads a checkpoint back. Returns nullopt when the file does not
/// exist; throws DataError on corruption, a foreign config digest, or a
/// corner count that disagrees with the config's grid.
[[nodiscard]] std::optional<CampaignState> read_checkpoint(
    const std::string& path, const CampaignConfig& config);

/// Runs (or resumes) the campaign: grid expansion, batched shard
/// fan-out on the work-stealing pool, in-index-order folding, periodic
/// checkpointing. The report depends only on (config, shards folded) —
/// never on thread count, scheduler choice, or interruption history.
[[nodiscard]] CampaignReport run_campaign(const CampaignConfig& config);

}  // namespace ptrng::model
