#include "model/fleet_campaign.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "attacks/injection.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/sha256.hpp"
#include "oscillator/oscillator_pair.hpp"
#include "transistor/technology.hpp"
#include "trng/ais31.hpp"
#include "trng/cell_array.hpp"
#include "trng/continuous_health.hpp"
#include "trng/entropy.hpp"
#include "trng/ero_trng.hpp"
#include "trng/multi_ring.hpp"
#include "trng/raw_export.hpp"

namespace ptrng::model {
namespace {

// %.17g round-trips every finite double exactly, so two runs that fold
// the same accumulator state render the same JSON bytes.
std::string fmt_g17(double x) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string fmt_f(double x, int prec) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, x);
  return buf;
}

// Campaign grid axes. The node subset walks the scaling trajectory the
// paper's conclusion is about (flicker worsening as nodes shrink)
// without tripling the grid with near-duplicate neighbours.
constexpr const char* kNodes[] = {"180nm", "90nm", "65nm", "28nm"};
constexpr double kFlickerScales[] = {0.0, 1.0, 4.0};
constexpr const char* kGenerators[] = {"ero", "multi_ring", "cell_array"};

// ---------------------------------------------------------------------
// Device construction

// Per-ring flicker multiplier of a node relative to the 180nm
// reference: the paper calibration (paper_single_config) is treated as
// a 180nm-class device and b_fl scales with the node's crystallography
// constant alpha (flicker PSD ~ alpha / (W L^2) at minimum size).
double node_flicker_multiplier(const transistor::TechnologyNode& node) {
  return node.alpha_flicker /
         transistor::technology_node("180nm").alpha_flicker;
}

oscillator::RingOscillatorConfig derated_ring(
    std::uint64_t seed, double mismatch, const CornerSpec& spec,
    const transistor::TechnologyNode& node,
    const transistor::OperatingCorner& corner) {
  auto cfg = oscillator::paper_single_config(seed);
  cfg.mismatch = mismatch;
  cfg.b_fl *= spec.flicker_scale * node_flicker_multiplier(node);
  cfg.b_th *= corner.thermal_noise_scale();
  cfg.f0 *= corner.speed_scale();
  return cfg;
}

std::unique_ptr<trng::BitSource> make_device(const CornerSpec& spec,
                                             std::uint64_t shard_seed,
                                             const CampaignConfig& config) {
  const auto& node = transistor::technology_node(spec.node);
  const auto& corner = transistor::standard_corner(spec.corner);
  const auto attack = attacks::attack_by_name(spec.attack);

  if (spec.generator == "ero") {
    // Mirrors trng::paper_trng / attacks::make_attacked_trng
    // construction: same seed fan, same mismatch split, with the
    // node/corner derating applied BEFORE the attack transform (the
    // attack sees the deployed device, not the paper bench).
    auto sampled = derated_ring(shard_seed, +1.5e-3, spec, node, corner);
    auto sampling = derated_ring(shard_seed ^ 0xabcdef9876ULL, -1.5e-3,
                                 spec, node, corner);
    trng::EroTrngConfig cfg;
    cfg.divider = config.divider;
    if (!attack) {
      return std::make_unique<trng::EroTrng>(sampled, sampling, cfg);
    }
    const auto atk_sampled = attack->apply(sampled);
    const auto atk_sampling = attack->apply(sampling);
    auto trng =
        std::make_unique<trng::EroTrng>(atk_sampled, atk_sampling, cfg);
    if (attack->modulation_depth > 0.0) {
      trng->sampled().set_modulation(attack->modulation_for(atk_sampled));
      trng->sampling().set_modulation(attack->modulation_for(atk_sampling));
    }
    return trng;
  }

  if (spec.generator == "multi_ring") {
    auto base = derated_ring(shard_seed, 0.0, spec, node, corner);
    // Injection couples into the whole die: the suppression/entrainment
    // transform applies to the shared base config. The per-ring
    // deterministic beat is not modeled here (MultiRingTrng owns its
    // rings) — coupling + pull already carry the entropy collapse.
    if (attack) base = attack->apply(base);
    trng::MultiRingTrngConfig cfg;
    cfg.rings = config.rings;
    cfg.divider = config.divider;
    return std::make_unique<trng::MultiRingTrng>(base, cfg);
  }

  PTRNG_EXPECTS(spec.generator == "cell_array");
  auto cfg = trng::cell_array_from_technology(node, config.cells,
                                              /*base_stages=*/5,
                                              /*fanout=*/1.0,
                                              spec.flicker_scale > 0.0);
  // Corner derating in the delay domain: thermal delay VARIANCE scales
  // with T (sigma with sqrt), flicker amplitude with sqrt of the scale
  // (it multiplies a PSD ~ amplitude^2), and every nominal delay
  // divides by the speed multiplier.
  cfg.sigma_stage *= std::sqrt(corner.thermal_noise_scale());
  cfg.flicker_amplitude *= std::sqrt(spec.flicker_scale);
  cfg.stage_delay /= corner.speed_scale();
  cfg.seed = shard_seed;
  return std::make_unique<trng::CellArrayTrng>(cfg);
}

// ---------------------------------------------------------------------
// Checkpoint wire format (docs/ARCHITECTURE.md §9; all integers LE)

constexpr char kMagic[8] = {'P', 'T', 'R', 'N', 'G', 'C', 'K', 'P'};
constexpr std::uint16_t kCkpVersion = 1;
constexpr char kCkpId[] = "fleet_campaign";
constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kStateWords = 7;   // RunningStatsState as u64s
constexpr std::size_t kCornerWords = 4 + 3 * kStateWords;

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t get_u64(const std::string& in, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(in[offset + i]))
         << (8 * i);
  return v;
}

void put_state(std::string& out, const stats::RunningStatsState& s) {
  put_u64(out, s.n);
  for (double d : {s.mean, s.m2, s.m3, s.m4, s.min, s.max})
    put_u64(out, std::bit_cast<std::uint64_t>(d));
}

stats::RunningStatsState get_state(const std::string& in,
                                   std::size_t offset) {
  stats::RunningStatsState s;
  s.n = get_u64(in, offset);
  double* fields[] = {&s.mean, &s.m2, &s.m3, &s.m4, &s.min, &s.max};
  for (std::size_t i = 0; i < 6; ++i)
    *fields[i] = std::bit_cast<double>(get_u64(in, offset + 8 * (i + 1)));
  return s;
}

Sha256::Digest campaign_digest(const CampaignConfig& config) {
  return trng::config_digest(canonical_config(config));
}

}  // namespace

// ---------------------------------------------------------------------
// Grid + config identity

std::string CornerSpec::name() const {
  std::ostringstream os;
  os << generator << '/' << node << '/' << corner << "/f";
  // flicker scales are small integers by construction; render compactly
  if (flicker_scale == static_cast<std::uint64_t>(flicker_scale))
    os << static_cast<std::uint64_t>(flicker_scale);
  else
    os << fmt_g17(flicker_scale);
  os << '/' << attack;
  return os.str();
}

std::vector<CornerSpec> expand_grid(const CampaignConfig& config) {
  std::vector<CornerSpec> grid;
  for (const char* gen : kGenerators) {
    const bool attackable = std::string_view(gen) != "cell_array";
    for (const char* node : kNodes) {
      for (const auto& corner : transistor::standard_corners()) {
        for (double fl : kFlickerScales) {
          for (const char* atk : attacks::attack_names()) {
            if (!attackable && std::string_view(atk) != "none") continue;
            grid.push_back({gen, node, corner.name, fl, atk});
          }
        }
      }
    }
  }
  if (config.corners != 0 && config.corners < grid.size())
    grid.resize(config.corners);
  return grid;
}

std::string canonical_config(const CampaignConfig& config) {
  std::ostringstream os;
  os << "fleet_campaign|v1"
     << "|corners=" << config.corners << "|seeds=" << config.seeds
     << "|bits=" << config.bits_per_shard << "|seed=" << config.seed
     << "|ais31=" << (config.run_ais31 ? 1 : 0)
     << "|divider=" << config.divider << "|rings=" << config.rings
     << "|cells=" << config.cells;
  return os.str();
}

// ---------------------------------------------------------------------
// Shard measurement + folding

ShardResult run_shard(const CornerSpec& spec, std::uint64_t shard_seed,
                      const CampaignConfig& config) {
  // The Markov estimator needs >= 1000 bits; smaller shards would
  // measure nothing meaningful anyway.
  PTRNG_EXPECTS(config.bits_per_shard >= 1000);
  auto device = make_device(spec, shard_seed, config);
  std::vector<std::uint8_t> bits(config.bits_per_shard);
  device->generate_into(bits);

  ShardResult r;
  r.markov_entropy = trng::markov_entropy_rate(bits);
  r.min_entropy = trng::min_entropy(bits, 8);
  if (config.run_ais31 && bits.size() >= trng::ais31::quick_battery_bits()) {
    r.ais31_run = true;
    r.ais31_pass = trng::ais31::quick_battery(bits).passed;
  }
  trng::HealthEngine engine{trng::ContinuousHealthConfig{}};
  engine.process(bits);
  if (engine.alarmed()) {
    r.alarmed = true;
    r.latency_bits = static_cast<double>(engine.first_alarm_bit() + 1);
  }
  return r;
}

void CornerAccumulator::fold(const ShardResult& r) {
  markov_entropy.add(r.markov_entropy);
  min_entropy.add(r.min_entropy);
  ++shards;
  if (r.ais31_run) {
    ++ais31_run;
    if (r.ais31_pass) ++ais31_pass;
  }
  if (r.alarmed) {
    ++alarmed;
    detect_latency.add(r.latency_bits);
  }
}

double CornerAccumulator::ais31_pass_rate() const noexcept {
  return ais31_run == 0
             ? 1.0
             : static_cast<double>(ais31_pass) / static_cast<double>(ais31_run);
}

double CornerAccumulator::alarm_rate() const noexcept {
  return shards == 0
             ? 0.0
             : static_cast<double>(alarmed) / static_cast<double>(shards);
}

// ---------------------------------------------------------------------
// Checkpoint I/O

void write_checkpoint(const std::string& path, const CampaignConfig& config,
                      const CampaignState& state) {
  PTRNG_EXPECTS(!path.empty());
  std::string out;
  out.reserve(kHeaderSize + 16 + state.corners.size() * kCornerWords * 8);
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kCkpVersion & 0xff));
  out.push_back(static_cast<char>(kCkpVersion >> 8));
  out.append(6, '\0');  // reserved, offsets 10..15
  char id[16] = {};
  std::memcpy(id, kCkpId, sizeof(kCkpId) - 1);
  out.append(id, sizeof(id));
  const auto digest = campaign_digest(config);
  out.append(reinterpret_cast<const char*>(digest.data()), digest.size());
  PTRNG_ENSURES(out.size() == kHeaderSize);

  put_u64(out, state.folded);
  put_u64(out, state.corners.size());
  for (const auto& c : state.corners) {
    put_u64(out, c.shards);
    put_u64(out, c.ais31_run);
    put_u64(out, c.ais31_pass);
    put_u64(out, c.alarmed);
    put_state(out, c.markov_entropy.state());
    put_state(out, c.min_entropy.state());
    put_state(out, c.detect_latency.state());
  }

  // Atomic publication: a reader (or a resumed campaign after SIGKILL)
  // only ever sees a complete snapshot or the previous one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw DataError("cannot write checkpoint: " + tmp);
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    f.flush();
    if (!f) throw DataError("short checkpoint write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw DataError("cannot publish checkpoint: " + path);
}

std::optional<CampaignState> read_checkpoint(const std::string& path,
                                             const CampaignConfig& config) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string in = buf.str();
  if (in.size() < kHeaderSize + 16)
    throw DataError("checkpoint truncated: " + path);
  if (std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0)
    throw DataError("checkpoint bad magic: " + path);
  const auto version = static_cast<std::uint16_t>(
      static_cast<unsigned char>(in[8]) |
      (static_cast<unsigned char>(in[9]) << 8));
  if (version != kCkpVersion)
    throw DataError("checkpoint unsupported version: " + path);
  for (std::size_t i = 10; i < 16; ++i)
    if (in[i] != '\0') throw DataError("checkpoint reserved bytes: " + path);
  char id[16] = {};
  std::memcpy(id, kCkpId, sizeof(kCkpId) - 1);
  if (std::memcmp(in.data() + 16, id, sizeof(id)) != 0)
    throw DataError("checkpoint foreign id: " + path);
  const auto digest = campaign_digest(config);
  if (std::memcmp(in.data() + 32, digest.data(), digest.size()) != 0)
    throw DataError(
        "checkpoint config digest mismatch (different campaign config): " +
        path);

  CampaignState state;
  state.folded = get_u64(in, kHeaderSize);
  const std::uint64_t corners = get_u64(in, kHeaderSize + 8);
  const std::size_t need =
      kHeaderSize + 16 + corners * kCornerWords * 8;
  if (in.size() != need)
    throw DataError("checkpoint payload size mismatch: " + path);
  if (corners != expand_grid(config).size())
    throw DataError("checkpoint corner count disagrees with config: " + path);
  state.corners.resize(corners);
  std::size_t off = kHeaderSize + 16;
  for (auto& c : state.corners) {
    c.shards = get_u64(in, off);
    c.ais31_run = get_u64(in, off + 8);
    c.ais31_pass = get_u64(in, off + 16);
    c.alarmed = get_u64(in, off + 24);
    c.markov_entropy =
        stats::RunningStats::from_state(get_state(in, off + 32));
    c.min_entropy = stats::RunningStats::from_state(
        get_state(in, off + 32 + 8 * kStateWords));
    c.detect_latency = stats::RunningStats::from_state(
        get_state(in, off + 32 + 16 * kStateWords));
    off += kCornerWords * 8;
  }
  return state;
}

// ---------------------------------------------------------------------
// Campaign driver

CampaignReport run_campaign(const CampaignConfig& config) {
  PTRNG_EXPECTS(config.seeds > 0);
  const auto grid = expand_grid(config);
  const std::uint64_t total =
      static_cast<std::uint64_t>(grid.size()) * config.seeds;

  CampaignState state;
  state.corners.resize(grid.size());
  if (config.resume && !config.checkpoint_path.empty()) {
    if (auto loaded = read_checkpoint(config.checkpoint_path, config)) {
      if (loaded->folded > total)
        throw DataError("checkpoint folded prefix exceeds campaign size");
      state = std::move(*loaded);
    }
  }

  const std::size_t batch = config.batch_size == 0 ? 64 : config.batch_size;
  std::uint64_t folded_this_run = 0;
  std::vector<ShardResult> results;
  while (state.folded < total) {
    if (config.max_shards != 0 && folded_this_run >= config.max_shards)
      break;
    std::uint64_t n = std::min<std::uint64_t>(batch, total - state.folded);
    if (config.max_shards != 0)
      n = std::min<std::uint64_t>(n, config.max_shards - folded_this_run);
    const std::uint64_t base = state.folded;
    results.assign(static_cast<std::size_t>(n), ShardResult{});
    // One shard per task, grain 1: shard costs are wildly skewed
    // (attacked eRO devices run the per-period modulation path), which
    // is exactly what the work-stealing pool exists for. Results land
    // in fixed slots, so the fold below never sees completion order.
    const auto body = [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        const std::uint64_t s = base + i;
        results[i] = run_shard(grid[static_cast<std::size_t>(
                                   s / config.seeds)],
                               chunk_seed(config.seed, s), config);
      }
    };
    if (config.use_work_stealing)
      parallel_for_ws(0, static_cast<std::size_t>(n), 1, body);
    else
      parallel_for(0, static_cast<std::size_t>(n), 1, body);
    // Order-invariant fold: shard index order, independent of which
    // worker finished first — campaign state is a pure function of
    // (config, folded prefix), the checkpoint soundness invariant.
    for (std::uint64_t i = 0; i < n; ++i)
      state.corners[static_cast<std::size_t>((base + i) / config.seeds)]
          .fold(results[static_cast<std::size_t>(i)]);
    state.folded += n;
    folded_this_run += n;
    if (!config.checkpoint_path.empty())
      write_checkpoint(config.checkpoint_path, config, state);
    if (config.progress) config.progress(state.folded, total);
  }

  CampaignReport report;
  report.shards_folded = state.folded;
  report.shards_total = total;
  report.complete = state.folded == total;
  report.config_digest = to_hex(campaign_digest(config));
  report.corners.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    CornerReport row;
    row.spec = grid[i];
    row.acc = state.corners[i];
    if (row.acc.shards == 0) {
      row.verdict = "pending";
    } else if (row.spec.attack == "none") {
      row.verdict = (row.acc.ais31_pass_rate() >= 0.75 &&
                     row.acc.alarm_rate() <= 0.25)
                        ? "pass"
                        : "degraded";
    } else {
      row.verdict = row.acc.alarm_rate() >= 0.5 ? "detected" : "missed";
    }
    report.corners.push_back(std::move(row));
  }
  return report;
}

// ---------------------------------------------------------------------
// Report rendering

std::string CampaignReport::table() const {
  std::ostringstream os;
  os << "fleet campaign: " << shards_folded << "/" << shards_total
     << " shards" << (complete ? "" : " (partial)") << ", config "
     << config_digest.substr(0, 12) << "\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %6s %8s %8s %7s %7s %10s %s\n",
                "corner", "shards", "H_markov", "H_min", "ais31", "alarm",
                "latency", "verdict");
  os << line;
  for (const auto& row : corners) {
    const auto& a = row.acc;
    std::snprintf(
        line, sizeof(line), "%-32s %6llu %8s %8s %6.0f%% %6.0f%% %10s %s\n",
        row.spec.name().c_str(), static_cast<unsigned long long>(a.shards),
        fmt_f(a.markov_entropy.mean(), 4).c_str(),
        fmt_f(a.min_entropy.mean(), 4).c_str(), 100.0 * a.ais31_pass_rate(),
        100.0 * a.alarm_rate(),
        a.alarmed ? fmt_f(a.detect_latency.mean(), 1).c_str() : "-",
        row.verdict.c_str());
    os << line;
  }
  return os.str();
}

namespace {
void json_stats(std::ostringstream& os, const char* key,
                const stats::RunningStats& s) {
  os << '"' << key << "\":{\"n\":" << s.count()
     << ",\"mean\":" << fmt_g17(s.mean())
     << ",\"stddev\":" << fmt_g17(s.stddev())
     << ",\"min\":" << fmt_g17(s.min()) << ",\"max\":" << fmt_g17(s.max())
     << '}';
}
}  // namespace

std::string CampaignReport::json() const {
  std::ostringstream os;
  os << "{\"format\":\"ptrng-fleet-campaign-report\",\"version\":1,"
     << "\"config_digest\":\"" << config_digest << "\","
     << "\"shards_folded\":" << shards_folded
     << ",\"shards_total\":" << shards_total
     << ",\"complete\":" << (complete ? "true" : "false")
     << ",\"corners\":[";
  for (std::size_t i = 0; i < corners.size(); ++i) {
    const auto& row = corners[i];
    const auto& a = row.acc;
    if (i) os << ',';
    os << "{\"name\":\"" << row.spec.name() << "\",\"generator\":\""
       << row.spec.generator << "\",\"node\":\"" << row.spec.node
       << "\",\"corner\":\"" << row.spec.corner << "\",\"flicker_scale\":"
       << fmt_g17(row.spec.flicker_scale) << ",\"attack\":\""
       << row.spec.attack << "\",\"shards\":" << a.shards
       << ",\"ais31_run\":" << a.ais31_run
       << ",\"ais31_pass\":" << a.ais31_pass
       << ",\"ais31_pass_rate\":" << fmt_g17(a.ais31_pass_rate())
       << ",\"alarmed\":" << a.alarmed
       << ",\"alarm_rate\":" << fmt_g17(a.alarm_rate()) << ',';
    json_stats(os, "markov_entropy", a.markov_entropy);
    os << ',';
    json_stats(os, "min_entropy", a.min_entropy);
    os << ',';
    json_stats(os, "detect_latency", a.detect_latency);
    os << ",\"verdict\":\"" << row.verdict << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ptrng::model
