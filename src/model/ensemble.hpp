// Ensemble independence sweep: the Sec. III-D/E verdict repeated over
// many independent oscillator pairs (device-to-device repetition of the
// paper's single-bench experiment). One pair's Bienaymé/portmanteau
// battery is a noisy verdict; an ensemble separates "this device
// happened to fail" from "flicker breaks the iid assumption on every
// device". Pairs are mutually independent, so the sweep fans out one
// pair per task on the common thread pool with chunk_seed-derived
// per-pair streams — bit-identical for any PTRNG_THREADS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/independence.hpp"

namespace ptrng::model {

/// Configuration of the pair ensemble.
struct EnsembleConfig {
  std::size_t pairs = 8;           ///< independent oscillator pairs
  std::size_t samples = 1 << 18;   ///< relative-jitter samples per pair
  std::uint64_t seed = 0xe5e3b1eULL;  ///< base; ring seeds derive per pair
  double mismatch = 3e-3;          ///< pair frequency mismatch (fractional)
  /// Flicker scale factor applied to each ring's paper b_fl (0 = thermal
  /// only, 1 = paper level) — the knob the paper's argument turns.
  double flicker_scale = 1.0;
  std::size_t max_block = 4096;    ///< Bienaymé sweep upper block size
  std::size_t acf_lags = 64;       ///< correlation-scan depth
  double z_threshold = 5.0;        ///< verdict threshold (see independence)
};

/// Aggregated ensemble verdict.
struct EnsembleReport {
  std::vector<IndependenceReport> reports;  ///< one per pair, pair order
  std::size_t consistent = 0;     ///< pairs consistent with independence
  double max_bienayme_z = 0.0;    ///< worst normalized Bienaymé deviation
  double mean_bienayme_defect = 0.0;  ///< mean raw |ratio - 1| worst case

  [[nodiscard]] std::size_t pair_count() const noexcept {
    return reports.size();
  }
  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Runs the full battery on `config.pairs` independent paper-calibrated
/// oscillator pairs, in parallel (one pair per task; pair p's rings are
/// seeded from chunk_seed(config.seed, 2p) and chunk_seed(config.seed,
/// 2p+1), so the report vector is bit-identical for any thread count).
[[nodiscard]] EnsembleReport analyze_pair_ensemble(
    const EnsembleConfig& config);

}  // namespace ptrng::model
