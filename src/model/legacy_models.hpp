// The baseline stochastic models the paper critiques (Sec. II-B): they
// assume mutually independent jitter realizations, i.e. they treat ALL
// measured short-term jitter as white. The refined multilevel model keeps
// only the thermal component. Comparing the two quantifies the entropy
// overestimation the paper warns about (Conclusion).
#pragma once

#include "phase_noise/phase_psd.hpp"

namespace ptrng::model {

/// "Naive white" legacy model: one measured period-jitter variance,
/// assumed iid across periods (what [5],[6],[8] effectively assume about
/// the RRAS).
class NaiveWhiteModel {
 public:
  /// sigma2_period: measured total one-period jitter variance [s^2]
  /// (thermal + flicker short-term power); f0 [Hz].
  NaiveWhiteModel(double sigma2_period, double f0);

  /// Predicted sigma^2_N = 2*N*sigma2 (Eq. 6 — Bienayme under
  /// independence).
  [[nodiscard]] double sigma2_n(double n) const;

  /// Accumulated phase variance in cycles^2 after k sampled periods
  /// (linear accumulation of the total variance).
  [[nodiscard]] double accumulated_cycle_variance(double k) const;

  [[nodiscard]] double sigma2_period() const noexcept { return sigma2_; }
  [[nodiscard]] double f0() const noexcept { return f0_; }

 private:
  double sigma2_;
  double f0_;
};

/// Refined model accumulation: only the thermal component diffuses as
/// independent increments; the flicker component is treated as
/// adversarially predictable (paper's security posture).
class RefinedThermalModel {
 public:
  explicit RefinedThermalModel(const phase_noise::PhasePsd& psd);

  [[nodiscard]] double sigma2_n(double n) const;
  [[nodiscard]] double accumulated_cycle_variance(double k) const;
  [[nodiscard]] const phase_noise::PhasePsd& psd() const noexcept {
    return psd_;
  }

 private:
  phase_noise::PhasePsd psd_;
};

/// The naive model a measurement campaign would calibrate from the same
/// device the refined model describes. Jitter is never measured over a
/// single period: the lab accumulates N_measure periods (oscilloscope /
/// counter statistics) and divides by N assuming white accumulation,
///
///   sigma^2_period,est = sigma^2_N(N_measure) / (2 * N_measure)
///                      = b_th/f0^3 + 4 ln2 b_fl N_measure / f0^4,
///
/// so flicker power proportional to the measurement horizon leaks into
/// the white-model calibration — the quantitative root of the entropy
/// overestimation the paper warns about. Default horizon: 1000 periods
/// (a typical scope-based campaign).
[[nodiscard]] NaiveWhiteModel naive_from_psd(const phase_noise::PhasePsd& psd,
                                             double n_measure = 1000.0);

}  // namespace ptrng::model
