#include "model/legacy_models.hpp"

#include "common/contracts.hpp"

namespace ptrng::model {

NaiveWhiteModel::NaiveWhiteModel(double sigma2_period, double f0)
    : sigma2_(sigma2_period), f0_(f0) {
  PTRNG_EXPECTS(sigma2_period >= 0.0);
  PTRNG_EXPECTS(f0 > 0.0);
}

double NaiveWhiteModel::sigma2_n(double n) const {
  PTRNG_EXPECTS(n >= 0.0);
  return 2.0 * n * sigma2_;
}

double NaiveWhiteModel::accumulated_cycle_variance(double k) const {
  PTRNG_EXPECTS(k >= 0.0);
  return k * sigma2_ * f0_ * f0_;
}

RefinedThermalModel::RefinedThermalModel(const phase_noise::PhasePsd& psd)
    : psd_(psd) {}

double RefinedThermalModel::sigma2_n(double n) const {
  return psd_.sigma2_n(n);
}

double RefinedThermalModel::accumulated_cycle_variance(double k) const {
  return psd_.accumulated_cycle_variance_thermal(k);
}

NaiveWhiteModel naive_from_psd(const phase_noise::PhasePsd& psd,
                               double n_measure) {
  PTRNG_EXPECTS(n_measure >= 1.0);
  // What a finite-horizon variance measurement reports as "the" period
  // jitter: sigma^2_N at the measurement horizon divided by 2N (Eq. 6
  // read backwards) — the flicker N^2 term leaks in proportionally to
  // the horizon.
  const double sigma2 = psd.sigma2_n(n_measure) / (2.0 * n_measure);
  return {sigma2, psd.f0()};
}

}  // namespace ptrng::model
