// Empirical independence analysis of a jitter series — the statistical
// verdict the paper reaches in Sec. III-D/E: thermal-only jitter passes
// every test; adding flicker fails the Bienaymé linearity check at large N
// (and portmanteau tests when the flicker floor is within reach).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stats/bienayme.hpp"
#include "stats/hypothesis.hpp"

namespace ptrng::model {

/// Aggregated verdict on a jitter series.
struct IndependenceReport {
  /// Bienaymé sweep: Var(sum)/sum(Var) per block size (1 under H0).
  std::vector<stats::BienaymePoint> bienayme;
  /// Worst raw |ratio-1| across the sweep (informative; inflated by
  /// estimator noise at large blocks).
  double bienayme_defect = 0.0;
  /// Worst |ratio-1| NORMALIZED by the H0 sampling error of a variance
  /// ratio over m blocks (sd ~ sqrt(2/(m-1))) — the statistic the verdict
  /// uses.
  double bienayme_z = 0.0;
  /// Ljung-Box portmanteau on the raw series.
  stats::TestResult ljung_box;
  /// First lag whose |ACF| exceeds the 95% white-noise band (0 = none).
  std::size_t first_correlated_lag = 0;
  /// Overall verdict: no evidence against mutual independence.
  bool consistent_with_independence = true;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Runs the full battery. `max_block` bounds the Bienaymé sweep block
/// sizes; `acf_lags` bounds the correlation scan; the verdict rejects
/// when the normalized Bienaymé deviation exceeds `z_threshold` (a
/// Bonferroni-safe ~5 by default) or Ljung-Box rejects at 1%.
[[nodiscard]] IndependenceReport analyze_independence(
    std::span<const double> jitter, std::size_t max_block = 4096,
    std::size_t acf_lags = 64, double z_threshold = 5.0);

}  // namespace ptrng::model
