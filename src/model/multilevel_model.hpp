// The paper's core contribution (Fig. 3): a multilevel stochastic model
// that derives the raw-random-analog-signal statistics from transistor
// physics instead of assuming them:
//
//   transistor noise PSDs  --(Hajimiri/ISF)-->  S_phi = b_th/f^2 + b_fl/f^3
//     --(Eq. 9/11)-->  sigma^2_N curve  -->  independence threshold N*,
//     thermal jitter sigma_th, and entropy accounting.
//
// Two construction paths mirror the paper:
//  * from_technology(): forward prediction from device parameters
//    (Sec. III-A..C);
//  * from_measurement(): parameter extraction from a measured sigma^2_N
//    sweep (Sec. IV, the FPGA experiment).
#pragma once

#include <cstddef>
#include <string>

#include "measurement/calibration.hpp"
#include "phase_noise/conversion.hpp"
#include "phase_noise/isf.hpp"
#include "phase_noise/phase_psd.hpp"
#include "transistor/technology.hpp"

namespace ptrng::model {

/// The assembled multilevel model of one oscillator (or oscillator pair).
class MultilevelModel {
 public:
  /// Forward path: technology node -> inverter ring -> phase PSD.
  static MultilevelModel from_technology(
      const transistor::TechnologyNode& node, std::size_t n_stages,
      const phase_noise::Isf& isf, double fanout = 1.0);

  /// Extraction path: from a fitted measurement sweep.
  static MultilevelModel from_measurement(
      const measurement::JitterCalibration& calibration);

  /// Direct path: from known phase-PSD coefficients.
  static MultilevelModel from_coefficients(double b_th, double b_fl,
                                           double f0);

  /// The phase-noise model (Eq. 10) with all paper-derived quantities.
  [[nodiscard]] const phase_noise::PhasePsd& phase_psd() const noexcept {
    return psd_;
  }

  /// sigma^2_N predicted by Eq. 11.
  [[nodiscard]] double sigma2_n(double n) const { return psd_.sigma2_n(n); }

  /// r_N = thermal fraction of sigma^2_N.
  [[nodiscard]] double thermal_ratio(double n) const {
    return psd_.thermal_ratio(n);
  }

  /// Largest N for which jitter realizations may be treated as mutually
  /// independent at confidence r_min (paper: 281 at 95%).
  [[nodiscard]] double independence_threshold(double r_min = 0.95) const {
    return psd_.independence_threshold(r_min);
  }

  /// Thermal period jitter sigma_th = sqrt(b_th/f0^3).
  [[nodiscard]] double thermal_jitter() const {
    return psd_.thermal_period_jitter();
  }

  /// Entropy-bearing accumulated phase variance (cycles^2) over k sampled
  /// periods: thermal part only — the refined model's security accounting.
  [[nodiscard]] double entropy_variance(double k) const {
    return psd_.accumulated_cycle_variance_thermal(k);
  }

  /// Where the model came from (for reports).
  [[nodiscard]] const std::string& provenance() const noexcept {
    return provenance_;
  }

 private:
  MultilevelModel(phase_noise::PhasePsd psd, std::string provenance)
      : psd_(psd), provenance_(std::move(provenance)) {}

  phase_noise::PhasePsd psd_;
  std::string provenance_;
};

}  // namespace ptrng::model
