#include "model/multilevel_model.hpp"

#include "common/contracts.hpp"
#include "transistor/inverter.hpp"

namespace ptrng::model {

MultilevelModel MultilevelModel::from_technology(
    const transistor::TechnologyNode& node, std::size_t n_stages,
    const phase_noise::Isf& isf, double fanout) {
  PTRNG_EXPECTS(n_stages >= 3);
  const transistor::Inverter cell(node, fanout);
  const auto conv = phase_noise::convert_ring(cell, n_stages, isf);
  return {conv.phase_psd(), "technology:" + node.name};
}

MultilevelModel MultilevelModel::from_measurement(
    const measurement::JitterCalibration& calibration) {
  return {calibration.phase_psd(), "measurement"};
}

MultilevelModel MultilevelModel::from_coefficients(double b_th, double b_fl,
                                                   double f0) {
  return {phase_noise::PhasePsd(b_th, b_fl, f0), "coefficients"};
}

}  // namespace ptrng::model
