#include "model/independence.hpp"

#include <cmath>
#include <sstream>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"
#include "stats/autocorrelation.hpp"

namespace ptrng::model {

std::string IndependenceReport::summary() const {
  std::ostringstream os;
  os << "Independence analysis\n"
     << "  Bienayme defect (max |Var(sum)/sum(Var) - 1|): "
     << bienayme_defect << " (normalized z = " << bienayme_z << ")\n"
     << "  Ljung-Box: Q = " << ljung_box.statistic
     << ", p = " << ljung_box.p_value << "\n"
     << "  first ACF lag beyond the white-noise band: "
     << first_correlated_lag << (first_correlated_lag ? "" : " (none)")
     << "\n"
     << "  verdict: "
     << (consistent_with_independence
             ? "consistent with mutual independence"
             : "NOT consistent with mutual independence")
     << "\n";
  return os.str();
}

IndependenceReport analyze_independence(std::span<const double> jitter,
                                        std::size_t max_block,
                                        std::size_t acf_lags,
                                        double z_threshold) {
  PTRNG_EXPECTS(jitter.size() >= 1024);
  PTRNG_EXPECTS(max_block >= 2);
  PTRNG_EXPECTS(acf_lags >= 4);
  PTRNG_EXPECTS(z_threshold > 0.0);

  IndependenceReport report;

  // Bienaymé sweep over a log grid of block sizes.
  const auto blocks = log_integer_grid(
      1, std::min(max_block, jitter.size() / 8), 16);
  report.bienayme = stats::bienayme_sweep(jitter, blocks);
  report.bienayme_defect = stats::bienayme_defect(report.bienayme);
  report.bienayme_z = 0.0;
  for (const auto& pt : report.bienayme) {
    if (pt.samples < 2) continue;
    const double se =
        std::sqrt(2.0 / static_cast<double>(pt.samples - 1));
    report.bienayme_z =
        std::max(report.bienayme_z, std::abs(pt.ratio - 1.0) / se);
  }

  // Portmanteau.
  report.ljung_box = stats::ljung_box(jitter, acf_lags);

  // ACF band scan.
  const auto acf = stats::autocorrelation(
      jitter, std::min(acf_lags, jitter.size() - 2));
  const double band = stats::white_noise_band(jitter.size());
  report.first_correlated_lag = 0;
  for (std::size_t lag = 1; lag < acf.size(); ++lag) {
    if (std::abs(acf[lag]) > band) {
      report.first_correlated_lag = lag;
      break;
    }
  }

  report.consistent_with_independence =
      report.bienayme_z <= z_threshold && !report.ljung_box.reject(0.01);
  return report;
}

}  // namespace ptrng::model
