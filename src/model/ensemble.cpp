#include "model/ensemble.hpp"

#include <algorithm>
#include <sstream>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace ptrng::model {

std::string EnsembleReport::summary() const {
  std::ostringstream os;
  os << "Ensemble independence sweep (" << reports.size() << " pairs)\n"
     << "  consistent with independence: " << consistent << "/"
     << reports.size() << "\n"
     << "  worst normalized Bienayme z: " << max_bienayme_z << "\n"
     << "  mean Bienayme defect:        " << mean_bienayme_defect << "\n";
  return os.str();
}

EnsembleReport analyze_pair_ensemble(const EnsembleConfig& config) {
  PTRNG_EXPECTS(config.pairs >= 1);
  PTRNG_EXPECTS(config.samples >= 1024);
  PTRNG_EXPECTS(config.flicker_scale >= 0.0);

  EnsembleReport report;
  report.reports.resize(config.pairs);

  // One pair per task. Each task touches only its own slot and derives
  // both ring seeds from (base seed, pair index), so the fan-out is
  // bit-identical for any thread count (ARCHITECTURE §5 / §6).
  parallel_for(0, config.pairs, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t p = b; p < e; ++p) {
      auto c1 = oscillator::paper_single_config(
          chunk_seed(config.seed, 2 * p));
      auto c2 = oscillator::paper_single_config(
          chunk_seed(config.seed, 2 * p + 1));
      c1.mismatch = +config.mismatch / 2.0;
      c2.mismatch = -config.mismatch / 2.0;
      c1.b_fl *= config.flicker_scale;
      c2.b_fl *= config.flicker_scale;
      oscillator::OscillatorPair pair(c1, c2);
      const auto jitter = pair.relative_jitter(config.samples);
      report.reports[p] = analyze_independence(
          jitter, config.max_block, config.acf_lags, config.z_threshold);
    }
  });

  for (const auto& r : report.reports) {
    if (r.consistent_with_independence) ++report.consistent;
    report.max_bienayme_z = std::max(report.max_bienayme_z, r.bienayme_z);
    report.mean_bienayme_defect += r.bienayme_defect;
  }
  report.mean_bienayme_defect /= static_cast<double>(report.reports.size());
  return report;
}

}  // namespace ptrng::model
