// The paper's phase-noise model (Eq. 10):
//
//     S_phi(f) = b_fl/f^3 + b_th/f^2        (TWO-SIDED, see docs/ARCHITECTURE.md §3)
//
// and everything the model derives from it: the closed-form accumulated
// variance sigma^2_N (Eq. 11), its thermal/flicker split, the thermal ratio
// r_N, the independence threshold N*, and the thermal period jitter
// sigma_th = sqrt(b_th/f0^3) of Section IV.
#pragma once

#include "noise/psd_model.hpp"

namespace ptrng::phase_noise {

/// Two-sided power-law phase PSD b_th/f^2 + b_fl/f^3 tied to an oscillator
/// frequency f0, with the paper's derived quantities.
class PhasePsd {
 public:
  /// b_th [Hz]: thermal coefficient; b_fl [Hz^2]: flicker coefficient;
  /// f0 [Hz]: oscillator nominal frequency.
  PhasePsd(double b_th, double b_fl, double f0);

  /// S_phi(f), two-sided [rad^2/Hz]; f > 0.
  [[nodiscard]] double operator()(double f) const;

  [[nodiscard]] double b_th() const noexcept { return b_th_; }
  [[nodiscard]] double b_fl() const noexcept { return b_fl_; }
  [[nodiscard]] double f0() const noexcept { return f0_; }

  /// Closed-form sigma^2_N (Eq. 11):
  ///   2*b_th/f0^3 * N + 8*ln2*b_fl/f0^4 * N^2.
  [[nodiscard]] double sigma2_n(double n) const;
  /// Thermal part only: 2*b_th/f0^3 * N.
  [[nodiscard]] double sigma2_n_thermal(double n) const;
  /// Flicker part only: 8*ln2*b_fl/f0^4 * N^2.
  [[nodiscard]] double sigma2_n_flicker(double n) const;

  /// Thermal ratio r_N = sigma2_n_thermal / sigma2_n = C/(C+N) with
  /// C = b_th*f0/(4*ln2*b_fl). (Paper: C = 5354 for their device.)
  [[nodiscard]] double thermal_ratio(double n) const;

  /// The paper's constant C in r_N = C/(C+N). Infinity when b_fl == 0.
  [[nodiscard]] double thermal_ratio_constant() const;

  /// Largest N with r_N >= r_min (paper: N* = 281 for r_min = 0.95).
  /// Returns a huge value when flicker is absent.
  [[nodiscard]] double independence_threshold(double r_min = 0.95) const;

  /// Thermal period jitter sigma_th = sqrt(b_th/f0^3) [s] (Sec. IV-A).
  [[nodiscard]] double thermal_period_jitter() const;

  /// Jitter-to-period ratio sigma_th * f0 (paper: ~1.6e-3).
  [[nodiscard]] double jitter_ratio() const;

  /// Variance of the *relative phase in oscillator cycles* accumulated
  /// over K periods, counting only the thermal (white) part:
  /// K * b_th / f0. Used by the entropy models.
  [[nodiscard]] double accumulated_cycle_variance_thermal(double k) const;

  /// Same, using total sigma^2 short-term jitter as if it were white —
  /// the "naive" accumulation legacy models perform. sigma2_period is the
  /// measured one-period jitter variance [s^2].
  [[nodiscard]] double accumulated_cycle_variance_naive(double sigma2_period,
                                                        double k) const;

  /// As a generic PowerLawPsd (two-sided) for interoperability.
  [[nodiscard]] noise::PowerLawPsd as_power_law() const;

 private:
  double b_th_;
  double b_fl_;
  double f0_;
};

}  // namespace ptrng::phase_noise
