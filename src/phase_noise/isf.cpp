#include "phase_noise/isf.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::phase_noise {

Isf::Isf(std::vector<double> samples) : samples_(std::move(samples)) {
  KahanSum sum, sum2;
  for (double s : samples_) {
    sum.add(s);
    sum2.add(s * s);
  }
  const double n = static_cast<double>(samples_.size());
  dc_ = sum.value() / n;
  rms_ = std::sqrt(sum2.value() / n);
}

Isf Isf::from_samples(std::vector<double> samples) {
  PTRNG_EXPECTS(samples.size() >= 8);
  return Isf(std::move(samples));
}

Isf Isf::sine(double amplitude, std::size_t resolution) {
  PTRNG_EXPECTS(resolution >= 8);
  std::vector<double> s(resolution);
  for (std::size_t i = 0; i < resolution; ++i)
    s[i] = amplitude * std::sin(constants::two_pi * static_cast<double>(i) /
                                static_cast<double>(resolution));
  return Isf(std::move(s));
}

Isf Isf::ring_triangular(double peak, double asymmetry,
                         std::size_t resolution) {
  PTRNG_EXPECTS(peak > 0.0);
  PTRNG_EXPECTS(asymmetry >= -1.0 && asymmetry <= 1.0);
  PTRNG_EXPECTS(resolution >= 16);
  // Two triangular lobes centred on the rising (x = 0) and falling
  // (x = pi) transitions, each of half-width pi/4. The rising lobe is
  // positive, the falling negative; asymmetry scales their relative size.
  std::vector<double> s(resolution, 0.0);
  const double up = peak * (1.0 + asymmetry);
  const double down = peak * (1.0 - asymmetry);
  const double half_width = constants::pi / 4.0;
  for (std::size_t i = 0; i < resolution; ++i) {
    const double x = constants::two_pi * static_cast<double>(i) /
                     static_cast<double>(resolution);
    const double d_rise =
        std::min(std::abs(x - 0.0), std::abs(x - constants::two_pi));
    const double d_fall = std::abs(x - constants::pi);
    if (d_rise < half_width)
      s[i] += up * (1.0 - d_rise / half_width);
    if (d_fall < half_width)
      s[i] -= down * (1.0 - d_fall / half_width);
  }
  return Isf(std::move(s));
}

Isf Isf::ring_typical(std::size_t n_stages, double asymmetry) {
  PTRNG_EXPECTS(n_stages >= 3);
  // Hajimiri: the ISF peak of an N-stage ring scales roughly with the
  // normalized transition slope, Gamma_max ~ 2pi/(N * slope). A practical
  // surrogate: peak = 2pi/(3N) with sharper lobes for larger N handled by
  // the fixed lobe width (conservative).
  const double peak = constants::two_pi / (3.0 * static_cast<double>(n_stages));
  return ring_triangular(peak, asymmetry);
}

double Isf::at(double x) const {
  const double n = static_cast<double>(samples_.size());
  double t = std::fmod(x, constants::two_pi);
  if (t < 0.0) t += constants::two_pi;
  const double pos = t / constants::two_pi * n;
  const auto i0 = static_cast<std::size_t>(pos) % samples_.size();
  const std::size_t i1 = (i0 + 1) % samples_.size();
  const double frac = pos - std::floor(pos);
  return samples_[i0] * (1.0 - frac) + samples_[i1] * frac;
}

}  // namespace ptrng::phase_noise
