#include "phase_noise/conversion.hpp"

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::phase_noise {

ConversionResult convert_raw(double s_white, double a_flicker, double q_max,
                             std::size_t n_stages, const Isf& isf,
                             double f0) {
  PTRNG_EXPECTS(s_white >= 0.0);
  PTRNG_EXPECTS(a_flicker >= 0.0);
  PTRNG_EXPECTS(q_max > 0.0);
  PTRNG_EXPECTS(n_stages >= 1);
  PTRNG_EXPECTS(f0 > 0.0);

  const double stages = static_cast<double>(n_stages);
  const double denom =
      4.0 * constants::pi * constants::pi * q_max * q_max;
  // One-sided (circuit convention) -> two-sided: divide by 2.
  const double s_white_two = 0.5 * s_white;
  const double a_flicker_two = 0.5 * a_flicker;

  ConversionResult out;
  out.f0 = f0;
  out.b_th = stages * square(isf.rms()) * s_white_two / denom;
  out.b_fl = stages * square(isf.dc()) * a_flicker_two / denom;
  return out;
}

ConversionResult convert_ring(const transistor::Inverter& cell,
                              std::size_t n_stages, const Isf& isf) {
  PTRNG_EXPECTS(n_stages >= 3);
  const auto psd = cell.current_noise_psd();  // one-sided
  const double f0 =
      1.0 / (2.0 * static_cast<double>(n_stages) * cell.propagation_delay());
  return convert_raw(psd.coefficient(0.0), psd.coefficient(-1.0),
                     cell.q_max(), n_stages, isf, f0);
}

}  // namespace ptrng::phase_noise
