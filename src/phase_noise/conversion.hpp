// The multilevel step the paper adds over prior models: converting
// transistor-level current noise into the phase-noise coefficients
// (b_th, b_fl) via Hajimiri's linear time-variant theory [17].
//
// For each noise source injecting current into a node with maximum charge
// swing q_max = C_L*V_DD, with ISF Gamma:
//
//   white current noise, two-sided PSD S_i:
//       S_phi(f) = Gamma_rms^2 * S_i / (4 pi^2 q_max^2 f^2)
//       => b_th  = Gamma_rms^2 * S_i / (4 pi^2 q_max^2)
//
//   flicker current noise, two-sided PSD a_fl/f:
//       S_phi(f) = Gamma_dc^2 * a_fl / (4 pi^2 q_max^2 f^3)
//       => b_fl  = Gamma_dc^2 * a_fl / (4 pi^2 q_max^2)
//
// Contributions of the N_stages independent delay cells add.
#pragma once

#include "phase_noise/isf.hpp"
#include "phase_noise/phase_psd.hpp"
#include "transistor/inverter.hpp"

namespace ptrng::phase_noise {

/// Result of the transistor-to-phase conversion for a full ring.
struct ConversionResult {
  double b_th = 0.0;  ///< two-sided thermal phase coefficient [Hz]
  double b_fl = 0.0;  ///< two-sided flicker phase coefficient [Hz^2]
  double f0 = 0.0;    ///< predicted oscillation frequency [Hz]

  [[nodiscard]] PhasePsd phase_psd() const { return {b_th, b_fl, f0}; }
};

/// Converts the aggregated current noise of `n_stages` inverters into the
/// ring's phase-noise coefficients. The inverter's one-sided PSDs (circuit
/// convention) are halved internally to the two-sided convention of
/// S_phi. f0 = 1/(2 * n_stages * t_d).
[[nodiscard]] ConversionResult convert_ring(const transistor::Inverter& cell,
                                            std::size_t n_stages,
                                            const Isf& isf);

/// Same conversion from raw ingredients (for tests and what-if sweeps):
/// one-sided white current PSD s_white [A^2/Hz], one-sided flicker
/// coefficient a_flicker [A^2], per-stage q_max [C], n_stages, isf, f0.
[[nodiscard]] ConversionResult convert_raw(double s_white, double a_flicker,
                                           double q_max,
                                           std::size_t n_stages,
                                           const Isf& isf, double f0);

}  // namespace ptrng::phase_noise
