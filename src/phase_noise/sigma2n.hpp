// Numeric evaluation of the paper's Eq. 9/17:
//
//   sigma^2_N = 8/(pi^2 f0^2) * Integral_0^inf S_phi(f) sin^4(pi f N / f0) df
//
// for arbitrary two-sided phase PSDs. Used to (a) validate the closed form
// Eq. 11 against the integral it came from, and (b) predict sigma^2_N for
// band-limited generator spectra (where the closed form does not apply).
#pragma once

#include <functional>

namespace ptrng::phase_noise {

/// Adaptive-Simpson integration of Eq. 9 for an arbitrary two-sided
/// S_phi(f) over the band [f_lo, f_hi] (pass f_hi >= ~100*f0/N for an
/// effectively unbounded integral — the sin^4 kernel and a 1/f^2+ decay
/// make the tail negligible; see sigma2_n_power_law for exact tails).
[[nodiscard]] double sigma2_n_numeric(
    const std::function<double(double)>& s_phi_two_sided, double f0, double n,
    double f_lo, double f_hi, double rel_tol = 1e-9);

/// Term-wise numeric integral for a pure power law S_phi = c * f^exponent
/// (exponent in (-4, -1)), over the FULL band [0, inf): substitutes
/// u = f*N/f0, integrates adaptively over [0, U] and adds the analytic
/// sin^4 -> 3/8 tail. Converges to Eq. 11's coefficients for
/// exponent = -2, -3.
[[nodiscard]] double sigma2_n_power_law(double coefficient, double exponent,
                                        double f0, double n);

/// Generic adaptive Simpson quadrature (exposed for reuse/testing).
[[nodiscard]] double adaptive_simpson(const std::function<double(double)>& f,
                                      double a, double b,
                                      double rel_tol = 1e-10,
                                      int max_depth = 40);

}  // namespace ptrng::phase_noise
