#include "phase_noise/phase_psd.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::phase_noise {

PhasePsd::PhasePsd(double b_th, double b_fl, double f0)
    : b_th_(b_th), b_fl_(b_fl), f0_(f0) {
  PTRNG_EXPECTS(b_th >= 0.0);
  PTRNG_EXPECTS(b_fl >= 0.0);
  PTRNG_EXPECTS(f0 > 0.0);
}

double PhasePsd::operator()(double f) const {
  PTRNG_EXPECTS(f > 0.0);
  return b_th_ / (f * f) + b_fl_ / (f * f * f);
}

double PhasePsd::sigma2_n_thermal(double n) const {
  PTRNG_EXPECTS(n >= 0.0);
  return 2.0 * b_th_ / (f0_ * f0_ * f0_) * n;
}

double PhasePsd::sigma2_n_flicker(double n) const {
  PTRNG_EXPECTS(n >= 0.0);
  const double f04 = f0_ * f0_ * f0_ * f0_;
  return 8.0 * constants::ln2 * b_fl_ / f04 * n * n;
}

double PhasePsd::sigma2_n(double n) const {
  return sigma2_n_thermal(n) + sigma2_n_flicker(n);
}

double PhasePsd::thermal_ratio_constant() const {
  if (b_fl_ == 0.0) return std::numeric_limits<double>::infinity();
  return b_th_ * f0_ / (4.0 * constants::ln2 * b_fl_);
}

double PhasePsd::thermal_ratio(double n) const {
  PTRNG_EXPECTS(n > 0.0);
  const double c = thermal_ratio_constant();
  if (std::isinf(c)) return 1.0;
  return c / (c + n);
}

double PhasePsd::independence_threshold(double r_min) const {
  PTRNG_EXPECTS(r_min > 0.0 && r_min < 1.0);
  const double c = thermal_ratio_constant();
  if (std::isinf(c)) return std::numeric_limits<double>::max();
  // r_N >= r_min  <=>  N <= C*(1-r_min)/r_min.
  return c * (1.0 - r_min) / r_min;
}

double PhasePsd::thermal_period_jitter() const {
  return std::sqrt(b_th_ / (f0_ * f0_ * f0_));
}

double PhasePsd::jitter_ratio() const {
  return thermal_period_jitter() * f0_;
}

double PhasePsd::accumulated_cycle_variance_thermal(double k) const {
  PTRNG_EXPECTS(k >= 0.0);
  return k * b_th_ / f0_;
}

double PhasePsd::accumulated_cycle_variance_naive(double sigma2_period,
                                                  double k) const {
  PTRNG_EXPECTS(sigma2_period >= 0.0);
  PTRNG_EXPECTS(k >= 0.0);
  // Treat the whole short-term period variance as white: linear growth in
  // time units, converted to cycles^2 of the sampled oscillator.
  return k * sigma2_period * f0_ * f0_;
}

noise::PowerLawPsd PhasePsd::as_power_law() const {
  noise::PowerLawPsd psd(noise::Sidedness::two_sided);
  psd.add_term(b_th_, -2.0, "thermal");
  psd.add_term(b_fl_, -3.0, "flicker");
  return psd;
}

}  // namespace ptrng::phase_noise
