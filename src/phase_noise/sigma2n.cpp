#include "phase_noise/sigma2n.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::phase_noise {

namespace {

double simpson_rule(const std::function<double(double)>& /*f*/, double a,
                    double fa, double b, double fb, double /*m*/, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a,
                     double fa, double b, double fb, double m, double fm,
                     double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson_rule(f, a, fa, m, fm, lm, flm);
  const double right = simpson_rule(f, m, fm, b, fb, rm, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol)
    return left + right + delta / 15.0;
  return adaptive_step(f, a, fa, m, fm, lm, flm, left, tol / 2.0, depth - 1) +
         adaptive_step(f, m, fm, b, fb, rm, frm, right, tol / 2.0, depth - 1);
}

}  // namespace

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double rel_tol, int max_depth) {
  PTRNG_EXPECTS(b > a);
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson_rule(f, a, fa, b, fb, m, fm);
  const double tol = std::max(std::abs(whole), 1e-300) * rel_tol;
  return adaptive_step(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

double sigma2_n_numeric(const std::function<double(double)>& s_phi_two_sided,
                        double f0, double n, double f_lo, double f_hi,
                        double rel_tol) {
  PTRNG_EXPECTS(f0 > 0.0 && n > 0.0);
  PTRNG_EXPECTS(f_lo > 0.0 && f_hi > f_lo);
  const double a = constants::pi * n / f0;
  auto integrand = [&](double f) {
    const double s = std::sin(a * f);
    const double s2 = s * s;
    return s_phi_two_sided(f) * s2 * s2;
  };
  // Integrate per half-oscillation of the sin^4 kernel to keep the
  // adaptive rule honest on the oscillatory part, then sum.
  const double half_period = f0 / n;  // sin^4 period in f is f0/N
  KahanSum total;
  double lo = f_lo;
  while (lo < f_hi) {
    const double hi = std::min(f_hi, lo + half_period);
    total.add(adaptive_simpson(integrand, lo, hi, rel_tol));
    lo = hi;
  }
  const double prefactor =
      8.0 / (constants::pi * constants::pi * f0 * f0);
  return prefactor * total.value();
}

double sigma2_n_power_law(double coefficient, double exponent, double f0,
                          double n) {
  PTRNG_EXPECTS(coefficient >= 0.0);
  PTRNG_EXPECTS(exponent > -4.0 && exponent < -1.0);
  PTRNG_EXPECTS(f0 > 0.0 && n > 0.0);
  if (coefficient == 0.0) return 0.0;

  // Substitute u = f*N/f0:
  //   Int_0^inf c f^e sin^4(pi f N/f0) df
  //     = c * (f0/N)^(e+1) * Int_0^inf u^e sin^4(pi u) du.
  // Numerically integrate u in [0, U] (period-wise) and close with the
  // sin^4 -> 3/8 mean-value tail: (3/8) * U^{e+1}/(-e-1).
  auto integrand = [&](double u) {
    if (u <= 0.0) return 0.0;
    const double s = std::sin(constants::pi * u);
    const double s2 = s * s;
    return std::pow(u, exponent) * s2 * s2;
  };
  const double u_max = 600.0;
  KahanSum acc;
  // The integrand ~ u^{e+4} near zero (finite); integrate unit intervals.
  double lo = 0.0;
  while (lo < u_max) {
    const double hi = lo + 1.0;
    acc.add(adaptive_simpson(integrand, lo, hi, 1e-11));
    lo = hi;
  }
  const double tail =
      0.375 * std::pow(u_max, exponent + 1.0) / (-(exponent + 1.0));
  const double dimensionless = acc.value() + tail;

  const double prefactor = 8.0 / (constants::pi * constants::pi * f0 * f0);
  return prefactor * coefficient *
         std::pow(f0 / n, exponent + 1.0) * dimensionless;
}

}  // namespace ptrng::phase_noise
