// Hajimiri's Impulse Sensitivity Function (ISF).
//
// The ISF Gamma(x) is a 2pi-periodic, dimensionless function describing how
// much excess phase a unit charge injection causes as a function of the
// oscillation phase x at which it lands ([17], referenced by the paper).
// Two scalars of it drive the conversion to phase noise:
//
//   * Gamma_rms^2 — couples WHITE (thermal) current noise into 1/f^2 phase
//     noise: every harmonic of the ISF folds noise down to baseband;
//   * Gamma_dc    — couples LOW-FREQUENCY (flicker) current noise into
//     1/f^3 phase noise: only the DC Fourier coefficient matters.
//
// A perfectly symmetric waveform has Gamma_dc ~ 0; real inverter chains
// have asymmetric rise/fall and hence upconvert flicker noise. This module
// represents the ISF by samples over one period and derives the needed
// statistics, plus factory shapes for typical ring oscillators.
#pragma once

#include <cstddef>
#include <vector>

namespace ptrng::phase_noise {

/// Sampled impulse sensitivity function over one oscillation period.
class Isf {
 public:
  /// From uniform samples of Gamma over [0, 2pi). At least 8 samples.
  static Isf from_samples(std::vector<double> samples);

  /// Pure sinusoid Gamma(x) = amplitude * sin(x) — the idealized LC-like
  /// ISF with zero DC (no flicker upconversion).
  static Isf sine(double amplitude = 1.0, std::size_t resolution = 256);

  /// Piecewise-triangular ISF typical of a single-ended inverter ring:
  /// sensitivity peaks around the two switching transitions; `asymmetry`
  /// in [-1, 1] skews rise vs fall sensitivity, producing a DC component.
  static Isf ring_triangular(double peak, double asymmetry,
                             std::size_t resolution = 256);

  /// Typical N-stage single-ended ring: Hajimiri's rise/fall-time scaling
  /// makes the ISF peak ~ 1/N smaller while transitions sharpen;
  /// `asymmetry` defaults to a representative 0.25.
  static Isf ring_typical(std::size_t n_stages, double asymmetry = 0.25);

  /// Mean of Gamma over a period (the flicker-upconversion gain).
  [[nodiscard]] double dc() const noexcept { return dc_; }

  /// Root-mean-square of Gamma over a period.
  [[nodiscard]] double rms() const noexcept { return rms_; }

  /// Value by linear interpolation at phase x (any real, wrapped mod 2pi).
  [[nodiscard]] double at(double x) const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  explicit Isf(std::vector<double> samples);

  std::vector<double> samples_;
  double dc_ = 0.0;
  double rms_ = 0.0;
};

}  // namespace ptrng::phase_noise
