#include "attacks/injection.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/math_utils.hpp"

namespace ptrng::attacks {

oscillator::RingOscillatorConfig InjectionAttack::apply(
    oscillator::RingOscillatorConfig config) const {
  PTRNG_EXPECTS(coupling >= 0.0 && coupling < 1.0);
  const double suppression = (1.0 - coupling) * (1.0 - coupling);
  config.b_th *= suppression;
  // Flicker is a device-internal phenomenon; locking barely affects it,
  // which is precisely why the thermal-ratio analysis sees the attack.
  return config;
}

std::function<double(double)> InjectionAttack::modulation_for(
    const oscillator::RingOscillatorConfig& config) const {
  PTRNG_EXPECTS(modulation_depth >= 0.0);
  const double f_actual = config.f0 * (1.0 + config.mismatch);
  // The default tone offset is deliberately a non-round multiple of f0 so
  // the beat does not alias onto a null of the second-difference filter
  // for round window lengths (see bench_attack_detection).
  const double f_tone =
      (f_injected > 0.0) ? f_injected : config.f0 * 1.000437;
  const double f_beat = std::abs(f_tone - f_actual);
  PTRNG_EXPECTS(f_beat > 0.0);
  const double depth = modulation_depth;
  return [depth, f_beat](double t) {
    return depth * std::sin(constants::two_pi * f_beat * t);
  };
}

oscillator::RingOscillator make_attacked_oscillator(
    const oscillator::RingOscillatorConfig& config,
    const InjectionAttack& attack) {
  oscillator::RingOscillator osc(attack.apply(config));
  if (attack.modulation_depth > 0.0)
    osc.set_modulation(attack.modulation_for(config));
  return osc;
}

InjectionAttack em_harmonic_attack(double coupling) {
  InjectionAttack atk;
  atk.coupling = coupling;
  // Strong local EM fields frequency-pull the rings by ~0.1-1% (Bayon et
  // al. report visible locking); 0.3% keeps the beat clearly observable.
  atk.modulation_depth = 3e-3;
  return atk;
}

}  // namespace ptrng::attacks
