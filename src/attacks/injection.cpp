#include "attacks/injection.hpp"

#include <cmath>
#include <string>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_utils.hpp"
#include "oscillator/oscillator_pair.hpp"

namespace ptrng::attacks {

oscillator::RingOscillatorConfig InjectionAttack::apply(
    oscillator::RingOscillatorConfig config) const {
  PTRNG_EXPECTS(coupling >= 0.0 && coupling < 1.0);
  PTRNG_EXPECTS(frequency_pull >= 0.0 && frequency_pull <= 1.0);
  const double suppression = (1.0 - coupling) * (1.0 - coupling);
  config.b_th *= suppression;
  if (frequency_pull > 0.0) {
    // Adler entrainment: the ring frequency moves frequency_pull of the
    // way onto the tone — BOTH rings converge onto the SAME frequency,
    // collapsing the differential mismatch the eRO sampler rides on —
    // and the entrained phase tracks the tone instead of diffusing, so
    // the remaining in-band noise (thermal AND flicker) shrinks by the
    // locking factor.
    const double tone_offset = tone_frequency(config) / config.f0 - 1.0;
    config.mismatch = (1.0 - frequency_pull) * config.mismatch +
                      frequency_pull * tone_offset;
    const double entrain = (1.0 - frequency_pull) * (1.0 - frequency_pull);
    config.b_th *= entrain;
    config.b_fl *= entrain;
  }
  // At frequency_pull == 0 flicker stays untouched: it is a
  // device-internal phenomenon that weak coupling barely affects, which
  // is precisely why the thermal-ratio analysis sees the attack.
  return config;
}

double InjectionAttack::tone_frequency(
    const oscillator::RingOscillatorConfig& config) const {
  // The default tone offset is deliberately a non-round multiple of f0 so
  // the beat does not alias onto a null of the second-difference filter
  // for round window lengths (see bench_attack_detection).
  return (f_injected > 0.0) ? f_injected : config.f0 * 1.000437;
}

std::function<double(double)> InjectionAttack::modulation_for(
    const oscillator::RingOscillatorConfig& config) const {
  PTRNG_EXPECTS(modulation_depth >= 0.0);
  const double f_actual = config.f0 * (1.0 + config.mismatch);
  const double f_tone = tone_frequency(config);
  const double f_beat = std::abs(f_tone - f_actual);
  PTRNG_EXPECTS(f_beat > 0.0);
  const double depth = modulation_depth;
  return [depth, f_beat](double t) {
    return depth * std::sin(constants::two_pi * f_beat * t);
  };
}

oscillator::RingOscillator make_attacked_oscillator(
    const oscillator::RingOscillatorConfig& config,
    const InjectionAttack& attack) {
  // The beat is computed from the ATTACKED config: under entrainment the
  // ring sits at its pulled frequency, so the residual beat is the
  // (small) remaining tone offset, not the free-running one.
  const auto attacked = attack.apply(config);
  oscillator::RingOscillator osc(attacked);
  if (attack.modulation_depth > 0.0)
    osc.set_modulation(attack.modulation_for(attacked));
  return osc;
}

trng::EroTrng make_attacked_trng(const InjectionAttack& attack,
                                 std::uint32_t divider, std::uint64_t seed) {
  // Mirrors trng::paper_trng's construction (same seeds and mismatch
  // fan), with both ring configs run through the attack.
  auto sampled = oscillator::paper_single_config(seed);
  auto sampling = oscillator::paper_single_config(seed ^ 0xabcdef9876ULL);
  sampled.mismatch = +1.5e-3;
  sampling.mismatch = -1.5e-3;
  trng::EroTrngConfig cfg;
  cfg.divider = divider;
  const auto attacked_sampled = attack.apply(sampled);
  const auto attacked_sampling = attack.apply(sampling);
  trng::EroTrng victim(attacked_sampled, attacked_sampling, cfg);
  if (attack.modulation_depth > 0.0) {
    victim.sampled().set_modulation(attack.modulation_for(attacked_sampled));
    victim.sampling().set_modulation(attack.modulation_for(attacked_sampling));
  }
  return victim;
}

std::span<const InjectionScenario> injection_scenarios() {
  // Three regimes of the Markettos/Bayon locking story, each with a
  // DIFFERENT continuous-test signature (test_continuous_health pins a
  // latency budget per entry):
  //  * freq-lock-0.98: strong power/clock injection; both rings sit on
  //    the tone, the bit stream goes static and the repetition-count
  //    test fires within its cutoff (~41 bits).
  //  * em-partial-lock-0.995: EM harmonic injection with the residual
  //    beat still wobbling the sampler; repetition-count still catches
  //    the first long dwell, ~1.2 kbit in.
  //  * total-lock-1.0: the pathological zero-noise limit — the stream
  //    is deterministic but NOT constant (the divider walks the fixed
  //    phase offset), so only the adaptive-proportion window imbalance
  //    sees it. The slow-detection regime §4.4.2 exists for.
  static const InjectionScenario kScenarios[] = {
      {"freq-lock-0.98", [] {
         InjectionAttack atk;
         atk.coupling = 0.5;
         atk.modulation_depth = 0.0;
         atk.frequency_pull = 0.98;
         return atk;
       }(), 200},
      {"em-partial-lock-0.995", [] {
         InjectionAttack atk = em_harmonic_attack(0.8);
         atk.frequency_pull = 0.995;
         return atk;
       }(), 200},
      {"total-lock-1.0", [] {
         InjectionAttack atk;
         atk.coupling = 0.5;
         atk.modulation_depth = 0.0;
         atk.frequency_pull = 1.0;
         return atk;
       }(), 200},
  };
  return kScenarios;
}

std::span<const char* const> attack_names() {
  static constexpr const char* kNames[] = {"none", "em_weak", "em_strong",
                                           "lock"};
  return kNames;
}

std::optional<InjectionAttack> attack_by_name(std::string_view name) {
  if (name == "none") return std::nullopt;
  if (name == "em_weak") return em_harmonic_attack(0.3);
  if (name == "em_strong") {
    InjectionAttack atk = em_harmonic_attack(0.8);
    atk.frequency_pull = 0.9;
    return atk;
  }
  if (name == "lock") {
    InjectionAttack atk;
    atk.coupling = 0.9;
    atk.modulation_depth = 0.0;
    atk.frequency_pull = 0.98;
    return atk;
  }
  throw DataError("unknown attack name: " + std::string(name));
}

InjectionAttack em_harmonic_attack(double coupling) {
  InjectionAttack atk;
  atk.coupling = coupling;
  // Strong local EM fields frequency-pull the rings by ~0.1-1% (Bayon et
  // al. report visible locking); 0.3% keeps the beat clearly observable.
  atk.modulation_depth = 3e-3;
  return atk;
}

}  // namespace ptrng::attacks
