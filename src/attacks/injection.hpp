// Non-invasive attacks on RO-based TRNGs, as motivated in the paper's
// introduction:
//  * frequency injection through the power/clock network
//    (Markettos & Moore, CHES 2009 — paper ref [3]);
//  * contactless EM harmonic injection (Bayon et al., COSADE 2012 — [4]).
//
// The injected periodic signal couples into every ring and partially
// LOCKS it. Two observable effects result, and both are modeled:
//
//  1. the independent thermal phase diffusion collapses by the locking
//     factor:            b_th -> b_th * (1 - coupling)^2;
//  2. each ring acquires a deterministic frequency beat at the offset
//     between the injected tone and ITS OWN natural frequency:
//         df/f = depth * sin(2 pi (f_injected - f_osc) t)
//     — because nominally "identical" rings differ by their mismatch,
//     the two beats differ, leaving a large DIFFERENTIAL deterministic
//     component in the relative jitter. This is the signature the
//     literature actually detects (and what the embedded thermal-noise
//     test sees as variance inflation).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string_view>

#include "oscillator/ring_oscillator.hpp"
#include "trng/ero_trng.hpp"

namespace ptrng::attacks {

/// Parameters of a periodic-injection attack.
struct InjectionAttack {
  /// Locking strength in [0, 1): 0 = no attack, ~0.9 = strong lock
  /// (Markettos reports near-total entropy collapse at strong coupling).
  double coupling = 0.5;
  /// Absolute frequency of the injected tone [Hz]; 0 means "0.05% above
  /// the victim's nominal f0" at application time.
  double f_injected = 0.0;
  /// Deterministic frequency-modulation depth (fraction of f0);
  /// 0 disables the beat (pure-suppression what-if).
  double modulation_depth = 1e-4;
  /// Injection-locking (Adler) entrainment in [0, 1]: each ring's actual
  /// frequency is pulled this fraction of the way onto the injected
  /// tone, and the in-band phase noise — INCLUDING flicker — is
  /// suppressed by (1 - pull)^2, because an entrained phase tracks the
  /// tone instead of wandering. 0 keeps the legacy weak-coupling model
  /// (beat + thermal suppression only, flicker untouched); near 1 is
  /// the Markettos full-lock regime where the bit stream goes static —
  /// the failure mode the SP 800-90B §4.4 continuous tests exist for.
  double frequency_pull = 0.0;

  /// Config transform: the attacked oscillator's suppressed noise budget
  /// (and, when frequency_pull > 0, its entrained frequency).
  [[nodiscard]] oscillator::RingOscillatorConfig apply(
      oscillator::RingOscillatorConfig config) const;

  /// The absolute injected-tone frequency for THIS victim config:
  /// f_injected, or the default "0.05% above nominal" tone.
  [[nodiscard]] double tone_frequency(
      const oscillator::RingOscillatorConfig& config) const;

  /// The deterministic beat for THIS oscillator (beat frequency =
  /// f_injected - f_actual of the config), for
  /// RingOscillator::set_modulation().
  [[nodiscard]] std::function<double(double)> modulation_for(
      const oscillator::RingOscillatorConfig& config) const;
};

/// Convenience: construct an attacked oscillator (suppression + beat).
[[nodiscard]] oscillator::RingOscillator make_attacked_oscillator(
    const oscillator::RingOscillatorConfig& config,
    const InjectionAttack& attack);

/// EM harmonic injection (Bayon et al.): same locking mechanism driven at
/// a harmonic of f0; expressed as an InjectionAttack preset with stronger
/// coupling and deeper modulation.
[[nodiscard]] InjectionAttack em_harmonic_attack(double coupling = 0.8);

/// A paper-calibrated eRO-TRNG whose BOTH rings (sampled and sampling —
/// injection couples into the whole die) are under `attack`: noise
/// budget suppressed by the locking factor and the deterministic beat
/// installed per ring. Bit-level twin of make_attacked_oscillator, for
/// pointing the live continuous-health engine at an attacked stream.
[[nodiscard]] trng::EroTrng make_attacked_trng(const InjectionAttack& attack,
                                               std::uint32_t divider,
                                               std::uint64_t seed = 0x7e57c0de);

/// One named attack scenario for detection-latency studies: the attack
/// parameters plus the eRO divider the victim runs at (slower sampling
/// accumulates more jitter per bit, so the same coupling is harder to
/// see at large dividers).
struct InjectionScenario {
  const char* name;
  InjectionAttack attack;
  std::uint32_t divider;
};

/// The canonical scenario grid every detection-latency test, bench and
/// example iterates (tests pin a latency budget per entry, so extend —
/// don't reorder).
[[nodiscard]] std::span<const InjectionScenario> injection_scenarios();

/// Named attack presets for grids and CLIs (the fleet campaign's attack
/// axis). "none" returns nullopt (healthy device); the others map onto
/// the locking regimes of injection_scenarios():
///   em_weak   — EM harmonic injection at coupling 0.3, no entrainment;
///   em_strong — EM harmonic injection at coupling 0.8 with partial
///               frequency pull (0.9): in-band noise mostly suppressed;
///   lock      — Markettos-style near-total lock (pull 0.98): the raw
///               stream goes static, the SP 800-90B repetition-count
///               test's textbook failure.
/// Throws DataError on an unknown name.
[[nodiscard]] std::optional<InjectionAttack> attack_by_name(
    std::string_view name);

/// The names attack_by_name accepts, grid-expansion order ("none" first).
[[nodiscard]] std::span<const char* const> attack_names();

}  // namespace ptrng::attacks
