#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace ptrng {

namespace {

// True on a pool worker thread, and on a caller thread while it executes
// chunks of its own parallel_for — both must not fan out again.
thread_local bool t_inside_pool_task = false;

}  // namespace

std::size_t configured_thread_count() {
  if (const char* env = std::getenv("PTRNG_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

std::uint64_t chunk_seed(std::uint64_t base, std::uint64_t chunk) noexcept {
  // The (chunk+1)-th output of the stream SplitMix64(base) would
  // produce, addressed in O(1) by pre-advancing the state `chunk`
  // golden-ratio increments (SplitMix64's per-call state step).
  SplitMix64 gen(base + chunk * 0x9e3779b97f4a7c15ULL);
  return gen.next();
}

struct ThreadPool::Impl {
  // One in-flight parallel_for, shared by the caller and every worker that
  // wakes up for it. Heap-held via shared_ptr so a slow worker's final
  // (empty) chunk grab can never touch freed memory.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    std::size_t end = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> cancelled{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    // Runs chunks until the shared index is exhausted. Every claimed
    // index is counted exactly once (cancelled ones are claimed and
    // skipped), so `remaining` always drains to zero. Returns after its
    // last decrement of `remaining`; never touches the Job afterwards.
    void run(Impl& pool) {
      std::size_t done = 0;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= chunks) break;
        if (!cancelled.load(std::memory_order_relaxed)) {
          const std::size_t b = begin + i * grain;
          const std::size_t e = std::min(end, b + grain);
          try {
            (*body)(b, e);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!error) error = std::current_exception();
            }
            // Skip chunks nobody started yet; started ones still finish.
            cancelled.store(true, std::memory_order_relaxed);
          }
        }
        ++done;
      }
      if (done != 0 &&
          remaining.fetch_sub(done, std::memory_order_acq_rel) == done) {
        const std::lock_guard<std::mutex> lock(pool.mutex);
        pool.done_cv.notify_all();
      }
    }
  };

  // Atomic because parallel_for/thread_count read it without taking
  // submit_mutex while resize() (which holds submit_mutex) rewrites it.
  std::atomic<std::size_t> width{1};
  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Job> job;       // guarded by mutex
  std::uint64_t job_seq = 0;      // bumped per submitted job
  bool stopping = false;
  std::mutex submit_mutex;        // serializes concurrent parallel_for calls

  void worker_main() {
    t_inside_pool_task = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> j;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stopping || job_seq != seen; });
        if (stopping) return;
        seen = job_seq;
        j = job;
      }
      if (j) j->run(*this);
    }
  }

  void spawn(std::size_t threads) {
    width = threads;
    for (std::size_t i = 0; i + 1 < threads; ++i)
      workers.emplace_back([this] { worker_main(); });
  }

  void join_all() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& w : workers) w.join();
    workers.clear();
    stopping = false;
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  impl_->spawn(threads ? threads : configured_thread_count());
}

ThreadPool::~ThreadPool() {
  impl_->join_all();
  delete impl_;
}

std::size_t ThreadPool::thread_count() const noexcept { return impl_->width; }

void ThreadPool::resize(std::size_t threads) {
  PTRNG_EXPECTS(!t_inside_pool_task);
  const std::lock_guard<std::mutex> submit(impl_->submit_mutex);
  impl_->join_all();
  impl_->spawn(threads ? threads : configured_thread_count());
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  if (grain == 0) grain = auto_grain(range);
  const std::size_t chunks = (range + grain - 1) / grain;

  // Serial path: width 1, nested call, or nothing to share. Runs the same
  // chunk boundaries in order, so chunk-indexed reductions and per-chunk
  // seeding behave identically to the threaded path.
  if (impl_->width == 1 || chunks == 1 || t_inside_pool_task) {
    for (std::size_t i = 0; i < chunks; ++i) {
      const std::size_t b = begin + i * grain;
      body(b, std::min(end, b + grain));
    }
    return;
  }

  const std::lock_guard<std::mutex> submit(impl_->submit_mutex);
  auto j = std::make_shared<Impl::Job>();
  j->body = &body;
  j->begin = begin;
  j->end = end;
  j->grain = grain;
  j->chunks = chunks;
  j->remaining.store(chunks, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = j;
    ++impl_->job_seq;
  }
  impl_->work_cv.notify_all();

  // The caller is one of the execution lanes; guard against re-entrant
  // fan-out from inside the body.
  t_inside_pool_task = true;
  j->run(*impl_);
  t_inside_pool_task = false;

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] {
      return j->remaining.load(std::memory_order_acquire) == 0;
    });
    impl_->job.reset();
  }
  if (j->error) std::rethrow_exception(j->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ptrng
