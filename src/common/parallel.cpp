#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace ptrng {

namespace {

// True on a pool worker thread, and on a caller thread while it executes
// chunks of its own parallel_for — both must not fan out again through
// the DETERMINISTIC entry point.
thread_local bool t_inside_pool_task = false;

// Work-stealing nesting depth of the current thread: > 0 while the
// thread executes a chunk of a ws job. parallel_for_ws fans out (child
// job) at any depth; deterministic parallel_for still runs inline.
thread_local int t_ws_depth = 0;

}  // namespace

std::size_t configured_thread_count() {
  if (const char* env = std::getenv("PTRNG_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

std::uint64_t chunk_seed(std::uint64_t base, std::uint64_t chunk) noexcept {
  // The (chunk+1)-th output of the stream SplitMix64(base) would
  // produce, addressed in O(1) by pre-advancing the state `chunk`
  // golden-ratio increments (SplitMix64's per-call state step).
  SplitMix64 gen(base + chunk * 0x9e3779b97f4a7c15ULL);
  return gen.next();
}

struct ThreadPool::Impl {
  // One in-flight parallel_for, shared by the caller and every worker that
  // wakes up for it. Heap-held via shared_ptr so a slow worker's final
  // (empty) chunk grab can never touch freed memory.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    std::size_t end = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> cancelled{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    // Runs chunks until the shared index is exhausted. Every claimed
    // index is counted exactly once (cancelled ones are claimed and
    // skipped), so `remaining` always drains to zero. Returns after its
    // last decrement of `remaining`; never touches the Job afterwards.
    void run(Impl& pool) {
      std::size_t done = 0;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= chunks) break;
        if (!cancelled.load(std::memory_order_relaxed)) {
          const std::size_t b = begin + i * grain;
          const std::size_t e = std::min(end, b + grain);
          try {
            (*body)(b, e);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!error) error = std::current_exception();
            }
            // Skip chunks nobody started yet; started ones still finish.
            cancelled.store(true, std::memory_order_relaxed);
          }
        }
        ++done;
      }
      if (done != 0 &&
          remaining.fetch_sub(done, std::memory_order_acq_rel) == done) {
        const std::lock_guard<std::mutex> lock(pool.mutex);
        pool.done_cv.notify_all();
      }
    }
  };

  // One live work-stealing job (parallel_for_ws). Unlike the single
  // deterministic Job slot, any number of ws jobs can be live at once:
  // concurrent top-level submitters and nested child jobs all register
  // here, and every worker or blocked submitter drains chunks from ANY
  // of them. The shared `next` counter is the steal point — a chunk
  // claimed by a thread other than the submitter is a steal.
  struct WsJob {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    std::size_t end = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> cancelled{false};
    std::mutex error_mutex;
    std::exception_ptr error;
    std::thread::id submitter;

    [[nodiscard]] bool has_claimable() const noexcept {
      return next.load(std::memory_order_relaxed) < chunks;
    }
  };

  // Atomic because parallel_for/thread_count read it without taking
  // submit_mutex while resize() (which holds submit_mutex) rewrites it.
  std::atomic<std::size_t> width{1};
  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Job> job;       // guarded by mutex
  std::uint64_t job_seq = 0;      // bumped per submitted job
  std::vector<std::shared_ptr<WsJob>> ws_jobs;  // guarded by mutex
  std::atomic<std::uint64_t> steals{0};
  bool stopping = false;
  std::mutex submit_mutex;        // serializes concurrent parallel_for calls

  /// First live ws job with an unclaimed chunk. Caller holds `mutex`.
  [[nodiscard]] std::shared_ptr<WsJob> claimable_ws_locked() const {
    for (const auto& j : ws_jobs)
      if (j->has_claimable()) return j;
    return nullptr;
  }

  /// Claims and runs chunks of `j` until its shared index is exhausted
  /// (the WsJob twin of Job::run). Every claimed index is counted
  /// exactly once; the final decrement of `remaining` wakes the
  /// submitter (and any helper) blocked on done_cv. Executing a chunk
  /// submitted by another thread bumps the steal counter.
  void run_ws(WsJob& j) {
    const bool stealing = std::this_thread::get_id() != j.submitter;
    const bool was_inside = t_inside_pool_task;
    t_inside_pool_task = true;  // nested DETERMINISTIC calls stay inline
    ++t_ws_depth;               // nested ws calls fan out as child jobs
    std::size_t done = 0;
    for (;;) {
      const std::size_t i = j.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= j.chunks) break;
      if (!j.cancelled.load(std::memory_order_relaxed)) {
        const std::size_t b = j.begin + i * j.grain;
        const std::size_t e = std::min(j.end, b + j.grain);
        try {
          (*j.body)(b, e);
          if (stealing) steals.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(j.error_mutex);
            if (!j.error) j.error = std::current_exception();
          }
          j.cancelled.store(true, std::memory_order_relaxed);
        }
      }
      ++done;
    }
    --t_ws_depth;
    t_inside_pool_task = was_inside;
    if (done != 0 &&
        j.remaining.fetch_sub(done, std::memory_order_acq_rel) == done) {
      const std::lock_guard<std::mutex> lock(mutex);
      done_cv.notify_all();
    }
  }

  void worker_main() {
    t_inside_pool_task = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> j;
      std::shared_ptr<WsJob> ws;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] {
          return stopping || job_seq != seen || claimable_ws_locked();
        });
        if (stopping) return;
        ws = claimable_ws_locked();
        if (!ws) {
          seen = job_seq;
          j = job;
        }
      }
      if (ws) {
        run_ws(*ws);
      } else if (j) {
        j->run(*this);
      }
    }
  }

  void spawn(std::size_t threads) {
    width = threads;
    for (std::size_t i = 0; i + 1 < threads; ++i)
      workers.emplace_back([this] { worker_main(); });
  }

  void join_all() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& w : workers) w.join();
    workers.clear();
    stopping = false;
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  impl_->spawn(threads ? threads : configured_thread_count());
}

ThreadPool::~ThreadPool() {
  impl_->join_all();
  delete impl_;
}

std::size_t ThreadPool::thread_count() const noexcept { return impl_->width; }

void ThreadPool::resize(std::size_t threads) {
  PTRNG_EXPECTS(!t_inside_pool_task);
  const std::lock_guard<std::mutex> submit(impl_->submit_mutex);
  impl_->join_all();
  impl_->spawn(threads ? threads : configured_thread_count());
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  if (grain == 0) grain = auto_grain(range);
  const std::size_t chunks = (range + grain - 1) / grain;

  // Serial path: width 1, nested call, or nothing to share. Runs the same
  // chunk boundaries in order, so chunk-indexed reductions and per-chunk
  // seeding behave identically to the threaded path.
  if (impl_->width == 1 || chunks == 1 || t_inside_pool_task) {
    for (std::size_t i = 0; i < chunks; ++i) {
      const std::size_t b = begin + i * grain;
      body(b, std::min(end, b + grain));
    }
    return;
  }

  const std::lock_guard<std::mutex> submit(impl_->submit_mutex);
  auto j = std::make_shared<Impl::Job>();
  j->body = &body;
  j->begin = begin;
  j->end = end;
  j->grain = grain;
  j->chunks = chunks;
  j->remaining.store(chunks, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = j;
    ++impl_->job_seq;
  }
  impl_->work_cv.notify_all();

  // The caller is one of the execution lanes; guard against re-entrant
  // fan-out from inside the body.
  t_inside_pool_task = true;
  j->run(*impl_);
  t_inside_pool_task = false;

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] {
      return j->remaining.load(std::memory_order_acquire) == 0;
    });
    impl_->job.reset();
  }
  if (j->error) std::rethrow_exception(j->error);
}

void ThreadPool::parallel_for_ws(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  if (grain == 0) grain = auto_grain(range);
  const std::size_t chunks = (range + grain - 1) / grain;

  // Serial path: width 1, a single chunk, or a call from inside a
  // DETERMINISTIC pool task (whose no-nesting contract predates ws
  // mode). Same chunk boundaries in order, so per-chunk seeding and
  // index-slot writes behave identically to the scheduled path.
  if (impl_->width == 1 || chunks == 1 ||
      (t_inside_pool_task && t_ws_depth == 0)) {
    for (std::size_t i = 0; i < chunks; ++i) {
      const std::size_t b = begin + i * grain;
      body(b, std::min(end, b + grain));
    }
    return;
  }

  // No submit_mutex here: concurrent ws submissions (including child
  // jobs registered from inside a ws chunk) are the whole point.
  auto j = std::make_shared<Impl::WsJob>();
  j->body = &body;
  j->begin = begin;
  j->end = end;
  j->grain = grain;
  j->chunks = chunks;
  j->remaining.store(chunks, std::memory_order_relaxed);
  j->submitter = std::this_thread::get_id();
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->ws_jobs.push_back(j);
  }
  impl_->work_cv.notify_all();  // wake idle workers
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->done_cv.notify_all();  // wake submitters blocked in help loops
  }

  // The submitter drains its own job first, then helps ANY live job
  // while waiting for stolen chunks of its own to complete — a blocked
  // parent is an execution lane for its children and for unrelated
  // campaigns alike.
  impl_->run_ws(*j);
  for (;;) {
    std::shared_ptr<Impl::WsJob> other;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      if (j->remaining.load(std::memory_order_acquire) == 0) break;
      other = impl_->claimable_ws_locked();
      if (!other) {
        impl_->done_cv.wait(lock, [&] {
          return j->remaining.load(std::memory_order_acquire) == 0 ||
                 impl_->claimable_ws_locked() != nullptr;
        });
        if (j->remaining.load(std::memory_order_acquire) == 0) break;
        other = impl_->claimable_ws_locked();
      }
    }
    if (other) impl_->run_ws(*other);
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    auto& jobs = impl_->ws_jobs;
    for (auto it = jobs.begin(); it != jobs.end(); ++it) {
      if (it->get() == j.get()) {
        jobs.erase(it);
        break;
      }
    }
  }
  if (j->error) std::rethrow_exception(j->error);
}

std::uint64_t ThreadPool::steal_count() const noexcept {
  return impl_->steals.load(std::memory_order_relaxed);
}

void ThreadPool::reset_steal_count() noexcept {
  impl_->steals.store(0, std::memory_order_relaxed);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ptrng
