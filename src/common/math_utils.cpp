#include "common/math_utils.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace ptrng {

double kahan_sum(std::span<const double> xs) noexcept {
  KahanSum acc;
  for (double x : xs) acc.add(x);
  return acc.value();
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  PTRNG_EXPECTS(n >= 2);
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  PTRNG_EXPECTS(lo > 0.0 && hi > lo);
  PTRNG_EXPECTS(n >= 2);
  auto exponents = linspace(std::log10(lo), std::log10(hi), n);
  std::vector<double> out(n);
  std::transform(exponents.begin(), exponents.end(), out.begin(),
                 [](double e) { return std::pow(10.0, e); });
  out.front() = lo;
  out.back() = hi;
  return out;
}

std::vector<std::size_t> log_integer_grid(std::size_t lo, std::size_t hi,
                                          std::size_t n) {
  PTRNG_EXPECTS(lo >= 1 && hi >= lo);
  PTRNG_EXPECTS(n >= 2);
  auto grid = logspace(static_cast<double>(lo), static_cast<double>(hi), n);
  std::vector<std::size_t> out;
  out.reserve(n);
  for (double g : grid) {
    const auto v = static_cast<std::size_t>(std::llround(g));
    if (out.empty() || v > out.back()) out.push_back(v);
  }
  return out;
}

bool is_close(double a, double b, double rtol, double atol) noexcept {
  if (std::isnan(a) || std::isnan(b)) return false;
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= atol + rtol * scale;
}

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

unsigned floor_log2(std::size_t n) noexcept {
  unsigned lg = 0;
  while (n >>= 1) ++lg;
  return lg;
}

}  // namespace ptrng
