#include "common/ziggurat.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstddef>

#include "common/simd.hpp"

namespace ptrng {

namespace {

// ---------------------------------------------------------------------
// consteval math. std::exp/log/sqrt are not constexpr in C++20, so the
// table generator brings its own: argument-reduced Taylor exp, atanh-
// series log, and Newton sqrt, each accurate to ~1 ulp over the ranges
// the recurrence visits (x in [0, 3.66], densities in [1.3e-3, 1]).
// ---------------------------------------------------------------------

constexpr double kLn2 = 0.69314718055994530941723212145818;

consteval double cexp(double x) {
  // x = k*ln2 + t with |t| <= ln2/2; exp(x) = 2^k * exp(t).
  int k = 0;
  double t = x;
  while (t > 0.5 * kLn2) {
    t -= kLn2;
    ++k;
  }
  while (t < -0.5 * kLn2) {
    t += kLn2;
    --k;
  }
  double term = 1.0;
  double sum = 1.0;
  for (int n = 1; n <= 26; ++n) {
    term *= t / static_cast<double>(n);
    sum += term;
  }
  for (; k > 0; --k) sum *= 2.0;
  for (; k < 0; ++k) sum *= 0.5;
  return sum;
}

consteval double clog(double y) {
  // Scale y into [1/sqrt(2), sqrt(2)); ln(m) = 2*atanh((m-1)/(m+1)),
  // |t| <= 0.1716 so the odd series gains ~1.5 digits per term.
  int e = 0;
  double m = y;
  while (m < 0.70710678118654752440) {
    m *= 2.0;
    --e;
  }
  while (m >= 1.41421356237309504880) {
    m *= 0.5;
    ++e;
  }
  const double t = (m - 1.0) / (m + 1.0);
  const double t2 = t * t;
  double term = t;
  double sum = 0.0;
  for (int n = 0; n < 16; ++n) {
    sum += term / static_cast<double>(2 * n + 1);
    term *= t2;
  }
  return 2.0 * sum + static_cast<double>(e) * kLn2;
}

consteval double csqrt(double v) {
  if (v <= 0.0) return 0.0;
  double x = v < 1.0 ? 1.0 : v;
  for (int i = 0; i < 64; ++i) x = 0.5 * (x + v / x);
  return x;
}

// ---------------------------------------------------------------------
// Layer tables. 256 regions of equal area V: the base strip plus tail
// (layer 0) and 255 stacked rectangles with right edges x_0 = r down to
// x_255 = 0, where f(x) = exp(-x^2/2) and the recurrence is
// x_i = f^{-1}(V/x_{i-1} + f(x_{i-1})). (r, V) are the published
// 256-layer constants (Marsaglia & Tsang 2000; Doornik 2005).
// ---------------------------------------------------------------------

constexpr std::size_t kLayers = 256;
constexpr double kR = 3.6541528853610087963519472518;
constexpr double kInvR = 1.0 / kR;
constexpr double kV = 0.00492867323399141470237287454652;
constexpr double kM52 = 4503599627370496.0;  // 2^52: magnitude resolution

struct Tables {
  std::array<std::uint64_t, kLayers> ki{};  ///< fast-accept bound per layer
  std::array<double, kLayers> wi{};         ///< layer width / 2^52
  std::array<double, kLayers> fi{};         ///< f at the layer's right edge
};

consteval Tables make_tables() {
  Tables t;
  double x_prev = kR;                      // x_0
  double f_prev = cexp(-0.5 * kR * kR);    // f(r)
  // Layer 0: candidates span the base strip's virtual width V/f(r);
  // x <= r accepts (fully under the curve), x > r resamples the tail.
  t.wi[0] = kV / f_prev / kM52;
  t.ki[0] = static_cast<std::uint64_t>(kR / t.wi[0]);
  t.fi[0] = f_prev;
  for (std::size_t i = 1; i < kLayers; ++i) {
    const double x =
        i < kLayers - 1
            ? csqrt(-2.0 * clog(kV / x_prev + f_prev))  // f^{-1} step
            : 0.0;  // closure: the top rectangle reaches the mode
    t.wi[i] = x_prev / kM52;
    t.ki[i] = static_cast<std::uint64_t>((x / x_prev) * kM52);
    t.fi[i] = i < kLayers - 1 ? cexp(-0.5 * x * x) : 1.0;
    x_prev = x;
    f_prev = t.fi[i];
  }
  return t;
}

constexpr Tables kTab = make_tables();

/// The random sign lands in the double's sign bit via OR — a branch
/// here would mispredict half the time and dominate the fast path.
inline double apply_sign(double magnitude, std::uint64_t sign_bit) noexcept {
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(magnitude) |
                               sign_bit);
}

// One draw attempt consumes exactly one 64-bit word on the fast path;
// the wedge test adds one word (its uniform), the tail two per round.
// Split so the SIMD lane kernel can hand a lane its already-drawn word
// and let the exact scalar wedge/tail logic finish the draw.
inline double draw_from_word(Xoshiro256pp& rng, std::uint64_t bits) noexcept {
  for (;;) {
    const std::size_t idx = bits & 0xffu;
    const std::uint64_t sign_bit = (bits & 0x100u) << 55;  // bit 8 -> bit 63
    const std::uint64_t rabs = (bits >> 9) & 0xfffffffffffffULL;  // 52 bits
    // rabs < 2^52, so the int64_t cast is exact and keeps the
    // conversion on the fast signed cvt path.
    const double x =
        static_cast<double>(static_cast<std::int64_t>(rabs)) * kTab.wi[idx];
    if (rabs < kTab.ki[idx]) return apply_sign(x, sign_bit);  // ~98.5%
    if (idx == 0) {
      // Exact tail beyond r (Marsaglia): x = -ln(U1)/r, y = -ln(U2),
      // accept when 2y > x^2; the accepted r + x has the conditional
      // normal tail distribution.
      for (;;) {
        const double xt = -std::log(rng.uniform_pos()) * kInvR;
        const double yt = -std::log(rng.uniform_pos());
        if (yt + yt > xt * xt) return apply_sign(kR + xt, sign_bit);
      }
    }
    // Wedge: y uniform over [f(x_{idx-1}), f(x_idx)] against the density.
    if (kTab.fi[idx - 1] +
            (kTab.fi[idx] - kTab.fi[idx - 1]) * rng.uniform() <
        std::exp(-0.5 * x * x))
      return apply_sign(x, sign_bit);
    bits = rng.next();
  }
}

inline double draw_impl(Xoshiro256pp& rng) noexcept {
  return draw_from_word(rng, rng.next());
}

// ---------------------------------------------------------------------
// Lane-parallel kernel: four xoshiro256++ states step struct-of-arrays
// (one i64x4 per state word — integer rotate/shift/xor are exact, so
// each lane's word sequence is the scalar generator's), the layer
// tables are gathered per lane, and the fast-path accept test runs as
// one signed 64-bit vector compare. Any lane that misses the ~98.5%
// accept spills its state, finishes the draw through draw_from_word
// (the EXACT scalar wedge/tail code, consuming that lane's stream
// alone), and the states reload — per-lane output and stream
// consumption are bit-identical to four scalar samplers.
//
// No fused multiply-add anywhere: the scalar path is built for the
// baseline ISA (no FMA), so the kernel must round every mul/add
// separately to stay bit-identical (common/simd.hpp header notes).
// ---------------------------------------------------------------------
PTRNG_SIMD_TARGET void fill_lanes4_kernel(
    const std::array<Xoshiro256pp*, 4>& rngs, std::size_t n,
    double* out) noexcept {
  alignas(32) std::uint64_t st[4][4];  // [state word][lane]
  for (std::size_t l = 0; l < 4; ++l) {
    const auto& s = rngs[l]->state();
    for (std::size_t w = 0; w < 4; ++w) st[w][l] = s[w];
  }
  simd::i64x4 s0 = simd::load4(st[0]);
  simd::i64x4 s1 = simd::load4(st[1]);
  simd::i64x4 s2 = simd::load4(st[2]);
  simd::i64x4 s3 = simd::load4(st[3]);
  const simd::i64x4 idx_mask = simd::splat4(std::uint64_t{0xff});
  const simd::i64x4 sign_mask = simd::splat4(std::uint64_t{0x100});
  const simd::i64x4 rabs_mask = simd::splat4(std::uint64_t{0xfffffffffffff});
  for (std::size_t i = 0; i < n; ++i) {
    // xoshiro256++ step across lanes (same ops as Xoshiro256pp::next).
    const simd::i64x4 word = simd::rotl<23>(s0 + s3) + s0;
    const simd::i64x4 t = simd::shl<17>(s1);
    s2 = s2 ^ s0;
    s3 = s3 ^ s1;
    s1 = s1 ^ s2;
    s0 = s0 ^ s3;
    s2 = s2 ^ t;
    s3 = simd::rotl<45>(s3);
    const simd::i64x4 idx = word & idx_mask;
    const simd::i64x4 sign = simd::shl<55>(word & sign_mask);
    const simd::i64x4 rabs = simd::shr<9>(word) & rabs_mask;
    const simd::f64x4 wi = simd::gather4(kTab.wi.data(), idx);
    const simd::i64x4 ki = simd::gather4(kTab.ki.data(), idx);
    const simd::f64x4 x = simd::u52_to_f64(rabs) * wi;
    const simd::f64x4 res = simd::or_bits(x, sign);
    const int accept = simd::lt_mask_i64(rabs, ki);
    if (accept == 0xf) {
      simd::store4(out + 4 * i, res);
      continue;
    }
    // Slow path: spill, finish missed lanes scalar, reload.
    simd::store4(st[0], s0);
    simd::store4(st[1], s1);
    simd::store4(st[2], s2);
    simd::store4(st[3], s3);
    alignas(32) double fast[4];
    simd::store4(fast, res);
    alignas(32) std::uint64_t words[4];
    simd::store4(words, word);
    for (std::size_t l = 0; l < 4; ++l) {
      if (accept & (1 << l)) {
        out[4 * i + l] = fast[l];
        continue;
      }
      Xoshiro256pp lane_rng(0);
      lane_rng.set_state({st[0][l], st[1][l], st[2][l], st[3][l]});
      out[4 * i + l] = draw_from_word(lane_rng, words[l]);
      const auto& ns = lane_rng.state();
      for (std::size_t w = 0; w < 4; ++w) st[w][l] = ns[w];
    }
    s0 = simd::load4(st[0]);
    s1 = simd::load4(st[1]);
    s2 = simd::load4(st[2]);
    s3 = simd::load4(st[3]);
  }
  simd::store4(st[0], s0);
  simd::store4(st[1], s1);
  simd::store4(st[2], s2);
  simd::store4(st[3], s3);
  for (std::size_t l = 0; l < 4; ++l)
    rngs[l]->set_state({st[0][l], st[1][l], st[2][l], st[3][l]});
}

}  // namespace

double ZigguratNormal::draw(Xoshiro256pp& rng) noexcept {
  return draw_impl(rng);
}

void ZigguratNormal::fill(Xoshiro256pp& rng, std::span<double> out) noexcept {
  for (auto& x : out) x = draw_impl(rng);
}

void ZigguratNormal::fill_lanes4(const std::array<Xoshiro256pp*, 4>& rngs,
                                 std::size_t n, double* out) noexcept {
  if (simd::active()) {
    fill_lanes4_kernel(rngs, n, out);
    return;
  }
  // Scalar fallback: same interleaved layout, same per-lane streams —
  // the reference the kernel is differentially tested against.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t l = 0; l < 4; ++l) out[4 * i + l] = draw_impl(*rngs[l]);
}

}  // namespace ptrng
