#include "common/rng.hpp"

#include <cmath>

#include "common/ziggurat.hpp"

namespace ptrng {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
}

std::uint64_t Xoshiro256pp::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256pp::uniform_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method specialized to 64 bits.
  if (bound == 0) return next();
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next();
    }
  }
  state_ = {s0, s1, s2, s3};
}

double GaussianSampler::operator()() noexcept {
  if (method_ == Method::Ziggurat) return ZigguratNormal::draw(rng_);
  return polar_next();
}

void GaussianSampler::fill(std::span<double> out) noexcept {
  if (method_ == Method::Ziggurat) {
    ZigguratNormal::fill(rng_, out);
    return;
  }
  polar_fill(out);
}

void GaussianSampler::fill_lanes(const std::array<GaussianSampler*, 4>& lanes,
                                 std::span<double> out) noexcept {
  const std::size_t n = out.size() / 4;
  const bool all_ziggurat =
      lanes[0]->method_ == Method::Ziggurat &&
      lanes[1]->method_ == Method::Ziggurat &&
      lanes[2]->method_ == Method::Ziggurat &&
      lanes[3]->method_ == Method::Ziggurat;
  if (all_ziggurat) {
    ZigguratNormal::fill_lanes4(
        {&lanes[0]->rng_, &lanes[1]->rng_, &lanes[2]->rng_, &lanes[3]->rng_},
        n, out.data());
    return;
  }
  // Polar (or mixed-method) lanes: scalar per-lane draws in the same
  // interleaved layout. operator()() carries each lane's pair cache, so
  // every lane subsequence still matches stepping that sampler alone.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t l = 0; l < 4; ++l) out[4 * i + l] = (*lanes[l])();
}

double GaussianSampler::polar_next() noexcept {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  double u, v, s;
  do {
    u = 2.0 * rng_.uniform() - 1.0;
    v = 2.0 * rng_.uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_ = v * factor;
  has_cached_ = true;
  return u * factor;
}

void GaussianSampler::polar_fill(std::span<double> out) noexcept {
  std::size_t i = 0;
  if (has_cached_ && i < out.size()) {
    out[i++] = cached_;
    has_cached_ = false;
  }
  // Whole pairs: identical arithmetic to operator()(), which returns u*m
  // and caches v*m — two consecutive uncached draws yield exactly this.
  while (i + 1 < out.size()) {
    double u, v, s;
    do {
      u = 2.0 * rng_.uniform() - 1.0;
      v = 2.0 * rng_.uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    out[i++] = u * factor;
    out[i++] = v * factor;
  }
  // Odd tail: one scalar draw (caches its partner, like stepping would).
  if (i < out.size()) out[i] = polar_next();
}

}  // namespace ptrng
